package emmcio_test

import (
	"fmt"

	"emmcio"
)

// Generate a calibrated application trace and inspect its Table III
// statistics.
func ExampleGenerateTrace() {
	tr := emmcio.GenerateTrace(emmcio.Messaging, emmcio.DefaultSeed)
	s := emmcio.SizeStatsOf(tr)
	fmt.Printf("%s: %d requests, max %d KB\n", tr.Name, s.Requests, s.MaxKB)
	// Output:
	// Messaging: 5702 requests, max 128 KB
}

// Replay a trace on the hybrid-page-size device and read the §V metrics.
func ExampleReplay() {
	tr := emmcio.GenerateTrace(emmcio.CallIn, emmcio.DefaultSeed)
	m, err := emmcio.Replay(emmcio.SchemeHPS, emmcio.CaseStudyOptions(), tr)
	if err != nil {
		panic(err)
	}
	fmt.Printf("scheme=%s served=%d spaceUtil=%.3f\n", m.Scheme, m.Served, m.SpaceUtilization)
	// Output:
	// scheme=HPS served=1491 spaceUtil=1.000
}

// Collect a trace through the BIOtracer monitor and check its overhead.
func ExampleCollectTrace() {
	dev, err := emmcio.NewDevice(emmcio.Scheme4PS, emmcio.Options{})
	if err != nil {
		panic(err)
	}
	tr := emmcio.GenerateTrace(emmcio.YouTube, emmcio.DefaultSeed)
	o, err := emmcio.CollectTrace(dev, tr)
	if err != nil {
		panic(err)
	}
	fmt.Printf("monitored=%d flushes=%d\n", o.MonitoredRequests, o.Flushes)
	// Output:
	// monitored=2080 flushes=6
}

// Drive the Android upper stack: SQLite transactions become journaled
// block-level writes.
func ExampleOpenSQLiteDB() {
	sink := &emmcio.TraceCollector{}
	fs := emmcio.NewAndroidFS(sink)
	db, err := emmcio.OpenSQLiteDB(fs, "app.db", emmcio.SQLiteRollback)
	if err != nil {
		panic(err)
	}
	if err := db.Exec([]int64{1}); err != nil {
		panic(err)
	}
	fmt.Printf("one transaction -> %d block requests\n", len(sink.Trace.Reqs)-4)
	// Output:
	// one transaction -> 12 block requests
}
