package emmcio

// The observability acceptance gate: telemetry must be free when disabled.
// Disabled instrumentation is a nil-handle check on each hot path, so the
// simulated timing must be bit-identical to an unobserved replay — the
// mean-response-time overhead is required to be under 5% and is in fact
// exactly 0. Wall-clock cost is benchmarked separately (and reported here
// when not -short) because it varies with the host; simulated time is the
// paper's metric and is deterministic.

import (
	"math"
	"testing"

	"emmcio/internal/core"
	"emmcio/internal/paper"
	"emmcio/internal/telemetry"
	"emmcio/internal/workload"
)

func replayTwitter(t testing.TB, reg *telemetry.Registry, tc *telemetry.Tracer) core.Metrics {
	t.Helper()
	tr := workload.DefaultRegistry().Lookup(paper.Twitter).Generate(workload.DefaultSeed)
	dev, err := core.NewDevice(core.SchemeHPS, core.CaseStudyOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.ReplayObserved(dev, core.SchemeHPS, tr, reg, tc)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTelemetryOverheadBudget(t *testing.T) {
	// Disabled telemetry (nil registry and tracer): the seed configuration.
	mOff := replayTwitter(t, nil, nil)
	// Enabled telemetry: full metrics registry plus span tracer.
	mOn := replayTwitter(t, telemetry.NewRegistry(), telemetry.NewTracer(0))

	if mOff.MeanResponseNs <= 0 {
		t.Fatal("degenerate replay")
	}
	overheadPct := math.Abs(mOn.MeanResponseNs-mOff.MeanResponseNs) / mOff.MeanResponseNs * 100
	t.Logf("mean response time: disabled=%.3fms enabled=%.3fms overhead=%.2f%% (budget 5%%)",
		mOff.MeanResponseNs/1e6, mOn.MeanResponseNs/1e6, overheadPct)
	if overheadPct >= 5 {
		t.Fatalf("telemetry mean-response-time overhead %.2f%% exceeds the 5%% budget", overheadPct)
	}
	if mOn != mOff {
		t.Fatalf("telemetry perturbed the simulation:\n  on  %+v\n  off %+v", mOn, mOff)
	}

	if testing.Short() {
		return
	}
	// Wall-clock cost, informational: simulated time is the acceptance
	// metric, but the host-time ratio shows what enabling telemetry costs.
	off := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			replayTwitter(b, nil, nil)
		}
	})
	on := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			replayTwitter(b, telemetry.NewRegistry(), telemetry.NewTracer(0))
		}
	})
	wallPct := (float64(on.NsPerOp())/float64(off.NsPerOp()) - 1) * 100
	t.Logf("wall clock per replay: disabled=%dns enabled=%dns (+%.1f%%)",
		off.NsPerOp(), on.NsPerOp(), wallPct)
}

// TestTelemetryJobScopedOverhead extends the overhead budget to the
// job-scoped model: scoping must not reopen either fast path. A child of a
// nil registry is nil (so an unobserved server's jobs replay bit-identical
// to the seed), a replay into a child is bit-identical to an unobserved
// one, and cutting a snapshot of a completed job leaves the live hot-path
// handles allocation-free.
func TestTelemetryJobScopedOverhead(t *testing.T) {
	mOff := replayTwitter(t, nil, nil)

	// Nil fast path survives scoping end to end.
	var root *telemetry.Registry
	if root.Child() != nil {
		t.Fatal("nil registry produced a non-nil child; the disabled fast path is gone")
	}
	if m := replayTwitter(t, root.Child(), nil); m != mOff {
		t.Fatalf("replay into a nil child perturbed the simulation:\n  got %+v\n  off %+v", m, mOff)
	}

	// A job observing into a child must not shift simulated time either.
	parent := telemetry.NewRegistry()
	child := parent.Child()
	if m := replayTwitter(t, child, nil); m != mOff {
		t.Fatalf("replay into a child registry perturbed the simulation:\n  got %+v\n  off %+v", m, mOff)
	}
	child.MergeIntoParent()
	reads := telemetry.L("op", "read")
	if got, want := parent.Counter("core_requests_total", reads).Value(),
		child.Counter("core_requests_total", reads).Value(); got != want || want == 0 {
		t.Fatalf("merge lost the job's counts: parent %d, child %d", got, want)
	}

	// A completed job's snapshot coexists with live observation at zero
	// cost: resolve the hot-loop handles once (as the replay loop does),
	// cut a snapshot, and the handles must still allocate nothing.
	c := child.Counter("core_requests_total", reads)
	h := child.Histogram("core_response_ns", nil, reads)
	g := child.Gauge("sim_queue_depth")
	snap := child.Snapshot()
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(123_456)
		g.Set(4)
	}); n != 0 {
		t.Errorf("hot-path ops allocate %.1f/op after a snapshot, want 0", n)
	}
	// And the snapshot stayed a fixed record while the source moved on.
	if snap.Counter("core_requests_total", reads).Value() == c.Value() {
		t.Error("snapshot tracked the live registry; it must be a deep copy")
	}
}

func BenchmarkReplayTelemetryOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		replayTwitter(b, nil, nil)
	}
}

func BenchmarkReplayTelemetryOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		replayTwitter(b, telemetry.NewRegistry(), telemetry.NewTracer(0))
	}
}
