package emmcio

// The observability acceptance gate: telemetry must be free when disabled.
// Disabled instrumentation is a nil-handle check on each hot path, so the
// simulated timing must be bit-identical to an unobserved replay — the
// mean-response-time overhead is required to be under 5% and is in fact
// exactly 0. Wall-clock cost is benchmarked separately (and reported here
// when not -short) because it varies with the host; simulated time is the
// paper's metric and is deterministic.

import (
	"math"
	"testing"

	"emmcio/internal/core"
	"emmcio/internal/paper"
	"emmcio/internal/telemetry"
	"emmcio/internal/workload"
)

func replayTwitter(t testing.TB, reg *telemetry.Registry, tc *telemetry.Tracer) core.Metrics {
	t.Helper()
	tr := workload.DefaultRegistry().Lookup(paper.Twitter).Generate(workload.DefaultSeed)
	dev, err := core.NewDevice(core.SchemeHPS, core.CaseStudyOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.ReplayObserved(dev, core.SchemeHPS, tr, reg, tc)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTelemetryOverheadBudget(t *testing.T) {
	// Disabled telemetry (nil registry and tracer): the seed configuration.
	mOff := replayTwitter(t, nil, nil)
	// Enabled telemetry: full metrics registry plus span tracer.
	mOn := replayTwitter(t, telemetry.NewRegistry(), telemetry.NewTracer(0))

	if mOff.MeanResponseNs <= 0 {
		t.Fatal("degenerate replay")
	}
	overheadPct := math.Abs(mOn.MeanResponseNs-mOff.MeanResponseNs) / mOff.MeanResponseNs * 100
	t.Logf("mean response time: disabled=%.3fms enabled=%.3fms overhead=%.2f%% (budget 5%%)",
		mOff.MeanResponseNs/1e6, mOn.MeanResponseNs/1e6, overheadPct)
	if overheadPct >= 5 {
		t.Fatalf("telemetry mean-response-time overhead %.2f%% exceeds the 5%% budget", overheadPct)
	}
	if mOn != mOff {
		t.Fatalf("telemetry perturbed the simulation:\n  on  %+v\n  off %+v", mOn, mOff)
	}

	if testing.Short() {
		return
	}
	// Wall-clock cost, informational: simulated time is the acceptance
	// metric, but the host-time ratio shows what enabling telemetry costs.
	off := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			replayTwitter(b, nil, nil)
		}
	})
	on := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			replayTwitter(b, telemetry.NewRegistry(), telemetry.NewTracer(0))
		}
	})
	wallPct := (float64(on.NsPerOp())/float64(off.NsPerOp()) - 1) * 100
	t.Logf("wall clock per replay: disabled=%dns enabled=%dns (+%.1f%%)",
		off.NsPerOp(), on.NsPerOp(), wallPct)
}

func BenchmarkReplayTelemetryOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		replayTwitter(b, nil, nil)
	}
}

func BenchmarkReplayTelemetryOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		replayTwitter(b, telemetry.NewRegistry(), telemetry.NewTracer(0))
	}
}
