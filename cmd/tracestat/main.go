// Command tracestat characterizes block-level I/O traces the way §III of
// the paper does: Table III size statistics, Table IV timing statistics,
// the Fig. 4–6 distributions, and — when given the whole individual-app
// set — the six Characteristics.
//
// Every input is consumed as a stream in a single pass: file traces go
// through the streaming decoders (text, BIO1 binary, BIOZ compressed) and
// generated traces through the streaming collection path, so memory stays
// bounded regardless of trace length (blkparse conversions are the one
// format still materialized).
//
//	tracestat twitter.trace movie.trace real.blkparse
//	tracestat -generated             # analyze the 25 built-in traces
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"emmcio/internal/analysis"
	"emmcio/internal/biotracer"
	"emmcio/internal/cliutil"
	"emmcio/internal/experiments"
	"emmcio/internal/paper"
	"emmcio/internal/report"
	"emmcio/internal/telemetry"
	"emmcio/internal/trace"
	"emmcio/internal/workload"
)

func main() {
	generated := flag.Bool("generated", false, "analyze the 25 built-in generated traces instead of files")
	seed := flag.Uint64("seed", workload.DefaultSeed, "seed for -generated")
	dists := flag.Bool("dist", false, "also print size/response/inter-arrival distributions")
	percentiles := flag.Bool("percentiles", false, "print p50/p95/p99 service latencies per request type")
	asJSON := flag.Bool("json", false, "emit machine-readable FullReport JSON instead of tables")
	stream := flag.Bool("stream", false, "stream text trace files in constant memory (huge collections)")
	showVersion := cliutil.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		fmt.Println(cliutil.VersionLine("tracestat"))
		return
	}

	if *stream {
		streamMode(flag.Args())
		return
	}

	var all []*traceStats
	if *generated {
		reg := workload.DefaultRegistry()
		for _, name := range paper.AllTraces {
			dev, err := experiments.NewMeasuredDevice()
			if err != nil {
				fatal(err)
			}
			ts := newTraceStats(name)
			if _, err := biotracer.CollectStream(dev, reg.Lookup(name).Stream(*seed),
				func(r trace.Request) error { ts.add(r); return nil }); err != nil {
				fatal(err)
			}
			all = append(all, ts)
		}
	} else {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "usage: tracestat [-dist] <trace file>... | tracestat -generated")
			os.Exit(2)
		}
		for _, path := range flag.Args() {
			ts, err := analyzeFile(path)
			if err != nil {
				fatal(err)
			}
			all = append(all, ts)
		}
	}

	if *asJSON {
		out := map[string]analysis.FullReport{}
		for _, ts := range all {
			out[ts.name] = ts.acc.Report()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}

	sizeTab := report.NewTable("Size-related statistics (Table III columns)",
		"Trace", "DataKB", "Reqs", "MaxKB", "AveKB", "AveR", "AveW", "Wr%", "WrSz%")
	timeTab := report.NewTable("Timing-related statistics (Table IV columns)",
		"Trace", "Dur(s)", "Arr(/s)", "Acc(KB/s)", "NoWait%", "Serv(ms)", "Resp(ms)", "Spat%", "Temp%")
	for _, ts := range all {
		s := ts.acc.Size()
		sizeTab.AddRow(ts.name, report.I(s.DataKB), report.I(s.Requests), report.I(int64(s.MaxKB)),
			report.F(s.AveKB, 1), report.F(s.AveReadKB, 1), report.F(s.AveWriteKB, 1),
			report.F(s.WriteReqPct, 2), report.F(s.WriteSizePct, 2))
		t := ts.acc.Timing()
		timeTab.AddRow(ts.name, report.F(t.DurationSec, 0), report.F(t.ArrivalRate, 2),
			report.F(t.AccessRate, 2), report.F(t.NoWaitPct, 0),
			report.F(t.MeanServMs, 2), report.F(t.MeanRespMs, 2),
			report.F(t.SpatialPct, 2), report.F(t.TemporalPct, 2))
	}
	must(sizeTab.WriteText(os.Stdout))
	fmt.Println()
	must(timeTab.WriteText(os.Stdout))
	fmt.Println()

	if *percentiles {
		tab := report.NewTable("Service-time percentiles by request type",
			"Trace", "Op", "Count", "p50(ms)", "p95(ms)", "p99(ms)", "Max(ms)")
		for _, ts := range all {
			for _, op := range []trace.Op{trace.Read, trace.Write} {
				h := ts.serv[op]
				if h.Count() == 0 {
					continue
				}
				name := "read"
				if op == trace.Write {
					name = "write"
				}
				tab.AddRow(ts.name, name, report.I(h.Count()),
					report.F(float64(h.Quantile(0.50))/1e6, 3),
					report.F(float64(h.Quantile(0.95))/1e6, 3),
					report.F(float64(h.Quantile(0.99))/1e6, 3),
					report.F(float64(h.Max())/1e6, 3))
			}
		}
		must(tab.WriteText(os.Stdout))
		fmt.Println()
	}

	if *dists {
		for _, ts := range all {
			d := ts.acc.Dists()
			fmt.Printf("%s:\n  size:         %s\n  response:     %s\n  interarrival: %s\n",
				ts.name, d.Size, d.Response, d.Interarrival)
			if rs := ts.acc.Response(); rs.Count > 0 {
				fmt.Printf("  response percentiles: p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
					float64(rs.P50)/1e6, float64(rs.P95)/1e6, float64(rs.P99)/1e6, float64(rs.Max)/1e6)
			}
		}
		fmt.Println()
	}

	// With the full individual set (or any 6+ traces), evaluate the six
	// characteristics.
	if len(all) >= 6 {
		individual := all
		if *generated {
			individual = all[:18]
		}
		rows := make([]analysis.TraceSummary, len(individual))
		for i, ts := range individual {
			rows[i] = ts.acc.Summary()
		}
		findings := analysis.EvaluateCharacteristicsFrom(rows)
		must(experiments.RenderFindings(findings).WriteText(os.Stdout))
	}
}

// traceStats is everything tracestat reports about one trace, accumulated
// online in a single pass.
type traceStats struct {
	name string
	acc  *analysis.Accumulator
	serv map[trace.Op]*telemetry.Histogram // service times for -percentiles
}

func newTraceStats(name string) *traceStats {
	return &traceStats{
		name: name,
		acc:  analysis.NewAccumulator(name),
		serv: map[trace.Op]*telemetry.Histogram{
			trace.Read:  telemetry.NewHistogram(telemetry.DefaultLatencyBuckets()),
			trace.Write: telemetry.NewHistogram(telemetry.DefaultLatencyBuckets()),
		},
	}
}

func (ts *traceStats) add(r trace.Request) {
	ts.acc.Add(r)
	if r.Finish > r.ServiceStart {
		ts.serv[r.Op].Observe(r.Finish - r.ServiceStart)
	}
}

// analyzeFile streams one trace file through a traceStats in a single
// decoder pass. Blkparse conversions have no streaming reader and are
// materialized, then drained.
func analyzeFile(path string) (*traceStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var st trace.Stream
	if strings.HasSuffix(path, ".blktrace") || strings.HasSuffix(path, ".blkparse") {
		tr, err := trace.ReadBlkparse(f)
		if err != nil {
			return nil, err
		}
		st = trace.FromSlice(tr)
	} else {
		st, err = trace.NewDecoder(f)
		if err != nil {
			return nil, err
		}
	}
	name := st.Name()
	if name == "" {
		name = path
	}
	ts := newTraceStats(name)
	for i := 0; ; i++ {
		req, ok, err := st.Next()
		if err != nil {
			return nil, fmt.Errorf("%s: request %d: %w", path, i, err)
		}
		if !ok {
			return ts, nil
		}
		ts.add(req)
	}
}

// streamMode is the legacy -stream flag: text-only constant-memory tables.
// The default file mode now streams every format; this stays for script
// compatibility.
func streamMode(paths []string) {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracestat -stream <text trace>...")
		os.Exit(2)
	}
	sizeTab := report.NewTable("Size-related statistics (streamed)",
		"Trace", "DataKB", "Reqs", "MaxKB", "AveKB", "Wr%")
	timeTab := report.NewTable("Timing-related statistics (streamed)",
		"Trace", "Dur(s)", "Arr(/s)", "NoWait%", "Resp(ms)", "Spat%", "Temp%")
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		acc := analysis.NewAccumulator(path)
		if _, _, err := trace.StreamText(f, func(r trace.Request) error {
			acc.Add(r)
			return nil
		}); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
		s := acc.Size()
		sizeTab.AddRow(path, report.I(s.DataKB), report.I(s.Requests), report.I(int64(s.MaxKB)),
			report.F(s.AveKB, 1), report.F(s.WriteReqPct, 2))
		tm := acc.Timing()
		timeTab.AddRow(path, report.F(tm.DurationSec, 0), report.F(tm.ArrivalRate, 2),
			report.F(tm.NoWaitPct, 0), report.F(tm.MeanRespMs, 2),
			report.F(tm.SpatialPct, 2), report.F(tm.TemporalPct, 2))
	}
	must(sizeTab.WriteText(os.Stdout))
	fmt.Println()
	must(timeTab.WriteText(os.Stdout))
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

// fatal prints a one-line diagnosis and exits 1 (multi-line aggregates are
// folded into a first-line-plus-count).
func fatal(err error) { cliutil.Fatal("tracestat", err) }
