// Command tracestat characterizes block-level I/O traces the way §III of
// the paper does: Table III size statistics, Table IV timing statistics,
// the Fig. 4–6 distributions, and — when given the whole individual-app
// set — the six Characteristics.
//
//	tracestat twitter.trace movie.trace real.blkparse
//	tracestat -generated             # analyze the 25 built-in traces
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"emmcio/internal/analysis"
	"emmcio/internal/biotracer"
	"emmcio/internal/experiments"
	"emmcio/internal/paper"
	"emmcio/internal/report"
	"emmcio/internal/telemetry"
	"emmcio/internal/trace"
	"emmcio/internal/workload"
)

func main() {
	generated := flag.Bool("generated", false, "analyze the 25 built-in generated traces instead of files")
	seed := flag.Uint64("seed", workload.DefaultSeed, "seed for -generated")
	dists := flag.Bool("dist", false, "also print size/response/inter-arrival distributions")
	percentiles := flag.Bool("percentiles", false, "print p50/p95/p99 service latencies per request type")
	asJSON := flag.Bool("json", false, "emit machine-readable FullReport JSON instead of tables")
	stream := flag.Bool("stream", false, "stream text trace files in constant memory (huge collections)")
	flag.Parse()

	if *stream {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "usage: tracestat -stream <text trace>...")
			os.Exit(2)
		}
		sizeTab := report.NewTable("Size-related statistics (streamed)",
			"Trace", "DataKB", "Reqs", "MaxKB", "AveKB", "Wr%")
		timeTab := report.NewTable("Timing-related statistics (streamed)",
			"Trace", "Dur(s)", "Arr(/s)", "NoWait%", "Resp(ms)", "Spat%", "Temp%")
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			acc := analysis.NewAccumulator(path)
			if _, _, err := trace.StreamText(f, func(r trace.Request) error {
				acc.Add(r)
				return nil
			}); err != nil {
				f.Close()
				fatal(err)
			}
			f.Close()
			s := acc.Size()
			sizeTab.AddRow(path, report.I(s.DataKB), report.I(s.Requests), report.I(int64(s.MaxKB)),
				report.F(s.AveKB, 1), report.F(s.WriteReqPct, 2))
			tm := acc.Timing()
			timeTab.AddRow(path, report.F(tm.DurationSec, 0), report.F(tm.ArrivalRate, 2),
				report.F(tm.NoWaitPct, 0), report.F(tm.MeanRespMs, 2),
				report.F(tm.SpatialPct, 2), report.F(tm.TemporalPct, 2))
		}
		must(sizeTab.WriteText(os.Stdout))
		fmt.Println()
		must(timeTab.WriteText(os.Stdout))
		return
	}

	var traces []*trace.Trace
	if *generated {
		reg := workload.DefaultRegistry()
		for _, name := range paper.AllTraces {
			tr := reg.Lookup(name).Generate(*seed)
			dev, err := experiments.NewMeasuredDevice()
			if err != nil {
				fatal(err)
			}
			if _, err := biotracer.Collect(dev, tr); err != nil {
				fatal(err)
			}
			traces = append(traces, tr)
		}
	} else {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "usage: tracestat [-dist] <trace file>... | tracestat -generated")
			os.Exit(2)
		}
		for _, path := range flag.Args() {
			tr, err := readTrace(path)
			if err != nil {
				fatal(err)
			}
			traces = append(traces, tr)
		}
	}

	if *asJSON {
		out := map[string]analysis.FullReport{}
		for _, tr := range traces {
			out[tr.Name] = analysis.Report(tr)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}

	sizeTab := report.NewTable("Size-related statistics (Table III columns)",
		"Trace", "DataKB", "Reqs", "MaxKB", "AveKB", "AveR", "AveW", "Wr%", "WrSz%")
	timeTab := report.NewTable("Timing-related statistics (Table IV columns)",
		"Trace", "Dur(s)", "Arr(/s)", "Acc(KB/s)", "NoWait%", "Serv(ms)", "Resp(ms)", "Spat%", "Temp%")
	for _, tr := range traces {
		s := analysis.SizeStatsOf(tr)
		sizeTab.AddRow(tr.Name, report.I(s.DataKB), report.I(s.Requests), report.I(int64(s.MaxKB)),
			report.F(s.AveKB, 1), report.F(s.AveReadKB, 1), report.F(s.AveWriteKB, 1),
			report.F(s.WriteReqPct, 2), report.F(s.WriteSizePct, 2))
		t := analysis.TimingStatsOf(tr)
		timeTab.AddRow(tr.Name, report.F(t.DurationSec, 0), report.F(t.ArrivalRate, 2),
			report.F(t.AccessRate, 2), report.F(t.NoWaitPct, 0),
			report.F(t.MeanServMs, 2), report.F(t.MeanRespMs, 2),
			report.F(t.SpatialPct, 2), report.F(t.TemporalPct, 2))
	}
	must(sizeTab.WriteText(os.Stdout))
	fmt.Println()
	must(timeTab.WriteText(os.Stdout))
	fmt.Println()

	if *percentiles {
		tab := report.NewTable("Service-time percentiles by request type",
			"Trace", "Op", "Count", "p50(ms)", "p95(ms)", "p99(ms)", "Max(ms)")
		for _, tr := range traces {
			hists := map[trace.Op]*telemetry.Histogram{
				trace.Read:  telemetry.NewHistogram(telemetry.DefaultLatencyBuckets()),
				trace.Write: telemetry.NewHistogram(telemetry.DefaultLatencyBuckets()),
			}
			for _, r := range tr.Reqs {
				if r.Finish > r.ServiceStart {
					hists[r.Op].Observe(r.Finish - r.ServiceStart)
				}
			}
			for _, op := range []trace.Op{trace.Read, trace.Write} {
				h := hists[op]
				if h.Count() == 0 {
					continue
				}
				name := "read"
				if op == trace.Write {
					name = "write"
				}
				tab.AddRow(tr.Name, name, report.I(h.Count()),
					report.F(float64(h.Quantile(0.50))/1e6, 3),
					report.F(float64(h.Quantile(0.95))/1e6, 3),
					report.F(float64(h.Quantile(0.99))/1e6, 3),
					report.F(float64(h.Max())/1e6, 3))
			}
		}
		must(tab.WriteText(os.Stdout))
		fmt.Println()
	}

	if *dists {
		for _, tr := range traces {
			d := analysis.DistributionsOf(tr)
			fmt.Printf("%s:\n  size:         %s\n  response:     %s\n  interarrival: %s\n",
				tr.Name, d.Size, d.Response, d.Interarrival)
			if rs := analysis.ResponseSummary(tr); rs.Count > 0 {
				fmt.Printf("  response percentiles: p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
					float64(rs.P50)/1e6, float64(rs.P95)/1e6, float64(rs.P99)/1e6, float64(rs.Max)/1e6)
			}
		}
		fmt.Println()
	}

	// With the full individual set (or any 6+ traces), evaluate the six
	// characteristics.
	if len(traces) >= 6 {
		individual := traces
		if *generated {
			individual = traces[:18]
		}
		findings := analysis.EvaluateCharacteristics(individual)
		must(experiments.RenderFindings(findings).WriteText(os.Stdout))
	}
}

func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return trace.ReadBinary(f)
	}
	if strings.HasSuffix(path, ".blktrace") || strings.HasSuffix(path, ".blkparse") {
		return trace.ReadBlkparse(f)
	}
	// Sniff: binary traces start with the BIO1 magic.
	var magic [4]byte
	if _, err := f.Read(magic[:]); err == nil && string(magic[:]) == "BIO1" {
		if _, err := f.Seek(0, 0); err != nil {
			return nil, err
		}
		return trace.ReadBinary(f)
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	return trace.ReadText(f)
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracestat:", err)
	os.Exit(1)
}
