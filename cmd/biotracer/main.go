// Command biotracer reproduces one §II trace-collecting session: it
// generates the named application's workload, replays it through the
// BIOtracer monitor on the measured-device model, writes the fully
// timestamped trace to a file, and prints the tracer's overhead report.
//
//	biotracer -app Twitter -o twitter.trace
//	biotracer -app all -dir traces/ -format binary
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"emmcio/internal/biotracer"
	"emmcio/internal/cliutil"
	"emmcio/internal/experiments"
	"emmcio/internal/paper"
	"emmcio/internal/trace"
	"emmcio/internal/workload"
)

func main() {
	app := flag.String("app", paper.Twitter, `application to trace, or "all"`)
	out := flag.String("o", "", "output file (default <app>.trace in -dir)")
	dir := flag.String("dir", ".", "output directory")
	format := flag.String("format", "text", "trace format: text or binary")
	seed := flag.Uint64("seed", workload.DefaultSeed, "workload generation seed")
	showVersion := cliutil.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		fmt.Println(cliutil.VersionLine("biotracer"))
		return
	}

	reg := workload.DefaultRegistry()
	var names []string
	if *app == "all" {
		names = paper.AllTraces
	} else {
		if reg.Lookup(*app) == nil {
			fmt.Fprintf(os.Stderr, "biotracer: unknown application %q; known: %s\n",
				*app, strings.Join(reg.Names(), ", "))
			os.Exit(2)
		}
		names = []string{*app}
	}

	for _, name := range names {
		tr := reg.Lookup(name).Generate(*seed)
		dev, err := experiments.NewMeasuredDevice()
		if err != nil {
			fatal(err)
		}
		overhead, err := biotracer.Collect(dev, tr)
		if err != nil {
			fatal(err)
		}

		path := *out
		if path == "" || len(names) > 1 {
			base := strings.ReplaceAll(name, "/", "_") + ".trace"
			path = filepath.Join(*dir, base)
		}
		if err := writeTrace(path, *format, tr); err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %6d requests -> %s (tracer overhead %.2f%%, %d flushes)\n",
			name, len(tr.Reqs), path, overhead.RequestOverhead*100, overhead.Flushes)
	}
}

func writeTrace(path, format string, tr *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "text":
		return trace.WriteText(f, tr)
	case "binary":
		return trace.WriteBinary(f, tr)
	default:
		return fmt.Errorf("unknown format %q (want text or binary)", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "biotracer:", err)
	os.Exit(1)
}
