// Command emmcc is the sweep coordinator: it takes the same sweep spec the
// CLIs and emmcd accept, shards it across a fleet of emmcd workers, and
// merges the shard results into output byte-identical to a single-process
// run:
//
//	emmcd -addr :8081 & emmcd -addr :8082 & emmcd -addr :8083 &
//	emmcc -workers http://localhost:8081,http://localhost:8082,http://localhost:8083 \
//	      -sweeps casestudy
//
// Failed or stalled shards retry with capped exponential backoff and
// re-route to healthy workers; saturated workers (429) are backed off per
// their Retry-After; repeatedly failing workers are circuit-broken; and
// when no workers remain usable, shards degrade to in-process execution —
// so the sweep completes with the same bytes regardless of fleet health.
// SIGINT/SIGTERM cancels the sweep and DELETEs in-flight worker jobs. With
// no -workers at all, every shard runs locally. See docs/COORDINATOR.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"emmcio/internal/cliutil"
	"emmcio/internal/coord"
	"emmcio/internal/devstore"
)

func main() {
	var spec cliutil.SweepSpec
	spec.BindFlags(flag.CommandLine)

	var workerURLs []string
	flag.CommandLine.Var(csv{&workerURLs}, "workers",
		"comma-separated emmcd worker base URLs (empty = run every shard locally)")
	tracesPerShard := flag.Int("traces-per-shard", 1, "traces per shard for per-trace sweeps (finer = better re-routing)")
	attempts := flag.Int("attempts", 3, "remote attempts per shard before degrading to local execution")
	shardTimeout := flag.Duration("shard-timeout", 5*time.Minute, "per-attempt shard deadline (submit + queue + run)")
	httpTimeout := flag.Duration("http-timeout", 10*time.Second, "per-request worker HTTP timeout")
	inflight := flag.Int("inflight", 0, "max shards in flight (0 = 2x worker count)")
	noLocal := flag.Bool("no-local", false, "fail instead of degrading exhausted shards to local execution")
	asJSON := flag.Bool("json", false, "emit the merged []SweepResult as JSON instead of aligned text")
	metricsPath := flag.String("metrics", "", "write the coordinator's Prometheus text-format metrics here")
	deviceStore := flag.String("device-store", "", "local snapshot store directory backing -from-device (pushed to workers on demand)")
	logLevel := flag.String("log-level", "warn", "log verbosity: debug, info, warn, or error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of key=value text")
	showVersion := cliutil.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		fmt.Println(cliutil.VersionLine("emmcc"))
		return
	}

	logger, err := newLogger(*logLevel, *logJSON)
	if err != nil {
		fatal(err)
	}

	// -from-device resolves against the local store; the coordinator pushes
	// the sealed snapshot to each worker before routing shards there, so
	// the fleet needs no shared filesystem.
	if *deviceStore != "" {
		store, err := devstore.Open(*deviceStore, devstore.Options{})
		if err != nil {
			fatal(err)
		}
		spec.SetDeviceSource(store)
	} else if spec.FromDevice != "" {
		fatal(fmt.Errorf("-from-device %s requires -device-store (the local archive holding the snapshot)", spec.FromDevice))
	}

	// SIGINT/SIGTERM cancels the run context; the coordinator propagates
	// that to the fleet by DELETEing every in-flight worker job on its way
	// out, so killing emmcc never leaves orphaned sweeps running remotely.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c := coord.New(coord.Config{
		Workers:        workerURLs,
		TracesPerShard: *tracesPerShard,
		MaxAttempts:    *attempts,
		ShardTimeout:   *shardTimeout,
		HTTPTimeout:    *httpTimeout,
		MaxInflight:    *inflight,
		DisableLocal:   *noLocal,
		LocalWorkers:   spec.Workers,
		Logger:         logger,
	})
	results, err := c.Run(ctx, spec)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatal(err)
		}
	} else {
		for _, res := range results {
			for _, t := range res.Tables {
				if err := t.WriteText(os.Stdout); err != nil {
					fatal(err)
				}
				fmt.Println()
			}
		}
	}

	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fatal(err)
		}
		if err := c.Telemetry().WritePrometheus(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", *metricsPath)
	}

	// One fabric-health line on stderr: how bumpy the ride was.
	stats := map[string]int64{}
	c.Telemetry().EachCounter(func(name string, v int64) { stats[name] = v })
	fmt.Fprintf(os.Stderr,
		"emmcc: %d/%d shards done (%d attempts, %d retries, %d re-routes, %d local, %d breaker trips)\n",
		stats["coord_shards_completed_total"], stats["coord_shards_planned_total"],
		stats["coord_shard_attempts_total"], stats["coord_shard_retries_total"],
		stats["coord_shard_reroutes_total"], stats["coord_local_runs_total"],
		stats["coord_breaker_trips_total"])
}

// csv adapts a []string flag as a comma-separated list.
type csv struct{ dst *[]string }

func (v csv) String() string {
	if v.dst == nil {
		return ""
	}
	return strings.Join(*v.dst, ",")
}

func (v csv) Set(s string) error {
	*v.dst = nil
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			*v.dst = append(*v.dst, part)
		}
	}
	return nil
}

// newLogger builds the stderr slog handler the whole process shares.
func newLogger(level string, asJSON bool) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if asJSON {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
}

func fatal(err error) { cliutil.Fatal("emmcc", err) }
