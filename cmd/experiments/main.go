// Command experiments regenerates every table and figure of the paper:
//
//	experiments -exp all            # everything
//	experiments -exp fig8           # one experiment
//	experiments -exp fig8,aging     # several, sharing one worker pool
//	experiments -exp tableIII -csv  # CSV instead of aligned text
//	experiments -exp all -j 1       # serial replays (same results, slower)
//
// Every sweep runs on a shared bounded worker pool (-j, default GOMAXPROCS);
// results are bit-identical at any width.
//
// Experiments: tableI, tableII, fig3, tableIII, fig4, tableIV, fig5, fig6, fig7,
// tableV, fig8, fig9, overhead, characteristics, ablations, lifetime,
// ratesweep, aging, utilization, profiles, gcsweep, poolratio, cq,
// geometry, writebuffer, readahead, faultsweep, ensemble, validate, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"emmcio/internal/cliutil"
	"emmcio/internal/experiments"
	"emmcio/internal/report"
	"emmcio/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see package comment)")
	seed := flag.Uint64("seed", workload.DefaultSeed, "workload generation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	md := flag.Bool("md", false, "emit Markdown tables instead of aligned text")
	fig3Reqs := flag.Int("fig3-reqs", 8, "requests per Fig. 3 sweep point")
	svgDir := flag.String("svg", "", "also write the figures as SVG files into this directory")
	var obs cliutil.Observability
	obs.Bind(flag.CommandLine)
	var faultFlags cliutil.FaultFlags
	faultFlags.Bind(flag.CommandLine)
	var devFlags cliutil.DeviceSpec
	devFlags.BindFlags(flag.CommandLine)
	showVersion := cliutil.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		fmt.Println(cliutil.VersionLine("experiments"))
		return
	}

	faultCfg, err := faultFlags.Config()
	if err != nil {
		fatal(err)
	}

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fatal(err)
		}
	}
	writeSVG := func(name string, render func(io.Writer) error) {
		if *svgDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*svgDir, name))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := render(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", filepath.Join(*svgDir, name))
	}
	_ = writeSVG

	env := experiments.NewEnv(*seed)
	env.Workers = obs.Workers
	env.Faults = faultCfg
	if err := devFlags.ApplyEnv(env); err != nil {
		fatal(err)
	}
	env.Telemetry = obs.Registry()
	env.Tracer = obs.Tracer()
	out := os.Stdout

	known := map[string]bool{}
	for _, name := range []string{"all", "tablei", "tableii", "utilization", "fig3",
		"tableiii", "fig4", "tableiv", "fig5", "fig6", "fig7", "tablev", "fig8",
		"fig9", "overhead", "characteristics", "ablations", "profiles", "gcsweep",
		"poolratio", "writebuffer", "readahead", "cq", "geometry", "ratesweep",
		"aging", "lifetime", "ensemble", "validate", "faultsweep"} {
		known[name] = true
	}
	want := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		if !known[name] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; see -h\n", name)
			os.Exit(2)
		}
		want[name] = true
	}
	all := want["all"]

	emit := func(t *report.Table) {
		var err error
		switch {
		case *csv:
			fmt.Fprintf(out, "# %s\n", t.Title)
			err = t.WriteCSV(out)
		case *md:
			err = t.WriteMarkdown(out)
		default:
			err = t.WriteText(out)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(out)
	}

	if all || want["tablei"] {
		emit(experiments.TableI())
	}
	if all || want["tableii"] {
		emit(experiments.TableII())
	}
	if all || want["utilization"] {
		rows, err := experiments.DeviceUtilization(env)
		if err != nil {
			fatal(err)
		}
		emit(experiments.RenderUtilization(rows))
	}
	if all || want["fig3"] {
		res, err := experiments.Fig3(env, *fig3Reqs)
		if err != nil {
			fatal(err)
		}
		emit(res.Render())
		writeSVG("fig3.svg", res.Figure().WriteLineSVG)
	}
	if all || want["tableiii"] {
		emit(experiments.TableIII(env).Render())
	}
	if all || want["fig4"] {
		res := experiments.Fig4(env)
		emit(res.RenderSizes())
		writeSVG("fig4.svg", res.SizeFigure("Fig. 4: Request size distributions").WriteStackedSVG)
	}
	if all || want["tableiv"] {
		res, err := experiments.TableIV(env)
		if err != nil {
			fatal(err)
		}
		emit(res.Render())
	}
	if all || want["fig5"] {
		res, err := experiments.Fig5(env)
		if err != nil {
			fatal(err)
		}
		emit(res.RenderResponses())
		writeSVG("fig5.svg", res.ResponseFigure("Fig. 5: Response time distributions").WriteStackedSVG)
	}
	if all || want["fig6"] {
		res := experiments.Fig6(env)
		emit(res.RenderInterarrivals())
		writeSVG("fig6.svg", res.InterarrivalFigure("Fig. 6: Inter-arrival time distributions").WriteStackedSVG)
	}
	if all || want["fig7"] {
		res, err := experiments.Fig7(env)
		if err != nil {
			fatal(err)
		}
		emit(res.RenderSizes())
		emit(res.RenderResponses())
		emit(res.RenderInterarrivals())
		writeSVG("fig7a.svg", res.SizeFigure("Fig. 7a: Combo request sizes").WriteStackedSVG)
		writeSVG("fig7b.svg", res.ResponseFigure("Fig. 7b: Combo response times").WriteStackedSVG)
		writeSVG("fig7c.svg", res.InterarrivalFigure("Fig. 7c: Combo inter-arrivals").WriteStackedSVG)
	}
	if all || want["tablev"] {
		emit(experiments.TableV())
	}
	if all || want["fig8"] || want["fig9"] {
		res, err := experiments.CaseStudy(env)
		if err != nil {
			fatal(err)
		}
		if all || want["fig8"] {
			emit(res.RenderFig8())
			writeSVG("fig8.svg", res.Fig8Figure().WriteBarSVG)
			fmt.Fprintf(out, "HPS vs 4PS: best -%.1f%% (%s), worst -%.1f%% (%s), average -%.1f%% (paper: 86%%, 24%%, 61.9%%)\n\n",
				res.Best().MRTReductionVs4PS()*100, res.Best().Name,
				res.Worst().MRTReductionVs4PS()*100, res.Worst().Name,
				res.AverageReduction()*100)
		}
		if all || want["fig9"] {
			emit(res.RenderFig9())
			writeSVG("fig9.svg", res.Fig9Figure().WriteBarSVG)
			fmt.Fprintf(out, "HPS vs 8PS space utilization: average +%.1f%% (paper: 13.1%%)\n\n",
				res.AverageUtilGain()*100)
		}
	}
	if all || want["overhead"] {
		res, err := experiments.TracerOverhead(env)
		if err != nil {
			fatal(err)
		}
		emit(res.Render())
	}
	if all || want["characteristics"] {
		findings, err := experiments.Characteristics(env)
		if err != nil {
			fatal(err)
		}
		emit(experiments.RenderFindings(findings))
	}
	if all || want["ablations"] {
		if err := runAblations(env, emit); err != nil {
			fatal(err)
		}
	}
	if all || want["profiles"] {
		emit(experiments.ProfilesTable())
	}
	if all || want["gcsweep"] {
		rows, err := experiments.GCThresholdSweep(env, "Twitter", nil)
		if err != nil {
			fatal(err)
		}
		emit(experiments.RenderGCThreshold("Twitter", rows))
	}
	if all || want["poolratio"] {
		rows, err := experiments.HPSPoolRatioSweep(env, "Twitter", nil)
		if err != nil {
			fatal(err)
		}
		emit(experiments.RenderPoolRatio("Twitter", rows))
	}
	if all || want["writebuffer"] {
		rows, err := experiments.WriteBufferStudy(env)
		if err != nil {
			fatal(err)
		}
		emit(experiments.RenderWriteBuffer(rows))
	}
	if all || want["readahead"] {
		rows, err := experiments.ReadAheadStudy(env)
		if err != nil {
			fatal(err)
		}
		emit(experiments.RenderReadAhead(rows))
	}
	if all || want["cq"] {
		rows, err := experiments.CommandQueueStudy(env)
		if err != nil {
			fatal(err)
		}
		emit(experiments.RenderCQ(rows))
	}
	if all || want["geometry"] {
		rows, err := experiments.GeometrySweep(env, "Twitter", nil)
		if err != nil {
			fatal(err)
		}
		emit(experiments.RenderGeometry("Twitter", rows))
	}
	if all || want["ratesweep"] {
		pts, err := experiments.RateSweep(env, "Twitter", nil)
		if err != nil {
			fatal(err)
		}
		emit(experiments.RenderRateSweep("Twitter", pts))
	}
	if all || want["aging"] {
		pts, err := experiments.Aging(env, "", nil)
		if err != nil {
			fatal(err)
		}
		emit(experiments.RenderAging("Movie", pts))
	}
	if all || want["faultsweep"] {
		pts, err := experiments.FaultSweep(env, "", *seed, nil)
		if err != nil {
			fatal(err)
		}
		emit(experiments.RenderFaultSweep("Twitter", pts))
	}
	if all || want["lifetime"] {
		rows, err := experiments.Lifetime(env)
		if err != nil {
			fatal(err)
		}
		emit(experiments.RenderLifetime(rows))
	}
	if want["ensemble"] { // not in "all": runs the case study n times
		res, err := experiments.Fig8Ensemble(env, 5)
		if err != nil {
			fatal(err)
		}
		emit(experiments.RenderEnsemble(res))
	}
	if all || want["validate"] {
		checks, err := experiments.Validate(env)
		if err != nil {
			fatal(err)
		}
		emit(experiments.RenderChecks(checks))
		for _, c := range checks {
			if !c.Pass {
				os.Exit(1)
			}
		}
	}

	if err := obs.Flush(out); err != nil {
		fatal(err)
	}
}

func runAblations(env *experiments.Env, emit func(*report.Table)) error {
	p1, err := experiments.Implication1Parallelism(env)
	if err != nil {
		return err
	}
	p2, err := experiments.Implication2IdleGC(env)
	if err != nil {
		return err
	}
	p3, err := experiments.Implication3Buffer(env, nil)
	if err != nil {
		return err
	}
	p4, err := experiments.Implication4Wear(env)
	if err != nil {
		return err
	}
	p5, err := experiments.Implication5SLC(env)
	if err != nil {
		return err
	}
	for _, t := range experiments.RenderAblations(p1, p2, p3, p4, p5) {
		emit(t)
	}
	mc, err := experiments.Implication3MapCache(env, nil)
	if err != nil {
		return err
	}
	emit(experiments.RenderMapCache(mc))
	sd, err := experiments.Implication1SDCard(env)
	if err != nil {
		return err
	}
	emit(experiments.RenderSDCard(sd))
	slc, err := experiments.Implication5SLCCache(env)
	if err != nil {
		return err
	}
	t := report.NewTable("Extension: HPS with an SLC-mode 4KB pool (Implications 1+5)",
		"Trace", "HPS MRT(ms)", "HPS+SLC MRT(ms)", "Capacity GB")
	for _, r := range slc {
		t.AddRow(r.Name, fmt.Sprintf("%.2f", r.HPSMRTMs), fmt.Sprintf("%.2f", r.HPSSLCMRTMs),
			fmt.Sprintf("%.0f vs %.0f", r.HPSCapacityGB, r.HPSSLCCapacityGB))
	}
	emit(t)
	return nil
}

func fatal(err error) { cliutil.Fatal("experiments", err) }
