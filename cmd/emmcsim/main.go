// Command emmcsim replays a block-level trace on the simulated eMMC device
// under one or more Table V schemes and reports the §V metrics.
//
//	emmcsim -app Booting                  # built-in workload, all schemes
//	emmcsim -in twitter.trace -scheme HPS
//	emmcsim -app Twitter -gc idle -buffer 16
//	emmcsim -app Twitter -scheme HPS -metrics out.prom -trace out.json
//
// Each scheme job builds its own request stream — file traces are decoded
// incrementally (text, BIO1, BIOZ) and -o output is written as requests
// complete — so replay memory is O(in-flight), not O(trace length).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"emmcio/internal/core"
	"emmcio/internal/emmc"
	"emmcio/internal/faults"
	"emmcio/internal/ftl"
	"emmcio/internal/report"
	"emmcio/internal/runner"
	"emmcio/internal/telemetry"
	"emmcio/internal/trace"
	"emmcio/internal/workload"
)

func main() {
	app := flag.String("app", "", "built-in application workload to replay")
	tracePath := flag.String("in", "", "trace file to replay (text or binary)")
	profilePath := flag.String("profile", "", "JSON workload profile to generate and replay")
	schemeFlag := flag.String("scheme", "all", "4PS, 8PS, HPS, or all")
	gc := flag.String("gc", "foreground", "GC policy: foreground or idle")
	bufferMB := flag.Int("buffer", 0, "device RAM buffer size in MB (0 = disabled, as in the paper)")
	power := flag.Bool("power", false, "enable the low-power mode model")
	seed := flag.Uint64("seed", workload.DefaultSeed, "workload generation seed")
	wear := flag.String("wear", "round-robin", "wear leveling: round-robin, none, or static")
	sessions := flag.Int("sessions", 1, "replay the trace N times back to back (device ages)")
	scale := flag.Float64("scale", 1.0, "compress arrival times by this factor (<1 raises the rate)")
	shrink := flag.Int("shrink", 0, "divide per-plane block count (GC-pressure studies)")
	loadDev := flag.String("load", "", "restore the device from a snapshot file (single scheme only)")
	saveDev := flag.String("save", "", "snapshot the device after the replay (single scheme only)")
	outTrace := flag.String("o", "", "write the replayed (timestamped) trace to this file (single scheme only; feed pairs to tracediff)")
	metricsPath := flag.String("metrics", "", "write Prometheus text-format metrics here (single scheme only)")
	chromeTrace := flag.String("trace", "", "write a Chrome trace_event JSON (Perfetto-loadable) here (single scheme only)")
	traceBuffer := flag.Int("trace-buffer", telemetry.DefaultTracerCapacity, "tracer ring-buffer capacity in events")
	workers := flag.Int("j", 0, "replay the schemes on this many workers (0 = GOMAXPROCS); results are identical at any width")
	faultRate := flag.Float64("faults", 0, "fault-injection rate multiplier (0 = perfect hardware)")
	faultSeed := flag.Uint64("fault-seed", 1, "fault-injection decision seed (requires -faults > 0)")
	flag.Parse()

	faultCfg, err := faultConfig(*faultRate, *faultSeed)
	if err != nil {
		fatal(err)
	}

	name, source, err := traceSource(*app, *tracePath, *profilePath, *seed)
	if err != nil {
		fatal(err)
	}

	var schemes []core.Scheme
	switch strings.ToUpper(*schemeFlag) {
	case "ALL":
		schemes = core.Schemes
	case "4PS":
		schemes = []core.Scheme{core.Scheme4PS}
	case "8PS":
		schemes = []core.Scheme{core.Scheme8PS}
	case "HPS":
		schemes = []core.Scheme{core.SchemeHPS}
	default:
		fatal(fmt.Errorf("unknown scheme %q", *schemeFlag))
	}

	opt := core.CaseStudyOptions()
	opt.PowerSaving = *power
	opt.RAMBufferBytes = int64(*bufferMB) << 20
	opt.ScaleBlocks = *shrink
	opt.Faults = faultCfg
	switch *gc {
	case "foreground":
		opt.GCPolicy = emmc.GCForeground
	case "idle":
		opt.GCPolicy = emmc.GCIdle
	default:
		fatal(fmt.Errorf("unknown GC policy %q", *gc))
	}
	switch *wear {
	case "round-robin":
		opt.Wear = ftl.WearRoundRobin
	case "none":
		opt.Wear = ftl.WearNone
	case "static":
		opt.Wear = ftl.WearStatic
	default:
		fatal(fmt.Errorf("unknown wear policy %q", *wear))
	}

	if (*loadDev != "" || *saveDev != "" || *outTrace != "" || *metricsPath != "" || *chromeTrace != "") && len(schemes) != 1 {
		fatal(fmt.Errorf("-load/-save/-o/-metrics/-trace require a single -scheme"))
	}

	// Observability is off unless an export was requested.
	var reg *telemetry.Registry
	var tracer *telemetry.Tracer
	if *metricsPath != "" {
		reg = telemetry.NewRegistry()
	}
	if *chromeTrace != "" {
		tracer = telemetry.NewTracer(*traceBuffer)
	}

	// Each scheme replays as one job on the shared worker pool, pulling its
	// own private stream (streams are single-goroutine). The side-effectful
	// flags (-load/-save/-o/-metrics/-trace) are restricted to a single scheme
	// above, so file writes inside the job cannot race.
	metrics, err := runner.Map(runner.New(*workers).Observe(reg), "emmcsim", schemes,
		func(_ int, s core.Scheme) (core.Metrics, error) {
			st, done, err := source()
			if err != nil {
				return core.Metrics{}, err
			}
			defer done()
			if *scale != 1.0 {
				st = trace.ScaleStream(st, *scale)
			}
			if *sessions > 1 {
				st = trace.Repeat(st, *sessions, 1_000_000_000)
			}
			st = trace.ClearStream(st)
			var dev *emmc.Device
			if *loadDev != "" {
				f, err := os.Open(*loadDev)
				if err != nil {
					return core.Metrics{}, err
				}
				dev, err = emmc.RestoreSnapshot(f)
				f.Close()
				if err != nil {
					return core.Metrics{}, err
				}
				// Resume after the archived device's last activity.
				st = trace.ShiftStream(st, dev.LastActivity()+1_000_000_000)
			} else {
				var err error
				dev, err = core.NewDevice(s, opt)
				if err != nil {
					return core.Metrics{}, err
				}
			}
			// -o streams the timestamped trace out as requests complete
			// instead of materializing the replay.
			var sink func(trace.Request) error
			var finishOut func() error
			if *outTrace != "" {
				f, err := os.Create(*outTrace)
				if err != nil {
					return core.Metrics{}, err
				}
				enc, err := trace.NewTextEncoder(f, name)
				if err != nil {
					f.Close()
					return core.Metrics{}, err
				}
				sink = enc.Write
				finishOut = func() error {
					if err := enc.Close(); err != nil {
						f.Close()
						return err
					}
					return f.Close()
				}
			}
			m, err := core.ReplayStreamSink(dev, s, st, reg, tracer, sink)
			if err != nil {
				return core.Metrics{}, err
			}
			if finishOut != nil {
				if err := finishOut(); err != nil {
					return core.Metrics{}, err
				}
			}
			if *saveDev != "" {
				f, err := os.Create(*saveDev)
				if err != nil {
					return core.Metrics{}, err
				}
				if err := dev.Snapshot(f); err != nil {
					return core.Metrics{}, err
				}
				if err := f.Close(); err != nil {
					return core.Metrics{}, err
				}
				fmt.Fprintf(os.Stderr, "device snapshot written to %s\n", *saveDev)
			}
			return m, nil
		})
	if err != nil {
		fatal(err)
	}

	tab := report.NewTable(fmt.Sprintf("Replay of %s (%d requests)", name, metrics[0].Served),
		"Scheme", "MRT(ms)", "MeanServ(ms)", "NoWait%", "SpaceUtil", "WA", "GCStall(ms)", "IdleGC(ms)")
	for i, s := range schemes {
		m := metrics[i]
		tab.AddRow(s.String(),
			report.F(m.MeanResponseNs/1e6, 3),
			report.F(m.MeanServiceNs/1e6, 3),
			report.Pct(m.NoWaitRatio, 1),
			report.F(m.SpaceUtilization, 4),
			report.F(m.WriteAmplification, 3),
			report.F(float64(m.GCStallNs)/1e6, 1),
			report.F(float64(m.IdleGCNs)/1e6, 1))
	}
	if err := tab.WriteText(os.Stdout); err != nil {
		fatal(err)
	}

	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fatal(err)
		}
		if err := reg.WritePrometheus(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", *metricsPath)
	}
	if *chromeTrace != "" {
		f, err := os.Create(*chromeTrace)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "chrome trace written to %s (open in ui.perfetto.dev)\n", *chromeTrace)
	}
	if reg != nil || tracer != nil {
		if err := telemetry.WriteSummary(os.Stdout, reg, tracer); err != nil {
			fatal(err)
		}
	}
}

// traceSource resolves the workload flags into a display name and a factory
// that opens a fresh stream per replay job. Generated workloads materialize
// lazily inside each job; file traces get a private decoder over their own
// file handle. The second return of the factory releases the job's handle.
func traceSource(app, path, profilePath string, seed uint64) (string, func() (trace.Stream, func() error, error), error) {
	noop := func() error { return nil }
	set := 0
	for _, v := range []string{app, path, profilePath} {
		if v != "" {
			set++
		}
	}
	if set > 1 {
		return "", nil, fmt.Errorf("pass exactly one of -app, -in, -profile")
	}
	switch {
	case profilePath != "":
		f, err := os.Open(profilePath)
		if err != nil {
			return "", nil, err
		}
		defer f.Close()
		p, err := workload.ReadProfileJSON(f)
		if err != nil {
			return "", nil, err
		}
		return p.Name, func() (trace.Stream, func() error, error) {
			return p.Stream(seed), noop, nil
		}, nil
	case app != "":
		p := workload.DefaultRegistry().Lookup(app)
		if p == nil {
			return "", nil, fmt.Errorf("unknown application %q", app)
		}
		return p.Name, func() (trace.Stream, func() error, error) {
			return p.Stream(seed), noop, nil
		}, nil
	case path != "":
		// Probe once for the header name so the report can be titled before
		// any replay runs; each job then opens its own decoder.
		name, err := probeName(path)
		if err != nil {
			return "", nil, err
		}
		return name, func() (trace.Stream, func() error, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, nil, err
			}
			st, err := trace.NewDecoder(f)
			if err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("%s: %w", path, err)
			}
			return st, f.Close, nil
		}, nil
	default:
		return "", nil, fmt.Errorf("pass -app <name>, -in <file>, or -profile <file>")
	}
}

// probeName reads just the trace header for the report title.
func probeName(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	st, err := trace.NewDecoder(f)
	if err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	if n := st.Name(); n != "" {
		return n, nil
	}
	return path, nil
}

// faultConfig validates the fault flags up front, before any trace is
// loaded or device built, so a bad value is a one-line usage error instead
// of a mid-replay failure. A -fault-seed without fault injection enabled is
// almost certainly a typo'd invocation, so it is rejected too.
func faultConfig(rate float64, seed uint64) (*faults.Config, error) {
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fault-seed" {
			seedSet = true
		}
	})
	if rate == 0 {
		if seedSet {
			return nil, fmt.Errorf("-fault-seed set but fault injection is off; pass -faults > 0")
		}
		return nil, nil
	}
	cfg := &faults.Config{Seed: seed, Rate: rate}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// fatal prints a one-line diagnosis and exits 1. Replay errors can be
// multi-line aggregates (errors.Join across sweep jobs); the first line
// names the failure and the rest is noise at the CLI, so it is folded into
// a count.
func fatal(err error) {
	msg := err.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = fmt.Sprintf("%s (+%d more lines)", msg[:i], strings.Count(msg[i:], "\n"))
	}
	fmt.Fprintln(os.Stderr, "emmcsim:", msg)
	os.Exit(1)
}
