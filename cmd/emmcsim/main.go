// Command emmcsim replays a block-level trace on the simulated eMMC device
// under one or more Table V schemes and reports the §V metrics.
//
//	emmcsim -app Booting                  # built-in workload, all schemes
//	emmcsim -in twitter.trace -scheme HPS
//	emmcsim -app Twitter -gc idle -buffer 16
//	emmcsim -app Twitter -scheme HPS -metrics out.prom -trace out.json
//	emmcsim -app Twitter -json            # machine-readable metrics
//
// Each scheme job builds its own request stream — file traces are decoded
// incrementally (text, BIO1, BIOZ) and -o output is written as requests
// complete — so replay memory is O(in-flight), not O(trace length).
//
// The workload and device flags are two views of cliutil.ReplaySpec — the
// same struct the emmcd server decodes from JSON — so a flag and its JSON
// field cannot drift, and -json output is byte-comparable to a server
// replay job's results.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"emmcio/internal/cliutil"
	"emmcio/internal/core"
	"emmcio/internal/devstore"
	"emmcio/internal/report"
	"emmcio/internal/runner"
	"emmcio/internal/storage"
	"emmcio/internal/trace"
	"emmcio/internal/workload"
)

func main() {
	var spec cliutil.ReplaySpec
	spec.BindFlags(flag.CommandLine)
	var obs cliutil.Observability
	obs.Bind(flag.CommandLine)
	tracePath := flag.String("in", "", "trace file to replay (text or binary)")
	profilePath := flag.String("profile", "", "JSON workload profile to generate and replay")
	loadDev := flag.String("load", "", "restore the device from a sealed snapshot file (single scheme only)")
	saveDev := flag.String("save", "", "write the device's sealed snapshot after the replay (single scheme only; importable into a device store)")
	deviceStore := flag.String("device-store", "", "snapshot store directory backing -from-device")
	outTrace := flag.String("o", "", "write the replayed (timestamped) trace to this file (single scheme only; feed pairs to tracediff)")
	asJSON := flag.Bool("json", false, "emit per-scheme metrics as JSON instead of a table")
	showVersion := cliutil.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		fmt.Println(cliutil.VersionLine("emmcsim"))
		return
	}

	spec.Normalize()
	opt, err := spec.DeviceOptions()
	if err != nil {
		fatal(err)
	}
	schemes, err := spec.Schemes()
	if err != nil {
		fatal(err)
	}
	name, source, err := traceSource(spec.App, *tracePath, *profilePath, spec.Seed)
	if err != nil {
		fatal(err)
	}

	if (*loadDev != "" || *saveDev != "" || *outTrace != "" || spec.FromDevice != "" || obs.MetricsPath != "" || obs.TracePath != "") && len(schemes) != 1 {
		fatal(fmt.Errorf("-load/-save/-o/-from-device/-metrics/-trace require a single -scheme"))
	}
	if *loadDev != "" && spec.FromDevice != "" {
		fatal(fmt.Errorf("-load and -from-device are mutually exclusive"))
	}
	var store *devstore.Store
	if *deviceStore != "" {
		store, err = devstore.Open(*deviceStore, devstore.Options{})
		if err != nil {
			fatal(err)
		}
		spec.SetDeviceSource(store)
	} else if spec.FromDevice != "" {
		fatal(fmt.Errorf("-from-device %s requires -device-store (the archive holding the snapshot)", spec.FromDevice))
	}

	// Observability is off unless an export was requested.
	reg := obs.Registry()
	tracer := obs.Tracer()

	// Each scheme replays as one job on the shared worker pool, pulling its
	// own private stream (streams are single-goroutine). The side-effectful
	// flags (-load/-save/-o/-metrics/-trace) are restricted to a single scheme
	// above, so file writes inside the job cannot race.
	metrics, err := runner.MapContext(context.Background(), runner.New(obs.Workers).Observe(reg), "emmcsim", schemes,
		func(ctx context.Context, _ int, s core.Scheme) (core.Metrics, error) {
			st, done, err := source()
			if err != nil {
				return core.Metrics{}, err
			}
			defer done()
			st = spec.PrepareStream(st)
			var dev storage.Device
			switch {
			case spec.FromDevice != "":
				// Fork the archived snapshot: same restore + fault-regime +
				// resume-shift sequence the server's from_device jobs run.
				var err error
				dev, _, err = cliutil.ForkDevice(store, spec.FromDevice)
				if err != nil {
					return core.Metrics{}, err
				}
				fc, err := spec.FaultConfig()
				if err != nil {
					return core.Metrics{}, err
				}
				if fc != nil {
					if err := dev.SetFaultConfig(fc); err != nil {
						return core.Metrics{}, err
					}
				}
				st = trace.ShiftStream(st, dev.LastActivity()+1_000_000_000)
			case *loadDev != "":
				f, err := os.Open(*loadDev)
				if err != nil {
					return core.Metrics{}, err
				}
				// The sealed envelope names its own backend and carries the
				// payload digest, so a truncated or cross-backend snapshot is
				// a one-line diagnostic instead of a gob panic.
				dev, _, err = core.RestoreSealed(*loadDev, f)
				f.Close()
				if err != nil {
					return core.Metrics{}, err
				}
				// Resume after the archived device's last activity.
				st = trace.ShiftStream(st, dev.LastActivity()+1_000_000_000)
			default:
				var err error
				dev, err = core.NewDevice(s, opt)
				if err != nil {
					return core.Metrics{}, err
				}
			}
			// -o streams the timestamped trace out as requests complete
			// instead of materializing the replay.
			var sink func(trace.Request) error
			var finishOut func() error
			if *outTrace != "" {
				f, err := os.Create(*outTrace)
				if err != nil {
					return core.Metrics{}, err
				}
				enc, err := trace.NewTextEncoder(f, name)
				if err != nil {
					f.Close()
					return core.Metrics{}, err
				}
				sink = enc.Write
				finishOut = func() error {
					if err := enc.Close(); err != nil {
						f.Close()
						return err
					}
					return f.Close()
				}
			}
			m, err := core.ReplayStreamSinkContext(ctx, dev, s, st, reg, tracer, sink)
			if err != nil {
				return core.Metrics{}, err
			}
			if finishOut != nil {
				if err := finishOut(); err != nil {
					return core.Metrics{}, err
				}
			}
			if *saveDev != "" {
				sealed, info, err := storage.Seal(dev)
				if err != nil {
					return core.Metrics{}, err
				}
				if err := os.WriteFile(*saveDev, sealed, 0o644); err != nil {
					return core.Metrics{}, err
				}
				fmt.Fprintf(os.Stderr, "sealed device snapshot written to %s (%s, device %s)\n",
					*saveDev, info.Backend, devstore.IDFromDigest(info.Digest))
			}
			return m, nil
		})
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		results := make([]cliutil.SchemeResult, len(schemes))
		for i, s := range schemes {
			results[i] = cliutil.SchemeResult{Scheme: s.String(), Metrics: metrics[i]}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatal(err)
		}
	} else {
		tab := report.NewTable(fmt.Sprintf("Replay of %s (%d requests)", name, metrics[0].Served),
			"Scheme", "MRT(ms)", "MeanServ(ms)", "NoWait%", "SpaceUtil", "WA", "GCStall(ms)", "IdleGC(ms)")
		for i, s := range schemes {
			m := metrics[i]
			tab.AddRow(s.String(),
				report.F(m.MeanResponseNs/1e6, 3),
				report.F(m.MeanServiceNs/1e6, 3),
				report.Pct(m.NoWaitRatio, 1),
				report.F(m.SpaceUtilization, 4),
				report.F(m.WriteAmplification, 3),
				report.F(float64(m.GCStallNs)/1e6, 1),
				report.F(float64(m.IdleGCNs)/1e6, 1))
		}
		if err := tab.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}

	// In -json mode stdout carries only the result array (so it stays
	// byte-comparable with a server job result); the summary moves aside.
	flushOut := io.Writer(os.Stdout)
	if *asJSON {
		flushOut = os.Stderr
	}
	if err := obs.Flush(flushOut); err != nil {
		fatal(err)
	}
}

// traceSource resolves the workload flags into a display name and a factory
// that opens a fresh stream per replay job. Generated workloads materialize
// lazily inside each job; file traces get a private decoder over their own
// file handle. The second return of the factory releases the job's handle.
func traceSource(app, path, profilePath string, seed uint64) (string, func() (trace.Stream, func() error, error), error) {
	noop := func() error { return nil }
	set := 0
	for _, v := range []string{app, path, profilePath} {
		if v != "" {
			set++
		}
	}
	if set > 1 {
		return "", nil, fmt.Errorf("pass exactly one of -app, -in, -profile")
	}
	switch {
	case profilePath != "":
		f, err := os.Open(profilePath)
		if err != nil {
			return "", nil, err
		}
		defer f.Close()
		p, err := workload.ReadProfileJSON(f)
		if err != nil {
			return "", nil, err
		}
		return p.Name, func() (trace.Stream, func() error, error) {
			return p.Stream(seed), noop, nil
		}, nil
	case app != "":
		p := workload.DefaultRegistry().Lookup(app)
		if p == nil {
			return "", nil, fmt.Errorf("unknown application %q", app)
		}
		return p.Name, func() (trace.Stream, func() error, error) {
			return p.Stream(seed), noop, nil
		}, nil
	case path != "":
		// Probe once for the header name so the report can be titled before
		// any replay runs; each job then opens its own decoder.
		name, err := probeName(path)
		if err != nil {
			return "", nil, err
		}
		return name, func() (trace.Stream, func() error, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, nil, err
			}
			st, err := trace.NewDecoder(f)
			if err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("%s: %w", path, err)
			}
			return st, f.Close, nil
		}, nil
	default:
		return "", nil, fmt.Errorf("pass -app <name>, -in <file>, or -profile <file>")
	}
}

// probeName reads just the trace header for the report title.
func probeName(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	st, err := trace.NewDecoder(f)
	if err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	if n := st.Name(); n != "" {
		return n, nil
	}
	return path, nil
}

func fatal(err error) { cliutil.Fatal("emmcsim", err) }
