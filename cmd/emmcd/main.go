// Command emmcd serves the repository's replay and experiment machinery as
// a long-running HTTP/JSON job service:
//
//	emmcd -addr :8080
//	curl -d '{"app":"Twitter","scheme":"HPS"}' localhost:8080/v1/replays
//	curl localhost:8080/v1/jobs/j1
//	curl -d '{"sweeps":["casestudy"]}'        localhost:8080/v1/sweeps
//	curl -d '{"app":"Movie","format":"text"}' localhost:8080/v1/traces
//	curl localhost:8080/metrics
//
// Replay and sweep submissions are asynchronous jobs on a bounded queue
// (full queue = 429) executed by a fixed worker pool; results are
// bit-identical to the equivalent emmcsim/experiments invocation. SIGINT/
// SIGTERM stops admissions, cancels queued jobs, and drains in-flight ones
// before exiting. See docs/SERVER.md for the API reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"emmcio/internal/cliutil"
	"emmcio/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	queue := flag.Int("queue", 64, "bounded pending-job queue depth (full = 429)")
	jobs := flag.Int("jobs", 2, "jobs executing concurrently")
	workers := flag.Int("j", 0, "per-job sweep pool width (0 = GOMAXPROCS)")
	results := flag.Int("results", 64, "terminal jobs kept queryable before eviction")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job deadline (negative = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown grace for in-flight jobs before they are canceled")
	flag.Parse()

	svc := server.New(server.Config{
		QueueDepth: *queue,
		Workers:    *jobs,
		JobWorkers: *workers,
		ResultCap:  *results,
		JobTimeout: *jobTimeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "emmcd: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "emmcd: %v: draining (up to %s)\n", sig, *drainTimeout)
	case err := <-errc:
		// Listener died on its own (port taken, socket error): nothing to
		// drain that matters, report and exit non-zero.
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop admissions and drain jobs first, then close the listener: a
	// client polling a draining job keeps getting status until the end.
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "emmcd: drain incomplete: %v\n", err)
	}
	// The HTTP listener gets its own grace period: job draining may have
	// exhausted ctx above, and an expired context would abort in-flight
	// status responses instead of letting them finish.
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer httpCancel()
	if err := httpSrv.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "emmcd: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "emmcd: bye")
}

func fatal(err error) { cliutil.Fatal("emmcd", err) }
