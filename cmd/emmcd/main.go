// Command emmcd serves the repository's replay and experiment machinery as
// a long-running HTTP/JSON job service:
//
//	emmcd -addr :8080
//	curl -d '{"app":"Twitter","scheme":"HPS"}' localhost:8080/v1/replays
//	curl localhost:8080/v1/jobs/j1
//	curl localhost:8080/v1/jobs/j1/metrics   # that job's own Prometheus text
//	curl localhost:8080/v1/jobs/j1/trace     # that job's Chrome-trace JSON
//	curl -d '{"sweeps":["casestudy"]}'        localhost:8080/v1/sweeps
//	curl -d '{"app":"Movie","format":"text"}' localhost:8080/v1/traces
//	curl localhost:8080/metrics
//
// With -device-store, the /v1/devices surface archives pre-aged device
// snapshots: POST a replay-shaped age spec (or upload sealed bytes) once,
// then submit replays/sweeps with "from_device" to fork the worn device
// instead of re-aging it. See docs/SNAPSHOTS.md.
//
// Replay and sweep submissions are asynchronous jobs on a bounded queue
// (full queue = 429) executed by a fixed worker pool; results are
// bit-identical to the equivalent emmcsim/experiments invocation. Every
// job observes into its own telemetry registry and span tracer, queryable
// per job; the server-wide /metrics carries the merged fleet totals.
// SIGINT/SIGTERM stops admissions (healthz flips to 503 draining), cancels
// queued jobs, and drains in-flight ones before exiting. See
// docs/SERVER.md for the API reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"emmcio/internal/cliutil"
	"emmcio/internal/devstore"
	"emmcio/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	queue := flag.Int("queue", 64, "bounded pending-job queue depth (full = 429)")
	jobs := flag.Int("jobs", 2, "jobs executing concurrently")
	workers := flag.Int("j", 0, "per-job sweep pool width (0 = GOMAXPROCS)")
	results := flag.Int("results", 64, "terminal jobs kept queryable before eviction")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job deadline (negative = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown grace for in-flight jobs before they are canceled")
	traceBuffer := flag.Int("trace-buffer", 0, "per-job span-tracer ring capacity in events (0 = 4096; negative disables per-job traces)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	deviceStore := flag.String("device-store", "", "directory backing the /v1/devices snapshot store (empty = surface disabled)")
	deviceStoreMaxMB := flag.Int64("device-store-max-mb", 0, "device store size cap in MB, LRU-evicted (0 = unlimited)")
	deviceStoreMax := flag.Int("device-store-max", 0, "device store entry cap, LRU-evicted (0 = unlimited)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error (debug adds one line per HTTP request)")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of key=value text")
	showVersion := cliutil.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		fmt.Println(cliutil.VersionLine("emmcd"))
		return
	}

	logger, err := newLogger(*logLevel, *logJSON)
	if err != nil {
		fatal(err)
	}

	var store *devstore.Store
	if *deviceStore != "" {
		store, err = devstore.Open(*deviceStore, devstore.Options{
			MaxBytes:   *deviceStoreMaxMB << 20,
			MaxEntries: *deviceStoreMax,
		})
		if err != nil {
			fatal(err)
		}
		entries, bytes := store.Stats()
		logger.Info("device store open", "dir", store.Dir(), "devices", entries, "bytes", bytes)
	}

	svc := server.New(server.Config{
		QueueDepth:  *queue,
		Workers:     *jobs,
		JobWorkers:  *workers,
		ResultCap:   *results,
		JobTimeout:  *jobTimeout,
		JobTraceCap: *traceBuffer,
		Logger:      logger,
		DeviceStore: store,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	// The pprof mux is opt-in and separate from the API listener, so the
	// profiling surface is never exposed on the service address by
	// accident; bind it to localhost in production.
	if *pprofAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				logger.Error("pprof listener failed", "error", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("signal received, draining", "signal", sig.String(), "grace", *drainTimeout)
	case err := <-errc:
		// Listener died on its own (port taken, socket error): nothing to
		// drain that matters, report and exit non-zero.
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop admissions and drain jobs first, then close the listener: a
	// client polling a draining job keeps getting status until the end.
	if err := svc.Shutdown(ctx); err != nil {
		logger.Warn("drain incomplete", "error", err)
	}
	// The HTTP listener gets its own grace period: job draining may have
	// exhausted ctx above, and an expired context would abort in-flight
	// status responses instead of letting them finish.
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer httpCancel()
	if err := httpSrv.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("http shutdown", "error", err)
	}
	logger.Info("bye")
}

// newLogger builds the stderr slog handler the whole process shares.
func newLogger(level string, asJSON bool) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if asJSON {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
}

func fatal(err error) { cliutil.Fatal("emmcd", err) }
