// Command tracediff compares two replays of the same workload — e.g. the
// 4PS and HPS timestamped traces emmcsim writes — request by request:
//
//	emmcsim -app Twitter -scheme 4PS ... (write trace A)
//	emmcsim -app Twitter -scheme HPS ... (write trace B)
//	tracediff a.trace b.trace
//
// It reports the response-time deltas (mean, percentiles, win/loss counts)
// and flags any structural mismatch (different request streams).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"emmcio/internal/report"
	"emmcio/internal/stats"
	"emmcio/internal/trace"
)

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracediff <traceA> <traceB>")
		os.Exit(2)
	}
	a, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	if len(a.Reqs) != len(b.Reqs) {
		fatal(fmt.Errorf("request counts differ: %d vs %d — not the same workload",
			len(a.Reqs), len(b.Reqs)))
	}

	var deltas []int64
	var aResp, bResp []int64
	wins, losses, ties := 0, 0, 0
	for i := range a.Reqs {
		ra, rb := a.Reqs[i], b.Reqs[i]
		if ra.LBA != rb.LBA || ra.Size != rb.Size || ra.Op != rb.Op || ra.Arrival != rb.Arrival {
			fatal(fmt.Errorf("request %d differs structurally — not the same workload", i))
		}
		da, db := ra.ResponseTime(), rb.ResponseTime()
		deltas = append(deltas, db-da)
		aResp = append(aResp, da)
		bResp = append(bResp, db)
		switch {
		case db < da:
			wins++
		case db > da:
			losses++
		default:
			ties++
		}
	}

	sa, sb, sd := stats.Summarize(aResp), stats.Summarize(bResp), stats.Summarize(deltas)
	t := report.NewTable(fmt.Sprintf("Replay comparison: %s vs %s (%d requests)",
		flag.Arg(0), flag.Arg(1), len(a.Reqs)),
		"Metric", "A", "B", "B - A")
	t.AddRow("mean response (ms)",
		report.F(sa.Mean/1e6, 3), report.F(sb.Mean/1e6, 3), report.F(sd.Mean/1e6, 3))
	t.AddRow("p50 (ms)", msI(sa.P50), msI(sb.P50), msI(sd.P50))
	t.AddRow("p95 (ms)", msI(sa.P95), msI(sb.P95), msI(sd.P95))
	t.AddRow("p99 (ms)", msI(sa.P99), msI(sb.P99), msI(sd.P99))
	t.AddRow("max (ms)", msI(sa.Max), msI(sb.Max), msI(sd.Max))
	if err := t.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("\nB faster on %d requests, slower on %d, tied on %d (%.1f%% faster)\n",
		wins, losses, ties, float64(wins)/float64(len(a.Reqs))*100)
	if sa.Mean > 0 {
		fmt.Printf("mean response change: %+.1f%%\n", (sb.Mean/sa.Mean-1)*100)
	}
}

func msI(ns int64) string { return report.F(float64(ns)/1e6, 3) }

func load(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return trace.ReadBinary(f)
	}
	var magic [4]byte
	if _, err := f.Read(magic[:]); err == nil {
		if _, err := f.Seek(0, 0); err != nil {
			return nil, err
		}
		switch string(magic[:]) {
		case "BIO1":
			return trace.ReadBinary(f)
		case "BIOZ":
			return trace.ReadCompressed(f)
		}
	}
	return trace.ReadText(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracediff:", err)
	os.Exit(1)
}
