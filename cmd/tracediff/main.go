// Command tracediff compares two replays of the same workload — e.g. the
// 4PS and HPS timestamped traces emmcsim writes — request by request:
//
//	emmcsim -app Twitter -scheme 4PS ... (write trace A)
//	emmcsim -app Twitter -scheme HPS ... (write trace B)
//	tracediff a.trace b.trace
//
// It reports the response-time deltas (mean, percentiles, win/loss counts)
// and flags any structural mismatch (different request streams).
//
// Both traces are decoded as streams in lockstep, so memory stays bounded
// no matter how long the replays are: summaries are exact up to 64 Ki
// requests per trace and histogram-sketch estimates beyond that.
package main

import (
	"flag"
	"fmt"
	"os"

	"emmcio/internal/cliutil"
	"emmcio/internal/report"
	"emmcio/internal/stats"
	"emmcio/internal/trace"
)

func main() {
	showVersion := cliutil.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		fmt.Println(cliutil.VersionLine("tracediff"))
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracediff <traceA> <traceB>")
		os.Exit(2)
	}
	fa, sta, err := open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer fa.Close()
	fb, stb, err := open(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	defer fb.Close()

	aResp := stats.NewOnlineSummary(0)
	bResp := stats.NewOnlineSummary(0)
	deltas := stats.NewOnlineSummary(0)
	wins, losses, ties, n := 0, 0, 0, 0
	for {
		ra, okA, err := sta.Next()
		if err != nil {
			fatal(fmt.Errorf("%s: request %d: %w", flag.Arg(0), n, err))
		}
		rb, okB, err := stb.Next()
		if err != nil {
			fatal(fmt.Errorf("%s: request %d: %w", flag.Arg(1), n, err))
		}
		if okA != okB {
			// One stream ended early: drain the other so the error reports
			// both totals, as the materialized comparison used to.
			na, nb := n, n
			if okA {
				na += 1 + drain(sta)
			} else {
				nb += 1 + drain(stb)
			}
			fatal(fmt.Errorf("request counts differ: %d vs %d — not the same workload", na, nb))
		}
		if !okA {
			break
		}
		if ra.LBA != rb.LBA || ra.Size != rb.Size || ra.Op != rb.Op || ra.Arrival != rb.Arrival {
			fatal(fmt.Errorf("request %d differs structurally — not the same workload", n))
		}
		da, db := ra.ResponseTime(), rb.ResponseTime()
		aResp.Add(da)
		bResp.Add(db)
		deltas.Add(db - da)
		switch {
		case db < da:
			wins++
		case db > da:
			losses++
		default:
			ties++
		}
		n++
	}
	if n == 0 {
		fatal(fmt.Errorf("no requests to compare"))
	}

	sa, sb, sd := aResp.Summary(), bResp.Summary(), deltas.Summary()
	t := report.NewTable(fmt.Sprintf("Replay comparison: %s vs %s (%d requests)",
		flag.Arg(0), flag.Arg(1), n),
		"Metric", "A", "B", "B - A")
	t.AddRow("mean response (ms)",
		report.F(sa.Mean/1e6, 3), report.F(sb.Mean/1e6, 3), report.F(sd.Mean/1e6, 3))
	t.AddRow("p50 (ms)", msI(sa.P50), msI(sb.P50), msI(sd.P50))
	t.AddRow("p95 (ms)", msI(sa.P95), msI(sb.P95), msI(sd.P95))
	t.AddRow("p99 (ms)", msI(sa.P99), msI(sb.P99), msI(sd.P99))
	t.AddRow("max (ms)", msI(sa.Max), msI(sb.Max), msI(sd.Max))
	if err := t.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("\nB faster on %d requests, slower on %d, tied on %d (%.1f%% faster)\n",
		wins, losses, ties, float64(wins)/float64(n)*100)
	if sa.Mean > 0 {
		fmt.Printf("mean response change: %+.1f%%\n", (sb.Mean/sa.Mean-1)*100)
	}
}

func msI(ns int64) string { return report.F(float64(ns)/1e6, 3) }

// open returns a streaming decoder over path; the caller closes the file
// after draining the stream.
func open(path string) (*os.File, trace.Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	st, err := trace.NewDecoder(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, st, nil
}

// drain counts the remaining requests in a stream, ignoring decode errors —
// it only runs on the way to a count-mismatch fatal.
func drain(st trace.Stream) int {
	n := 0
	for {
		_, ok, err := st.Next()
		if err != nil || !ok {
			return n
		}
		n++
	}
}

// fatal prints a one-line diagnosis and exits 1 (multi-line aggregates are
// folded into a first-line-plus-count).
func fatal(err error) { cliutil.Fatal("tracediff", err) }
