// Command benchsnap records and gates the repository's performance
// trajectory. In its default mode it runs the stream/sweep/replay
// benchmark set, parses the `go test -bench` output, and writes a dated
// snapshot `BENCH_<date>.json` next to the ones already committed — one
// point on the trajectory per PR. In -compare mode it loads the two most
// recent snapshots and fails (exit 1) if any benchmark regressed by more
// than -threshold percent in ns/op or allocs/op, which is the `make check`
// gate that keeps speed wins from quietly eroding.
//
//	go run ./cmd/benchsnap            # run benchmarks, write BENCH_<today>.json
//	go run ./cmd/benchsnap -compare   # gate: newest snapshot vs the previous
//
// Noise control: every benchmark runs -count times and the snapshot keeps
// the minimum ns/op (the standard way to strip scheduler noise from a
// deterministic workload); allocs/op is deterministic and compares
// exactly. With fewer than two snapshots -compare prints a notice and
// exits 0, so the gate is a no-op until a baseline exists.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"emmcio/internal/cliutil"
)

// defaultBench selects the stream/sweep/replay benchmarks: the replay hot
// loop with telemetry off/on, the streaming-vs-slice replay pair, the
// device submit paths, trace generation, the event-engine schedule/step
// cycle (the pooled core every replay event passes through), the parallel
// sweep runner (its serial twin is skipped to keep the gate fast; the
// ratio belongs to BenchmarkSweepRunner's own output), the distributed
// sweep fabric end to end (shard → HTTP workers → merge), and the
// snapshot-fork-vs-reage pair that prices the device store's central
// trade.
const defaultBench = "ReplayTelemetryOff|ReplayTelemetryOn|ReplayStream1k|ReplaySlice1k|ReplayUFS1k|DeviceWrite4K|DeviceRead64K|TraceGeneration|SimEngine|SweepRunner/parallel|CoordinatorSweep|SnapshotFork"

const defaultPkgs = ".,./internal/core,./internal/coord,./internal/experiments,./internal/sim"

// Snapshot is the persisted form of one trajectory point.
type Snapshot struct {
	Schema    int      `json:"schema"`
	Date      string   `json:"date"`
	GoVersion string   `json:"go"`
	Version   string   `json:"version"`
	Bench     string   `json:"bench"`
	Benchtime string   `json:"benchtime"`
	Count     int      `json:"count"`
	Results   []Result `json:"results"`
}

// Result is one benchmark's best-of-count numbers. Name is
// "<package>.<benchmark>" so same-named benchmarks in different packages
// cannot collide.
type Result struct {
	Name     string `json:"name"`
	NsOp     int64  `json:"ns_op"`
	BOp      int64  `json:"b_op"`
	AllocsOp int64  `json:"allocs_op"`
}

func main() {
	dir := flag.String("dir", ".", "directory holding BENCH_*.json snapshots")
	bench := flag.String("bench", defaultBench, "go test -bench regex")
	pkgs := flag.String("pkgs", defaultPkgs, "comma-separated packages to benchmark")
	benchtime := flag.String("benchtime", "100ms", "go test -benchtime per benchmark")
	count := flag.Int("count", 2, "runs per benchmark; the snapshot keeps the minimum")
	date := flag.String("date", "", "snapshot date (YYYY-MM-DD, default today)")
	compare := flag.Bool("compare", false, "compare the two newest snapshots instead of running benchmarks")
	threshold := flag.Float64("threshold", 15, "regression gate in percent for ns/op and allocs/op")
	showVersion := cliutil.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		fmt.Println(cliutil.VersionLine("benchsnap"))
		return
	}

	if *compare {
		os.Exit(compareLatest(*dir, *threshold))
	}

	day := *date
	if day == "" {
		day = time.Now().Format("2006-01-02")
	}
	results, err := runBenchmarks(*bench, strings.Split(*pkgs, ","), *benchtime, *count)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmarks matched %q", *bench))
	}
	version, goVersion := cliutil.BuildVersion()
	snap := Snapshot{
		Schema:    1,
		Date:      day,
		GoVersion: goVersion,
		Version:   version,
		Bench:     *bench,
		Benchtime: *benchtime,
		Count:     *count,
		Results:   results,
	}
	path, err := snapshotPath(*dir, day)
	if err != nil {
		fatal(err)
	}
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchsnap: wrote %s (%d benchmarks)\n", path, len(results))
}

// snapshotPath picks the file name for day's snapshot. The first snapshot
// of a day is BENCH_<day>.json; later ones the same day get a -2, -3, ...
// suffix instead of overwriting, so multiple points recorded between
// commits (e.g. before and after an optimization) all stay on the
// trajectory.
func snapshotPath(dir, day string) (string, error) {
	for n := 1; ; n++ {
		name := "BENCH_" + day + ".json"
		if n > 1 {
			name = fmt.Sprintf("BENCH_%s-%d.json", day, n)
		}
		path := filepath.Join(dir, name)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", err
		}
	}
}

// snapshotKey orders snapshot paths chronologically: by date, then by the
// same-day suffix. A plain string sort gets this wrong — "-2.json" sorts
// *before* ".json", so BENCH_2026-08-08-2.json would look older than
// BENCH_2026-08-08.json when it is newer.
func snapshotKey(path string) (date string, suffix int) {
	name := strings.TrimSuffix(filepath.Base(path), ".json")
	name = strings.TrimPrefix(name, "BENCH_")
	suffix = 1
	if len(name) > 10 && name[10] == '-' {
		if n, err := strconv.Atoi(name[11:]); err == nil {
			date, suffix = name[:10], n
			return date, suffix
		}
	}
	return name, suffix
}

// runBenchmarks shells out to `go test -bench` once and folds the -count
// repetitions down to per-benchmark minima.
func runBenchmarks(bench string, pkgs []string, benchtime string, count int) ([]Result, error) {
	args := []string{"test", "-run", "^$", "-bench", bench,
		"-benchtime", benchtime, "-benchmem", "-count", strconv.Itoa(count)}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, out)
	}
	return parseBenchOutput(string(out))
}

// parseBenchOutput reads `go test -bench` text: `pkg:` lines scope the
// benchmark names that follow; each result line is
//
//	BenchmarkName-8  123  456 ns/op  789 B/op  7 allocs/op
//
// Repetitions of the same benchmark keep the minimum of every column.
func parseBenchOutput(out string) ([]Result, error) {
	byName := map[string]*Result{}
	var order []string
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		// Strip the trailing -GOMAXPROCS suffix.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		full := pkg + "." + name
		r := Result{Name: full, NsOp: -1, BOp: -1, AllocsOp: -1}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad benchmark line %q: %v", line, err)
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsOp = int64(v)
			case "B/op":
				r.BOp = int64(v)
			case "allocs/op":
				r.AllocsOp = int64(v)
			}
		}
		if r.NsOp < 0 {
			return nil, fmt.Errorf("benchmark line %q has no ns/op", line)
		}
		prev, ok := byName[full]
		if !ok {
			cp := r
			byName[full] = &cp
			order = append(order, full)
			continue
		}
		if r.NsOp < prev.NsOp {
			prev.NsOp = r.NsOp
		}
		if r.BOp < prev.BOp {
			prev.BOp = r.BOp
		}
		if r.AllocsOp < prev.AllocsOp {
			prev.AllocsOp = r.AllocsOp
		}
	}
	results := make([]Result, 0, len(order))
	for _, name := range order {
		results = append(results, *byName[name])
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results, nil
}

// compareLatest loads the two newest snapshots in dir and gates the
// regression budget. Returns the process exit code.
func compareLatest(dir string, thresholdPct float64) int {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		fatal(err)
	}
	sort.SliceStable(paths, func(i, j int) bool {
		di, si := snapshotKey(paths[i])
		dj, sj := snapshotKey(paths[j])
		if di != dj {
			return di < dj // ISO dates sort chronologically
		}
		return si < sj // then the intra-day -2, -3, ... suffix
	})
	if len(paths) < 2 {
		fmt.Printf("benchsnap: %d snapshot(s) in %s; need two to compare — skipping gate\n", len(paths), dir)
		return 0
	}
	prevPath, curPath := paths[len(paths)-2], paths[len(paths)-1]
	prev, err := loadSnapshot(prevPath)
	if err != nil {
		fatal(err)
	}
	cur, err := loadSnapshot(curPath)
	if err != nil {
		fatal(err)
	}
	report, regressions := Compare(prev, cur, thresholdPct)
	fmt.Printf("benchsnap: %s -> %s (threshold %.0f%%)\n%s",
		filepath.Base(prevPath), filepath.Base(curPath), thresholdPct, report)
	if regressions > 0 {
		fmt.Printf("benchsnap: FAIL — %d regression(s) beyond %.0f%%\n", regressions, thresholdPct)
		return 1
	}
	fmt.Println("benchsnap: OK")
	return 0
}

// Compare renders a per-benchmark delta table and counts regressions: a
// benchmark regresses when ns/op or allocs/op grows past the threshold
// (an allocation count appearing where there was none is always a
// regression — relative growth from zero is infinite). Benchmarks present
// in only one snapshot are reported but never gate, so adding or retiring
// a benchmark does not break the check.
func Compare(prev, cur Snapshot, thresholdPct float64) (report string, regressions int) {
	prevBy := map[string]Result{}
	for _, r := range prev.Results {
		prevBy[r.Name] = r
	}
	var b strings.Builder
	for _, c := range cur.Results {
		p, ok := prevBy[c.Name]
		if !ok {
			fmt.Fprintf(&b, "  %-60s new benchmark (no baseline)\n", c.Name)
			continue
		}
		delete(prevBy, c.Name)
		nsPct := pctDelta(p.NsOp, c.NsOp)
		allocPct := pctDelta(p.AllocsOp, c.AllocsOp)
		bad := nsPct > thresholdPct || allocPct > thresholdPct ||
			(p.AllocsOp == 0 && c.AllocsOp > 0)
		mark := "ok  "
		if bad {
			mark = "FAIL"
			regressions++
		}
		fmt.Fprintf(&b, "  %s %-60s ns/op %d -> %d (%+.1f%%)  allocs/op %d -> %d (%+.1f%%)\n",
			mark, c.Name, p.NsOp, c.NsOp, nsPct, p.AllocsOp, c.AllocsOp, allocPct)
	}
	for name := range prevBy {
		fmt.Fprintf(&b, "  %-60s dropped (was in baseline)\n", name)
	}
	return b.String(), regressions
}

// pctDelta is the relative growth of cur over prev in percent (0 when
// prev is 0; the zero-to-nonzero allocation case is handled separately).
func pctDelta(prev, cur int64) float64 {
	if prev == 0 {
		return 0
	}
	return (float64(cur) - float64(prev)) / float64(prev) * 100
}

func loadSnapshot(path string) (Snapshot, error) {
	var s Snapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func fatal(err error) { cliutil.Fatal("benchsnap", err) }
