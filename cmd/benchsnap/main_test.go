package main

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: emmcio
cpu: some cpu
BenchmarkReplayTelemetryOff-8   	      42	  26461547 ns/op	 8123456 B/op	   87595 allocs/op
BenchmarkReplayTelemetryOff-8   	      44	  25000000 ns/op	 8123400 B/op	   87595 allocs/op
BenchmarkSweepRunner/parallel-jmax-8         	       1	2724955660 ns/op	999 B/op	      10 allocs/op
PASS
ok  	emmcio	3.1s
pkg: emmcio/internal/core
BenchmarkDeviceWrite4K-8        	   14000	      7292 ns/op	     120 B/op	       6 allocs/op
PASS
ok  	emmcio/internal/core	1.0s
`

func TestParseBenchOutput(t *testing.T) {
	results, err := parseBenchOutput(sampleOutput)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(results), results)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}

	// Two repetitions fold to the minimum of each column.
	off, ok := byName["emmcio.BenchmarkReplayTelemetryOff"]
	if !ok {
		t.Fatalf("missing folded ReplayTelemetryOff result: %+v", results)
	}
	if off.NsOp != 25000000 || off.BOp != 8123400 || off.AllocsOp != 87595 {
		t.Errorf("min fold wrong: %+v", off)
	}

	// Sub-benchmark names keep their /parallel-jmax path; only the final
	// -GOMAXPROCS suffix is stripped.
	if _, ok := byName["emmcio.BenchmarkSweepRunner/parallel-jmax"]; !ok {
		t.Errorf("sub-benchmark name mangled: %+v", results)
	}

	// The pkg: header scopes names, so the core benchmark is prefixed.
	if _, ok := byName["emmcio/internal/core.BenchmarkDeviceWrite4K"]; !ok {
		t.Errorf("package scoping lost: %+v", results)
	}
}

func snap(results ...Result) Snapshot {
	return Snapshot{Schema: 1, Results: results}
}

func TestCompareGate(t *testing.T) {
	base := snap(
		Result{Name: "a", NsOp: 1000, AllocsOp: 10},
		Result{Name: "b", NsOp: 1000, AllocsOp: 0},
		Result{Name: "gone", NsOp: 5, AllocsOp: 5},
	)

	// Within threshold: +10% ns/op passes at 15%.
	_, n := Compare(base, snap(
		Result{Name: "a", NsOp: 1100, AllocsOp: 10},
		Result{Name: "b", NsOp: 900, AllocsOp: 0},
	), 15)
	if n != 0 {
		t.Errorf("within-threshold drift flagged: %d regressions", n)
	}

	// ns/op regression beyond threshold fails.
	report, n := Compare(base, snap(Result{Name: "a", NsOp: 1300, AllocsOp: 10}), 15)
	if n != 1 {
		t.Errorf("+30%% ns/op not flagged: %d regressions\n%s", n, report)
	}

	// allocs/op regression fails even with flat ns/op.
	_, n = Compare(base, snap(Result{Name: "a", NsOp: 1000, AllocsOp: 13}), 15)
	if n != 1 {
		t.Errorf("+30%% allocs/op not flagged: %d regressions", n)
	}

	// Zero-alloc benchmark growing any allocations always fails (relative
	// growth from zero would otherwise divide away).
	_, n = Compare(base, snap(Result{Name: "b", NsOp: 1000, AllocsOp: 1}), 15)
	if n != 1 {
		t.Errorf("0 -> 1 allocs not flagged: %d regressions", n)
	}

	// New and dropped benchmarks are reported but never gate.
	report, n = Compare(base, snap(Result{Name: "fresh", NsOp: 1, AllocsOp: 1}), 15)
	if n != 0 {
		t.Errorf("new/dropped benchmarks gated: %d regressions\n%s", n, report)
	}
	if !strings.Contains(report, "new benchmark") || !strings.Contains(report, "dropped") {
		t.Errorf("report missing new/dropped notes:\n%s", report)
	}
}

// TestSnapshotPathCollision: recording twice on the same date must produce
// distinct files (-2, -3, ...), never overwrite an existing point.
func TestSnapshotPathCollision(t *testing.T) {
	dir := t.TempDir()
	day := "2026-08-08"
	p1, err := snapshotPath(dir, day)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p1) != "BENCH_2026-08-08.json" {
		t.Fatalf("first path = %s", p1)
	}
	if err := os.WriteFile(p1, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p2, err := snapshotPath(dir, day)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p2) != "BENCH_2026-08-08-2.json" {
		t.Fatalf("second path = %s, want -2 suffix", p2)
	}
	if err := os.WriteFile(p2, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p3, err := snapshotPath(dir, day)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p3) != "BENCH_2026-08-08-3.json" {
		t.Fatalf("third path = %s, want -3 suffix", p3)
	}
}

// TestSnapshotKeyOrder: the -2 suffix sorts *after* the unsuffixed file of
// the same day (a plain string sort puts "-2.json" first) and before the
// next day.
func TestSnapshotKeyOrder(t *testing.T) {
	paths := []string{
		"BENCH_2026-08-08-2.json",
		"BENCH_2026-08-09.json",
		"BENCH_2026-08-08.json",
		"BENCH_2026-08-08-10.json",
	}
	sort.SliceStable(paths, func(i, j int) bool {
		di, si := snapshotKey(paths[i])
		dj, sj := snapshotKey(paths[j])
		if di != dj {
			return di < dj
		}
		return si < sj
	})
	want := []string{
		"BENCH_2026-08-08.json",
		"BENCH_2026-08-08-2.json",
		"BENCH_2026-08-08-10.json",
		"BENCH_2026-08-09.json",
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("order[%d] = %s, want %s (full: %v)", i, paths[i], want[i], paths)
		}
	}
}
