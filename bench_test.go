package emmcio

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper, plus ablation and micro benchmarks. Each benchmark runs the
// corresponding experiment end to end and reports its headline number as a
// custom metric, so `go test -bench=. -benchmem` both times the harness and
// regenerates the paper's results:
//
//	BenchmarkTableIII        Table III  (size statistics, 25 traces)
//	BenchmarkTableIV         Table IV   (timing statistics via BIOtracer)
//	BenchmarkFig3Throughput  Fig. 3     (throughput vs request size)
//	BenchmarkFig4SizeDist    Fig. 4     (request size distributions)
//	BenchmarkFig5RespDist    Fig. 5     (response time distributions)
//	BenchmarkFig6Interarrival Fig. 6    (inter-arrival distributions)
//	BenchmarkFig7Combos      Fig. 7     (combo-trace panels)
//	BenchmarkFig8MRT         Fig. 8     (4PS/8PS/HPS mean response time)
//	BenchmarkFig9SpaceUtil   Fig. 9     (space utilization)
//	BenchmarkBIOtracerOverhead §II-C    (tracer overhead)
//	BenchmarkAblation*       Implications 1–5
//
// The per-iteration custom metrics (e.g. hps_mrt_reduction_pct) are the
// numbers EXPERIMENTS.md records.

import (
	"bytes"
	"testing"

	"emmcio/internal/androidstack"
	"emmcio/internal/blockdev"
	"emmcio/internal/core"
	"emmcio/internal/emmc"
	"emmcio/internal/experiments"
	"emmcio/internal/flash"
	"emmcio/internal/ftl"
	"emmcio/internal/paper"
	"emmcio/internal/trace"
	"emmcio/internal/workload"
)

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		res := experiments.TableIII(env)
		if len(res.Measured) != 25 {
			b.Fatal("short table")
		}
	}
}

func BenchmarkTableIV(b *testing.B) {
	var noWait float64
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		res, err := experiments.TableIV(env)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for _, m := range res.Measured[:18] {
			if m.NoWaitPct >= 63 {
				n++
			}
		}
		noWait = float64(n)
	}
	b.ReportMetric(noWait, "traces_nowait>=63%")
}

func BenchmarkFig3Throughput(b *testing.B) {
	var read4, write16m float64
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		res, err := experiments.Fig3(env, 4)
		if err != nil {
			b.Fatal(err)
		}
		read4 = res.Points[0].ReadMBs
		write16m = res.Points[len(res.Points)-1].WriteMBs
	}
	b.ReportMetric(read4, "read4k_MBps")
	b.ReportMetric(write16m, "write16m_MBps")
}

func BenchmarkFig4SizeDist(b *testing.B) {
	var inBand float64
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		res := experiments.Fig4(env)
		n := 0
		for j, name := range res.Names {
			if paper.NotP4Majority[name] {
				continue
			}
			p4 := res.Dists[j].Single4KFraction()
			if p4 >= paper.Char2MinP4-0.03 && p4 <= paper.Char2MaxP4+0.03 {
				n++
			}
		}
		inBand = float64(n)
	}
	b.ReportMetric(inBand, "traces_in_char2_band")
}

func BenchmarkFig5RespDist(b *testing.B) {
	var within16 float64
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		res, err := experiments.Fig5(env)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, d := range res.Dists {
			fr := d.Response.Fractions()
			sum += fr[0] + fr[1] + fr[2] + fr[3]
		}
		within16 = sum / float64(len(res.Dists)) * 100
	}
	b.ReportMetric(within16, "resp_within16ms_pct")
}

func BenchmarkFig6Interarrival(b *testing.B) {
	var fatTail float64
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		res := experiments.Fig6(env)
		n := 0
		for _, d := range res.Dists {
			fr := d.Interarrival.Fractions()
			if fr[len(fr)-1] > 0.20 {
				n++
			}
		}
		fatTail = float64(n)
	}
	b.ReportMetric(fatTail, "traces_gap>16ms_over20pct")
}

func BenchmarkFig7Combos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		res, err := experiments.Fig7(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Dists) != 7 {
			b.Fatal("short combo set")
		}
	}
}

func BenchmarkFig8MRT(b *testing.B) {
	var avg, best, worst float64
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		res, err := experiments.CaseStudy(env)
		if err != nil {
			b.Fatal(err)
		}
		avg = res.AverageReduction() * 100
		best = res.Best().MRTReductionVs4PS() * 100
		worst = res.Worst().MRTReductionVs4PS() * 100
	}
	b.ReportMetric(avg, "hps_mrt_reduction_avg_pct")
	b.ReportMetric(best, "hps_mrt_reduction_best_pct")
	b.ReportMetric(worst, "hps_mrt_reduction_worst_pct")
}

func BenchmarkFig9SpaceUtil(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		res, err := experiments.CaseStudy(env)
		if err != nil {
			b.Fatal(err)
		}
		avg = res.AverageUtilGain() * 100
	}
	b.ReportMetric(avg, "hps_util_gain_avg_pct")
}

func BenchmarkBIOtracerOverhead(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		res, err := experiments.TracerOverhead(env, paper.Twitter)
		if err != nil {
			b.Fatal(err)
		}
		overhead = res.Overheads[0].RequestOverhead * 100
	}
	b.ReportMetric(overhead, "tracer_overhead_pct")
}

// Ablation benchmarks (the five Implications).

func BenchmarkAblationParallelism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		if _, err := experiments.Implication1Parallelism(env, paper.Messaging); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationIdleGC(b *testing.B) {
	var hidden float64
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		rows, err := experiments.Implication2IdleGC(env, paper.Twitter)
		if err != nil {
			b.Fatal(err)
		}
		hidden = rows[0].IdleAbsorbedMs
	}
	b.ReportMetric(hidden, "gc_hidden_ms")
}

func BenchmarkAblationRAMBuffer(b *testing.B) {
	var hit float64
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		rows, err := experiments.Implication3Buffer(env, []int{64}, paper.Twitter)
		if err != nil {
			b.Fatal(err)
		}
		hit = rows[0].HitRatePct
	}
	b.ReportMetric(hit, "buffer_hit_pct")
}

func BenchmarkAblationWearLeveling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		if _, err := experiments.Implication4Wear(env, paper.Twitter); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSLCMode(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		rows, err := experiments.Implication5SLC(env, paper.Messaging)
		if err != nil {
			b.Fatal(err)
		}
		speedup = rows[0].MLCMRTMs / rows[0].SLCMRTMs
	}
	b.ReportMetric(speedup, "slc_speedup_x")
}

// BenchmarkSweepRunner times the case study through the sweep runner at
// width 1 (inline, strict plan order) and at GOMAXPROCS. The results are
// bit-identical; only the wall clock differs.
func BenchmarkSweepRunner(b *testing.B) {
	run := func(b *testing.B, workers int) {
		for i := 0; i < b.N; i++ {
			env := experiments.NewEnv(workload.DefaultSeed)
			env.Workers = workers
			if _, err := experiments.CaseStudy(env); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial-j1", func(b *testing.B) { run(b, 1) })
	b.Run("parallel-jmax", func(b *testing.B) { run(b, 0) })
}

// Micro benchmarks of the substrates.

func BenchmarkTraceGeneration(b *testing.B) {
	prof := workload.DefaultRegistry().Lookup(paper.Twitter)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := prof.Generate(uint64(i))
		if len(tr.Reqs) == 0 {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkDeviceWrite4K(b *testing.B) {
	dev, err := core.NewDevice(core.Scheme4PS, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	at := int64(0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at += 10_000_000
		req := trace.Request{Arrival: at, LBA: uint64(i%100000) * 8, Size: 4096, Op: trace.Write}
		if _, err := dev.Submit(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeviceRead64K(b *testing.B) {
	dev, err := core.NewDevice(core.SchemeHPS, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	at := int64(0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at += 10_000_000
		req := trace.Request{Arrival: at, LBA: uint64(i%10000) * 128, Size: 65536, Op: trace.Read}
		if _, err := dev.Submit(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFTLWrite(b *testing.B) {
	f, err := ftl.New(ftl.Config{
		Geometry:     flash.Geometry{Channels: 2, ChipsPerChannel: 1, DiesPerChip: 2, PlanesPerDie: 2},
		Pools:        []flash.PoolSpec{{PageBytes: 4096, BlocksPerPlane: 64, PagesPerBlock: 64}},
		GCFreeBlocks: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := f.Write(i%8, 0, []int64{int64(i % 2000)}); err != nil {
			b.Fatal(err)
		}
	}
}

// Substrate benchmarks for the Fig. 1 stack layers.

func BenchmarkBlockLayerMerge(b *testing.B) {
	q := blockdev.NewQueue(blockdev.DefaultConfig())
	b.ReportAllocs()
	lba := uint64(0)
	for i := 0; i < b.N; i++ {
		req := trace.Request{Arrival: int64(i), LBA: lba, Size: 4096, Op: trace.Write}
		if err := q.Submit(req); err != nil {
			b.Fatal(err)
		}
		lba += 8
		if i%100 == 99 {
			q.Flush()
			lba += 1 << 20
		}
	}
}

func BenchmarkDriverPacking(b *testing.B) {
	d := blockdev.NewDriver(blockdev.DefaultConfig())
	batch := make([]trace.Request, 32)
	for i := range batch {
		batch[i] = trace.Request{Arrival: int64(i), LBA: uint64(i) * 1000, Size: 16384, Op: trace.Write}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if cmds := d.Pack(batch); len(cmds) == 0 {
			b.Fatal("no commands")
		}
	}
}

func BenchmarkSQLiteRollbackTransaction(b *testing.B) {
	sink := &androidstack.TraceSink{}
	fs := androidstack.NewFS(sink)
	db, err := androidstack.OpenDB(fs, "bench.db", androidstack.Rollback)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := db.Exec([]int64{int64(i % 64)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduledReplaySJF(b *testing.B) {
	prof := workload.DefaultRegistry().Lookup(paper.Messaging)
	for i := 0; i < b.N; i++ {
		tr := prof.Generate(workload.DefaultSeed)
		if _, err := core.ReplayScheduled(core.Scheme4PS, core.Options{}, tr, core.SchedSJF); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMapCache(b *testing.B) {
	var hit float64
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		rows, err := experiments.Implication3MapCache(env, []int{64}, paper.Twitter)
		if err != nil {
			b.Fatal(err)
		}
		hit = rows[0].HitRatePct
	}
	b.ReportMetric(hit, "mapcache_hit_pct")
}

func BenchmarkAblationSDCardSplit(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		rows, err := experiments.Implication1SDCard(env, paper.Music)
		if err != nil {
			b.Fatal(err)
		}
		penalty = rows[0].SplitMRTMs / rows[0].EMMCOnlyMRTMs
	}
	b.ReportMetric(penalty, "sdcard_mrt_penalty_x")
}

func BenchmarkLifetimeProjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		if _, err := experiments.Lifetime(env, paper.Twitter); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAgingCurve(b *testing.B) {
	var knee float64
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		pts, err := experiments.Aging(env, paper.Movie, []float64{0, 1.5})
		if err != nil {
			b.Fatal(err)
		}
		knee = pts[1].RetryFactor
	}
	b.ReportMetric(knee, "retry_factor_at_150pct")
}

func BenchmarkCompressedCodec(b *testing.B) {
	tr := workload.DefaultRegistry().Lookup(paper.Twitter).Generate(workload.DefaultSeed)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := trace.WriteCompressed(&buf, tr); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.ReadCompressed(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWriteBuffer(b *testing.B) {
	var hidden float64
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		rows, err := experiments.WriteBufferStudy(env, paper.Messaging)
		if err != nil {
			b.Fatal(err)
		}
		hidden = 1 - rows[0].BufferedMRTMs/rows[0].PlainMRTMs
	}
	b.ReportMetric(hidden*100, "writebuf_mrt_cut_pct")
}

func BenchmarkAblationCommandQueue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(workload.DefaultSeed)
		if _, err := experiments.CommandQueueStudy(env, paper.Messaging); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEventDrivenReplay(b *testing.B) {
	prof := workload.DefaultRegistry().Lookup(paper.Messaging)
	for i := 0; i < b.N; i++ {
		tr := prof.Generate(workload.DefaultSeed)
		if _, err := core.ReplayEventDriven(core.Scheme4PS, core.Options{}, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeviceSnapshot(b *testing.B) {
	dev, err := core.NewDevice(core.SchemeHPS, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	tr := workload.DefaultRegistry().Lookup(paper.CallIn).Generate(workload.DefaultSeed)
	if _, err := core.ReplayOn(dev, core.SchemeHPS, tr); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := dev.Snapshot(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := emmc.RestoreSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
