module emmcio

go 1.22
