package emmcio

// Cross-layer tests for the job service: server results must match the CLI
// byte for byte, the CLIs must fail loudly (one diagnostic line, exit 1) on
// broken inputs, and emmcd must drain cleanly on SIGTERM.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"emmcio/internal/paper"
	"emmcio/internal/server"
	"emmcio/internal/trace"
	"emmcio/internal/workload"
)

// TestServerReplayMatchesCLI is the determinism contract from the service
// redesign: a replay job's stored result must be byte-identical (modulo
// indentation) to `emmcsim -json` for the same spec.
func TestServerReplayMatchesCLI(t *testing.T) {
	bins := buildCLIs(t)

	cmd := exec.Command(filepath.Join(bins, "emmcsim"), "-app", paper.CallIn, "-json")
	cliOut, err := cmd.Output() // stdout only: the telemetry summary goes to stderr
	if err != nil {
		t.Fatalf("emmcsim -json: %v", err)
	}

	svc := server.New(server.Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"app":%q}`, paper.CallIn)
	resp, err := http.Post(ts.URL+"/v1/replays", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var st server.JobStatus
	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == server.JobDone {
			break
		}
		if st.State == server.JobFailed || time.Now().After(deadline) {
			t.Fatalf("job state %q (error %q)", st.State, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var cliNorm, srvNorm bytes.Buffer
	if err := json.Compact(&cliNorm, cliOut); err != nil {
		t.Fatalf("CLI emitted invalid JSON: %v\n%s", err, cliOut)
	}
	if err := json.Compact(&srvNorm, st.Result); err != nil {
		t.Fatalf("server stored invalid JSON: %v\n%s", err, st.Result)
	}
	if !bytes.Equal(cliNorm.Bytes(), srvNorm.Bytes()) {
		t.Errorf("server result diverges from emmcsim -json:\nCLI:    %s\nserver: %s",
			cliNorm.Bytes(), srvNorm.Bytes())
	}
}

// writeTruncatedTrace writes a valid BIO1 trace file and chops it mid-record.
func writeTruncatedTrace(t *testing.T, dir string) string {
	t.Helper()
	tr := workload.DefaultRegistry().Lookup(paper.CallIn).Generate(workload.DefaultSeed)
	path := filepath.Join(dir, "truncated.btrace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinaryStream(f, trace.FromSlice(tr)); err != nil {
		t.Fatal(err)
	}
	info, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(info.Size()/2 + 3); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestToolDiagnostics pins the failure contract for the read-only tools:
// unreadable or truncated inputs exit non-zero with a single prefixed
// diagnostic line on stderr.
func TestToolDiagnostics(t *testing.T) {
	bins := buildCLIs(t)
	work := t.TempDir()
	truncated := writeTruncatedTrace(t, work)
	missing := filepath.Join(work, "does-not-exist.trace")
	good := filepath.Join(work, "good.trace")
	run(t, filepath.Join(bins, "biotracer"), "-app", paper.CallIn, "-dir", work)
	if err := os.Rename(filepath.Join(work, paper.CallIn+".trace"), good); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		tool string
		args []string
	}{
		{"tracestat missing file", "tracestat", []string{missing}},
		{"tracestat truncated trace", "tracestat", []string{truncated}},
		{"tracediff missing file", "tracediff", []string{good, missing}},
		{"tracediff truncated trace", "tracediff", []string{truncated, good}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(filepath.Join(bins, tc.tool), tc.args...)
			var stdout, stderr bytes.Buffer
			cmd.Stdout, cmd.Stderr = &stdout, &stderr
			err := cmd.Run()
			var exit *exec.ExitError
			if err == nil || !errors.As(err, &exit) || exit.ExitCode() == 0 {
				t.Fatalf("%s %v: err = %v, want non-zero exit", tc.tool, tc.args, err)
			}
			msg := strings.TrimRight(stderr.String(), "\n")
			if msg == "" || strings.Contains(msg, "\n") {
				t.Fatalf("stderr should be one diagnostic line, got %q", stderr.String())
			}
			if !strings.HasPrefix(msg, tc.tool+": ") {
				t.Errorf("diagnostic %q lacks the %q prefix", msg, tc.tool+": ")
			}
		})
	}
}

// TestEmmcdDrainsOnSIGTERM starts the real daemon, puts a replay in flight,
// and verifies SIGTERM produces a clean drain: exit code 0, the drain
// banner, and no "drain incomplete" complaint.
func TestEmmcdDrainsOnSIGTERM(t *testing.T) {
	bins := buildCLIs(t)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cmd := exec.Command(filepath.Join(bins, "emmcd"), "-addr", addr, "-drain-timeout", "60s")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() //nolint:errcheck // belt and braces if the test fails early

	base := "http://" + addr
	waitFor(t, 10*time.Second, func() bool {
		r, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		r.Body.Close()
		return r.StatusCode == http.StatusOK
	})

	// A few hundred thousand events: long enough to still be running when
	// the signal lands, short enough to drain well inside the timeout.
	body := fmt.Sprintf(`{"app":%q,"scheme":"4PS","sessions":300}`, paper.CallIn)
	resp, err := http.Post(base+"/v1/replays", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitFor(t, 10*time.Second, func() bool {
		r, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			return false
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		var st server.JobStatus
		if json.Unmarshal(b, &st) != nil {
			return false
		}
		return st.State == server.JobRunning || st.State == server.JobDone
	})

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("emmcd exited with %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(90 * time.Second):
		cmd.Process.Kill() //nolint:errcheck
		t.Fatalf("emmcd did not exit after SIGTERM\nstderr:\n%s", stderr.String())
	}

	out := stderr.String()
	for _, want := range []string{"draining", "bye"} {
		if !strings.Contains(out, want) {
			t.Errorf("emmcd stderr missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "drain incomplete") {
		t.Errorf("emmcd reported an incomplete drain:\n%s", out)
	}
}

func waitFor(t *testing.T, timeout time.Duration, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
