package flash

import "testing"

func pairedTiming() Timing {
	t := testTiming()
	t.MLCPairing = true
	t.PairingSpread = 0.8
	return t
}

func TestProgramPoolPairing(t *testing.T) {
	tm := pairedTiming()
	pool := PoolSpec{PageBytes: 4096, BlocksPerPlane: 1, PagesPerBlock: 4}
	fast := tm.ProgramPool(pool, 0)
	slow := tm.ProgramPool(pool, 1)
	base := tm.Program(4096)
	if fast >= base || slow <= base {
		t.Fatalf("pairing fast %d / slow %d around base %d", fast, slow, base)
	}
	// The pair must average back to the datasheet's number.
	if avg := (fast + slow) / 2; avg < base-1 || avg > base+1 {
		t.Fatalf("pair average %d, want %d", avg, base)
	}
}

func TestProgramPoolWithoutPairing(t *testing.T) {
	tm := testTiming()
	pool := PoolSpec{PageBytes: 4096, BlocksPerPlane: 1, PagesPerBlock: 4}
	if tm.ProgramPool(pool, 0) != tm.ProgramPool(pool, 1) {
		t.Fatal("pairing disabled but page index changed latency")
	}
}

func TestSLCModeLatencies(t *testing.T) {
	tm := testTiming()
	slc := PoolSpec{PageBytes: 4096, BlocksPerPlane: 1, PagesPerBlock: 2, SLCMode: true}
	mlc := PoolSpec{PageBytes: 4096, BlocksPerPlane: 1, PagesPerBlock: 4}
	if tm.ProgramPool(slc, 0) >= tm.ProgramPool(mlc, 0) {
		t.Fatal("SLC-mode program not faster than MLC")
	}
	if tm.ReadPool(slc) >= tm.ReadPool(mlc) {
		t.Fatal("SLC-mode read not faster than MLC")
	}
	// SLC mode beats even the fast page of a paired MLC pool.
	paired := pairedTiming()
	if paired.ProgramPool(slc, 0) >= paired.ProgramPool(mlc, 0) {
		t.Fatal("SLC-mode program not below the MLC fast page")
	}
}

func TestSLCModeIgnoresPairingParity(t *testing.T) {
	tm := pairedTiming()
	slc := PoolSpec{PageBytes: 4096, BlocksPerPlane: 1, PagesPerBlock: 2, SLCMode: true}
	if tm.ProgramPool(slc, 0) != tm.ProgramPool(slc, 1) {
		t.Fatal("SLC-mode pool latency varies by page index")
	}
}

func TestValidateRejectsBadSpread(t *testing.T) {
	tm := testTiming()
	tm.PairingSpread = 2.5
	if err := tm.Validate(); err == nil {
		t.Fatal("pairing spread 2.5 accepted")
	}
}
