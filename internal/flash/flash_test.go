package flash

import (
	"testing"
	"testing/quick"
)

func TestGeometryPlanes(t *testing.T) {
	g := Geometry{Channels: 2, ChipsPerChannel: 1, DiesPerChip: 2, PlanesPerDie: 2}
	if g.Planes() != 8 {
		t.Fatalf("Planes() = %d, want 8 (Table V)", g.Planes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryChannelStriping(t *testing.T) {
	g := Geometry{Channels: 2, ChipsPerChannel: 1, DiesPerChip: 2, PlanesPerDie: 2}
	ch0, ch1 := 0, 0
	for p := 0; p < g.Planes(); p++ {
		switch g.ChannelOf(p) {
		case 0:
			ch0++
		case 1:
			ch1++
		default:
			t.Fatalf("plane %d mapped to invalid channel", p)
		}
	}
	if ch0 != 4 || ch1 != 4 {
		t.Fatalf("channel balance %d/%d, want 4/4", ch0, ch1)
	}
}

func TestGeometryValidate(t *testing.T) {
	if err := (Geometry{}).Validate(); err == nil {
		t.Fatal("zero geometry accepted")
	}
}

func TestPoolSpec(t *testing.T) {
	p := PoolSpec{PageBytes: 8192, BlocksPerPlane: 512, PagesPerBlock: 1024}
	if p.SectorsPerPage() != 2 {
		t.Fatalf("SectorsPerPage = %d, want 2", p.SectorsPerPage())
	}
	if p.BytesPerPlane() != 512*1024*8192 {
		t.Fatalf("BytesPerPlane = %d", p.BytesPerPlane())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := PoolSpec{PageBytes: 5000, BlocksPerPlane: 1, PagesPerBlock: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("unaligned page size accepted")
	}
}

func testTiming() Timing {
	return Timing{
		PerPage: map[int]OpTiming{
			4096: {ReadNs: 160_000, ProgramNs: 1_385_000},
			8192: {ReadNs: 244_000, ProgramNs: 1_491_000},
		},
		EraseNs:           3_800_000,
		TransferNsPerByte: 5,
		CmdOverheadNs:     25_000,
		RequestOverheadNs: 100_000,
		PipelineFactor:    0.65,
	}
}

func TestTimingLookups(t *testing.T) {
	tm := testTiming()
	if tm.Read(4096) != 160_000 || tm.Program(8192) != 1_491_000 {
		t.Fatal("timing lookup mismatch with Table V")
	}
	if got := tm.Transfer(4096); got != 25_000+4096*5 {
		t.Fatalf("Transfer(4096) = %d", got)
	}
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTimingPanicsOnUnknownPageSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown page size did not panic")
		}
	}()
	testTiming().Read(16384)
}

func TestBlockLifecycle(t *testing.T) {
	b := NewBlock(4)
	if b.Full() || b.NextFree() != 0 {
		t.Fatal("fresh block should be empty")
	}
	p0 := b.Program(2)
	p1 := b.Program(1)
	if p0 != 0 || p1 != 1 {
		t.Fatalf("pages programmed at %d,%d; want 0,1", p0, p1)
	}
	if b.LiveSectors() != 3 || b.LivePages() != 2 {
		t.Fatalf("live sectors %d pages %d, want 3/2", b.LiveSectors(), b.LivePages())
	}
	b.InvalidateSector(0)
	if b.LiveSectors() != 2 || b.PageLive(0) != 1 {
		t.Fatal("invalidation bookkeeping wrong")
	}
	b.InvalidateSector(0)
	if b.LivePages() != 1 {
		t.Fatalf("LivePages = %d, want 1", b.LivePages())
	}
}

func TestBlockProgramsInOrder(t *testing.T) {
	b := NewBlock(3)
	for want := 0; want < 3; want++ {
		if got := b.Program(1); got != want {
			t.Fatalf("Program returned page %d, want %d (in-order constraint)", got, want)
		}
	}
	if !b.Full() || b.NextFree() != -1 {
		t.Fatal("block should be full")
	}
}

func TestBlockEraseResetsState(t *testing.T) {
	b := NewBlock(2)
	b.Program(1)
	b.InvalidateSector(0)
	b.Program(0) // stale page, e.g. wasted half of an 8K page
	b.Erase()
	if b.EraseCount() != 1 {
		t.Fatalf("EraseCount = %d, want 1", b.EraseCount())
	}
	if b.Full() || b.LiveSectors() != 0 || b.Programmed(0) {
		t.Fatal("erase did not reset block")
	}
}

func TestEraseWithLiveDataPanics(t *testing.T) {
	b := NewBlock(2)
	b.Program(1)
	defer func() {
		if recover() == nil {
			t.Fatal("erasing live data did not panic")
		}
	}()
	b.Erase()
}

func TestProgramFullBlockPanics(t *testing.T) {
	b := NewBlock(1)
	b.Program(1)
	defer func() {
		if recover() == nil {
			t.Fatal("programming a full block did not panic")
		}
	}()
	b.Program(1)
}

func TestInvalidateFreePagePanics(t *testing.T) {
	b := NewBlock(1)
	defer func() {
		if recover() == nil {
			t.Fatal("invalidating a free page did not panic")
		}
	}()
	b.InvalidateSector(0)
}

// Property: live sector accounting stays consistent under random
// program/invalidate sequences.
func TestBlockAccountingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		b := NewBlock(64)
		modelLive := 0
		for _, op := range ops {
			if op%2 == 0 && !b.Full() {
				n := int(op/2) % 3
				b.Program(n)
				modelLive += n
			} else if modelLive > 0 {
				// find a page with live sectors
				for i := 0; i < b.Pages(); i++ {
					if b.PageLive(i) > 0 {
						b.InvalidateSector(i)
						modelLive--
						break
					}
				}
			}
			if b.LiveSectors() != modelLive {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
