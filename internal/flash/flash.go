// Package flash models the NAND flash array inside an eMMC device: the
// channel/chip/die/plane/block/page hierarchy, per-page latencies, and the
// page state machine (free → live → stale → erased).
//
// The geometry and latency numbers follow Table V of the paper, which in
// turn takes them from Micron MLC datasheets. A die's planes are the units
// of flash-operation concurrency; channels are the units of transfer
// concurrency, exactly as in SSDsim, the simulator the paper modified.
//
// To support the hybrid-page-size (HPS) scheme, every plane is divided into
// one or more pools; all blocks in a pool share one page size. A pure-4KB
// device (4PS) has a single 4 KB pool, 8PS a single 8 KB pool, and HPS one
// 4 KB pool plus one 8 KB pool per plane (Fig. 10).
package flash

import (
	"errors"
	"fmt"
)

// Typed fault causes. The FTL and device wrap these into richer errors;
// callers classify with errors.Is.
var (
	// ErrProgramFail marks a page program the NAND rejected (status fail).
	ErrProgramFail = errors.New("flash: program failed")
	// ErrEraseFail marks a block erase the NAND rejected.
	ErrEraseFail = errors.New("flash: erase failed")
	// ErrUncorrectable marks a page read that stayed unreadable after the
	// full read-retry ladder.
	ErrUncorrectable = errors.New("flash: uncorrectable read")
)

// SectorBytes is the FTL's mapping granularity: 4 KB, the file-system block
// size. A 4 KB physical page holds one sector; an 8 KB page holds two.
const SectorBytes = 4096

// Geometry is the channel/chip/die/plane arrangement of a device.
type Geometry struct {
	Channels        int
	ChipsPerChannel int
	DiesPerChip     int
	PlanesPerDie    int
}

// Planes returns the total number of planes in the device.
func (g Geometry) Planes() int {
	return g.Channels * g.ChipsPerChannel * g.DiesPerChip * g.PlanesPerDie
}

// ChannelOf maps a plane index to its channel: planes are numbered
// channel-major so consecutive planes sit on alternating channels only
// within a channel's chips; we instead stripe plane→channel round-robin,
// which maximizes transfer overlap for striped sub-requests.
func (g Geometry) ChannelOf(plane int) int { return plane % g.Channels }

// Validate reports nonsensical geometries.
func (g Geometry) Validate() error {
	if g.Channels <= 0 || g.ChipsPerChannel <= 0 || g.DiesPerChip <= 0 || g.PlanesPerDie <= 0 {
		return fmt.Errorf("flash: non-positive geometry %+v", g)
	}
	return nil
}

// PoolSpec describes one page-size pool inside every plane.
type PoolSpec struct {
	// PageBytes is the physical page size of all blocks in the pool.
	PageBytes int
	// BlocksPerPlane is the number of blocks the pool owns in each plane.
	BlocksPerPlane int
	// PagesPerBlock is the number of programmable pages in each block.
	PagesPerBlock int
	// SLCMode marks the pool as operating its MLC cells in SLC mode: only
	// the fast page of each pair is programmed (Implication 5). The caller
	// expresses the 50% capacity loss by halving PagesPerBlock; SLCMode
	// selects the fast-page latencies.
	SLCMode bool
}

// SectorsPerPage returns how many 4 KB mapping sectors one page holds.
func (p PoolSpec) SectorsPerPage() int { return p.PageBytes / SectorBytes }

// BytesPerPlane returns the pool's capacity contribution per plane.
func (p PoolSpec) BytesPerPlane() int64 {
	return int64(p.BlocksPerPlane) * int64(p.PagesPerBlock) * int64(p.PageBytes)
}

// Validate reports nonsensical pool specs.
func (p PoolSpec) Validate() error {
	if p.PageBytes < SectorBytes || p.PageBytes%SectorBytes != 0 {
		return fmt.Errorf("flash: page size %d not a positive multiple of %d", p.PageBytes, SectorBytes)
	}
	if p.BlocksPerPlane <= 0 || p.PagesPerBlock <= 0 {
		return fmt.Errorf("flash: non-positive pool dimensions %+v", p)
	}
	return nil
}

// OpTiming is the (read, program) latency pair for one page size, in
// nanoseconds.
type OpTiming struct {
	ReadNs    int64
	ProgramNs int64
}

// Timing collects the latency model of the device.
type Timing struct {
	// PerPage maps page size in bytes to its read/program latencies
	// (Table V: 4 KB → 160/1385 µs, 8 KB → 244/1491 µs).
	PerPage map[int]OpTiming
	// EraseNs is the block erase latency (3800 µs in Table V).
	EraseNs int64
	// TransferNsPerByte models the channel bus (ns per byte moved).
	TransferNsPerByte float64
	// CmdOverheadNs is the fixed per-page-operation command cost on the
	// channel.
	CmdOverheadNs int64
	// RequestOverheadNs is the fixed per-request cost in the controller
	// (firmware dispatch, mapping lookup), paid once per host request.
	RequestOverheadNs int64
	// PipelineFactor scales read/program latency for the second and later
	// consecutive operations a single host request issues to the same plane,
	// modeling cache-mode program/read pipelining. 1 disables pipelining.
	// Only honored when ChannelInterleave is true — a controller that holds
	// the channel through the flash operation cannot pipeline.
	PipelineFactor float64
	// ChannelInterleave selects the channel discipline. When false (simple
	// eMMC controllers — the premise of the paper's Implication 1), the
	// channel is held for the whole transfer+flash operation, so a request's
	// effective parallelism is the channel count. When true (SSD-style
	// interleaving), the channel frees after the data transfer and flash
	// operations overlap across planes.
	ChannelInterleave bool

	// MLC fast/slow page model (Implication 5). An MLC cell pair exposes a
	// fast (LSB) and a slow (MSB) page; PerPage latencies are the pair
	// average. With MLCPairing set, programs alternate fast/slow by page
	// index using PairingSpread: fast = program × (1 − spread/2),
	// slow = program × (1 + spread/2). SLC-mode pools always pay fast-page
	// cost, for reads as well (SLCReadFactor).
	MLCPairing    bool
	PairingSpread float64 // e.g. 0.8: fast 0.6×, slow 1.4×
	// SLCReadFactor and SLCProgramFactor scale latencies for SLCMode pools;
	// zero values default to 0.7 and 0.45 (Micron L7x-class SLC-mode).
	SLCReadFactor    float64
	SLCProgramFactor float64
}

// slcDefaults returns the effective SLC factors.
func (t Timing) slcDefaults() (read, program float64) {
	read, program = t.SLCReadFactor, t.SLCProgramFactor
	if read == 0 {
		read = 0.7
	}
	if program == 0 {
		program = 0.45
	}
	return read, program
}

// ReadPool returns the read latency for a page of the given pool.
func (t Timing) ReadPool(pool PoolSpec) int64 {
	base := t.Read(pool.PageBytes)
	if pool.SLCMode {
		rf, _ := t.slcDefaults()
		return int64(float64(base) * rf)
	}
	return base
}

// ProgramPool returns the program latency for the pool's page at the given
// in-block page index (the index selects fast vs slow under MLC pairing).
func (t Timing) ProgramPool(pool PoolSpec, pageIndex int) int64 {
	base := t.Program(pool.PageBytes)
	if pool.SLCMode {
		_, pf := t.slcDefaults()
		return int64(float64(base) * pf)
	}
	if t.MLCPairing && t.PairingSpread > 0 {
		if pageIndex%2 == 0 {
			return int64(float64(base) * (1 - t.PairingSpread/2))
		}
		return int64(float64(base) * (1 + t.PairingSpread/2))
	}
	return base
}

// Read returns the read latency for the given page size.
func (t Timing) Read(pageBytes int) int64 {
	ot, ok := t.PerPage[pageBytes]
	if !ok {
		panic(fmt.Sprintf("flash: no timing for page size %d", pageBytes))
	}
	return ot.ReadNs
}

// Program returns the program latency for the given page size.
func (t Timing) Program(pageBytes int) int64 {
	ot, ok := t.PerPage[pageBytes]
	if !ok {
		panic(fmt.Sprintf("flash: no timing for page size %d", pageBytes))
	}
	return ot.ProgramNs
}

// Transfer returns the channel occupancy for moving n payload bytes plus
// one command.
func (t Timing) Transfer(n int) int64 {
	return t.CmdOverheadNs + int64(float64(n)*t.TransferNsPerByte)
}

// Validate reports incomplete timing models.
func (t Timing) Validate() error {
	if len(t.PerPage) == 0 {
		return fmt.Errorf("flash: timing has no per-page latencies")
	}
	for sz, ot := range t.PerPage {
		if ot.ReadNs <= 0 || ot.ProgramNs <= 0 {
			return fmt.Errorf("flash: non-positive latency for page size %d", sz)
		}
	}
	if t.EraseNs <= 0 {
		return fmt.Errorf("flash: non-positive erase latency")
	}
	if t.PipelineFactor <= 0 || t.PipelineFactor > 1 {
		return fmt.Errorf("flash: pipeline factor %v outside (0,1]", t.PipelineFactor)
	}
	if t.PairingSpread < 0 || t.PairingSpread >= 2 {
		return fmt.Errorf("flash: pairing spread %v outside [0,2)", t.PairingSpread)
	}
	return nil
}

// Page states inside a block.
const (
	pageFree = -1 // never programmed since last erase
)

// Block is one erase unit. Pages are programmed strictly in order
// (writePtr), the NAND constraint that forces out-of-place updates.
type Block struct {
	// live[i] counts the live 4 KB sectors page i still holds;
	// pageFree marks an unprogrammed page.
	live     []int8
	writePtr int
	// liveSectors is the block total, kept for O(1) GC victim scoring.
	liveSectors int
	erases      int
	// retired marks a grown bad block: a program or erase failure made the
	// FTL withdraw it from allocation permanently.
	retired bool
}

// NewBlock returns an erased block with the given page count.
func NewBlock(pagesPerBlock int) *Block {
	b := &Block{live: make([]int8, pagesPerBlock)}
	for i := range b.live {
		b.live[i] = pageFree
	}
	return b
}

// Full reports whether every page has been programmed.
func (b *Block) Full() bool { return b.writePtr >= len(b.live) }

// NextFree returns the next programmable page index, or -1 when full.
func (b *Block) NextFree() int {
	if b.Full() {
		return -1
	}
	return b.writePtr
}

// NextFreeCount returns the write pointer position, i.e. how many pages have
// been programmed so far.
func (b *Block) NextFreeCount() int { return b.writePtr }

// Program marks the next page programmed with the given number of live
// sectors and returns its index. It panics on a full block or an impossible
// sector count — both indicate allocator bugs, not recoverable conditions.
func (b *Block) Program(liveSectors int) int {
	if b.retired {
		panic("flash: programming a retired block")
	}
	if b.Full() {
		panic("flash: programming a full block")
	}
	if liveSectors < 0 || liveSectors > 127 {
		panic("flash: implausible live sector count")
	}
	i := b.writePtr
	b.live[i] = int8(liveSectors)
	b.liveSectors += liveSectors
	b.writePtr++
	return i
}

// InvalidateSector marks one live sector of page i stale.
func (b *Block) InvalidateSector(i int) {
	if b.live[i] <= 0 {
		panic("flash: invalidating a sector on a page with no live sectors")
	}
	b.live[i]--
	b.liveSectors--
}

// LiveSectors returns the block's total live sector count.
func (b *Block) LiveSectors() int { return b.liveSectors }

// LivePages returns how many pages still hold at least one live sector.
func (b *Block) LivePages() int {
	n := 0
	for _, c := range b.live {
		if c > 0 {
			n++
		}
	}
	return n
}

// PageLive returns the live sector count of page i (0 for stale/free pages).
func (b *Block) PageLive(i int) int {
	if b.live[i] == pageFree {
		return 0
	}
	return int(b.live[i])
}

// Programmed reports whether page i has been programmed since the last erase.
func (b *Block) Programmed(i int) bool { return b.live[i] != pageFree }

// Erase resets the block to the free state and bumps its wear counter.
// Erasing a block with live sectors is a data-loss bug and panics.
func (b *Block) Erase() {
	if b.retired {
		panic("flash: erasing a retired block")
	}
	if b.liveSectors != 0 {
		panic("flash: erasing a block that still holds live data")
	}
	for i := range b.live {
		b.live[i] = pageFree
	}
	b.writePtr = 0
	b.erases++
}

// Burn consumes the next page as a failed program: the page is marked
// programmed but carries no live data (its cells are in an undefined
// state), so the write pointer advances past it. The FTL calls this when
// the NAND reports a program-status failure, then re-programs the payload
// elsewhere.
func (b *Block) Burn() int {
	if b.retired {
		panic("flash: burning a page of a retired block")
	}
	if b.Full() {
		panic("flash: burning a page of a full block")
	}
	i := b.writePtr
	b.live[i] = 0
	b.writePtr++
	return i
}

// Retire withdraws the block from service as a grown bad block. Its live
// data must have been relocated first; retiring live data is a bug and
// panics.
func (b *Block) Retire() {
	if b.liveSectors != 0 {
		panic("flash: retiring a block that still holds live data")
	}
	b.retired = true
}

// Retired reports whether the block has been withdrawn from service.
func (b *Block) Retired() bool { return b.retired }

// EraseCount returns how many times the block has been erased.
func (b *Block) EraseCount() int { return b.erases }

// Pages returns the block's page count.
func (b *Block) Pages() int { return len(b.live) }
