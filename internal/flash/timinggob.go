package flash

import (
	"bytes"
	"encoding/gob"
	"sort"
)

// Canonical gob encoding for Timing. PerPage is a map, and gob serializes
// maps in random iteration order, so two encodings of the same Timing would
// differ byte-for-byte. Device snapshots are content-addressed (the digest
// of the gob payload names the snapshot), which requires equal state to
// encode to equal bytes — so Timing encodes through a wire struct whose
// per-page entries are sorted by page size.

// pageTiming is one PerPage entry in the canonical wire form.
type pageTiming struct {
	Bytes int
	Op    OpTiming
}

// timingWire mirrors Timing with the map flattened to a sorted slice.
type timingWire struct {
	PerPage           []pageTiming
	EraseNs           int64
	TransferNsPerByte float64
	CmdOverheadNs     int64
	RequestOverheadNs int64
	PipelineFactor    float64
	ChannelInterleave bool
	MLCPairing        bool
	PairingSpread     float64
	SLCReadFactor     float64
	SLCProgramFactor  float64
}

// GobEncode implements gob.GobEncoder with a deterministic byte form.
func (t Timing) GobEncode() ([]byte, error) {
	w := timingWire{
		EraseNs:           t.EraseNs,
		TransferNsPerByte: t.TransferNsPerByte,
		CmdOverheadNs:     t.CmdOverheadNs,
		RequestOverheadNs: t.RequestOverheadNs,
		PipelineFactor:    t.PipelineFactor,
		ChannelInterleave: t.ChannelInterleave,
		MLCPairing:        t.MLCPairing,
		PairingSpread:     t.PairingSpread,
		SLCReadFactor:     t.SLCReadFactor,
		SLCProgramFactor:  t.SLCProgramFactor,
	}
	for size, op := range t.PerPage {
		w.PerPage = append(w.PerPage, pageTiming{Bytes: size, Op: op})
	}
	sort.Slice(w.PerPage, func(i, j int) bool { return w.PerPage[i].Bytes < w.PerPage[j].Bytes })
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder for the canonical wire form.
func (t *Timing) GobDecode(data []byte) error {
	var w timingWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	*t = Timing{
		EraseNs:           w.EraseNs,
		TransferNsPerByte: w.TransferNsPerByte,
		CmdOverheadNs:     w.CmdOverheadNs,
		RequestOverheadNs: w.RequestOverheadNs,
		PipelineFactor:    w.PipelineFactor,
		ChannelInterleave: w.ChannelInterleave,
		MLCPairing:        w.MLCPairing,
		PairingSpread:     w.PairingSpread,
		SLCReadFactor:     w.SLCReadFactor,
		SLCProgramFactor:  w.SLCProgramFactor,
	}
	if len(w.PerPage) > 0 {
		t.PerPage = make(map[int]OpTiming, len(w.PerPage))
		for _, p := range w.PerPage {
			t.PerPage[p.Bytes] = p.Op
		}
	}
	return nil
}
