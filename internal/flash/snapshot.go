package flash

// BlockState is the serializable form of a Block, used by device snapshots
// (archiving an aged device instead of replaying months of history).
type BlockState struct {
	Live     []int8
	WritePtr int
	LiveSecs int
	Erases   int
	// Retired marks a grown bad block. Absent in pre-fault snapshots, which
	// gob decodes as false — exactly the pre-fault semantics.
	Retired bool
}

// Dump exports the block's state.
func (b *Block) Dump() BlockState {
	live := make([]int8, len(b.live))
	copy(live, b.live)
	return BlockState{Live: live, WritePtr: b.writePtr, LiveSecs: b.liveSectors, Erases: b.erases, Retired: b.retired}
}

// RestoreBlock builds a block from a dumped state.
func RestoreBlock(s BlockState) *Block {
	live := make([]int8, len(s.Live))
	copy(live, s.Live)
	return &Block{live: live, writePtr: s.WritePtr, liveSectors: s.LiveSecs, erases: s.Erases, retired: s.Retired}
}
