// Package analysis computes the paper's §III trace characterization: the
// size-related statistics of Table III, the timing-related statistics of
// Table IV, the distribution figures (Figs. 4–7), and the six
// Characteristics the paper distills from them.
package analysis

import (
	"emmcio/internal/stats"
	"emmcio/internal/trace"
)

// SizeStats mirrors one row of Table III, measured from a trace.
type SizeStats struct {
	Name         string
	DataKB       int64
	Requests     int
	MaxKB        int
	AveKB        float64
	AveReadKB    float64
	AveWriteKB   float64
	WriteReqPct  float64
	WriteSizePct float64
}

// SizeStatsOf measures the Table III columns of a trace.
func SizeStatsOf(tr *trace.Trace) SizeStats {
	s := SizeStats{Name: tr.Name, Requests: len(tr.Reqs)}
	if len(tr.Reqs) == 0 {
		return s
	}
	var total, written, readBytes uint64
	var reads, writes int
	var maxSize uint32
	for i := range tr.Reqs {
		r := &tr.Reqs[i]
		total += uint64(r.Size)
		if r.Size > maxSize {
			maxSize = r.Size
		}
		if r.Op == trace.Write {
			written += uint64(r.Size)
			writes++
		} else {
			readBytes += uint64(r.Size)
			reads++
		}
	}
	s.DataKB = int64(total / 1024)
	s.MaxKB = int(maxSize / 1024)
	s.AveKB = float64(total) / float64(len(tr.Reqs)) / 1024
	if reads > 0 {
		s.AveReadKB = float64(readBytes) / float64(reads) / 1024
	}
	if writes > 0 {
		s.AveWriteKB = float64(written) / float64(writes) / 1024
	}
	s.WriteReqPct = float64(writes) / float64(len(tr.Reqs)) * 100
	if total > 0 {
		s.WriteSizePct = float64(written) / float64(total) * 100
	}
	return s
}

// TimingStats mirrors one row of Table IV, measured from a replayed trace
// (ServiceStart/Finish must be filled).
type TimingStats struct {
	Name        string
	DurationSec float64
	ArrivalRate float64 // requests per second
	AccessRate  float64 // KB per second
	NoWaitPct   float64
	MeanServMs  float64
	MeanRespMs  float64
	SpatialPct  float64
	TemporalPct float64
}

// TimingStatsOf measures the Table IV columns of a replayed trace.
func TimingStatsOf(tr *trace.Trace) TimingStats {
	t := TimingStats{Name: tr.Name}
	n := len(tr.Reqs)
	if n == 0 {
		return t
	}
	dur := tr.Duration()
	t.DurationSec = float64(dur) / 1e9
	if dur > 0 {
		t.ArrivalRate = float64(n) / t.DurationSec
		t.AccessRate = float64(tr.TotalBytes()) / 1024 / t.DurationSec
	}
	var noWait int
	var sumServ, sumResp int64
	for i := range tr.Reqs {
		r := &tr.Reqs[i]
		if r.WaitTime() == 0 {
			noWait++
		}
		sumServ += r.ServiceTime()
		sumResp += r.ResponseTime()
	}
	t.NoWaitPct = float64(noWait) / float64(n) * 100
	t.MeanServMs = float64(sumServ) / float64(n) / 1e6
	t.MeanRespMs = float64(sumResp) / float64(n) / 1e6
	t.SpatialPct = stats.SpatialLocality(tr) * 100
	t.TemporalPct = stats.TemporalLocality(tr) * 100
	return t
}

// Distributions holds the per-trace histograms behind Figs. 4, 5, 6 and 7.
type Distributions struct {
	Name         string
	Size         *stats.Histogram // Fig. 4 buckets (bytes)
	Response     *stats.Histogram // Fig. 5 buckets (ns)
	Interarrival *stats.Histogram // Fig. 6 buckets (ns)
}

// DistributionsOf builds the three histograms of a trace. Response is only
// populated when the trace has been replayed.
func DistributionsOf(tr *trace.Trace) Distributions {
	d := Distributions{
		Name:         tr.Name,
		Size:         stats.NewHistogram(stats.SizeBounds()),
		Response:     stats.NewHistogram(stats.ResponseBounds()),
		Interarrival: stats.NewHistogram(stats.InterarrivalBounds()),
	}
	for i := range tr.Reqs {
		r := &tr.Reqs[i]
		d.Size.Add(int64(r.Size))
		if rt := r.ResponseTime(); rt > 0 {
			d.Response.Add(rt)
		}
	}
	for _, gap := range stats.Interarrivals(tr) {
		d.Interarrival.Add(gap)
	}
	return d
}

// Single4KFraction returns the Fig. 4 single-page request fraction.
func (d Distributions) Single4KFraction() float64 {
	return d.Size.Fractions()[0]
}

// SizeResponseCorrelation quantifies §III-C's observation that response-time
// distributions are strongly correlated with request-size distributions:
// the Pearson correlation between request size and response time across the
// trace's requests.
func SizeResponseCorrelation(tr *trace.Trace) float64 {
	if len(tr.Reqs) == 0 {
		return 0
	}
	xs := make([]float64, 0, len(tr.Reqs))
	ys := make([]float64, 0, len(tr.Reqs))
	for i := range tr.Reqs {
		r := &tr.Reqs[i]
		if r.ResponseTime() <= 0 {
			continue
		}
		xs = append(xs, float64(r.Size))
		ys = append(ys, float64(r.ResponseTime()))
	}
	return stats.Correlation(xs, ys)
}

// ResponseSummary returns order statistics of the trace's response times
// in nanoseconds (zero Summary for unreplayed traces).
func ResponseSummary(tr *trace.Trace) stats.Summary {
	var samples []int64
	for i := range tr.Reqs {
		if rt := tr.Reqs[i].ResponseTime(); rt > 0 {
			samples = append(samples, rt)
		}
	}
	return stats.Summarize(samples)
}

// InterarrivalSummary returns order statistics of the trace's inter-arrival
// gaps in nanoseconds.
func InterarrivalSummary(tr *trace.Trace) stats.Summary {
	return stats.Summarize(stats.Interarrivals(tr))
}

// FullReport bundles everything §III computes for one trace.
type FullReport struct {
	Size          SizeStats
	Timing        TimingStats
	Dists         Distributions
	Response      stats.Summary
	Interarrival  stats.Summary
	SizeRespCorr  float64
	GapDispersion float64
}

// Report computes the complete characterization of a (replayed) trace.
func Report(tr *trace.Trace) FullReport {
	return FullReport{
		Size:          SizeStatsOf(tr),
		Timing:        TimingStatsOf(tr),
		Dists:         DistributionsOf(tr),
		Response:      ResponseSummary(tr),
		Interarrival:  InterarrivalSummary(tr),
		SizeRespCorr:  SizeResponseCorrelation(tr),
		GapDispersion: stats.IndexOfDispersion(stats.Interarrivals(tr)),
	}
}

// Accumulator computes SizeStats, TimingStats and Distributions in one
// pass over a request stream without materializing the trace — pair it
// with trace.StreamText for multi-hour collections in constant memory.
// Localities are computed with the same definitions as the batch path
// (temporal locality keeps a page-set, which grows with the unique
// footprint, not the request count).
type Accumulator struct {
	name string

	n         int
	total     uint64
	written   uint64
	readBytes uint64
	reads     int
	writes    int
	maxSize   uint32

	firstArrival int64
	lastArrival  int64
	maxFinish    int64
	noWait       int
	sumServ      int64
	sumResp      int64

	prevEnd     uint64
	seqHits     int
	seenPages   map[uint64]struct{}
	maxPages    int // 0 = unbounded (paper-exact); else page-set size cap
	temporalHit int

	dists Distributions

	resp *stats.OnlineSummary
	gaps *stats.OnlineSummary
	corr stats.OnlineCorrelation
}

// NewAccumulator builds an empty accumulator with an unbounded page set —
// temporal locality is paper-exact, and memory grows with the trace's
// unique page footprint (not its length).
func NewAccumulator(name string) *Accumulator { return NewAccumulatorBounded(name, 0) }

// NewAccumulatorBounded caps the temporal-locality page set at maxPages
// entries (0 = unbounded). Once the set is full, never-seen pages keep
// counting as misses but are no longer remembered, so the reported temporal
// locality is a lower bound; every other statistic is unaffected. Use this
// for traces whose footprint exceeds what the caller wants resident.
func NewAccumulatorBounded(name string, maxPages int) *Accumulator {
	a := &Accumulator{
		name:      name,
		seenPages: make(map[uint64]struct{}),
		maxPages:  maxPages,
		dists: Distributions{
			Name:         name,
			Size:         stats.NewHistogram(stats.SizeBounds()),
			Response:     stats.NewHistogram(stats.ResponseBounds()),
			Interarrival: stats.NewHistogram(stats.InterarrivalBounds()),
		},
		resp: stats.NewOnlineSummary(0),
		gaps: stats.NewOnlineSummary(0),
	}
	return a
}

// Add feeds one request (in arrival order).
func (a *Accumulator) Add(r trace.Request) {
	if a.n == 0 {
		a.firstArrival = r.Arrival
	} else {
		gap := r.Arrival - a.lastArrival
		a.dists.Interarrival.Add(gap)
		a.gaps.Add(gap)
		if r.LBA == a.prevEnd {
			a.seqHits++
		}
	}
	a.lastArrival = r.Arrival
	a.prevEnd = r.EndLBA()

	page := r.LBA / trace.SectorsPerPage
	if _, ok := a.seenPages[page]; ok {
		a.temporalHit++
	} else if a.maxPages == 0 || len(a.seenPages) < a.maxPages {
		a.seenPages[page] = struct{}{}
	}

	a.n++
	a.total += uint64(r.Size)
	if r.Size > a.maxSize {
		a.maxSize = r.Size
	}
	if r.Op == trace.Write {
		a.written += uint64(r.Size)
		a.writes++
	} else {
		a.readBytes += uint64(r.Size)
		a.reads++
	}
	a.dists.Size.Add(int64(r.Size))
	if rt := r.ResponseTime(); rt > 0 {
		a.dists.Response.Add(rt)
		a.resp.Add(rt)
		a.corr.Add(float64(r.Size), float64(rt))
		a.sumResp += rt
		a.sumServ += r.ServiceTime()
		if r.WaitTime() == 0 {
			a.noWait++
		}
	} else if r.ServiceStart == r.Arrival && r.Finish == 0 {
		a.noWait++
	}
	if r.Finish > a.maxFinish {
		a.maxFinish = r.Finish
	}
}

// Size returns the Table III columns accumulated so far.
func (a *Accumulator) Size() SizeStats {
	s := SizeStats{Name: a.name, Requests: a.n}
	if a.n == 0 {
		return s
	}
	s.DataKB = int64(a.total / 1024)
	s.MaxKB = int(a.maxSize / 1024)
	s.AveKB = float64(a.total) / float64(a.n) / 1024
	if a.reads > 0 {
		s.AveReadKB = float64(a.readBytes) / float64(a.reads) / 1024
	}
	if a.writes > 0 {
		s.AveWriteKB = float64(a.written) / float64(a.writes) / 1024
	}
	s.WriteReqPct = float64(a.writes) / float64(a.n) * 100
	if a.total > 0 {
		s.WriteSizePct = float64(a.written) / float64(a.total) * 100
	}
	return s
}

// Timing returns the Table IV columns accumulated so far.
func (a *Accumulator) Timing() TimingStats {
	t := TimingStats{Name: a.name}
	if a.n == 0 {
		return t
	}
	dur := a.lastArrival
	if a.maxFinish > dur {
		dur = a.maxFinish
	}
	t.DurationSec = float64(dur) / 1e9
	if dur > 0 {
		t.ArrivalRate = float64(a.n) / t.DurationSec
		t.AccessRate = float64(a.total) / 1024 / t.DurationSec
	}
	t.NoWaitPct = float64(a.noWait) / float64(a.n) * 100
	t.MeanServMs = float64(a.sumServ) / float64(a.n) / 1e6
	t.MeanRespMs = float64(a.sumResp) / float64(a.n) / 1e6
	t.SpatialPct = float64(a.seqHits) / float64(a.n) * 100
	t.TemporalPct = float64(a.temporalHit) / float64(a.n) * 100
	return t
}

// Dists returns the accumulated histograms.
func (a *Accumulator) Dists() Distributions { return a.dists }

// Requests returns the number of requests fed so far.
func (a *Accumulator) Requests() int { return a.n }

// SpatialLocality returns the §III-C sequential-successor fraction in
// [0, 1], matching stats.SpatialLocality bit for bit on the same arrival
// order (including its 0 for fewer than two requests).
func (a *Accumulator) SpatialLocality() float64 {
	if a.n < 2 {
		return 0
	}
	return float64(a.seqHits) / float64(a.n)
}

// TemporalLocality returns the §III-C address re-hit fraction in [0, 1],
// matching stats.TemporalLocality bit for bit when the page set is
// unbounded (a lower bound otherwise — see NewAccumulatorBounded).
func (a *Accumulator) TemporalLocality() float64 {
	if a.n == 0 {
		return 0
	}
	return float64(a.temporalHit) / float64(a.n)
}

// Response returns order statistics of the response times seen so far —
// bit-identical to ResponseSummary while the sample count is below the
// online retention cap, a bounded-memory estimate past it.
func (a *Accumulator) Response() stats.Summary { return a.resp.Summary() }

// Interarrival returns order statistics of the arrival gaps seen so far,
// with the same exact-below-cap contract as Response.
func (a *Accumulator) Interarrival() stats.Summary { return a.gaps.Summary() }

// SizeResponseCorrelation returns the §III-C size/response-time Pearson
// correlation, bit-identical to the batch SizeResponseCorrelation over the
// same request sequence.
func (a *Accumulator) SizeResponseCorrelation() float64 { return a.corr.Value() }

// GapDispersion returns the inter-arrival index of dispersion,
// bit-identical to stats.IndexOfDispersion over the same gap sequence.
func (a *Accumulator) GapDispersion() float64 { return a.gaps.IndexOfDispersion() }

// Report bundles the accumulated characterization in the same shape as the
// batch Report. Response and Interarrival are exact below the online
// retention cap (so small-trace reports are bit-identical to the batch
// path) and bounded-memory estimates past it.
func (a *Accumulator) Report() FullReport {
	return FullReport{
		Size:          a.Size(),
		Timing:        a.Timing(),
		Dists:         a.Dists(),
		Response:      a.Response(),
		Interarrival:  a.Interarrival(),
		SizeRespCorr:  a.SizeResponseCorrelation(),
		GapDispersion: a.GapDispersion(),
	}
}

// Summary returns the per-trace bundle EvaluateCharacteristicsFrom
// consumes.
func (a *Accumulator) Summary() TraceSummary {
	return TraceSummary{Size: a.Size(), Timing: a.Timing(), Dists: a.Dists()}
}
