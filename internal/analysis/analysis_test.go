package analysis

import (
	"math"
	"testing"

	"emmcio/internal/trace"
)

func replayedTrace() *trace.Trace {
	tr := &trace.Trace{Name: "T"}
	at := int64(0)
	for i := 0; i < 100; i++ {
		at += 10_000_000 // 10 ms apart
		r := trace.Request{
			Arrival: at,
			LBA:     uint64(i) * 8,
			Size:    uint32((i%4 + 1) * 4096),
			Op:      trace.Write,
		}
		if i%4 == 0 {
			r.Op = trace.Read
		}
		r.ServiceStart = r.Arrival
		if i%10 == 0 {
			r.ServiceStart += 500_000 // some waiting
		}
		r.Finish = r.ServiceStart + int64(r.Size)*300 // response grows with size
		tr.Reqs = append(tr.Reqs, r)
	}
	return tr
}

func TestSizeStatsOf(t *testing.T) {
	tr := &trace.Trace{Name: "S", Reqs: []trace.Request{
		{Size: 4096, Op: trace.Write},
		{Size: 8192, Op: trace.Read},
		{Size: 16384, Op: trace.Write},
	}}
	s := SizeStatsOf(tr)
	if s.Requests != 3 || s.MaxKB != 16 {
		t.Fatalf("%+v", s)
	}
	if s.DataKB != 28 {
		t.Errorf("DataKB = %d, want 28", s.DataKB)
	}
	if math.Abs(s.AveKB-28.0/3) > 0.01 {
		t.Errorf("AveKB = %v", s.AveKB)
	}
	if s.AveReadKB != 8 || s.AveWriteKB != 10 {
		t.Errorf("AveReadKB %v AveWriteKB %v", s.AveReadKB, s.AveWriteKB)
	}
	if math.Abs(s.WriteReqPct-66.67) > 0.1 {
		t.Errorf("WriteReqPct %v", s.WriteReqPct)
	}
	if math.Abs(s.WriteSizePct-20.0/28*100) > 0.1 {
		t.Errorf("WriteSizePct %v", s.WriteSizePct)
	}
}

func TestSizeStatsEmpty(t *testing.T) {
	s := SizeStatsOf(&trace.Trace{Name: "E"})
	if s.Requests != 0 || s.DataKB != 0 {
		t.Fatal("empty trace should produce zero stats")
	}
}

func TestTimingStatsOf(t *testing.T) {
	tr := replayedTrace()
	ts := TimingStatsOf(tr)
	if ts.NoWaitPct != 90 {
		t.Errorf("NoWaitPct %v, want 90", ts.NoWaitPct)
	}
	if ts.MeanRespMs <= ts.MeanServMs {
		t.Error("response must include wait time")
	}
	if ts.ArrivalRate < 95 || ts.ArrivalRate > 105 {
		t.Errorf("ArrivalRate %v, want ~100/s", ts.ArrivalRate)
	}
	if ts.DurationSec <= 0 {
		t.Error("zero duration")
	}
}

func TestDistributionsOf(t *testing.T) {
	tr := replayedTrace()
	d := DistributionsOf(tr)
	if d.Size.Total() != 100 {
		t.Errorf("size histogram holds %d", d.Size.Total())
	}
	if d.Response.Total() != 100 {
		t.Errorf("response histogram holds %d", d.Response.Total())
	}
	if d.Interarrival.Total() != 99 {
		t.Errorf("interarrival histogram holds %d", d.Interarrival.Total())
	}
	if f := d.Single4KFraction(); f != 0.25 {
		t.Errorf("Single4KFraction %v, want 0.25", f)
	}
}

func TestSizeResponseCorrelation(t *testing.T) {
	tr := replayedTrace()
	// Response time was constructed proportional to size.
	if c := SizeResponseCorrelation(tr); c < 0.95 {
		t.Errorf("correlation %v, want ~1 (response built from size)", c)
	}
	if c := SizeResponseCorrelation(&trace.Trace{}); c != 0 {
		t.Errorf("empty trace correlation %v", c)
	}
}

func TestEvaluateCharacteristicsOnSyntheticSet(t *testing.T) {
	// Build a set with the paper's qualitative properties and check all six
	// findings hold.
	var traces []*trace.Trace
	for k := 0; k < 6; k++ {
		tr := &trace.Trace{Name: "A"}
		at := int64(0)
		for i := 0; i < 400; i++ {
			at += 300_000_000 // 300 ms gaps: long inter-arrivals
			r := trace.Request{Arrival: at, LBA: uint64(i%50) * 1000 * 8, Size: 4096, Op: trace.Write}
			if i%5 == 0 {
				r.Size = 65536
				r.Op = trace.Read
			}
			r.ServiceStart = r.Arrival
			r.Finish = r.ServiceStart + 2_000_000
			tr.Reqs = append(tr.Reqs, r)
		}
		traces = append(traces, tr)
	}
	findings := EvaluateCharacteristics(traces)
	if len(findings) != 6 {
		t.Fatalf("%d findings, want 6", len(findings))
	}
	for _, f := range findings {
		switch f.ID {
		case 1, 2, 3, 6:
			if !f.Holds {
				t.Errorf("characteristic %d should hold on this set: %s", f.ID, f.Evidence)
			}
		}
		if f.Claim == "" || f.Evidence == "" {
			t.Errorf("characteristic %d missing text", f.ID)
		}
	}
}

func TestResponseSummary(t *testing.T) {
	tr := replayedTrace()
	s := ResponseSummary(tr)
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	if s.P99 < s.P50 || s.Max < s.P99 || s.Min > s.P50 {
		t.Fatalf("ordering violated: %+v", s)
	}
	if ResponseSummary(&trace.Trace{}).Count != 0 {
		t.Fatal("empty trace should yield empty summary")
	}
}

func TestInterarrivalSummary(t *testing.T) {
	tr := replayedTrace()
	s := InterarrivalSummary(tr)
	if s.Count != 99 {
		t.Fatalf("count %d", s.Count)
	}
	if s.Mean < 9_000_000 || s.Mean > 11_000_000 {
		t.Fatalf("mean gap %.0f, want ~10ms", s.Mean)
	}
}

func TestFullReport(t *testing.T) {
	tr := replayedTrace()
	r := Report(tr)
	if r.Size.Requests != 100 || r.Timing.NoWaitPct != 90 {
		t.Fatalf("report core stats wrong: %+v %+v", r.Size, r.Timing)
	}
	if r.Response.Count != 100 || r.Interarrival.Count != 99 {
		t.Fatal("report summaries wrong")
	}
	if r.SizeRespCorr < 0.9 {
		t.Fatalf("correlation %v", r.SizeRespCorr)
	}
	if r.Dists.Size.Total() != 100 {
		t.Fatal("report distributions wrong")
	}
}

// The streaming accumulator agrees with the batch analyzers on every
// column it shares.
func TestAccumulatorMatchesBatch(t *testing.T) {
	tr := replayedTrace()
	acc := NewAccumulator(tr.Name)
	for _, r := range tr.Reqs {
		acc.Add(r)
	}
	batchS, accS := SizeStatsOf(tr), acc.Size()
	if batchS != accS {
		t.Fatalf("size stats differ:\nbatch %+v\nacc   %+v", batchS, accS)
	}
	batchT, accT := TimingStatsOf(tr), acc.Timing()
	if batchT != accT {
		t.Fatalf("timing stats differ:\nbatch %+v\nacc   %+v", batchT, accT)
	}
	bd, ad := DistributionsOf(tr), acc.Dists()
	for i, c := range bd.Size.Counts() {
		if ad.Size.Counts()[i] != c {
			t.Fatal("size histograms differ")
		}
	}
	for i, c := range bd.Interarrival.Counts() {
		if ad.Interarrival.Counts()[i] != c {
			t.Fatal("interarrival histograms differ")
		}
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	acc := NewAccumulator("e")
	if acc.Size().Requests != 0 || acc.Timing().DurationSec != 0 {
		t.Fatal("empty accumulator produced stats")
	}
}
