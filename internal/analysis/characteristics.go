package analysis

import (
	"fmt"

	"emmcio/internal/trace"
)

// Finding is the verdict on one of the paper's six Characteristics,
// evaluated over a set of traces.
type Finding struct {
	ID       int
	Claim    string
	Holds    bool
	Evidence string
}

// nsPerMs for threshold comparisons.
const nsPerMs = int64(1_000_000)

// TraceSummary is the per-trace evidence the Characteristics are judged
// from: one Table III row, one Table IV row, and the Figs. 4–7 histograms.
// Build it from a materialized trace (SizeStatsOf/TimingStatsOf/
// DistributionsOf) or stream it through an Accumulator and call Summary.
type TraceSummary struct {
	Size   SizeStats
	Timing TimingStats
	Dists  Distributions
}

// EvaluateCharacteristics checks the paper's six Characteristics (§III)
// against the given individual-application traces. Traces must be replayed
// (timestamps filled) for Characteristics 3 and 4.
func EvaluateCharacteristics(traces []*trace.Trace) []Finding {
	rows := make([]TraceSummary, len(traces))
	for i, tr := range traces {
		rows[i] = TraceSummary{
			Size:   SizeStatsOf(tr),
			Timing: TimingStatsOf(tr),
			Dists:  DistributionsOf(tr),
		}
	}
	return EvaluateCharacteristicsFrom(rows)
}

// EvaluateCharacteristicsFrom judges the six Characteristics from
// precomputed per-trace summaries — the streaming path: replay each trace
// through an Accumulator (one pass, no materialization) and hand the
// Summary bundles here.
func EvaluateCharacteristicsFrom(rows []TraceSummary) []Finding {
	n := len(rows)
	sizeStats := make([]SizeStats, n)
	timingStats := make([]TimingStats, n)
	dists := make([]Distributions, n)
	for i, r := range rows {
		sizeStats[i] = r.Size
		timingStats[i] = r.Timing
		dists[i] = r.Dists
	}

	var out []Finding

	// Characteristic 1: most applications are write-dominant; in 15/18
	// traces writes are 52.8%–99.9% of requests, 6 above 90%.
	writeDominant, above90 := 0, 0
	for _, s := range sizeStats {
		if s.WriteReqPct >= 50 {
			writeDominant++
		}
		if s.WriteReqPct > 90 {
			above90++
		}
	}
	out = append(out, Finding{
		ID:    1,
		Claim: "Most smartphone applications are write-dominant",
		Holds: writeDominant >= (n*3)/4,
		Evidence: fmt.Sprintf("%d/%d traces write-dominant, %d above 90%% writes",
			writeDominant, n, above90),
	})

	// Characteristic 2: small single-page (4 KB) requests are the majority
	// bucket in most applications.
	p4Major := 0
	for _, d := range dists {
		fr := d.Size.Fractions()
		p4 := fr[0]
		isLargest := true
		for _, f := range fr[1:] {
			if f > p4 {
				isLargest = false
				break
			}
		}
		if isLargest && p4 > 0.40 {
			p4Major++
		}
	}
	out = append(out, Finding{
		ID:       2,
		Claim:    "Single-page (4 KB) requests dominate most applications",
		Holds:    p4Major >= (n*3)/4,
		Evidence: fmt.Sprintf("%d/%d traces have 4 KB as the dominant size bucket", p4Major, n),
	})

	// Characteristic 3: most requests are served immediately on arrival.
	highNoWait := 0
	for _, t := range timingStats {
		if t.NoWaitPct >= 63 {
			highNoWait++
		}
	}
	out = append(out, Finding{
		ID:       3,
		Claim:    "Most requests can be served immediately once they arrive",
		Holds:    highNoWait >= (n*2)/3,
		Evidence: fmt.Sprintf("%d/%d traces serve >=63%% of requests with no wait", highNoWait, n),
	})

	// Characteristic 4: low-rate applications pay power-mode wake-ups,
	// visible as higher mean service times than high-rate applications.
	var lowRateServ, highRateServ, lowN, highN float64
	for _, t := range timingStats {
		if t.ArrivalRate < 1 {
			lowRateServ += t.MeanServMs
			lowN++
		} else if t.ArrivalRate > 5 {
			highRateServ += t.MeanServMs
			highN++
		}
	}
	holds4 := lowN > 0 && highN > 0 && lowRateServ/lowN > highRateServ/highN
	out = append(out, Finding{
		ID:    4,
		Claim: "Mode switching inflates response times of low-rate applications",
		Holds: holds4,
		Evidence: fmt.Sprintf("mean service %.2f ms (<1 req/s apps) vs %.2f ms (>5 req/s apps)",
			safeDiv(lowRateServ, lowN), safeDiv(highRateServ, highN)),
	})

	// Characteristic 5: localities are weak; spatial below temporal.
	weakSpatial, spatialBelowTemporal := 0, 0
	for _, t := range timingStats {
		if t.SpatialPct < 48 {
			weakSpatial++
		}
		if t.SpatialPct < t.TemporalPct {
			spatialBelowTemporal++
		}
	}
	out = append(out, Finding{
		ID:    5,
		Claim: "Localities are weak; spatial locality below temporal locality",
		Holds: weakSpatial == n && spatialBelowTemporal >= (n*2)/3,
		Evidence: fmt.Sprintf("%d/%d spatial localities below 48%%; spatial < temporal in %d/%d",
			weakSpatial, n, spatialBelowTemporal, n),
	})

	// Characteristic 6: inter-arrival times are long — most apps average
	// at least 200 ms, and in many traces >20% of gaps exceed 16 ms.
	longMean, fatTail := 0, 0
	for i, t := range timingStats {
		if t.ArrivalRate > 0 && 1000/t.ArrivalRate >= 200 {
			longMean++
		}
		fr := dists[i].Interarrival.Fractions()
		if fr[len(fr)-1] > 0.20 {
			fatTail++
		}
	}
	out = append(out, Finding{
		ID:    6,
		Claim: "Average request inter-arrival times are long in most applications",
		Holds: longMean >= n/2,
		Evidence: fmt.Sprintf("%d/%d traces average >=200 ms between requests; %d/%d have >20%% of gaps above 16 ms",
			longMean, n, fatTail, n),
	})

	return out
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
