// Streaming forms of the §III characterization: every batch function that
// walks a *trace.Trace has a counterpart here that drains a trace.Stream
// through an Accumulator instead, so multi-hour traces are characterized in
// memory bounded by the unique page footprint (or a caller-set cap), never
// the request count.

package analysis

import (
	"fmt"

	"emmcio/internal/trace"
)

// AccumulateStream resets the stream and drains it into a fresh unbounded
// Accumulator.
func AccumulateStream(st trace.Stream) (*Accumulator, error) {
	return accumulate(st, 0)
}

// AccumulateStreamBounded is AccumulateStream with a temporal page-set cap
// (see NewAccumulatorBounded).
func AccumulateStreamBounded(st trace.Stream, maxPages int) (*Accumulator, error) {
	return accumulate(st, maxPages)
}

func accumulate(st trace.Stream, maxPages int) (*Accumulator, error) {
	if err := st.Reset(); err != nil {
		return nil, fmt.Errorf("analysis: resetting %s: %w", st.Name(), err)
	}
	acc := NewAccumulatorBounded(st.Name(), maxPages)
	for i := 0; ; i++ {
		req, ok, err := st.Next()
		if err != nil {
			return nil, fmt.Errorf("analysis: reading %s request %d: %w", st.Name(), i, err)
		}
		if !ok {
			return acc, nil
		}
		acc.Add(req)
	}
}

// SizeStatsOfStream measures the Table III columns of a stream in one pass.
func SizeStatsOfStream(st trace.Stream) (SizeStats, error) {
	acc, err := AccumulateStream(st)
	if err != nil {
		return SizeStats{}, err
	}
	return acc.Size(), nil
}

// TimingStatsOfStream measures the Table IV columns of a (replayed) stream
// in one pass.
func TimingStatsOfStream(st trace.Stream) (TimingStats, error) {
	acc, err := AccumulateStream(st)
	if err != nil {
		return TimingStats{}, err
	}
	return acc.Timing(), nil
}

// DistributionsOfStream builds the Figs. 4–7 histograms of a stream in one
// pass.
func DistributionsOfStream(st trace.Stream) (Distributions, error) {
	acc, err := AccumulateStream(st)
	if err != nil {
		return Distributions{}, err
	}
	return acc.Dists(), nil
}

// ReportStream computes the complete characterization of a (replayed)
// stream in one pass. The Response and Interarrival summaries are exact
// below the online retention cap and bounded-memory estimates past it.
func ReportStream(st trace.Stream) (FullReport, error) {
	acc, err := AccumulateStream(st)
	if err != nil {
		return FullReport{}, err
	}
	return acc.Report(), nil
}
