package reliability

import (
	"math"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []func(*Model){
		func(m *Model) { m.RBERFresh = 0 },
		func(m *Model) { m.RBERFresh = 1 },
		func(m *Model) { m.Endurance = 0 },
		func(m *Model) { m.CodewordBits = 0 },
		func(m *Model) { m.CorrectableBits = 0 },
		func(m *Model) { m.MaxRetries = -1 },
		func(m *Model) { m.RetryRBERFactor = 1 },
	}
	for i, mutate := range cases {
		m := *Default()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRBERGrowsWithWear(t *testing.T) {
	m := Default()
	if m.RBER(0) != m.RBERFresh {
		t.Fatal("fresh RBER mismatch")
	}
	prev := 0.0
	for pe := 0.0; pe <= 3*m.Endurance; pe += 500 {
		r := m.RBER(pe)
		if r < prev {
			t.Fatalf("RBER fell at %v cycles", pe)
		}
		prev = r
	}
	// One full life multiplies RBER by the configured growth (200x).
	ratio := m.RBER(m.Endurance) / m.RBER(0)
	if math.Abs(ratio-200) > 2 {
		t.Fatalf("one-life RBER growth %.1fx, want 200x", ratio)
	}
	if m.RBER(1e12) > 0.5 {
		t.Fatal("RBER must clamp at 0.5")
	}
}

func TestPoissonTail(t *testing.T) {
	if got := poissonTail(0, 5); got != 0 {
		t.Fatalf("tail of zero-mean %v", got)
	}
	// P(X > 0) = 1 - e^-1 for lambda=1.
	if got := poissonTail(1, 0); math.Abs(got-(1-math.Exp(-1))) > 1e-12 {
		t.Fatalf("P(X>0) = %v", got)
	}
	// Large threshold swallows everything.
	if got := poissonTail(1, 100); got > 1e-12 {
		t.Fatalf("P(X>100) = %v", got)
	}
	// Monotone in lambda.
	if poissonTail(5, 10) >= poissonTail(20, 10) {
		t.Fatal("tail not monotone in lambda")
	}
}

func TestFreshDeviceReadsClean(t *testing.T) {
	m := Default()
	if p := m.FailureProbability(0); p > 1e-9 {
		t.Fatalf("fresh failure probability %v", p)
	}
	if f := m.ReadLatencyFactor(0); math.Abs(f-1) > 1e-9 {
		t.Fatalf("fresh latency factor %v, want 1", f)
	}
}

func TestAgingDegradesReads(t *testing.T) {
	m := Default()
	fresh := m.ReadLatencyFactor(0)
	old := m.ReadLatencyFactor(1.3 * m.Endurance)
	ancient := m.ReadLatencyFactor(2 * m.Endurance)
	if !(fresh < old || old < ancient) {
		t.Fatalf("latency factors not increasing: %v %v %v", fresh, old, ancient)
	}
	if ancient <= 1.01 {
		t.Fatalf("well-past-endurance factor %v shows no retries", ancient)
	}
	if ancient > float64(m.MaxRetries)+1 {
		t.Fatalf("factor %v exceeds retry bound", ancient)
	}
}

func TestUncorrectableEventuallyRises(t *testing.T) {
	m := Default()
	if p := m.UncorrectableProbability(0); p > 1e-15 {
		t.Fatalf("fresh uncorrectable probability %v", p)
	}
	if p := m.UncorrectableProbability(5 * m.Endurance); p <= 0 {
		t.Fatal("deeply worn device never fails uncorrectably")
	}
}

func TestLifetimePE(t *testing.T) {
	m := Default()
	pe := m.LifetimePE(0.01)
	if pe <= m.Endurance/2 {
		t.Fatalf("lifetime %v cycles implausibly short", pe)
	}
	// At the returned wear, failure probability is near the threshold.
	if p := m.FailureProbability(pe); math.Abs(p-0.01) > 0.005 {
		t.Fatalf("failure probability at lifetime = %v, want ~0.01", p)
	}
	// A stronger ECC extends lifetime.
	strong := *m
	strong.CorrectableBits = 60
	if strong.LifetimePE(0.01) <= pe {
		t.Fatal("stronger ECC did not extend lifetime")
	}
}
