// Package reliability models MLC NAND wear-dependent read reliability: the
// raw bit error rate (RBER) grows with program/erase cycling, the
// controller's ECC corrects up to a fixed number of bits per codeword, and
// reads that exceed the ECC budget pay read-retry latency.
//
// The paper's group studied exactly this coupling ("Understanding the
// impact of threshold voltage on MLC flash memory performance and
// reliability", its reference [14]); here it closes the loop between the
// endurance story of Fig. 9 — a scheme that erases more ages faster — and
// user-visible read latency.
//
// The model is deterministic (expected values), so replays stay
// reproducible: the expected number of read attempts at a given wear level
// follows from the Poisson tail of the per-codeword error count.
package reliability

import (
	"fmt"
	"math"
)

// Model parameterizes wear-dependent read reliability.
type Model struct {
	// RBERFresh is the raw bit error rate of a fresh block.
	RBERFresh float64
	// RBERGrowth is the exponential growth factor over one full endurance
	// life: RBER(pe) = RBERFresh * exp(RBERGrowth * pe/Endurance).
	RBERGrowth float64
	// Endurance is the rated program/erase cycle budget (MLC ~3000).
	Endurance float64
	// CodewordBits is the ECC codeword payload (1 KB codewords = 8192 bits).
	CodewordBits float64
	// CorrectableBits is the ECC strength per codeword (e.g. BCH-40).
	CorrectableBits int
	// MaxRetries bounds the read-retry loop.
	MaxRetries int
	// RetryRBERFactor scales RBER on each retry (threshold-shifted re-read
	// recovers most errors).
	RetryRBERFactor float64
}

// Default returns an MLC-class model: RBER 5e-6 fresh growing ~200× over a
// 3000-cycle life, 1 KB codewords with 40-bit BCH, up to 5 retries that
// each quarter the effective RBER. With these constants the ECC budget is
// comfortable through rated life and the read-retry knee arrives at ~130%
// of it — the margin real MLC parts are binned for.
func Default() *Model {
	return &Model{
		RBERFresh:       5e-6,
		RBERGrowth:      math.Log(200),
		Endurance:       3000,
		CodewordBits:    8192,
		CorrectableBits: 40,
		MaxRetries:      5,
		RetryRBERFactor: 0.25,
	}
}

// Validate reports nonsensical parameters.
func (m *Model) Validate() error {
	switch {
	case m.RBERFresh <= 0 || m.RBERFresh >= 1:
		return fmt.Errorf("reliability: RBERFresh %v outside (0,1)", m.RBERFresh)
	case m.Endurance <= 0:
		return fmt.Errorf("reliability: non-positive endurance")
	case m.CodewordBits <= 0:
		return fmt.Errorf("reliability: non-positive codeword size")
	case m.CorrectableBits <= 0:
		return fmt.Errorf("reliability: non-positive ECC strength")
	case m.MaxRetries < 0:
		return fmt.Errorf("reliability: negative retry bound")
	case m.RetryRBERFactor <= 0 || m.RetryRBERFactor >= 1:
		return fmt.Errorf("reliability: retry factor %v outside (0,1)", m.RetryRBERFactor)
	}
	return nil
}

// RBER returns the raw bit error rate after pe program/erase cycles.
func (m *Model) RBER(pe float64) float64 {
	if pe < 0 {
		pe = 0
	}
	r := m.RBERFresh * math.Exp(m.RBERGrowth*pe/m.Endurance)
	if r > 0.5 {
		r = 0.5
	}
	return r
}

// poissonTail returns P(X > t) for X ~ Poisson(lambda).
func poissonTail(lambda float64, t int) float64 {
	if lambda <= 0 {
		return 0
	}
	// Sum P(X <= t) iteratively.
	term := math.Exp(-lambda)
	sum := term
	for k := 1; k <= t; k++ {
		term *= lambda / float64(k)
		sum += term
	}
	if sum > 1 {
		sum = 1
	}
	return 1 - sum
}

// FailureProbability returns the chance one codeword read at the given wear
// exceeds the ECC budget on the first attempt.
func (m *Model) FailureProbability(pe float64) float64 {
	return poissonTail(m.RBER(pe)*m.CodewordBits, m.CorrectableBits)
}

// ExpectedReadAttempts returns the expected number of read attempts
// (1 = no retry) for a codeword at the given wear level, with each retry
// lowering the effective RBER by RetryRBERFactor.
func (m *Model) ExpectedReadAttempts(pe float64) float64 {
	attempts := 1.0
	rber := m.RBER(pe)
	pFailPrev := 1.0 // probability we are still failing before attempt k
	for k := 0; k < m.MaxRetries; k++ {
		pFail := poissonTail(rber*m.CodewordBits, m.CorrectableBits)
		pFailPrev *= pFail
		if pFailPrev < 1e-12 {
			break
		}
		attempts += pFailPrev
		rber *= m.RetryRBERFactor
	}
	return attempts
}

// ReadLatencyFactor returns the multiplier on nominal read latency at the
// given wear level: expected attempts, i.e. 1.0 for a fresh device.
func (m *Model) ReadLatencyFactor(pe float64) float64 {
	return m.ExpectedReadAttempts(pe)
}

// UncorrectableProbability returns the chance a codeword stays unreadable
// after all retries — the end-of-life signal.
func (m *Model) UncorrectableProbability(pe float64) float64 {
	p := 1.0
	rber := m.RBER(pe)
	for k := 0; k <= m.MaxRetries; k++ {
		p *= poissonTail(rber*m.CodewordBits, m.CorrectableBits)
		rber *= m.RetryRBERFactor
	}
	return p
}

// LifetimePE returns the wear level at which the first-attempt failure
// probability crosses the given threshold — a latency-cliff definition of
// useful lifetime (bisection over [0, 10×Endurance]).
func (m *Model) LifetimePE(failureThreshold float64) float64 {
	lo, hi := 0.0, m.Endurance*10
	if m.FailureProbability(hi) < failureThreshold {
		return hi
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if m.FailureProbability(mid) < failureThreshold {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
