package stats

import (
	"testing"

	"emmcio/internal/trace"
)

func TestSpatialLocalityFullySequential(t *testing.T) {
	tr := &trace.Trace{}
	var lba uint64
	for i := 0; i < 10; i++ {
		tr.Reqs = append(tr.Reqs, trace.Request{Arrival: int64(i), LBA: lba, Size: 4096, Op: trace.Write})
		lba += trace.SectorsPerPage
	}
	// 9 of 10 requests follow their predecessor.
	if got := SpatialLocality(tr); got != 0.9 {
		t.Fatalf("SpatialLocality = %v, want 0.9", got)
	}
}

func TestSpatialLocalityRandom(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 10; i++ {
		tr.Reqs = append(tr.Reqs, trace.Request{Arrival: int64(i), LBA: uint64(i) * 1000 * trace.SectorsPerPage, Size: 4096})
	}
	if got := SpatialLocality(tr); got != 0 {
		t.Fatalf("SpatialLocality = %v, want 0", got)
	}
}

func TestSpatialLocalityTiny(t *testing.T) {
	if SpatialLocality(&trace.Trace{}) != 0 {
		t.Fatal("empty trace should have zero spatial locality")
	}
}

func TestTemporalLocalityRehits(t *testing.T) {
	tr := &trace.Trace{Reqs: []trace.Request{
		{Arrival: 0, LBA: 0, Size: 4096},
		{Arrival: 1, LBA: 0, Size: 4096},   // hit
		{Arrival: 2, LBA: 800, Size: 4096}, // miss
		{Arrival: 3, LBA: 0, Size: 4096},   // hit
	}}
	if got := TemporalLocality(tr); got != 0.5 {
		t.Fatalf("TemporalLocality = %v, want 0.5", got)
	}
}

func TestTemporalLocalityNoRepeats(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 5; i++ {
		tr.Reqs = append(tr.Reqs, trace.Request{LBA: uint64(i) * 8, Size: 4096})
	}
	if got := TemporalLocality(tr); got != 0 {
		t.Fatalf("TemporalLocality = %v, want 0", got)
	}
}

func TestInterarrivals(t *testing.T) {
	tr := &trace.Trace{Reqs: []trace.Request{
		{Arrival: 0}, {Arrival: 100}, {Arrival: 350},
	}}
	got := Interarrivals(tr)
	if len(got) != 2 || got[0] != 100 || got[1] != 250 {
		t.Fatalf("Interarrivals = %v", got)
	}
	if Interarrivals(&trace.Trace{}) != nil {
		t.Fatal("empty trace should yield nil interarrivals")
	}
}
