package stats

import (
	"math"
	"math/bits"
)

// OnlineSummary computes Summary order statistics over a sample stream in
// bounded memory. Below the retention cap it simply keeps the samples, and
// Summary() is bit-identical to Summarize over the same sequence. Past the
// cap it stops retaining individual samples and falls back to a geometric
// (HDR-style) bucket sketch for the percentiles: count, mean, min, max and
// the standard deviation stay exact (they come from running sums), while
// P50/P95/P99 become estimates with a bounded relative error set by the
// sub-bucket resolution (32 sub-buckets per octave, about 3%).
//
// This is what lets cmd/tracestat and cmd/tracediff report percentiles over
// arbitrarily long traces without materializing them.
type OnlineSummary struct {
	cap     int
	samples []int64 // retained while len < cap; nil once sketching

	// Running moments — always exact, accumulated in arrival order with the
	// same float operation order as Summarize.
	count int
	sum   float64
	sq    float64
	min   int64
	max   int64

	// Geometric sketch, engaged only past the cap. Non-positive samples
	// (possible for deltas) land in the dedicated low bucket.
	sketch []int64
	lowN   int64
}

// DefaultOnlineCap retains up to 64 Ki samples (512 KB) before switching to
// the sketch — large enough that every generated workload in the repository
// stays in the exact regime.
const DefaultOnlineCap = 1 << 16

// sketch geometry: 64 octaves x 32 sub-buckets.
const (
	sketchSubBits = 5
	sketchBuckets = 64 << sketchSubBits
)

// NewOnlineSummary builds an OnlineSummary with the given retention cap;
// zero or negative means DefaultOnlineCap.
func NewOnlineSummary(capSamples int) *OnlineSummary {
	if capSamples <= 0 {
		capSamples = DefaultOnlineCap
	}
	return &OnlineSummary{cap: capSamples}
}

// Add records one sample.
func (o *OnlineSummary) Add(v int64) {
	if o.count == 0 {
		o.min, o.max = v, v
	} else {
		if v < o.min {
			o.min = v
		}
		if v > o.max {
			o.max = v
		}
	}
	o.count++
	f := float64(v)
	o.sum += f
	o.sq += f * f

	if o.sketch == nil {
		if len(o.samples) < o.cap {
			o.samples = append(o.samples, v)
			return
		}
		// Cap reached: spill the retained samples into the sketch and
		// release them.
		o.sketch = make([]int64, sketchBuckets)
		for _, s := range o.samples {
			o.bucket(s)
		}
		o.samples = nil
	}
	o.bucket(v)
}

func (o *OnlineSummary) bucket(v int64) {
	if v <= 0 {
		o.lowN++
		return
	}
	exp := 63 - bits.LeadingZeros64(uint64(v))
	var sub int64
	if exp > sketchSubBits {
		sub = (v >> (uint(exp) - sketchSubBits)) & ((1 << sketchSubBits) - 1)
	} else {
		sub = (v << (sketchSubBits - uint(exp))) & ((1 << sketchSubBits) - 1)
	}
	o.sketch[(int64(exp)<<sketchSubBits)|sub]++
}

// bucketValue returns the representative (upper-edge) value of bucket i:
// 2^exp * (1 + (sub+1)/32).
func bucketValue(i int) int64 {
	exp := uint(i >> sketchSubBits)
	mantissa := int64(1<<sketchSubBits) + int64(i&((1<<sketchSubBits)-1)) + 1
	if exp <= sketchSubBits {
		return mantissa >> (sketchSubBits - exp)
	}
	return mantissa << (exp - sketchSubBits)
}

// Count returns the number of samples recorded.
func (o *OnlineSummary) Count() int { return o.count }

// Exact reports whether Summary() is still bit-identical to Summarize over
// the recorded sequence.
func (o *OnlineSummary) Exact() bool { return o.sketch == nil }

// Summary returns the order statistics accumulated so far.
func (o *OnlineSummary) Summary() Summary {
	if o.sketch == nil {
		return Summarize(o.samples)
	}
	s := Summary{Count: o.count, Min: o.min, Max: o.max}
	n := float64(o.count)
	s.Mean = o.sum / n
	variance := o.sq/n - s.Mean*s.Mean
	if variance > 0 {
		s.StdDev = math.Sqrt(variance)
	}
	s.P50 = o.percentile(0.50)
	s.P95 = o.percentile(0.95)
	s.P99 = o.percentile(0.99)
	return s
}

// percentile walks the sketch to the bucket holding the p-th sample, using
// the same ceil-rank convention as percentileSorted, and clamps to the exact
// observed extremes.
func (o *OnlineSummary) percentile(p float64) int64 {
	rank := int64(math.Ceil(p * float64(o.count)))
	if rank < 1 {
		rank = 1
	}
	cum := o.lowN
	if cum >= rank {
		return o.min
	}
	for i, c := range o.sketch {
		cum += c
		if cum >= rank {
			v := bucketValue(i)
			if v > o.max {
				v = o.max
			}
			if v < o.min {
				v = o.min
			}
			return v
		}
	}
	return o.max
}

// IndexOfDispersion returns the variance-to-mean ratio of the samples, with
// the same float operation order as the batch IndexOfDispersion — exact in
// both regimes, since it needs only the running sums.
func (o *OnlineSummary) IndexOfDispersion() float64 {
	if o.count == 0 {
		return 0
	}
	n := float64(o.count)
	mean := o.sum / n
	if mean == 0 {
		return 0
	}
	variance := o.sq/n - mean*mean
	return variance / mean
}

// OnlineCorrelation accumulates the Pearson correlation of two paired series
// in O(1) memory with the same float operation order as Correlation, so the
// result is bit-identical to the batch function over the same sequence.
type OnlineCorrelation struct {
	n                     int
	sx, sy, sxx, sy2, sxy float64
}

// Add records one (x, y) pair.
func (c *OnlineCorrelation) Add(x, y float64) {
	c.n++
	c.sx += x
	c.sy += y
	c.sxx += x * x
	c.sy2 += y * y
	c.sxy += x * y
}

// Value returns the correlation coefficient, or 0 when undefined.
func (c *OnlineCorrelation) Value() float64 {
	if c.n == 0 {
		return 0
	}
	n := float64(c.n)
	cov := c.sxy/n - c.sx/n*c.sy/n
	vx := c.sxx/n - c.sx/n*c.sx/n
	vy := c.sy2/n - c.sy/n*c.sy/n
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
