package stats

import "emmcio/internal/trace"

// SpatialLocality implements the paper's definition (§III-C): the percentage
// of sequential request accesses over the total number of requests, where a
// sequential access happens when the starting address of the current request
// is next to the ending address of its predecessor.
// Returns a fraction in [0, 1]; 0 for traces with fewer than 2 requests.
func SpatialLocality(t *trace.Trace) float64 {
	if len(t.Reqs) < 2 {
		return 0
	}
	seq := 0
	prevEnd := t.Reqs[0].EndLBA()
	for i := 1; i < len(t.Reqs); i++ {
		if t.Reqs[i].LBA == prevEnd {
			seq++
		}
		prevEnd = t.Reqs[i].EndLBA()
	}
	return float64(seq) / float64(len(t.Reqs))
}

// TemporalLocality implements the paper's definition (§III-C): the percentage
// of address hits out of the total number of requests, where the hit count is
// increased by one whenever an address is re-accessed. We track addresses at
// request-start granularity in 4 KB pages, which is the granularity the file
// system aligns requests to.
func TemporalLocality(t *trace.Trace) float64 {
	if len(t.Reqs) == 0 {
		return 0
	}
	seen := make(map[uint64]struct{}, len(t.Reqs))
	hits := 0
	for i := range t.Reqs {
		page := t.Reqs[i].LBA / trace.SectorsPerPage
		if _, ok := seen[page]; ok {
			hits++
		} else {
			seen[page] = struct{}{}
		}
	}
	return float64(hits) / float64(len(t.Reqs))
}

// Interarrivals returns the successive arrival gaps of a trace in
// nanoseconds (length = len(Reqs)-1).
func Interarrivals(t *trace.Trace) []int64 {
	if len(t.Reqs) < 2 {
		return nil
	}
	out := make([]int64, 0, len(t.Reqs)-1)
	for i := 1; i < len(t.Reqs); i++ {
		out = append(out, t.Reqs[i].Arrival-t.Reqs[i-1].Arrival)
	}
	return out
}
