package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestOnlineSummaryExactBelowCap(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var samples []int64
	o := NewOnlineSummary(1000)
	for i := 0; i < 999; i++ {
		v := int64(r.Intn(5_000_000)) - 1000 // include non-positive values
		samples = append(samples, v)
		o.Add(v)
	}
	if !o.Exact() {
		t.Fatal("summary left the exact regime below its cap")
	}
	if got, want := o.Summary(), Summarize(samples); got != want {
		t.Fatalf("exact-regime Summary diverges from Summarize:\n got %+v\nwant %+v", got, want)
	}
}

func TestOnlineSummarySketchAboveCap(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var samples []int64
	o := NewOnlineSummary(512)
	for i := 0; i < 20_000; i++ {
		// Log-uniform over ~5 decades, the shape of latency data.
		v := int64(math.Exp(r.Float64()*11)) + 1
		samples = append(samples, v)
		o.Add(v)
	}
	if o.Exact() {
		t.Fatal("summary still claims exactness past its cap")
	}
	got, want := o.Summary(), Summarize(samples)
	if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("count/min/max must stay exact in the sketch regime: got %+v want %+v", got, want)
	}
	if got.Mean != want.Mean {
		t.Fatalf("mean must stay exact (running sum): got %v want %v", got.Mean, want.Mean)
	}
	// Percentiles are estimates with ~3% relative error from the 32
	// sub-bucket geometry; allow 2 bucket widths of slack.
	for _, p := range []struct {
		name      string
		got, want int64
	}{{"P50", got.P50, want.P50}, {"P95", got.P95, want.P95}, {"P99", got.P99, want.P99}} {
		rel := math.Abs(float64(p.got)-float64(p.want)) / float64(p.want)
		if rel > 0.07 {
			t.Errorf("%s estimate %d vs exact %d: %.1f%% off, tolerance 7%%", p.name, p.got, p.want, rel*100)
		}
	}
}

func TestOnlineSummaryPercentileClampsToExtremes(t *testing.T) {
	o := NewOnlineSummary(4)
	for _, v := range []int64{100, 100, 100, 100, 100, 100, 100, 100} {
		o.Add(v)
	}
	s := o.Summary()
	if s.P50 < s.Min || s.P99 > s.Max {
		t.Fatalf("sketch percentiles escaped [min, max]: %+v", s)
	}
}

func TestOnlineSummaryEmpty(t *testing.T) {
	o := NewOnlineSummary(0)
	if got, want := o.Summary(), Summarize(nil); got != want {
		t.Fatalf("empty summary: got %+v want %+v", got, want)
	}
}

func TestOnlineIndexOfDispersionMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var samples []int64
	o := NewOnlineSummary(16) // force the sketch regime: IoD must stay exact
	for i := 0; i < 5000; i++ {
		v := int64(r.Intn(1_000_000))
		samples = append(samples, v)
		o.Add(v)
	}
	if got, want := o.IndexOfDispersion(), IndexOfDispersion(samples); got != want {
		t.Fatalf("online IoD %v != batch %v (must be bit-identical)", got, want)
	}
}

func TestOnlineCorrelationMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var xs, ys []float64
	var c OnlineCorrelation
	for i := 0; i < 5000; i++ {
		x := r.Float64() * 100
		y := 3*x + r.Float64()*40
		xs = append(xs, x)
		ys = append(ys, y)
		c.Add(x, y)
	}
	if got, want := c.Value(), Correlation(xs, ys); got != want {
		t.Fatalf("online correlation %v != batch %v (must be bit-identical)", got, want)
	}
}

func TestOnlineCorrelationDegenerate(t *testing.T) {
	var c OnlineCorrelation
	if c.Value() != 0 {
		t.Fatal("empty correlation should be 0")
	}
	for i := 0; i < 10; i++ {
		c.Add(5, float64(i))
	}
	if c.Value() != 0 {
		t.Fatal("zero-variance x should give correlation 0")
	}
}
