package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 30})
	for _, v := range []int64{5, 10, 11, 20, 21, 30, 31, 1000} {
		h.Add(v)
	}
	want := []int64{2, 2, 2, 2} // (<=10, <=20, <=30, >30)
	got := h.Counts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Total() != 8 {
		t.Fatalf("total %d, want 8", h.Total())
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	h := NewHistogram([]int64{4096})
	h.Add(4096)
	if h.Counts()[0] != 1 {
		t.Fatal("value equal to bound must land in that bucket (half-open upper)")
	}
}

func TestHistogramFractions(t *testing.T) {
	h := NewHistogram([]int64{10})
	h.Add(5)
	h.Add(5)
	h.Add(15)
	h.Add(25)
	fr := h.Fractions()
	if math.Abs(fr[0]-0.5) > 1e-12 || math.Abs(fr[1]-0.5) > 1e-12 {
		t.Fatalf("fractions %v, want [0.5 0.5]", fr)
	}
}

func TestHistogramEmptyFractions(t *testing.T) {
	h := NewHistogram([]int64{10})
	fr := h.Fractions()
	for _, f := range fr {
		if f != 0 {
			t.Fatal("empty histogram should report zero fractions")
		}
	}
}

func TestFractionAtOrBelow(t *testing.T) {
	h := NewHistogram(SizeBounds())
	h.Add(4096)
	h.Add(4096)
	h.Add(8192)
	h.Add(300 * 1024)
	if got := h.FractionAtOrBelow(4 * 1024); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("FractionAtOrBelow(4KB) = %v, want 0.5", got)
	}
	if got := h.FractionAtOrBelow(16 * 1024); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("FractionAtOrBelow(16KB) = %v, want 0.75", got)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unordered bounds did not panic")
		}
	}()
	NewHistogram([]int64{10, 10})
}

func TestHistogramCountsPreservedUnderAnyInput(t *testing.T) {
	f := func(values []int64) bool {
		h := NewHistogram([]int64{0, 100, 10000})
		for _, v := range values {
			h.Add(v)
		}
		var sum int64
		for _, c := range h.Counts() {
			sum += c
		}
		return sum == int64(len(values)) && h.Total() == int64(len(values))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaperBucketSchemes(t *testing.T) {
	if got := len(SizeBounds()); got != 4 {
		t.Errorf("SizeBounds len %d, want 4", got)
	}
	if got := len(ResponseBounds()); got != 7 {
		t.Errorf("ResponseBounds len %d, want 7", got)
	}
	if got := len(InterarrivalBounds()); got != 5 {
		t.Errorf("InterarrivalBounds len %d, want 5", got)
	}
	if SizeBounds()[0] != 4096 {
		t.Error("first size bound must be 4KB (single page, Characteristic 2)")
	}
	if ResponseBounds()[0] != 2_000_000 {
		t.Error("first response bound must be 2ms (Fig. 5 observation)")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int64{5, 1, 3, 2, 4})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestPercentiles(t *testing.T) {
	samples := make([]int64, 100)
	for i := range samples {
		samples[i] = int64(i + 1) // 1..100
	}
	s := Summarize(samples)
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 {
		t.Fatalf("percentiles P50=%d P95=%d P99=%d", s.P50, s.P95, s.P99)
	}
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yUp := []float64{2, 4, 6, 8, 10}
	yDown := []float64{10, 8, 6, 4, 2}
	if c := Correlation(x, yUp); math.Abs(c-1) > 1e-9 {
		t.Errorf("perfect positive correlation = %v", c)
	}
	if c := Correlation(x, yDown); math.Abs(c+1) > 1e-9 {
		t.Errorf("perfect negative correlation = %v", c)
	}
	if c := Correlation(x, []float64{7, 7, 7, 7, 7}); c != 0 {
		t.Errorf("constant series correlation = %v, want 0", c)
	}
	if c := Correlation(x, []float64{1, 2}); c != 0 {
		t.Errorf("mismatched lengths correlation = %v, want 0", c)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]int64{2, 4}) != 3 {
		t.Error("Mean([2 4]) != 3")
	}
}

func TestHistogramLabels(t *testing.T) {
	h := NewHistogram(SizeBounds())
	labels := h.Labels(1024, "KB")
	want := []string{"<=4KB", "<=16KB", "<=64KB", "<=256KB", ">256KB"}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels %v, want %v", labels, want)
		}
	}
}

func TestIndexOfDispersion(t *testing.T) {
	if IndexOfDispersion(nil) != 0 {
		t.Error("empty samples")
	}
	// Constant gaps: zero variance.
	if got := IndexOfDispersion([]int64{5, 5, 5, 5}); got != 0 {
		t.Errorf("constant dispersion %v", got)
	}
	// A bursty mixture disperses far beyond its mean.
	bursty := []int64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1000}
	if got := IndexOfDispersion(bursty); got < 50 {
		t.Errorf("bursty dispersion %v, want large", got)
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(SizeBounds())
	h.Add(4096)
	h.Add(8192)
	h.Add(999999)
	b, err := h.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if back.Total() != 3 {
		t.Fatalf("total %d after round trip", back.Total())
	}
	got := back.Counts()
	want := h.Counts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counts differ: %v vs %v", got, want)
		}
	}
	if err := back.UnmarshalJSON([]byte(`{"bounds":[2,1],"counts":[0,0,0]}`)); err == nil {
		t.Fatal("unordered bounds accepted")
	}
	if err := back.UnmarshalJSON([]byte(`{"bounds":[1],"counts":[0]}`)); err == nil {
		t.Fatal("count/bound mismatch accepted")
	}
}
