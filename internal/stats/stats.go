// Package stats provides the statistics toolkit used to analyze traces the
// way §III of the paper does: bucketed histograms with the paper's size,
// response-time and inter-arrival bucket schemes, summary statistics, and the
// paper's spatial/temporal locality definitions.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts samples into half-open buckets defined by upper bounds:
// bucket i holds values v with bounds[i-1] < v <= bounds[i]; the final
// implicit bucket holds v > bounds[len-1].
type Histogram struct {
	bounds []int64 // strictly increasing upper bounds
	counts []int64 // len(bounds)+1 entries
	total  int64
}

// NewHistogram builds a histogram over the given strictly increasing upper
// bounds. It panics on unordered bounds, which would silently misclassify.
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds not strictly increasing")
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(bounds)+1)}
}

// Add records one sample.
func (h *Histogram) Add(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.total++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int64 { return h.total }

// Counts returns a copy of the per-bucket counts (last bucket is overflow).
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Fractions returns per-bucket fractions of the total; all zeros when empty.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Buckets returns the number of buckets (bounds plus overflow).
func (h *Histogram) Buckets() int { return len(h.counts) }

// Bound returns the upper bound of bucket i; the overflow bucket returns
// math.MaxInt64.
func (h *Histogram) Bound(i int) int64 {
	if i >= len(h.bounds) {
		return math.MaxInt64
	}
	return h.bounds[i]
}

// FractionAtOrBelow returns the fraction of samples <= bound. The bound must
// be one of the histogram's bucket bounds.
func (h *Histogram) FractionAtOrBelow(bound int64) float64 {
	if h.total == 0 {
		return 0
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i]
		if b == bound {
			return float64(cum) / float64(h.total)
		}
		if b > bound {
			break
		}
	}
	panic(fmt.Sprintf("stats: %d is not a bucket bound", bound))
}

// Labels renders bucket labels using the given unit divisor and suffix,
// e.g. (1024, "KB") prints "<=4KB", "<=16KB", ..., ">256KB".
func (h *Histogram) Labels(div int64, unit string) []string {
	out := make([]string, len(h.counts))
	for i := range h.bounds {
		out[i] = fmt.Sprintf("<=%d%s", h.bounds[i]/div, unit)
	}
	out[len(h.bounds)] = fmt.Sprintf(">%d%s", h.bounds[len(h.bounds)-1]/div, unit)
	return out
}

// String renders "label:frac" pairs, handy in logs and golden tests.
func (h *Histogram) String() string {
	labels := make([]string, len(h.counts))
	for i := range h.bounds {
		labels[i] = fmt.Sprintf("<=%d", h.bounds[i])
	}
	labels[len(h.bounds)] = fmt.Sprintf(">%d", h.bounds[len(h.bounds)-1])
	fr := h.Fractions()
	parts := make([]string, len(labels))
	for i := range labels {
		parts[i] = fmt.Sprintf("%s:%.3f", labels[i], fr[i])
	}
	return strings.Join(parts, " ")
}

// The paper's bucket schemes.

const (
	kb = 1024
	ms = int64(1_000_000) // nanoseconds per millisecond
)

// SizeBounds are the request-size buckets of Fig. 4 (bytes):
// <=4KB, <=16KB, <=64KB, <=256KB, >256KB.
func SizeBounds() []int64 { return []int64{4 * kb, 16 * kb, 64 * kb, 256 * kb} }

// ResponseBounds are the response-time buckets of Fig. 5 (ns):
// <=2ms, <=4ms, <=8ms, <=16ms, <=32ms, <=64ms, <=128ms, >128ms.
func ResponseBounds() []int64 {
	return []int64{2 * ms, 4 * ms, 8 * ms, 16 * ms, 32 * ms, 64 * ms, 128 * ms}
}

// InterarrivalBounds are the inter-arrival buckets of Fig. 6 (ns):
// <=1ms, <=2ms, <=4ms, <=8ms, <=16ms, >16ms.
func InterarrivalBounds() []int64 {
	return []int64{1 * ms, 2 * ms, 4 * ms, 8 * ms, 16 * ms}
}

// Summary holds order statistics of a sample set.
type Summary struct {
	Count  int
	Mean   float64
	Min    int64
	Max    int64
	P50    int64
	P95    int64
	P99    int64
	StdDev float64
}

// Summarize computes a Summary. It copies and sorts the input.
func Summarize(samples []int64) Summary {
	var s Summary
	s.Count = len(samples)
	if s.Count == 0 {
		return s
	}
	sorted := make([]int64, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum, sq float64
	for _, v := range sorted {
		sum += float64(v)
		sq += float64(v) * float64(v)
	}
	s.Mean = sum / float64(s.Count)
	variance := sq/float64(s.Count) - s.Mean*s.Mean
	if variance > 0 {
		s.StdDev = math.Sqrt(variance)
	}
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P50 = percentileSorted(sorted, 0.50)
	s.P95 = percentileSorted(sorted, 0.95)
	s.P99 = percentileSorted(sorted, 0.99)
	return s
}

func percentileSorted(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(samples []int64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += float64(v)
	}
	return sum / float64(len(samples))
}

// Correlation returns the Pearson correlation coefficient of two equal-length
// series, or 0 when undefined. §III-C observes a strong correlation between
// request size and response time.
func Correlation(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// IndexOfDispersion returns the variance-to-mean ratio of the samples —
// 1 for Poisson-like arrivals, larger for the bursty inter-arrival
// processes the smartphone traces exhibit (Fig. 6's heavy mixtures).
func IndexOfDispersion(samples []int64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum, sq float64
	for _, v := range samples {
		f := float64(v)
		sum += f
		sq += f * f
	}
	n := float64(len(samples))
	mean := sum / n
	if mean == 0 {
		return 0
	}
	variance := sq/n - mean*mean
	return variance / mean
}

// histogramJSON is the wire form of a Histogram.
type histogramJSON struct {
	Bounds    []int64   `json:"bounds"`
	Counts    []int64   `json:"counts"`
	Fractions []float64 `json:"fractions"`
}

// MarshalJSON emits bounds, counts and fractions so reports serialize
// usefully (the zero Histogram emits empty arrays).
func (h *Histogram) MarshalJSON() ([]byte, error) {
	hj := histogramJSON{Bounds: h.bounds, Counts: h.counts, Fractions: h.Fractions()}
	return json.Marshal(hj)
}

// UnmarshalJSON restores a histogram written by MarshalJSON.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var hj histogramJSON
	if err := json.Unmarshal(b, &hj); err != nil {
		return err
	}
	if len(hj.Counts) != len(hj.Bounds)+1 {
		return fmt.Errorf("stats: histogram JSON has %d counts for %d bounds", len(hj.Counts), len(hj.Bounds))
	}
	for i := 1; i < len(hj.Bounds); i++ {
		if hj.Bounds[i] <= hj.Bounds[i-1] {
			return fmt.Errorf("stats: histogram JSON bounds not increasing")
		}
	}
	h.bounds = hj.Bounds
	h.counts = hj.Counts
	h.total = 0
	for _, c := range hj.Counts {
		h.total += c
	}
	return nil
}
