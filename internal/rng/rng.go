// Package rng provides small, deterministic random number generators and
// samplers used by the workload generators and simulators.
//
// Every stream is seeded explicitly so that trace generation and simulation
// are fully reproducible: the same seed always yields byte-identical traces.
// The generator is xoshiro256**, seeded through splitmix64, following the
// reference implementations by Blackman and Vigna.
package rng

import "math"

// SplitMix64 advances the splitmix64 state and returns the next value.
// It is used both as a seeder for Rand and as a cheap standalone mixer.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d4a2c62d967f2d
	return z ^ (z >> 31)
}

// Rand is a deterministic xoshiro256** generator.
// The zero value is not usable; construct with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed.
// Distinct seeds give statistically independent streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// Guard against the all-zero state, which is a fixed point.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Fork derives an independent generator from this one. The derived stream
// does not overlap the parent stream for any practical sequence length.
func (r *Rand) Fork() *Rand {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63N returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63N(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63N with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	// Avoid log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// Normal returns a normally distributed value via the Box–Muller transform.
func (r *Rand) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Weighted holds a discrete distribution over arbitrary integer outcomes.
// Sampling is O(log n) via a cumulative-weight table.
type Weighted struct {
	values []int64
	cum    []float64 // strictly increasing cumulative weights
	total  float64
}

// NewWeighted builds a sampler over the given value/weight pairs.
// Zero-weight entries are dropped. It panics if no positive weight remains.
func NewWeighted(values []int64, weights []float64) *Weighted {
	if len(values) != len(weights) {
		panic("rng: values/weights length mismatch")
	}
	w := &Weighted{}
	for i, v := range values {
		if weights[i] <= 0 {
			continue
		}
		w.total += weights[i]
		w.values = append(w.values, v)
		w.cum = append(w.cum, w.total)
	}
	if len(w.values) == 0 {
		panic("rng: weighted sampler with no positive weights")
	}
	return w
}

// Sample draws one outcome from the distribution.
func (w *Weighted) Sample(r *Rand) int64 {
	x := r.Float64() * w.total
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return w.values[lo]
}

// Mean returns the expectation of the distribution.
func (w *Weighted) Mean() float64 {
	var sum float64
	prev := 0.0
	for i, v := range w.values {
		sum += float64(v) * (w.cum[i] - prev)
		prev = w.cum[i]
	}
	return sum / w.total
}

// Len reports the number of distinct outcomes with positive weight.
func (w *Weighted) Len() int { return len(w.values) }
