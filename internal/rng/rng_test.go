package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	saw := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		saw[r.Uint64()] = true
	}
	if len(saw) < 60 {
		t.Fatalf("zero-seeded generator produced only %d distinct values", len(saw))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntNBounds(t *testing.T) {
	r := New(11)
	for _, n := range []int{1, 2, 7, 100} {
		for i := 0; i < 1000; i++ {
			v := r.IntN(n)
			if v < 0 || v >= n {
				t.Fatalf("IntN(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestExpMean(t *testing.T) {
	r := New(13)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Exp(5.0)
	}
	mean := sum / n
	if math.Abs(mean-5.0) > 0.15 {
		t.Fatalf("Exp mean %v, want ~5.0", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(17)
	var sum, sq float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("Normal mean %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.1 {
		t.Fatalf("Normal stddev %v, want ~3", math.Sqrt(variance))
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(23)
	child := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked stream tracks parent: %d/100 identical", same)
	}
}

func TestWeightedProportions(t *testing.T) {
	w := NewWeighted([]int64{4, 8, 16}, []float64{0.5, 0.3, 0.2})
	r := New(29)
	counts := map[int64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[w.Sample(r)]++
	}
	for v, want := range map[int64]float64{4: 0.5, 8: 0.3, 16: 0.2} {
		got := float64(counts[v]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("value %d frequency %v, want ~%v", v, got, want)
		}
	}
}

func TestWeightedMean(t *testing.T) {
	w := NewWeighted([]int64{4, 8, 16}, []float64{0.5, 0.3, 0.2})
	want := 4*0.5 + 8*0.3 + 16*0.2
	if math.Abs(w.Mean()-want) > 1e-9 {
		t.Fatalf("Mean() = %v, want %v", w.Mean(), want)
	}
}

func TestWeightedDropsZeroWeights(t *testing.T) {
	w := NewWeighted([]int64{1, 2, 3}, []float64{0, 1, 0})
	if w.Len() != 1 {
		t.Fatalf("Len = %d, want 1", w.Len())
	}
	r := New(31)
	for i := 0; i < 100; i++ {
		if v := w.Sample(r); v != 2 {
			t.Fatalf("sampled %d from single-outcome distribution", v)
		}
	}
}

func TestWeightedSampleAlwaysInSupport(t *testing.T) {
	f := func(seed uint64) bool {
		w := NewWeighted([]int64{3, 5, 9, 12}, []float64{1, 2, 3, 4})
		r := New(seed)
		for i := 0; i < 200; i++ {
			switch w.Sample(r) {
			case 3, 5, 9, 12:
			default:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitMix64KnownSequenceDeterministic(t *testing.T) {
	var s1, s2 uint64 = 1234, 1234
	for i := 0; i < 10; i++ {
		if SplitMix64(&s1) != SplitMix64(&s2) {
			t.Fatal("SplitMix64 not deterministic")
		}
	}
}
