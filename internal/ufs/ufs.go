// Package ufs models a UFS/NVMe-flavoured storage device behind the
// storage.Device seam: the same flash array and FTL as the eMMC model
// (internal/flash, internal/ftl, internal/faults are reused unchanged, so
// fault injection and wear/aging work identically), but a different host
// interface and controller discipline:
//
//   - a multi-queue command queue: Queues × QueueDepth command slots, so a
//     request waits only for a free slot, not for the whole device to go
//     idle, and completions are out of order by sim-time — the
//     forward-looking answer to the paper's Implication 1;
//   - an interleaving controller over a higher-parallelism geometry: the
//     channel frees after the data transfer and flash operations overlap
//     across planes (the SSD-style discipline eMMC 4.51 lacks);
//   - a write booster: an SLC-mode staging area that absorbs writes at
//     fast-page program latency and destages them to the main MLC pools
//     during idle gaps (or synchronously under pressure), the UFS 3.1
//     WriteBooster feature.
//
// No packed commands: UFS moves each request as its own UPIU exchange, and
// Caps advertises that, so the blockdev driver never packs for this device.
package ufs

import (
	"fmt"

	"emmcio/internal/faults"
	"emmcio/internal/flash"
	"emmcio/internal/ftl"
	"emmcio/internal/sim"
	"emmcio/internal/storage"
	"emmcio/internal/telemetry"
	"emmcio/internal/trace"
)

// Config describes a UFS device instance.
type Config struct {
	Geometry flash.Geometry
	Timing   flash.Timing
	// Pools lists the per-plane page-size pools, largest page first.
	Pools []flash.PoolSpec
	// GCFreeBlocks is the per-plane-pool free-block threshold.
	GCFreeBlocks int
	// Wear selects the FTL wear-leveling policy.
	Wear ftl.WearPolicy

	// Queues is the number of hardware submission queues (default 1; NVMe
	// would use several). QueueDepth is the command slots per queue
	// (default 32, the UFS 3.x task set size). Their product is how many
	// commands the device holds in flight.
	Queues     int
	QueueDepth int

	// WriteBoosterBytes is the SLC staging capacity (0 disables the
	// booster). Booster writes pay fast-page program latency; destage to
	// the main pools happens in idle gaps or synchronously under pressure.
	WriteBoosterBytes int64

	// FlushNs is the cost of a cache-flush barrier. Zero selects the
	// 100 µs default (UFS flushes are cheaper than eMMC's CMD6 path).
	FlushNs int64

	// Faults enables deterministic fault injection (shared model with the
	// other backends). Nil or rate-zero models perfect hardware.
	Faults *faults.Config
}

// slots returns the total command-slot count.
func (c Config) slots() int { return c.Queues * c.QueueDepth }

// Validate reports unusable configurations.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if len(c.Pools) == 0 {
		return fmt.Errorf("ufs: no pools")
	}
	for i, p := range c.Pools {
		if err := p.Validate(); err != nil {
			return err
		}
		if _, ok := c.Timing.PerPage[p.PageBytes]; !ok {
			return fmt.Errorf("ufs: no timing for pool page size %d", p.PageBytes)
		}
		if i > 0 && c.Pools[i].PageBytes >= c.Pools[i-1].PageBytes {
			return fmt.Errorf("ufs: pools must be ordered largest page first")
		}
	}
	if c.GCFreeBlocks < 1 {
		return fmt.Errorf("ufs: GC threshold below 1")
	}
	if c.Queues < 1 || c.QueueDepth < 1 {
		return fmt.Errorf("ufs: need at least one queue and one slot, got %dx%d", c.Queues, c.QueueDepth)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// Device is one simulated UFS instance. It implements storage.Device.
type Device struct {
	cfg      Config
	ftl      *ftl.FTL
	channels []sim.Resource
	planes   []sim.Resource
	// slots holds the free-at time of every command slot. A request claims
	// the earliest-free slot, so completions are out of order by sim-time:
	// a short read admitted after a long write finishes first.
	slots   []int64
	lastEnd int64
	rrPlane int
	booster *booster
	metrics storage.Metrics
	inj     *faults.Injector

	tel    *devTel
	tracer *telemetry.Tracer

	// Per-request scratch, reused across submissions (the device is
	// single-goroutine per the storage.Device contract). Contents are only
	// meaningful within one submit call; every consumer that outlives the
	// call (FTL reverse map, booster) copies what it keeps.
	lpnBuf      []int64
	chunkBuf    []chunk
	readOps     []readOp
	pendingLPNs []int64
	planeOps    []int
}

// New builds a fresh device.
func New(cfg Config) (*Device, error) {
	if cfg.Queues == 0 {
		cfg.Queues = 1
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 32
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f, err := ftl.New(ftl.Config{
		Geometry:     cfg.Geometry,
		Pools:        cfg.Pools,
		GCFreeBlocks: cfg.GCFreeBlocks,
		Wear:         cfg.Wear,
	})
	if err != nil {
		return nil, err
	}
	inj, err := faults.New(cfg.Faults)
	if err != nil {
		return nil, err
	}
	f.SetFaults(inj)
	return &Device{
		cfg:      cfg,
		ftl:      f,
		channels: make([]sim.Resource, cfg.Geometry.Channels),
		planes:   make([]sim.Resource, cfg.Geometry.Planes()),
		slots:    make([]int64, cfg.slots()),
		booster:  newBooster(cfg.WriteBoosterBytes),
		inj:      inj,
	}, nil
}

// Caps advertises the command-queued, unpacked interface.
func (d *Device) Caps() storage.Caps {
	return storage.Caps{Backend: storage.BackendUFS, PackedCommands: false, QueueDepth: d.cfg.slots()}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Geometry returns the flash array's shape.
func (d *Device) Geometry() flash.Geometry { return d.cfg.Geometry }

// CapacityBytes returns the device's physical flash capacity (the main
// pools; the booster is over-provisioning, not addressable space).
func (d *Device) CapacityBytes() int64 {
	var total int64
	for _, p := range d.cfg.Pools {
		total += p.BytesPerPlane() * int64(d.cfg.Geometry.Planes())
	}
	return total
}

// Metrics returns a copy of the accumulated metrics.
func (d *Device) Metrics() storage.Metrics { return d.metrics }

// FTLStats exposes the translation layer's accounting.
func (d *Device) FTLStats() ftl.Stats { return d.ftl.Stats() }

// Wear exposes the erase distribution of pool index pool.
func (d *Device) Wear(pool int) ftl.WearSummary { return d.ftl.Wear(pool) }

// MapCacheStats is zero: the model gives UFS controllers enough RAM for
// the whole mapping table (DRAM-less eMMC is where map paging bites).
func (d *Device) MapCacheStats() ftl.MapCacheStats { return ftl.MapCacheStats{} }

// BufferHitRate reports the booster's read hit rate (0 when disabled).
func (d *Device) BufferHitRate() float64 { return d.booster.hitRate() }

// PrefetchStats is zero: no read-ahead in this model.
func (d *Device) PrefetchStats() (prefetched, hits int64) { return 0, 0 }

// FaultCounts exposes the injector's per-kind fault totals.
func (d *Device) FaultCounts() faults.Counts { return d.inj.Counts() }

// FaultDraws reports the injector's decision-stream position (0 when
// injection is off).
func (d *Device) FaultDraws() int64 { return d.inj.Draws() }

// SetFaultConfig replaces the device's fault injector with a fresh one
// built from fc (nil = injection off), starting at draw 0 — as if fc had
// been in the construction config. The FTL shares the new injector.
func (d *Device) SetFaultConfig(fc *faults.Config) error {
	inj, err := faults.New(fc)
	if err != nil {
		return err
	}
	d.cfg.Faults = fc
	d.inj = inj
	d.ftl.SetFaults(inj)
	return nil
}

// AddArtificialWear pre-ages a pool (aging studies).
func (d *Device) AddArtificialWear(pool int, erases int64) { d.ftl.AddArtificialWear(pool, erases) }

// Pools describes the device's flash pools; Wear indexes into this slice.
func (d *Device) Pools() []flash.PoolSpec { return d.ftl.Pools() }

// LastActivity returns the completion time of the most recent request.
func (d *Device) LastActivity() int64 { return d.lastEnd }

// admit claims the earliest-free command slot for a request dispatched at
// dispatchAt. Ties break on slot index, keeping the schedule deterministic.
func (d *Device) admit(dispatchAt int64) (slot int, start int64, waited bool) {
	slot = 0
	for i := 1; i < len(d.slots); i++ {
		if d.slots[i] < d.slots[slot] {
			slot = i
		}
	}
	start = dispatchAt
	if d.slots[slot] > start {
		start = d.slots[slot]
		waited = true
	}
	return slot, start, waited
}

// chunk is one physical page operation derived from a host request.
type chunk struct {
	pool     int
	lpns     []int64
	pageSize int
}

// splitWrite decomposes a write into page chunks, largest pool first. The
// returned slice is device scratch, valid until the next splitWrite call;
// its chunks alias lpns.
func (d *Device) splitWrite(lpns []int64) []chunk {
	out := d.chunkBuf[:0]
	rest := lpns
	for pi, pool := range d.cfg.Pools {
		spp := pool.SectorsPerPage()
		last := pi == len(d.cfg.Pools)-1
		for len(rest) >= spp || (last && len(rest) > 0) {
			n := spp
			if n > len(rest) {
				n = len(rest)
			}
			out = append(out, chunk{pool: pi, lpns: rest[:n], pageSize: pool.PageBytes})
			rest = rest[n:]
		}
	}
	d.chunkBuf = out
	return out
}

// resetPlaneOps clears and returns the per-request pipelining counters
// (one per plane).
func (d *Device) resetPlaneOps() []int {
	if d.planeOps == nil {
		d.planeOps = make([]int, len(d.planes))
	}
	ops := d.planeOps
	for i := range ops {
		ops[i] = 0
	}
	return ops
}

// opCost applies the pipelining factor to the n-th consecutive operation a
// request issues to one plane (cache-mode program/read).
func (d *Device) opCost(base int64, nthOnPlane int) int64 {
	if nthOnPlane == 0 {
		return base
	}
	return int64(float64(base) * d.cfg.Timing.PipelineFactor)
}

// gcTime prices a unit of FTL garbage work in flash latency.
func (d *Device) gcTime(w ftl.GCWork, pageBytes int) int64 {
	t := d.cfg.Timing
	var moveNs int64
	if w.PageMoves > 0 {
		moveNs = int64(w.PageMoves) * (t.Read(pageBytes) + t.Program(pageBytes))
	}
	faultNs := int64(w.ProgramFaults)*t.Program(pageBytes) + int64(w.EraseFaults)*t.EraseNs
	return moveNs + faultNs + int64(w.Erases)*t.EraseNs
}

// scheduleWrite places one program (transfer, then program+GC on the plane)
// under the interleaved discipline and returns its completion time.
func (d *Device) scheduleWrite(opsStart int64, plane int, transfer, opNs int64, pageBytes int) int64 {
	chIdx := d.cfg.Geometry.ChannelOf(plane)
	chStart, chEnd := d.channels[chIdx].Reserve(opsStart, transfer)
	plStart, plEnd := d.planes[plane].Reserve(chEnd, opNs)
	if d.tracer != nil {
		pg := telemetry.L("page", pageLabel(pageBytes))
		d.tracer.Span("ufs", trackChannel(chIdx), "xfer-in", chStart, chEnd, pg)
		d.tracer.Span("ufs", trackPlane(plane), "program", plStart, plEnd, pg)
	}
	return plEnd
}

// scheduleRead places one read (flash read, then transfer out) and returns
// its completion time.
func (d *Device) scheduleRead(opsStart int64, plane int, opNs, transfer int64, pageBytes int) int64 {
	chIdx := d.cfg.Geometry.ChannelOf(plane)
	plStart, plEnd := d.planes[plane].Reserve(opsStart, opNs)
	chStart, chEnd := d.channels[chIdx].Reserve(plEnd, transfer)
	if d.tracer != nil {
		pg := telemetry.L("page", pageLabel(pageBytes))
		d.tracer.Span("ufs", trackPlane(plane), "read", plStart, plEnd, pg)
		d.tracer.Span("ufs", trackChannel(chIdx), "xfer-out", chStart, chEnd, pg)
	}
	return chEnd
}

// Submit services one request and returns its timing. Requests must arrive
// in nondecreasing arrival order.
func (d *Device) Submit(req trace.Request) (storage.Result, error) {
	return d.SubmitAt(req.Arrival, req)
}

// SubmitAt services one request dispatched at dispatchAt (at least its
// arrival): Submit with an explicit dispatch time, the single-request fast
// path of the replay loops. It allocates nothing in steady state.
func (d *Device) SubmitAt(dispatchAt int64, req trace.Request) (storage.Result, error) {
	if req.Size == 0 || req.Size%trace.PageSize != 0 {
		return storage.Result{}, fmt.Errorf("ufs: request size %d not page aligned", req.Size)
	}
	if req.Arrival > dispatchAt {
		return storage.Result{}, fmt.Errorf("ufs: batch member arrives after dispatch")
	}
	return d.submitOne(dispatchAt, req)
}

// SubmitPacked services a batch dispatched together at dispatchAt. UFS has
// no packed commands — each member claims its own command slot and runs as
// an independent exchange — but accepting batches keeps the blockdev
// dispatch path backend-neutral.
func (d *Device) SubmitPacked(dispatchAt int64, reqs []trace.Request) ([]storage.Result, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("ufs: empty command batch")
	}
	out := make([]storage.Result, 0, len(reqs))
	for _, req := range reqs {
		if req.Size == 0 || req.Size%trace.PageSize != 0 {
			return nil, fmt.Errorf("ufs: request size %d not page aligned", req.Size)
		}
		if req.Arrival > dispatchAt {
			return nil, fmt.Errorf("ufs: batch member arrives after dispatch")
		}
		res, err := d.submitOne(dispatchAt, req)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// submitOne runs one command through slot admission and the flash array.
func (d *Device) submitOne(dispatchAt int64, req trace.Request) (storage.Result, error) {
	// The booster drains into the gap the device just sat idle, like the
	// idle-GC policy: the host paid nothing for it.
	if budget := dispatchAt - d.lastEnd; budget > 0 {
		d.destageIdle(budget)
	}

	slot, serviceStart, waited := d.admit(dispatchAt)
	opsStart := serviceStart + d.cfg.Timing.RequestOverheadNs

	startLPN := int64(req.LBA) / trace.SectorsPerPage
	nSectors := int(req.Size) / trace.PageSize
	lpns := d.lpnBuf[:0]
	for i := 0; i < nSectors; i++ {
		lpns = append(lpns, startLPN+int64(i))
	}
	d.lpnBuf = lpns

	var finish int64
	var err error
	if req.Op == trace.Write {
		finish, err = d.serveWrite(opsStart, lpns)
	} else {
		finish, err = d.serveRead(opsStart, lpns)
	}
	if err != nil {
		return storage.Result{}, err
	}

	d.slots[slot] = finish
	if finish > d.lastEnd {
		d.lastEnd = finish
	}
	d.metrics.Served++
	if !waited {
		d.metrics.NoWait++
	}
	d.metrics.SumServiceNs += finish - serviceStart
	d.metrics.SumResponseNs += finish - req.Arrival
	d.metrics.SumWaitNs += serviceStart - req.Arrival
	d.observeRequest(req.Op, finish-serviceStart, serviceStart-req.Arrival)
	return storage.Result{ServiceStart: serviceStart, Finish: finish, Waited: waited}, nil
}

// serveWrite programs the request's sectors. With the booster enabled, every
// chunk lands in SLC at fast-page latency (after any synchronous destage to
// make room); otherwise chunks go straight to the main pools via the FTL.
func (d *Device) serveWrite(opsStart int64, lpns []int64) (int64, error) {
	chunks := d.splitWrite(lpns)
	if d.booster != nil {
		opsStart += d.destageForSpace(int64(len(lpns)) * flash.SectorBytes)
		finish := opsStart
		perPlane := d.resetPlaneOps()
		for _, c := range chunks {
			plane := d.rrPlane % len(d.planes)
			d.rrPlane++
			d.booster.add(c.pool, c.lpns)
			d.metrics.BufferedWrites++
			payload := len(c.lpns) * flash.SectorBytes
			prog := d.opCost(d.slcProgram(c.pageSize), perPlane[plane])
			perPlane[plane]++
			end := d.scheduleWrite(opsStart, plane, d.cfg.Timing.Transfer(payload), prog, c.pageSize)
			if end > finish {
				finish = end
			}
		}
		d.observeBooster()
		return finish, nil
	}
	perPlane := d.resetPlaneOps()
	finish := opsStart
	for _, c := range chunks {
		plane := d.rrPlane % len(d.planes)
		d.rrPlane++
		loc, gcWork, err := d.ftl.Write(plane, c.pool, c.lpns)
		if err != nil {
			return 0, err
		}
		var gcNs int64
		if !gcWork.Zero() {
			gcNs = d.gcTime(gcWork, c.pageSize)
			d.metrics.ForegroundGC.Add(gcWork)
			d.metrics.GCStallNs += gcNs
			d.tracer.Instant("ftl", "gc", "foreground-gc", opsStart)
		}
		payload := len(c.lpns) * flash.SectorBytes
		prog := d.opCost(d.cfg.Timing.ProgramPool(d.cfg.Pools[c.pool], int(loc.Page)), perPlane[plane])
		perPlane[plane]++
		end := d.scheduleWrite(opsStart, plane, d.cfg.Timing.Transfer(payload), gcNs+prog, c.pageSize)
		if end > finish {
			finish = end
		}
	}
	return finish, nil
}

// slcProgram and slcRead price booster operations: fast-page latency of the
// given page size, using the Timing's SLC factors.
func (d *Device) slcProgram(pageBytes int) int64 {
	p := flash.PoolSpec{PageBytes: pageBytes, BlocksPerPlane: 1, PagesPerBlock: 1, SLCMode: true}
	return d.cfg.Timing.ProgramPool(p, 0)
}

func (d *Device) slcRead(pageBytes int) int64 {
	p := flash.PoolSpec{PageBytes: pageBytes, BlocksPerPlane: 1, PagesPerBlock: 1, SLCMode: true}
	return d.cfg.Timing.ReadPool(p)
}

// readOp is one physical page read derived from a host request. The
// device's readOps scratch accumulates them per request.
type readOp struct {
	plane   int
	pool    int
	payload int
	loc     ftl.Loc
	mapped  bool
	slc     bool
}

// flushPendingReads converts the accumulated unmapped-sector run into read
// ops laid out by the write splitter, then clears the run.
func (d *Device) flushPendingReads() {
	if len(d.pendingLPNs) == 0 {
		return
	}
	for _, c := range d.splitWrite(d.pendingLPNs) {
		plane := d.rrPlane % len(d.planes)
		d.rrPlane++
		d.readOps = append(d.readOps, readOp{plane: plane, pool: c.pool, payload: len(c.lpns) * flash.SectorBytes})
	}
	d.pendingLPNs = d.pendingLPNs[:0]
}

// serveRead reads the physical pages backing the request: booster-held
// sectors at SLC latency, mapped sectors wherever they were written,
// unmapped sectors as if laid out by the write splitter.
func (d *Device) serveRead(opsStart int64, lpns []int64) (int64, error) {
	d.readOps = d.readOps[:0]
	d.pendingLPNs = d.pendingLPNs[:0] // unmapped run
	var lastLoc ftl.Loc
	haveLast := false
	for _, lpn := range lpns {
		if d.booster != nil && d.booster.holds(lpn) {
			// Dirty in the booster: an SLC read off a striped plane.
			d.booster.hits++
			d.flushPendingReads()
			plane := d.rrPlane % len(d.planes)
			d.rrPlane++
			d.readOps = append(d.readOps, readOp{plane: plane, pool: len(d.cfg.Pools) - 1,
				payload: flash.SectorBytes, slc: true})
			haveLast = false
			continue
		}
		if d.booster != nil {
			d.booster.misses++
		}
		loc, ok := d.ftl.Lookup(lpn)
		if !ok {
			d.pendingLPNs = append(d.pendingLPNs, lpn)
			continue
		}
		if haveLast && loc == lastLoc {
			d.readOps[len(d.readOps)-1].payload += flash.SectorBytes
			continue
		}
		d.flushPendingReads()
		d.readOps = append(d.readOps, readOp{plane: int(loc.Plane), pool: int(loc.Pool), payload: flash.SectorBytes,
			loc: loc, mapped: true})
		lastLoc, haveLast = loc, true
	}
	d.flushPendingReads()

	perPlane := d.resetPlaneOps()
	finish := opsStart
	for _, op := range d.readOps {
		var rd int64
		if op.slc {
			rd = d.opCost(d.slcRead(d.cfg.Pools[op.pool].PageBytes), perPlane[op.plane])
		} else {
			rd = d.opCost(d.cfg.Timing.ReadPool(d.cfg.Pools[op.pool]), perPlane[op.plane])
		}
		perPlane[op.plane]++
		// Uncorrectable read: pay the retry ladder and read-scrub the block
		// into retirement, exactly as the eMMC model does — the shared
		// injector keeps the decision stream deterministic per seed.
		if op.mapped && d.inj.ReadUncorrectable(d.ftl.PoolAvgPE(op.pool)) {
			rec, rerr := d.ftl.RetireBlockAt(op.loc)
			extra := int64(d.inj.RecoveryReads())*d.cfg.Timing.ReadPool(d.cfg.Pools[op.pool]) +
				d.gcTime(rec, d.cfg.Pools[op.pool].PageBytes)
			rd += extra
			d.metrics.ReadFaults++
			d.metrics.RecoveryNs += extra
			if d.tel != nil {
				d.tel.readFaults.Inc()
			}
			d.tracer.Instant("ufs", "device", "read-recovery", opsStart)
			if rerr != nil {
				return 0, fmt.Errorf("ufs: read-scrub recovery: %w (after %w)", rerr, flash.ErrUncorrectable)
			}
		}
		end := d.scheduleRead(opsStart, op.plane, rd, d.cfg.Timing.Transfer(op.payload),
			d.cfg.Pools[op.pool].PageBytes)
		if end > finish {
			finish = end
		}
	}
	return finish, nil
}

// Flush services a cache-flush barrier: it drains every command slot and
// in-flight flash operation, forces the booster's content to the main
// pools, and pays the flush cost.
func (d *Device) Flush(dispatchAt int64) (storage.Result, error) {
	start := dispatchAt
	waited := false
	for _, s := range d.slots {
		if s > start {
			start = s
			waited = true
		}
	}
	for i := range d.channels {
		if f := d.channels[i].FreeAt(); f > start {
			start = f
		}
	}
	for i := range d.planes {
		if f := d.planes[i].FreeAt(); f > start {
			start = f
		}
	}
	serviceStart := start
	for d.booster != nil {
		ns := d.destageOne()
		if ns <= 0 {
			break
		}
		start += ns
		d.metrics.DestageStallNs += ns
	}
	cost := d.cfg.FlushNs
	if cost <= 0 {
		cost = 100_000
	}
	finish := start + cost
	for i := range d.slots {
		if d.slots[i] < finish {
			d.slots[i] = finish
		}
	}
	d.lastEnd = finish
	d.metrics.Flushes++
	d.metrics.FlushNs += cost
	if d.tel != nil {
		d.tel.flushes.Inc()
	}
	d.tracer.Span("ufs", "device", "flush", serviceStart, finish)
	return storage.Result{ServiceStart: serviceStart, Finish: finish, Waited: waited}, nil
}
