package ufs

import (
	"bytes"
	"reflect"
	"testing"

	"emmcio/internal/faults"
	"emmcio/internal/flash"
	"emmcio/internal/storage"
	"emmcio/internal/trace"
)

// Compile-time: the UFS model satisfies the backend-neutral seam.
var _ storage.Device = (*Device)(nil)

func testTiming() flash.Timing {
	return flash.Timing{
		PerPage: map[int]flash.OpTiming{
			4096: {ReadNs: 160_000, ProgramNs: 1_385_000},
			8192: {ReadNs: 244_000, ProgramNs: 1_491_000},
		},
		EraseNs:           3_800_000,
		TransferNsPerByte: 2,
		CmdOverheadNs:     5_000,
		RequestOverheadNs: 20_000,
		PipelineFactor:    0.5,
		ChannelInterleave: true,
	}
}

func testConfig() Config {
	return Config{
		Geometry: flash.Geometry{Channels: 4, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 2},
		Timing:   testTiming(),
		Pools: []flash.PoolSpec{
			{PageBytes: 8192, BlocksPerPlane: 64, PagesPerBlock: 64},
			{PageBytes: 4096, BlocksPerPlane: 64, PagesPerBlock: 64},
		},
		GCFreeBlocks:      2,
		Queues:            2,
		QueueDepth:        8,
		WriteBoosterBytes: 1 << 20,
	}
}

func wr(at int64, lba uint64, size uint32) trace.Request {
	return trace.Request{Arrival: at, Op: trace.Write, LBA: lba, Size: size}
}

func rd(at int64, lba uint64, size uint32) trace.Request {
	return trace.Request{Arrival: at, Op: trace.Read, LBA: lba, Size: size}
}

// workload produces a deterministic mixed request sequence.
func workload(n int) []trace.Request {
	var reqs []trace.Request
	at := int64(0)
	for i := 0; i < n; i++ {
		lba := uint64((i * 7) % 256 * trace.SectorsPerPage)
		size := uint32(4096 * (1 + i%4))
		if i%3 == 2 {
			reqs = append(reqs, rd(at, lba, size))
		} else {
			reqs = append(reqs, wr(at, lba, size))
		}
		at += int64(50_000 * (1 + i%5))
	}
	return reqs
}

func replay(t *testing.T, d *Device, reqs []trace.Request) []storage.Result {
	t.Helper()
	out := make([]storage.Result, 0, len(reqs))
	for _, r := range reqs {
		res, err := d.Submit(r)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		out = append(out, res)
	}
	return out
}

// TestDeterminism: the same workload on the same config and fault seed
// produces bit-identical results and metrics.
func TestDeterminism(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = &faults.Config{Rate: 0.5, Seed: 11}
	reqs := workload(300)
	var runs [2][]storage.Result
	var mets [2]storage.Metrics
	for i := range runs {
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = replay(t, d, reqs)
		mets[i] = d.Metrics()
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Fatalf("results differ between identical runs")
	}
	if mets[0] != mets[1] {
		t.Fatalf("metrics differ: %+v vs %+v", mets[0], mets[1])
	}
}

// TestOutOfOrderCompletion: with free command slots, a short read admitted
// after a long write completes first — the queued interface the paper's
// Implication 1 anticipates.
func TestOutOfOrderCompletion(t *testing.T) {
	d, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// One 8K write occupies a single plane; the read lands on the next
	// round-robin plane, so only slot admission could serialize them.
	w, err := d.Submit(wr(0, 0, 8192))
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Submit(rd(0, 1<<20, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if r.Waited {
		t.Fatalf("read waited despite free command slots")
	}
	if r.Finish >= w.Finish {
		t.Fatalf("read (finish %d) did not overtake write (finish %d)", r.Finish, w.Finish)
	}
}

// TestQueueFullWaits: with every slot busy, the next command waits.
func TestQueueFullWaits(t *testing.T) {
	cfg := testConfig()
	cfg.Queues, cfg.QueueDepth = 1, 2
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := d.Submit(wr(0, uint64(i*64)*trace.SectorsPerPage, 32*1024)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.Submit(rd(0, 1<<20, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Waited {
		t.Fatalf("third command did not wait with both slots busy")
	}
}

// TestBoosterReadHit: a read of booster-held sectors is served from SLC and
// counts as a buffer hit.
func TestBoosterReadHit(t *testing.T) {
	d, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(wr(0, 0, 8192)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(rd(0, 0, 8192)); err != nil {
		t.Fatal(err)
	}
	if hr := d.BufferHitRate(); hr != 1 {
		t.Fatalf("booster hit rate = %v, want 1", hr)
	}
	if d.Metrics().BufferedWrites == 0 {
		t.Fatalf("write did not land in the booster")
	}
}

// TestFlushDrainsBooster: a flush barrier migrates all booster content.
func TestFlushDrainsBooster(t *testing.T) {
	d, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := d.Submit(wr(0, uint64(i*2)*trace.SectorsPerPage, 8192)); err != nil {
			t.Fatal(err)
		}
	}
	if d.booster.pending() == 0 {
		t.Fatalf("booster empty before flush")
	}
	if _, err := d.Flush(0); err != nil {
		t.Fatal(err)
	}
	if d.booster.pending() != 0 || d.booster.usedBytes != 0 {
		t.Fatalf("booster not drained by flush: %d chunks, %d bytes",
			d.booster.pending(), d.booster.usedBytes)
	}
	if d.Metrics().DestageStallNs == 0 {
		t.Fatalf("flush drain charged no stall time")
	}
}

// TestSnapshotRoundTrip: a snapshot taken mid-replay restores the command
// slots and the booster queue exactly, and the restored device continues
// bit-identically with the original.
func TestSnapshotRoundTrip(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = &faults.Config{Rate: 0.5, Seed: 3}
	reqs := workload(200)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replay(t, d, reqs[:120])
	if d.booster.pending() == 0 {
		t.Fatalf("test needs booster content at the snapshot point")
	}

	var buf bytes.Buffer
	if err := d.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(r.slots, d.slots) {
		t.Fatalf("command slots not restored: %v vs %v", r.slots, d.slots)
	}
	if !reflect.DeepEqual(r.booster.pendingChunks(), d.booster.pendingChunks()) {
		t.Fatalf("booster queue not restored")
	}
	if !reflect.DeepEqual(r.booster.dirty, d.booster.dirty) {
		t.Fatalf("booster dirty index not restored")
	}
	if r.booster.usedBytes != d.booster.usedBytes {
		t.Fatalf("booster occupancy: restored %d, want %d", r.booster.usedBytes, d.booster.usedBytes)
	}
	if r.Metrics() != d.Metrics() {
		t.Fatalf("metrics not restored")
	}

	restRes := replay(t, r, reqs[120:])
	origRes := replay(t, d, reqs[120:])
	if !reflect.DeepEqual(restRes, origRes) {
		t.Fatalf("restored device diverged from original after resume")
	}
	if r.Metrics() != d.Metrics() {
		t.Fatalf("metrics diverged after resume")
	}
}

// TestCaps: UFS advertises the queued, unpacked interface.
func TestCaps(t *testing.T) {
	d, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	caps := d.Caps()
	if caps.Backend != storage.BackendUFS || caps.PackedCommands || caps.QueueDepth != 16 {
		t.Fatalf("caps = %+v", caps)
	}
}
