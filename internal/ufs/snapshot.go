package ufs

import (
	"encoding/gob"
	"fmt"
	"io"

	"emmcio/internal/faults"
	"emmcio/internal/ftl"
	"emmcio/internal/sim"
	"emmcio/internal/storage"
)

// BoosterChunk is the gob form of one pending booster migration.
type BoosterChunk struct {
	Pool int
	LPNs []int64
}

// deviceSnapshot is the gob layout of a device's dynamic state. Unlike the
// eMMC model's RAM buffer (a cache that restarts cold), the booster holds
// the only copy of its dirty sectors, so its queue is part of the snapshot:
// a restored device still answers booster reads at SLC latency and still
// owes the same migrations.
type deviceSnapshot struct {
	Config      Config
	FTL         *ftl.SnapshotData
	Slots       []int64
	LastEnd     int64
	RRPlane     int
	Metrics     storage.Metrics
	ChannelFree []int64
	ChannelBusy []int64
	PlaneFree   []int64
	PlaneBusy   []int64
	// Booster state: the pending-migration queue in order, plus hit
	// accounting. The dirty-sector index is rebuilt from the queue.
	BoosterQueue  []BoosterChunk
	BoosterHits   int64
	BoosterMisses int64
	// FaultDraws archives the injector's decision-stream position so a
	// restored device resumes the exact fault sequence (Skip fast-forward).
	FaultDraws int64
}

// Snapshot archives the device (configuration, FTL state, command-slot and
// resource timing cursors, booster content, metrics) to w, so an aged
// device can be resumed later without replaying its history.
func (d *Device) Snapshot(w io.Writer) error {
	snap := deviceSnapshot{
		Config:     d.cfg,
		FTL:        d.ftl.SnapshotData(),
		Slots:      append([]int64(nil), d.slots...),
		LastEnd:    d.lastEnd,
		RRPlane:    d.rrPlane,
		Metrics:    d.metrics,
		FaultDraws: d.inj.Draws(),
	}
	if d.booster != nil {
		snap.BoosterHits = d.booster.hits
		snap.BoosterMisses = d.booster.misses
		for _, c := range d.booster.pendingChunks() {
			snap.BoosterQueue = append(snap.BoosterQueue,
				BoosterChunk{Pool: c.pool, LPNs: append([]int64(nil), c.lpns...)})
		}
	}
	for i := range d.channels {
		f, b := d.channels[i].State()
		snap.ChannelFree = append(snap.ChannelFree, f)
		snap.ChannelBusy = append(snap.ChannelBusy, b)
	}
	for i := range d.planes {
		f, b := d.planes[i].State()
		snap.PlaneFree = append(snap.PlaneFree, f)
		snap.PlaneBusy = append(snap.PlaneBusy, b)
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("ufs: encoding snapshot: %w", err)
	}
	return nil
}

// RestoreSnapshot rebuilds a device from a Snapshot stream.
func RestoreSnapshot(r io.Reader) (*Device, error) {
	var snap deviceSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("ufs: decoding snapshot: %w", err)
	}
	if snap.Config.Queues == 0 {
		snap.Config.Queues = 1
	}
	if snap.Config.QueueDepth == 0 {
		snap.Config.QueueDepth = 32
	}
	if err := snap.Config.Validate(); err != nil {
		return nil, fmt.Errorf("ufs: snapshot config: %w", err)
	}
	if snap.FTL == nil {
		return nil, fmt.Errorf("ufs: snapshot missing FTL state")
	}
	f, err := ftl.RestoreFromData(snap.FTL)
	if err != nil {
		return nil, err
	}
	inj, err := faults.New(snap.Config.Faults)
	if err != nil {
		return nil, err
	}
	inj.Skip(snap.FaultDraws)
	f.SetFaults(inj)
	d := &Device{
		cfg:      snap.Config,
		ftl:      f,
		inj:      inj,
		channels: make([]sim.Resource, snap.Config.Geometry.Channels),
		planes:   make([]sim.Resource, snap.Config.Geometry.Planes()),
		slots:    make([]int64, snap.Config.slots()),
		booster:  newBooster(snap.Config.WriteBoosterBytes),
		lastEnd:  snap.LastEnd,
		rrPlane:  snap.RRPlane,
		metrics:  snap.Metrics,
	}
	if len(snap.Slots) != len(d.slots) {
		return nil, fmt.Errorf("ufs: snapshot slot count mismatch")
	}
	copy(d.slots, snap.Slots)
	if len(snap.ChannelFree) != len(d.channels) || len(snap.PlaneFree) != len(d.planes) {
		return nil, fmt.Errorf("ufs: snapshot resource counts mismatch")
	}
	for i := range d.channels {
		d.channels[i].SetState(snap.ChannelFree[i], snap.ChannelBusy[i])
	}
	for i := range d.planes {
		d.planes[i].SetState(snap.PlaneFree[i], snap.PlaneBusy[i])
	}
	if len(snap.BoosterQueue) > 0 && d.booster == nil {
		return nil, fmt.Errorf("ufs: snapshot has booster content but no booster capacity")
	}
	if d.booster != nil {
		d.booster.hits = snap.BoosterHits
		d.booster.misses = snap.BoosterMisses
		for _, c := range snap.BoosterQueue {
			d.booster.add(c.Pool, c.LPNs)
		}
	}
	return d, nil
}
