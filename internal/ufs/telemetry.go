package ufs

import (
	"fmt"

	"emmcio/internal/telemetry"
	"emmcio/internal/trace"
)

// devTel holds the device's metric handles, resolved once at attach time.
type devTel struct {
	reads, writes *telemetry.Counter
	readServNs    *telemetry.Histogram
	writeServNs   *telemetry.Histogram
	waitNs        *telemetry.Histogram
	flushes       *telemetry.Counter
	destageIdle   *telemetry.Counter
	destageSpace  *telemetry.Counter
	boosterBytes  *telemetry.Gauge
	readFaults    *telemetry.Counter
}

// SetTelemetry attaches metrics and span tracing to the device (nil values
// detach). Metrics: ufs_requests_total{op}, ufs_service_ns{op} and
// ufs_wait_ns latency histograms, flush and booster-migration counters, and
// booster occupancy. Spans: flash transfers/programs/reads on channel and
// plane tracks, plus flush barriers and fault-recovery markers. The FTL and
// fault injector wire through the same registry.
func (d *Device) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	d.tracer = tr
	d.ftl.SetTelemetry(reg)
	d.inj.SetTelemetry(reg)
	if reg == nil {
		d.tel = nil
		return
	}
	d.tel = &devTel{
		reads:        reg.Counter("ufs_requests_total", telemetry.L("op", "read")),
		writes:       reg.Counter("ufs_requests_total", telemetry.L("op", "write")),
		readServNs:   reg.Histogram("ufs_service_ns", nil, telemetry.L("op", "read")),
		writeServNs:  reg.Histogram("ufs_service_ns", nil, telemetry.L("op", "write")),
		waitNs:       reg.Histogram("ufs_wait_ns", nil),
		flushes:      reg.Counter("ufs_flushes_total"),
		destageIdle:  reg.Counter("ufs_booster_destages_total", telemetry.L("cause", "idle")),
		destageSpace: reg.Counter("ufs_booster_destages_total", telemetry.L("cause", "space")),
		boosterBytes: reg.Gauge("ufs_booster_bytes"),
		readFaults:   reg.Counter("ufs_read_faults_total"),
	}
}

// observeRequest records one served command's latency breakdown.
func (d *Device) observeRequest(op trace.Op, serviceNs, waitNs int64) {
	if d.tel == nil {
		return
	}
	if op == trace.Write {
		d.tel.writes.Inc()
		d.tel.writeServNs.Observe(serviceNs)
	} else {
		d.tel.reads.Inc()
		d.tel.readServNs.Observe(serviceNs)
	}
	d.tel.waitNs.Observe(waitNs)
}

// observeBooster publishes the booster's occupancy.
func (d *Device) observeBooster() {
	if d.tel == nil || d.booster == nil {
		return
	}
	d.tel.boosterBytes.Set(d.booster.usedBytes)
}

// trackChannel/trackPlane format Perfetto track names; only reached when a
// tracer is attached.
func trackChannel(ch int) string { return fmt.Sprintf("channel/%d", ch) }
func trackPlane(pl int) string   { return fmt.Sprintf("plane/%d", pl) }

// pageLabel names the pool size in span labels.
func pageLabel(pageBytes int) string {
	if pageBytes >= 8192 {
		return "8K"
	}
	return "4K"
}
