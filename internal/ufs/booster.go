package ufs

import (
	"emmcio/internal/flash"
	"emmcio/internal/trace"
)

// The write booster models UFS 3.1's WriteBooster: a slice of the flash
// provisioned in SLC mode that absorbs host writes at fast-page program
// latency. Content migrates to the main (MLC-priced) pools later — during
// idle gaps, like the idle-GC policy, or synchronously when the booster
// fills or a flush barrier arrives. It plays the role the RAM buffer plays
// in the eMMC model, with flash persistence instead of volatile RAM, and
// the same deterministic FIFO discipline (a slice queue plus a dirty-sector
// index; no map iteration ever decides ordering).

// boostedChunk is one admitted write chunk awaiting migration. The pool is
// fixed at admission by the write splitter, so migration order cannot
// change where data lands.
type boostedChunk struct {
	pool int
	lpns []int64
}

type booster struct {
	capBytes  int64
	usedBytes int64
	// queue[head:] holds the admitted chunks in FIFO order; popped slots are
	// compacted away once the drained prefix dominates, so the backing array
	// stays bounded by the peak queue depth.
	queue []boostedChunk
	head  int
	// freeLPNs recycles the lpn storage of migrated chunks, so admitting a
	// chunk allocates nothing in steady state.
	freeLPNs [][]int64
	// dirty indexes booster-held (not yet migrated) sectors for read hits.
	dirty map[int64]bool

	hits   int64
	misses int64
}

// pending reports the queued chunk count.
func (b *booster) pending() int { return len(b.queue) - b.head }

// peek returns the oldest chunk without removing it.
func (b *booster) peek() boostedChunk { return b.queue[b.head] }

// pendingChunks returns the queued chunks in FIFO order (snapshots, tests).
func (b *booster) pendingChunks() []boostedChunk { return b.queue[b.head:] }

// grabLPNs returns a length-n slice, recycled when a fitting one is free.
func (b *booster) grabLPNs(n int) []int64 {
	if k := len(b.freeLPNs); k > 0 {
		s := b.freeLPNs[k-1]
		b.freeLPNs = b.freeLPNs[:k-1]
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]int64, n)
}

// recycleLPNs returns a migrated chunk's lpn storage to the free list.
func (b *booster) recycleLPNs(s []int64) {
	if cap(s) > 0 {
		b.freeLPNs = append(b.freeLPNs, s[:0])
	}
}

// newBooster builds a booster, or returns nil (disabled) below one page.
func newBooster(capBytes int64) *booster {
	if capBytes < trace.PageSize {
		return nil
	}
	return &booster{capBytes: capBytes, dirty: make(map[int64]bool)}
}

// holds reports whether the sector is dirty in the booster.
func (b *booster) holds(lpn int64) bool { return b.dirty[lpn] }

// spaceFor reports whether n more bytes fit.
func (b *booster) spaceFor(n int64) bool { return b.usedBytes+n <= b.capBytes }

// add stashes a chunk, copying lpns into recycled storage.
func (b *booster) add(pool int, lpns []int64) {
	cp := b.grabLPNs(len(lpns))
	copy(cp, lpns)
	b.queue = append(b.queue, boostedChunk{pool: pool, lpns: cp})
	for _, lpn := range cp {
		b.dirty[lpn] = true
	}
	b.usedBytes += int64(len(cp)) * flash.SectorBytes
}

// pop removes the oldest chunk. The caller owns the returned lpns slice and
// should hand it back via recycleLPNs when done.
func (b *booster) pop() (boostedChunk, bool) {
	if b.head == len(b.queue) {
		return boostedChunk{}, false
	}
	c := b.queue[b.head]
	b.queue[b.head] = boostedChunk{} // unpin the lpns storage
	b.head++
	if b.head == len(b.queue) {
		b.queue = b.queue[:0]
		b.head = 0
	} else if b.head >= 64 && b.head*2 >= len(b.queue) {
		n := copy(b.queue, b.queue[b.head:])
		clearTail := b.queue[n:]
		for i := range clearTail {
			clearTail[i] = boostedChunk{}
		}
		b.queue = b.queue[:n]
		b.head = 0
	}
	for _, lpn := range c.lpns {
		delete(b.dirty, lpn)
	}
	b.usedBytes -= int64(len(c.lpns)) * flash.SectorBytes
	return c, true
}

// hitRate returns the booster's read hit rate.
func (b *booster) hitRate() float64 {
	if b == nil || b.hits+b.misses == 0 {
		return 0
	}
	return float64(b.hits) / float64(b.hits+b.misses)
}

// destageOne migrates the oldest booster chunk into its main pool and
// returns the flash time consumed (SLC read + program + any GC), or 0 when
// the booster is empty or disabled.
func (d *Device) destageOne() int64 {
	if d.booster == nil {
		return 0
	}
	c, ok := d.booster.pop()
	if !ok {
		return 0
	}
	loc, gcWork, err := d.ftl.Write(d.rrPlane%len(d.planes), c.pool, c.lpns)
	d.rrPlane++
	if err != nil {
		// Out of space mid-migration: surface as a stall the size of an
		// erase so the condition is visible without failing the replay.
		d.booster.recycleLPNs(c.lpns)
		return d.cfg.Timing.EraseNs
	}
	ns := d.slcRead(d.cfg.Pools[c.pool].PageBytes) +
		d.cfg.Timing.ProgramPool(d.cfg.Pools[c.pool], int(loc.Page))
	if !gcWork.Zero() {
		d.metrics.ForegroundGC.Add(gcWork)
		ns += d.gcTime(gcWork, d.cfg.Pools[c.pool].PageBytes)
	}
	d.booster.recycleLPNs(c.lpns)
	return ns
}

// destageIdle drains the booster into an inter-arrival gap: a chunk
// migrates only when its estimated cost fits the remaining budget.
func (d *Device) destageIdle(budget int64) {
	for d.booster != nil && d.booster.pending() > 0 {
		head := d.booster.peek()
		estimate := d.slcRead(d.cfg.Pools[head.pool].PageBytes) +
			d.cfg.Timing.Program(d.cfg.Pools[head.pool].PageBytes)
		if estimate > budget {
			break
		}
		ns := d.destageOne()
		if ns <= 0 {
			break
		}
		budget -= ns
		d.metrics.DestageIdleNs += ns
		if d.tel != nil {
			d.tel.destageIdle.Inc()
		}
	}
}

// destageForSpace synchronously frees booster room for n bytes, returning
// the stall charged to the waiting request.
func (d *Device) destageForSpace(n int64) int64 {
	var stall int64
	for d.booster != nil && !d.booster.spaceFor(n) {
		ns := d.destageOne()
		if ns <= 0 {
			break
		}
		stall += ns
		d.metrics.DestageStallNs += ns
		if d.tel != nil {
			d.tel.destageSpace.Inc()
		}
	}
	return stall
}
