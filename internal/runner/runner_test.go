package runner

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"emmcio/internal/telemetry"
)

// Results come back in plan order even when later jobs finish first.
func TestMapPlanOrder(t *testing.T) {
	jobs := make([]int, 40)
	for i := range jobs {
		jobs[i] = i
	}
	out, err := Map(New(8), "order", jobs, func(i, j int) (int, error) {
		// Stagger completion so execution order differs from plan order.
		time.Sleep(time.Duration((len(jobs)-i)%5) * time.Millisecond)
		return j * 3, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(jobs) {
		t.Fatalf("%d results, want %d", len(out), len(jobs))
	}
	for i, v := range out {
		if v != i*3 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*3)
		}
	}
}

// The pool never runs more than the configured number of jobs at once.
func TestMapWorkerBound(t *testing.T) {
	const width = 3
	var cur, peak atomic.Int64
	jobs := make([]struct{}, 48)
	_, err := Map(New(width), "bound", jobs, func(i int, _ struct{}) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > width {
		t.Fatalf("observed %d concurrent jobs, pool width is %d", p, width)
	}
}

// Every job runs; failures come back joined and indexed, successes keep
// their result slots.
func TestMapAggregatesErrors(t *testing.T) {
	boom := errors.New("boom")
	jobs := []int{0, 1, 2, 3, 4}
	out, err := Map(New(2), "errs", jobs, func(i, j int) (string, error) {
		if j%2 == 0 {
			return "", fmt.Errorf("job-%d: %w", j, boom)
		}
		return fmt.Sprintf("ok-%d", j), nil
	})
	if err == nil {
		t.Fatal("want aggregated error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("joined error lost the cause: %v", err)
	}
	for _, frag := range []string{"errs job 0", "errs job 2", "errs job 4"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
	if out[1] != "ok-1" || out[3] != "ok-3" {
		t.Errorf("successful slots clobbered: %q", out)
	}
	if out[0] != "" || out[2] != "" || out[4] != "" {
		t.Errorf("failed slots not zero: %q", out)
	}
}

// An observed runner counts starts, finishes, failures, and latencies.
func TestMapTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	jobs := []int{0, 1, 2, 3, 4, 5}
	_, err := Map(New(2).Observe(reg), "tel", jobs, func(i, j int) (int, error) {
		if j == 4 {
			return 0, errors.New("nope")
		}
		return j, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	l := telemetry.L("sweep", "tel")
	if got := reg.Counter("runner_jobs_started_total", l).Value(); got != 6 {
		t.Errorf("started = %d, want 6", got)
	}
	if got := reg.Counter("runner_jobs_finished_total", l).Value(); got != 6 {
		t.Errorf("finished = %d, want 6", got)
	}
	if got := reg.Counter("runner_jobs_failed_total", l).Value(); got != 1 {
		t.Errorf("failed = %d, want 1", got)
	}
	if got := reg.Histogram("runner_job_wall_ns", nil, l).Count(); got != 6 {
		t.Errorf("latency observations = %d, want 6", got)
	}
}

func TestDefaultsAndEdges(t *testing.T) {
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(0) width %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(-3) width %d, want GOMAXPROCS", got)
	}
	// Empty plans and nil runners are fine.
	out, err := Map(nil, "empty", nil, func(i int, _ struct{}) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty plan: out=%v err=%v", out, err)
	}
	out2, err := Map(nil, "nilrunner", []int{7}, func(i, j int) (int, error) { return j, nil })
	if err != nil || len(out2) != 1 || out2[0] != 7 {
		t.Fatalf("nil runner: out=%v err=%v", out2, err)
	}
}

// A single-worker pool runs jobs strictly in plan order.
func TestSerialExecutionOrder(t *testing.T) {
	var seen []int
	jobs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	_, err := Map(New(1), "serial", jobs, func(i, j int) (int, error) {
		seen = append(seen, i) // no locking needed: one worker
		return j, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("serial execution order %v not the plan order", seen)
		}
	}
}

// A panicking job must become that job's error, not kill the process; the
// other jobs still run and return results.
func TestPanickingJobIsRecovered(t *testing.T) {
	reg := telemetry.NewRegistry()
	jobs := []int{0, 1, 2, 3, 4, 5}
	out, err := Map(New(3).Observe(reg), "boom", jobs, func(i, j int) (int, error) {
		if j == 2 {
			panic("job blew up")
		}
		return j * 10, nil
	})
	if err == nil {
		t.Fatal("want error from the panicked job")
	}
	if !strings.Contains(err.Error(), "boom job 2") || !strings.Contains(err.Error(), "job blew up") {
		t.Fatalf("error does not name the panicked job: %v", err)
	}
	if !strings.Contains(err.Error(), "runner_test.go") {
		t.Fatalf("error carries no stack trace: %v", err)
	}
	for i, j := range jobs {
		want := j * 10
		if j == 2 {
			want = 0 // zero value for the failed slot
		}
		if out[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
	l := telemetry.L("sweep", "boom")
	if got := reg.Counter("runner_jobs_panicked_total", l).Value(); got != 1 {
		t.Errorf("panicked = %d, want 1", got)
	}
	if got := reg.Counter("runner_jobs_failed_total", l).Value(); got != 1 {
		t.Errorf("failed = %d, want 1", got)
	}
	if got := reg.Counter("runner_jobs_finished_total", l).Value(); got != 6 {
		t.Errorf("finished = %d, want 6", got)
	}
}

// Serial pools (workers == 1) take a different code path; the recovery must
// hold there too.
func TestPanicRecoveredOnSerialPath(t *testing.T) {
	out, err := Map(New(1), "serialboom", []int{1, 2}, func(i, j int) (int, error) {
		if i == 0 {
			panic(i)
		}
		return j, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if out[1] != 2 {
		t.Fatalf("job after the panic did not run: out=%v", out)
	}
}
