// Package runner is the sweep engine every experiment replays through.
//
// A sweep is a declarative plan: a slice of independent jobs (typically
// trace × scheme × device-option combinations) plus a function that runs
// one job. Map executes the plan on a bounded worker pool and returns the
// results in plan order, regardless of completion order, so a parallel run
// is bit-identical to a serial one as long as each job is self-contained
// (fresh device, private trace copy). Errors do not abort the sweep: every
// job runs, and the failures come back joined, each wrapped with its sweep
// name and plan index. A panicking job is recovered and reported the same
// way, stack attached, so one crash cannot take down the process and lose
// every other job's result.
//
// The engine is deliberately generic — it knows nothing about traces or
// devices — so internal/core can use it for the Fig. 3 microbenchmark
// sweep without an import cycle; the replay-specific plan layer lives in
// internal/experiments. See docs/RUNNER.md.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"emmcio/internal/telemetry"
)

// Runner executes sweep plans on a bounded worker pool.
type Runner struct {
	workers int
	reg     *telemetry.Registry
}

// New returns a runner with the given pool width. Zero or negative means
// GOMAXPROCS — the CLIs' -j flag passes its value straight through.
func New(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers}
}

// Observe attaches a metrics registry: every Map call then feeds the
// runner_jobs_{started,finished,failed}_total counters and the
// runner_job_wall_ns latency histogram, labeled by sweep name. A nil
// registry leaves the runner unobserved. Returns the runner for chaining.
func (r *Runner) Observe(reg *telemetry.Registry) *Runner {
	r.reg = reg
	return r
}

// Workers reports the pool width.
func (r *Runner) Workers() int { return r.workers }

// sweepTel holds one Map call's metric handles. All fields are nil-safe.
type sweepTel struct {
	started, finished, failed, panicked *telemetry.Counter
	wallNs                              *telemetry.Histogram
}

func newSweepTel(reg *telemetry.Registry, sweep string) sweepTel {
	if reg == nil {
		return sweepTel{}
	}
	l := telemetry.L("sweep", sweep)
	return sweepTel{
		started:  reg.Counter("runner_jobs_started_total", l),
		finished: reg.Counter("runner_jobs_finished_total", l),
		failed:   reg.Counter("runner_jobs_failed_total", l),
		panicked: reg.Counter("runner_jobs_panicked_total", l),
		wallNs:   reg.Histogram("runner_job_wall_ns", nil, l),
	}
}

// Map runs fn over every job on the runner's worker pool and returns the
// results indexed exactly like jobs. It is MapContext without cancellation
// (context.Background()); see MapContext for the full contract.
func Map[J, R any](r *Runner, sweep string, jobs []J, fn func(i int, job J) (R, error)) ([]R, error) {
	return MapContext(context.Background(), r, sweep, jobs,
		func(_ context.Context, i int, job J) (R, error) { return fn(i, job) })
}

// MapContext runs fn over every job on the runner's worker pool and returns
// the results indexed exactly like jobs. fn must be safe to call
// concurrently and must not depend on execution order. On failure the job's
// result slot keeps R's zero value and the error is collected; the returned
// error joins every per-job failure (nil when all jobs succeed). A nil
// runner uses a default-width pool.
//
// ctx bounds the whole sweep: once it is done, jobs that have not started
// fail fast with the context's error (they never run), and running jobs
// receive the same ctx so cancellation-aware work (the core replay loops)
// aborts between events. The sweep always drains — every job slot gets a
// result or an error — so a canceled sweep still returns in plan order.
func MapContext[J, R any](ctx context.Context, r *Runner, sweep string, jobs []J, fn func(ctx context.Context, i int, job J) (R, error)) ([]R, error) {
	if r == nil {
		r = New(0)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]R, len(jobs))
	if len(jobs) == 0 {
		return out, nil
	}
	errs := make([]error, len(jobs))
	tel := newSweepTel(r.reg, sweep)
	// call runs one job, converting a panic into that job's error: on a
	// worker goroutine an escaped panic kills the whole process, losing every
	// other job's result. The recovery stack rides in the error so the crash
	// site is still diagnosable.
	call := func(i int) (res R, err error) {
		defer func() {
			if p := recover(); p != nil {
				tel.panicked.Inc()
				buf := make([]byte, 16<<10)
				buf = buf[:runtime.Stack(buf, false)]
				err = fmt.Errorf("job panicked: %v\n%s", p, buf)
			}
		}()
		if err := ctx.Err(); err != nil {
			return res, err
		}
		return fn(ctx, i, jobs[i])
	}
	run := func(i int) {
		tel.started.Inc()
		begin := time.Now()
		res, err := call(i)
		tel.wallNs.Observe(time.Since(begin).Nanoseconds())
		tel.finished.Inc()
		if err != nil {
			tel.failed.Inc()
			errs[i] = fmt.Errorf("runner: %s job %d: %w", sweep, i, err)
			return
		}
		out[i] = res
	}

	workers := r.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers == 1 {
		for i := range jobs {
			run(i)
		}
		return out, errors.Join(errs...)
	}

	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				run(i)
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out, errors.Join(errs...)
}
