// Package core ties the substrates together into the paper's case study
// (§V): it defines the three eMMC device schemes of Table V — pure 4 KB
// pages (4PS), pure 8 KB pages (8PS), and the hybrid-page-size proposal
// (HPS) — and replays traces through them, producing the mean-response-time
// and space-utilization comparisons of Figs. 8 and 9.
package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"

	"emmcio/internal/emmc"
	"emmcio/internal/faults"
	"emmcio/internal/flash"
	"emmcio/internal/ftl"
	"emmcio/internal/reliability"
	"emmcio/internal/runner"
	"emmcio/internal/storage"
	"emmcio/internal/telemetry"
	"emmcio/internal/trace"
	"emmcio/internal/ufs"
)

// Scheme selects one of the three Table V device organizations.
type Scheme int

const (
	// Scheme4PS is the conventional pure-4KB-page device.
	Scheme4PS Scheme = iota
	// Scheme8PS is the pure-8KB-page device.
	Scheme8PS
	// SchemeHPS is the paper's hybrid: per plane, 512 blocks of 4 KB pages
	// plus 256 blocks of 8 KB pages (Fig. 10).
	SchemeHPS
)

// Schemes lists all three, in the paper's presentation order.
var Schemes = []Scheme{Scheme4PS, Scheme8PS, SchemeHPS}

// String returns the paper's abbreviation.
func (s Scheme) String() string {
	switch s {
	case Scheme4PS:
		return "4PS"
	case Scheme8PS:
		return "8PS"
	case SchemeHPS:
		return "HPS"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Table V geometry: 2 channels × 1 chip × 2 dies × 2 planes.
func tableVGeometry() flash.Geometry {
	return flash.Geometry{Channels: 2, ChipsPerChannel: 1, DiesPerChip: 2, PlanesPerDie: 2}
}

// DefaultTiming is the latency model used across the case study.
//
// Flash latencies come from Table V (Micron MLC datasheets): 4 KB pages read
// in 160 µs and program in 1385 µs; 8 KB pages read in 244 µs and program in
// 1491 µs; erases take 3800 µs.
//
// The channel model makes the two-channel bus the bottleneck the paper's
// Implication 1 describes ("multiple sub-requests split from a large-size
// request cannot be processed in a complete parallel manner"): 40 MB/s per
// channel (25 ns/byte — an eMMC-4.5-class asynchronous NAND interface) plus
// a 50 µs per-page-operation command cost, so halving the page-operation
// count is what large pages buy. The controller spends 150 µs of firmware
// time per request, and consecutive operations a request issues to one plane
// pipeline at 0.65× (cache-mode program/read).
func DefaultTiming() flash.Timing {
	return flash.Timing{
		PerPage: map[int]flash.OpTiming{
			4096: {ReadNs: 160_000, ProgramNs: 1_385_000},
			8192: {ReadNs: 244_000, ProgramNs: 1_491_000},
		},
		EraseNs:           3_800_000,
		TransferNsPerByte: 12,
		CmdOverheadNs:     200_000,
		RequestOverheadNs: 150_000,
		PipelineFactor:    0.50,
	}
}

// Options tweak a device configuration for ablation studies.
type Options struct {
	// Backend selects the device implementation ("" or "emmc" = the paper's
	// eMMC model, "sd" = its external-card flavour, "ufs" = the command-
	// queued UFS model). Scheme, faults, scaling, and wear apply to every
	// backend; the eMMC-specific knobs below (PowerSaving, RAMBufferBytes,
	// CommandQueue, WriteBufferBytes, MapCacheBytes) are ignored by UFS.
	Backend storage.Backend
	// UFSQueues and UFSQueueDepth size the UFS command queue (defaults 1
	// queue × 32 slots). UFSBoosterBytes sizes the SLC write booster
	// (default 64 MB; negative disables it). All ignored by other backends.
	UFSQueues       int
	UFSQueueDepth   int
	UFSBoosterBytes int64
	// PowerSaving enables the low-power mode model (Characteristic 4).
	// The Fig. 8/9 replays run with it on; Fig. 3 microbenchmarks disable it.
	PowerSaving bool
	// GCPolicy selects foreground (SSD-style) or idle (Implication 2) GC.
	GCPolicy emmc.GCPolicy
	// RAMBufferBytes enables the device LRU cache (Implication 3 ablation).
	RAMBufferBytes int64
	// Timing overrides DefaultTiming when non-nil (e.g. SLC-mode studies
	// for Implication 5).
	Timing *flash.Timing
	// ScaleBlocks divides per-plane block counts to shrink the simulated
	// device (and its logical capacity) for GC-pressure studies. Zero or
	// one keeps the full Table V size.
	ScaleBlocks int
	// ScalePages divides pages-per-block, shrinking the erase unit so a
	// single garbage collection fits inside realistic inter-arrival gaps
	// (the Implication-2 regime). Zero or one keeps Table V's 1024.
	ScalePages int
	// Wear selects the FTL wear-leveling policy (Implication 4 studies).
	Wear ftl.WearPolicy
	// MapCacheBytes bounds the controller's DFTL-style mapping cache
	// (0 = unlimited mapping RAM, the idealized §V setup).
	MapCacheBytes int64
	// Reliability enables wear-dependent read retries (nil = fresh device).
	Reliability *reliability.Model
	// GCFreeBlocks overrides the per-plane-pool free-block GC threshold
	// (0 keeps the default of 2).
	GCFreeBlocks int
	// CommandQueue enables the eMMC 5.1-style command queue (Implication 1
	// forward-looking ablation); the paper's eMMC 4.51 has none.
	CommandQueue bool
	// WriteBufferBytes enables SSDsim's RAM write-buffer layer, which the
	// paper disables for the §V case study (0 = disabled, the §V setting).
	WriteBufferBytes int64
	// Faults enables deterministic fault injection (nil = perfect hardware,
	// the §V setting).
	Faults *faults.Config
}

// scalePool shrinks a pool for GC-pressure ablations.
func scalePool(p flash.PoolSpec, scaleBlocks, scalePages int) flash.PoolSpec {
	if scaleBlocks > 1 {
		p.BlocksPerPlane /= scaleBlocks
		if p.BlocksPerPlane < 4 {
			p.BlocksPerPlane = 4
		}
	}
	if scalePages > 1 {
		p.PagesPerBlock /= scalePages
		if p.PagesPerBlock < 16 {
			p.PagesPerBlock = 16
		}
	}
	return p
}

// DeviceConfig builds the emmc.Config for a scheme with the given options.
// The three schemes share geometry, timing, capacity (32 GB), and all
// policies, so the comparison isolates the page-size organization, exactly
// as Table V intends.
func DeviceConfig(s Scheme, opt Options) emmc.Config {
	timing := DefaultTiming()
	if opt.Timing != nil {
		timing = *opt.Timing
	}
	var pools []flash.PoolSpec
	switch s {
	case Scheme4PS:
		pools = []flash.PoolSpec{{PageBytes: 4096, BlocksPerPlane: 1024, PagesPerBlock: 1024}}
	case Scheme8PS:
		pools = []flash.PoolSpec{{PageBytes: 8192, BlocksPerPlane: 512, PagesPerBlock: 1024}}
	case SchemeHPS:
		pools = []flash.PoolSpec{
			{PageBytes: 8192, BlocksPerPlane: 256, PagesPerBlock: 1024},
			{PageBytes: 4096, BlocksPerPlane: 512, PagesPerBlock: 1024},
		}
	default:
		panic("core: unknown scheme")
	}
	for i := range pools {
		pools[i] = scalePool(pools[i], opt.ScaleBlocks, opt.ScalePages)
	}
	gcThreshold := 2
	if opt.GCFreeBlocks > 0 {
		gcThreshold = opt.GCFreeBlocks
	}
	cfg := emmc.Config{
		Geometry:     tableVGeometry(),
		Timing:       timing,
		Pools:        pools,
		GCFreeBlocks: gcThreshold,
		GCPolicy:     opt.GCPolicy,
		Wear:         opt.Wear,
		CommandQueue: opt.CommandQueue,

		RAMBufferBytes:   opt.RAMBufferBytes,
		WriteBufferBytes: opt.WriteBufferBytes,
		MapCacheBytes:    opt.MapCacheBytes,
		Reliability:      opt.Reliability,
		Faults:           opt.Faults,
	}
	if opt.PowerSaving {
		cfg.PowerSaving = true
		cfg.LightSleepAfter = 200 * 1_000_000  // 200 ms
		cfg.LightWake = 2 * 1_000_000          // 2 ms
		cfg.DeepSleepAfter = 3_000 * 1_000_000 // 3 s
		cfg.DeepWake = 8 * 1_000_000           // 8 ms
	}
	return cfg
}

// SDCardSlowdown is the paper's §IV-B observation that moving hot
// partitions to the external SD card roughly triples I/O latency.
const SDCardSlowdown = 3

// SDCardTiming slows every timing component of DefaultTiming by
// SDCardSlowdown: external cards sit on a slower bus with a slower
// controller and slower flash.
func SDCardTiming() flash.Timing {
	t := DefaultTiming()
	scaled := make(map[int]flash.OpTiming, len(t.PerPage))
	for size, op := range t.PerPage {
		scaled[size] = flash.OpTiming{
			ReadNs:    op.ReadNs * SDCardSlowdown,
			ProgramNs: op.ProgramNs * SDCardSlowdown,
		}
	}
	t.PerPage = scaled
	t.EraseNs *= SDCardSlowdown
	t.TransferNsPerByte *= SDCardSlowdown
	t.CmdOverheadNs *= SDCardSlowdown
	t.RequestOverheadNs *= SDCardSlowdown
	return t
}

// UFSTiming is the latency model of the UFS backend: the same Table V
// flash underneath, but a serial high-speed link (HS-Gear3-class,
// ~1.2 ns/byte) instead of the eMMC parallel bus, a 5 µs per-page-operation
// command cost, a 20 µs controller dispatch, and an interleaving controller
// that pipelines consecutive plane operations at 0.65×.
func UFSTiming() flash.Timing {
	t := DefaultTiming()
	t.TransferNsPerByte = 1.2
	t.CmdOverheadNs = 5_000
	t.RequestOverheadNs = 20_000
	t.PipelineFactor = 0.65
	t.ChannelInterleave = true
	return t
}

// ufsGeometry doubles the channel count of the eMMC part (4 × 1 × 2 × 2 =
// 16 planes): UFS-class packages stack more independent channels, the
// parallelism headroom Implication 1 asks for.
func ufsGeometry() flash.Geometry {
	return flash.Geometry{Channels: 4, ChipsPerChannel: 1, DiesPerChip: 2, PlanesPerDie: 2}
}

// UFSConfig builds the ufs.Config for a scheme: the scheme's page-size
// pools (halved per plane — twice the planes, same 32 GB budget) on the UFS
// geometry and timing, with the command queue and booster from Options.
func UFSConfig(s Scheme, opt Options) ufs.Config {
	base := DeviceConfig(s, opt)
	timing := UFSTiming()
	if opt.Timing != nil {
		timing = *opt.Timing
	}
	pools := make([]flash.PoolSpec, len(base.Pools))
	for i, p := range base.Pools {
		p.BlocksPerPlane /= 2
		if p.BlocksPerPlane < 4 {
			p.BlocksPerPlane = 4
		}
		pools[i] = p
	}
	booster := opt.UFSBoosterBytes
	if booster == 0 {
		booster = 64 << 20
	} else if booster < 0 {
		booster = 0
	}
	return ufs.Config{
		Geometry:          ufsGeometry(),
		Timing:            timing,
		Pools:             pools,
		GCFreeBlocks:      base.GCFreeBlocks,
		Wear:              opt.Wear,
		Queues:            opt.UFSQueues,
		QueueDepth:        opt.UFSQueueDepth,
		WriteBoosterBytes: booster,
		Faults:            opt.Faults,
	}
}

// NewDevice builds a fresh device for the scheme on the backend selected by
// opt.Backend (the zero value is the paper's eMMC model, so existing
// callers are unchanged — and bit-identical).
func NewDevice(s Scheme, opt Options) (storage.Device, error) {
	switch opt.Backend {
	case "", storage.BackendEMMC:
		return emmc.New(DeviceConfig(s, opt))
	case storage.BackendSD:
		cfg := DeviceConfig(s, opt)
		cfg.SDCard = true
		if opt.Timing == nil {
			cfg.Timing = SDCardTiming()
		}
		return emmc.New(cfg)
	case storage.BackendUFS:
		return ufs.New(UFSConfig(s, opt))
	}
	return nil, fmt.Errorf("core: unknown device backend %q (valid: %s)",
		opt.Backend, strings.Join(storage.Backends(), ", "))
}

// RestoreDevice rebuilds a device from a bare Snapshot stream. Snapshots
// are backend-specific gob layouts, so the caller says which backend wrote
// it ("" = eMMC; the sd flavour shares the eMMC layout). The stream is
// trusted: corrupt bytes surface as gob errors. Prefer RestoreSealed, which
// verifies a digest and reads the backend from the envelope instead.
func RestoreDevice(b storage.Backend, r io.Reader) (storage.Device, error) {
	switch b {
	case "", storage.BackendEMMC, storage.BackendSD:
		return emmc.RestoreSnapshot(r)
	case storage.BackendUFS:
		return ufs.RestoreSnapshot(r)
	}
	return nil, fmt.Errorf("core: unknown device backend %q (valid: %s)",
		b, strings.Join(storage.Backends(), ", "))
}

// RestoreSealed rebuilds a device from a sealed snapshot (storage.Seal):
// the envelope's digest is verified and its backend header drives the
// dispatch, so a corrupt or truncated stream fails with a one-line
// diagnostic naming id and the byte offset — never a gob error from deep
// inside restore. id labels diagnostics only ("" reads as "snapshot").
func RestoreSealed(id string, r io.Reader) (storage.Device, storage.SealInfo, error) {
	info, payload, err := storage.ReadSeal(r, id)
	if err != nil {
		return nil, storage.SealInfo{}, err
	}
	dev, err := RestoreDevice(info.Backend, bytes.NewReader(payload))
	if err != nil {
		return nil, info, err
	}
	return dev, info, nil
}

// Metrics summarizes one replay.
type Metrics struct {
	Trace  string
	Scheme Scheme

	Served           int
	MeanResponseNs   float64 // the paper's MRT
	MeanServiceNs    float64
	NoWaitRatio      float64
	SpaceUtilization float64

	// Secondary metrics for ablations and EXPERIMENTS.md.
	GCStallNs          int64
	IdleGCNs           int64
	WriteAmplification float64
	BufferHitRate      float64
	LightWakes         int64
	DeepWakes          int64

	// Fault-injection outcomes (all zero with faults off).
	ProgramFaults int64
	EraseFaults   int64
	ReadFaults    int64
	RetiredBlocks int64
	RecoveryNs    int64
}

// Replay runs every request of the trace through a fresh device of the
// given scheme, filling the requests' ServiceStart/Finish fields in place,
// and returns the replay metrics. The trace must be arrival-ordered.
func Replay(s Scheme, opt Options, tr *trace.Trace) (Metrics, error) {
	return ReplayContext(context.Background(), s, opt, tr)
}

// ReplayContext is Replay with cancellation: the replay loop checks ctx
// between events and aborts promptly with ctx's error once it is done.
func ReplayContext(ctx context.Context, s Scheme, opt Options, tr *trace.Trace) (Metrics, error) {
	dev, err := NewDevice(s, opt)
	if err != nil {
		return Metrics{}, err
	}
	return ReplayOnContext(ctx, dev, s, tr)
}

// ReplayOn replays a trace on an existing device (which may hold state from
// prior traces — useful for aging studies).
func ReplayOn(dev storage.Device, s Scheme, tr *trace.Trace) (Metrics, error) {
	return ReplayObserved(dev, s, tr, nil, nil)
}

// ReplayOnContext is ReplayOn with cancellation.
func ReplayOnContext(ctx context.Context, dev storage.Device, s Scheme, tr *trace.Trace) (Metrics, error) {
	return ReplayObservedContext(ctx, dev, s, tr, nil, nil)
}

// coreTel holds the replay loop's metric handles, resolved once.
type coreTel struct {
	readReqs, writeReqs *telemetry.Counter
	readResp, writeResp *telemetry.Histogram
	readServ, writeServ *telemetry.Histogram
	readWait, writeWait *telemetry.Histogram
}

func newCoreTel(reg *telemetry.Registry) *coreTel {
	if reg == nil {
		return nil
	}
	r, w := telemetry.L("op", "read"), telemetry.L("op", "write")
	return &coreTel{
		readReqs:  reg.Counter("core_requests_total", r),
		writeReqs: reg.Counter("core_requests_total", w),
		readResp:  reg.Histogram("core_response_ns", nil, r),
		writeResp: reg.Histogram("core_response_ns", nil, w),
		readServ:  reg.Histogram("core_service_ns", nil, r),
		writeServ: reg.Histogram("core_service_ns", nil, w),
		readWait:  reg.Histogram("core_wait_ns", nil, r),
		writeWait: reg.Histogram("core_wait_ns", nil, w),
	}
}

// ReplayObserved is ReplayOn with observability: it attaches the registry and
// tracer to the device stack (nil values leave telemetry off), records one
// "request" span (arrival → finish) and one "service" span (service-start →
// finish) per request on the requests/read or requests/write track, and
// feeds the core_{response,service,wait}_ns histograms split by operation.
func ReplayObserved(dev storage.Device, s Scheme, tr *trace.Trace, reg *telemetry.Registry, tc *telemetry.Tracer) (Metrics, error) {
	return ReplayObservedContext(context.Background(), dev, s, tr, reg, tc)
}

// ReplayObservedContext is ReplayObserved with cancellation.
func ReplayObservedContext(ctx context.Context, dev storage.Device, s Scheme, tr *trace.Trace, reg *telemetry.Registry, tc *telemetry.Tracer) (Metrics, error) {
	return replayLoop(ctx, dev, s, trace.FromSlice(tr), reg, tc, writeBack(tr))
}

// CaseStudyOptions are the settings of the §V experiments, matching the
// paper's SSDsim setup: foreground GC, the RAM buffer disabled, and no
// power-mode model (SSDsim does not simulate sleep states; power effects
// belong to the trace-collection side reproduced via internal/biotracer).
func CaseStudyOptions() Options {
	return Options{PowerSaving: false, GCPolicy: emmc.GCForeground}
}

// ThroughputPoint is one point of the Fig. 3 sweep.
type ThroughputPoint struct {
	SizeBytes int
	ReadMBs   float64
	WriteMBs  float64
}

// Fig3Sizes are the request sizes swept in Fig. 3: 4 KB to 16 MB doubling;
// the read series stops at 256 KB, the largest read in any trace.
func Fig3Sizes() []int {
	var out []int
	for s := 4 * 1024; s <= 16*1024*1024; s *= 2 {
		out = append(out, s)
	}
	return out
}

// MaxReadSize is the largest read request observed in the traces (256 KB).
const MaxReadSize = 256 * 1024

// ThroughputSweep reproduces Fig. 3 on a scheme: for each request size it
// issues back-to-back requests on an otherwise idle device (power saving
// off, as a tight microbenchmark never lets the device sleep) and reports
// payload moved per unit of service time. The per-size points are
// independent (each builds its own devices), so they run as one plan on the
// given runner; a nil runner uses a default-width pool.
func ThroughputSweep(r *runner.Runner, s Scheme, opt Options, sizes []int, reqsPerPoint int) ([]ThroughputPoint, error) {
	return ThroughputSweepContext(context.Background(), r, s, opt, sizes, reqsPerPoint)
}

// ThroughputSweepContext is ThroughputSweep with cancellation: once ctx is
// done, points that have not started fail fast with its error.
func ThroughputSweepContext(ctx context.Context, r *runner.Runner, s Scheme, opt Options, sizes []int, reqsPerPoint int) ([]ThroughputPoint, error) {
	return runner.MapContext(ctx, r, "throughput", sizes, func(_ context.Context, _ int, size int) (ThroughputPoint, error) {
		return throughputPoint(s, opt, size, reqsPerPoint)
	})
}

// throughputPoint measures one Fig. 3 sweep point on fresh devices.
func throughputPoint(s Scheme, opt Options, size, reqsPerPoint int) (ThroughputPoint, error) {
	p := ThroughputPoint{SizeBytes: size}
	for _, op := range []trace.Op{trace.Read, trace.Write} {
		if op == trace.Read && size > MaxReadSize {
			continue
		}
		dev, err := NewDevice(s, opt)
		if err != nil {
			return p, err
		}
		if op == trace.Read {
			// Populate the address range so reads hit mapped pages.
			prep := trace.Request{LBA: 0, Size: uint32(size), Op: trace.Write}
			if _, err := dev.Submit(prep); err != nil {
				return p, err
			}
		}
		var busy int64
		arrival := int64(1 << 40) // after the prep write, far in the future
		var lba uint64
		if op == trace.Write {
			lba = 1 << 20 // separate region from the prep write
		}
		for i := 0; i < reqsPerPoint; i++ {
			req := trace.Request{Arrival: arrival, LBA: lba, Size: uint32(size), Op: op}
			res, err := dev.Submit(req)
			if err != nil {
				return p, err
			}
			busy += res.Finish - res.ServiceStart
			arrival = res.Finish
			if op == trace.Write {
				lba += uint64(size) / trace.SectorSize
			}
		}
		mbs := float64(size) * float64(reqsPerPoint) / (float64(busy) / 1e9) / 1e6
		if op == trace.Read {
			p.ReadMBs = mbs
		} else {
			p.WriteMBs = mbs
		}
	}
	return p, nil
}
