package core

import (
	"bytes"
	"strings"
	"testing"

	"emmcio/internal/telemetry"
	"emmcio/internal/trace"
)

// ReplayObserved must record exactly one "request" span per trace request
// and leave the replay's timing identical to the unobserved path.
func TestReplayObservedSpansAndMetrics(t *testing.T) {
	plain := smallTrace()
	mPlain, err := Replay(SchemeHPS, Options{}, plain)
	if err != nil {
		t.Fatal(err)
	}

	tr := smallTrace()
	reg := telemetry.NewRegistry()
	// Capacity for both spans of every request plus device-level events.
	tc := telemetry.NewTracer(8 * len(tr.Reqs))
	dev, err := NewDevice(SchemeHPS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ReplayObserved(dev, SchemeHPS, tr, reg, tc)
	if err != nil {
		t.Fatal(err)
	}

	if m != mPlain {
		t.Fatalf("telemetry changed replay results:\n  observed %+v\n  plain    %+v", m, mPlain)
	}
	if got := tc.CountSpans("core", "request"); got != int64(len(tr.Reqs)) {
		t.Fatalf("request spans %d, want %d", got, len(tr.Reqs))
	}
	if got := tc.CountSpans("core", "service"); got != int64(len(tr.Reqs)) {
		t.Fatalf("service spans %d, want %d", got, len(tr.Reqs))
	}
	if tc.Dropped() != 0 {
		t.Fatalf("tracer dropped %d events despite sized buffer", tc.Dropped())
	}

	var reads, writes int64
	for _, r := range tr.Reqs {
		if r.Op == trace.Write {
			writes++
		} else {
			reads++
		}
	}
	if got := reg.Counter("core_requests_total", telemetry.L("op", "read")).Value(); got != reads {
		t.Fatalf("read counter %d, want %d", got, reads)
	}
	if got := reg.Counter("core_requests_total", telemetry.L("op", "write")).Value(); got != writes {
		t.Fatalf("write counter %d, want %d", got, writes)
	}
	// Device-level instrumentation rode along via SetTelemetry.
	devTotal := reg.Counter("emmc_requests_total", telemetry.L("op", "read")).Value() +
		reg.Counter("emmc_requests_total", telemetry.L("op", "write")).Value()
	if devTotal != int64(len(tr.Reqs)) {
		t.Fatalf("device request counters %d, want %d", devTotal, len(tr.Reqs))
	}

	// The Prometheus export carries the histograms.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"core_response_ns_count{op=\"read\"}",
		"core_service_ns_sum{op=\"write\"}",
		"emmc_subrequests_total{page=\"4K\"}",
		"# TYPE core_response_ns histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus export missing %q:\n%s", want, out)
		}
	}
}

// A nil registry and tracer must leave the device untouched.
func TestReplayObservedNilTelemetry(t *testing.T) {
	tr := smallTrace()
	dev, err := NewDevice(Scheme4PS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ReplayObserved(dev, Scheme4PS, tr, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := smallTrace()
	mRef, err := Replay(Scheme4PS, Options{}, ref)
	if err != nil {
		t.Fatal(err)
	}
	if m != mRef {
		t.Fatalf("nil telemetry diverged: %+v vs %+v", m, mRef)
	}
}
