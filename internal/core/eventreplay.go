package core

import (
	"fmt"

	"emmcio/internal/sim"
	"emmcio/internal/trace"
)

// ReplayEventDriven replays a trace through a fresh device using the
// discrete-event kernel in internal/sim: every request arrival is an event,
// and each completion schedules the dispatch of the next queued request.
//
// It is an independently structured second implementation of the replay
// loop (the sequential Replay walks the trace in order and lets the device
// compute waiting analytically). Both must produce identical timestamps —
// TestEventDrivenMatchesSequential asserts exactly that — which guards the
// FIFO/waiting logic against bugs that a single implementation would hide.
func ReplayEventDriven(s Scheme, opt Options, tr *trace.Trace) (Metrics, error) {
	dev, err := NewDevice(s, opt)
	if err != nil {
		return Metrics{}, err
	}

	var eng sim.Engine
	type state struct {
		queue      []int // indices waiting for the device
		busy       bool
		dispatched int
	}
	st := &state{}
	var dispatch func(now sim.Time)
	var submitErr error

	dispatch = func(now sim.Time) {
		if st.busy || len(st.queue) == 0 || submitErr != nil {
			return
		}
		idx := st.queue[0]
		st.queue = st.queue[1:]
		st.busy = true
		req := tr.Reqs[idx]
		// Dispatch with the request's own arrival so the device's
		// wait/no-wait accounting matches the tracer's semantics: the
		// device computes serviceStart = max(arrival, freeAt) itself.
		res, err := dev.SubmitPacked(req.Arrival, []trace.Request{req})
		if err != nil {
			submitErr = fmt.Errorf("core: event replay of %s request %d: %w", tr.Name, idx, err)
			return
		}
		tr.Reqs[idx].ServiceStart = res[0].ServiceStart
		tr.Reqs[idx].Finish = res[0].Finish
		st.dispatched++
		eng.Schedule(res[0].Finish, func(t sim.Time) {
			st.busy = false
			dispatch(t)
		})
	}

	for i := range tr.Reqs {
		idx := i
		eng.Schedule(tr.Reqs[i].Arrival, func(now sim.Time) {
			st.queue = append(st.queue, idx)
			dispatch(now)
		})
	}
	eng.Run()
	if submitErr != nil {
		return Metrics{}, submitErr
	}
	if st.dispatched != len(tr.Reqs) {
		return Metrics{}, fmt.Errorf("core: event replay served %d of %d requests", st.dispatched, len(tr.Reqs))
	}

	dm := dev.Metrics()
	fs := dev.FTLStats()
	m := Metrics{
		Trace:            tr.Name,
		Scheme:           s,
		Served:           int(dm.Served),
		MeanResponseNs:   dm.MeanResponseNs(),
		MeanServiceNs:    dm.MeanServiceNs(),
		NoWaitRatio:      dm.NoWaitRatio(),
		SpaceUtilization: fs.SpaceUtilization(),
		GCStallNs:        dm.GCStallNs,
		IdleGCNs:         dm.IdleGCNs,
		BufferHitRate:    dev.BufferHitRate(),
		LightWakes:       dm.LightWakes,
		DeepWakes:        dm.DeepWakes,
	}
	if fs.HostProgrammedPages > 0 {
		m.WriteAmplification = 1 + float64(fs.GC.PageMoves)/float64(fs.HostProgrammedPages)
	}
	return m, nil
}
