package core

import (
	"context"

	"emmcio/internal/trace"
)

// ReplayEventDriven replays a trace through a fresh device using the
// discrete-event kernel in internal/sim: every request arrival is an event,
// and each completion schedules the dispatch of the next queued request.
//
// It is an independently structured second implementation of the replay
// loop (the sequential Replay walks the trace in order and lets the device
// compute waiting analytically). Both must produce identical timestamps —
// TestEventDrivenMatchesSequential asserts exactly that — which guards the
// FIFO/waiting logic against bugs that a single implementation would hide.
func ReplayEventDriven(s Scheme, opt Options, tr *trace.Trace) (Metrics, error) {
	return eventLoop(context.Background(), s, opt, trace.FromSlice(tr), writeBack(tr))
}
