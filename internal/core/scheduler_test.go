package core

import (
	"math"
	"testing"

	"emmcio/internal/paper"
	"emmcio/internal/trace"
	"emmcio/internal/workload"
)

func TestScheduledFIFOMatchesReplay(t *testing.T) {
	a := smallTrace()
	mA, err := Replay(Scheme4PS, Options{}, a)
	if err != nil {
		t.Fatal(err)
	}
	b := smallTrace()
	mB, err := ReplayScheduled(Scheme4PS, Options{}, b, SchedFIFO)
	if err != nil {
		t.Fatal(err)
	}
	if mA.MeanResponseNs != mB.MeanResponseNs || mA.NoWaitRatio != mB.NoWaitRatio {
		t.Fatalf("FIFO scheduler diverged from plain replay: %+v vs %+v", mA, mB)
	}
}

// On a typical (high-NoWait) trace, smarter host scheduling changes almost
// nothing — Implication 1's point about OS-layer queues.
func TestSchedulingBarelyMattersOnTypicalTrace(t *testing.T) {
	prof := workload.DefaultRegistry().Lookup(paper.Twitter)
	base := prof.Generate(workload.DefaultSeed)
	mFIFO, err := ReplayScheduled(Scheme4PS, CaseStudyOptions(), base.Clone(), SchedFIFO)
	if err != nil {
		t.Fatal(err)
	}
	sjf := base.Clone()
	sjf.ClearTimestamps()
	mSJF, err := ReplayScheduled(Scheme4PS, CaseStudyOptions(), sjf, SchedSJF)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(mSJF.MeanResponseNs-mFIFO.MeanResponseNs) / mFIFO.MeanResponseNs
	if rel > 0.10 {
		t.Fatalf("SJF moved Twitter MRT by %.1f%%; queues should be empty (NoWait %.0f%%)",
			rel*100, mFIFO.NoWaitRatio*100)
	}
}

// On a saturated synthetic burst, SJF does help — the contrast that shows
// the mechanism only matters when queues actually form.
func TestSJFHelpsUnderSaturation(t *testing.T) {
	mk := func() *trace.Trace {
		tr := &trace.Trace{Name: "burst"}
		at := int64(0)
		for i := 0; i < 300; i++ {
			at += 300_000 // 0.3 ms apart: far below service time
			size := uint32(4096)
			if i%10 == 0 {
				size = 256 * 1024
			}
			tr.Reqs = append(tr.Reqs, trace.Request{
				Arrival: at, LBA: uint64(i) * 4096, Size: size, Op: trace.Write,
			})
		}
		return tr
	}
	mFIFO, err := ReplayScheduled(Scheme4PS, Options{}, mk(), SchedFIFO)
	if err != nil {
		t.Fatal(err)
	}
	mSJF, err := ReplayScheduled(Scheme4PS, Options{}, mk(), SchedSJF)
	if err != nil {
		t.Fatal(err)
	}
	if mSJF.MeanResponseNs >= mFIFO.MeanResponseNs {
		t.Fatalf("SJF MRT %.2f not below FIFO %.2f under saturation",
			mSJF.MeanResponseNs/1e6, mFIFO.MeanResponseNs/1e6)
	}
}

func TestReadFirstPolicy(t *testing.T) {
	tr := &trace.Trace{Name: "rw"}
	// A big write followed immediately by a read and another write: with
	// read-first, the read jumps the second write.
	tr.Reqs = []trace.Request{
		{Arrival: 0, LBA: 0, Size: 128 * 1024, Op: trace.Write},
		{Arrival: 1, LBA: 8000, Size: 4096, Op: trace.Write},
		{Arrival: 2, LBA: 16000, Size: 4096, Op: trace.Read},
	}
	m, err := ReplayScheduled(Scheme4PS, Options{}, tr, SchedReadFirst)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 3 {
		t.Fatal("not all served")
	}
	// After arrival-order restore, index 2 is the read; it must have been
	// serviced before the second write.
	if tr.Reqs[2].ServiceStart > tr.Reqs[1].ServiceStart {
		t.Fatal("read did not jump the queue under read-first policy")
	}
}

func TestSchedPolicyStrings(t *testing.T) {
	if SchedFIFO.String() != "FIFO" || SchedSJF.String() != "SJF" || SchedReadFirst.String() != "read-first" {
		t.Fatal("policy names drifted")
	}
}
