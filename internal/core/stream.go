// Streaming replay: every replay path in this package pulls requests from a
// trace.Stream, so memory is O(in-flight requests) and independent of trace
// length. The slice-based entry points (Replay, ReplayObserved,
// ReplayScheduled, ReplayEventDriven) are thin adapters over the stream
// loops via trace.FromSlice, writing timestamps back into the caller's
// slice — both paths execute the identical Submit sequence, so their
// Metrics are bit-identical (TestStreamingReplayEquivalence enforces it).

package core

import (
	"context"
	"fmt"
	"sort"

	"emmcio/internal/sim"
	"emmcio/internal/storage"
	"emmcio/internal/telemetry"
	"emmcio/internal/trace"
)

// ReplayStream replays a stream through a fresh device of the given scheme
// and returns the replay metrics. Requests must arrive in order.
func ReplayStream(s Scheme, opt Options, st trace.Stream) (Metrics, error) {
	return ReplayStreamContext(context.Background(), s, opt, st)
}

// ReplayStreamContext is ReplayStream with cancellation: ctx is checked
// between events, so a canceled replay returns promptly with ctx's error
// instead of running the stream dry.
func ReplayStreamContext(ctx context.Context, s Scheme, opt Options, st trace.Stream) (Metrics, error) {
	dev, err := NewDevice(s, opt)
	if err != nil {
		return Metrics{}, err
	}
	return ReplayStreamSinkContext(ctx, dev, s, st, nil, nil, nil)
}

// ReplayStreamOn replays a stream on an existing device (which may hold
// state from prior traces — useful for aging studies).
func ReplayStreamOn(dev storage.Device, s Scheme, st trace.Stream) (Metrics, error) {
	return ReplayStreamObserved(dev, s, st, nil, nil)
}

// ReplayStreamObserved is ReplayStreamOn with observability, the streaming
// form of ReplayObserved.
func ReplayStreamObserved(dev storage.Device, s Scheme, st trace.Stream, reg *telemetry.Registry, tc *telemetry.Tracer) (Metrics, error) {
	return ReplayStreamSink(dev, s, st, reg, tc, nil)
}

// ReplayStreamObservedContext is ReplayStreamObserved with cancellation.
func ReplayStreamObservedContext(ctx context.Context, dev storage.Device, s Scheme, st trace.Stream, reg *telemetry.Registry, tc *telemetry.Tracer) (Metrics, error) {
	return ReplayStreamSinkContext(ctx, dev, s, st, reg, tc, nil)
}

// ReplayStreamSink is ReplayStreamObserved with a completion sink: sink
// (when non-nil) receives every request with its replayed ServiceStart and
// Finish filled in, in arrival order — the hook online analysis and
// streaming trace writers attach to. A sink error aborts the replay.
func ReplayStreamSink(dev storage.Device, s Scheme, st trace.Stream, reg *telemetry.Registry, tc *telemetry.Tracer, sink func(trace.Request) error) (Metrics, error) {
	return ReplayStreamSinkContext(context.Background(), dev, s, st, reg, tc, sink)
}

// ReplayStreamSinkContext is ReplayStreamSink with cancellation: the replay
// loop checks ctx between events, so long replays abort promptly (the
// server's job cancellation and per-job deadlines rely on this). The check
// costs nothing when ctx can never be canceled (Background/TODO).
func ReplayStreamSinkContext(ctx context.Context, dev storage.Device, s Scheme, st trace.Stream, reg *telemetry.Registry, tc *telemetry.Tracer, sink func(trace.Request) error) (Metrics, error) {
	if sink == nil {
		return replayLoop(ctx, dev, s, st, reg, tc, nil)
	}
	return replayLoop(ctx, dev, s, st, reg, tc, func(_ int, req trace.Request) error { return sink(req) })
}

// replayLoop is the one sequential replay loop behind Replay/ReplayOn/
// ReplayObserved and their stream forms: pull, submit, observe, sink.
// ctx is polled once per event; Background's nil Done channel skips the
// check entirely, keeping the uncancellable hot path identical.
func replayLoop(ctx context.Context, dev storage.Device, s Scheme, st trace.Stream, reg *telemetry.Registry, tc *telemetry.Tracer, sink func(i int, req trace.Request) error) (Metrics, error) {
	if reg != nil || tc != nil {
		dev.SetTelemetry(reg, tc)
	}
	ct := newCoreTel(reg)
	name := st.Name()
	done := ctx.Done()
	for i := 0; ; i++ {
		if done != nil {
			select {
			case <-done:
				return Metrics{}, fmt.Errorf("core: replay of %s canceled at request %d: %w", name, i, ctx.Err())
			default:
			}
		}
		req, ok, err := st.Next()
		if err != nil {
			return Metrics{}, fmt.Errorf("core: reading %s request %d: %w", name, i, err)
		}
		if !ok {
			break
		}
		res, err := dev.Submit(req)
		if err != nil {
			return Metrics{}, fmt.Errorf("core: replaying %s request %d on %s: %w", name, i, s, err)
		}
		if ct != nil {
			if req.Op == trace.Write {
				ct.writeReqs.Inc()
				ct.writeResp.Observe(res.Finish - req.Arrival)
				ct.writeServ.Observe(res.Finish - res.ServiceStart)
				ct.writeWait.Observe(res.ServiceStart - req.Arrival)
			} else {
				ct.readReqs.Inc()
				ct.readResp.Observe(res.Finish - req.Arrival)
				ct.readServ.Observe(res.Finish - res.ServiceStart)
				ct.readWait.Observe(res.ServiceStart - req.Arrival)
			}
		}
		if tc != nil {
			track := "requests/read"
			if req.Op == trace.Write {
				track = "requests/write"
			}
			tc.Span("core", track, "request", req.Arrival, res.Finish)
			tc.Span("core", track, "service", res.ServiceStart, res.Finish)
		}
		if sink != nil {
			req.ServiceStart = res.ServiceStart
			req.Finish = res.Finish
			if err := sink(i, req); err != nil {
				return Metrics{}, fmt.Errorf("core: sinking %s request %d: %w", name, i, err)
			}
		}
	}
	return deviceMetrics(dev, name, s), nil
}

// deviceMetrics assembles the full replay Metrics from device state.
func deviceMetrics(dev storage.Device, name string, s Scheme) Metrics {
	dm := dev.Metrics()
	fs := dev.FTLStats()
	m := Metrics{
		Trace:            name,
		Scheme:           s,
		Served:           int(dm.Served),
		MeanResponseNs:   dm.MeanResponseNs(),
		MeanServiceNs:    dm.MeanServiceNs(),
		NoWaitRatio:      dm.NoWaitRatio(),
		SpaceUtilization: fs.SpaceUtilization(),
		GCStallNs:        dm.GCStallNs,
		IdleGCNs:         dm.IdleGCNs,
		BufferHitRate:    dev.BufferHitRate(),
		LightWakes:       dm.LightWakes,
		DeepWakes:        dm.DeepWakes,
		ProgramFaults:    fs.ProgramFaults,
		EraseFaults:      fs.EraseFaults,
		ReadFaults:       dm.ReadFaults,
		RetiredBlocks:    fs.RetiredBlocks,
		RecoveryNs:       dm.RecoveryNs,
	}
	if fs.HostProgrammedPages > 0 {
		m.WriteAmplification = 1 + float64(fs.GC.PageMoves)/float64(fs.HostProgrammedPages)
	}
	return m
}

// ReplayScheduledStream replays a stream through a fresh device with an
// OS-level dispatcher applying the given policy to waiting requests — the
// streaming form of ReplayScheduled. Memory is O(waiting queue): the
// dispatcher keeps one lookahead request plus whatever has arrived but not
// yet dispatched. sink (when non-nil) receives completed requests in
// dispatch order, which under SJF or read-first is not arrival order.
func ReplayScheduledStream(s Scheme, opt Options, st trace.Stream, policy SchedPolicy, sink func(trace.Request) error) (Metrics, error) {
	return ReplayScheduledStreamContext(context.Background(), s, opt, st, policy, sink)
}

// ReplayScheduledStreamContext is ReplayScheduledStream with cancellation:
// ctx is checked once per dispatch.
func ReplayScheduledStreamContext(ctx context.Context, s Scheme, opt Options, st trace.Stream, policy SchedPolicy, sink func(trace.Request) error) (Metrics, error) {
	if sink == nil {
		return scheduledLoop(ctx, s, opt, st, policy, nil)
	}
	return scheduledLoop(ctx, s, opt, st, policy, func(_ int, req trace.Request) error { return sink(req) })
}

// scheduledLoop is the dispatcher behind ReplayScheduled and its stream
// form. The sink receives each completed request with its pull index.
func scheduledLoop(ctx context.Context, s Scheme, opt Options, st trace.Stream, policy SchedPolicy, sink func(idx int, req trace.Request) error) (Metrics, error) {
	dev, err := NewDevice(s, opt)
	if err != nil {
		return Metrics{}, err
	}

	type item struct {
		idx int
		req trace.Request
	}
	name := st.Name()
	var queue []item
	var deviceFree int64

	// One-request lookahead over the stream, replacing the slice index.
	next := 0
	var head trace.Request
	headOK := false
	pull := func() error {
		r, ok, err := st.Next()
		if err != nil {
			return fmt.Errorf("core: reading %s request %d: %w", name, next, err)
		}
		head, headOK = r, ok
		return nil
	}
	if err := pull(); err != nil {
		return Metrics{}, err
	}

	pick := func() int {
		best := 0
		switch policy {
		case SchedSJF:
			for i := 1; i < len(queue); i++ {
				if queue[i].req.Size < queue[best].req.Size {
					best = i
				}
			}
		case SchedReadFirst:
			for i := 1; i < len(queue); i++ {
				bi, ii := queue[best].req, queue[i].req
				if ii.Op == trace.Read && bi.Op != trace.Read {
					best = i
				}
			}
		}
		return best
	}

	done := ctx.Done()
	for headOK || len(queue) > 0 {
		if done != nil {
			select {
			case <-done:
				return Metrics{}, fmt.Errorf("core: scheduled replay of %s canceled at request %d: %w", name, next, ctx.Err())
			default:
			}
		}
		// Admit everything that has arrived by the time the device frees.
		for headOK && (len(queue) == 0 || head.Arrival <= deviceFree) {
			queue = append(queue, item{idx: next, req: head})
			next++
			if err := pull(); err != nil {
				return Metrics{}, err
			}
		}
		i := pick()
		it := queue[i]
		queue = append(queue[:i], queue[i+1:]...)

		dispatchAt := it.req.Arrival
		if deviceFree > dispatchAt {
			dispatchAt = deviceFree
		}
		res, err := dev.SubmitAt(dispatchAt, it.req)
		if err != nil {
			return Metrics{}, fmt.Errorf("core: scheduled replay of %s: %w", name, err)
		}
		deviceFree = res.Finish
		if sink != nil {
			it.req.ServiceStart = res.ServiceStart
			it.req.Finish = res.Finish
			if err := sink(it.idx, it.req); err != nil {
				return Metrics{}, fmt.Errorf("core: sinking %s request %d: %w", name, it.idx, err)
			}
		}
	}

	dm := dev.Metrics()
	fs := dev.FTLStats()
	m := Metrics{
		Trace:            name,
		Scheme:           s,
		Served:           int(dm.Served),
		MeanResponseNs:   dm.MeanResponseNs(),
		MeanServiceNs:    dm.MeanServiceNs(),
		NoWaitRatio:      dm.NoWaitRatio(),
		SpaceUtilization: fs.SpaceUtilization(),
		GCStallNs:        dm.GCStallNs,
		IdleGCNs:         dm.IdleGCNs,
	}
	if fs.HostProgrammedPages > 0 {
		m.WriteAmplification = 1 + float64(fs.GC.PageMoves)/float64(fs.HostProgrammedPages)
	}
	return m, nil
}

// ReplayEventDrivenStream replays a stream through the discrete-event
// kernel — the streaming form of ReplayEventDriven. Arrivals are scheduled
// lazily, one lookahead at a time (arrival i fires, arrival i+1 enters the
// event queue), so the engine's queue holds O(waiting requests) rather than
// the whole trace. sink (when non-nil) receives completed requests in
// dispatch (FIFO) order.
func ReplayEventDrivenStream(s Scheme, opt Options, st trace.Stream, sink func(trace.Request) error) (Metrics, error) {
	return ReplayEventDrivenStreamContext(context.Background(), s, opt, st, sink)
}

// ReplayEventDrivenStreamContext is ReplayEventDrivenStream with
// cancellation: ctx is checked once per dispatched request.
func ReplayEventDrivenStreamContext(ctx context.Context, s Scheme, opt Options, st trace.Stream, sink func(trace.Request) error) (Metrics, error) {
	if sink == nil {
		return eventLoop(ctx, s, opt, st, nil)
	}
	return eventLoop(ctx, s, opt, st, func(_ int, req trace.Request) error { return sink(req) })
}

// Event kinds for eventReplay, carried as the sim.Handler arg.
const (
	evArrival  int64 = 0
	evComplete int64 = 1
)

// eventEntry is one arrived request waiting for the device.
type eventEntry struct {
	idx int
	req trace.Request
}

// eventReplay is the event-driven replay state machine. It implements
// sim.Handler, so arrival and completion events reuse pooled engine slots
// instead of allocating a closure per event; the event kind travels as the
// handler arg. Only one arrival event is ever in flight (lazy lookahead),
// so a single pending slot carries the request between schedule and fire.
type eventReplay struct {
	eng  sim.Engine
	dev  storage.Device
	st   trace.Stream
	name string
	done <-chan struct{}
	ctx  context.Context
	sink func(idx int, req trace.Request) error

	// queue[head:] holds arrived requests in FIFO order; the drained prefix
	// is compacted away once it dominates, keeping the backing array bounded
	// by the peak waiting depth.
	queue      []eventEntry
	head       int
	busy       bool
	pulled     int
	dispatched int

	pending   eventEntry // the scheduled-but-not-fired arrival
	pendingOK bool

	err error
}

// scheduleNext pulls one request and schedules its arrival event.
func (r *eventReplay) scheduleNext() {
	if r.err != nil {
		return
	}
	req, ok, err := r.st.Next()
	if err != nil {
		r.err = fmt.Errorf("core: reading %s request %d: %w", r.name, r.pulled, err)
		return
	}
	if !ok {
		return
	}
	r.pending = eventEntry{idx: r.pulled, req: req}
	r.pendingOK = true
	r.pulled++
	r.eng.Schedule(req.Arrival, r, evArrival)
}

// OnEvent advances the state machine on an arrival or completion event.
func (r *eventReplay) OnEvent(now sim.Time, arg int64) {
	switch arg {
	case evArrival:
		r.queue = append(r.queue, r.pending)
		r.pending = eventEntry{}
		r.pendingOK = false
		r.scheduleNext()
	case evComplete:
		r.busy = false
	}
	r.dispatch(now)
}

// dispatch submits the oldest waiting request when the device is free.
func (r *eventReplay) dispatch(now sim.Time) {
	if r.busy || r.head == len(r.queue) || r.err != nil {
		return
	}
	if r.done != nil {
		select {
		case <-r.done:
			r.err = fmt.Errorf("core: event replay of %s canceled after %d requests: %w", r.name, r.dispatched, r.ctx.Err())
			return
		default:
		}
	}
	e := r.queue[r.head]
	r.queue[r.head] = eventEntry{}
	r.head++
	if r.head == len(r.queue) {
		r.queue = r.queue[:0]
		r.head = 0
	} else if r.head >= 64 && r.head*2 >= len(r.queue) {
		n := copy(r.queue, r.queue[r.head:])
		clearTail := r.queue[n:]
		for i := range clearTail {
			clearTail[i] = eventEntry{}
		}
		r.queue = r.queue[:n]
		r.head = 0
	}
	r.busy = true
	// Dispatch with the request's own arrival so the device's
	// wait/no-wait accounting matches the tracer's semantics: the
	// device computes serviceStart = max(arrival, freeAt) itself.
	res, err := r.dev.SubmitAt(e.req.Arrival, e.req)
	if err != nil {
		r.err = fmt.Errorf("core: event replay of %s request %d: %w", r.name, e.idx, err)
		return
	}
	r.dispatched++
	if r.sink != nil {
		e.req.ServiceStart = res.ServiceStart
		e.req.Finish = res.Finish
		if err := r.sink(e.idx, e.req); err != nil {
			r.err = fmt.Errorf("core: sinking %s request %d: %w", r.name, e.idx, err)
			return
		}
	}
	r.eng.Schedule(res.Finish, r, evComplete)
}

// eventLoop is the event-driven replay behind ReplayEventDriven and its
// stream form. Tie handling note: lazy arrival scheduling interleaves
// arrival and completion events differently than scheduling every arrival
// upfront, but results are unaffected — the FIFO queue order depends only
// on the arrival sequence, and the device computes service start from the
// request's own arrival time, not from when dispatch runs.
func eventLoop(ctx context.Context, s Scheme, opt Options, st trace.Stream, sink func(idx int, req trace.Request) error) (Metrics, error) {
	dev, err := NewDevice(s, opt)
	if err != nil {
		return Metrics{}, err
	}
	r := &eventReplay{
		dev:  dev,
		st:   st,
		name: st.Name(),
		done: ctx.Done(),
		ctx:  ctx,
		sink: sink,
	}
	r.scheduleNext()
	r.eng.Run()
	if r.err != nil {
		return Metrics{}, r.err
	}
	if r.dispatched != r.pulled {
		return Metrics{}, fmt.Errorf("core: event replay served %d of %d requests", r.dispatched, r.pulled)
	}

	dm := dev.Metrics()
	fs := dev.FTLStats()
	m := Metrics{
		Trace:            r.name,
		Scheme:           s,
		Served:           int(dm.Served),
		MeanResponseNs:   dm.MeanResponseNs(),
		MeanServiceNs:    dm.MeanServiceNs(),
		NoWaitRatio:      dm.NoWaitRatio(),
		SpaceUtilization: fs.SpaceUtilization(),
		GCStallNs:        dm.GCStallNs,
		IdleGCNs:         dm.IdleGCNs,
		BufferHitRate:    dev.BufferHitRate(),
		LightWakes:       dm.LightWakes,
		DeepWakes:        dm.DeepWakes,
	}
	if fs.HostProgrammedPages > 0 {
		m.WriteAmplification = 1 + float64(fs.GC.PageMoves)/float64(fs.HostProgrammedPages)
	}
	return m, nil
}

// writeBack returns a sink that writes replayed timestamps into the
// caller's slice by pull index — the adapter every slice-based replay path
// uses to keep its fill-in-place contract.
func writeBack(tr *trace.Trace) func(idx int, req trace.Request) error {
	return func(idx int, req trace.Request) error {
		tr.Reqs[idx].ServiceStart = req.ServiceStart
		tr.Reqs[idx].Finish = req.Finish
		return nil
	}
}

// sortByArrivalStable restores arrival order after an out-of-order replay.
func sortByArrivalStable(tr *trace.Trace) {
	sort.SliceStable(tr.Reqs, func(a, b int) bool { return tr.Reqs[a].Arrival < tr.Reqs[b].Arrival })
}
