package core

import (
	"reflect"
	"testing"

	"emmcio/internal/faults"
	"emmcio/internal/storage"
	"emmcio/internal/trace"
)

// TestCrossBackendDeterminism replays the same synthetic workload twice on
// every backend — fault injection on, so the RNG-coupled paths are covered
// too — and requires bit-identical metrics, FTL stats, and fault counts.
// Determinism is what makes golden tests, snapshot resume, and the paper's
// published numbers possible, so every backend added behind storage.Device
// must pass this suite, not just eMMC.
func TestCrossBackendDeterminism(t *testing.T) {
	const n = 2_000
	for _, backend := range []storage.Backend{storage.BackendEMMC, storage.BackendSD, storage.BackendUFS} {
		backend := backend
		t.Run(string(backend), func(t *testing.T) {
			t.Parallel()
			run := func() (Metrics, storage.Metrics, interface{}, faults.Counts) {
				opt := CaseStudyOptions()
				opt.Backend = backend
				opt.Faults = &faults.Config{Rate: 0.5, Seed: 9}
				dev, err := NewDevice(Scheme4PS, opt)
				if err != nil {
					t.Fatal(err)
				}
				m, err := ReplayStreamOn(dev, Scheme4PS, newSynthStream(n))
				if err != nil {
					t.Fatalf("%s replay died: %v", backend, err)
				}
				return m, dev.Metrics(), dev.FTLStats(), dev.FaultCounts()
			}
			m1, dm1, ftl1, fc1 := run()
			m2, dm2, ftl2, fc2 := run()
			if !reflect.DeepEqual(m1, m2) {
				t.Errorf("replay metrics differ between identical runs:\n%+v\n%+v", m1, m2)
			}
			if !reflect.DeepEqual(dm1, dm2) {
				t.Errorf("device metrics differ between identical runs:\n%+v\n%+v", dm1, dm2)
			}
			if !reflect.DeepEqual(ftl1, ftl2) {
				t.Errorf("FTL stats differ between identical runs")
			}
			if !reflect.DeepEqual(fc1, fc2) {
				t.Errorf("fault counts differ between identical runs: %+v vs %+v", fc1, fc2)
			}
			if m1.Served != n {
				t.Errorf("%s served %d of %d requests", backend, m1.Served, n)
			}
		})
	}
}

// TestBackendsDiverge is the sanity check on the check above: the three
// backends must not be the same model wearing different names. The SD
// flavour is slower than eMMC and UFS schedules differently, so their mean
// response times over a shared workload must all differ.
func TestBackendsDiverge(t *testing.T) {
	const n = 1_000
	means := map[storage.Backend]float64{}
	for _, backend := range []storage.Backend{storage.BackendEMMC, storage.BackendSD, storage.BackendUFS} {
		opt := CaseStudyOptions()
		opt.Backend = backend
		dev, err := NewDevice(Scheme4PS, opt)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ReplayStreamOn(dev, Scheme4PS, newSynthStream(n))
		if err != nil {
			t.Fatal(err)
		}
		means[backend] = m.MeanResponseNs
	}
	if means[storage.BackendSD] <= means[storage.BackendEMMC] {
		t.Errorf("sdcard MRT %.0f ns should exceed eMMC MRT %.0f ns (3x timing)",
			means[storage.BackendSD], means[storage.BackendEMMC])
	}
	if means[storage.BackendUFS] == means[storage.BackendEMMC] {
		t.Errorf("UFS MRT identical to eMMC (%.0f ns); backend switch had no effect", means[storage.BackendUFS])
	}
}

// TestUFSOptionsReachDevice ties the option plumbing end to end: the UFS
// sizing knobs set on core.Options must be visible in the built device's
// capabilities.
func TestUFSOptionsReachDevice(t *testing.T) {
	opt := CaseStudyOptions()
	opt.Backend = storage.BackendUFS
	opt.UFSQueues = 2
	opt.UFSQueueDepth = 4
	dev, err := NewDevice(Scheme4PS, opt)
	if err != nil {
		t.Fatal(err)
	}
	caps := dev.Caps()
	if caps.Backend != storage.BackendUFS {
		t.Errorf("Caps().Backend = %q, want ufs", caps.Backend)
	}
	if caps.PackedCommands {
		t.Error("UFS must not advertise packed commands")
	}
	if caps.QueueDepth != 8 {
		t.Errorf("Caps().QueueDepth = %d, want 2 queues x 4 slots = 8", caps.QueueDepth)
	}
	if _, err := dev.Submit(trace.Request{Op: trace.Write, LBA: 0, Size: 4096}); err != nil {
		t.Fatalf("UFS submit failed: %v", err)
	}
}
