package core

import (
	"testing"

	"emmcio/internal/paper"
	"emmcio/internal/workload"
)

// The event-driven and sequential replay engines are independent
// implementations of the same semantics: identical timestamps on every
// request of every scheme, for a real application trace.
func TestEventDrivenMatchesSequential(t *testing.T) {
	prof := workload.DefaultRegistry().Lookup(paper.Messaging)
	for _, s := range Schemes {
		seq := prof.Generate(workload.DefaultSeed)
		mSeq, err := Replay(s, CaseStudyOptions(), seq)
		if err != nil {
			t.Fatal(err)
		}
		ev := prof.Generate(workload.DefaultSeed)
		mEv, err := ReplayEventDriven(s, CaseStudyOptions(), ev)
		if err != nil {
			t.Fatal(err)
		}
		if mSeq.MeanResponseNs != mEv.MeanResponseNs || mSeq.NoWaitRatio != mEv.NoWaitRatio ||
			mSeq.SpaceUtilization != mEv.SpaceUtilization {
			t.Fatalf("%s: engines disagree: %+v vs %+v", s, mSeq, mEv)
		}
		for i := range seq.Reqs {
			if seq.Reqs[i] != ev.Reqs[i] {
				t.Fatalf("%s: request %d timestamps differ:\nseq %+v\nev  %+v",
					s, i, seq.Reqs[i], ev.Reqs[i])
			}
		}
	}
}

func TestEventDrivenWithPowerAndBuffer(t *testing.T) {
	prof := workload.DefaultRegistry().Lookup(paper.YouTube)
	opt := Options{PowerSaving: true, RAMBufferBytes: 4 << 20}
	seq := prof.Generate(workload.DefaultSeed)
	mSeq, err := Replay(Scheme4PS, opt, seq)
	if err != nil {
		t.Fatal(err)
	}
	ev := prof.Generate(workload.DefaultSeed)
	mEv, err := ReplayEventDriven(Scheme4PS, opt, ev)
	if err != nil {
		t.Fatal(err)
	}
	if mSeq != mEv {
		t.Fatalf("engines disagree with power+buffer:\n%+v\n%+v", mSeq, mEv)
	}
}

func TestEventDrivenEmptyTrace(t *testing.T) {
	m, err := ReplayEventDriven(Scheme4PS, Options{}, smallTrace().Window(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 0 {
		t.Fatal("served requests from an empty trace")
	}
}
