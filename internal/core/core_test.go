package core

import (
	"testing"

	"emmcio/internal/paper"
	"emmcio/internal/trace"
	"emmcio/internal/workload"
)

func TestSchemeStrings(t *testing.T) {
	if Scheme4PS.String() != "4PS" || Scheme8PS.String() != "8PS" || SchemeHPS.String() != "HPS" {
		t.Fatal("scheme names do not match the paper")
	}
}

// All three Table V configurations have the same 32 GB capacity.
func TestTableVCapacityParity(t *testing.T) {
	for _, s := range Schemes {
		cfg := DeviceConfig(s, Options{})
		var total int64
		for _, p := range cfg.Pools {
			total += p.BytesPerPlane() * int64(cfg.Geometry.Planes())
		}
		if total != 32<<30 {
			t.Errorf("%s capacity %d, want 32 GiB", s, total)
		}
	}
}

func TestTableVGeometryShared(t *testing.T) {
	g := DeviceConfig(Scheme4PS, Options{}).Geometry
	if g.Planes() != 8 || g.Channels != 2 {
		t.Fatalf("geometry %+v does not match Table V", g)
	}
	for _, s := range Schemes {
		if DeviceConfig(s, Options{}).Geometry != g {
			t.Errorf("%s geometry differs; Table V holds parallelism constant", s)
		}
	}
}

func TestHPSPoolSplit(t *testing.T) {
	cfg := DeviceConfig(SchemeHPS, Options{})
	if len(cfg.Pools) != 2 {
		t.Fatalf("HPS has %d pools, want 2", len(cfg.Pools))
	}
	if cfg.Pools[0].PageBytes != 8192 || cfg.Pools[0].BlocksPerPlane != 256 {
		t.Errorf("HPS 8K pool %+v, want 256 blocks", cfg.Pools[0])
	}
	if cfg.Pools[1].PageBytes != 4096 || cfg.Pools[1].BlocksPerPlane != 512 {
		t.Errorf("HPS 4K pool %+v, want 512 blocks", cfg.Pools[1])
	}
}

func smallTrace() *trace.Trace {
	tr := &trace.Trace{Name: "unit"}
	at := int64(0)
	for i := 0; i < 200; i++ {
		at += 5_000_000
		op := trace.Write
		if i%3 == 0 {
			op = trace.Read
		}
		size := uint32((i%6 + 1) * 4096)
		tr.Reqs = append(tr.Reqs, trace.Request{Arrival: at, LBA: uint64(i*64) * 8, Size: size, Op: op})
	}
	return tr
}

func TestReplayFillsTimestamps(t *testing.T) {
	tr := smallTrace()
	m, err := Replay(Scheme4PS, Options{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != len(tr.Reqs) {
		t.Fatalf("served %d, want %d", m.Served, len(tr.Reqs))
	}
	for i, r := range tr.Reqs {
		if r.ServiceStart < r.Arrival || r.Finish <= r.ServiceStart {
			t.Fatalf("request %d has bad timestamps %+v", i, r)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.MeanResponseNs <= 0 || m.MeanServiceNs <= 0 {
		t.Fatal("zero response/service means")
	}
	if m.MeanResponseNs < m.MeanServiceNs {
		t.Fatal("response time cannot be below service time")
	}
}

func TestReplayDeterministic(t *testing.T) {
	a := smallTrace()
	b := smallTrace()
	ma, _ := Replay(SchemeHPS, Options{}, a)
	mb, _ := Replay(SchemeHPS, Options{}, b)
	if ma != mb {
		t.Fatalf("identical replays diverged: %+v vs %+v", ma, mb)
	}
}

// 4PS and HPS achieve perfect space utilization; 8PS pays for padded tails.
func TestSpaceUtilizationOrdering(t *testing.T) {
	for _, s := range []Scheme{Scheme4PS, SchemeHPS} {
		tr := smallTrace()
		m, err := Replay(s, Options{}, tr)
		if err != nil {
			t.Fatal(err)
		}
		if m.SpaceUtilization != 1.0 {
			t.Errorf("%s space utilization %v, want 1.0", s, m.SpaceUtilization)
		}
	}
	tr := smallTrace()
	m8, err := Replay(Scheme8PS, Options{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if m8.SpaceUtilization >= 1.0 {
		t.Errorf("8PS space utilization %v, want < 1.0", m8.SpaceUtilization)
	}
}

// HPS mean response time beats 4PS on a real app trace (Fig. 8 direction),
// and 8PS lands near HPS.
func TestHPSBeats4PSOnAppTrace(t *testing.T) {
	prof := workload.DefaultRegistry().Lookup(paper.Twitter)
	opt := CaseStudyOptions()

	tr4 := prof.Generate(workload.DefaultSeed)
	m4, err := Replay(Scheme4PS, opt, tr4)
	if err != nil {
		t.Fatal(err)
	}
	trH := prof.Generate(workload.DefaultSeed)
	mH, err := Replay(SchemeHPS, opt, trH)
	if err != nil {
		t.Fatal(err)
	}
	if mH.MeanResponseNs >= m4.MeanResponseNs {
		t.Fatalf("HPS MRT %.2fms not below 4PS MRT %.2fms",
			mH.MeanResponseNs/1e6, m4.MeanResponseNs/1e6)
	}
	tr8 := prof.Generate(workload.DefaultSeed)
	m8, err := Replay(Scheme8PS, opt, tr8)
	if err != nil {
		t.Fatal(err)
	}
	rel := m8.MeanResponseNs / mH.MeanResponseNs
	if rel < 0.8 || rel > 1.35 {
		t.Fatalf("8PS MRT should be near HPS; ratio %.2f", rel)
	}
}

func TestThroughputSweepShape(t *testing.T) {
	pts, err := ThroughputSweep(nil, Scheme4PS, Options{}, []int{4096, 65536, 1048576}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	// Monotone growth with request size, reads faster than writes.
	for i := range pts {
		if pts[i].ReadMBs != 0 && pts[i].ReadMBs <= pts[i].WriteMBs {
			t.Errorf("size %d: read %.1f MB/s not above write %.1f MB/s",
				pts[i].SizeBytes, pts[i].ReadMBs, pts[i].WriteMBs)
		}
		if i > 0 && pts[i].WriteMBs <= pts[i-1].WriteMBs {
			t.Errorf("write throughput not increasing at %d bytes", pts[i].SizeBytes)
		}
	}
	// Read series must stop past 256 KB.
	if pts[2].ReadMBs != 0 {
		t.Error("read series should stop at 256 KB (largest read in traces)")
	}
}

func TestScaleBlocksOption(t *testing.T) {
	cfg := DeviceConfig(Scheme4PS, Options{ScaleBlocks: 64})
	if cfg.Pools[0].BlocksPerPlane != 16 {
		t.Fatalf("scaled blocks %d, want 16", cfg.Pools[0].BlocksPerPlane)
	}
}

func TestCaseStudyOptions(t *testing.T) {
	opt := CaseStudyOptions()
	if opt.PowerSaving {
		t.Fatal("case study runs without a power model (SSDsim has none)")
	}
	if opt.RAMBufferBytes != 0 {
		t.Fatal("case study: RAM buffer disabled (§V-B)")
	}
}
