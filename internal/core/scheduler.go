package core

import (
	"context"

	"emmcio/internal/trace"
)

// SchedPolicy selects how an OS-level dispatcher orders waiting requests
// before handing them to the (single-queue, FIFO) eMMC device. The paper's
// Implication 1 argues that host-side queueing machinery buys little on
// smartphone workloads because requests rarely wait at all.
type SchedPolicy int

const (
	// SchedFIFO dispatches in arrival order (the baseline replayer).
	SchedFIFO SchedPolicy = iota
	// SchedSJF dispatches the smallest waiting request first — the
	// strongest simple reordering a host queue could do.
	SchedSJF
	// SchedReadFirst dispatches waiting reads before writes (read
	// prioritization, a common host-side trick).
	SchedReadFirst
)

// String names the policy.
func (p SchedPolicy) String() string {
	switch p {
	case SchedSJF:
		return "SJF"
	case SchedReadFirst:
		return "read-first"
	}
	return "FIFO"
}

// ReplayScheduled replays a trace through a fresh device with an OS-level
// dispatcher applying the given policy to waiting requests. With SchedFIFO
// it is equivalent to Replay. Timestamps are filled into the trace.
func ReplayScheduled(s Scheme, opt Options, tr *trace.Trace, policy SchedPolicy) (Metrics, error) {
	m, err := scheduledLoop(context.Background(), s, opt, trace.FromSlice(tr), policy, writeBack(tr))
	if err != nil {
		return m, err
	}
	// Requests may have been served out of order; restore arrival order for
	// downstream analyses that assume it.
	sortByArrivalStable(tr)
	return m, nil
}
