package core

import (
	"fmt"
	"sort"

	"emmcio/internal/trace"
)

// SchedPolicy selects how an OS-level dispatcher orders waiting requests
// before handing them to the (single-queue, FIFO) eMMC device. The paper's
// Implication 1 argues that host-side queueing machinery buys little on
// smartphone workloads because requests rarely wait at all.
type SchedPolicy int

const (
	// SchedFIFO dispatches in arrival order (the baseline replayer).
	SchedFIFO SchedPolicy = iota
	// SchedSJF dispatches the smallest waiting request first — the
	// strongest simple reordering a host queue could do.
	SchedSJF
	// SchedReadFirst dispatches waiting reads before writes (read
	// prioritization, a common host-side trick).
	SchedReadFirst
)

// String names the policy.
func (p SchedPolicy) String() string {
	switch p {
	case SchedSJF:
		return "SJF"
	case SchedReadFirst:
		return "read-first"
	}
	return "FIFO"
}

// ReplayScheduled replays a trace through a fresh device with an OS-level
// dispatcher applying the given policy to waiting requests. With SchedFIFO
// it is equivalent to Replay. Timestamps are filled into the trace.
func ReplayScheduled(s Scheme, opt Options, tr *trace.Trace, policy SchedPolicy) (Metrics, error) {
	dev, err := NewDevice(s, opt)
	if err != nil {
		return Metrics{}, err
	}

	type item struct {
		idx int
		req trace.Request
	}
	n := len(tr.Reqs)
	var queue []item
	next := 0
	var deviceFree int64

	pick := func() int {
		best := 0
		switch policy {
		case SchedSJF:
			for i := 1; i < len(queue); i++ {
				if queue[i].req.Size < queue[best].req.Size {
					best = i
				}
			}
		case SchedReadFirst:
			for i := 1; i < len(queue); i++ {
				bi, ii := queue[best].req, queue[i].req
				if ii.Op == trace.Read && bi.Op != trace.Read {
					best = i
				}
			}
		}
		return best
	}

	for next < n || len(queue) > 0 {
		// Admit everything that has arrived by the time the device frees.
		for next < n && (len(queue) == 0 || tr.Reqs[next].Arrival <= deviceFree) {
			queue = append(queue, item{idx: next, req: tr.Reqs[next]})
			next++
		}
		i := pick()
		it := queue[i]
		queue = append(queue[:i], queue[i+1:]...)

		dispatchAt := it.req.Arrival
		if deviceFree > dispatchAt {
			dispatchAt = deviceFree
		}
		res, err := dev.SubmitPacked(dispatchAt, []trace.Request{it.req})
		if err != nil {
			return Metrics{}, fmt.Errorf("core: scheduled replay of %s: %w", tr.Name, err)
		}
		tr.Reqs[it.idx].ServiceStart = res[0].ServiceStart
		tr.Reqs[it.idx].Finish = res[0].Finish
		deviceFree = res[0].Finish
	}

	// Requests may have been served out of order; restore arrival order for
	// downstream analyses that assume it.
	sort.SliceStable(tr.Reqs, func(a, b int) bool { return tr.Reqs[a].Arrival < tr.Reqs[b].Arrival })

	dm := dev.Metrics()
	fs := dev.FTLStats()
	m := Metrics{
		Trace:            tr.Name,
		Scheme:           s,
		Served:           int(dm.Served),
		MeanResponseNs:   dm.MeanResponseNs(),
		MeanServiceNs:    dm.MeanServiceNs(),
		NoWaitRatio:      dm.NoWaitRatio(),
		SpaceUtilization: fs.SpaceUtilization(),
		GCStallNs:        dm.GCStallNs,
		IdleGCNs:         dm.IdleGCNs,
	}
	if fs.HostProgrammedPages > 0 {
		m.WriteAmplification = 1 + float64(fs.GC.PageMoves)/float64(fs.HostProgrammedPages)
	}
	return m, nil
}
