package core_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"emmcio/internal/cliutil"
)

// TestGoldenEMMCBitIdentity is the refactor's non-negotiable invariant:
// the eMMC results must be bit-identical across the storage.Device seam.
// The testdata snapshots were captured from `emmcsim -json` before the
// backend-neutral device layer existed; this test replays the same specs
// through today's code — the same cliutil.ReplaySpec path the CLI and the
// emmcd server share — and byte-compares the encoded output. Any drift in
// scheduling, GC, fault injection, or JSON shape fails here first.
func TestGoldenEMMCBitIdentity(t *testing.T) {
	cases := []struct {
		file string
		spec cliutil.ReplaySpec
	}{
		// emmcsim -app Twitter -json
		{"golden_twitter.json", cliutil.ReplaySpec{App: "Twitter"}},
		// emmcsim -app Booting -gc idle -faults 0.5 -fault-seed 7 -shrink 8 -json
		{"golden_booting_faults.json", cliutil.ReplaySpec{
			App: "Booting", GC: "idle", Faults: 0.5, FaultSeed: 7, Shrink: 8,
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.file, func(t *testing.T) {
			t.Parallel()
			want, err := os.ReadFile(filepath.Join("testdata", c.file))
			if err != nil {
				t.Fatal(err)
			}
			results, err := c.spec.Run(context.Background(), 0, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Encode exactly as cmd/emmcsim -json does: two-space indent
			// plus the encoder's trailing newline.
			var buf bytes.Buffer
			enc := json.NewEncoder(&buf)
			enc.SetIndent("", "  ")
			if err := enc.Encode(results); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("eMMC output drifted from pre-refactor baseline %s\ngot:\n%s\nwant:\n%s",
					c.file, buf.Bytes(), want)
			}
		})
	}
}
