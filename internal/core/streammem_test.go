package core

import (
	"runtime"
	"testing"

	"emmcio/internal/storage"
	"emmcio/internal/trace"
)

// synthStream procedurally generates a deterministic workload of n requests
// without ever holding more than one in memory: the generator the
// bounded-memory claims are tested against. A small xorshift keeps the
// address/size/op mix non-trivial while the working set stays bounded
// (addresses wrap within a 256 MB window so the FTL map cannot grow without
// bound and dominate the measurement).
type synthStream struct {
	n, i int
	s    uint64
}

func newSynthStream(n int) *synthStream { return &synthStream{n: n, s: 0x9E3779B97F4A7C15} }

func (s *synthStream) Name() string { return "synthetic" }

func (s *synthStream) Reset() error {
	s.i = 0
	s.s = 0x9E3779B97F4A7C15
	return nil
}

func (s *synthStream) Next() (trace.Request, bool, error) {
	if s.i >= s.n {
		return trace.Request{}, false, nil
	}
	s.s ^= s.s << 13
	s.s ^= s.s >> 7
	s.s ^= s.s << 17
	r := trace.Request{
		Arrival: int64(s.i) * 250_000, // 4k req/s
		LBA:     (s.s % (1 << 19)) * trace.SectorsPerPage,
		Size:    trace.PageSize * uint32(1+s.s>>61), // 4–32 KB
		Op:      trace.Write,
	}
	if s.s&0x300 == 0 { // ~25% reads
		r.Op = trace.Read
	}
	s.i++
	return r, true, nil
}

// TestStreamReplayAllocationBudget is the memory regression guard for the
// streaming pipeline: replaying a 1M-request synthetic stream must stay
// within a fixed heap-allocation budget — amortized O(1) allocations per
// request, and live-heap growth far below what materializing the trace
// (1M × 48-byte requests ≈ 48 MB) would cost.
func TestStreamReplayAllocationBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-request replay")
	}
	const n = 1_000_000
	opt := CaseStudyOptions()
	dev, err := NewDevice(SchemeHPS, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up device-internal lazy structures on a short prefix so the
	// measured window reflects steady-state replay.
	if _, err := ReplayStreamOn(dev, SchemeHPS, newSynthStream(10_000)); err != nil {
		t.Fatal(err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := ReplayStreamOn(dev, SchemeHPS, newSynthStream(n)); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)

	perReq := float64(after.Mallocs-before.Mallocs) / n
	t.Logf("%.2f heap allocations per request, %.1f MB cumulative alloc",
		perReq, float64(after.TotalAlloc-before.TotalAlloc)/(1<<20))
	// Budget: steady-state replay reuses pooled events, scratch chunk/op
	// buffers, and recycled FTL map values, so what remains is residual map
	// churn (~0.3/request when the pools landed; ~7.5 before them). The
	// budget of 2 leaves headroom for map growth while catching any return
	// to per-request allocation — a closure per event alone would blow it.
	if perReq > 2 {
		t.Errorf("replay allocated %.2f objects/request, budget 2 — pooled replay pipeline regressed", perReq)
	}

	runtime.GC()
	var settled runtime.MemStats
	runtime.ReadMemStats(&settled)
	growth := int64(settled.HeapAlloc) - int64(before.HeapAlloc)
	t.Logf("live heap growth after replay: %.1f MB", float64(growth)/(1<<20))
	// The replay must not retain the trace: allow the device's own map/GC
	// state to grow, but nothing near the 48 MB a materialized 1M-request
	// slice would pin.
	if growth > 24<<20 {
		t.Errorf("live heap grew %d MB during streaming replay, budget 24 MB", growth>>20)
	}
}

// TestStreamReplayAllocationBudgetUFS holds the UFS backend to the same
// steady-state discipline: command-slot admission, the write booster's
// chunk queue, and SLC read hits must all run on recycled storage. The
// booster's dirty-sector map churns once per admitted and migrated sector,
// so the budget is slightly looser than the eMMC path's.
func TestStreamReplayAllocationBudgetUFS(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-request replay")
	}
	const n = 1_000_000
	opt := CaseStudyOptions()
	opt.Backend = storage.BackendUFS
	dev, err := NewDevice(SchemeHPS, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayStreamOn(dev, SchemeHPS, newSynthStream(10_000)); err != nil {
		t.Fatal(err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := ReplayStreamOn(dev, SchemeHPS, newSynthStream(n)); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)

	perReq := float64(after.Mallocs-before.Mallocs) / n
	t.Logf("%.2f heap allocations per request, %.1f MB cumulative alloc",
		perReq, float64(after.TotalAlloc-before.TotalAlloc)/(1<<20))
	if perReq > 2 {
		t.Errorf("UFS replay allocated %.2f objects/request, budget 2 — pooled replay pipeline regressed", perReq)
	}
}

// BenchmarkReplayStream1k and BenchmarkReplaySlice1k compare the streaming
// replay path against the materialize-then-replay path on the same
// synthetic workload; -benchmem (ReportAllocs below) makes the memory
// difference part of the regression surface.
func BenchmarkReplayStream1k(b *testing.B) {
	benchReplay(b, true)
}

func BenchmarkReplaySlice1k(b *testing.B) {
	benchReplay(b, false)
}

// BenchmarkReplayUFS1k replays the same synthetic workload on the UFS
// backend, putting the command-queue admission and write-booster paths on
// the regression trajectory next to the eMMC replays above.
func BenchmarkReplayUFS1k(b *testing.B) {
	const n = 1_000
	opt := CaseStudyOptions()
	opt.Backend = storage.BackendUFS
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dev, err := NewDevice(SchemeHPS, opt)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ReplayStreamOn(dev, SchemeHPS, newSynthStream(n)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchReplay(b *testing.B, streamed bool) {
	const n = 1_000
	opt := CaseStudyOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dev, err := NewDevice(SchemeHPS, opt)
		if err != nil {
			b.Fatal(err)
		}
		if streamed {
			_, err = ReplayStreamOn(dev, SchemeHPS, newSynthStream(n))
		} else {
			var tr *trace.Trace
			tr, err = trace.Collect(newSynthStream(n))
			if err == nil {
				_, err = ReplayOn(dev, SchemeHPS, tr)
			}
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}
