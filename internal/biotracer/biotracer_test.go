package biotracer

import (
	"math"
	"testing"

	"emmcio/internal/core"
	"emmcio/internal/paper"
	"emmcio/internal/trace"
	"emmcio/internal/workload"
)

func TestRecordsPerBufferMatchesPaper(t *testing.T) {
	// §II-C: a 32 KB buffer stores about 300 request records.
	if RecordsPerBuffer < 280 || RecordsPerBuffer > 320 {
		t.Fatalf("RecordsPerBuffer = %d, want ~300", RecordsPerBuffer)
	}
}

func synthTrace(n int) *trace.Trace {
	tr := &trace.Trace{Name: "synthetic"}
	at := int64(0)
	for i := 0; i < n; i++ {
		at += 20_000_000
		tr.Reqs = append(tr.Reqs, trace.Request{
			Arrival: at, LBA: uint64(i%1000) * 8, Size: 4096, Op: trace.Write,
		})
	}
	return tr
}

func TestTimestampsFilled(t *testing.T) {
	d, err := core.NewDevice(core.Scheme4PS, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := synthTrace(50)
	if _, err := Collect(d, tr); err != nil {
		t.Fatal(err)
	}
	for i, r := range tr.Reqs {
		if r.ServiceStart < r.Arrival || r.Finish <= r.ServiceStart {
			t.Fatalf("request %d: timestamps not causal: %+v", i, r)
		}
	}
}

func TestFlushEveryBuffer(t *testing.T) {
	d, _ := core.NewDevice(core.Scheme4PS, core.Options{})
	tr := synthTrace(RecordsPerBuffer*3 + 10)
	o, err := Collect(d, tr)
	if err != nil {
		t.Fatal(err)
	}
	if o.Flushes != 3 {
		t.Fatalf("%d flushes, want 3", o.Flushes)
	}
	if o.ExtraRequests < 3*5 || o.ExtraRequests > 3*7 {
		t.Fatalf("%d extra requests for 3 flushes, want 15–21", o.ExtraRequests)
	}
}

// §II-C: tracer overhead is about 2% of monitored traffic.
func TestOverheadAboutTwoPercent(t *testing.T) {
	d, _ := core.NewDevice(core.Scheme4PS, core.Options{})
	tr := synthTrace(RecordsPerBuffer * 20)
	o, err := Collect(d, tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(o.RequestOverhead-paper.TracerOverheadFraction) > 0.005 {
		t.Fatalf("tracer overhead %.4f, paper reports ~%.2f", o.RequestOverhead, paper.TracerOverheadFraction)
	}
}

func TestNoFlushBelowBuffer(t *testing.T) {
	d, _ := core.NewDevice(core.Scheme4PS, core.Options{})
	tr := synthTrace(RecordsPerBuffer - 1)
	o, err := Collect(d, tr)
	if err != nil {
		t.Fatal(err)
	}
	if o.Flushes != 0 || o.ExtraRequests != 0 {
		t.Fatalf("unexpected flushes: %+v", o)
	}
}

// End-to-end with a real workload profile: collecting a session produces a
// fully timestamped, valid trace.
func TestCollectAppTrace(t *testing.T) {
	d, _ := core.NewDevice(core.Scheme4PS, core.Options{PowerSaving: true})
	tr := workload.DefaultRegistry().Lookup(paper.Messaging).Generate(workload.DefaultSeed)
	o, err := Collect(d, tr)
	if err != nil {
		t.Fatal(err)
	}
	if o.MonitoredRequests != len(tr.Reqs) {
		t.Fatalf("monitored %d, want %d", o.MonitoredRequests, len(tr.Reqs))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.RequestOverhead > 0.03 {
		t.Fatalf("overhead %.3f too high", o.RequestOverhead)
	}
}
