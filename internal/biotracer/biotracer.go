// Package biotracer reproduces the paper's measurement tool (§II-B):
// BIOtracer, a block-level I/O monitor that timestamps every request at
// three points — block-layer arrival (step 1), device issue (step 2), and
// completion (step 3) — and stores records in a 32 KB in-memory buffer that
// is flushed to a log file on the eMMC device whenever it fills.
//
// The tracer's own overhead is part of the reproduction: each flush
// synchronously opens, appends to, and closes the log file, generating 5–7
// extra I/O requests; with ~300 records per buffer that is about 2% of the
// monitored traffic (§II-C). Overhead() reports the measured equivalent.
package biotracer

import (
	"fmt"

	"emmcio/internal/storage"
	"emmcio/internal/trace"
)

// Record layout: the paper's buffer holds ~300 records in 32 KB, i.e. about
// 109 bytes per record (timestamps, address, size, type, plus the process
// metadata the kernel tracepoints capture, which we do not model further).
const (
	BufferBytes      = 32 * 1024
	RecordBytes      = 109
	RecordsPerBuffer = BufferBytes / RecordBytes // ~300, as in §II-C
)

// Flush side effects: synchronously opening, appending, and closing the log
// file costs 5–7 extra I/O operations; we alternate 5, 6, 7 for an average
// of 6 (§II-C).
var flushOpSizes = []uint32{4096, 4096, 8192, 4096, 4096, 4096, 4096}

// Tracer monitors a device, collecting timestamped records while injecting
// its own logging I/O into the request stream.
type Tracer struct {
	dev storage.Device

	buffered int // records currently in the RAM buffer
	logLBA   uint64
	flushSeq int

	monitored int   // application requests observed
	extra     int   // tracer-generated requests
	extraNs   int64 // device time consumed by tracer I/O
}

// LogRegionLBA places the tracer's log file away from application data.
const LogRegionLBA = uint64(30) << 30 / trace.SectorSize // 30 GB offset

// New wraps a device with a tracer.
func New(dev storage.Device) *Tracer {
	return &Tracer{dev: dev, logLBA: LogRegionLBA}
}

// Submit forwards one application request to the device, recording its
// three timestamps in the trace record, and flushes the record buffer
// (with its extra I/O) whenever it fills.
func (t *Tracer) Submit(req *trace.Request) error {
	res, err := t.dev.Submit(*req)
	if err != nil {
		return fmt.Errorf("biotracer: %w", err)
	}
	// Step 1 is req.Arrival itself; steps 2 and 3:
	req.ServiceStart = res.ServiceStart
	req.Finish = res.Finish

	t.monitored++
	t.buffered++
	if t.buffered >= RecordsPerBuffer {
		t.flush(res.Finish)
		t.buffered = 0
	}
	return nil
}

// flush appends the buffer to the log file: 5–7 synchronous I/Os issued
// back-to-back right after the triggering request completes.
func (t *Tracer) flush(at int64) {
	n := 5 + t.flushSeq%3 // 5, 6, 7, 5, ... averaging 6
	t.flushSeq++
	arrival := at
	for i := 0; i < n; i++ {
		req := trace.Request{
			Arrival: arrival,
			LBA:     t.logLBA,
			Size:    flushOpSizes[i],
			Op:      trace.Write,
		}
		res, err := t.dev.Submit(req)
		if err != nil {
			// The log region is running out of space; tracing continues
			// without persisting (matches a tracer dropping records).
			return
		}
		t.logLBA += uint64(req.Size) / trace.SectorSize
		t.extra++
		t.extraNs += res.Finish - res.ServiceStart
		arrival = res.Finish
	}
	// The synchronous close issues a cache-flush barrier.
	if res, err := t.dev.Flush(arrival); err == nil {
		t.extraNs += res.Finish - res.ServiceStart
	}
}

// Overhead summarizes the tracer's cost, the §II-C analysis.
type Overhead struct {
	MonitoredRequests int
	ExtraRequests     int
	Flushes           int
	// RequestOverhead is extra / monitored (the paper reports ~2%).
	RequestOverhead float64
	// DeviceTimeNs is the device service time consumed by tracer I/O.
	DeviceTimeNs int64
}

// Overhead reports the accumulated tracer cost.
func (t *Tracer) Overhead() Overhead {
	o := Overhead{
		MonitoredRequests: t.monitored,
		ExtraRequests:     t.extra,
		Flushes:           t.flushSeq,
		DeviceTimeNs:      t.extraNs,
	}
	if t.monitored > 0 {
		o.RequestOverhead = float64(t.extra) / float64(t.monitored)
	}
	return o
}

// Collect replays a whole trace through a fresh tracer on the given device,
// filling in all timestamps, and returns the tracer overhead report.
// This is the reproduction's equivalent of one §II collecting session.
func Collect(dev storage.Device, tr *trace.Trace) (Overhead, error) {
	i := 0
	return CollectStream(dev, trace.FromSlice(tr), func(req trace.Request) error {
		tr.Reqs[i].ServiceStart = req.ServiceStart
		tr.Reqs[i].Finish = req.Finish
		i++
		return nil
	})
}

// CollectStream is the streaming form of Collect: it pulls application
// requests from a stream, monitors each through a fresh tracer (injecting
// the tracer's own log I/O as it goes), and hands every request with its
// three timestamps filled to sink (when non-nil). Memory is O(1) in the
// trace length — one §II collecting session of any duration.
func CollectStream(dev storage.Device, st trace.Stream, sink func(trace.Request) error) (Overhead, error) {
	t := New(dev)
	for i := 0; ; i++ {
		req, ok, err := st.Next()
		if err != nil {
			return Overhead{}, fmt.Errorf("biotracer: reading %s request %d: %w", st.Name(), i, err)
		}
		if !ok {
			return t.Overhead(), nil
		}
		if err := t.Submit(&req); err != nil {
			return Overhead{}, err
		}
		if sink != nil {
			if err := sink(req); err != nil {
				return Overhead{}, err
			}
		}
	}
}
