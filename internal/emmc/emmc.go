// Package emmc models the eMMC device: a FIFO request interface in front of
// a multi-channel, multi-plane flash array managed by the FTL.
//
// The service model follows the paper's measurement semantics (§II-B):
// a request's service starts when the device is free (requests that find the
// device busy wait — the complement of Table IV's NoWait ratio) and ends when
// its last flash operation completes. Within one request, page operations
// stripe round-robin across planes; transfers serialize per channel and
// flash operations serialize per plane, as in SSDsim.
//
// Two behaviours the paper highlights are modeled explicitly:
//
//   - Low-power mode (Characteristic 4): after a configurable idle period the
//     device drops into light then deep sleep, and the next request pays a
//     wake-up penalty as part of its service time.
//   - Garbage-collection policy (Implication 2): the SSD-style policy runs GC
//     in the foreground when free blocks run low; the idle policy runs it
//     during request inter-arrival gaps, charging the request only for the
//     part that did not fit in the gap.
package emmc

import (
	"encoding/gob"
	"fmt"
	"io"

	"emmcio/internal/faults"
	"emmcio/internal/flash"
	"emmcio/internal/ftl"
	"emmcio/internal/reliability"
	"emmcio/internal/sim"
	"emmcio/internal/storage"
	"emmcio/internal/telemetry"
	"emmcio/internal/trace"
)

// GCPolicy selects when garbage collection runs.
type GCPolicy int

const (
	// GCForeground runs GC synchronously when a write finds the pool at the
	// free-block threshold (the SSD-style policy Implication 2 critiques).
	GCForeground GCPolicy = iota
	// GCIdle runs GC during request inter-arrival gaps (Implication 2's
	// proposal); only overflow beyond the gap delays the request.
	GCIdle
)

// Config describes a device instance.
type Config struct {
	Geometry flash.Geometry
	Timing   flash.Timing
	// Pools lists the per-plane page-size pools, largest page first.
	Pools []flash.PoolSpec
	// GCFreeBlocks is the per-plane-pool free-block threshold.
	GCFreeBlocks int
	GCPolicy     GCPolicy
	// Wear selects the FTL wear-leveling policy (default round-robin,
	// the paper's Implication-4 recommendation).
	Wear ftl.WearPolicy

	// Power management (Characteristic 4). Zero thresholds disable a level.
	PowerSaving     bool
	LightSleepAfter int64 // idle ns before light sleep
	LightWake       int64 // wake penalty from light sleep
	DeepSleepAfter  int64 // idle ns before deep sleep
	DeepWake        int64 // wake penalty from deep sleep

	// RAMBufferBytes enables the device-internal LRU sector cache used for
	// the Implication-3 ablation. Zero (the default, and the §V setup)
	// disables it.
	RAMBufferBytes int64

	// MapCacheBytes bounds the controller RAM holding the DFTL-style cached
	// mapping table. Zero (the default) models unlimited mapping RAM — the
	// idealized FTL of the §V case study. A realistic eMMC value (tens to a
	// few hundred KB) makes mapping misses cost translation-page I/O.
	MapCacheBytes int64

	// Reliability enables the wear-dependent read-retry model: reads slow
	// down as the pool's average P/E count climbs. Nil disables it (fresh
	// devices, the §V setup).
	Reliability *reliability.Model

	// ReadAheadPages prefetches the next N sequential sectors into the RAM
	// buffer after a read, a device-side optimization whose payoff is
	// bounded by the traces' weak spatial locality (Implication 3's other
	// face). Requires RAMBufferBytes > 0; zero disables.
	ReadAheadPages int

	// CommandQueue models an eMMC 5.1-style command queue: requests no
	// longer wait for the whole device to go idle, only for the channels
	// and planes they actually use. eMMC 4.51 (the paper's device) has no
	// CQ — this is the forward-looking ablation for Implication 1.
	CommandQueue bool

	// FlushNs is the cost of a cache-flush barrier (CMD6/SWITCH with the
	// FLUSH_CACHE bit — what fsync turns into below the file system).
	// Zero selects the 500 µs default.
	FlushNs int64

	// WriteBufferBytes enables SSDsim's RAM write-buffer layer, which the
	// paper's §V-B explicitly disables for the case study: writes are
	// acknowledged from RAM and destaged to flash during idle gaps (or
	// synchronously when the buffer fills / a flush barrier arrives).
	WriteBufferBytes int64

	// Faults enables deterministic fault injection (program/erase failures
	// and uncorrectable reads, wear-dependent). Nil or rate-zero models
	// perfect hardware at zero simulated-time overhead.
	Faults *faults.Config

	// SDCard marks the device as the mmc/sdcard flavour: identical
	// mechanics, but the device advertises no packed-command support, so
	// the blockdev driver issues one command per request (the paper's
	// Implication-1 external-card comparison). Timing carries the 3x
	// slowdown; this bit only changes the advertised capabilities.
	SDCard bool
}

// Validate reports unusable configurations.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if len(c.Pools) == 0 {
		return fmt.Errorf("emmc: no pools")
	}
	for i, p := range c.Pools {
		if err := p.Validate(); err != nil {
			return err
		}
		if _, ok := c.Timing.PerPage[p.PageBytes]; !ok {
			return fmt.Errorf("emmc: no timing for pool page size %d", p.PageBytes)
		}
		if i > 0 && c.Pools[i].PageBytes >= c.Pools[i-1].PageBytes {
			return fmt.Errorf("emmc: pools must be ordered largest page first")
		}
	}
	if c.GCFreeBlocks < 1 {
		return fmt.Errorf("emmc: GC threshold below 1")
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// Result reports the replayed timing of one request. It is the shared
// storage.Result: the seam's type, so every backend returns the same shape.
type Result = storage.Result

// Metrics aggregates a device's activity over a replay (storage.Metrics —
// the alias keeps the gob snapshot layout and every JSON field identical to
// the pre-seam layout).
type Metrics = storage.Metrics

// Device is one simulated eMMC instance.
type Device struct {
	cfg      Config
	ftl      *ftl.FTL
	channels []sim.Resource
	planes   []sim.Resource
	freeAt   int64
	lastEnd  int64 // completion time of the most recent request
	rrPlane  int
	buffer   *ramBuffer
	mapCache *ftl.MapCache
	writeBuf *writeBuffer
	metrics  Metrics
	// inj is the device's fault injector (shared with the FTL so the
	// decision stream stays one deterministic sequence). Nil when off.
	inj *faults.Injector

	// Cached read-retry factors per pool, refreshed when wear changes.
	relFactor []float64
	relPE     []float64

	// Read-ahead state: the sector run the device expects next.
	lastReadEnd int64
	prefetches  int64
	prefetchHit int64

	// Telemetry is off by default; SetTelemetry attaches handles so the
	// hot paths pay one nil check when disabled.
	tel    *devTel
	tracer *telemetry.Tracer

	// Per-request scratch, reused across submissions (the device is
	// single-goroutine per the storage.Device contract). Contents are only
	// meaningful within one submit call; every consumer that outlives the
	// call (FTL reverse map, write buffer) copies what it keeps.
	lpnBuf      []int64
	chunkBuf    []chunk
	readOps     []readOp
	pendingLPNs []int64
	unitOps     []int
}

// devTel holds the device's metric handles, resolved once at attach time.
type devTel struct {
	reads, writes         *telemetry.Counter
	readServNs            *telemetry.Histogram
	writeServNs           *telemetry.Histogram
	waitNs                *telemetry.Histogram
	sub4K, sub8K          *telemetry.Counter
	flushes               *telemetry.Counter
	lightWakes, deepWakes *telemetry.Counter
	gcStallNs             *telemetry.Counter
	idleGCNs              *telemetry.Counter
	destageIdle           *telemetry.Counter
	destageSpace          *telemetry.Counter
	destageBarrier        *telemetry.Counter
	readFaults            *telemetry.Counter
	recoveryNs            *telemetry.Counter
	recoveryHist          *telemetry.Histogram
	wbBytes               *telemetry.Gauge
	chanBusy              []*telemetry.Gauge
}

// SetTelemetry attaches metrics and span tracing to the device (nil values
// detach). Metrics: emmc_requests_total{op}, emmc_service_ns{op} latency
// histograms, sub-request counters split 4K/8K, flush/wake/GC-stall
// accounting, write-buffer occupancy, and per-channel cumulative busy time.
// Spans: every flash transfer/program/read on its channel and plane track,
// GC and wake markers, and flush barriers. The FTL and mapping cache are
// wired through the same registry.
func (d *Device) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	d.tracer = tr
	d.ftl.SetTelemetry(reg)
	d.mapCache.SetTelemetry(reg)
	d.inj.SetTelemetry(reg)
	if reg == nil {
		d.tel = nil
		return
	}
	t := &devTel{
		reads:          reg.Counter("emmc_requests_total", telemetry.L("op", "read")),
		writes:         reg.Counter("emmc_requests_total", telemetry.L("op", "write")),
		readServNs:     reg.Histogram("emmc_service_ns", nil, telemetry.L("op", "read")),
		writeServNs:    reg.Histogram("emmc_service_ns", nil, telemetry.L("op", "write")),
		waitNs:         reg.Histogram("emmc_wait_ns", nil),
		sub4K:          reg.Counter("emmc_subrequests_total", telemetry.L("page", "4K")),
		sub8K:          reg.Counter("emmc_subrequests_total", telemetry.L("page", "8K")),
		flushes:        reg.Counter("emmc_flushes_total"),
		lightWakes:     reg.Counter("emmc_wakes_total", telemetry.L("level", "light")),
		deepWakes:      reg.Counter("emmc_wakes_total", telemetry.L("level", "deep")),
		gcStallNs:      reg.Counter("emmc_gc_stall_ns_total"),
		idleGCNs:       reg.Counter("emmc_idle_gc_ns_total"),
		destageIdle:    reg.Counter("emmc_destages_total", telemetry.L("cause", "idle")),
		destageSpace:   reg.Counter("emmc_destages_total", telemetry.L("cause", "space")),
		destageBarrier: reg.Counter("emmc_destages_total", telemetry.L("cause", "barrier")),
		readFaults:     reg.Counter("emmc_read_faults_total"),
		recoveryNs:     reg.Counter("emmc_fault_recovery_ns_total"),
		recoveryHist:   reg.Histogram("emmc_fault_recovery_ns", nil),
		wbBytes:        reg.Gauge("emmc_write_buffer_bytes"),
	}
	for i := 0; i < d.cfg.Geometry.Channels; i++ {
		t.chanBusy = append(t.chanBusy,
			reg.Gauge("emmc_channel_busy_ns", telemetry.L("channel", fmt.Sprintf("%d", i))))
	}
	d.tel = t
}

// trackChannel/trackPlane format Perfetto track names; only reached when a
// tracer is attached.
func trackChannel(ch int) string { return fmt.Sprintf("channel/%d", ch) }
func trackPlane(pl int) string   { return fmt.Sprintf("plane/%d", pl) }

// observeSub attributes one flash page operation to its 4K/8K pool.
func (d *Device) observeSub(pageBytes int) {
	if d.tel == nil {
		return
	}
	if pageBytes >= 8192 {
		d.tel.sub8K.Inc()
	} else {
		d.tel.sub4K.Inc()
	}
}

// pageLabel names the pool size in span labels.
func pageLabel(pageBytes int) string {
	if pageBytes >= 8192 {
		return "8K"
	}
	return "4K"
}

// New builds a fresh device.
func New(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f, err := ftl.New(ftl.Config{
		Geometry:     cfg.Geometry,
		Pools:        cfg.Pools,
		GCFreeBlocks: cfg.GCFreeBlocks,
		Wear:         cfg.Wear,
	})
	if err != nil {
		return nil, err
	}
	inj, err := faults.New(cfg.Faults)
	if err != nil {
		return nil, err
	}
	f.SetFaults(inj)
	return &Device{
		cfg:       cfg,
		ftl:       f,
		channels:  make([]sim.Resource, cfg.Geometry.Channels),
		planes:    make([]sim.Resource, cfg.Geometry.Planes()),
		buffer:    newRAMBuffer(cfg.RAMBufferBytes),
		mapCache:  ftl.NewMapCache(cfg.MapCacheBytes),
		writeBuf:  newWriteBuffer(cfg.WriteBufferBytes),
		relFactor: make([]float64, len(cfg.Pools)),
		relPE:     make([]float64, len(cfg.Pools)),
		inj:       inj,
	}, nil
}

// Caps advertises the device's capabilities to the driver layer: packed
// commands unless configured as the sdcard flavour, and a queue depth of 1
// (eMMC 4.51 serializes commands) unless the 5.1-style command queue is on.
func (d *Device) Caps() storage.Caps {
	c := storage.Caps{Backend: storage.BackendEMMC, PackedCommands: true, QueueDepth: 1}
	if d.cfg.SDCard {
		c.Backend = storage.BackendSD
		c.PackedCommands = false
	}
	if d.cfg.CommandQueue {
		c.QueueDepth = 32 // eMMC 5.1 CQE exposes 32 task slots
	}
	return c
}

// FaultCounts exposes the injector's per-kind fault totals (all zero when
// injection is off).
func (d *Device) FaultCounts() faults.Counts { return d.inj.Counts() }

// FaultDraws reports the injector's decision-stream position (0 when
// injection is off).
func (d *Device) FaultDraws() int64 { return d.inj.Draws() }

// SetFaultConfig replaces the device's fault injector with a fresh one
// built from fc (nil = injection off). The new injector starts at draw 0,
// as if fc had been in the construction config — the FTL shares it, so the
// decision stream stays one deterministic sequence.
func (d *Device) SetFaultConfig(fc *faults.Config) error {
	inj, err := faults.New(fc)
	if err != nil {
		return err
	}
	d.cfg.Faults = fc
	d.inj = inj
	d.ftl.SetFaults(inj)
	return nil
}

// AddArtificialWear pre-ages a pool (aging studies).
func (d *Device) AddArtificialWear(pool int, erases int64) {
	d.ftl.AddArtificialWear(pool, erases)
}

// Pools describes the device's flash pools; Wear indexes into this slice.
func (d *Device) Pools() []flash.PoolSpec { return d.ftl.Pools() }

// readRetryFactor returns the wear-dependent read latency multiplier for a
// pool, memoized until the pool's wear level changes.
func (d *Device) readRetryFactor(pool int) float64 {
	if d.cfg.Reliability == nil {
		return 1
	}
	pe := d.ftl.PoolAvgPE(pool)
	if d.relFactor[pool] == 0 || pe != d.relPE[pool] {
		d.relPE[pool] = pe
		d.relFactor[pool] = d.cfg.Reliability.ReadLatencyFactor(pe)
	}
	return d.relFactor[pool]
}

// MapCacheStats exposes the mapping-cache counters (zero when disabled).
func (d *Device) MapCacheStats() ftl.MapCacheStats {
	if d.mapCache == nil {
		return ftl.MapCacheStats{}
	}
	return d.mapCache.Stats()
}

// mapAccess charges the translation I/O for touching the mapping entry of
// the LPN: a translation-page read per miss and a program per dirty
// eviction, serialized in the controller before the data operations.
func (d *Device) mapAccess(lpn int64, dirty bool) int64 {
	if d.mapCache == nil {
		return 0
	}
	tReads, tWrites := d.mapCache.Access(lpn, dirty)
	if tReads == 0 && tWrites == 0 {
		return 0
	}
	var ns int64
	if tReads > 0 {
		ns += int64(tReads) * d.cfg.Timing.Read(4096)
		d.metrics.MapReads += int64(tReads)
	}
	if tWrites > 0 {
		ns += int64(tWrites) * d.cfg.Timing.Program(4096)
		d.metrics.MapWrites += int64(tWrites)
	}
	d.metrics.MapNs += ns
	return ns
}

// Utilization reports how busy the device's resources were over the replay
// horizon [0, LastActivity]: the fraction of time each channel and plane
// held work, plus the device-level busy fraction. Smartphone traces leave
// the device overwhelmingly idle — the quantitative basis of Implication 1
// and Implication 2's idle-gap budget.
type Utilization struct {
	Channels []float64
	Planes   []float64
	// Device is total request service time over the horizon.
	Device float64
}

// Utilization computes resource busy fractions.
func (d *Device) Utilization() Utilization {
	var u Utilization
	horizon := d.lastEnd
	if horizon <= 0 {
		return u
	}
	for i := range d.channels {
		_, busy := d.channels[i].State()
		u.Channels = append(u.Channels, float64(busy)/float64(horizon))
	}
	for i := range d.planes {
		_, busy := d.planes[i].State()
		u.Planes = append(u.Planes, float64(busy)/float64(horizon))
	}
	u.Device = float64(d.metrics.SumServiceNs) / float64(horizon)
	return u
}

// LastActivity returns the completion time of the device's most recent
// request — callers resuming a snapshot rebase new sessions past it
// (see trace.Shift).
func (d *Device) LastActivity() int64 { return d.lastEnd }

// BufferHitRate returns the RAM buffer's read hit rate, or 0 when disabled.
func (d *Device) BufferHitRate() float64 {
	if d.buffer == nil {
		return 0
	}
	return d.buffer.HitRate()
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Geometry returns the flash array's shape.
func (d *Device) Geometry() flash.Geometry { return d.cfg.Geometry }

// CapacityBytes returns the device's physical flash capacity.
func (d *Device) CapacityBytes() int64 {
	var total int64
	for _, p := range d.cfg.Pools {
		total += p.BytesPerPlane() * int64(d.cfg.Geometry.Planes())
	}
	return total
}

// Metrics returns a copy of the accumulated metrics.
func (d *Device) Metrics() Metrics { return d.metrics }

// FTLStats exposes the translation layer's accounting (space utilization,
// GC totals).
func (d *Device) FTLStats() ftl.Stats { return d.ftl.Stats() }

// Wear exposes the erase distribution of pool index pool.
func (d *Device) Wear(pool int) ftl.WearSummary { return d.ftl.Wear(pool) }

// chunk is one physical page operation derived from a host request.
type chunk struct {
	pool     int
	lpns     []int64
	pageSize int
}

// splitWrite decomposes a write of the given sectors into page chunks:
// whole large pages first, then smaller pools, the remainder padding the
// smallest pool's page (the source of 8PS's wasted flash space, §V-A).
// The returned slice is device scratch, valid until the next splitWrite
// call; its chunks alias lpns.
func (d *Device) splitWrite(lpns []int64) []chunk {
	out := d.chunkBuf[:0]
	rest := lpns
	for pi, pool := range d.cfg.Pools {
		spp := pool.SectorsPerPage()
		last := pi == len(d.cfg.Pools)-1
		for len(rest) >= spp || (last && len(rest) > 0) {
			n := spp
			if n > len(rest) {
				n = len(rest)
			}
			out = append(out, chunk{pool: pi, lpns: rest[:n], pageSize: pool.PageBytes})
			rest = rest[n:]
		}
	}
	d.chunkBuf = out
	return out
}

// resetUnitOps clears and returns the per-request pipelining counters (one
// per serialization unit; plane indices are the superset of channel
// indices, so one slice serves both keyings).
func (d *Device) resetUnitOps() []int {
	if d.unitOps == nil {
		d.unitOps = make([]int, len(d.planes))
	}
	ops := d.unitOps
	for i := range ops {
		ops[i] = 0
	}
	return ops
}

// opCost applies the pipelining factor to the latency of the n-th (0-based)
// consecutive flash operation a request issues to one serialization unit —
// the plane when the channel interleaves, the channel itself otherwise
// (cache-mode sequential program/read within one packed command).
func (d *Device) opCost(base int64, nthOnUnit int) int64 {
	if nthOnUnit == 0 {
		return base
	}
	return int64(float64(base) * d.cfg.Timing.PipelineFactor)
}

// serialUnit returns the index a request's per-unit op counter is keyed by
// for pipelining purposes.
func (d *Device) serialUnit(plane int) int {
	if d.cfg.Timing.ChannelInterleave {
		return plane
	}
	return d.cfg.Geometry.ChannelOf(plane)
}

// scheduleWrite places one program operation (transfer then program, plus
// any GC stall) on a channel/plane pair and returns its completion time.
// pageBytes attributes the sub-request to its 4K/8K pool in telemetry.
func (d *Device) scheduleWrite(opsStart int64, plane int, transfer, opNs int64, pageBytes int) int64 {
	chIdx := d.cfg.Geometry.ChannelOf(plane)
	ch := &d.channels[chIdx]
	pl := &d.planes[plane]
	d.observeSub(pageBytes)
	if d.cfg.Timing.ChannelInterleave {
		// Channel frees after the transfer; the plane runs the program.
		chStart, chEnd := ch.Reserve(opsStart, transfer)
		plStart, plEnd := pl.Reserve(chEnd, opNs)
		if d.tracer != nil {
			pg := telemetry.L("page", pageLabel(pageBytes))
			d.tracer.Span("emmc", trackChannel(chIdx), "xfer-in", chStart, chEnd, pg)
			d.tracer.Span("emmc", trackPlane(plane), "program", plStart, plEnd, pg)
		}
		return plEnd
	}
	// Simple controller: the channel is held through the program.
	start := opsStart
	if f := ch.FreeAt(); f > start {
		start = f
	}
	if f := pl.FreeAt() - transfer; f > start {
		start = f
	}
	ch.ReserveWindow(start, transfer+opNs)
	pl.ReserveWindow(start+transfer, opNs)
	if d.tracer != nil {
		pg := telemetry.L("page", pageLabel(pageBytes))
		d.tracer.Span("emmc", trackChannel(chIdx), "xfer+program", start, start+transfer+opNs, pg)
		d.tracer.Span("emmc", trackPlane(plane), "program", start+transfer, start+transfer+opNs, pg)
	}
	return start + transfer + opNs
}

// scheduleRead places one read operation (flash read then transfer out) and
// returns its completion time.
func (d *Device) scheduleRead(opsStart int64, plane int, opNs, transfer int64, pageBytes int) int64 {
	chIdx := d.cfg.Geometry.ChannelOf(plane)
	ch := &d.channels[chIdx]
	pl := &d.planes[plane]
	d.observeSub(pageBytes)
	if d.cfg.Timing.ChannelInterleave {
		plStart, plEnd := pl.Reserve(opsStart, opNs)
		chStart, chEnd := ch.Reserve(plEnd, transfer)
		if d.tracer != nil {
			pg := telemetry.L("page", pageLabel(pageBytes))
			d.tracer.Span("emmc", trackPlane(plane), "read", plStart, plEnd, pg)
			d.tracer.Span("emmc", trackChannel(chIdx), "xfer-out", chStart, chEnd, pg)
		}
		return chEnd
	}
	start := opsStart
	if f := ch.FreeAt(); f > start {
		start = f
	}
	if f := pl.FreeAt(); f > start {
		start = f
	}
	ch.ReserveWindow(start, opNs+transfer)
	pl.ReserveWindow(start, opNs)
	if d.tracer != nil {
		pg := telemetry.L("page", pageLabel(pageBytes))
		d.tracer.Span("emmc", trackChannel(chIdx), "read+xfer", start, start+opNs+transfer, pg)
		d.tracer.Span("emmc", trackPlane(plane), "read", start, start+opNs, pg)
	}
	return start + opNs + transfer
}

func (d *Device) gcTime(w ftl.GCWork, pageBytes int) int64 {
	t := d.cfg.Timing
	var moveNs int64
	if w.PageMoves > 0 {
		moveNs = int64(w.PageMoves) * (t.Read(pageBytes) + t.Program(pageBytes))
	}
	// Failed operations still occupy the plane until the status fail: a full
	// program per rejected program, a full erase per rejected erase.
	faultNs := int64(w.ProgramFaults)*t.Program(pageBytes) + int64(w.EraseFaults)*t.EraseNs
	return moveNs + faultNs + int64(w.Erases)*t.EraseNs
}

// Submit services one request and returns its timing. Requests must arrive
// in nondecreasing arrival order.
func (d *Device) Submit(req trace.Request) (Result, error) {
	return d.SubmitAt(req.Arrival, req)
}

// SubmitAt services one request dispatched at dispatchAt (at least its
// arrival): Submit with an explicit dispatch time, the single-request fast
// path of the replay loops. It allocates nothing in steady state.
func (d *Device) SubmitAt(dispatchAt int64, req trace.Request) (Result, error) {
	if req.Size == 0 || req.Size%trace.PageSize != 0 {
		return Result{}, fmt.Errorf("emmc: request size %d not page aligned", req.Size)
	}
	if req.Arrival > dispatchAt {
		return Result{}, fmt.Errorf("emmc: packed member arrives after dispatch")
	}
	serviceStart, opsStart, waited, err := d.beginCommand(dispatchAt)
	if err != nil {
		return Result{}, err
	}
	res, err := d.serveOne(req, serviceStart, opsStart, waited)
	if err != nil {
		return Result{}, err
	}
	d.finishCommand(res.Finish)
	return res, nil
}

// SubmitPacked services several requests as one packed eMMC command
// (Fig. 2's packing function): the command pays the controller's
// per-request overhead once, its members' flash operations share the
// command's schedule, and the device is busy until the last member
// finishes. dispatchAt is when the driver issued the command (at least the
// latest member arrival).
func (d *Device) SubmitPacked(dispatchAt int64, reqs []trace.Request) ([]Result, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("emmc: empty packed command")
	}
	for _, req := range reqs {
		if req.Size == 0 || req.Size%trace.PageSize != 0 {
			return nil, fmt.Errorf("emmc: request size %d not page aligned", req.Size)
		}
		if req.Arrival > dispatchAt {
			return nil, fmt.Errorf("emmc: packed member arrives after dispatch")
		}
	}
	serviceStart, opsStart, waited, err := d.beginCommand(dispatchAt)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(reqs))
	var cmdFinish int64
	for _, req := range reqs {
		res, err := d.serveOne(req, serviceStart, opsStart, waited)
		if err != nil {
			return nil, err
		}
		if res.Finish > cmdFinish {
			cmdFinish = res.Finish
		}
		out = append(out, res)
	}
	d.finishCommand(cmdFinish)
	return out, nil
}

// beginCommand runs the per-command preamble shared by every submit path:
// the FIFO wait, the power-mode wake penalty, the controller overhead, and
// the idle-gap GC/destage work. It returns when service starts and when
// flash operations may begin.
func (d *Device) beginCommand(dispatchAt int64) (serviceStart, opsStart int64, waited bool, err error) {
	waited = d.freeAt > dispatchAt
	serviceStart = dispatchAt
	if waited && !d.cfg.CommandQueue {
		serviceStart = d.freeAt
	}

	// Power-mode wake penalty: the device has been idle since lastEnd.
	opsStart = serviceStart
	if d.cfg.PowerSaving && d.metrics.Served > 0 {
		idle := serviceStart - d.lastEnd
		switch {
		case d.cfg.DeepSleepAfter > 0 && idle >= d.cfg.DeepSleepAfter:
			opsStart += d.cfg.DeepWake
			d.metrics.DeepWakes++
			d.metrics.WakeNs += d.cfg.DeepWake
			if d.tel != nil {
				d.tel.deepWakes.Inc()
			}
			d.tracer.Instant("emmc", "device", "deep-wake", serviceStart)
		case d.cfg.LightSleepAfter > 0 && idle >= d.cfg.LightSleepAfter:
			opsStart += d.cfg.LightWake
			d.metrics.LightWakes++
			d.metrics.WakeNs += d.cfg.LightWake
			if d.tel != nil {
				d.tel.lightWakes.Inc()
			}
			d.tracer.Instant("emmc", "device", "light-wake", serviceStart)
		}
	}
	opsStart += d.cfg.Timing.RequestOverheadNs

	// Idle-policy GC: clean pools that hit the threshold, absorbing the cost
	// into the gap the device just sat idle.
	if d.cfg.GCPolicy == GCIdle {
		over, gerr := d.runIdleGC(dispatchAt)
		if gerr != nil {
			return 0, 0, false, gerr
		}
		opsStart += over
	}
	// Idle destage: the write buffer drains into the same gaps.
	if d.writeBuf != nil {
		budget := dispatchAt - d.lastEnd
		if budget > 0 {
			d.destageIdle(budget)
		}
	}
	return serviceStart, opsStart, waited, nil
}

// serveOne services one member request of a command whose preamble already
// ran, accumulating metrics and returning its Result.
func (d *Device) serveOne(req trace.Request, serviceStart, opsStart int64, waited bool) (Result, error) {
	startLPN := int64(req.LBA) / trace.SectorsPerPage
	nSectors := int(req.Size) / trace.PageSize
	lpns := d.lpnBuf[:0]
	for i := 0; i < nSectors; i++ {
		lpns = append(lpns, startLPN+int64(i))
	}
	d.lpnBuf = lpns

	var finish int64
	var err error
	if req.Op == trace.Write {
		finish, err = d.serveWrite(opsStart, lpns)
	} else {
		finish, err = d.serveRead(opsStart, lpns)
	}
	if err != nil {
		return Result{}, err
	}

	d.metrics.Served++
	if !waited {
		d.metrics.NoWait++
	}
	d.metrics.SumServiceNs += finish - serviceStart
	d.metrics.SumResponseNs += finish - req.Arrival
	d.metrics.SumWaitNs += serviceStart - req.Arrival
	if d.tel != nil {
		if req.Op == trace.Write {
			d.tel.writes.Inc()
			d.tel.writeServNs.Observe(finish - serviceStart)
		} else {
			d.tel.reads.Inc()
			d.tel.readServNs.Observe(finish - serviceStart)
		}
		d.tel.waitNs.Observe(serviceStart - req.Arrival)
	}
	return Result{ServiceStart: serviceStart, Finish: finish, Waited: waited}, nil
}

// finishCommand advances the FIFO/idle cursors after a command's last
// member finishes and refreshes the occupancy gauges.
func (d *Device) finishCommand(cmdFinish int64) {
	if !d.cfg.CommandQueue || cmdFinish > d.freeAt {
		d.freeAt = cmdFinish
	}
	if cmdFinish > d.lastEnd {
		d.lastEnd = cmdFinish
	}
	if d.tel != nil {
		for i := range d.channels {
			_, busy := d.channels[i].State()
			d.tel.chanBusy[i].Set(busy)
		}
		if d.writeBuf != nil {
			d.tel.wbBytes.Set(d.writeBuf.usedBytes)
		}
	}
}

// serveWrite programs all chunks, striping across planes. With the write
// buffer enabled, chunks are acknowledged from RAM (transfer cost only) and
// destaged later; a full buffer destages synchronously first.
func (d *Device) serveWrite(opsStart int64, lpns []int64) (int64, error) {
	chunks := d.splitWrite(lpns)
	for _, c := range chunks {
		opsStart += d.mapAccess(c.lpns[0], true)
	}
	if d.writeBuf != nil {
		need := int64(len(lpns)) * flash.SectorBytes
		opsStart += d.destageForSpace(need)
		finish := opsStart
		for _, c := range chunks {
			d.writeBuf.add(c.pool, c.lpns)
			d.metrics.BufferedWrites++
			if d.buffer != nil {
				for _, lpn := range c.lpns {
					d.buffer.writeAllocate(lpn)
				}
			}
			payload := len(c.lpns) * flash.SectorBytes
			ch := d.rrPlane % d.cfg.Geometry.Channels
			chStart, chEnd := d.channels[ch].Reserve(opsStart, d.cfg.Timing.Transfer(payload))
			if d.tracer != nil {
				d.tracer.Span("emmc", trackChannel(ch), "wb-ack", chStart, chEnd,
					telemetry.L("page", pageLabel(c.pageSize)))
			}
			d.observeSub(c.pageSize)
			if chEnd > finish {
				finish = chEnd
			}
		}
		return finish, nil
	}
	perPlaneOps := d.resetUnitOps()
	finish := opsStart
	for _, c := range chunks {
		plane := d.rrPlane % len(d.planes)
		d.rrPlane++

		loc, gcWork, err := d.ftl.Write(plane, c.pool, c.lpns)
		if err != nil {
			return 0, err
		}
		var gcNs int64
		if !gcWork.Zero() {
			gcNs = d.gcTime(gcWork, c.pageSize)
			d.metrics.ForegroundGC.Add(gcWork)
			d.metrics.GCStallNs += gcNs
			if d.tel != nil {
				d.tel.gcStallNs.Add(gcNs)
			}
			d.tracer.Instant("ftl", "gc", "foreground-gc", opsStart,
				telemetry.L("page", pageLabel(c.pageSize)))
		}
		if d.buffer != nil {
			for _, lpn := range c.lpns {
				d.buffer.writeAllocate(lpn)
			}
		}

		payload := len(c.lpns) * flash.SectorBytes
		unit := d.serialUnit(plane)
		base := d.cfg.Timing.ProgramPool(d.cfg.Pools[c.pool], int(loc.Page))
		prog := d.opCost(base, perPlaneOps[unit])
		perPlaneOps[unit]++
		end := d.scheduleWrite(opsStart, plane, d.cfg.Timing.Transfer(payload), gcNs+prog, c.pageSize)
		if end > finish {
			finish = end
		}
	}
	return finish, nil
}

// PrefetchStats reports read-ahead activity: prefetched sectors and how
// many later reads they served.
func (d *Device) PrefetchStats() (prefetched, hits int64) {
	return d.prefetches, d.prefetchHit
}

// readAhead loads the next sequential sectors into the RAM buffer after a
// read ending at endLPN (free of charge: the device fetches them while the
// host is idle). Hits are detected by the buffer probe on later reads.
func (d *Device) readAhead(endLPN int64) {
	if d.cfg.ReadAheadPages <= 0 || d.buffer == nil {
		return
	}
	for i := int64(0); i < int64(d.cfg.ReadAheadPages); i++ {
		d.buffer.writeAllocate(endLPN + i)
		d.prefetches++
	}
}

// readOp is one physical page read derived from a host request. The
// device's readOps scratch accumulates them per request.
type readOp struct {
	plane   int
	pool    int
	payload int
	// loc/mapped identify the physical page for mapped reads — the
	// fault-recovery path needs it to retire the failing block.
	loc    ftl.Loc
	mapped bool
}

// flushPendingReads converts the accumulated unmapped-sector run into read
// ops laid out by the write splitter, then clears the run.
func (d *Device) flushPendingReads() {
	if len(d.pendingLPNs) == 0 {
		return
	}
	for _, c := range d.splitWrite(d.pendingLPNs) {
		plane := d.rrPlane % len(d.planes)
		d.rrPlane++
		d.readOps = append(d.readOps, readOp{plane: plane, pool: c.pool, payload: len(c.lpns) * flash.SectorBytes})
	}
	d.pendingLPNs = d.pendingLPNs[:0]
}

// serveRead reads the physical pages backing the request. Mapped sectors are
// read wherever (and at whatever page size) they were written; unmapped
// sectors — reads of never-written data — are charged as if laid out by the
// write splitter.
func (d *Device) serveRead(opsStart int64, lpns []int64) (int64, error) {
	for _, lpn := range lpns {
		opsStart += d.mapAccess(lpn, false)
	}
	d.readOps = d.readOps[:0]
	d.pendingLPNs = d.pendingLPNs[:0] // unmapped run
	var lastLoc ftl.Loc
	haveLast := false
	hitSectors := 0
	prefetched := d.cfg.ReadAheadPages > 0 && d.buffer != nil && len(lpns) > 0 && lpns[0] == d.lastReadEnd
	for _, lpn := range lpns {
		if d.writeBuf != nil && d.writeBuf.holds(lpn) {
			// Dirty in the write buffer: served from RAM.
			hitSectors++
			continue
		}
		if d.buffer != nil && d.buffer.readProbe(lpn) {
			// Served from device RAM: no flash operation, only host transfer.
			hitSectors++
			if prefetched {
				d.prefetchHit++
			}
			continue
		}
		loc, ok := d.ftl.Lookup(lpn)
		if !ok {
			d.pendingLPNs = append(d.pendingLPNs, lpn)
			continue
		}
		if haveLast && loc == lastLoc {
			// Same physical page as the previous sector: one read covers it.
			d.readOps[len(d.readOps)-1].payload += flash.SectorBytes
			continue
		}
		d.flushPendingReads()
		d.readOps = append(d.readOps, readOp{plane: int(loc.Plane), pool: int(loc.Pool), payload: flash.SectorBytes,
			loc: loc, mapped: true})
		lastLoc, haveLast = loc, true
	}
	d.flushPendingReads()

	if n := len(lpns); n > 0 {
		d.lastReadEnd = lpns[n-1] + 1
		d.readAhead(d.lastReadEnd)
	}

	perPlaneOps := d.resetUnitOps()
	finish := opsStart
	if hitSectors > 0 {
		ch := d.rrPlane % d.cfg.Geometry.Channels
		chStart, chEnd := d.channels[ch].Reserve(opsStart, d.cfg.Timing.Transfer(hitSectors*flash.SectorBytes))
		if d.tracer != nil {
			d.tracer.Span("emmc", trackChannel(ch), "ram-hit-xfer", chStart, chEnd)
		}
		if chEnd > finish {
			finish = chEnd
		}
	}
	for _, op := range d.readOps {
		unit := d.serialUnit(op.plane)
		rd := d.opCost(d.cfg.Timing.ReadPool(d.cfg.Pools[op.pool]), perPlaneOps[unit])
		if f := d.readRetryFactor(op.pool); f > 1 {
			rd = int64(float64(rd) * f)
		}
		perPlaneOps[unit]++
		// Uncorrectable read: the page stays unreadable after the retry
		// ladder, so the plane burns the extra attempts and the controller
		// read-scrubs the block into retirement — all charged to this read.
		if op.mapped && d.inj.ReadUncorrectable(d.ftl.PoolAvgPE(op.pool)) {
			rec, rerr := d.ftl.RetireBlockAt(op.loc)
			extra := int64(d.inj.RecoveryReads())*d.cfg.Timing.ReadPool(d.cfg.Pools[op.pool]) +
				d.gcTime(rec, d.cfg.Pools[op.pool].PageBytes)
			rd += extra
			d.metrics.ReadFaults++
			d.metrics.RecoveryNs += extra
			if d.tel != nil {
				d.tel.readFaults.Inc()
				d.tel.recoveryNs.Add(extra)
				d.tel.recoveryHist.Observe(extra)
			}
			d.tracer.Instant("emmc", "device", "read-recovery", opsStart)
			if rerr != nil {
				return 0, fmt.Errorf("emmc: read-scrub recovery: %w (after %w)", rerr, flash.ErrUncorrectable)
			}
		}
		end := d.scheduleRead(opsStart, op.plane, rd, d.cfg.Timing.Transfer(op.payload),
			d.cfg.Pools[op.pool].PageBytes)
		if end > finish {
			finish = end
		}
	}
	return finish, nil
}

// Flush services a cache-flush barrier: it drains every in-flight
// operation (all channels and planes) and then pays the flush cost. The
// journaling stack issues one per fsync/commit.
func (d *Device) Flush(dispatchAt int64) (Result, error) {
	waited := d.freeAt > dispatchAt
	start := dispatchAt
	if d.freeAt > start {
		start = d.freeAt
	}
	for i := range d.channels {
		if f := d.channels[i].FreeAt(); f > start {
			start = f
		}
	}
	for i := range d.planes {
		if f := d.planes[i].FreeAt(); f > start {
			start = f
		}
	}
	serviceStart := start
	// A barrier forces every buffered write to flash first.
	for d.writeBuf != nil {
		ns := d.destageOne()
		if ns <= 0 {
			break
		}
		start += ns
		d.metrics.DestageStallNs += ns
		if d.tel != nil {
			d.tel.destageBarrier.Inc()
		}
	}
	cost := d.cfg.FlushNs
	if cost <= 0 {
		cost = 500_000
	}
	finish := start + cost
	d.freeAt = finish
	d.lastEnd = finish
	d.metrics.Flushes++
	d.metrics.FlushNs += cost
	if d.tel != nil {
		d.tel.flushes.Inc()
		if d.writeBuf != nil {
			d.tel.wbBytes.Set(d.writeBuf.usedBytes)
		}
	}
	d.tracer.Span("emmc", "device", "flush", serviceStart, finish)
	return Result{ServiceStart: serviceStart, Finish: finish, Waited: waited}, nil
}

// runIdleGC cleans threshold pools, absorbing cost into the idle gap the
// device accumulated before this request. It returns the overflow charged
// to the request.
func (d *Device) runIdleGC(arrival int64) (int64, error) {
	budget := arrival - d.lastEnd
	if budget < 0 {
		budget = 0
	}
	var overflow int64
	for plane := 0; plane < len(d.planes); plane++ {
		for pool := range d.cfg.Pools {
			if !d.ftl.NeedsGC(plane, pool) {
				continue
			}
			work, err := d.ftl.CollectGarbage(plane, pool)
			if err != nil {
				return overflow, fmt.Errorf("emmc: idle GC: %w", err)
			}
			if work.Zero() {
				continue
			}
			ns := d.gcTime(work, d.cfg.Pools[pool].PageBytes)
			d.metrics.IdleGC.Add(work)
			d.tracer.Instant("ftl", "gc", "idle-gc", arrival,
				telemetry.L("page", pageLabel(d.cfg.Pools[pool].PageBytes)))
			if ns <= budget {
				budget -= ns
				d.metrics.IdleGCNs += ns
				if d.tel != nil {
					d.tel.idleGCNs.Add(ns)
				}
			} else {
				d.metrics.IdleGCNs += budget
				over := ns - budget
				if d.tel != nil {
					d.tel.idleGCNs.Add(budget)
					d.tel.gcStallNs.Add(over)
				}
				budget = 0
				overflow += over
				d.metrics.GCStallNs += over
			}
		}
	}
	return overflow, nil
}

// deviceSnapshot is the gob layout of a device's dynamic state. The RAM
// buffer and mapping cache restart cold (they are caches; only their
// statistics would change, and those reset too).
type deviceSnapshot struct {
	Config      Config
	FTL         *ftl.SnapshotData
	FreeAt      int64
	LastEnd     int64
	RRPlane     int
	Metrics     Metrics
	ChannelFree []int64
	ChannelBusy []int64
	PlaneFree   []int64
	PlaneBusy   []int64
	// FaultDraws archives the injector's decision-stream position so a
	// restored device resumes the exact fault sequence (Skip fast-forward).
	FaultDraws int64
}

// Snapshot archives the device (configuration, FTL state, timing cursors,
// metrics) to w, so an aged device can be resumed later without replaying
// its history.
func (d *Device) Snapshot(w io.Writer) error {
	snap := deviceSnapshot{
		Config:     d.cfg,
		FTL:        d.ftl.SnapshotData(),
		FreeAt:     d.freeAt,
		LastEnd:    d.lastEnd,
		RRPlane:    d.rrPlane,
		Metrics:    d.metrics,
		FaultDraws: d.inj.Draws(),
	}
	for i := range d.channels {
		f, b := d.channels[i].State()
		snap.ChannelFree = append(snap.ChannelFree, f)
		snap.ChannelBusy = append(snap.ChannelBusy, b)
	}
	for i := range d.planes {
		f, b := d.planes[i].State()
		snap.PlaneFree = append(snap.PlaneFree, f)
		snap.PlaneBusy = append(snap.PlaneBusy, b)
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("emmc: encoding snapshot: %w", err)
	}
	return nil
}

// RestoreSnapshot rebuilds a device from a Snapshot stream.
func RestoreSnapshot(r io.Reader) (*Device, error) {
	var snap deviceSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("emmc: decoding snapshot: %w", err)
	}
	if err := snap.Config.Validate(); err != nil {
		return nil, fmt.Errorf("emmc: snapshot config: %w", err)
	}
	if snap.FTL == nil {
		return nil, fmt.Errorf("emmc: snapshot missing FTL state")
	}
	f, err := ftl.RestoreFromData(snap.FTL)
	if err != nil {
		return nil, err
	}
	inj, err := faults.New(snap.Config.Faults)
	if err != nil {
		return nil, err
	}
	inj.Skip(snap.FaultDraws)
	f.SetFaults(inj)
	d := &Device{
		cfg:       snap.Config,
		ftl:       f,
		inj:       inj,
		channels:  make([]sim.Resource, snap.Config.Geometry.Channels),
		planes:    make([]sim.Resource, snap.Config.Geometry.Planes()),
		buffer:    newRAMBuffer(snap.Config.RAMBufferBytes),
		mapCache:  ftl.NewMapCache(snap.Config.MapCacheBytes),
		relFactor: make([]float64, len(snap.Config.Pools)),
		relPE:     make([]float64, len(snap.Config.Pools)),
		freeAt:    snap.FreeAt,
		lastEnd:   snap.LastEnd,
		rrPlane:   snap.RRPlane,
		metrics:   snap.Metrics,
	}
	if len(snap.ChannelFree) != len(d.channels) || len(snap.PlaneFree) != len(d.planes) {
		return nil, fmt.Errorf("emmc: snapshot resource counts mismatch")
	}
	for i := range d.channels {
		d.channels[i].SetState(snap.ChannelFree[i], snap.ChannelBusy[i])
	}
	for i := range d.planes {
		d.planes[i].SetState(snap.PlaneFree[i], snap.PlaneBusy[i])
	}
	return d, nil
}
