package emmc

import (
	"testing"

	"emmcio/internal/trace"
)

func cfgBuffered(capBytes int64) Config {
	c := cfg4K()
	c.WriteBufferBytes = capBytes
	return c
}

// Buffered writes are acknowledged at RAM speed (transfer only), far below
// the 1385 µs flash program.
func TestWriteBufferAbsorbsWrites(t *testing.T) {
	d, _ := New(cfgBuffered(1 << 20))
	res, err := d.Submit(wr(0, 0, 4096))
	if err != nil {
		t.Fatal(err)
	}
	tm := testTiming()
	want := tm.RequestOverheadNs + tm.Transfer(4096)
	if got := res.Finish - res.ServiceStart; got != want {
		t.Fatalf("buffered write service %d ns, want %d (RAM ack)", got, want)
	}
	if d.Metrics().BufferedWrites != 1 {
		t.Fatal("write not counted as buffered")
	}
}

// Reads of buffered-dirty sectors come from RAM.
func TestWriteBufferReadHit(t *testing.T) {
	d, _ := New(cfgBuffered(1 << 20))
	w, _ := d.Submit(wr(0, 0, 4096))
	r, err := d.Submit(rd(w.Finish+1, 0, 4096))
	if err != nil {
		t.Fatal(err)
	}
	tm := testTiming()
	// RAM hit: overhead + transfer, no flash read.
	if got := r.Finish - r.ServiceStart; got > tm.RequestOverheadNs+tm.Transfer(4096) {
		t.Fatalf("dirty-sector read took %d ns; should be served from RAM", got)
	}
}

// Idle gaps drain the buffer: after a long gap everything is destaged and
// the data is readable from flash.
func TestWriteBufferIdleDestage(t *testing.T) {
	d, _ := New(cfgBuffered(1 << 20))
	w, _ := d.Submit(wr(0, 0, 4096))
	// One second later the destage has happened inside the gap.
	r2, err := d.Submit(wr(w.Finish+1_000_000_000, 800, 4096))
	if err != nil {
		t.Fatal(err)
	}
	_ = r2
	m := d.Metrics()
	if m.DestageIdleNs == 0 {
		t.Fatal("idle gap did not destage")
	}
	if d.FTLStats().HostProgrammedPages == 0 {
		t.Fatal("destage never reached the FTL")
	}
}

// A full buffer stalls the incoming write on synchronous destage.
func TestWriteBufferFullStalls(t *testing.T) {
	d, _ := New(cfgBuffered(8 * 4096)) // 8 sectors of RAM
	at := int64(0)
	for i := 0; i < 12; i++ {
		at += 100_000 // back to back: no idle budget to destage
		if _, err := d.Submit(wr(at, uint64(i)*800, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if d.Metrics().DestageStallNs == 0 {
		t.Fatal("overflowing the buffer never stalled")
	}
}

// A flush barrier forces all dirty data to flash.
func TestFlushDrainsWriteBuffer(t *testing.T) {
	d, _ := New(cfgBuffered(1 << 20))
	d.Submit(wr(0, 0, 4096))
	d.Submit(wr(1, 800, 4096))
	fl, err := d.Flush(2)
	if err != nil {
		t.Fatal(err)
	}
	if d.FTLStats().HostProgrammedPages != 2 {
		t.Fatalf("%d pages on flash after flush, want 2", d.FTLStats().HostProgrammedPages)
	}
	tm := testTiming()
	if fl.Finish-fl.ServiceStart < 2*tm.Program(4096) {
		t.Fatal("flush did not pay the destage cost")
	}
}

// With smartphone spacing, the buffer hides nearly the whole write path —
// exactly why §V-B disables it when comparing page-size schemes.
func TestWriteBufferHidesWriteLatency(t *testing.T) {
	run := func(buf int64) float64 {
		c := cfg4K()
		c.WriteBufferBytes = buf
		d, _ := New(c)
		at := int64(0)
		var sum int64
		for i := 0; i < 200; i++ {
			at += 50_000_000 // 50 ms gaps
			res, err := d.Submit(trace.Request{Arrival: at, LBA: uint64(i) * 800, Size: 8192, Op: trace.Write})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Finish - res.ServiceStart
		}
		return float64(sum) / 200
	}
	plain := run(0)
	buffered := run(4 << 20)
	if buffered > plain/3 {
		t.Fatalf("buffered mean write %d ns not well below unbuffered %d ns",
			int64(buffered), int64(plain))
	}
}
