package emmc

import (
	"bytes"
	"testing"

	"emmcio/internal/faults"
	"emmcio/internal/reliability"
)

// Snapshot equivalence must hold under fault injection: the snapshot
// archives the injector's draw count and restore fast-forwards a fresh
// stream to that position, so the interrupted run's fault sequence — and
// with it every result and metric — matches the uninterrupted run exactly.
func TestSnapshotResumesFaultStream(t *testing.T) {
	mkDev := func() *Device {
		c := cfg4K()
		c.Pools[0].BlocksPerPlane = 8
		c.Pools[0].PagesPerBlock = 16
		// Wear-flat bases in (0,1): every program and erase draws from the
		// decision stream, so stream-position bugs cannot hide.
		c.Faults = &faults.Config{Seed: 21, Rate: 1, ProgramFailBase: 0.01, EraseFailBase: 0.05}
		dev, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		return dev
	}
	submit := func(dev *Device, i int) Result {
		res, err := dev.Submit(wr(int64(i+1)*1_000_000, uint64(i%16)*8, 4096))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		return res
	}

	const total, half = 1200, 600
	ref := mkDev()
	var refResults []Result
	for i := 0; i < total; i++ {
		refResults = append(refResults, submit(ref, i))
	}
	if ref.FaultCounts().Total() == 0 {
		t.Fatal("reference run injected nothing; the test exercises no fault state")
	}

	dev := mkDev()
	var gotResults []Result
	for i := 0; i < half; i++ {
		gotResults = append(gotResults, submit(dev, i))
	}
	var buf bytes.Buffer
	if err := dev.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := half; i < total; i++ {
		gotResults = append(gotResults, submit(restored, i))
	}

	for i := range refResults {
		if refResults[i] != gotResults[i] {
			t.Fatalf("request %d diverged after restore:\nref %+v\ngot %+v",
				i, refResults[i], gotResults[i])
		}
	}
	if rm, gm := ref.Metrics(), restored.Metrics(); rm != gm {
		t.Fatalf("metrics diverged:\nref %+v\ngot %+v", rm, gm)
	}
	if rs, gs := ref.FTLStats(), restored.FTLStats(); rs != gs {
		t.Fatalf("FTL stats diverged:\nref %+v\ngot %+v", rs, gs)
	}
}

// An uncorrectable read charges the retry ladder plus relocation on the
// timeline, retires the failing block, and counts in the device metrics —
// while the data stays readable afterwards (read scrubbing, not data loss).
func TestUncorrectableReadRecovery(t *testing.T) {
	model := reliability.Default()
	c := cfg4K()
	c.Reliability = model
	// Only the read path can fire: program/erase are suppressed with
	// denormal-small bases (zero would select the defaults).
	c.Faults = &faults.Config{
		Seed: 2, Rate: 1, ProgramFailBase: 1e-300, EraseFailBase: 1e-300, Model: model,
	}
	dev, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := dev.Submit(wr(int64(i+1)*1_000_000, uint64(i)*8, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	// Age past the point where the reliability model's read-failure curve
	// saturates; the configured scale then fails 2% of mapped reads.
	pools := dev.Config().Pools
	for pool, spec := range pools {
		blocks := int64(spec.BlocksPerPlane * dev.Config().Geometry.Planes())
		dev.AddArtificialWear(pool, int64(1.5*model.Endurance*float64(blocks)))
	}
	at := int64(1_000_000_000)
	for i := 0; i < 1000; i++ {
		at += 10_000_000
		if _, err := dev.Submit(rd(at, uint64(i%64)*8, 4096)); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	m := dev.Metrics()
	if m.ReadFaults == 0 {
		t.Fatal("no uncorrectable reads at 1.5x endurance")
	}
	if m.RecoveryNs == 0 {
		t.Fatal("read faults charged no recovery time")
	}
	if dev.FTLStats().RetiredBlocks == 0 {
		t.Fatal("read scrubbing retired no blocks")
	}
	// Every LBA must still read back: recovery relocates, never loses.
	for i := 0; i < 64; i++ {
		at += 10_000_000
		if _, err := dev.Submit(rd(at, uint64(i)*8, 4096)); err != nil {
			t.Fatalf("post-recovery read %d: %v", i, err)
		}
	}
}
