package emmc

import (
	"bytes"
	"testing"

	"emmcio/internal/trace"
)

// Snapshot equivalence: interrupting a replay with a snapshot/restore cycle
// must leave the remainder of the replay byte-identical to an uninterrupted
// run — the FTL mapping, wear, timing cursors, and metrics all survive.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	mkReqs := func() []trace.Request {
		var reqs []trace.Request
		at := int64(0)
		for i := 0; i < 400; i++ {
			at += int64(1_000_000 + i*10_000)
			op := trace.Write
			if i%3 == 0 {
				op = trace.Read
			}
			reqs = append(reqs, trace.Request{
				Arrival: at,
				LBA:     uint64(i%50) * 64,
				Size:    uint32((i%4 + 1) * 4096),
				Op:      op,
			})
		}
		return reqs
	}

	// Uninterrupted run.
	ref, _ := New(cfgHPS())
	var refResults []Result
	for _, r := range mkReqs() {
		res, err := ref.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		refResults = append(refResults, res)
	}

	// Interrupted run: snapshot at the halfway point, restore, continue.
	half := 200
	dev, _ := New(cfgHPS())
	reqs := mkReqs()
	var gotResults []Result
	for _, r := range reqs[:half] {
		res, err := dev.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		gotResults = append(gotResults, res)
	}
	var buf bytes.Buffer
	if err := dev.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs[half:] {
		res, err := restored.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		gotResults = append(gotResults, res)
	}

	for i := range refResults {
		if refResults[i] != gotResults[i] {
			t.Fatalf("request %d diverged after restore:\nref %+v\ngot %+v",
				i, refResults[i], gotResults[i])
		}
	}
	if rm, gm := ref.Metrics(), restored.Metrics(); rm != gm {
		t.Fatalf("metrics diverged:\nref %+v\ngot %+v", rm, gm)
	}
	if rs, gs := ref.FTLStats(), restored.FTLStats(); rs != gs {
		t.Fatalf("FTL stats diverged:\nref %+v\ngot %+v", rs, gs)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := RestoreSnapshot(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSnapshotPreservesWear(t *testing.T) {
	c := cfg4K()
	c.Pools[0].BlocksPerPlane = 8
	c.Pools[0].PagesPerBlock = 16
	dev, _ := New(c)
	at := int64(0)
	for i := 0; i < 3000; i++ {
		at += 1_000_000
		if _, err := dev.Submit(wr(at, uint64(i%16)*8, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	before := dev.Wear(0)
	if before.TotalErases == 0 {
		t.Fatal("workload produced no wear")
	}
	var buf bytes.Buffer
	if err := dev.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if after := restored.Wear(0); after != before {
		t.Fatalf("wear changed across snapshot: %+v vs %+v", before, after)
	}
}
