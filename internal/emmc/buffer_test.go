package emmc

import (
	"testing"

	"emmcio/internal/trace"
)

func TestRAMBufferLRU(t *testing.T) {
	b := newRAMBuffer(3 * 4096)
	if b.readProbe(1) {
		t.Fatal("cold cache hit")
	}
	if !b.readProbe(1) {
		t.Fatal("warm cache miss")
	}
	b.readProbe(2)
	b.readProbe(3) // cache now [3 2 1]
	b.readProbe(4) // evicts 1
	if b.readProbe(1) {
		t.Fatal("evicted sector still cached")
	}
	if !b.readProbe(4) || !b.readProbe(3) {
		t.Fatal("recently used sectors evicted")
	}
}

func TestRAMBufferWriteAllocate(t *testing.T) {
	b := newRAMBuffer(4 * 4096)
	b.writeAllocate(10)
	if !b.readProbe(10) {
		t.Fatal("written sector not cached")
	}
}

func TestRAMBufferHitRate(t *testing.T) {
	b := newRAMBuffer(8 * 4096)
	b.readProbe(1) // miss
	b.readProbe(1) // hit
	b.readProbe(1) // hit
	b.readProbe(2) // miss
	if got := b.HitRate(); got != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", got)
	}
}

func TestRAMBufferDisabled(t *testing.T) {
	if newRAMBuffer(0) != nil {
		t.Fatal("zero-byte buffer should be nil")
	}
	d, _ := New(cfg4K())
	if d.BufferHitRate() != 0 {
		t.Fatal("disabled buffer should report zero hit rate")
	}
}

// A buffered device serves repeated reads of hot data faster than an
// unbuffered one, and the hit rate tracks the workload's temporal locality —
// the Implication-3 mechanism.
func TestBufferedReadsFaster(t *testing.T) {
	run := func(bufBytes int64) (int64, float64) {
		c := cfg4K()
		c.RAMBufferBytes = bufBytes
		d, _ := New(c)
		at := int64(0)
		w, _ := d.Submit(wr(at, 0, 4096))
		at = w.Finish
		var total int64
		for i := 0; i < 50; i++ {
			at += 10_000_000
			r, err := d.Submit(rd(at, 0, 4096))
			if err != nil {
				t.Fatal(err)
			}
			total += r.Finish - r.ServiceStart
		}
		return total, d.BufferHitRate()
	}
	cold, _ := run(0)
	warm, hitRate := run(1 << 20)
	if warm >= cold {
		t.Fatalf("buffered reads (%d ns) not faster than unbuffered (%d ns)", warm, cold)
	}
	if hitRate < 0.9 {
		t.Fatalf("hot single-sector workload hit rate %.2f, want ~1", hitRate)
	}
}

// Random reads over a huge address space get almost no buffer benefit — the
// low-locality side of Implication 3.
func TestBufferUselessWithoutLocality(t *testing.T) {
	c := cfg4K()
	c.RAMBufferBytes = 1 << 20
	d, _ := New(c)
	at := int64(0)
	for i := 0; i < 200; i++ {
		at += 10_000_000
		if _, err := d.Submit(rd(at, uint64(i)*100000*trace.SectorsPerPage%(1<<20), 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if hr := d.BufferHitRate(); hr > 0.05 {
		t.Fatalf("random-read hit rate %.2f, want ~0", hr)
	}
}
