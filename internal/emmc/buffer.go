package emmc

// ramBuffer is a device-internal LRU cache over 4 KB sectors, used to study
// Implication 3: with the weak localities of smartphone traces (Table IV), a
// large RAM buffer inside the eMMC earns a low hit rate. The case-study
// replays (Fig. 8/9) run with the buffer disabled, exactly as the paper
// disables SSDsim's RAM buffer layer.
//
// Policy: reads probe the cache and allocate on miss; writes allocate
// (write-through — the flash program always happens, so write timing is
// unchanged and only read hits save work).
type ramBuffer struct {
	capacity int // in sectors
	table    map[int64]*bufNode
	head     *bufNode // most recently used
	tail     *bufNode // least recently used

	hits    int64
	lookups int64
}

type bufNode struct {
	lpn        int64
	prev, next *bufNode
}

// newRAMBuffer returns a buffer holding capBytes worth of sectors, or nil
// when capBytes is too small to hold a single sector.
func newRAMBuffer(capBytes int64) *ramBuffer {
	sectors := int(capBytes / 4096)
	if sectors < 1 {
		return nil
	}
	return &ramBuffer{capacity: sectors, table: make(map[int64]*bufNode, sectors)}
}

func (b *ramBuffer) detach(n *bufNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		b.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		b.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (b *ramBuffer) pushFront(n *bufNode) {
	n.next = b.head
	if b.head != nil {
		b.head.prev = n
	}
	b.head = n
	if b.tail == nil {
		b.tail = n
	}
}

// readProbe returns whether the sector was cached, updating recency and
// allocating on miss.
func (b *ramBuffer) readProbe(lpn int64) bool {
	b.lookups++
	if n, ok := b.table[lpn]; ok {
		b.hits++
		b.detach(n)
		b.pushFront(n)
		return true
	}
	b.insert(lpn)
	return false
}

// writeAllocate caches the sector being written.
func (b *ramBuffer) writeAllocate(lpn int64) {
	if n, ok := b.table[lpn]; ok {
		b.detach(n)
		b.pushFront(n)
		return
	}
	b.insert(lpn)
}

func (b *ramBuffer) insert(lpn int64) {
	if len(b.table) >= b.capacity {
		evict := b.tail
		b.detach(evict)
		delete(b.table, evict.lpn)
	}
	n := &bufNode{lpn: lpn}
	b.table[lpn] = n
	b.pushFront(n)
}

// HitRate returns the read hit fraction so far.
func (b *ramBuffer) HitRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.hits) / float64(b.lookups)
}
