package emmc

import (
	"emmcio/internal/flash"
	"emmcio/internal/trace"
)

// The write-buffer layer reproduces SSDsim's "RAM buffer" that §V-B of the
// paper disables for the case study: writes are acknowledged once their
// payload lands in controller RAM, and the flash programs happen later —
// during idle gaps, or synchronously when the buffer fills (or a flush
// barrier arrives). Disabling it makes every write pay flash latency, which
// is the fair setting for comparing page-size organizations; enabling it
// shows how much of the write path a little RAM can hide.

// pendingWrite is one buffered host write chunk awaiting destage.
type pendingWrite struct {
	pool int
	lpns []int64
}

type writeBuffer struct {
	capBytes  int64
	usedBytes int64
	// queue[head:] holds the pending chunks in FIFO order; popped slots are
	// compacted away once the drained prefix dominates, so the backing array
	// stays bounded by the peak queue depth.
	queue []pendingWrite
	head  int
	// freeLPNs recycles the lpn storage of destaged chunks, so admitting a
	// chunk allocates nothing in steady state.
	freeLPNs [][]int64
	// index of buffered (not yet destaged) sectors for read hits and
	// overwrite coalescing.
	dirty map[int64]bool

	destagedPages int64
	absorbed      int64 // writes acknowledged from RAM
}

// pending reports the queued chunk count.
func (b *writeBuffer) pending() int { return len(b.queue) - b.head }

// peek returns the oldest chunk without removing it.
func (b *writeBuffer) peek() pendingWrite { return b.queue[b.head] }

// grabLPNs returns a length-n slice, recycled when a fitting one is free.
func (b *writeBuffer) grabLPNs(n int) []int64 {
	if k := len(b.freeLPNs); k > 0 {
		s := b.freeLPNs[k-1]
		b.freeLPNs = b.freeLPNs[:k-1]
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]int64, n)
}

// recycleLPNs returns a drained chunk's lpn storage to the free list.
func (b *writeBuffer) recycleLPNs(s []int64) {
	if cap(s) > 0 {
		b.freeLPNs = append(b.freeLPNs, s[:0])
	}
}

func newWriteBuffer(capBytes int64) *writeBuffer {
	if capBytes < trace.PageSize {
		return nil
	}
	return &writeBuffer{capBytes: capBytes, dirty: make(map[int64]bool)}
}

// holds reports whether the sector is dirty in the buffer.
func (b *writeBuffer) holds(lpn int64) bool { return b.dirty[lpn] }

// spaceFor reports whether n more bytes fit.
func (b *writeBuffer) spaceFor(n int64) bool { return b.usedBytes+n <= b.capBytes }

// add stashes a chunk, copying lpns into recycled storage.
func (b *writeBuffer) add(pool int, lpns []int64) {
	cp := b.grabLPNs(len(lpns))
	copy(cp, lpns)
	b.queue = append(b.queue, pendingWrite{pool: pool, lpns: cp})
	for _, lpn := range cp {
		b.dirty[lpn] = true
	}
	b.usedBytes += int64(len(cp)) * flash.SectorBytes
	b.absorbed++
}

// pop removes the oldest chunk. The caller owns the returned lpns slice and
// should hand it back via recycleLPNs when done.
func (b *writeBuffer) pop() (pendingWrite, bool) {
	if b.head == len(b.queue) {
		return pendingWrite{}, false
	}
	pw := b.queue[b.head]
	b.queue[b.head] = pendingWrite{} // unpin the lpns storage
	b.head++
	if b.head == len(b.queue) {
		b.queue = b.queue[:0]
		b.head = 0
	} else if b.head >= 64 && b.head*2 >= len(b.queue) {
		n := copy(b.queue, b.queue[b.head:])
		clearTail := b.queue[n:]
		for i := range clearTail {
			clearTail[i] = pendingWrite{}
		}
		b.queue = b.queue[:n]
		b.head = 0
	}
	for _, lpn := range pw.lpns {
		delete(b.dirty, lpn)
	}
	b.usedBytes -= int64(len(pw.lpns)) * flash.SectorBytes
	b.destagedPages++
	return pw, true
}

// destageOne programs the oldest buffered chunk into the FTL and returns
// the flash time it consumed (program + any GC), or 0 when empty.
func (d *Device) destageOne() int64 {
	pw, ok := d.writeBuf.pop()
	if !ok {
		return 0
	}
	loc, gcWork, err := d.ftl.Write(d.rrPlane%len(d.planes), pw.pool, pw.lpns)
	d.rrPlane++
	if err != nil {
		// Out of space mid-destage: surface as a stall the size of an
		// erase so the condition is visible without failing the replay.
		d.writeBuf.recycleLPNs(pw.lpns)
		return d.cfg.Timing.EraseNs
	}
	ns := d.cfg.Timing.ProgramPool(d.cfg.Pools[pw.pool], int(loc.Page))
	if !gcWork.Zero() {
		g := d.gcTime(gcWork, d.cfg.Pools[pw.pool].PageBytes)
		d.metrics.ForegroundGC.Add(gcWork)
		ns += g
	}
	ns += d.cfg.Timing.Transfer(len(pw.lpns) * flash.SectorBytes)
	d.writeBuf.recycleLPNs(pw.lpns)
	return ns
}

// destageIdle uses the inter-arrival gap to drain the buffer, mirroring the
// idle-GC policy: an entry is destaged only when its estimated cost fits
// the remaining gap. Returns unused budget.
func (d *Device) destageIdle(budget int64) int64 {
	for d.writeBuf != nil && d.writeBuf.pending() > 0 {
		head := d.writeBuf.peek()
		estimate := d.cfg.Timing.Program(d.cfg.Pools[head.pool].PageBytes) +
			d.cfg.Timing.Transfer(len(head.lpns)*flash.SectorBytes)
		if estimate > budget {
			break
		}
		ns := d.destageOne()
		if ns <= 0 {
			break
		}
		budget -= ns
		d.metrics.DestageIdleNs += ns
		if d.tel != nil {
			d.tel.destageIdle.Inc()
		}
	}
	return budget
}

// destageForSpace synchronously frees buffer room for n bytes, returning
// the stall charged to the waiting request.
func (d *Device) destageForSpace(n int64) int64 {
	var stall int64
	for d.writeBuf != nil && !d.writeBuf.spaceFor(n) {
		ns := d.destageOne()
		if ns <= 0 {
			break
		}
		stall += ns
		d.metrics.DestageStallNs += ns
		if d.tel != nil {
			d.tel.destageSpace.Inc()
		}
	}
	return stall
}
