package emmc

import (
	"testing"
	"testing/quick"

	"emmcio/internal/flash"
	"emmcio/internal/reliability"
	"emmcio/internal/trace"
)

func testTiming() flash.Timing {
	return flash.Timing{
		PerPage: map[int]flash.OpTiming{
			4096: {ReadNs: 160_000, ProgramNs: 1_385_000},
			8192: {ReadNs: 244_000, ProgramNs: 1_491_000},
		},
		EraseNs:           3_800_000,
		TransferNsPerByte: 5,
		CmdOverheadNs:     25_000,
		RequestOverheadNs: 100_000,
		PipelineFactor:    0.65,
	}
}

func cfg4K() Config {
	return Config{
		Geometry:     flash.Geometry{Channels: 2, ChipsPerChannel: 1, DiesPerChip: 2, PlanesPerDie: 2},
		Timing:       testTiming(),
		Pools:        []flash.PoolSpec{{PageBytes: 4096, BlocksPerPlane: 64, PagesPerBlock: 32}},
		GCFreeBlocks: 2,
	}
}

func cfgHPS() Config {
	c := cfg4K()
	c.Pools = []flash.PoolSpec{
		{PageBytes: 8192, BlocksPerPlane: 32, PagesPerBlock: 32},
		{PageBytes: 4096, BlocksPerPlane: 32, PagesPerBlock: 32},
	}
	return c
}

func wr(at int64, lba uint64, size uint32) trace.Request {
	return trace.Request{Arrival: at, LBA: lba, Size: size, Op: trace.Write}
}

func rd(at int64, lba uint64, size uint32) trace.Request {
	return trace.Request{Arrival: at, LBA: lba, Size: size, Op: trace.Read}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	bad := cfgHPS()
	bad.Pools[0], bad.Pools[1] = bad.Pools[1], bad.Pools[0]
	if _, err := New(bad); err == nil {
		t.Fatal("pools not largest-first accepted")
	}
	noTiming := cfg4K()
	noTiming.Pools[0].PageBytes = 16384
	if _, err := New(noTiming); err == nil {
		t.Fatal("pool without timing accepted")
	}
}

func TestSubmitRejectsUnaligned(t *testing.T) {
	d, _ := New(cfg4K())
	if _, err := d.Submit(wr(0, 0, 1000)); err == nil {
		t.Fatal("unaligned size accepted")
	}
	if _, err := d.Submit(wr(0, 0, 0)); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestSingleWriteTiming(t *testing.T) {
	d, _ := New(cfg4K())
	res, err := d.Submit(wr(0, 0, 4096))
	if err != nil {
		t.Fatal(err)
	}
	tm := testTiming()
	want := tm.RequestOverheadNs + tm.Transfer(4096) + tm.Program(4096)
	if res.Finish-res.ServiceStart != want {
		t.Fatalf("service time %d, want %d", res.Finish-res.ServiceStart, want)
	}
	if res.Waited {
		t.Fatal("first request should not wait")
	}
}

func TestFIFOQueueing(t *testing.T) {
	d, _ := New(cfg4K())
	r1, _ := d.Submit(wr(0, 0, 4096))
	r2, err := d.Submit(wr(1, 8, 4096)) // arrives while r1 in service
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Waited {
		t.Fatal("overlapping request should wait")
	}
	if r2.ServiceStart != r1.Finish {
		t.Fatalf("r2 started at %d, want %d (FIFO)", r2.ServiceStart, r1.Finish)
	}
	m := d.Metrics()
	if m.Served != 2 || m.NoWait != 1 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestNoWaitWhenSpaced(t *testing.T) {
	d, _ := New(cfg4K())
	d.Submit(wr(0, 0, 4096))
	res, _ := d.Submit(wr(1_000_000_000, 8, 4096))
	if res.Waited {
		t.Fatal("well-spaced request should not wait")
	}
	if got := d.Metrics().NoWaitRatio(); got != 1.0 {
		t.Fatalf("NoWaitRatio %v, want 1.0", got)
	}
}

// Large requests finish faster on 8 KB pages than on 4 KB pages — the
// mechanism behind Fig. 8's HPS gains.
func TestLargeWriteFasterOnLargePages(t *testing.T) {
	d4, _ := New(cfg4K())
	c8 := cfg4K()
	c8.Pools = []flash.PoolSpec{{PageBytes: 8192, BlocksPerPlane: 32, PagesPerBlock: 32}}
	d8, _ := New(c8)

	const size = 256 * 1024
	r4, err4 := d4.Submit(wr(0, 0, size))
	r8, err8 := d8.Submit(wr(0, 0, size))
	if err4 != nil || err8 != nil {
		t.Fatal(err4, err8)
	}
	s4 := r4.Finish - r4.ServiceStart
	s8 := r8.Finish - r8.ServiceStart
	if s8 >= s4 {
		t.Fatalf("256KB write: 8K pages %d ns, 4K pages %d ns; want 8K faster", s8, s4)
	}
	if ratio := float64(s8) / float64(s4); ratio > 0.75 {
		t.Fatalf("8K/4K service ratio %.2f, want well under 1 for large writes", ratio)
	}
}

// A single-page write is slower on 8 KB pages (1491 vs 1385 µs program),
// the §V argument for keeping 4 KB blocks in HPS.
func TestSmallWriteSlowerOnLargePages(t *testing.T) {
	d4, _ := New(cfg4K())
	c8 := cfg4K()
	c8.Pools = []flash.PoolSpec{{PageBytes: 8192, BlocksPerPlane: 32, PagesPerBlock: 32}}
	d8, _ := New(c8)
	r4, _ := d4.Submit(wr(0, 0, 4096))
	r8, _ := d8.Submit(wr(0, 0, 4096))
	if r8.Finish-r8.ServiceStart <= r4.Finish-r4.ServiceStart {
		t.Fatal("4KB write should be slower on 8KB pages")
	}
}

// HPS routes a 20 KB write as 2x8KB + 1x4KB with no wasted space (§V-A's
// worked example).
func TestHPSSplitNoWaste(t *testing.T) {
	d, _ := New(cfgHPS())
	if _, err := d.Submit(wr(0, 0, 20*1024)); err != nil {
		t.Fatal(err)
	}
	s := d.FTLStats()
	if s.HostPayloadBytes != 20*1024 || s.HostFootprintBytes != 20*1024 {
		t.Fatalf("payload/footprint %d/%d, want 20480/20480", s.HostPayloadBytes, s.HostFootprintBytes)
	}
	if s.HostProgrammedPages != 3 {
		t.Fatalf("%d pages programmed, want 3 (8+8+4)", s.HostProgrammedPages)
	}
}

// On pure 8 KB pages the same 20 KB write consumes 24 KB: utilization 83.3%.
func TestPure8KWaste(t *testing.T) {
	c8 := cfg4K()
	c8.Pools = []flash.PoolSpec{{PageBytes: 8192, BlocksPerPlane: 32, PagesPerBlock: 32}}
	d, _ := New(c8)
	d.Submit(wr(0, 0, 20*1024))
	s := d.FTLStats()
	if s.HostFootprintBytes != 24*1024 {
		t.Fatalf("footprint %d, want 24576", s.HostFootprintBytes)
	}
	got := s.SpaceUtilization()
	if got < 0.833 || got > 0.834 {
		t.Fatalf("space utilization %.4f, want 0.8333 (paper's example)", got)
	}
}

// Read-after-write goes to the written location and is faster than writing.
func TestReadAfterWrite(t *testing.T) {
	d, _ := New(cfg4K())
	w, _ := d.Submit(wr(0, 0, 65536))
	r, err := d.Submit(rd(w.Finish+1, 0, 65536))
	if err != nil {
		t.Fatal(err)
	}
	if r.Finish-r.ServiceStart >= w.Finish-w.ServiceStart {
		t.Fatal("read should be faster than write (160 vs 1385 µs/page)")
	}
}

func TestReadOfUnwrittenData(t *testing.T) {
	d, _ := New(cfg4K())
	r, err := d.Submit(rd(0, 80000, 16384))
	if err != nil {
		t.Fatal(err)
	}
	if r.Finish <= r.ServiceStart {
		t.Fatal("unmapped read must still take time")
	}
}

// Power model: a request after a long gap pays a wake penalty; deep sleep
// costs more than light sleep (Characteristic 4).
func TestPowerModeWakePenalties(t *testing.T) {
	c := cfg4K()
	c.PowerSaving = true
	c.LightSleepAfter = 200 * 1_000_000  // 200 ms
	c.LightWake = 2 * 1_000_000          // 2 ms
	c.DeepSleepAfter = 5_000 * 1_000_000 // 5 s
	c.DeepWake = 8 * 1_000_000           // 8 ms
	d, _ := New(c)

	r0, _ := d.Submit(wr(0, 0, 4096))
	base := r0.Finish - r0.ServiceStart

	// Within the light threshold: no penalty.
	r1, _ := d.Submit(wr(r0.Finish+100*1_000_000, 8, 4096))
	if r1.Finish-r1.ServiceStart != base {
		t.Fatal("no-sleep request should match base service time")
	}
	// Past light threshold.
	r2, _ := d.Submit(wr(r1.Finish+300*1_000_000, 16, 4096))
	if got := r2.Finish - r2.ServiceStart; got != base+c.LightWake {
		t.Fatalf("light wake service %d, want %d", got, base+c.LightWake)
	}
	// Past deep threshold.
	r3, _ := d.Submit(wr(r2.Finish+6_000*1_000_000, 24, 4096))
	if got := r3.Finish - r3.ServiceStart; got != base+c.DeepWake {
		t.Fatalf("deep wake service %d, want %d", got, base+c.DeepWake)
	}
	m := d.Metrics()
	if m.LightWakes != 1 || m.DeepWakes != 1 {
		t.Fatalf("wake counts %+v", m)
	}
}

// GC policies: under sustained small overwrites the foreground policy
// charges GC stalls to requests, while the idle policy absorbs GC into
// inter-arrival gaps (Implication 2).
func TestIdleGCAbsorbsStalls(t *testing.T) {
	run := func(policy GCPolicy) Metrics {
		c := cfg4K()
		c.Pools[0].BlocksPerPlane = 8
		c.Pools[0].PagesPerBlock = 16
		c.GCPolicy = policy
		d, _ := New(c)
		at := int64(0)
		for i := 0; i < 4000; i++ {
			at += 50 * 1_000_000 // 50 ms gaps: plenty of idle time
			if _, err := d.Submit(wr(at, uint64(i%32)*8, 4096)); err != nil {
				t.Fatal(err)
			}
		}
		return d.Metrics()
	}
	fg := run(GCForeground)
	idle := run(GCIdle)
	if fg.GCStallNs == 0 {
		t.Fatal("foreground policy never stalled; workload should trigger GC")
	}
	if idle.IdleGCNs == 0 {
		t.Fatal("idle policy never used idle time")
	}
	if idle.GCStallNs >= fg.GCStallNs {
		t.Fatalf("idle policy stalls (%d ns) not below foreground (%d ns)",
			idle.GCStallNs, fg.GCStallNs)
	}
	if idle.MeanResponseNs() >= fg.MeanResponseNs() {
		t.Fatalf("idle-GC MRT %.0f not below foreground MRT %.0f",
			idle.MeanResponseNs(), fg.MeanResponseNs())
	}
}

// Property: timestamps are always causally ordered and the device never
// travels back in time, for any request stream.
func TestCausalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		d, _ := New(cfgHPS())
		x := uint64(seed)
		at := int64(0)
		var prevFinish int64
		for i := 0; i < 200; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			at += int64(x % 2_000_000)
			pages := int(x%16) + 1
			req := trace.Request{
				Arrival: at,
				LBA:     uint64(x%100000) * 8,
				Size:    uint32(pages * 4096),
				Op:      trace.Op(x % 2),
			}
			res, err := d.Submit(req)
			if err != nil {
				return false
			}
			if res.ServiceStart < at || res.Finish <= res.ServiceStart {
				return false
			}
			if res.ServiceStart < prevFinish && !res.Waited {
				return false
			}
			prevFinish = res.Finish
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitWriteShapes(t *testing.T) {
	d, _ := New(cfgHPS())
	lpns := func(n int) []int64 {
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(i)
		}
		return out
	}
	// 20 KB = 5 sectors -> 8K(2) + 8K(2) + 4K(1).
	chunks := d.splitWrite(lpns(5))
	if len(chunks) != 3 || chunks[0].pageSize != 8192 || chunks[2].pageSize != 4096 {
		t.Fatalf("20KB split %+v", chunks)
	}
	// 4 KB -> single 4K chunk.
	chunks = d.splitWrite(lpns(1))
	if len(chunks) != 1 || chunks[0].pageSize != 4096 {
		t.Fatalf("4KB split %+v", chunks)
	}
	// Pure-8K device pads the tail.
	c8 := cfg4K()
	c8.Pools = []flash.PoolSpec{{PageBytes: 8192, BlocksPerPlane: 32, PagesPerBlock: 32}}
	d8, _ := New(c8)
	chunks = d8.splitWrite(lpns(5))
	if len(chunks) != 3 {
		t.Fatalf("pure-8K 20KB split %+v", chunks)
	}
	if len(chunks[2].lpns) != 1 {
		t.Fatal("tail chunk should hold one sector on a padded 8K page")
	}
}

// Property: splitter conserves sectors and never emits an oversized chunk.
func TestSplitWriteConservationProperty(t *testing.T) {
	d, _ := New(cfgHPS())
	f := func(n uint8) bool {
		count := int(n)%64 + 1
		lpns := make([]int64, count)
		for i := range lpns {
			lpns[i] = int64(i)
		}
		total := 0
		for _, c := range d.splitWrite(lpns) {
			if len(c.lpns) == 0 || len(c.lpns)*4096 > c.pageSize {
				return false
			}
			total += len(c.lpns)
		}
		return total == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitPackedSharedOverhead(t *testing.T) {
	// Two 4K writes packed together pay the per-request firmware overhead
	// once; submitted separately they pay it twice.
	mk := func() *Device {
		d, err := New(cfg4K())
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	packed := mk()
	res, err := packed.SubmitPacked(10, []trace.Request{
		wr(0, 0, 4096), wr(5, 1<<20, 4096),
	})
	if err != nil {
		t.Fatal(err)
	}
	packedEnd := res[len(res)-1].Finish

	solo := mk()
	r1, _ := solo.Submit(wr(0, 0, 4096))
	// Force back-to-back service from the same dispatch instant.
	req2 := wr(5, 1<<20, 4096)
	req2.Arrival = 10
	_ = r1
	r2, _ := solo.Submit(req2)
	if packedEnd >= r2.Finish {
		t.Fatalf("packed command (%d ns) not faster than two commands (%d ns)", packedEnd, r2.Finish)
	}
	if m := packed.Metrics(); m.Served != 2 {
		t.Fatalf("packed members served = %d, want 2", m.Served)
	}
}

func TestSubmitPackedValidation(t *testing.T) {
	d, _ := New(cfg4K())
	if _, err := d.SubmitPacked(0, nil); err == nil {
		t.Fatal("empty pack accepted")
	}
	if _, err := d.SubmitPacked(0, []trace.Request{wr(5, 0, 4096)}); err == nil {
		t.Fatal("member arriving after dispatch accepted")
	}
	if _, err := d.SubmitPacked(5, []trace.Request{wr(0, 0, 1000)}); err == nil {
		t.Fatal("unaligned member accepted")
	}
}

// An SLC-mode pool device serves 4K writes faster than the MLC baseline.
func TestSLCModePoolFaster(t *testing.T) {
	slcCfg := cfg4K()
	slcCfg.Pools[0].SLCMode = true
	slcCfg.Pools[0].PagesPerBlock /= 2
	slc, err := New(slcCfg)
	if err != nil {
		t.Fatal(err)
	}
	mlc, _ := New(cfg4K())
	rs, _ := slc.Submit(wr(0, 0, 4096))
	rm, _ := mlc.Submit(wr(0, 0, 4096))
	if rs.Finish-rs.ServiceStart >= rm.Finish-rm.ServiceStart {
		t.Fatal("SLC-mode write not faster than MLC")
	}
}

// Wear-dependent read retries: a pre-aged device serves reads slower than a
// fresh one; writes are unaffected.
func TestReliabilityAgedReadsSlower(t *testing.T) {
	rel := reliability.Default()
	run := func(wear int64) (readNs, writeNs int64) {
		c := cfg4K()
		c.Reliability = rel
		d, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		if wear > 0 {
			// Average PE = wear / total blocks.
			d.AddArtificialWear(0, wear)
		}
		w, _ := d.Submit(wr(0, 0, 4096))
		r, _ := d.Submit(rd(w.Finish+1_000_000, 0, 4096))
		return r.Finish - r.ServiceStart, w.Finish - w.ServiceStart
	}
	freshR, freshW := run(0)
	// cfg4K has 64 blocks/plane x 8 planes = 512 blocks; push avg PE well
	// past endurance.
	agedR, agedW := run(512 * 2 * 3000)
	if agedR <= freshR {
		t.Fatalf("aged read %d ns not above fresh %d ns", agedR, freshR)
	}
	if agedW != freshW {
		t.Fatalf("write latency changed with wear: %d vs %d", agedW, freshW)
	}
}

// Smartphone-like request spacing leaves the device almost entirely idle —
// the quantitative core of Implications 1 and 2.
func TestUtilizationMostlyIdle(t *testing.T) {
	d, _ := New(cfg4K())
	at := int64(0)
	for i := 0; i < 100; i++ {
		at += 200_000_000 // 200 ms gaps (Characteristic 6)
		if _, err := d.Submit(wr(at, uint64(i)*800, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	u := d.Utilization()
	if u.Device > 0.05 {
		t.Fatalf("device busy fraction %.3f, want nearly idle", u.Device)
	}
	for i, c := range u.Channels {
		if c > 0.05 {
			t.Fatalf("channel %d busy %.3f", i, c)
		}
	}
	if len(u.Planes) != 8 {
		t.Fatalf("%d planes reported", len(u.Planes))
	}
}

func TestUtilizationEmptyDevice(t *testing.T) {
	d, _ := New(cfg4K())
	if u := d.Utilization(); u.Device != 0 || len(u.Channels) != 0 {
		t.Fatal("fresh device should report zero utilization")
	}
}

// The command queue lets independent requests overlap on different planes,
// but with smartphone-like spacing nothing overlaps anyway.
func TestCommandQueueOverlap(t *testing.T) {
	// Two 4K writes arriving together: FIFO serializes them on the device,
	// CQ overlaps them on different planes.
	run := func(cq bool) int64 {
		c := cfg4K()
		c.CommandQueue = cq
		d, _ := New(c)
		r1, _ := d.Submit(wr(0, 0, 4096))
		r2, _ := d.Submit(wr(1, 1<<20, 4096))
		_ = r1
		return r2.Finish
	}
	fifo := run(false)
	cq := run(true)
	if cq >= fifo {
		t.Fatalf("CQ finish %d not below FIFO %d for overlapping requests", cq, fifo)
	}
}

// Same-plane contention still serializes under the command queue: the
// queue removes the device-level barrier, not the physical one.
func TestCommandQueueStillContends(t *testing.T) {
	c := cfg4K()
	c.CommandQueue = true
	d, _ := New(c)
	// Saturate every plane with a big write, then a small one must queue on
	// the resource level.
	big, _ := d.Submit(wr(0, 0, 256*1024))
	small, _ := d.Submit(wr(1, 1<<21, 4096))
	if small.Finish <= small.ServiceStart+d.cfg.Timing.RequestOverheadNs+d.cfg.Timing.Transfer(4096)+d.cfg.Timing.Program(4096) {
		t.Fatal("small write ignored resource contention entirely")
	}
	_ = big
}

// A flush barrier drains all in-flight work before completing.
func TestFlushDrainsDevice(t *testing.T) {
	d, _ := New(cfg4K())
	w, _ := d.Submit(wr(0, 0, 256*1024))
	fl, err := d.Flush(1) // issued while the big write is in flight
	if err != nil {
		t.Fatal(err)
	}
	if fl.ServiceStart < w.Finish {
		t.Fatalf("flush started at %d before the write drained at %d", fl.ServiceStart, w.Finish)
	}
	if !fl.Waited {
		t.Fatal("flush behind a write should report waiting")
	}
	if m := d.Metrics(); m.Flushes != 1 || m.FlushNs != 500_000 {
		t.Fatalf("flush metrics %+v", m)
	}
}

func TestFlushOnIdleDevice(t *testing.T) {
	c := cfg4K()
	c.FlushNs = 200_000
	d, _ := New(c)
	fl, _ := d.Flush(1_000_000)
	if fl.ServiceStart != 1_000_000 || fl.Finish != 1_200_000 {
		t.Fatalf("idle flush %+v", fl)
	}
}

// Read-ahead serves sequential read streams from RAM, and buys nothing for
// random reads — its payoff is the trace's spatial locality.
func TestReadAheadPrefetch(t *testing.T) {
	mk := func() *Device {
		c := cfg4K()
		c.RAMBufferBytes = 1 << 20
		c.ReadAheadPages = 8
		d, _ := New(c)
		return d
	}
	// Sequential stream: after the first read, the rest hit prefetched data.
	seq := mk()
	at := int64(0)
	var seqTotal int64
	for i := 0; i < 10; i++ {
		at += 100_000_000
		r, err := seq.Submit(rd(at, uint64(i)*8, 4096))
		if err != nil {
			t.Fatal(err)
		}
		seqTotal += r.Finish - r.ServiceStart
	}
	if _, hits := seq.PrefetchStats(); hits == 0 {
		t.Fatal("sequential stream never hit prefetched sectors")
	}

	// Random stream: no prefetch hits.
	rnd := mk()
	at = 0
	var rndTotal int64
	for i := 0; i < 10; i++ {
		at += 100_000_000
		r, err := rnd.Submit(rd(at, uint64((i*7919)%100000)*800, 4096))
		if err != nil {
			t.Fatal(err)
		}
		rndTotal += r.Finish - r.ServiceStart
	}
	if _, hits := rnd.PrefetchStats(); hits != 0 {
		t.Fatal("random stream hit prefetches")
	}
	if seqTotal >= rndTotal {
		t.Fatalf("sequential reads (%d ns) not faster than random (%d ns) with read-ahead", seqTotal, rndTotal)
	}
}
