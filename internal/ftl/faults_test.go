package ftl

import (
	"bytes"
	"errors"
	"testing"

	"emmcio/internal/faults"
	"emmcio/internal/flash"
)

// alwaysFail builds an injector whose selected fault kind fires with
// probability 1 (huge base x rate saturates the clamp, so no RNG draw is
// ever made); the other kinds are suppressed with denormal-small bases
// (zero would select the package defaults).
func alwaysFail(t *testing.T, program, erase bool) *faults.Injector {
	t.Helper()
	const off = 1e-300
	cfg := &faults.Config{Seed: 1, Rate: 1, ProgramFailBase: off, EraseFailBase: off, ReadFailScale: off}
	if program {
		cfg.ProgramFailBase = 1e18
	}
	if erase {
		cfg.EraseFailBase = 1e18
	}
	in, err := faults.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// Every program failing burns a page, retires the block, and moves on to
// the next — until the plane has no blocks left and the write reports
// ErrNoSpace instead of panicking or looping forever.
func TestAllProgramsFailingExhaustsPool(t *testing.T) {
	f, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	f.SetFaults(alwaysFail(t, true, false))
	_, _, werr := f.Write(0, 0, []int64{1})
	if werr == nil {
		t.Fatal("write succeeded with every program failing")
	}
	if !errors.Is(werr, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", werr)
	}
	s := f.Stats()
	if s.ProgramFaults == 0 || s.RetiredBlocks == 0 {
		t.Fatalf("no faults accounted: %+v", s)
	}
	if w := f.Wear(0); w.Retired != int(s.RetiredBlocks) {
		t.Fatalf("wear summary retired %d != stats %d", w.Retired, s.RetiredBlocks)
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Nothing was ever stored, so nothing may be mapped.
	if _, ok := f.Lookup(1); ok {
		t.Fatal("failed write left a mapping behind")
	}
}

// Every erase failing retires each GC victim in turn: the free pool only
// shrinks, and sustained overwrites must end in a graceful ErrNoSpace with
// the FTL still self-consistent — this covers the last free block of a
// plane retiring mid-GC.
func TestAllErasesFailingShrinksPoolToNothing(t *testing.T) {
	f, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	f.SetFaults(alwaysFail(t, false, true))
	var werr error
	for i := 0; i < 2000; i++ {
		if _, _, werr = f.Write(0, 0, []int64{int64(i % 3)}); werr != nil {
			break
		}
	}
	if werr == nil {
		t.Fatal("overwrites never ran out of space with every erase failing")
	}
	if !errors.Is(werr, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", werr)
	}
	s := f.Stats()
	if s.EraseFaults == 0 || s.RetiredBlocks == 0 {
		t.Fatalf("no erase faults accounted: %+v", s)
	}
	if s.GC.Erases != 0 {
		t.Fatalf("failed erases counted as completed: %+v", s.GC)
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Static wear leveling's erase path must survive erase failures too.
func TestStaticLevelingSurvivesEraseFaults(t *testing.T) {
	cfg := smallConfig()
	cfg.Wear = WearStatic
	cfg.StaticDelta = 2
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.SetFaults(alwaysFail(t, false, true))
	var werr error
	for i := 0; i < 2000; i++ {
		if _, _, werr = f.Write(0, 0, []int64{int64(i % 3)}); werr != nil {
			break
		}
	}
	if !errors.Is(werr, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", werr)
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Retired-block state must survive a snapshot round trip: the retired
// flags ride in the block dumps and the per-pool retired counters are
// recomputed on restore (pre-fault snapshots decode with zero retired).
func TestSnapshotRoundTripsRetiredBlocks(t *testing.T) {
	f, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Fault every ~30th program so the pool survives long enough to hold
	// live data alongside a few grown-bad blocks.
	in, err := faults.New(&faults.Config{
		Seed: 3, Rate: 1, ProgramFailBase: 0.03, EraseFailBase: 1e-300, ReadFailScale: 1e-300,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.SetFaults(in)
	for i := 0; i < 300; i++ {
		if _, _, err := f.Write(i%2, 0, []int64{int64(i % 5)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if f.Stats().RetiredBlocks == 0 {
		t.Skip("no block retired at this seed; raise the fault base")
	}
	var buf bytes.Buffer
	if err := f.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := RestoreSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if f.Stats() != back.Stats() {
		t.Fatalf("stats differ after restore:\n  %+v\n  %+v", f.Stats(), back.Stats())
	}
	for plane := 0; plane < 2; plane++ {
		a, b := f.Wear(0), back.Wear(0)
		if a != b {
			t.Fatalf("plane %d wear summary differs: %+v vs %+v", plane, a, b)
		}
	}
	for lpn := int64(0); lpn < 5; lpn++ {
		a, okA := f.Lookup(lpn)
		b, okB := back.Lookup(lpn)
		if okA != okB || a != b {
			t.Fatalf("lpn %d mapping differs after restore", lpn)
		}
	}
	// The restored FTL has no injector: it keeps working fault-free.
	if _, _, err := back.Write(0, 0, []int64{99}); err != nil {
		t.Fatal(err)
	}
}

// RetireBlockAt (the read-scrub entry point) retires the addressed block,
// relocating its live data, and is idempotent on already-retired blocks.
func TestRetireBlockAtRelocatesAndIsIdempotent(t *testing.T) {
	f, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	loc, _, err := f.Write(0, 0, []int64{42})
	if err != nil {
		t.Fatal(err)
	}
	w, err := f.RetireBlockAt(loc)
	if err != nil {
		t.Fatal(err)
	}
	if w.Retired != 1 || w.PageMoves == 0 {
		t.Fatalf("retire work %+v, want 1 retirement with relocation", w)
	}
	newLoc, ok := f.Lookup(42)
	if !ok || newLoc == loc {
		t.Fatalf("live data not relocated: %+v ok=%v", newLoc, ok)
	}
	again, err := f.RetireBlockAt(loc)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Zero() {
		t.Fatalf("second retirement did work: %+v", again)
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Identical fault seeds must produce bit-identical FTL outcomes for an
// identical write sequence — the FTL-level leg of the replay determinism
// guarantee.
func TestFaultSequenceDeterministicAtFTLLevel(t *testing.T) {
	run := func() (Stats, faults.Counts, error) {
		f, err := New(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		in, err := faults.New(&faults.Config{Seed: 11, Rate: 1, ProgramFailBase: 0.02, EraseFailBase: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		f.SetFaults(in)
		var lastErr error
		for i := 0; i < 1500; i++ {
			if _, _, lastErr = f.Write(i%2, 0, []int64{int64(i % 4)}); lastErr != nil {
				break
			}
		}
		return f.Stats(), in.Counts(), lastErr
	}
	s1, c1, e1 := run()
	s2, c2, e2 := run()
	if s1 != s2 || c1 != c2 {
		t.Fatalf("diverged:\n  %+v %+v\n  %+v %+v", s1, c1, s2, c2)
	}
	if (e1 == nil) != (e2 == nil) || (e1 != nil && e1.Error() != e2.Error()) {
		t.Fatalf("errors diverged: %v vs %v", e1, e2)
	}
}

// The typed flash sentinels surface through the wrap chain where the fault
// originated the failure.
func TestProgramFaultErrorCarriesSentinel(t *testing.T) {
	cfg := smallConfig()
	cfg.Pools[0].BlocksPerPlane = 3
	cfg.GCFreeBlocks = 1
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.SetFaults(alwaysFail(t, true, false))
	_, _, werr := f.Write(0, 0, []int64{1})
	if werr == nil {
		t.Fatal("want failure")
	}
	if !errors.Is(werr, ErrNoSpace) {
		t.Fatalf("missing ErrNoSpace: %v", werr)
	}
	_ = flash.ErrProgramFail // sentinel only appears when retirement itself fails
}
