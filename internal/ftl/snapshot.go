package ftl

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"emmcio/internal/flash"
)

// Snapshot serialization: the FTL's full state (mapping, block states, free
// lists, statistics) in one gob stream, so an aged device can be archived
// and resumed instead of replaying its history. The configuration is
// embedded and checked on restore.

// PoolSnapshot is the serializable state of one plane-pool.
type PoolSnapshot struct {
	Blocks []flash.BlockState
	Free   []int32
	Active int32
}

// PlaneSnapshot is the serializable state of one plane.
type PlaneSnapshot struct {
	Pools []PoolSnapshot
}

// SnapshotData is the serializable state of the whole FTL; callers embed it
// in their own snapshot structures so one gob stream carries everything.
type SnapshotData struct {
	Config     Config
	Planes     []PlaneSnapshot
	Fwd        map[int64]Loc
	Rev        map[uint64][]int64
	Stats      Stats
	PoolErases []int64
}

// Canonical gob encoding. The Fwd and Rev maps would otherwise serialize
// in random iteration order, and device snapshots are content-addressed —
// equal state must encode to equal bytes — so SnapshotData encodes through
// a wire struct whose map entries are flattened to key-sorted slices. The
// Rev value slices keep their FTL-maintained order (programming order on
// the page), which is already deterministic.

type fwdPair struct {
	LPN int64
	Loc Loc
}

type revPair struct {
	Key  uint64
	LPNs []int64
}

type snapshotWire struct {
	Config     Config
	Planes     []PlaneSnapshot
	Fwd        []fwdPair
	Rev        []revPair
	Stats      Stats
	PoolErases []int64
}

// GobEncode implements gob.GobEncoder with a deterministic byte form.
func (s *SnapshotData) GobEncode() ([]byte, error) {
	w := snapshotWire{
		Config:     s.Config,
		Planes:     s.Planes,
		Stats:      s.Stats,
		PoolErases: s.PoolErases,
	}
	w.Fwd = make([]fwdPair, 0, len(s.Fwd))
	for lpn, loc := range s.Fwd {
		w.Fwd = append(w.Fwd, fwdPair{LPN: lpn, Loc: loc})
	}
	sort.Slice(w.Fwd, func(i, j int) bool { return w.Fwd[i].LPN < w.Fwd[j].LPN })
	w.Rev = make([]revPair, 0, len(s.Rev))
	for key, lpns := range s.Rev {
		w.Rev = append(w.Rev, revPair{Key: key, LPNs: lpns})
	}
	sort.Slice(w.Rev, func(i, j int) bool { return w.Rev[i].Key < w.Rev[j].Key })
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder for the canonical wire form.
func (s *SnapshotData) GobDecode(data []byte) error {
	var w snapshotWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	*s = SnapshotData{
		Config:     w.Config,
		Planes:     w.Planes,
		Stats:      w.Stats,
		PoolErases: w.PoolErases,
	}
	s.Fwd = make(map[int64]Loc, len(w.Fwd))
	for _, p := range w.Fwd {
		s.Fwd[p.LPN] = p.Loc
	}
	s.Rev = make(map[uint64][]int64, len(w.Rev))
	for _, p := range w.Rev {
		s.Rev[p.Key] = p.LPNs
	}
	return nil
}

// SnapshotData exports the FTL state.
func (f *FTL) SnapshotData() *SnapshotData {
	snap := &SnapshotData{
		Config:     f.cfg,
		Fwd:        f.fwd,
		Rev:        f.rev,
		Stats:      f.stats,
		PoolErases: f.poolErases,
	}
	for pi := range f.planes {
		var ps PlaneSnapshot
		for qi := range f.planes[pi].pools {
			pool := &f.planes[pi].pools[qi]
			q := PoolSnapshot{Free: pool.free, Active: pool.active}
			for _, blk := range pool.blocks {
				q.Blocks = append(q.Blocks, blk.Dump())
			}
			ps.Pools = append(ps.Pools, q)
		}
		snap.Planes = append(snap.Planes, ps)
	}
	return snap
}

// Snapshot writes the FTL state to w as one gob message.
func (f *FTL) Snapshot(w io.Writer) error {
	return gob.NewEncoder(w).Encode(f.SnapshotData())
}

// RestoreSnapshot rebuilds an FTL from a stream written by Snapshot.
func RestoreSnapshot(r io.Reader) (*FTL, error) {
	var snap SnapshotData
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("ftl: decoding snapshot: %w", err)
	}
	return RestoreFromData(&snap)
}

// RestoreFromData rebuilds an FTL from exported snapshot data.
func RestoreFromData(snap *SnapshotData) (*FTL, error) {
	if err := snap.Config.Validate(); err != nil {
		return nil, fmt.Errorf("ftl: snapshot config: %w", err)
	}
	if len(snap.Planes) != snap.Config.Geometry.Planes() {
		return nil, fmt.Errorf("ftl: snapshot has %d planes for a %d-plane geometry",
			len(snap.Planes), snap.Config.Geometry.Planes())
	}
	f := &FTL{
		cfg:        snap.Config,
		planes:     make([]planeState, len(snap.Planes)),
		fwd:        snap.Fwd,
		rev:        snap.Rev,
		stats:      snap.Stats,
		poolErases: snap.PoolErases,
	}
	if f.fwd == nil {
		f.fwd = make(map[int64]Loc)
	}
	if f.rev == nil {
		f.rev = make(map[uint64][]int64)
	}
	if len(f.poolErases) != len(snap.Config.Pools) {
		f.poolErases = make([]int64, len(snap.Config.Pools))
	}
	for pi, ps := range snap.Planes {
		if len(ps.Pools) != len(snap.Config.Pools) {
			return nil, fmt.Errorf("ftl: snapshot plane %d has %d pools, config %d",
				pi, len(ps.Pools), len(snap.Config.Pools))
		}
		pools := make([]poolState, len(ps.Pools))
		for qi, q := range ps.Pools {
			spec := snap.Config.Pools[qi]
			if len(q.Blocks) != spec.BlocksPerPlane {
				return nil, fmt.Errorf("ftl: snapshot pool %d/%d has %d blocks, spec %d",
					pi, qi, len(q.Blocks), spec.BlocksPerPlane)
			}
			pool := poolState{spec: spec, free: q.Free, active: q.Active}
			for _, bs := range q.Blocks {
				if len(bs.Live) != spec.PagesPerBlock {
					return nil, fmt.Errorf("ftl: snapshot block page count mismatch")
				}
				blk := flash.RestoreBlock(bs)
				// The per-pool retired counter is derived state; recompute it
				// from the block flags so pre-fault snapshots restore cleanly.
				if blk.Retired() {
					pool.retired++
				}
				pool.blocks = append(pool.blocks, blk)
			}
			pools[qi] = pool
		}
		f.planes[pi].pools = pools
	}
	if err := f.CheckConsistency(); err != nil {
		return nil, fmt.Errorf("ftl: snapshot inconsistent: %w", err)
	}
	return f, nil
}
