package ftl

import (
	"testing"

	"emmcio/internal/flash"
)

func wearConfig(policy WearPolicy) Config {
	return Config{
		Geometry:     flash.Geometry{Channels: 1, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1},
		Pools:        []flash.PoolSpec{{PageBytes: 4096, BlocksPerPlane: 16, PagesPerBlock: 8}},
		GCFreeBlocks: 2,
		Wear:         policy,
	}
}

// hammer overwrites a small hot set while a cold set stays live, the access
// pattern that defeats naive wear leveling.
func hammer(t *testing.T, f *FTL, writes int) {
	t.Helper()
	// Cold data: 32 sectors written once.
	for i := int64(0); i < 32; i++ {
		if _, _, err := f.Write(0, 0, []int64{1000 + i}); err != nil {
			t.Fatal(err)
		}
	}
	// Hot data: 4 sectors overwritten forever.
	for i := 0; i < writes; i++ {
		if _, _, err := f.Write(0, 0, []int64{int64(i % 4)}); err != nil {
			t.Fatal(err)
		}
	}
}

func spread(w WearSummary) int { return w.MaxErases - w.MinErases }

func TestWearPolicyOrdering(t *testing.T) {
	results := map[WearPolicy]WearSummary{}
	for _, policy := range []WearPolicy{WearNone, WearRoundRobin, WearStatic} {
		f, err := New(wearConfig(policy))
		if err != nil {
			t.Fatal(err)
		}
		hammer(t, f, 3000)
		results[policy] = f.Wear(0)
		if err := f.CheckConsistency(); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
	}
	// Cold blocks pin low-wear blocks under every policy except static,
	// which must achieve the tightest spread; the strawman the widest.
	if spread(results[WearStatic]) > spread(results[WearRoundRobin]) {
		t.Errorf("static spread %d wider than round-robin %d",
			spread(results[WearStatic]), spread(results[WearRoundRobin]))
	}
	if spread(results[WearNone]) <= spread(results[WearStatic]) {
		t.Errorf("no-leveling spread %d not above static %d",
			spread(results[WearNone]), spread(results[WearStatic]))
	}
}

func TestStaticLevelingMovesColdData(t *testing.T) {
	f, err := New(wearConfig(WearStatic))
	if err != nil {
		t.Fatal(err)
	}
	hammer(t, f, 3000)
	if f.Stats().StaticLevelMoves == 0 {
		t.Fatal("static leveler never relocated cold data")
	}
	// All cold sectors survive relocation.
	for i := int64(0); i < 32; i++ {
		if _, ok := f.Lookup(1000 + i); !ok {
			t.Fatalf("cold sector %d lost by static leveling", 1000+i)
		}
	}
}

func TestRoundRobinHasNoLevelingMoves(t *testing.T) {
	f, _ := New(wearConfig(WearRoundRobin))
	hammer(t, f, 2000)
	if f.Stats().StaticLevelMoves != 0 {
		t.Fatal("round-robin policy should not move data for leveling")
	}
}

func TestWearPolicyStrings(t *testing.T) {
	if WearRoundRobin.String() != "round-robin" || WearNone.String() != "none" || WearStatic.String() != "static" {
		t.Fatal("policy names drifted")
	}
}
