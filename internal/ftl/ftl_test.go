package ftl

import (
	"bytes"
	"encoding/gob"
	"testing"
	"testing/quick"

	"emmcio/internal/flash"
	"emmcio/internal/rng"
)

func smallConfig(pools ...flash.PoolSpec) Config {
	if len(pools) == 0 {
		pools = []flash.PoolSpec{{PageBytes: 4096, BlocksPerPlane: 8, PagesPerBlock: 4}}
	}
	return Config{
		Geometry:     flash.Geometry{Channels: 2, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1},
		Pools:        pools,
		GCFreeBlocks: 2,
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	bad := smallConfig()
	bad.GCFreeBlocks = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero GC threshold accepted")
	}
	dup := smallConfig(
		flash.PoolSpec{PageBytes: 4096, BlocksPerPlane: 4, PagesPerBlock: 4},
		flash.PoolSpec{PageBytes: 4096, BlocksPerPlane: 4, PagesPerBlock: 4},
	)
	if _, err := New(dup); err == nil {
		t.Fatal("duplicate pool page size accepted")
	}
}

func TestWriteLookupRoundTrip(t *testing.T) {
	f, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	loc, gc, err := f.Write(0, 0, []int64{42})
	if err != nil {
		t.Fatal(err)
	}
	if !gc.Zero() {
		t.Fatal("fresh device should not GC")
	}
	got, ok := f.Lookup(42)
	if !ok || got != loc {
		t.Fatalf("Lookup(42) = %+v/%v, want %+v", got, ok, loc)
	}
	if _, ok := f.Lookup(99); ok {
		t.Fatal("Lookup invented a mapping")
	}
}

func TestOverwriteInvalidatesOldCopy(t *testing.T) {
	f, _ := New(smallConfig())
	loc1, _, _ := f.Write(0, 0, []int64{7})
	loc2, _, _ := f.Write(0, 0, []int64{7})
	if loc1 == loc2 {
		t.Fatal("overwrite reused the same physical page (NAND forbids in-place update)")
	}
	got, _ := f.Lookup(7)
	if got != loc2 {
		t.Fatal("mapping not updated on overwrite")
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoSectorsPerLargePage(t *testing.T) {
	f, _ := New(smallConfig(flash.PoolSpec{PageBytes: 8192, BlocksPerPlane: 8, PagesPerBlock: 4}))
	loc, _, err := f.Write(0, 0, []int64{10, 11})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := f.Lookup(10)
	b, _ := f.Lookup(11)
	if a != loc || b != loc {
		t.Fatal("both sectors should map to the same 8 KB page")
	}
	if f.PageBytes(loc) != 8192 {
		t.Fatal("PageBytes mismatch")
	}
}

func TestPartialLargePageWastesFootprint(t *testing.T) {
	f, _ := New(smallConfig(flash.PoolSpec{PageBytes: 8192, BlocksPerPlane: 8, PagesPerBlock: 4}))
	if _, _, err := f.Write(0, 0, []int64{5}); err != nil { // 4 KB into an 8 KB page
		t.Fatal(err)
	}
	s := f.Stats()
	if s.HostPayloadBytes != 4096 || s.HostFootprintBytes != 8192 {
		t.Fatalf("payload/footprint = %d/%d, want 4096/8192", s.HostPayloadBytes, s.HostFootprintBytes)
	}
	if u := s.SpaceUtilization(); u != 0.5 {
		t.Fatalf("space utilization %v, want 0.5", u)
	}
}

func TestWriteRejectsTooManyLPNs(t *testing.T) {
	f, _ := New(smallConfig())
	if _, _, err := f.Write(0, 0, []int64{1, 2}); err == nil {
		t.Fatal("two sectors on a 4 KB page accepted")
	}
	if _, _, err := f.Write(0, 0, nil); err == nil {
		t.Fatal("empty write accepted")
	}
}

func TestGCReclaimsSpace(t *testing.T) {
	// 8 blocks x 4 pages; hammer one LPN so stale pages pile up and GC must
	// fire well before 32 writes of capacity are exhausted.
	f, _ := New(smallConfig())
	var gcTotal GCWork
	for i := 0; i < 500; i++ {
		_, gc, err := f.Write(0, 0, []int64{1})
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		gcTotal.Add(gc)
	}
	if gcTotal.Erases == 0 {
		t.Fatal("GC never fired under sustained overwrites")
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// The single live LPN must still resolve.
	if _, ok := f.Lookup(1); !ok {
		t.Fatal("GC lost the live mapping")
	}
}

func TestGCPreservesLiveData(t *testing.T) {
	f, _ := New(smallConfig())
	// Live set of 6 LPNs, overwritten in rotation: everything must stay
	// mapped forever.
	live := []int64{10, 20, 30, 40, 50, 60}
	for i := 0; i < 900; i++ {
		lpn := live[i%len(live)]
		if _, _, err := f.Write(i%2, 0, []int64{lpn}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for _, lpn := range live {
		if _, ok := f.Lookup(lpn); !ok {
			t.Fatalf("LPN %d lost", lpn)
		}
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectGarbageHook(t *testing.T) {
	f, _ := New(smallConfig())
	for i := 0; i < 23; i++ { // fill most of the plane with stale data
		f.Write(0, 0, []int64{int64(i % 3)})
	}
	if !f.NeedsGC(0, 0) {
		t.Skip("pool not yet at threshold; adjust fill count")
	}
	gc, err := f.CollectGarbage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gc.Erases == 0 {
		t.Fatal("CollectGarbage reclaimed nothing at threshold")
	}
	if f.NeedsGC(0, 0) {
		t.Fatal("pool still at threshold after CollectGarbage")
	}
}

func TestWearLevelingSpreadsErases(t *testing.T) {
	f, _ := New(smallConfig())
	for i := 0; i < 3000; i++ {
		// Spread load across both planes; wear is leveled within a plane.
		f.Write(i%2, 0, []int64{int64(i % 4)})
	}
	w := f.Wear(0)
	if w.TotalErases == 0 {
		t.Fatal("no erases recorded")
	}
	// Round-robin free-list discipline keeps the spread tight.
	if w.MaxErases-w.MinErases > w.MaxErases/2+2 {
		t.Fatalf("wear spread too wide: min %d max %d", w.MinErases, w.MaxErases)
	}
}

func TestOutOfSpaceReported(t *testing.T) {
	cfg := smallConfig()
	cfg.Pools[0].BlocksPerPlane = 3
	cfg.GCFreeBlocks = 1
	f, _ := New(cfg)
	// All-distinct LPNs on one plane: capacity 3 blocks x 4 pages = 12 pages,
	// with no stale data GC cannot reclaim anything.
	var sawErr bool
	for i := 0; i < 20; i++ {
		if _, _, err := f.Write(0, 0, []int64{int64(1000 + i)}); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("writing past physical capacity with all-live data did not error")
	}
}

// Property: random mixed workload across two pools keeps the FTL consistent
// and never loses the most recent copy of any sector.
func TestFTLConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		ftl, err := New(smallConfig(
			flash.PoolSpec{PageBytes: 4096, BlocksPerPlane: 10, PagesPerBlock: 8},
			flash.PoolSpec{PageBytes: 8192, BlocksPerPlane: 6, PagesPerBlock: 8},
		))
		if err != nil {
			return false
		}
		r := rng.New(seed)
		model := map[int64]bool{}
		// Keep the live set well under pool capacity: the 8 KB pool has
		// 6 blocks x 8 pages per plane, and fragmentation can leave one live
		// sector per page.
		for i := 0; i < 600; i++ {
			lpn := int64(r.IntN(16))
			plane := r.IntN(2)
			if r.Bool(0.5) {
				if _, _, err := ftl.Write(plane, 0, []int64{lpn}); err != nil {
					return false
				}
				model[lpn] = true
			} else {
				lpn2 := lpn + 1000 // distinct address space for the 8K pool
				if _, _, err := ftl.Write(plane, 1, []int64{lpn2, lpn2 + 1}); err != nil {
					return false
				}
				model[lpn2], model[lpn2+1] = true, true
			}
		}
		for lpn := range model {
			if _, ok := ftl.Lookup(lpn); !ok {
				return false
			}
		}
		return ftl.CheckConsistency() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	f, _ := New(smallConfig())
	f.Write(0, 0, []int64{1})
	f.Write(1, 0, []int64{2})
	s := f.Stats()
	if s.HostProgrammedPages != 2 || s.HostPayloadBytes != 8192 || s.HostFootprintBytes != 8192 {
		t.Fatalf("stats %+v", s)
	}
	if s.SpaceUtilization() != 1.0 {
		t.Fatal("4 KB pool must have perfect utilization")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	f, _ := New(smallConfig())
	for i := 0; i < 100; i++ {
		if _, _, err := f.Write(i%2, 0, []int64{int64(i % 7)}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := f.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := RestoreSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for lpn := int64(0); lpn < 7; lpn++ {
		a, okA := f.Lookup(lpn)
		b, okB := back.Lookup(lpn)
		if okA != okB || a != b {
			t.Fatalf("lpn %d mapping differs after restore", lpn)
		}
	}
	if f.Stats() != back.Stats() {
		t.Fatal("stats differ after restore")
	}
	if f.PoolAvgPE(0) != back.PoolAvgPE(0) {
		t.Fatal("wear differs after restore")
	}
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	if _, err := RestoreSnapshot(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid gob but inconsistent structure: plane count mismatch.
	f, _ := New(smallConfig())
	snap := f.SnapshotData()
	snap.Planes = snap.Planes[:1]
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreSnapshot(&buf); err == nil {
		t.Fatal("plane-count mismatch accepted")
	}
}

func TestPoolAvgPEAndArtificialWear(t *testing.T) {
	f, _ := New(smallConfig())
	if f.PoolAvgPE(0) != 0 {
		t.Fatal("fresh FTL has wear")
	}
	f.AddArtificialWear(0, 32) // 16 blocks (8 per plane x 2 planes)
	if got := f.PoolAvgPE(0); got != 2 {
		t.Fatalf("avg PE %v, want 2", got)
	}
}
