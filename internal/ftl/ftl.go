// Package ftl implements the flash translation layer of the modeled eMMC
// device: sector-granularity page mapping, per-plane per-pool block
// allocation, greedy garbage collection, and the simple round-robin wear
// leveling that Implication 4 of the paper argues is sufficient for
// smartphone workloads.
//
// The FTL maps 4 KB logical sectors (LPNs) to physical pages. A physical
// page holds PageBytes/4096 sectors: one on a 4 KB-page block, two on an
// 8 KB-page block. A small write landing on a large page leaves part of the
// page dead on arrival — that is precisely the space-utilization cost of the
// pure-8KB scheme that Fig. 9 quantifies.
package ftl

import (
	"errors"
	"fmt"

	"emmcio/internal/faults"
	"emmcio/internal/flash"
	"emmcio/internal/telemetry"
)

// ErrNoSpace marks a write or relocation that found no destination page:
// the pool's free blocks (shrunk by any retirements) are exhausted. Callers
// classify with errors.Is and degrade gracefully instead of panicking.
var ErrNoSpace = errors.New("ftl: out of space")

// Loc identifies a physical page.
type Loc struct {
	Plane int32
	Pool  int32
	Block int32
	Page  int32
}

func (l Loc) pack() uint64 {
	return uint64(l.Plane)<<48 | uint64(l.Pool)<<40 | uint64(l.Block)<<16 | uint64(l.Page)
}

// GCWork summarizes the garbage collection a write triggered, including
// any fault handling folded into it — the device charges timeline latency
// for every field.
type GCWork struct {
	// PageMoves counts valid pages copied to a new block.
	PageMoves int
	// MoveBytes is the payload moved (page size × moves).
	MoveBytes int64
	// Erases counts blocks erased.
	Erases int
	// ProgramFaults counts page programs the NAND rejected (each one still
	// occupies the plane for a full program before the status fail).
	ProgramFaults int
	// EraseFaults counts block erases the NAND rejected.
	EraseFaults int
	// Retired counts blocks withdrawn as grown bad blocks.
	Retired int
}

// Add accumulates other into w.
func (w *GCWork) Add(other GCWork) {
	w.PageMoves += other.PageMoves
	w.MoveBytes += other.MoveBytes
	w.Erases += other.Erases
	w.ProgramFaults += other.ProgramFaults
	w.EraseFaults += other.EraseFaults
	w.Retired += other.Retired
}

// Zero reports whether no GC happened.
func (w GCWork) Zero() bool { return w == GCWork{} }

// Stats aggregates FTL activity over a replay.
type Stats struct {
	HostProgrammedPages int64 // physical pages programmed for host writes
	HostPayloadBytes    int64 // live host bytes in those pages
	HostFootprintBytes  int64 // page size × pages (>= payload on 8 KB pools)
	GC                  GCWork
	// StaticLevelMoves counts page copies made purely for wear leveling
	// (WearStatic only).
	StaticLevelMoves int64
	// ProgramFaults, EraseFaults and RetiredBlocks total the injected fault
	// outcomes over the replay (GC also carries the per-write breakdown).
	ProgramFaults int64
	EraseFaults   int64
	RetiredBlocks int64
}

// SpaceUtilization is the paper's §V metric: written payload over flash
// space consumed. 1.0 means no page-size waste.
func (s Stats) SpaceUtilization() float64 {
	if s.HostFootprintBytes == 0 {
		return 1
	}
	return float64(s.HostPayloadBytes) / float64(s.HostFootprintBytes)
}

type poolState struct {
	spec   flash.PoolSpec
	blocks []*flash.Block
	// free holds erased block indices in FIFO order; allocating from the
	// head and returning erased blocks to the tail round-robins erase load
	// across blocks (the "simple wear-leveling" of Implication 4).
	free   []int32
	active int32 // index of the block currently accepting programs, or -1
	// retired counts grown bad blocks withdrawn from this plane-pool; the
	// usable pool is BlocksPerPlane - retired.
	retired int32
}

type planeState struct {
	pools []poolState
}

// WearPolicy selects the wear-leveling strategy.
type WearPolicy int

const (
	// WearRoundRobin is the paper's Implication-4 recommendation: erased
	// blocks return to the tail of a FIFO free list and GC victim ties
	// break toward the least-erased block. No extra data movement.
	WearRoundRobin WearPolicy = iota
	// WearNone allocates LIFO and ignores erase counts — the strawman that
	// shows what leveling prevents.
	WearNone
	// WearStatic adds static leveling on top of round-robin: when the
	// pool's erase spread exceeds StaticDelta, GC relocates the coldest
	// full block even if it is live-heavy, trading extra copies for a
	// tighter spread.
	WearStatic
)

// String names the policy.
func (w WearPolicy) String() string {
	switch w {
	case WearNone:
		return "none"
	case WearStatic:
		return "static"
	}
	return "round-robin"
}

// Config configures an FTL instance.
type Config struct {
	Geometry flash.Geometry
	Pools    []flash.PoolSpec
	// GCFreeBlocks triggers garbage collection in a plane-pool when its
	// free-block count drops to this value (the SSD-style threshold
	// Implication 2 critiques; the idle-GC policy lives in internal/emmc).
	GCFreeBlocks int
	// Wear selects the wear-leveling strategy (default WearRoundRobin).
	Wear WearPolicy
	// StaticDelta is the erase-count spread that triggers static leveling
	// under WearStatic (default 8 when zero).
	StaticDelta int
}

// Validate reports unusable configurations.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if len(c.Pools) == 0 {
		return fmt.Errorf("ftl: no pools configured")
	}
	seen := map[int]bool{}
	for _, p := range c.Pools {
		if err := p.Validate(); err != nil {
			return err
		}
		if seen[p.PageBytes] {
			return fmt.Errorf("ftl: duplicate pool page size %d", p.PageBytes)
		}
		seen[p.PageBytes] = true
	}
	if c.GCFreeBlocks < 1 {
		return fmt.Errorf("ftl: GC threshold must be at least 1 free block")
	}
	return nil
}

// FTL is the translation layer state for one device.
type FTL struct {
	cfg    Config
	planes []planeState
	fwd    map[int64]Loc      // LPN -> physical page holding it
	rev    map[uint64][]int64 // packed Loc -> LPNs programmed on that page
	stats  Stats
	// poolErases counts erases per pool across all planes (O(1) wear query
	// for the reliability model).
	poolErases []int64
	// inj injects program/erase faults on the allocation and GC paths. Nil
	// (the default) means perfect hardware; the owning device shares its
	// injector here via SetFaults.
	inj *faults.Injector
	tel *ftlTel

	// freeRev recycles the backing arrays of reverse-map values: a page's
	// LPN list returns here when the page dies and is reused by the next
	// program, so the steady-state write path allocates nothing. freeSurv
	// does the same for GC survivor buffers — a stack, because moveLive can
	// re-enter itself through a failed relocation program.
	freeRev  [][]int64
	freeSurv [][]int64
}

// copyForRev returns a copy of lpns in recycled storage, for a reverse-map
// value the FTL will own until the page dies.
func (f *FTL) copyForRev(lpns []int64) []int64 {
	var cp []int64
	if n := len(f.freeRev); n > 0 {
		cp = f.freeRev[n-1][:0]
		f.freeRev = f.freeRev[:n-1]
	}
	return append(cp, lpns...)
}

// recycleRev returns a dead page's LPN-list storage to the free list.
func (f *FTL) recycleRev(s []int64) {
	if cap(s) > 0 {
		f.freeRev = append(f.freeRev, s[:0])
	}
}

// ftlTel holds the translation layer's metric handles. GC is rare relative
// to the program path, so per-pool wear spread is recomputed only when a
// collection actually erased something.
type ftlTel struct {
	gcRuns        *telemetry.Counter
	gcMoves       *telemetry.Counter
	gcMoveBytes   *telemetry.Counter
	erases        *telemetry.Counter
	programFaults *telemetry.Counter
	eraseFaults   *telemetry.Counter
	retired       *telemetry.Counter
	wearSpread    []*telemetry.Gauge // per pool: max-min erase count
}

// SetTelemetry attaches (or detaches, with a nil registry) GC and wear
// observability: ftl_gc_invocations_total, ftl_gc_page_moves_total,
// ftl_gc_move_bytes_total, ftl_erases_total, the fault counters
// ftl_program_faults_total / ftl_erase_faults_total /
// ftl_blocks_retired_total, and a per-pool ftl_wear_spread_erases gauge.
func (f *FTL) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		f.tel = nil
		return
	}
	t := &ftlTel{
		gcRuns:        reg.Counter("ftl_gc_invocations_total"),
		gcMoves:       reg.Counter("ftl_gc_page_moves_total"),
		gcMoveBytes:   reg.Counter("ftl_gc_move_bytes_total"),
		erases:        reg.Counter("ftl_erases_total"),
		programFaults: reg.Counter("ftl_program_faults_total"),
		eraseFaults:   reg.Counter("ftl_erase_faults_total"),
		retired:       reg.Counter("ftl_blocks_retired_total"),
	}
	for _, p := range f.cfg.Pools {
		t.wearSpread = append(t.wearSpread,
			reg.Gauge("ftl_wear_spread_erases", telemetry.L("pool", fmt.Sprintf("%dK", p.PageBytes/1024))))
	}
	f.tel = t
}

// observeGC records one garbage collection's work against the telemetry
// counters and refreshes the pool's wear-spread gauge.
func (f *FTL) observeGC(pool int, gc GCWork) {
	if f.tel == nil || gc.Zero() {
		return
	}
	f.tel.gcRuns.Inc()
	f.tel.gcMoves.Add(int64(gc.PageMoves))
	f.tel.gcMoveBytes.Add(gc.MoveBytes)
	f.tel.erases.Add(int64(gc.Erases))
	f.tel.programFaults.Add(int64(gc.ProgramFaults))
	f.tel.eraseFaults.Add(int64(gc.EraseFaults))
	f.tel.retired.Add(int64(gc.Retired))
	if gc.Erases > 0 && pool < len(f.tel.wearSpread) {
		w := f.Wear(pool)
		f.tel.wearSpread[pool].Set(int64(w.MaxErases - w.MinErases))
	}
}

// New builds a fresh (fully erased) FTL.
func New(cfg Config) (*FTL, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &FTL{
		cfg:        cfg,
		planes:     make([]planeState, cfg.Geometry.Planes()),
		fwd:        make(map[int64]Loc),
		rev:        make(map[uint64][]int64),
		poolErases: make([]int64, len(cfg.Pools)),
	}
	for pi := range f.planes {
		pools := make([]poolState, len(cfg.Pools))
		for qi, spec := range cfg.Pools {
			ps := poolState{spec: spec, active: -1}
			ps.blocks = make([]*flash.Block, spec.BlocksPerPlane)
			ps.free = make([]int32, spec.BlocksPerPlane)
			for bi := range ps.blocks {
				ps.blocks[bi] = flash.NewBlock(spec.PagesPerBlock)
				ps.free[bi] = int32(bi)
			}
			pools[qi] = ps
		}
		f.planes[pi].pools = pools
	}
	return f, nil
}

// SetFaults shares the owning device's fault injector with the FTL. A nil
// injector (the default) models perfect hardware. The device and FTL must
// share one injector so the decision stream stays a single deterministic
// sequence.
func (f *FTL) SetFaults(inj *faults.Injector) { f.inj = inj }

// Pools returns the configured pool specs.
func (f *FTL) Pools() []flash.PoolSpec { return f.cfg.Pools }

// Stats returns a copy of the accumulated statistics.
func (f *FTL) Stats() Stats { return f.stats }

// Lookup returns the physical location currently holding the LPN.
func (f *FTL) Lookup(lpn int64) (Loc, bool) {
	loc, ok := f.fwd[lpn]
	return loc, ok
}

// PageBytes returns the page size of the pool the location belongs to.
func (f *FTL) PageBytes(loc Loc) int { return f.cfg.Pools[loc.Pool].PageBytes }

// FreeBlocks returns the free-block count of a plane-pool.
func (f *FTL) FreeBlocks(plane, pool int) int {
	return len(f.planes[plane].pools[pool].free)
}

// NeedsGC reports whether the plane-pool is at or below the GC threshold,
// counting the pages left in the active block as headroom.
func (f *FTL) NeedsGC(plane, pool int) bool {
	ps := &f.planes[plane].pools[pool]
	return len(ps.free) <= f.cfg.GCFreeBlocks
}

// Write programs the given LPNs (all mapped by this single physical page)
// into the chosen plane and pool, invalidating any prior copies. The LPN
// count must not exceed the pool's sectors-per-page; a short count models
// the wasted half of a large page. It returns the location and any GC work
// that was required to free space.
func (f *FTL) Write(plane, pool int, lpns []int64) (Loc, GCWork, error) {
	ps := &f.planes[plane].pools[pool]
	if len(lpns) == 0 || len(lpns) > ps.spec.SectorsPerPage() {
		return Loc{}, GCWork{}, fmt.Errorf("ftl: %d LPNs for a %d-byte page", len(lpns), ps.spec.PageBytes)
	}
	// Invalidate prior copies first so GC never relocates stale data.
	for _, lpn := range lpns {
		f.invalidate(lpn)
	}
	var gc GCWork
	loc, err := f.program(int32(plane), int32(pool), lpns, &gc, false)
	if err != nil {
		return Loc{}, gc, err
	}
	f.stats.HostProgrammedPages++
	f.stats.HostPayloadBytes += int64(len(lpns)) * flash.SectorBytes
	f.stats.HostFootprintBytes += int64(ps.spec.PageBytes)
	f.stats.GC.Add(gc)
	f.observeGC(pool, gc)
	return loc, gc, nil
}

// CollectGarbage runs GC in the plane-pool until it is above the threshold,
// regardless of pending writes. It is the hook the idle-GC policy
// (Implication 2) uses to clean during inter-arrival gaps. The returned
// work includes any fault handling; a non-nil error means a relocation ran
// out of destination space (ErrNoSpace).
func (f *FTL) CollectGarbage(plane, pool int) (GCWork, error) {
	var gc GCWork
	err := f.ensureFree(int32(plane), int32(pool), &gc)
	f.stats.GC.Add(gc)
	f.observeGC(pool, gc)
	return gc, err
}

// RetireBlockAt withdraws the block holding the given page as a grown bad
// block, relocating its live data first — the read-scrub recovery path the
// device takes after an uncorrectable read. The returned work carries the
// relocation cost for timeline charging.
func (f *FTL) RetireBlockAt(loc Loc) (GCWork, error) {
	var gc GCWork
	if f.blockAt(loc).Retired() {
		return gc, nil // already withdrawn by an earlier recovery
	}
	err := f.retireBlock(loc.Plane, loc.Pool, loc.Block, &gc)
	f.stats.GC.Add(gc)
	f.observeGC(int(loc.Pool), gc)
	return gc, err
}

// invalidate removes the LPN's current mapping, if any.
func (f *FTL) invalidate(lpn int64) {
	loc, ok := f.fwd[lpn]
	if !ok {
		return
	}
	delete(f.fwd, lpn)
	blk := f.blockAt(loc)
	blk.InvalidateSector(int(loc.Page))
	key := loc.pack()
	lpns := f.rev[key]
	for i, v := range lpns {
		if v == lpn {
			lpns[i] = lpns[len(lpns)-1]
			lpns = lpns[:len(lpns)-1]
			break
		}
	}
	if len(lpns) == 0 {
		delete(f.rev, key)
		f.recycleRev(lpns)
	} else {
		f.rev[key] = lpns
	}
}

func (f *FTL) blockAt(loc Loc) *flash.Block {
	return f.planes[loc.Plane].pools[loc.Pool].blocks[loc.Block]
}

// program writes lpns to the next page of the plane-pool's active block,
// running GC first when free blocks run low. GC-initiated relocations pass
// inGC to avoid re-entering the collector.
//
// A program-status failure burns the attempted page, retires the block as
// grown-bad (relocating whatever it already held), and retries on a fresh
// block — each failure permanently shrinks the pool, so the loop terminates
// in ErrNoSpace at the latest.
func (f *FTL) program(plane, pool int32, lpns []int64, gc *GCWork, inGC bool) (Loc, error) {
	ps := &f.planes[plane].pools[pool]
	for {
		if ps.active < 0 || ps.blocks[ps.active].Full() {
			if !inGC && len(ps.free) <= f.cfg.GCFreeBlocks {
				if err := f.ensureFree(plane, pool, gc); err != nil {
					return Loc{}, err
				}
			}
			// Re-check: GC relocations may have rotated in a fresh active block
			// already; replacing it here would orphan a partially written block.
			if ps.active < 0 || ps.blocks[ps.active].Full() {
				if len(ps.free) == 0 {
					return Loc{}, fmt.Errorf("ftl: plane %d pool %d: %w", plane, pool, ErrNoSpace)
				}
				if f.cfg.Wear == WearNone {
					// LIFO: recycle the most recently erased block.
					ps.active = ps.free[len(ps.free)-1]
					ps.free = ps.free[:len(ps.free)-1]
				} else {
					ps.active = ps.free[0]
					ps.free = ps.free[1:]
				}
			}
		}
		blk := ps.blocks[ps.active]
		if f.inj.ProgramFails(f.PoolAvgPE(int(pool))) {
			blk.Burn()
			gc.ProgramFaults++
			f.stats.ProgramFaults++
			victim := ps.active
			ps.active = -1
			if err := f.retireBlock(plane, pool, victim, gc); err != nil {
				return Loc{}, fmt.Errorf("%w (after %w)", err, flash.ErrProgramFail)
			}
			continue
		}
		page := blk.Program(len(lpns))
		loc := Loc{Plane: plane, Pool: pool, Block: ps.active, Page: int32(page)}
		key := loc.pack()
		for _, lpn := range lpns {
			f.fwd[lpn] = loc
		}
		f.rev[key] = f.copyForRev(lpns)
		return loc, nil
	}
}

// retireBlock withdraws one block as grown-bad: it is pulled out of the
// active slot and free list, its surviving live data is relocated, and the
// retired flag makes the shrink permanent. The caller has already accounted
// for the fault that caused the retirement.
func (f *FTL) retireBlock(plane, pool, victim int32, gc *GCWork) error {
	ps := &f.planes[plane].pools[pool]
	if ps.active == victim {
		ps.active = -1
	}
	for i, b := range ps.free {
		if b == victim {
			ps.free = append(ps.free[:i], ps.free[i+1:]...)
			break
		}
	}
	blk := ps.blocks[victim]
	if blk.LiveSectors() > 0 {
		if err := f.moveLive(plane, pool, victim, gc); err != nil {
			// No destination space for the survivors: the block cannot be
			// retired without data loss, so it is left in place (with its
			// burned page) and the error surfaces to the host.
			return fmt.Errorf("ftl: retiring plane %d pool %d block %d: %w", plane, pool, victim, err)
		}
	}
	blk.Retire()
	ps.retired++
	gc.Retired++
	f.stats.RetiredBlocks++
	return nil
}

// ensureFree reclaims blocks until the pool is above the GC threshold.
// It stops early when no victim would make progress (all remaining blocks
// fully live, or no destination space for the relocation) — callers then see
// an out-of-space error instead of a livelock. An erase-status failure
// retires the victim instead of freeing it, shrinking the pool.
func (f *FTL) ensureFree(plane, pool int32, gc *GCWork) error {
	ps := &f.planes[plane].pools[pool]
	if f.cfg.Wear == WearStatic {
		if err := f.staticLevel(plane, pool, gc); err != nil {
			return err
		}
	}
	for len(ps.free) <= f.cfg.GCFreeBlocks {
		victim := f.pickVictim(ps)
		if victim < 0 {
			return nil // nothing reclaimable
		}
		// Destination headroom: remaining pages in the active block plus all
		// free blocks must cover the victim's repacked live sectors, or the
		// relocation itself would run out of space mid-move.
		avail := len(ps.free) * ps.spec.PagesPerBlock
		if ps.active >= 0 {
			avail += ps.spec.PagesPerBlock - ps.blocks[ps.active].NextFreeCount()
		}
		spp := ps.spec.SectorsPerPage()
		needed := (ps.blocks[victim].LiveSectors() + spp - 1) / spp
		if avail < needed {
			return nil
		}
		if err := f.moveLive(plane, pool, victim, gc); err != nil {
			return err
		}
		if f.inj.EraseFails(f.PoolAvgPE(int(pool))) {
			gc.EraseFaults++
			f.stats.EraseFaults++
			// The victim is already empty (survivors moved above), so
			// retirement cannot fail here; it just never rejoins the free
			// list. No poolErases bump — the erase did not complete.
			if err := f.retireBlock(plane, pool, victim, gc); err != nil {
				return fmt.Errorf("%w (after %w)", err, flash.ErrEraseFail)
			}
			continue
		}
		ps.blocks[victim].Erase()
		ps.free = append(ps.free, victim)
		gc.Erases++
		f.poolErases[pool]++
	}
	return nil
}

// pickVictim greedily selects the full block with the fewest live sectors
// that would reclaim at least one page after repacking. Ties go to the block
// with the lowest erase count, which spreads GC erases evenly (ties are the
// common case in steady state, so this tie-break carries the wear leveling).
// Returns -1 when no productive victim exists.
func (f *FTL) pickVictim(ps *poolState) int32 {
	best := int32(-1)
	bestLive := int(^uint(0) >> 1)
	bestErases := int(^uint(0) >> 1)
	spp := ps.spec.SectorsPerPage()
	for i, blk := range ps.blocks {
		if int32(i) == ps.active || blk.Retired() || !blk.Full() {
			continue
		}
		live := blk.LiveSectors()
		if (live+spp-1)/spp >= blk.Pages() {
			continue // repacking would not reclaim a single page
		}
		better := live < bestLive
		if !better && live == bestLive && f.cfg.Wear != WearNone {
			better = blk.EraseCount() < bestErases
		}
		if better {
			best = int32(i)
			bestLive = live
			bestErases = blk.EraseCount()
		}
	}
	return best
}

// staticLevel relocates the coldest full block when the pool's erase spread
// exceeds the configured delta, so cold data stops pinning low-wear blocks.
// Retired blocks are out of the rotation and excluded from the spread.
func (f *FTL) staticLevel(plane, pool int32, gc *GCWork) error {
	ps := &f.planes[plane].pools[pool]
	delta := f.cfg.StaticDelta
	if delta <= 0 {
		delta = 8
	}
	minE, maxE := int(^uint(0)>>1), 0
	coldest := int32(-1)
	for i, blk := range ps.blocks {
		if blk.Retired() {
			continue
		}
		e := blk.EraseCount()
		if e > maxE {
			maxE = e
		}
		if e < minE {
			minE = e
		}
		if int32(i) != ps.active && blk.Full() {
			if coldest < 0 || e < ps.blocks[coldest].EraseCount() {
				coldest = int32(i)
			}
		}
	}
	if coldest < 0 || maxE-minE < delta {
		return nil
	}
	spp := ps.spec.SectorsPerPage()
	needed := (ps.blocks[coldest].LiveSectors() + spp - 1) / spp
	avail := len(ps.free) * ps.spec.PagesPerBlock
	if ps.active >= 0 {
		avail += ps.spec.PagesPerBlock - ps.blocks[ps.active].NextFreeCount()
	}
	if avail < needed {
		return nil
	}
	before := gc.PageMoves
	if err := f.moveLive(plane, pool, coldest, gc); err != nil {
		return err
	}
	if f.inj.EraseFails(f.PoolAvgPE(int(pool))) {
		gc.EraseFaults++
		f.stats.EraseFaults++
		if err := f.retireBlock(plane, pool, coldest, gc); err != nil {
			return fmt.Errorf("%w (after %w)", err, flash.ErrEraseFail)
		}
		f.stats.StaticLevelMoves += int64(gc.PageMoves - before)
		return nil
	}
	ps.blocks[coldest].Erase()
	ps.free = append(ps.free, coldest)
	gc.Erases++
	f.poolErases[pool]++
	f.stats.StaticLevelMoves += int64(gc.PageMoves - before)
	return nil
}

// moveLive relocates the victim block's live sectors, repacking them densely
// into destination pages: half-dead large pages (a 4 KB overwrite on an 8 KB
// page) are compacted during GC, as SSDsim-style collectors do.
//
// Callers precheck destination headroom, but with fault injection a
// relocation program can itself fail and retire the destination, so
// exhaustion mid-move is a reachable condition — it surfaces as ErrNoSpace
// rather than a panic. The already-moved survivors stay mapped; the
// unmoved remainder is what the error reports lost.
func (f *FTL) moveLive(plane, pool, victim int32, gc *GCWork) error {
	ps := &f.planes[plane].pools[pool]
	blk := ps.blocks[victim]
	// Gather every live sector first, then detach the source pages. The
	// buffer comes off a stack of recycled ones: moveLive can re-enter
	// itself when a relocation program fails and retires its destination,
	// so a single shared scratch would be clobbered mid-move.
	survivors := f.grabSurvivors()
	for page := 0; page < blk.Pages(); page++ {
		if blk.PageLive(page) == 0 {
			continue
		}
		src := Loc{Plane: plane, Pool: pool, Block: victim, Page: int32(page)}
		key := src.pack()
		lpns := f.rev[key]
		for _, lpn := range lpns {
			delete(f.fwd, lpn)
			blk.InvalidateSector(page)
		}
		delete(f.rev, key)
		survivors = append(survivors, lpns...)
		f.recycleRev(lpns)
	}
	spp := ps.spec.SectorsPerPage()
	for off := 0; off < len(survivors); off += spp {
		end := off + spp
		if end > len(survivors) {
			end = len(survivors)
		}
		if _, err := f.program(plane, pool, survivors[off:end], gc, true); err != nil {
			f.recycleSurvivors(survivors)
			return fmt.Errorf("ftl: GC relocation stranded %d sectors: %w", len(survivors)-off, err)
		}
		gc.PageMoves++
		gc.MoveBytes += int64(ps.spec.PageBytes)
	}
	f.recycleSurvivors(survivors)
	return nil
}

// grabSurvivors pops a survivor scratch buffer off the recycle stack.
func (f *FTL) grabSurvivors() []int64 {
	if n := len(f.freeSurv); n > 0 {
		s := f.freeSurv[n-1][:0]
		f.freeSurv = f.freeSurv[:n-1]
		return s
	}
	return nil
}

// recycleSurvivors pushes a finished survivor buffer back on the stack.
func (f *FTL) recycleSurvivors(s []int64) {
	if cap(s) > 0 {
		f.freeSurv = append(f.freeSurv, s[:0])
	}
}

// PoolAvgPE returns the pool's average program/erase cycles per block —
// the wear level the reliability model keys read latency on.
func (f *FTL) PoolAvgPE(pool int) float64 {
	blocks := f.cfg.Pools[pool].BlocksPerPlane * f.cfg.Geometry.Planes()
	if blocks == 0 {
		return 0
	}
	return float64(f.poolErases[pool]) / float64(blocks)
}

// AddArtificialWear pre-ages a pool by the given erase count (device aging
// studies start from a worn device without replaying months of history).
func (f *FTL) AddArtificialWear(pool int, erases int64) {
	f.poolErases[pool] += erases
}

// WearSummary reports erase-count statistics for one pool across all planes.
// Min/Max cover only in-service blocks (retired blocks are frozen and out of
// the leveling rotation); Total and Blocks cover everything.
type WearSummary struct {
	MinErases, MaxErases int
	TotalErases          int
	Blocks               int
	// Retired counts grown bad blocks withdrawn from the pool.
	Retired int
}

// Wear returns the erase distribution of pool index pool.
func (f *FTL) Wear(pool int) WearSummary {
	w := WearSummary{MinErases: int(^uint(0) >> 1)}
	inService := 0
	for pi := range f.planes {
		for _, blk := range f.planes[pi].pools[pool].blocks {
			e := blk.EraseCount()
			w.TotalErases += e
			w.Blocks++
			if blk.Retired() {
				w.Retired++
				continue
			}
			inService++
			if e < w.MinErases {
				w.MinErases = e
			}
			if e > w.MaxErases {
				w.MaxErases = e
			}
		}
	}
	if inService == 0 {
		w.MinErases = 0
	}
	return w
}

// RetiredBlocks returns the total grown-bad-block count across the device.
func (f *FTL) RetiredBlocks() int64 { return f.stats.RetiredBlocks }

// CheckConsistency verifies internal invariants: every forward mapping's
// page is live and listed in the reverse map, and live-sector counts agree.
// It is used by property tests and returns the first violation found.
func (f *FTL) CheckConsistency() error {
	// Forward entries must appear in reverse lists.
	for lpn, loc := range f.fwd {
		found := false
		for _, v := range f.rev[loc.pack()] {
			if v == lpn {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("ftl: lpn %d missing from reverse map at %+v", lpn, loc)
		}
	}
	// Reverse lists must agree with block live counts.
	for key, lpns := range f.rev {
		loc := Loc{
			Plane: int32(key >> 48),
			Pool:  int32(key >> 40 & 0xff),
			Block: int32(key >> 16 & 0xffffff),
			Page:  int32(key & 0xffff),
		}
		blk := f.blockAt(loc)
		if blk.PageLive(int(loc.Page)) != len(lpns) {
			return fmt.Errorf("ftl: page %+v live=%d but reverse map lists %d LPNs",
				loc, blk.PageLive(int(loc.Page)), len(lpns))
		}
		if blk.Retired() {
			return fmt.Errorf("ftl: page %+v maps live data on a retired block", loc)
		}
	}
	// Retired blocks must be empty, inactive, off the free list, and agree
	// with the pool's retired counter.
	for pi := range f.planes {
		for qi := range f.planes[pi].pools {
			ps := &f.planes[pi].pools[qi]
			n := int32(0)
			for bi, blk := range ps.blocks {
				if !blk.Retired() {
					continue
				}
				n++
				if blk.LiveSectors() != 0 {
					return fmt.Errorf("ftl: retired block %d/%d/%d holds %d live sectors", pi, qi, bi, blk.LiveSectors())
				}
				if ps.active == int32(bi) {
					return fmt.Errorf("ftl: retired block %d/%d/%d is the active block", pi, qi, bi)
				}
				for _, fb := range ps.free {
					if fb == int32(bi) {
						return fmt.Errorf("ftl: retired block %d/%d/%d is on the free list", pi, qi, bi)
					}
				}
			}
			if n != ps.retired {
				return fmt.Errorf("ftl: plane %d pool %d retired counter %d, flags say %d", pi, qi, ps.retired, n)
			}
		}
	}
	return nil
}
