package ftl

import "emmcio/internal/telemetry"

// MapCache models the DFTL-style cached mapping table a real eMMC
// controller uses: the full sector map lives in flash (translation pages),
// and only a small RAM cache of mapping entries is held in the controller —
// eMMC devices carry far less RAM than SSDs (§I of the paper).
//
// A lookup or update that misses the cache costs a translation-page read
// (and, for evicted dirty entries, a translation-page write). The device
// model charges those as extra flash operations, so weak temporal locality
// (Characteristic 5 / Implication 3) shows up as real latency.
//
// The cache maps translation-page-sized groups of consecutive LPNs (one
// 4 KB translation page covers 512 eight-byte entries), which is how DFTL
// amortizes locality: one miss caches a whole neighborhood.
type MapCache struct {
	// entries per translation page: 4096 B / 8 B per mapping entry.
	groupSize int64
	capacity  int // cached translation pages
	table     map[int64]*mapNode
	head      *mapNode
	tail      *mapNode

	hits       int64
	misses     int64
	dirtyFlush int64

	telHits   *telemetry.Counter
	telMisses *telemetry.Counter
	telFlush  *telemetry.Counter
}

// SetTelemetry attaches hit/miss/write-back counters
// (ftl_mapcache_{hits,misses,dirty_writebacks}_total). Safe on a nil cache
// (mapping RAM unlimited) and with a nil registry (detach).
func (c *MapCache) SetTelemetry(reg *telemetry.Registry) {
	if c == nil {
		return
	}
	if reg == nil {
		c.telHits, c.telMisses, c.telFlush = nil, nil, nil
		return
	}
	c.telHits = reg.Counter("ftl_mapcache_hits_total")
	c.telMisses = reg.Counter("ftl_mapcache_misses_total")
	c.telFlush = reg.Counter("ftl_mapcache_dirty_writebacks_total")
}

type mapNode struct {
	group      int64
	dirty      bool
	prev, next *mapNode
}

// TranslationEntriesPerPage is DFTL's fan-out: a 4 KB translation page
// holds 512 eight-byte mapping entries.
const TranslationEntriesPerPage = 512

// NewMapCache builds a cache holding capBytes of translation pages.
// Returns nil (no caching — mapping always hits, as if RAM were unlimited)
// when capBytes <= 0.
func NewMapCache(capBytes int64) *MapCache {
	pages := int(capBytes / 4096)
	if pages < 1 {
		return nil
	}
	return &MapCache{
		groupSize: TranslationEntriesPerPage,
		capacity:  pages,
		table:     make(map[int64]*mapNode, pages),
	}
}

// MapCacheStats reports cache activity.
type MapCacheStats struct {
	Hits         int64
	Misses       int64
	DirtyFlushes int64
}

// HitRate returns the fraction of lookups served from RAM.
func (s MapCacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats returns accumulated statistics.
func (c *MapCache) Stats() MapCacheStats {
	return MapCacheStats{Hits: c.hits, Misses: c.misses, DirtyFlushes: c.dirtyFlush}
}

func (c *MapCache) detach(n *mapNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *MapCache) pushFront(n *mapNode) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// Access touches the mapping entry for the LPN. dirty marks an update (a
// write changing the mapping). It returns the flash operations the access
// cost: reads (translation-page fetch on miss) and writes (dirty eviction).
func (c *MapCache) Access(lpn int64, dirty bool) (tReads, tWrites int) {
	group := lpn / c.groupSize
	if n, ok := c.table[group]; ok {
		c.hits++
		c.telHits.Inc()
		n.dirty = n.dirty || dirty
		c.detach(n)
		c.pushFront(n)
		return 0, 0
	}
	c.misses++
	c.telMisses.Inc()
	tReads = 1 // fetch the translation page
	if len(c.table) >= c.capacity {
		evict := c.tail
		c.detach(evict)
		delete(c.table, evict.group)
		if evict.dirty {
			c.dirtyFlush++
			c.telFlush.Inc()
			tWrites = 1 // write back the dirty translation page
		}
	}
	n := &mapNode{group: group, dirty: dirty}
	c.table[group] = n
	c.pushFront(n)
	return tReads, tWrites
}
