package ftl

import "testing"

func TestMapCacheDisabled(t *testing.T) {
	if NewMapCache(0) != nil {
		t.Fatal("zero-byte cache should be nil")
	}
	if NewMapCache(100) != nil {
		t.Fatal("sub-page cache should be nil")
	}
}

func TestMapCacheGroupLocality(t *testing.T) {
	c := NewMapCache(4 * 4096)
	// First touch of a group misses and fetches one translation page.
	r, w := c.Access(0, false)
	if r != 1 || w != 0 {
		t.Fatalf("cold access cost %d/%d, want 1/0", r, w)
	}
	// Neighbors in the same 512-entry group hit.
	for lpn := int64(1); lpn < TranslationEntriesPerPage; lpn++ {
		if r, w := c.Access(lpn, false); r != 0 || w != 0 {
			t.Fatalf("lpn %d missed within a cached group", lpn)
		}
	}
	// The next group misses again.
	if r, _ := c.Access(TranslationEntriesPerPage, false); r != 1 {
		t.Fatal("new group should miss")
	}
	s := c.Stats()
	if s.Misses != 2 || s.Hits != TranslationEntriesPerPage-1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestMapCacheDirtyEviction(t *testing.T) {
	c := NewMapCache(2 * 4096) // two translation pages
	c.Access(0, true)          // group 0, dirty
	c.Access(512, false)       // group 1
	// Group 2 evicts group 0 (LRU), which is dirty -> write-back.
	r, w := c.Access(1024, false)
	if r != 1 || w != 1 {
		t.Fatalf("dirty eviction cost %d/%d, want 1/1", r, w)
	}
	if c.Stats().DirtyFlushes != 1 {
		t.Fatal("dirty flush not counted")
	}
	// Clean eviction costs no write.
	r, w = c.Access(1536, false)
	if r != 1 || w != 0 {
		t.Fatalf("clean eviction cost %d/%d, want 1/0", r, w)
	}
}

func TestMapCacheLRUOrder(t *testing.T) {
	c := NewMapCache(2 * 4096)
	c.Access(0, false)   // group 0
	c.Access(512, false) // group 1
	c.Access(0, false)   // touch group 0: group 1 becomes LRU
	c.Access(1024, false)
	// Group 0 must still be cached.
	if r, _ := c.Access(0, false); r != 0 {
		t.Fatal("recently used group evicted")
	}
}

func TestMapCacheHitRate(t *testing.T) {
	c := NewMapCache(8 * 4096)
	c.Access(0, false)
	c.Access(1, false)
	c.Access(2, false)
	hr := c.Stats().HitRate()
	if hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate %.3f, want 2/3", hr)
	}
}
