package paper

import (
	"math"
	"testing"
)

func TestRosterComplete(t *testing.T) {
	if len(IndividualApps) != 18 {
		t.Fatalf("%d individual apps, want 18", len(IndividualApps))
	}
	if len(ComboApps) != 7 {
		t.Fatalf("%d combo traces, want 7", len(ComboApps))
	}
	if len(AllTraces) != 25 {
		t.Fatalf("%d traces total, want 25", len(AllTraces))
	}
}

func TestTablesCoverAllTraces(t *testing.T) {
	for _, name := range AllTraces {
		if _, ok := TableIII[name]; !ok {
			t.Errorf("Table III missing %s", name)
		}
		if _, ok := TableIV[name]; !ok {
			t.Errorf("Table IV missing %s", name)
		}
	}
	if len(TableIII) != 25 || len(TableIV) != 25 {
		t.Fatalf("table sizes %d/%d, want 25/25", len(TableIII), len(TableIV))
	}
}

// Table III is internally consistent: DataKB ≈ Requests × AveKB, and the
// write-size percentage follows from the request mix and per-op mean sizes.
// This consistency is what lets the generators target only the primitive
// columns and recover the rest.
func TestTableIIIInternallyConsistent(t *testing.T) {
	for name, row := range TableIII {
		impliedData := float64(EffectiveRequests(name)) * row.AveKB
		relErr := math.Abs(impliedData-float64(row.DataKB)) / float64(row.DataKB)
		if relErr > 0.05 {
			t.Errorf("%s: Requests*AveKB = %.0f vs DataKB %d (%.1f%% off)",
				name, impliedData, row.DataKB, relErr*100)
		}
		w := row.WriteReqPct / 100
		impliedWriteSize := w * row.AveWriteKB / (w*row.AveWriteKB + (1-w)*row.AveReadKB) * 100
		if math.Abs(impliedWriteSize-row.WriteSizePct) > 6 {
			t.Errorf("%s: implied write-size %.1f%% vs published %.1f%%",
				name, impliedWriteSize, row.WriteSizePct)
		}
	}
}

// Table IV is consistent with Table III: arrival rate ≈ requests / duration
// and access rate ≈ data / duration.
func TestTableIVConsistentWithTableIII(t *testing.T) {
	for _, name := range AllTraces {
		s, tm := TableIII[name], TableIV[name]
		impliedRate := float64(EffectiveRequests(name)) / tm.DurationSec
		if relDiff(impliedRate, tm.ArrivalRate) > 0.10 {
			t.Errorf("%s: implied arrival rate %.2f vs published %.2f", name, impliedRate, tm.ArrivalRate)
		}
		impliedAccess := float64(s.DataKB) / tm.DurationSec
		if relDiff(impliedAccess, tm.AccessRate) > 0.10 {
			t.Errorf("%s: implied access rate %.2f vs published %.2f", name, impliedAccess, tm.AccessRate)
		}
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestCharacteristic1WriteDominance(t *testing.T) {
	// 15 of the 18 individual traces are write-dominant (52.8%–99.9%),
	// 6 of them above 90%.
	dominant, above90 := 0, 0
	for _, name := range IndividualApps {
		p := TableIII[name].WriteReqPct
		if p >= 52.8 {
			dominant++
		}
		if p > 90 {
			above90++
		}
	}
	if dominant != 15 {
		t.Errorf("write-dominant traces = %d, want 15", dominant)
	}
	if above90 != 6 {
		t.Errorf("traces above 90%% writes = %d, want 6", above90)
	}
}

func TestCharacteristic6InterarrivalMeans(t *testing.T) {
	// 13 of 18 individual traces have mean inter-arrival >= 200 ms,
	// i.e. arrival rate <= 5 req/s.
	n := 0
	for _, name := range IndividualApps {
		if 1.0/TableIV[name].ArrivalRate >= 0.2 {
			n++
		}
	}
	if n != 13 {
		t.Errorf("traces with mean inter-arrival >= 200ms = %d, want 13", n)
	}
}

func TestTableVCapacities(t *testing.T) {
	// 4PS: 2ch × 1chip × 2die × 2plane × 1024blk × 1024pg × 4KB = 32 GB.
	c4 := TableV4PS
	bytes4 := int64(c4.Channels*c4.ChipsPerChan*c4.DiesPerChip*c4.PlanesPerDie*c4.BlocksPerPlane*c4.PagesPerBlock) * 4096
	if bytes4 != 32<<30 {
		t.Errorf("4PS capacity %d, want 32 GiB", bytes4)
	}
	c8 := TableV8PS
	bytes8 := int64(c8.Channels*c8.ChipsPerChan*c8.DiesPerChip*c8.PlanesPerDie*c8.BlocksPerPlane*c8.PagesPerBlock) * 8192
	if bytes8 != 32<<30 {
		t.Errorf("8PS capacity %d, want 32 GiB", bytes8)
	}
	h := TableVHPS
	bytesH := int64(h.Channels * 2 * h.PlanesPerDie) // dies fixed at 2 per chip, 1 chip per channel
	_ = bytesH
	perPlane := int64(h.Blocks4KPerPlane)*1024*4096 + int64(h.Blocks8KPerPlane)*1024*8192
	total := perPlane * int64(h.Channels*h.DiesPerChip*h.PlanesPerDie)
	if total != 32<<30 {
		t.Errorf("HPS capacity %d, want 32 GiB", total)
	}
}

func TestFig8Fig9HeadlinesSane(t *testing.T) {
	if !(Fig8BestReduction > Fig8AverageReduction && Fig8AverageReduction > Fig8WorstReduction) {
		t.Error("Fig. 8 best > average > worst ordering violated")
	}
	if !(Fig9BestGain > Fig9AverageGain) {
		t.Error("Fig. 9 best > average ordering violated")
	}
}
