// Package paper records the published numbers from "I/O Characteristics of
// Smartphone Applications and Their Implications for eMMC Design"
// (Zhou, Pan, Wang, Xie — IISWC 2015): Table III (size-related statistics),
// Table IV (timing-related statistics), Table V (simulated device
// configurations), and the headline figure-level claims.
//
// These values serve two purposes:
//   - calibration targets for the synthetic workload generators in
//     internal/workload (we do not have the authors' Nexus 5 traces), and
//   - the "paper" column of every paper-vs-measured comparison in
//     EXPERIMENTS.md and the integration tests.
package paper

// App names, in the order of Table I / Fig. 4.
const (
	Idle        = "Idle"
	CallIn      = "CallIn"
	CallOut     = "CallOut"
	Booting     = "Booting"
	Movie       = "Movie"
	Music       = "Music"
	AngryBirds  = "AngryBirds"
	CameraVideo = "CameraVideo"
	GoogleMaps  = "GoogleMaps"
	Messaging   = "Messaging"
	Twitter     = "Twitter"
	Email       = "Email"
	Facebook    = "Facebook"
	Amazon      = "Amazon"
	YouTube     = "YouTube"
	Radio       = "Radio"
	Installing  = "Installing"
	WebBrowsing = "WebBrowsing"
)

// Combo trace names (§III-D).
const (
	MusicWB  = "Music/WB"
	RadioWB  = "Radio/WB"
	MusicFB  = "Music/FB"
	RadioFB  = "Radio/FB"
	MusicMsg = "Music/Msg"
	RadioMsg = "Radio/Msg"
	FBMsg    = "FB/Msg"
)

// IndividualApps lists the 18 single-application traces in paper order.
var IndividualApps = []string{
	Idle, CallIn, CallOut, Booting, Movie, Music, AngryBirds, CameraVideo,
	GoogleMaps, Messaging, Twitter, Email, Facebook, Amazon, YouTube, Radio,
	Installing, WebBrowsing,
}

// ComboApps lists the 7 combo traces in paper order.
var ComboApps = []string{MusicWB, RadioWB, MusicFB, RadioFB, MusicMsg, RadioMsg, FBMsg}

// AllTraces lists all 25 traces in paper order.
var AllTraces = append(append([]string{}, IndividualApps...), ComboApps...)

// SizeRow is one row of Table III.
type SizeRow struct {
	DataKB       int64   // total size of data accessed
	Requests     int     // total number of requests
	MaxKB        int     // largest request size in the trace
	AveKB        float64 // average request size
	AveReadKB    float64 // average read request size
	AveWriteKB   float64 // average write request size
	WriteReqPct  float64 // percentage of write requests
	WriteSizePct float64 // percentage of written bytes
}

// TableIII holds the published size-related statistics of all 25 traces.
var TableIII = map[string]SizeRow{
	Idle:        {123220, 6932, 1536, 17.5, 39.5, 15.0, 88.94, 75.41},
	CallIn:      {27300, 1491, 1536, 18.0, 12.0, 18.0, 99.93, 99.96},
	CallOut:     {27364, 1569, 1536, 17.0, 10.0, 17.5, 98.92, 99.37},
	Booting:     {982200, 18417, 20816, 53.0, 61.0, 37.5, 33.07, 23.26},
	Movie:       {130420, 4781, 512, 27.0, 27.5, 17.0, 5.40, 3.37},
	Music:       {240060, 6913, 940, 34.5, 62.5, 9.5, 52.80, 14.48},
	AngryBirds:  {94684, 3215, 3940, 29.0, 51.0, 25.0, 84.51, 73.12},
	CameraVideo: {2283184, 9348, 10104, 244.0, 38.5, 736.5, 29.46, 88.85},
	GoogleMaps:  {197808, 12603, 8174, 15.5, 28.5, 13.5, 86.78, 75.90},
	Messaging:   {63668, 5702, 128, 11.0, 23.0, 10.5, 97.30, 94.38},
	Twitter:     {187540, 13807, 2216, 13.5, 35.5, 10.5, 88.48, 69.86},
	Email:       {59276, 2906, 388, 20.0, 14.5, 22.5, 70.37, 78.62},
	Facebook:    {97436, 3897, 2680, 25.0, 28.5, 23.5, 74.42, 70.70},
	Amazon:      {67412, 3272, 1392, 20.5, 24.5, 18.0, 63.02, 55.07},
	YouTube:     {28692, 2080, 1536, 13.5, 19.5, 13.5, 97.50, 96.46},
	Radio:       {115972, 5820, 11164, 19.5, 36.0, 19.5, 98.68, 97.59},
	Installing:  {1653900, 17952, 22144, 92.0, 22.0, 93.0, 98.26, 99.58},
	WebBrowsing: {95908, 4090, 1536, 23.0, 21.5, 23.5, 80.71, 81.95},
	MusicWB:     {289280, 12603, 1544, 21.5, 50.5, 15.0, 81.68, 57.36},
	RadioWB:     {269932, 5702, 2716, 22.5, 29.0, 19.5, 72.02, 63.65},
	MusicFB:     {442388, 13807, 2424, 12.5, 38.0, 8.5, 87.67, 62.34},
	RadioFB:     {153776, 2906, 1368, 14.5, 23.0, 13.5, 91.68, 86.92},
	MusicMsg:    {234000, 3897, 472, 14.0, 56.0, 11.5, 94.43, 77.96},
	RadioMsg:    {150344, 3272, 1536, 13.5, 17.5, 13.0, 98.15, 97.55},
	FBMsg:       {182632, 2080, 732, 11.5, 21.5, 9.5, 84.72, 71.72},
}

// TimingRow is one row of Table IV.
type TimingRow struct {
	DurationSec float64 // recording duration
	ArrivalRate float64 // requests per second
	AccessRate  float64 // KB per second
	NoWaitPct   float64 // percentage of requests served immediately
	MeanServMs  float64 // mean service time
	MeanRespMs  float64 // mean response time
	SpatialPct  float64 // spatial locality
	TemporalPct float64 // temporal locality
}

// TableIV holds the published timing-related statistics of all 25 traces.
var TableIV = map[string]TimingRow{
	Idle:        {29363, 0.24, 4.20, 89, 7.42, 9.24, 25.32, 34.22},
	CallIn:      {3767, 0.40, 7.25, 98, 5.61, 6.18, 29.59, 31.00},
	CallOut:     {3700, 0.42, 7.40, 94, 5.57, 6.07, 27.29, 35.14},
	Booting:     {40, 460.40, 24555.00, 58, 1.65, 4.93, 28.19, 19.70},
	Movie:       {998, 4.79, 130.68, 23, 2.13, 6.28, 17.25, 1.72},
	Music:       {3801, 1.82, 63.16, 64, 2.38, 3.45, 21.51, 31.86},
	AngryBirds:  {2023, 1.59, 46.80, 84, 3.44, 4.06, 30.08, 26.07},
	CameraVideo: {3417, 2.74, 668.18, 47, 8.07, 11.61, 20.34, 16.30},
	GoogleMaps:  {1720, 7.33, 117.76, 85, 1.40, 2.23, 21.10, 42.78},
	Messaging:   {589, 9.68, 108.10, 86, 1.68, 1.88, 28.85, 50.82},
	Twitter:     {856, 16.13, 219.09, 84, 1.72, 2.07, 26.57, 52.90},
	Email:       {740, 3.93, 80.10, 63, 3.01, 4.09, 14.49, 34.87},
	Facebook:    {1112, 3.50, 87.62, 69, 2.99, 4.08, 19.89, 34.21},
	Amazon:      {819, 3.90, 84.29, 73, 1.45, 4.70, 17.79, 26.38},
	YouTube:     {4690, 0.44, 6.12, 96, 6.90, 7.19, 47.61, 16.35},
	Radio:       {4454, 1.31, 26.04, 82, 3.54, 6.62, 23.90, 29.18},
	Installing:  {977, 18.37, 1692.84, 80, 3.64, 10.04, 22.59, 49.57},
	WebBrowsing: {4901, 0.83, 19.57, 79, 4.33, 5.20, 23.77, 30.83},
	MusicWB:     {2165, 6.10, 133.62, 65, 1.70, 3.61, 18.40, 38.40},
	RadioWB:     {1227, 9.78, 219.99, 69, 1.86, 3.30, 18.66, 28.48},
	MusicFB:     {2026, 17.34, 218.36, 70, 1.13, 2.09, 14.19, 60.50},
	RadioFB:     {900, 11.66, 170.86, 78, 1.64, 2.58, 19.12, 52.70},
	MusicMsg:    {926, 17.82, 252.70, 74, 1.36, 2.19, 20.68, 53.84},
	RadioMsg:    {660, 16.82, 227.79, 89, 1.63, 2.04, 27.25, 49.48},
	FBMsg:       {699, 22.32, 261.28, 72, 1.23, 1.90, 15.80, 54.04},
}

// EffectiveRequests returns the request count we calibrate generators to.
//
// For the 18 individual traces this is Table III's "Number of Reqs." column
// verbatim. For the 7 combo traces that column is internally inconsistent in
// the published paper — it repeats counts from earlier rows (e.g. Music/WB
// lists 12,603, GoogleMaps' count) and contradicts both DataKB/AveKB and
// Table IV's duration × arrival rate, which agree with each other. We
// therefore derive combo counts as round(ArrivalRate × Duration), which also
// reproduces the published combo average request sizes to within 2%.
func EffectiveRequests(name string) int {
	for _, combo := range ComboApps {
		if name == combo {
			tm := TableIV[name]
			return int(tm.ArrivalRate*tm.DurationSec + 0.5)
		}
	}
	return TableIII[name].Requests
}

// Table V: configurations of the three simulated eMMC devices.
// Latencies are microseconds, from the Micron MLC datasheets the paper cites.
type DeviceRow struct {
	PageReadUs     int
	PageWriteUs    int
	BlockEraseUs   int
	Channels       int
	ChipsPerChan   int
	DiesPerChip    int
	PlanesPerDie   int
	BlocksPerPlane int // 4PS/8PS; HPS splits 512 + 256 (see Hybrid*)
	PagesPerBlock  int
	TotalGB        int
}

// TableV4PS is the pure-4KB-page configuration.
var TableV4PS = DeviceRow{160, 1385, 3800, 2, 1, 2, 2, 1024, 1024, 32}

// TableV8PS is the pure-8KB-page configuration.
var TableV8PS = DeviceRow{244, 1491, 3800, 2, 1, 2, 2, 512, 1024, 32}

// TableVHPS is the hybrid configuration: per plane, 512 blocks of 4KB pages
// plus 256 blocks of 8KB pages (same total 32 GB capacity).
var TableVHPS = struct {
	Blocks4KPerPlane int
	Blocks8KPerPlane int
	BlockEraseUs     int
	Channels         int
	DiesPerChip      int
	PlanesPerDie     int
	PagesPerBlock    int
	TotalGB          int
}{512, 256, 3800, 2, 2, 2, 1024, 32}

// Fig. 3 endpoints: throughput versus request size on the Nexus 5 eMMC.
var (
	Fig3ReadMinMBs  = 13.94 // 4 KB reads
	Fig3ReadMaxMBs  = 99.65 // 256 KB reads (largest read in any trace)
	Fig3WriteMinMBs = 5.18  // 4 KB writes
	Fig3WriteMaxMBs = 56.15 // 16 MB writes
	Fig3Write256MBs = 19.0  // 256 KB writes
)

// Characteristic 2 band: in 15 of the 18 individual traces, single-page
// (4 KB) requests are 44.9%–57.4% of all requests.
var (
	Char2MinP4 = 0.449
	Char2MaxP4 = 0.574
)

// NotP4Majority lists the individual traces whose request-size distribution
// is NOT dominated by 4 KB requests (Fig. 4: Movie and Booting; Characteristic
// 2's "15 out of 18" additionally excludes one data-intensive trace, which we
// take to be CameraVideo given its 244 KB average request size).
var NotP4Majority = map[string]bool{Movie: true, Booting: true, CameraVideo: true}

// Fig. 8 headline numbers: HPS mean-response-time reduction versus 4PS.
var (
	Fig8BestApp          = Booting
	Fig8BestReduction    = 0.86 // 86% MRT reduction on Booting
	Fig8WorstApp         = Movie
	Fig8WorstReduction   = 0.24  // 24% on Movie
	Fig8AverageReduction = 0.619 // 61.9% average over the 18 traces
)

// Fig. 9 headline numbers: HPS space-utilization gain versus 8PS
// (HPS always matches 4PS utilization).
var (
	Fig9BestApp     = Music
	Fig9BestGain    = 0.242 // 24.2% on Music
	Fig9AverageGain = 0.131 // 13.1% average
)

// BIOtracer overhead (§II-C): a 32 KB record buffer holds ~300 records; each
// flush costs ~6 extra I/O requests, about 2% of normal traffic.
var (
	TracerBufferBytes      = 32 * 1024
	TracerRecordsPerBuffer = 300
	TracerFlushExtraIOs    = 6
	TracerOverheadFraction = 0.02
)
