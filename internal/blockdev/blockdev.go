// Package blockdev models the kernel half of the paper's Fig. 1 I/O stack:
// the block layer request queue with elevator merging, and the eMMC driver
// whose packing function merges multiple write requests into one packed
// command (§II-B, Fig. 2).
//
// Two artifacts of this layer are visible in the paper's traces:
//
//   - the Linux block layer caps a single request at 512 KB, yet "due to the
//     packaging command, the largest requests in most traces are larger than
//     512 KB" (§III-B) — packing happens below the block layer;
//   - large packed requests amortize per-command overhead, which the paper
//     credits for Fig. 3's throughput growth above 1 MB.
//
// The Queue accepts upper-layer I/O, merges adjacent requests elevator-
// style, splits oversized ones at the kernel limit, and the Driver packs
// queued writes into eMMC packed commands before dispatch.
package blockdev

import (
	"fmt"
	"sort"

	"emmcio/internal/trace"
)

// MaxRequestBytes is the Linux block layer's single-request cap (§III-B).
const MaxRequestBytes = 512 * 1024

// Config tunes the queue and driver.
type Config struct {
	// MergeWindow is how long a request may wait for merge candidates
	// before it becomes eligible for dispatch (plugging), in ns.
	MergeWindow int64
	// MaxPack is the maximum number of write requests merged into one
	// packed command (eMMC 4.5 packed commands; 0 disables packing).
	MaxPack int
	// MaxPackedBytes caps a packed command's payload (0 = unlimited).
	MaxPackedBytes int
}

// DefaultConfig mirrors an eMMC 4.5 driver: a short plug window and
// packing of up to 16 sequential writes.
func DefaultConfig() Config {
	return Config{
		MergeWindow:    1_000_000, // 1 ms plug
		MaxPack:        16,
		MaxPackedBytes: 16 << 20, // the 16 MB maximum write seen in §III-A
	}
}

// Queue is the block-layer request queue.
type Queue struct {
	cfg     Config
	pending []trace.Request // sorted by arrival
	// dispBuf is the scratch backing Dispatchable's result; the returned
	// batch is valid until the next Dispatchable call, which every dispatch
	// loop satisfies by consuming the batch before polling again.
	dispBuf []trace.Request

	// Statistics.
	submitted   int
	frontMerges int
	backMerges  int
	splits      int
}

// NewQueue builds a queue.
func NewQueue(cfg Config) *Queue {
	return &Queue{cfg: cfg}
}

// Stats reports queue activity.
type QueueStats struct {
	Submitted   int
	FrontMerges int
	BackMerges  int
	Splits      int
}

// Stats returns accumulated statistics.
func (q *Queue) Stats() QueueStats {
	return QueueStats{q.submitted, q.frontMerges, q.backMerges, q.splits}
}

// Submit inserts one upper-layer request, splitting it at the kernel's
// 512 KB cap and attempting front/back merges with pending requests of the
// same type, as the elevator does.
func (q *Queue) Submit(r trace.Request) error {
	if r.Size == 0 || r.Size%trace.PageSize != 0 {
		return fmt.Errorf("blockdev: request size %d not page aligned", r.Size)
	}
	q.submitted++
	for r.Size > MaxRequestBytes {
		head := r
		head.Size = MaxRequestBytes
		q.insert(head)
		q.splits++
		r.LBA += MaxRequestBytes / trace.SectorSize
		r.Size -= MaxRequestBytes
	}
	q.insert(r)
	return nil
}

// insert attempts a merge; otherwise appends.
func (q *Queue) insert(r trace.Request) {
	for i := range q.pending {
		p := &q.pending[i]
		if p.Op != r.Op {
			continue
		}
		// Back merge: r continues p.
		if p.EndLBA() == r.LBA && int(p.Size)+int(r.Size) <= MaxRequestBytes {
			p.Size += r.Size
			q.backMerges++
			return
		}
		// Front merge: r precedes p.
		if r.EndLBA() == p.LBA && int(p.Size)+int(r.Size) <= MaxRequestBytes {
			p.LBA = r.LBA
			p.Size += r.Size
			p.Arrival = min64(p.Arrival, r.Arrival)
			q.frontMerges++
			return
		}
	}
	q.pending = append(q.pending, r)
}

// Dispatchable pops every request whose plug window has expired by now,
// in arrival order. The returned slice is queue scratch, valid until the
// next Dispatchable call.
func (q *Queue) Dispatchable(now int64) []trace.Request {
	out := q.dispBuf[:0]
	keep := q.pending[:0] // in-place filter: the write index never passes the read index
	for _, r := range q.pending {
		if now-r.Arrival >= q.cfg.MergeWindow {
			out = append(out, r)
		} else {
			keep = append(keep, r)
		}
	}
	q.pending = keep
	q.dispBuf = out
	sort.SliceStable(out, func(i, j int) bool { return out[i].Arrival < out[j].Arrival })
	return out
}

// Flush pops everything regardless of the plug window.
func (q *Queue) Flush() []trace.Request {
	out := q.pending
	q.pending = nil
	sort.SliceStable(out, func(i, j int) bool { return out[i].Arrival < out[j].Arrival })
	return out
}

// Pending reports queued request count.
func (q *Queue) Pending() int { return len(q.pending) }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// PackedCommand is one eMMC command: either a single request or several
// write requests packed together (Fig. 2's packing function).
type PackedCommand struct {
	Reqs []trace.Request
}

// Payload returns the total bytes the command moves.
func (c PackedCommand) Payload() uint32 {
	var n uint32
	for _, r := range c.Reqs {
		n += r.Size
	}
	return n
}

// Arrival returns the earliest member arrival.
func (c PackedCommand) Arrival() int64 {
	a := c.Reqs[0].Arrival
	for _, r := range c.Reqs[1:] {
		if r.Arrival < a {
			a = r.Arrival
		}
	}
	return a
}

// Driver is the eMMC driver's pre-processing + packing stage.
type Driver struct {
	cfg Config
	// cmdBuf is the scratch backing Pack/Unpacked results; a returned batch
	// (and the batch subslices its commands alias) is valid until the next
	// Pack or Unpacked call.
	cmdBuf []PackedCommand

	packedCommands int
	packedWrites   int
}

// NewDriver builds a driver.
func NewDriver(cfg Config) *Driver {
	return &Driver{cfg: cfg}
}

// DriverStats reports packing activity.
type DriverStats struct {
	PackedCommands int // commands carrying >1 request
	PackedWrites   int // write requests that traveled inside a pack
}

// Stats returns accumulated statistics.
func (d *Driver) Stats() DriverStats {
	return DriverStats{d.packedCommands, d.packedWrites}
}

// Pack groups a dispatch batch into eMMC commands: consecutive write
// requests pack together (up to MaxPack requests / MaxPackedBytes); reads
// always travel alone, as the eMMC packed-command feature the paper
// references packs writes. A pack's members are always consecutive in the
// batch, so each command aliases a batch subslice — the returned commands
// are valid as long as the batch is, and until the next Pack/Unpacked call.
func (d *Driver) Pack(batch []trace.Request) []PackedCommand {
	out := d.cmdBuf[:0]
	i := 0
	for i < len(batch) {
		r := batch[i]
		if r.Op != trace.Write || d.cfg.MaxPack <= 1 {
			out = append(out, PackedCommand{Reqs: batch[i : i+1 : i+1]})
			i++
			continue
		}
		payload := int(r.Size)
		j := i + 1
		for j < len(batch) && j-i < d.cfg.MaxPack {
			next := batch[j]
			if next.Op != trace.Write {
				break
			}
			if d.cfg.MaxPackedBytes > 0 && payload+int(next.Size) > d.cfg.MaxPackedBytes {
				break
			}
			payload += int(next.Size)
			j++
		}
		if j-i > 1 {
			d.packedCommands++
			d.packedWrites += j - i
		}
		out = append(out, PackedCommand{Reqs: batch[i:j:j]})
		i = j
	}
	d.cmdBuf = out
	return out
}

// Unpacked wraps each request of a batch in its own command — the dispatch
// shape for devices whose Caps do not advertise packed-command support
// (sdcard, UFS). No packing statistics accrue: nothing was packed. Like
// Pack, the commands alias the batch and share the driver's scratch.
func (d *Driver) Unpacked(batch []trace.Request) []PackedCommand {
	out := d.cmdBuf[:0]
	for i := range batch {
		out = append(out, PackedCommand{Reqs: batch[i : i+1 : i+1]})
	}
	d.cmdBuf = out
	return out
}
