package blockdev

import (
	"testing"
	"testing/quick"

	"emmcio/internal/core"
	"emmcio/internal/trace"
)

func wr(at int64, lba uint64, size uint32) trace.Request {
	return trace.Request{Arrival: at, LBA: lba, Size: size, Op: trace.Write}
}

func rd(at int64, lba uint64, size uint32) trace.Request {
	return trace.Request{Arrival: at, LBA: lba, Size: size, Op: trace.Read}
}

func TestSubmitRejectsUnaligned(t *testing.T) {
	q := NewQueue(DefaultConfig())
	if err := q.Submit(wr(0, 0, 1000)); err == nil {
		t.Fatal("unaligned accepted")
	}
	if err := q.Submit(wr(0, 0, 0)); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestSplitAtKernelCap(t *testing.T) {
	q := NewQueue(Config{MergeWindow: 0})
	if err := q.Submit(wr(0, 0, 2*MaxRequestBytes+4096)); err != nil {
		t.Fatal(err)
	}
	batch := q.Flush()
	if len(batch) != 3 {
		t.Fatalf("split into %d requests, want 3", len(batch))
	}
	var total uint32
	var prevEnd uint64
	for i, r := range batch {
		if r.Size > MaxRequestBytes {
			t.Fatalf("piece %d exceeds kernel cap: %d", i, r.Size)
		}
		if i > 0 && r.LBA != prevEnd {
			t.Fatalf("pieces not contiguous")
		}
		prevEnd = r.EndLBA()
		total += r.Size
	}
	if total != 2*MaxRequestBytes+4096 {
		t.Fatalf("split lost bytes: %d", total)
	}
	if q.Stats().Splits != 2 {
		t.Fatalf("splits = %d, want 2", q.Stats().Splits)
	}
}

func TestBackMerge(t *testing.T) {
	q := NewQueue(Config{MergeWindow: 1_000_000})
	q.Submit(wr(0, 0, 4096))
	q.Submit(wr(10, 8, 4096)) // continues the first
	if q.Pending() != 1 {
		t.Fatalf("pending %d, want 1 after back merge", q.Pending())
	}
	batch := q.Flush()
	if batch[0].Size != 8192 || batch[0].LBA != 0 {
		t.Fatalf("merged request %+v", batch[0])
	}
	if q.Stats().BackMerges != 1 {
		t.Fatal("back merge not counted")
	}
}

func TestFrontMerge(t *testing.T) {
	q := NewQueue(Config{MergeWindow: 1_000_000})
	q.Submit(wr(0, 8, 4096))
	q.Submit(wr(10, 0, 4096)) // precedes the first
	batch := q.Flush()
	if len(batch) != 1 || batch[0].LBA != 0 || batch[0].Size != 8192 {
		t.Fatalf("front merge failed: %+v", batch)
	}
}

func TestNoMergeAcrossOps(t *testing.T) {
	q := NewQueue(Config{MergeWindow: 1_000_000})
	q.Submit(wr(0, 0, 4096))
	q.Submit(rd(10, 8, 4096))
	if q.Pending() != 2 {
		t.Fatal("read merged into write")
	}
}

func TestMergeRespectsKernelCap(t *testing.T) {
	q := NewQueue(Config{MergeWindow: 1_000_000})
	q.Submit(wr(0, 0, MaxRequestBytes))
	q.Submit(wr(10, MaxRequestBytes/trace.SectorSize, 4096))
	if q.Pending() != 2 {
		t.Fatal("merge exceeded the kernel request cap")
	}
}

func TestDispatchableHonorsPlugWindow(t *testing.T) {
	q := NewQueue(Config{MergeWindow: 1_000_000})
	q.Submit(wr(0, 0, 4096))
	q.Submit(wr(900_000, 800, 4096))
	got := q.Dispatchable(1_000_000)
	if len(got) != 1 {
		t.Fatalf("dispatched %d, want only the expired one", len(got))
	}
	if q.Pending() != 1 {
		t.Fatal("young request should stay plugged")
	}
}

func TestPackGroupsSequentialWrites(t *testing.T) {
	d := NewDriver(Config{MaxPack: 4})
	batch := []trace.Request{
		wr(0, 0, 4096), wr(1, 800, 4096), wr(2, 1600, 4096),
		rd(3, 2400, 4096),
		wr(4, 3200, 4096),
	}
	cmds := d.Pack(batch)
	if len(cmds) != 3 {
		t.Fatalf("%d commands, want 3 (pack of 3 writes, read, lone write)", len(cmds))
	}
	if len(cmds[0].Reqs) != 3 {
		t.Fatalf("first command packed %d writes, want 3", len(cmds[0].Reqs))
	}
	if len(cmds[1].Reqs) != 1 || cmds[1].Reqs[0].Op != trace.Read {
		t.Fatal("read should travel alone")
	}
	s := d.Stats()
	if s.PackedCommands != 1 || s.PackedWrites != 3 {
		t.Fatalf("driver stats %+v", s)
	}
}

func TestPackRespectsLimits(t *testing.T) {
	d := NewDriver(Config{MaxPack: 2, MaxPackedBytes: 8192})
	batch := []trace.Request{wr(0, 0, 4096), wr(1, 800, 4096), wr(2, 1600, 4096), wr(3, 2400, 8192)}
	cmds := d.Pack(batch)
	for _, c := range cmds {
		if len(c.Reqs) > 2 {
			t.Fatal("MaxPack violated")
		}
		if c.Payload() > 8192 {
			t.Fatal("MaxPackedBytes violated")
		}
	}
}

func TestPackDisabled(t *testing.T) {
	d := NewDriver(Config{MaxPack: 0})
	cmds := d.Pack([]trace.Request{wr(0, 0, 4096), wr(1, 800, 4096)})
	if len(cmds) != 2 {
		t.Fatal("packing should be disabled")
	}
}

// Property: queue+split conserves bytes and never emits an oversized request.
func TestQueueConservationProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		q := NewQueue(Config{MergeWindow: 0})
		var in uint64
		at := int64(0)
		lba := uint64(0)
		for _, s := range sizes {
			size := uint32(int(s)%400+1) * 4096
			if err := q.Submit(wr(at, lba, size)); err != nil {
				return false
			}
			in += uint64(size)
			// Leave gaps so nothing merges.
			lba += uint64(size)/trace.SectorSize + 1024
			at++
		}
		var out uint64
		for _, r := range q.Flush() {
			if r.Size > MaxRequestBytes {
				return false
			}
			out += uint64(r.Size)
		}
		return in == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// End-to-end stack: a stream of small sequential writes leaves the driver as
// far fewer, larger commands — §III-B's "largest requests in most traces are
// larger than 512 KB" despite the kernel cap.
func TestStackPackingProducesLargeCommands(t *testing.T) {
	dev, err := core.NewDevice(core.Scheme4PS, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MergeWindow = 5_000_000 // generous plug: let whole runs accumulate
	st := NewStack(cfg, dev)
	// Interleave two write streams: within each stream writes are
	// sequential (elevator merges them); across streams they are far apart
	// (only the driver's packing can combine them into one command).
	tr := &trace.Trace{Name: "twofiles"}
	at := int64(0)
	lbaA := uint64(0)
	lbaB := uint64(8) << 30 / trace.SectorSize
	for i := 0; i < 512; i++ {
		at += 100_000 // 0.1 ms apart: inside the plug window
		if i%2 == 0 {
			tr.Reqs = append(tr.Reqs, wr(at, lbaA, 64*1024))
			lbaA += 64 * 1024 / trace.SectorSize
		} else {
			tr.Reqs = append(tr.Reqs, wr(at, lbaB, 64*1024))
			lbaB += 64 * 1024 / trace.SectorSize
		}
	}
	out, stats, err := st.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeviceRequests == 0 || stats.DeviceCommands >= stats.DeviceRequests {
		t.Fatalf("no packing happened: %+v", stats)
	}
	if stats.MaxCommandBytes <= MaxRequestBytes {
		t.Fatalf("max command %d bytes does not exceed the 512 KB kernel cap", stats.MaxCommandBytes)
	}
	if stats.Queue.BackMerges == 0 {
		t.Fatal("elevator never merged sequential writes")
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Conservation: all submitted bytes reached the device.
	if out.TotalBytes() != tr.TotalBytes() {
		t.Fatalf("stack lost bytes: %d vs %d", out.TotalBytes(), tr.TotalBytes())
	}
}

// Packing amortizes per-command overhead: the same workload finishes sooner
// with packing than without — the Fig. 3 mechanism for large transfers.
func TestStackPackingImprovesThroughput(t *testing.T) {
	run := func(cfg Config) int64 {
		dev, err := core.NewDevice(core.Scheme4PS, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		st := NewStack(cfg, dev)
		tr := &trace.Trace{Name: "burst"}
		lba := uint64(0)
		for i := 0; i < 256; i++ {
			tr.Reqs = append(tr.Reqs, wr(int64(i), lba, 16*1024))
			lba += 16 * 1024 / trace.SectorSize
		}
		_, stats, err := st.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return stats.LastFinish
	}
	packed := run(DefaultConfig())
	unpacked := run(Config{MergeWindow: 0, MaxPack: 0})
	if packed >= unpacked {
		t.Fatalf("packing did not help: packed %d ns vs unpacked %d ns", packed, unpacked)
	}
}

func TestStackEmptyTrace(t *testing.T) {
	dev, _ := core.NewDevice(core.Scheme4PS, core.Options{})
	st := NewStack(DefaultConfig(), dev)
	out, stats, err := st.Run(&trace.Trace{Name: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Reqs) != 0 || stats.DeviceCommands != 0 {
		t.Fatal("empty trace produced work")
	}
}

// Packing amortizes protocol commands: the packed run issues fewer bus
// commands per byte than the unpacked one.
func TestPackingAmortizesBusCommands(t *testing.T) {
	run := func(cfg Config) RunStats {
		dev, err := core.NewDevice(core.Scheme4PS, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		st := NewStack(cfg, dev)
		tr := &trace.Trace{Name: "bus"}
		for i := 0; i < 128; i++ {
			tr.Reqs = append(tr.Reqs, wr(int64(i), uint64(i)*100000, 4096))
		}
		_, stats, err := st.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	packed := run(DefaultConfig())
	unpacked := run(Config{MergeWindow: 0, MaxPack: 0})
	if packed.BusCommands >= unpacked.BusCommands {
		t.Fatalf("packing did not amortize: %d vs %d bus commands",
			packed.BusCommands, unpacked.BusCommands)
	}
	if packed.BusDataBlocks <= uint64(128*8) {
		t.Fatal("packed transfers must include header blocks")
	}
}
