package blockdev

import (
	"fmt"

	"emmcio/internal/mmc"
	"emmcio/internal/storage"
	"emmcio/internal/trace"
)

// Stack wires the block layer and driver in front of a device, modeling the
// kernel half of Fig. 1: upper-layer requests enter the queue, sit in the
// plug window for merging, and leave as (possibly packed) commands. Packing
// is a device capability, not an assumption: the driver queries
// Dev.Caps().PackedCommands and packs (and accounts mmc bus exchanges) only
// for devices that advertise it — eMMC does, sdcard and UFS do not.
type Stack struct {
	Queue  *Queue
	Driver *Driver
	Dev    storage.Device
}

// NewStack assembles a stack.
func NewStack(cfg Config, dev storage.Device) *Stack {
	return &Stack{Queue: NewQueue(cfg), Driver: NewDriver(cfg), Dev: dev}
}

// RunStats summarizes one replay through the stack.
type RunStats struct {
	Queue  QueueStats
	Driver DriverStats
	// DeviceCommands counts eMMC commands actually issued.
	DeviceCommands int
	// DeviceRequests counts block requests the device served (pack members).
	DeviceRequests int
	// MaxCommandBytes is the largest command payload — with packing enabled
	// this exceeds the kernel's 512 KB request cap, reproducing §III-B's
	// observation about trace maximum sizes.
	MaxCommandBytes uint32
	// LastFinish is the completion time of the final command.
	LastFinish int64
	// BusCommands counts eMMC protocol commands on the wire (CMD23 + the
	// transfer command per host exchange); packing amortizes them.
	BusCommands int
	// BusDataBlocks counts 512-byte blocks moved, packed headers included.
	BusDataBlocks uint64
}

// Run pushes a trace through queue, driver, and device, and returns the
// resulting device-level trace (one entry per device-served request, with
// timestamps filled) plus statistics. The input trace must be
// arrival-ordered and is not modified.
func (s *Stack) Run(tr *trace.Trace) (*trace.Trace, RunStats, error) {
	out := &trace.Trace{Name: tr.Name + "+stack"}
	stats, err := s.RunStream(trace.FromSlice(tr), func(r trace.Request) error {
		out.Reqs = append(out.Reqs, r)
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	out.SortByArrival()
	return out, stats, nil
}

// RunStream is the streaming form of Run: it pulls upper-layer requests
// from st, pushes them through queue, driver, and device, and hands every
// device-served request (timestamps filled, in dispatch order) to sink when
// non-nil. Memory is the plug-window queue plus the device — nothing scales
// with the trace length.
func (s *Stack) RunStream(st trace.Stream, sink func(trace.Request) error) (RunStats, error) {
	var stats RunStats
	caps := s.Dev.Caps()
	var resOne [1]storage.Result // scratch for single-member commands

	dispatch := func(now int64, batch []trace.Request) error {
		if len(batch) == 0 {
			return nil
		}
		var cmds []PackedCommand
		if caps.PackedCommands {
			cmds = s.Driver.Pack(batch)
		} else {
			cmds = s.Driver.Unpacked(batch)
		}
		for _, cmd := range cmds {
			stats.DeviceCommands++
			stats.DeviceRequests += len(cmd.Reqs)
			if p := cmd.Payload(); p > stats.MaxCommandBytes {
				stats.MaxCommandBytes = p
			}
			// Account the wire exchange (CMD23 + CMD18/25, plus the packed
			// header block when several writes share one transfer). The mmc
			// bus protocol is eMMC-specific; other backends move the payload
			// over their own link, which the device model already charges.
			if caps.PackedCommands {
				if ncmds, blocks, err := mmc.WireCost(cmd.Reqs); err == nil {
					stats.BusCommands += ncmds
					stats.BusDataBlocks += uint64(blocks)
				}
			}
			at := now
			for _, r := range cmd.Reqs {
				if r.Arrival > at {
					at = r.Arrival
				}
			}
			var results []storage.Result
			if len(cmd.Reqs) == 1 {
				res, err := s.Dev.SubmitAt(at, cmd.Reqs[0])
				if err != nil {
					return err
				}
				resOne[0] = res
				results = resOne[:]
			} else {
				var err error
				results, err = s.Dev.SubmitPacked(at, cmd.Reqs)
				if err != nil {
					return err
				}
			}
			for i, r := range cmd.Reqs {
				r.ServiceStart = results[i].ServiceStart
				r.Finish = results[i].Finish
				if results[i].Finish > stats.LastFinish {
					stats.LastFinish = results[i].Finish
				}
				if sink != nil {
					if err := sink(r); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}

	final := int64(0)
	for i := 0; ; i++ {
		req, ok, err := st.Next()
		if err != nil {
			return stats, fmt.Errorf("blockdev: reading %s request %d: %w", st.Name(), i, err)
		}
		if !ok {
			break
		}
		now := req.Arrival
		final = now
		if err := dispatch(now, s.Queue.Dispatchable(now)); err != nil {
			return stats, err
		}
		if err := s.Queue.Submit(req); err != nil {
			return stats, err
		}
	}
	if err := dispatch(final, s.Queue.Flush()); err != nil {
		return stats, err
	}

	stats.Queue = s.Queue.Stats()
	stats.Driver = s.Driver.Stats()
	return stats, nil
}
