package trace

import (
	"bytes"
	"strings"
	"testing"
)

// Native fuzz targets: the three trace parsers must never panic on
// arbitrary input, and anything they accept must re-serialize losslessly.

func FuzzReadText(f *testing.F) {
	f.Add("# name: X\n100 8 4096 W 0 0\n")
	f.Add("1 2 3 R 4 5\n")
	f.Add("")
	f.Add("# comment only\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadText(strings.NewReader(in))
		if err != nil || tr == nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back.Reqs) != len(tr.Reqs) {
			t.Fatalf("round trip changed request count %d -> %d", len(tr.Reqs), len(back.Reqs))
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteBinary(&seed, &Trace{Name: "S", Reqs: []Request{{Arrival: 1, LBA: 8, Size: 4096, Op: Write}}})
	f.Add(seed.Bytes())
	f.Add([]byte("BIO1"))
	f.Add([]byte{})
	// Truncation seeds: a valid stream cut inside the header, inside the
	// count, and inside a record body.
	f.Add(seed.Bytes()[:3])
	f.Add(seed.Bytes()[:seed.Len()-recordSize+5])
	// A hostile count with no records behind it: must error cheaply, not
	// allocate gigabytes.
	f.Add(append([]byte("BIO1\x00"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f))
	f.Fuzz(func(t *testing.T, in []byte) {
		tr, err := ReadBinary(bytes.NewReader(in))
		if err != nil || tr == nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
	})
}

func FuzzReadBlkparse(f *testing.F) {
	f.Add("8,0 0 1 0.000001 1 Q W 800 + 8 [x]\n")
	f.Add("junk\n8,0 0 1 0.0 1 C R 0 + 1 [y]\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadBlkparse(strings.NewReader(in))
		if err != nil || tr == nil {
			return
		}
		// Accepted traces are arrival-sorted by contract.
		var prev int64
		for _, r := range tr.Reqs {
			if r.Arrival < prev {
				t.Fatal("blkparse output not arrival-sorted")
			}
			prev = r.Arrival
		}
	})
}
