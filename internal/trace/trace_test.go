package trace

import (
	"testing"
)

func mkTrace() *Trace {
	return &Trace{
		Name: "Test",
		Reqs: []Request{
			{Arrival: 0, LBA: 0, Size: 4096, Op: Write},
			{Arrival: 1000, LBA: 8, Size: 8192, Op: Read},
			{Arrival: 2000, LBA: 24, Size: 4096, Op: Write},
		},
	}
}

func TestRequestDerivedFields(t *testing.T) {
	r := Request{Arrival: 100, LBA: 16, Size: 20 * 1024, Op: Write, ServiceStart: 150, Finish: 400}
	if got := r.Pages(); got != 5 {
		t.Errorf("Pages() = %d, want 5", got)
	}
	if got := r.EndLBA(); got != 16+40 {
		t.Errorf("EndLBA() = %d, want 56", got)
	}
	if got := r.ResponseTime(); got != 300 {
		t.Errorf("ResponseTime() = %d, want 300", got)
	}
	if got := r.ServiceTime(); got != 250 {
		t.Errorf("ServiceTime() = %d, want 250", got)
	}
	if got := r.WaitTime(); got != 50 {
		t.Errorf("WaitTime() = %d, want 50", got)
	}
}

func TestUnreplayedTimesAreZero(t *testing.T) {
	r := Request{Arrival: 100, Size: 4096}
	if r.ResponseTime() != 0 || r.ServiceTime() != 0 {
		t.Error("unreplayed request should report zero response/service time")
	}
}

func TestTraceAggregates(t *testing.T) {
	tr := mkTrace()
	if got := tr.TotalBytes(); got != 16384 {
		t.Errorf("TotalBytes = %d, want 16384", got)
	}
	if got := tr.WrittenBytes(); got != 8192 {
		t.Errorf("WrittenBytes = %d, want 8192", got)
	}
	if got := tr.WriteCount(); got != 2 {
		t.Errorf("WriteCount = %d, want 2", got)
	}
	if got := tr.Duration(); got != 2000 {
		t.Errorf("Duration = %d, want 2000", got)
	}
}

func TestDurationIncludesFinish(t *testing.T) {
	tr := mkTrace()
	tr.Reqs[2].ServiceStart = 2500
	tr.Reqs[2].Finish = 9999
	if got := tr.Duration(); got != 9999 {
		t.Errorf("Duration = %d, want 9999", got)
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := mkTrace().Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateRejectsUnsorted(t *testing.T) {
	tr := mkTrace()
	tr.Reqs[0].Arrival = 5000
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted unsorted trace")
	}
}

func TestValidateRejectsUnaligned(t *testing.T) {
	tr := mkTrace()
	tr.Reqs[1].Size = 1000
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted unaligned size")
	}
	tr = mkTrace()
	tr.Reqs[1].LBA = 3 // not a multiple of 8 sectors
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted unaligned LBA")
	}
}

func TestValidateRejectsZeroSize(t *testing.T) {
	tr := mkTrace()
	tr.Reqs[0].Size = 0
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted zero-size request")
	}
}

func TestValidateRejectsBadTimestamps(t *testing.T) {
	tr := mkTrace()
	tr.Reqs[0].ServiceStart = 10
	tr.Reqs[0].Finish = 5
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted finish < service start")
	}
}

func TestMergeInterleavesByArrival(t *testing.T) {
	a := &Trace{Name: "A", Reqs: []Request{
		{Arrival: 0, Size: 4096}, {Arrival: 100, Size: 4096}, {Arrival: 300, Size: 4096},
	}}
	b := &Trace{Name: "B", Reqs: []Request{
		{Arrival: 50, LBA: 8, Size: 4096}, {Arrival: 250, LBA: 8, Size: 4096},
	}}
	m := Merge("A/B", a, b)
	if m.Name != "A/B" {
		t.Errorf("merged name %q", m.Name)
	}
	if len(m.Reqs) != 5 {
		t.Fatalf("merged %d requests, want 5", len(m.Reqs))
	}
	var prev int64 = -1
	for _, r := range m.Reqs {
		if r.Arrival < prev {
			t.Fatalf("merge not sorted: %d after %d", r.Arrival, prev)
		}
		prev = r.Arrival
	}
}

func TestWindowRebasesArrivals(t *testing.T) {
	tr := mkTrace()
	w := tr.Window(1000, 3000)
	if len(w.Reqs) != 2 {
		t.Fatalf("window holds %d requests, want 2", len(w.Reqs))
	}
	if w.Reqs[0].Arrival != 0 || w.Reqs[1].Arrival != 1000 {
		t.Fatalf("window arrivals %d,%d; want 0,1000", w.Reqs[0].Arrival, w.Reqs[1].Arrival)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := mkTrace()
	c := tr.Clone()
	c.Reqs[0].Size = 999999
	if tr.Reqs[0].Size == 999999 {
		t.Fatal("Clone shares backing array")
	}
}

func TestClearTimestamps(t *testing.T) {
	tr := mkTrace()
	tr.Reqs[0].ServiceStart = 5
	tr.Reqs[0].Finish = 10
	tr.ClearTimestamps()
	if tr.Reqs[0].ServiceStart != 0 || tr.Reqs[0].Finish != 0 {
		t.Fatal("timestamps not cleared")
	}
}

func TestSortByArrival(t *testing.T) {
	tr := &Trace{Reqs: []Request{
		{Arrival: 300, Size: 4096}, {Arrival: 100, Size: 4096}, {Arrival: 200, Size: 4096},
	}}
	tr.SortByArrival()
	if tr.Reqs[0].Arrival != 100 || tr.Reqs[2].Arrival != 300 {
		t.Fatalf("not sorted: %+v", tr.Reqs)
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("Op string mismatch")
	}
}

func TestScale(t *testing.T) {
	tr := mkTrace()
	tr.Reqs[0].ServiceStart = 1
	tr.Reqs[0].Finish = 2
	half := tr.Scale(0.5)
	if half.Reqs[1].Arrival != 500 || half.Reqs[2].Arrival != 1000 {
		t.Fatalf("scaled arrivals %+v", half.Reqs)
	}
	if half.Reqs[0].ServiceStart != 0 || half.Reqs[0].Finish != 0 {
		t.Fatal("scale must clear replay timestamps")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(0) did not panic")
		}
	}()
	tr.Scale(0)
}

func TestShift(t *testing.T) {
	tr := mkTrace()
	tr.Reqs[0].ServiceStart = 10
	tr.Reqs[0].Finish = 20
	s := tr.Shift(1000)
	if s.Reqs[0].Arrival != 1000 || s.Reqs[0].ServiceStart != 1010 || s.Reqs[0].Finish != 1020 {
		t.Fatalf("shifted %+v", s.Reqs[0])
	}
	// Unreplayed requests keep zero timestamps.
	if s.Reqs[1].ServiceStart != 0 {
		t.Fatal("shift invented a service start")
	}
}

func TestShiftNegativePanics(t *testing.T) {
	tr := mkTrace()
	defer func() {
		if recover() == nil {
			t.Fatal("negative shift did not panic")
		}
	}()
	tr.Shift(-100)
}

func TestConcat(t *testing.T) {
	a := mkTrace()
	b := mkTrace()
	c := Concat("double", 500, a, b)
	if len(c.Reqs) != 6 {
		t.Fatalf("%d requests", len(c.Reqs))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Second session starts after the first's duration plus the gap.
	if c.Reqs[3].Arrival != a.Duration()+500 {
		t.Fatalf("second session starts at %d", c.Reqs[3].Arrival)
	}
}
