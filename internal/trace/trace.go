// Package trace defines the block-level I/O trace model used throughout the
// reproduction: the record format BIOtracer emits (arrival time, logical
// address, size, access type, service-start time, finish time — §II-B of the
// paper), a trace container, and helper operations (sorting, merging,
// windowing, validation).
package trace

import (
	"errors"
	"fmt"
	"sort"
)

// Op is the access type of a request.
type Op uint8

const (
	// Read is a read request.
	Read Op = iota
	// Write is a write request.
	Write
)

// String returns "R" or "W", the notation used in the trace files.
func (o Op) String() string {
	if o == Read {
		return "R"
	}
	return "W"
}

// Block device constants. All request sizes in the traces are aligned to the
// 4 KB flash page size at file-system level (§III-B), and addresses are kept
// in 512-byte sectors as the Linux block layer does.
const (
	SectorSize     = 512
	PageSize       = 4096
	SectorsPerPage = PageSize / SectorSize
)

// Request is one block-layer I/O request together with the three timestamps
// BIOtracer records: arrival at the block layer, the moment the eMMC driver
// actually issues it to the device, and its completion.
// Times are nanoseconds since trace start. ServiceStart and Finish are zero
// until the request has been replayed through a device model or tracer.
type Request struct {
	// Arrival is when the request was created at the block layer (step 1).
	Arrival int64
	// LBA is the starting logical address in 512-byte sectors.
	LBA uint64
	// Size is the request payload in bytes (a multiple of PageSize).
	Size uint32
	// Op is Read or Write.
	Op Op
	// ServiceStart is when the request was issued to the device (step 2).
	ServiceStart int64
	// Finish is when the device driver completed the request (step 3).
	Finish int64
}

// Pages returns the number of 4 KB pages the request spans.
func (r Request) Pages() int { return int((r.Size + PageSize - 1) / PageSize) }

// EndLBA returns the first sector past the request.
func (r Request) EndLBA() uint64 { return r.LBA + uint64(r.Size)/SectorSize }

// ResponseTime is Finish − Arrival; zero before replay.
func (r Request) ResponseTime() int64 {
	if r.Finish == 0 && r.ServiceStart == 0 {
		return 0
	}
	return r.Finish - r.Arrival
}

// ServiceTime is Finish − ServiceStart; zero before replay.
func (r Request) ServiceTime() int64 {
	if r.Finish == 0 && r.ServiceStart == 0 {
		return 0
	}
	return r.Finish - r.ServiceStart
}

// WaitTime is ServiceStart − Arrival: the time spent queued before the
// device accepted the request. The paper's NoWait requests have WaitTime 0.
func (r Request) WaitTime() int64 { return r.ServiceStart - r.Arrival }

// Trace is an ordered sequence of requests from one collecting session.
type Trace struct {
	// Name identifies the application or combo (e.g. "Twitter", "Music/WB").
	Name string
	// Reqs are the requests in arrival order.
	Reqs []Request
}

// Duration returns the recording duration: the latest of arrival and finish
// times over all requests. For unreplayed traces this is the last arrival.
func (t *Trace) Duration() int64 {
	var d int64
	for i := range t.Reqs {
		if t.Reqs[i].Arrival > d {
			d = t.Reqs[i].Arrival
		}
		if t.Reqs[i].Finish > d {
			d = t.Reqs[i].Finish
		}
	}
	return d
}

// TotalBytes returns the total payload moved (reads plus writes).
func (t *Trace) TotalBytes() uint64 {
	var n uint64
	for i := range t.Reqs {
		n += uint64(t.Reqs[i].Size)
	}
	return n
}

// WrittenBytes returns the total write payload.
func (t *Trace) WrittenBytes() uint64 {
	var n uint64
	for i := range t.Reqs {
		if t.Reqs[i].Op == Write {
			n += uint64(t.Reqs[i].Size)
		}
	}
	return n
}

// WriteCount returns the number of write requests.
func (t *Trace) WriteCount() int {
	n := 0
	for i := range t.Reqs {
		if t.Reqs[i].Op == Write {
			n++
		}
	}
	return n
}

// SortByArrival orders requests by arrival time (stable).
func (t *Trace) SortByArrival() {
	sort.SliceStable(t.Reqs, func(i, j int) bool {
		return t.Reqs[i].Arrival < t.Reqs[j].Arrival
	})
}

// Window returns a shallow copy holding only requests with
// from <= Arrival < to, with arrivals rebased to the window start.
func (t *Trace) Window(from, to int64) *Trace {
	out := &Trace{Name: t.Name}
	for _, r := range t.Reqs {
		if r.Arrival >= from && r.Arrival < to {
			r.Arrival -= from
			if r.ServiceStart != 0 || r.Finish != 0 {
				r.ServiceStart -= from
				r.Finish -= from
			}
			out.Reqs = append(out.Reqs, r)
		}
	}
	return out
}

// ClearTimestamps zeroes the replay-produced fields so the trace can be
// replayed again on a fresh device.
func (t *Trace) ClearTimestamps() {
	for i := range t.Reqs {
		t.Reqs[i].ServiceStart = 0
		t.Reqs[i].Finish = 0
	}
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	out := &Trace{Name: t.Name, Reqs: make([]Request, len(t.Reqs))}
	copy(out.Reqs, t.Reqs)
	return out
}

// Merge interleaves two traces by arrival time into a new trace, the way the
// block layer sees two concurrently running applications (§III-D combos).
func Merge(name string, a, b *Trace) *Trace {
	out := &Trace{Name: name, Reqs: make([]Request, 0, len(a.Reqs)+len(b.Reqs))}
	i, j := 0, 0
	for i < len(a.Reqs) && j < len(b.Reqs) {
		if a.Reqs[i].Arrival <= b.Reqs[j].Arrival {
			out.Reqs = append(out.Reqs, a.Reqs[i])
			i++
		} else {
			out.Reqs = append(out.Reqs, b.Reqs[j])
			j++
		}
	}
	out.Reqs = append(out.Reqs, a.Reqs[i:]...)
	out.Reqs = append(out.Reqs, b.Reqs[j:]...)
	return out
}

// Validation errors.
var (
	ErrUnsorted      = errors.New("trace: requests not in arrival order")
	ErrUnaligned     = errors.New("trace: request size not page-aligned")
	ErrZeroSize      = errors.New("trace: zero-size request")
	ErrBadTimestamps = errors.New("trace: finish precedes service start or service start precedes arrival")
)

// Validate checks structural invariants: arrival-sorted, page-aligned,
// non-zero sizes, and (when replayed) causally ordered timestamps.
func (t *Trace) Validate() error {
	var prev int64
	for i, r := range t.Reqs {
		if r.Arrival < prev {
			return fmt.Errorf("%w (index %d)", ErrUnsorted, i)
		}
		prev = r.Arrival
		if r.Size == 0 {
			return fmt.Errorf("%w (index %d)", ErrZeroSize, i)
		}
		if r.Size%PageSize != 0 || r.LBA%SectorsPerPage != 0 {
			return fmt.Errorf("%w (index %d)", ErrUnaligned, i)
		}
		if r.ServiceStart != 0 || r.Finish != 0 {
			if r.ServiceStart < r.Arrival || r.Finish < r.ServiceStart {
				return fmt.Errorf("%w (index %d)", ErrBadTimestamps, i)
			}
		}
	}
	return nil
}

// Scale returns a copy with all arrival times multiplied by factor — a
// rate-scaling tool for what-if studies (factor < 1 compresses the trace,
// raising the arrival rate). Replay timestamps are cleared, as they no
// longer correspond to any device pass.
func (t *Trace) Scale(factor float64) *Trace {
	if factor <= 0 {
		panic("trace: non-positive scale factor")
	}
	out := &Trace{Name: t.Name, Reqs: make([]Request, len(t.Reqs))}
	for i, r := range t.Reqs {
		r.Arrival = int64(float64(r.Arrival) * factor)
		r.ServiceStart = 0
		r.Finish = 0
		out.Reqs[i] = r
	}
	return out
}

// Shift returns a copy with all timestamps moved by delta nanoseconds
// (session concatenation). Panics if any arrival would become negative.
func (t *Trace) Shift(delta int64) *Trace {
	out := &Trace{Name: t.Name, Reqs: make([]Request, len(t.Reqs))}
	for i, r := range t.Reqs {
		r.Arrival += delta
		if r.Arrival < 0 {
			panic("trace: shift made an arrival negative")
		}
		if r.ServiceStart != 0 || r.Finish != 0 {
			r.ServiceStart += delta
			r.Finish += delta
		}
		out.Reqs[i] = r
	}
	return out
}

// Concat appends b after a with a gap, producing one longer session.
func Concat(name string, gap int64, sessions ...*Trace) *Trace {
	out := &Trace{Name: name}
	var offset int64
	for _, s := range sessions {
		shifted := s.Shift(offset)
		out.Reqs = append(out.Reqs, shifted.Reqs...)
		offset = shifted.Duration() + gap
	}
	return out
}
