package trace

import (
	"strings"
	"testing"
)

const blkSample = `  8,0    3        1     0.000000000  1234  Q   W 1000 + 8 [app]
  8,0    3        2     0.000100000  1234  G   W 1000 + 8 [app]
  8,0    3        3     0.000200000  1234  D   W 1000 + 8 [app]
  8,0    3        4     0.001500000     0  C   W 1000 + 8 [0]
  8,0    1        5     0.002000000  1234  Q   R 2000 + 16 [app]
  8,0    1        6     0.002500000  1234  D   R 2000 + 16 [app]
  8,0    1        7     0.004000000     0  C   R 2000 + 16 [0]
  8,0    1        8     0.005000000  1234  Q  WS 3000 + 8 [app]
`

func TestReadBlkparse(t *testing.T) {
	tr, err := ReadBlkparse(strings.NewReader(blkSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Reqs) != 3 {
		t.Fatalf("%d requests, want 3 (Q events only)", len(tr.Reqs))
	}
	w := tr.Reqs[0]
	if w.Op != Write || w.LBA != 1000 || w.Size != 4096 {
		t.Fatalf("first request %+v", w)
	}
	if w.Arrival != 0 || w.ServiceStart != 200_000 || w.Finish != 1_500_000 {
		t.Fatalf("write timestamps %+v", w)
	}
	r := tr.Reqs[1]
	if r.Op != Read || r.Size != 8192 || r.Finish != 4_000_000 {
		t.Fatalf("read %+v", r)
	}
	// The WS (sync write) request has no D/C: timestamps stay zero.
	if tr.Reqs[2].Finish != 0 {
		t.Fatalf("unfinished request got a finish time: %+v", tr.Reqs[2])
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadBlkparseSkipsNoise(t *testing.T) {
	noisy := `garbage line
  8,0 0 1 0.0 1 P N [swapper]
  8,0 0 2 0.000001 1 Q W 500 + 8 [x]
`
	tr, err := ReadBlkparse(strings.NewReader(noisy))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Reqs) != 1 {
		t.Fatalf("%d requests, want 1", len(tr.Reqs))
	}
}

func TestReadBlkparseDuplicateKeysFIFO(t *testing.T) {
	in := `  8,0 0 1 0.000000 1 Q W 100 + 8 [x]
  8,0 0 2 0.001000 1 Q W 100 + 8 [x]
  8,0 0 3 0.002000 1 C W 100 + 8 [x]
  8,0 0 4 0.003000 1 C W 100 + 8 [x]
`
	tr, err := ReadBlkparse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Reqs) != 2 {
		t.Fatalf("%d requests", len(tr.Reqs))
	}
	if tr.Reqs[0].Finish != 2_000_000 || tr.Reqs[1].Finish != 3_000_000 {
		t.Fatalf("completions matched out of order: %+v", tr.Reqs)
	}
}

func TestReadBlkparseBadNumbers(t *testing.T) {
	if _, err := ReadBlkparse(strings.NewReader("8,0 0 1 notatime 1 Q W 1 + 8 [x]\n")); err == nil {
		t.Fatal("bad timestamp accepted")
	}
	if _, err := ReadBlkparse(strings.NewReader("8,0 0 1 0.0 1 Q W abc + 8 [x]\n")); err == nil {
		t.Fatal("bad sector accepted")
	}
}
