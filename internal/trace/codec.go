package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text codec: one request per line,
//
//	arrival_ns lba_sectors size_bytes op service_start_ns finish_ns
//
// with a "# name: <trace name>" header comment. This mirrors the blktrace-
// style logs BIOtracer flushes to its log file.

// WriteText serializes the trace in the text format.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name: %s\n", t.Name); err != nil {
		return err
	}
	for i := range t.Reqs {
		r := &t.Reqs[i]
		if _, err := fmt.Fprintf(bw, "%d %d %d %s %d %d\n",
			r.Arrival, r.LBA, r.Size, r.Op, r.ServiceStart, r.Finish); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format produced by WriteText.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, "#") {
			if rest, ok := strings.CutPrefix(s, "# name:"); ok {
				t.Name = strings.TrimSpace(rest)
			}
			continue
		}
		fields := strings.Fields(s)
		if len(fields) != 6 {
			return nil, fmt.Errorf("trace: line %d: want 6 fields, got %d", line, len(fields))
		}
		var req Request
		var err error
		if req.Arrival, err = strconv.ParseInt(fields[0], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: arrival: %w", line, err)
		}
		if req.LBA, err = strconv.ParseUint(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: lba: %w", line, err)
		}
		size, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: size: %w", line, err)
		}
		req.Size = uint32(size)
		switch fields[3] {
		case "R":
			req.Op = Read
		case "W":
			req.Op = Write
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", line, fields[3])
		}
		if req.ServiceStart, err = strconv.ParseInt(fields[4], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: service start: %w", line, err)
		}
		if req.Finish, err = strconv.ParseInt(fields[5], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: finish: %w", line, err)
		}
		t.Reqs = append(t.Reqs, req)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Binary codec: a compact fixed-width little-endian record stream with a
// small header. This is the format the 32 KB BIOtracer record buffer holds
// in memory before each flush (§II-B): 33 bytes per record, so the buffer
// fits ~300 records as the paper states (actually 992 at 33 B; the paper's
// record also carries process metadata we do not model — see
// internal/biotracer for the faithful record size accounting).

var binMagic = [4]byte{'B', 'I', 'O', '1'}

// recordSize is the on-disk size of one binary record.
const recordSize = 8 + 8 + 4 + 1 + 8 + 8

// maxReasonableRecords caps header-declared record counts: a corrupt or
// hostile header must not drive allocation or loop bounds.
const maxReasonableRecords = 1 << 28

// WriteBinary serializes the trace in the binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	name := []byte(t.Name)
	if len(name) > 255 {
		name = name[:255]
	}
	if err := bw.WriteByte(byte(len(name))); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	var count [8]byte
	binary.LittleEndian.PutUint64(count[:], uint64(len(t.Reqs)))
	if _, err := bw.Write(count[:]); err != nil {
		return err
	}
	var rec [recordSize]byte
	for i := range t.Reqs {
		r := &t.Reqs[i]
		binary.LittleEndian.PutUint64(rec[0:], uint64(r.Arrival))
		binary.LittleEndian.PutUint64(rec[8:], r.LBA)
		binary.LittleEndian.PutUint32(rec[16:], r.Size)
		rec[20] = byte(r.Op)
		binary.LittleEndian.PutUint64(rec[21:], uint64(r.ServiceStart))
		binary.LittleEndian.PutUint64(rec[29:], uint64(r.Finish))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format produced by WriteBinary. Errors name
// the failing record index and its byte offset in the stream, so a
// truncated or corrupted capture file is diagnosable with dd/xxd rather
// than guesswork.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var off int64 // bytes consumed so far; the position each error reports
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic at offset %d: %w", off, err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	off += int64(len(magic))
	nameLen, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length at offset %d: %w", off, err)
	}
	off++
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading %d-byte name at offset %d: %w", nameLen, off, err)
	}
	off += int64(nameLen)
	var count [8]byte
	if _, err := io.ReadFull(br, count[:]); err != nil {
		return nil, fmt.Errorf("trace: reading record count at offset %d: %w", off, err)
	}
	off += int64(len(count))
	n := binary.LittleEndian.Uint64(count[:])
	// A streaming writer that could not seek back leaves the sentinel count:
	// records then run to end of stream.
	streaming := n == StreamingCount
	if !streaming && n > maxReasonableRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", n)
	}
	// The count is attacker-controlled until the records back it up: cap the
	// preallocation so a short hostile header cannot demand gigabytes.
	prealloc := n
	if streaming {
		prealloc = 0 // unknown length: let append grow the slice
	} else if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	t := &Trace{Name: string(name), Reqs: make([]Request, 0, prealloc)}
	var rec [recordSize]byte
	for i := uint64(0); streaming || i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if streaming && err == io.EOF {
				break // clean end at a record boundary
			}
			if streaming {
				return nil, fmt.Errorf("trace: record %d at offset %d: %w", i, off, err)
			}
			return nil, fmt.Errorf("trace: record %d of %d at offset %d: %w", i, n, off, err)
		}
		req := Request{
			Arrival:      int64(binary.LittleEndian.Uint64(rec[0:])),
			LBA:          binary.LittleEndian.Uint64(rec[8:]),
			Size:         binary.LittleEndian.Uint32(rec[16:]),
			Op:           Op(rec[20]),
			ServiceStart: int64(binary.LittleEndian.Uint64(rec[21:])),
			Finish:       int64(binary.LittleEndian.Uint64(rec[29:])),
		}
		if req.Op != Read && req.Op != Write {
			return nil, fmt.Errorf("trace: record %d at offset %d: bad op %d", i, off, req.Op)
		}
		off += recordSize
		t.Reqs = append(t.Reqs, req)
	}
	return t, nil
}

// StreamText parses the text format incrementally, invoking fn for each
// request without materializing the whole trace — multi-hour collections
// can be analyzed in constant memory. The callback may return an error to
// stop early; that error is returned verbatim.
func StreamText(r io.Reader, fn func(Request) error) (name string, n int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, "#") {
			if rest, ok := strings.CutPrefix(s, "# name:"); ok {
				name = strings.TrimSpace(rest)
			}
			continue
		}
		req, perr := parseTextLine(s)
		if perr != nil {
			return name, n, fmt.Errorf("trace: line %d: %w", line, perr)
		}
		if err := fn(req); err != nil {
			return name, n, err
		}
		n++
	}
	return name, n, sc.Err()
}

// parseTextLine parses one "arrival lba size op service finish" record.
func parseTextLine(s string) (Request, error) {
	fields := strings.Fields(s)
	if len(fields) != 6 {
		return Request{}, fmt.Errorf("want 6 fields, got %d", len(fields))
	}
	var req Request
	var err error
	if req.Arrival, err = strconv.ParseInt(fields[0], 10, 64); err != nil {
		return Request{}, fmt.Errorf("arrival: %w", err)
	}
	if req.LBA, err = strconv.ParseUint(fields[1], 10, 64); err != nil {
		return Request{}, fmt.Errorf("lba: %w", err)
	}
	size, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return Request{}, fmt.Errorf("size: %w", err)
	}
	req.Size = uint32(size)
	switch fields[3] {
	case "R":
		req.Op = Read
	case "W":
		req.Op = Write
	default:
		return Request{}, fmt.Errorf("bad op %q", fields[3])
	}
	if req.ServiceStart, err = strconv.ParseInt(fields[4], 10, 64); err != nil {
		return Request{}, fmt.Errorf("service start: %w", err)
	}
	if req.Finish, err = strconv.ParseInt(fields[5], 10, 64); err != nil {
		return Request{}, fmt.Errorf("finish: %w", err)
	}
	return req, nil
}
