package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Compressed codec: a delta + varint encoding that exploits trace structure
// (monotone arrivals, page-aligned sizes, spatially clustered addresses).
// Real multi-hour traces shrink several-fold versus the fixed binary
// format, which matters when archiving many collecting sessions.
//
// Layout: "BIOZ" magic, name (len byte + bytes), varint record count, then
// per record:
//
//	uvarint arrivalDelta   (ns since previous arrival)
//	varint  lbaDelta       (sectors, signed, relative to previous end)
//	uvarint pages          (size / 4 KB)
//	byte    op
//	uvarint wait           (ServiceStart − Arrival; 0 when unreplayed)
//	uvarint service        (Finish − ServiceStart; 0 when unreplayed)
var compressedMagic = [4]byte{'B', 'I', 'O', 'Z'}

// WriteCompressed serializes the trace in the compressed format.
// Requests must be arrival-ordered (Validate enforces this elsewhere).
func WriteCompressed(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(compressedMagic[:]); err != nil {
		return err
	}
	name := []byte(t.Name)
	if len(name) > 255 {
		name = name[:255]
	}
	if err := bw.WriteByte(byte(len(name))); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Reqs))); err != nil {
		return err
	}
	var prevArrival int64
	var prevEnd uint64
	for i := range t.Reqs {
		r := &t.Reqs[i]
		if r.Arrival < prevArrival {
			return fmt.Errorf("trace: compressed codec requires arrival order (index %d)", i)
		}
		if r.Size == 0 || r.Size%PageSize != 0 {
			return fmt.Errorf("trace: compressed codec requires page-aligned sizes (index %d)", i)
		}
		wait := r.ServiceStart - r.Arrival
		service := r.Finish - r.ServiceStart
		if r.ServiceStart == 0 && r.Finish == 0 {
			wait, service = 0, 0
		}
		if wait < 0 || service < 0 {
			return fmt.Errorf("trace: compressed codec requires causal timestamps (index %d)", i)
		}
		if err := putUvarint(uint64(r.Arrival - prevArrival)); err != nil {
			return err
		}
		if err := putVarint(int64(r.LBA) - int64(prevEnd)); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.Size / PageSize)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(r.Op)); err != nil {
			return err
		}
		if err := putUvarint(uint64(wait)); err != nil {
			return err
		}
		if err := putUvarint(uint64(service)); err != nil {
			return err
		}
		prevArrival = r.Arrival
		prevEnd = r.EndLBA()
	}
	return bw.Flush()
}

// ReadCompressed parses the compressed format.
func ReadCompressed(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != compressedMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	// StreamingCount marks a writer that could not know the count upfront:
	// records then run to end of stream.
	streaming := count == StreamingCount
	if !streaming && count > maxReasonableRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	prealloc := count
	if streaming {
		prealloc = 0
	}
	t := &Trace{Name: string(name), Reqs: make([]Request, 0, prealloc)}
	var prevArrival int64
	var prevEnd uint64
	for i := uint64(0); streaming || i < count; i++ {
		arrivalDelta, err := binary.ReadUvarint(br)
		if err != nil {
			if streaming && err == io.EOF {
				break // clean end at a record boundary
			}
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		lbaDelta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		pages, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		if pages == 0 || pages > (1<<24) {
			return nil, fmt.Errorf("trace: record %d: bad page count %d", i, pages)
		}
		opByte, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		if Op(opByte) != Read && Op(opByte) != Write {
			return nil, fmt.Errorf("trace: record %d: bad op %d", i, opByte)
		}
		wait, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		service, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		lba := int64(prevEnd) + lbaDelta
		if lba < 0 {
			return nil, fmt.Errorf("trace: record %d: negative address", i)
		}
		req := Request{
			Arrival: prevArrival + int64(arrivalDelta),
			LBA:     uint64(lba),
			Size:    uint32(pages) * PageSize,
			Op:      Op(opByte),
		}
		if wait != 0 || service != 0 {
			req.ServiceStart = req.Arrival + int64(wait)
			req.Finish = req.ServiceStart + int64(service)
		}
		t.Reqs = append(t.Reqs, req)
		prevArrival = req.Arrival
		prevEnd = req.EndLBA()
	}
	return t, nil
}
