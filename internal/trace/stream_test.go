package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// drain pulls a stream to exhaustion, failing the test on any error.
func drain(t *testing.T, s Stream) []Request {
	t.Helper()
	var out []Request
	for {
		r, ok, err := s.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

func TestFromSliceCollectRoundTrip(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(1)), 50)
	got, err := Collect(FromSlice(tr))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || !reflect.DeepEqual(got.Reqs, tr.Reqs) {
		t.Fatalf("Collect(FromSlice(tr)) != tr")
	}
}

func TestStreamResetDeterminism(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(2)), 40)
	tr.SortByArrival()
	streams := map[string]Stream{
		"slice":     FromSlice(tr),
		"generated": Generated(tr.Name, func() *Trace { return tr }),
		"map":       MapStream(FromSlice(tr), func(r Request) Request { r.Arrival++; return r }),
		"filter":    FilterStream(FromSlice(tr), func(r Request) bool { return r.Op == Write }),
		"merge":     MergeStreams("m", FromSlice(tr), FromSlice(tr)),
		"repeat":    Repeat(FromSlice(tr), 3, 1000),
	}
	for name, s := range streams {
		first := drain(t, s)
		// Partial re-drain before Reset must not disturb determinism.
		if err := s.Reset(); err != nil {
			t.Fatalf("%s: Reset: %v", name, err)
		}
		if _, _, err := s.Next(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Reset(); err != nil {
			t.Fatalf("%s: second Reset: %v", name, err)
		}
		second := drain(t, s)
		if !reflect.DeepEqual(first, second) {
			t.Errorf("%s: two drains of one stream differ", name)
		}
	}
}

func TestCollectResetsPartiallyConsumedStream(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(3)), 10)
	s := FromSlice(tr)
	if _, _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Reqs) != len(tr.Reqs) {
		t.Fatalf("Collect after partial drain got %d of %d requests", len(got.Reqs), len(tr.Reqs))
	}
}

func TestGeneratedRunsGeneratorOnce(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(4)), 5)
	calls := 0
	s := Generated("lazy", func() *Trace { calls++; return tr })
	if calls != 0 {
		t.Fatalf("generator ran before first Next")
	}
	drain(t, s)
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	drain(t, s)
	if calls != 1 {
		t.Fatalf("generator ran %d times, want 1 (Reset must not regenerate)", calls)
	}
}

func TestScaleStreamMatchesScale(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(5)), 30)
	want := tr.Scale(0.25)
	got, err := Collect(ScaleStream(FromSlice(tr), 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Reqs, want.Reqs) {
		t.Fatalf("ScaleStream drifts from Trace.Scale")
	}
}

func TestScaleStreamPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for factor 0")
		}
	}()
	ScaleStream(FromSlice(mkTrace()), 0)
}

func TestShiftStreamMatchesShift(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(6)), 30)
	want := tr.Shift(12345)
	got, err := Collect(ShiftStream(FromSlice(tr), 12345))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Reqs, want.Reqs) {
		t.Fatalf("ShiftStream drifts from Trace.Shift")
	}
}

func TestClearStreamZeroesTimestamps(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(7)), 20)
	got, err := Collect(ClearStream(FromSlice(tr)))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got.Reqs {
		if r.ServiceStart != 0 || r.Finish != 0 {
			t.Fatalf("request %d keeps timestamps after ClearStream", i)
		}
	}
}

func TestFilterStreamAndNamed(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(8)), 60)
	s := Named(FilterStream(FromSlice(tr), func(r Request) bool { return r.Op == Read }), tr.Name+"-reads")
	if s.Name() != tr.Name+"-reads" {
		t.Fatalf("Named: got %q", s.Name())
	}
	got := drain(t, s)
	want := 0
	for _, r := range tr.Reqs {
		if r.Op == Read {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("filter kept %d of %d reads", len(got), want)
	}
	for _, r := range got {
		if r.Op != Read {
			t.Fatalf("filter leaked a write")
		}
	}
}

func TestMergeStreamsMatchesMerge(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a, b := randomTrace(r, 40), randomTrace(r, 25)
	a.SortByArrival()
	b.SortByArrival()
	// Force an arrival tie so the tie-break rule is exercised.
	if len(a.Reqs) > 0 && len(b.Reqs) > 0 {
		b.Reqs[0].Arrival = a.Reqs[0].Arrival
		b.SortByArrival()
	}
	want := Merge("combo", a, b)
	got, err := Collect(MergeStreams("combo", FromSlice(a), FromSlice(b)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || !reflect.DeepEqual(got.Reqs, want.Reqs) {
		t.Fatalf("MergeStreams drifts from Merge")
	}
}

func TestRepeatMatchesConcat(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(10)), 35)
	tr.SortByArrival()
	want := Concat(tr.Name, 1_000_000, tr, tr, tr)
	got, err := Collect(Repeat(FromSlice(tr), 3, 1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Reqs, want.Reqs) {
		t.Fatalf("Repeat drifts from Concat:\n got %d reqs\nwant %d reqs", len(got.Reqs), len(want.Reqs))
	}
}

func TestStreamingCodecRoundTrips(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(11)), 80)
	tr.SortByArrival()

	writers := map[string]func(*bytes.Buffer) error{
		"text":       func(b *bytes.Buffer) error { return WriteTextStream(b, FromSlice(tr)) },
		"binary":     func(b *bytes.Buffer) error { return WriteBinaryStream(b, FromSlice(tr)) },
		"compressed": func(b *bytes.Buffer) error { return WriteCompressed(b, tr) },
	}
	for format, write := range writers {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s: write: %v", format, err)
		}
		st, err := NewDecoder(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: NewDecoder: %v", format, err)
		}
		if st.Name() != tr.Name {
			t.Errorf("%s: decoder name %q, want %q", format, st.Name(), tr.Name)
		}
		first := drain(t, st)
		if !reflect.DeepEqual(first, tr.Reqs) {
			t.Fatalf("%s: streaming decode drifts from original", format)
		}
		if err := st.Reset(); err != nil {
			t.Fatalf("%s: Reset: %v", format, err)
		}
		second := drain(t, st)
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("%s: decoder not deterministic across Reset", format)
		}
	}
}

func TestStreamingEncodersMatchBatchCodecs(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(12)), 45)
	tr.SortByArrival()

	var batch, stream bytes.Buffer
	if err := WriteText(&batch, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteTextStream(&stream, FromSlice(tr)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batch.Bytes(), stream.Bytes()) {
		t.Errorf("WriteTextStream output differs from WriteText")
	}

	batch.Reset()
	stream.Reset()
	if err := WriteBinary(&batch, tr); err != nil {
		t.Fatal(err)
	}
	enc, err := NewBinaryEncoder(&stream, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Reqs {
		if err := enc.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	// A non-seekable streaming binary write carries the read-to-EOF count
	// sentinel instead of the record count; both must decode identically.
	a, err := ReadBinary(bytes.NewReader(batch.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadBinary(bytes.NewReader(stream.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != b.Name || !reflect.DeepEqual(a.Reqs, b.Reqs) {
		t.Errorf("streaming binary encode decodes differently from batch encode")
	}
}
