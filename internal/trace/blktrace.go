package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadBlkparse parses the text output of blkparse(1) — the tool BIOtracer's
// log format descends from — into a Trace, so real device traces can be fed
// through the same analysis and replay pipelines as the synthetic ones.
//
// Expected line shape (default blkparse format):
//
//	maj,min cpu seq timestamp pid ACTION RWBS sector + sectors [process]
//
// Events are correlated by (sector, size):
//
//	Q (queue)    → request arrival
//	D (issue)    → service start
//	C (complete) → finish
//
// Lines with other actions (G, P, I, U, M, ...) and non-read/write RWBS
// flags are skipped. Requests lacking D/C events keep zero timestamps, and
// every trace is returned arrival-sorted.
func ReadBlkparse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	t := &Trace{Name: "blktrace"}

	type key struct {
		lba     uint64
		sectors uint64
		op      Op
	}
	// Outstanding requests waiting for their D/C events, FIFO per key.
	outstanding := make(map[key][]int)

	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		// Minimum: maj,min cpu seq ts pid action rwbs sector + count
		if len(fields) < 10 || fields[8] != "+" {
			continue
		}
		action := fields[5]
		rwbs := fields[6]
		var op Op
		switch {
		case strings.ContainsAny(rwbs, "W"):
			op = Write
		case strings.ContainsAny(rwbs, "R"):
			op = Read
		default:
			continue
		}
		ts, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: blkparse line %d: timestamp: %w", lineNo, err)
		}
		sector, err := strconv.ParseUint(fields[7], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: blkparse line %d: sector: %w", lineNo, err)
		}
		sectors, err := strconv.ParseUint(fields[9], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: blkparse line %d: sector count: %w", lineNo, err)
		}
		if sectors == 0 {
			continue
		}
		ns := int64(ts * 1e9)
		k := key{lba: sector, sectors: sectors, op: op}

		switch action {
		case "Q":
			t.Reqs = append(t.Reqs, Request{
				Arrival: ns,
				LBA:     sector,
				Size:    uint32(sectors * SectorSize),
				Op:      op,
			})
			outstanding[k] = append(outstanding[k], len(t.Reqs)-1)
		case "D":
			if idxs := outstanding[k]; len(idxs) > 0 {
				t.Reqs[idxs[0]].ServiceStart = ns
			}
		case "C":
			if idxs := outstanding[k]; len(idxs) > 0 {
				req := &t.Reqs[idxs[0]]
				req.Finish = ns
				if req.ServiceStart == 0 {
					req.ServiceStart = req.Arrival
				}
				outstanding[k] = idxs[1:]
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.SortByArrival()
	return t, nil
}
