package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func TestCompressedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tr := randomTrace(r, 800)
	// The codec stores wait/service, so unreplayed requests stay zeroed and
	// replayed ones must be causal. randomTrace already generates causal
	// or zero timestamps.
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		for i := range tr.Reqs {
			if tr.Reqs[i] != got.Reqs[i] {
				t.Fatalf("record %d differs:\nin  %+v\nout %+v", i, tr.Reqs[i], got.Reqs[i])
			}
		}
		t.Fatal("round trip changed the trace")
	}
}

func TestCompressedSmallerThanBinary(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	tr := randomTrace(r, 5000)
	var bin, comp bytes.Buffer
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteCompressed(&comp, tr); err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= bin.Len() {
		t.Fatalf("compressed %d bytes not below binary %d", comp.Len(), bin.Len())
	}
	ratio := float64(bin.Len()) / float64(comp.Len())
	if ratio < 1.5 {
		t.Fatalf("compression ratio only %.2fx", ratio)
	}
}

func TestCompressedRejectsUnsorted(t *testing.T) {
	tr := &Trace{Reqs: []Request{
		{Arrival: 100, Size: 4096}, {Arrival: 50, Size: 4096},
	}}
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, tr); err == nil {
		t.Fatal("unsorted trace accepted")
	}
}

func TestCompressedRejectsUnaligned(t *testing.T) {
	tr := &Trace{Reqs: []Request{{Arrival: 1, Size: 1000}}}
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, tr); err == nil {
		t.Fatal("unaligned size accepted")
	}
}

func TestCompressedRejectsTruncated(t *testing.T) {
	tr := &Trace{Name: "x", Reqs: []Request{{Arrival: 1, Size: 4096, Op: Write}}}
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, tr); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadCompressed(bytes.NewReader(b[:len(b)-2])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if _, err := ReadCompressed(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func FuzzReadCompressed(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteCompressed(&seed, &Trace{Name: "s", Reqs: []Request{{Arrival: 5, LBA: 8, Size: 4096, Op: Write}}})
	f.Add(seed.Bytes())
	f.Add([]byte("BIOZ"))
	f.Fuzz(func(t *testing.T, in []byte) {
		tr, err := ReadCompressed(bytes.NewReader(in))
		if err != nil || tr == nil {
			return
		}
		// Anything accepted must re-serialize.
		var buf bytes.Buffer
		if err := WriteCompressed(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
	})
}
