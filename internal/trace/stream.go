package trace

import (
	"context"
	"errors"
	"fmt"
)

// Stream is a pull-based iterator over requests: the streaming counterpart
// of a materialized Trace. Next returns the next request in arrival order;
// ok is false once the stream is exhausted (in which case req is the zero
// Request and err is nil). An error terminates the stream: after a non-nil
// err every subsequent Next returns the same err.
//
// Reset rewinds the stream to its first request so the identical sequence
// can be replayed again — the determinism contract every consumer relies
// on: two full drains of one stream, separated by Reset, yield the same
// requests in the same order. Streams that cannot rewind (a pipe, a
// one-shot transformer) return an error from Reset.
//
// A Stream is single-goroutine: callers that fan work out give each worker
// its own stream (re-open the file, re-build the generator) rather than
// sharing one.
type Stream interface {
	// Name identifies the workload, like Trace.Name.
	Name() string
	// Next returns the next request. ok is false at end of stream.
	Next() (req Request, ok bool, err error)
	// Reset rewinds to the first request, or reports why it cannot.
	Reset() error
}

// ErrNoReset marks streams that cannot rewind (pipes, one-shot sources).
var ErrNoReset = errors.New("trace: stream cannot be reset")

// sliceStream iterates over a materialized trace without copying it. It
// never mutates the underlying requests, so many sliceStreams may share
// one immutable trace.
type sliceStream struct {
	t *Trace
	i int
}

// FromSlice adapts a materialized trace to the Stream interface. The trace
// is not copied: the stream reads t.Reqs in place, so the caller must not
// mutate the trace while the stream is live. Reset rewinds to index 0.
func FromSlice(t *Trace) Stream { return &sliceStream{t: t} }

func (s *sliceStream) Name() string { return s.t.Name }

func (s *sliceStream) Next() (Request, bool, error) {
	if s.i >= len(s.t.Reqs) {
		return Request{}, false, nil
	}
	r := s.t.Reqs[s.i]
	s.i++
	return r, true, nil
}

func (s *sliceStream) Reset() error { s.i = 0; return nil }

// Collect drains a stream into a materialized trace — the bridge back to
// every slice-based helper (Merge, Window, Validate). It resets the stream
// first so a partially consumed stream still collects from the top, and
// only exists for workloads small enough to hold in memory; the streaming
// replay and analysis paths never call it.
func Collect(s Stream) (*Trace, error) {
	if err := s.Reset(); err != nil {
		return nil, err
	}
	t := &Trace{Name: s.Name()}
	for {
		r, ok, err := s.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return t, nil
		}
		t.Reqs = append(t.Reqs, r)
	}
}

// generatedStream lazily materializes a generated trace on first use. The
// workload generators are inherently whole-trace (temporal-locality
// calibration is a two-pass fit over the finished request sequence), so
// "streaming generation" means deferring and privatizing the allocation:
// nothing is generated until a job actually pulls, each job owns its own
// copy, and the memory is reclaimed when the job drops the stream — instead
// of every generated trace living in a process-wide cache forever.
type generatedStream struct {
	name string
	gen  func() *Trace
	t    *Trace
	i    int
}

// Generated wraps a trace generator as a Stream. gen runs at most once, on
// the first Next; Reset rewinds without regenerating. gen must be
// deterministic (same trace every call) for the stream's determinism
// contract to hold.
func Generated(name string, gen func() *Trace) Stream {
	return &generatedStream{name: name, gen: gen}
}

func (g *generatedStream) Name() string { return g.name }

func (g *generatedStream) Next() (Request, bool, error) {
	if g.t == nil {
		g.t = g.gen()
	}
	if g.i >= len(g.t.Reqs) {
		return Request{}, false, nil
	}
	r := g.t.Reqs[g.i]
	g.i++
	return r, true, nil
}

func (g *generatedStream) Reset() error { g.i = 0; return nil }

// mapStream applies fn to every request of a source stream.
type mapStream struct {
	src Stream
	fn  func(Request) Request
}

// MapStream transforms each request of src with fn — the streaming form of
// Scale and Shift. fn must be pure (no state between calls) so Reset
// replays identically.
func MapStream(src Stream, fn func(Request) Request) Stream {
	return &mapStream{src: src, fn: fn}
}

func (m *mapStream) Name() string { return m.src.Name() }

func (m *mapStream) Next() (Request, bool, error) {
	r, ok, err := m.src.Next()
	if !ok || err != nil {
		return Request{}, false, err
	}
	return m.fn(r), true, nil
}

func (m *mapStream) Reset() error { return m.src.Reset() }

// ScaleStream is the streaming form of Trace.Scale: arrivals multiplied by
// factor, replay timestamps cleared. Panics on a non-positive factor, like
// Scale.
func ScaleStream(src Stream, factor float64) Stream {
	if factor <= 0 {
		panic("trace: non-positive scale factor")
	}
	return MapStream(src, func(r Request) Request {
		r.Arrival = int64(float64(r.Arrival) * factor)
		r.ServiceStart = 0
		r.Finish = 0
		return r
	})
}

// ShiftStream is the streaming form of Trace.Shift: all timestamps moved by
// delta. Like Shift, it panics if an arrival would become negative.
func ShiftStream(src Stream, delta int64) Stream {
	return MapStream(src, func(r Request) Request {
		r.Arrival += delta
		if r.Arrival < 0 {
			panic("trace: shift made an arrival negative")
		}
		if r.ServiceStart != 0 || r.Finish != 0 {
			r.ServiceStart += delta
			r.Finish += delta
		}
		return r
	})
}

// ClearStream zeroes replay timestamps, the streaming ClearTimestamps.
func ClearStream(src Stream) Stream {
	return MapStream(src, func(r Request) Request {
		r.ServiceStart = 0
		r.Finish = 0
		return r
	})
}

// ctxStream aborts the stream once its context is done.
type ctxStream struct {
	Stream
	done <-chan struct{}
	err  func() error
}

// WithContext bounds a stream by a context: once ctx is done, Next returns
// ctx's error instead of pulling from the source. This cancels any consumer
// loop that honors stream errors — including ones that know nothing about
// contexts (the biotracer collection path) — between two requests. A
// context that can never be canceled wraps to the source unchanged.
func WithContext(ctx context.Context, src Stream) Stream {
	done := ctx.Done()
	if done == nil {
		return src
	}
	return &ctxStream{Stream: src, done: done, err: ctx.Err}
}

func (c *ctxStream) Next() (Request, bool, error) {
	select {
	case <-c.done:
		return Request{}, false, fmt.Errorf("trace: stream %s canceled: %w", c.Name(), c.err())
	default:
	}
	return c.Stream.Next()
}

// namedStream overrides the source's name.
type namedStream struct {
	Stream
	name string
}

// Named returns src reported under a different name — for derived streams
// (splits, filters) whose identity should be distinguishable in metrics and
// telemetry labels.
func Named(src Stream, name string) Stream { return &namedStream{Stream: src, name: name} }

func (n *namedStream) Name() string { return n.name }

// filterStream drops requests fn rejects.
type filterStream struct {
	src  Stream
	keep func(Request) bool
}

// FilterStream keeps only the requests keep accepts (address-range splits,
// op filters). keep must be pure so Reset replays identically.
func FilterStream(src Stream, keep func(Request) bool) Stream {
	return &filterStream{src: src, keep: keep}
}

func (f *filterStream) Name() string { return f.src.Name() }

func (f *filterStream) Next() (Request, bool, error) {
	for {
		r, ok, err := f.src.Next()
		if !ok || err != nil {
			return Request{}, false, err
		}
		if f.keep(r) {
			return r, true, nil
		}
	}
}

func (f *filterStream) Reset() error { return f.src.Reset() }

// mergeStream interleaves k source streams by arrival time with one
// request of lookahead per source — the k-way streaming form of Merge.
type mergeStream struct {
	name string
	srcs []Stream
	head []Request // lookahead per source
	live []bool    // head[i] is valid
}

// MergeStreams interleaves the sources by arrival time into one stream, the
// way the block layer sees concurrently running applications. Ties go to
// the lowest source index, matching the two-way Merge (which prefers its
// first argument on equal arrivals), so MergeStreams(n, FromSlice(a),
// FromSlice(b)) reproduces Merge(n, a, b) exactly.
func MergeStreams(name string, srcs ...Stream) Stream {
	return &mergeStream{
		name: name,
		srcs: srcs,
		head: make([]Request, len(srcs)),
		live: make([]bool, len(srcs)),
	}
}

func (m *mergeStream) Name() string { return m.name }

func (m *mergeStream) Next() (Request, bool, error) {
	best := -1
	for i, src := range m.srcs {
		if !m.live[i] {
			r, ok, err := src.Next()
			if err != nil {
				return Request{}, false, err
			}
			if !ok {
				continue
			}
			m.head[i], m.live[i] = r, true
		}
		if best < 0 || m.head[i].Arrival < m.head[best].Arrival {
			best = i
		}
	}
	if best < 0 {
		return Request{}, false, nil
	}
	m.live[best] = false
	return m.head[best], true, nil
}

func (m *mergeStream) Reset() error {
	for i, src := range m.srcs {
		if err := src.Reset(); err != nil {
			return err
		}
		m.live[i] = false
	}
	return nil
}

// repeatStream concatenates n back-to-back sessions of one source — the
// streaming Concat of copies. It tracks the running session duration
// (latest arrival or finish, exactly Trace.Duration) to place each next
// session, so the output matches Concat of n Shift copies bit for bit.
type repeatStream struct {
	src      Stream
	n        int
	gap      int64
	session  int
	offset   int64 // shift applied to the current session
	duration int64 // max shifted arrival/finish seen in the current session
}

// Repeat yields n back-to-back sessions of src separated by gap
// nanoseconds, without materializing any of them: the streaming equivalent
// of trace.Concat over n copies. src must support Reset.
func Repeat(src Stream, n int, gap int64) Stream {
	if n < 1 {
		panic("trace: Repeat needs at least one session")
	}
	return &repeatStream{src: src, n: n, gap: gap}
}

func (r *repeatStream) Name() string { return r.src.Name() }

func (r *repeatStream) Next() (Request, bool, error) {
	for {
		req, ok, err := r.src.Next()
		if err != nil {
			return Request{}, false, err
		}
		if !ok {
			if r.session+1 >= r.n {
				return Request{}, false, nil
			}
			r.session++
			r.offset = r.duration + r.gap
			r.duration = 0
			if err := r.src.Reset(); err != nil {
				return Request{}, false, fmt.Errorf("trace: repeating session %d: %w", r.session, err)
			}
			continue
		}
		req.Arrival += r.offset
		if req.Arrival < 0 {
			panic("trace: shift made an arrival negative")
		}
		if req.ServiceStart != 0 || req.Finish != 0 {
			req.ServiceStart += r.offset
			req.Finish += r.offset
		}
		if req.Arrival > r.duration {
			r.duration = req.Arrival
		}
		if req.Finish > r.duration {
			r.duration = req.Finish
		}
		return req, true, nil
	}
}

func (r *repeatStream) Reset() error {
	if err := r.src.Reset(); err != nil {
		return err
	}
	r.session, r.offset, r.duration = 0, 0, 0
	return nil
}
