package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func randomTrace(r *rand.Rand, n int) *Trace {
	t := &Trace{Name: "Random"}
	var at int64
	for i := 0; i < n; i++ {
		at += r.Int63n(1000000)
		pages := r.Intn(64) + 1
		req := Request{
			Arrival: at,
			LBA:     uint64(r.Intn(1<<20)) * SectorsPerPage,
			Size:    uint32(pages * PageSize),
			Op:      Op(r.Intn(2)),
		}
		if r.Intn(2) == 0 {
			req.ServiceStart = at + r.Int63n(10000)
			req.Finish = req.ServiceStart + r.Int63n(100000) + 1
		}
		t.Reqs = append(t.Reqs, req)
	}
	return t
}

func TestTextRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr := randomTrace(r, 500)
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("text round trip changed the trace")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tr := randomTrace(r, 500)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("binary round trip changed the trace")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, int(n)%64)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if tr.Name != got.Name || len(tr.Reqs) != len(got.Reqs) {
			return false
		}
		for i := range tr.Reqs {
			if tr.Reqs[i] != got.Reqs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTraceRoundTrips(t *testing.T) {
	tr := &Trace{Name: "Empty"}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "Empty" || len(got.Reqs) != 0 {
		t.Fatalf("got %q with %d reqs", got.Name, len(got.Reqs))
	}
}

func TestReadTextRejectsGarbage(t *testing.T) {
	cases := []string{
		"1 2 3\n",
		"a b c d e f\n",
		"1 2 4096 X 0 0\n",
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("ReadText accepted %q", c)
		}
	}
}

func TestReadTextSkipsCommentsAndBlank(t *testing.T) {
	in := "# name: Foo\n\n# comment\n100 8 4096 W 0 0\n"
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "Foo" || len(tr.Reqs) != 1 {
		t.Fatalf("got name %q, %d reqs", tr.Name, len(tr.Reqs))
	}
}

func TestReadBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOPE00000000"))); err == nil {
		t.Fatal("ReadBinary accepted bad magic")
	}
}

func TestReadBinaryRejectsTruncated(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(3)), 10)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(b[:len(b)-5])); err == nil {
		t.Fatal("ReadBinary accepted truncated stream")
	}
}

func TestReadBinaryRejectsBadOp(t *testing.T) {
	tr := &Trace{Name: "X", Reqs: []Request{{Arrival: 1, Size: 4096, Op: Write}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the op byte of the single record: header is 4+1+len(name)+8.
	opOff := 4 + 1 + len("X") + 8 + 20
	b[opOff] = 7
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("ReadBinary accepted bad op byte")
	}
}

func TestStreamText(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(9)), 300)
	tr.Name = "Streamed"
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var got []Request
	name, n, err := StreamText(&buf, func(r Request) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if name != "Streamed" || n != 300 || len(got) != 300 {
		t.Fatalf("name %q n %d len %d", name, n, len(got))
	}
	for i := range got {
		if got[i] != tr.Reqs[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestStreamTextEarlyStop(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(10)), 50)
	var buf bytes.Buffer
	WriteText(&buf, tr)
	sentinel := errStop{}
	count := 0
	_, _, err := StreamText(&buf, func(Request) error {
		count++
		if count == 10 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("early-stop error not returned: %v", err)
	}
	if count != 10 {
		t.Fatalf("callback ran %d times", count)
	}
}

type errStop struct{}

func (errStop) Error() string { return "stop" }

func TestStreamTextBadLine(t *testing.T) {
	if _, _, err := StreamText(strings.NewReader("1 2 3\n"), func(Request) error { return nil }); err == nil {
		t.Fatal("bad line accepted")
	}
}

// Truncated or corrupt binary streams must produce errors that name the
// failing record and its byte offset — the difference between "file is bad"
// and knowing where to point xxd.
func TestReadBinaryDescriptiveErrors(t *testing.T) {
	full := func() []byte {
		var buf bytes.Buffer
		tr := &Trace{Name: "AB", Reqs: []Request{
			{Arrival: 1, LBA: 8, Size: 4096, Op: Write},
			{Arrival: 2, LBA: 16, Size: 4096, Op: Read},
			{Arrival: 3, LBA: 24, Size: 4096, Op: Write},
		}}
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	headerLen := 4 + 1 + 2 + 8 // magic, name length, "AB", count

	cases := []struct {
		name string
		in   []byte
		want []string
	}{
		{"cut mid-name", full[:6], []string{"name", "offset 5"}},
		{"cut mid-count", full[:headerLen-3], []string{"record count", "offset 7"}},
		{"cut mid-record", full[:headerLen+2*recordSize+10],
			[]string{"record 2 of 3", fmt.Sprintf("offset %d", headerLen+2*recordSize)}},
		{"bad op", func() []byte {
			b := append([]byte(nil), full...)
			b[headerLen+recordSize+20] = 9 // second record's op byte
			return b
		}(), []string{"record 1", fmt.Sprintf("offset %d", headerLen+recordSize), "bad op 9"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadBinary(bytes.NewReader(c.in))
			if err == nil {
				t.Fatal("corrupt input accepted")
			}
			for _, w := range c.want {
				if !strings.Contains(err.Error(), w) {
					t.Fatalf("error %q does not mention %q", err, w)
				}
			}
		})
	}
}

// A header claiming 2^28 records backed by zero bytes of data must fail
// fast without preallocating the claimed size.
func TestReadBinaryCapsPreallocation(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("BIO1")
	buf.WriteByte(0)                             // empty name
	buf.Write([]byte{0, 0, 0, 0x10, 0, 0, 0, 0}) // count = 1<<28, no records
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
