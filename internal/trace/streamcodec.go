package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// Streaming codec layer: decoders expose trace files as Streams and
// encoders consume request-at-a-time, so multi-GB captures pass through
// tools in constant memory. Each decoder produces exactly the requests the
// batch reader of its format produces; Reset is supported whenever the
// underlying reader can seek (files can, pipes cannot).

// StreamingCount is the record-count sentinel a streaming binary writer
// emits when it cannot seek back to patch the real count: readers treat it
// as "records run to end of stream".
const StreamingCount = ^uint64(0)

// TextDecoder reads the text format as a Stream.
type TextDecoder struct {
	src     io.Reader
	sc      *bufio.Scanner
	name    string
	line    int
	pending string // first record line, consumed while scanning the header
	hasPend bool
	err     error
}

// NewTextDecoder starts decoding the text format from r. The header (name
// comment) is consumed immediately so Name is available before the first
// Next. Reset works when r is an io.Seeker.
func NewTextDecoder(r io.Reader) *TextDecoder {
	d := &TextDecoder{src: r}
	d.start()
	return d
}

// start (re)initializes scanning and consumes leading comments and blanks.
func (d *TextDecoder) start() {
	d.sc = bufio.NewScanner(d.src)
	d.sc.Buffer(make([]byte, 1<<16), 1<<20)
	d.line = 0
	d.pending, d.hasPend = "", false
	d.err = nil
	for d.sc.Scan() {
		d.line++
		s := strings.TrimSpace(d.sc.Text())
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, "#") {
			if rest, ok := strings.CutPrefix(s, "# name:"); ok {
				d.name = strings.TrimSpace(rest)
			}
			continue
		}
		d.pending, d.hasPend = s, true
		return
	}
	d.err = d.sc.Err()
}

// Name returns the trace name from the header comment.
func (d *TextDecoder) Name() string { return d.name }

// Next parses one record line.
func (d *TextDecoder) Next() (Request, bool, error) {
	if d.err != nil {
		return Request{}, false, d.err
	}
	var s string
	if d.hasPend {
		s, d.hasPend = d.pending, false
	} else {
		for {
			if !d.sc.Scan() {
				d.err = d.sc.Err()
				return Request{}, false, d.err
			}
			d.line++
			s = strings.TrimSpace(d.sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			break
		}
	}
	req, err := parseTextLine(s)
	if err != nil {
		d.err = fmt.Errorf("trace: line %d: %w", d.line, err)
		return Request{}, false, d.err
	}
	return req, true, nil
}

// Reset rewinds to the first record; the reader must seek.
func (d *TextDecoder) Reset() error {
	s, ok := d.src.(io.Seeker)
	if !ok {
		return fmt.Errorf("%w: text decoder over a non-seeking reader", ErrNoReset)
	}
	if _, err := s.Seek(0, io.SeekStart); err != nil {
		return err
	}
	d.start()
	return d.err
}

// BinaryDecoder reads the binary "BIO1" format as a Stream.
type BinaryDecoder struct {
	src     io.Reader
	br      *bufio.Reader
	name    string
	count   uint64 // StreamingCount means read to EOF
	i       uint64
	off     int64 // bytes consumed, for error reporting
	dataOff int64 // file offset of the first record, for Reset
	err     error
}

// NewBinaryDecoder reads the binary header from r and returns a decoder
// positioned at the first record. Reset works when r is an io.Seeker.
func NewBinaryDecoder(r io.Reader) (*BinaryDecoder, error) {
	d := &BinaryDecoder{src: r, br: bufio.NewReader(r)}
	var magic [4]byte
	if _, err := io.ReadFull(d.br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic at offset %d: %w", d.off, err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	d.off += int64(len(magic))
	nameLen, err := d.br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length at offset %d: %w", d.off, err)
	}
	d.off++
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(d.br, name); err != nil {
		return nil, fmt.Errorf("trace: reading %d-byte name at offset %d: %w", nameLen, d.off, err)
	}
	d.off += int64(nameLen)
	var count [8]byte
	if _, err := io.ReadFull(d.br, count[:]); err != nil {
		return nil, fmt.Errorf("trace: reading record count at offset %d: %w", d.off, err)
	}
	d.off += int64(len(count))
	d.name = string(name)
	d.count = binary.LittleEndian.Uint64(count[:])
	if d.count != StreamingCount && d.count > maxReasonableRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", d.count)
	}
	d.dataOff = d.off
	return d, nil
}

// Name returns the trace name from the header.
func (d *BinaryDecoder) Name() string { return d.name }

// Len returns the header's record count and whether it is known (a
// streaming writer that could not seek leaves it unknown).
func (d *BinaryDecoder) Len() (uint64, bool) {
	return d.count, d.count != StreamingCount
}

// Next reads one fixed-width record.
func (d *BinaryDecoder) Next() (Request, bool, error) {
	if d.err != nil {
		return Request{}, false, d.err
	}
	if d.count != StreamingCount && d.i >= d.count {
		return Request{}, false, nil
	}
	var rec [recordSize]byte
	if _, err := io.ReadFull(d.br, rec[:]); err != nil {
		if d.count == StreamingCount && err == io.EOF {
			return Request{}, false, nil // clean end at a record boundary
		}
		if d.count == StreamingCount {
			d.err = fmt.Errorf("trace: record %d at offset %d: %w", d.i, d.off, err)
		} else {
			d.err = fmt.Errorf("trace: record %d of %d at offset %d: %w", d.i, d.count, d.off, err)
		}
		return Request{}, false, d.err
	}
	req := decodeBinaryRecord(rec[:])
	if req.Op != Read && req.Op != Write {
		d.err = fmt.Errorf("trace: record %d at offset %d: bad op %d", d.i, d.off, req.Op)
		return Request{}, false, d.err
	}
	d.off += recordSize
	d.i++
	return req, true, nil
}

// Reset rewinds to the first record; the reader must seek.
func (d *BinaryDecoder) Reset() error {
	s, ok := d.src.(io.Seeker)
	if !ok {
		return fmt.Errorf("%w: binary decoder over a non-seeking reader", ErrNoReset)
	}
	if _, err := s.Seek(d.dataOff, io.SeekStart); err != nil {
		return err
	}
	d.br.Reset(d.src)
	d.off = d.dataOff
	d.i = 0
	d.err = nil
	return nil
}

// decodeBinaryRecord unpacks one fixed-width record (op unvalidated).
func decodeBinaryRecord(rec []byte) Request {
	return Request{
		Arrival:      int64(binary.LittleEndian.Uint64(rec[0:])),
		LBA:          binary.LittleEndian.Uint64(rec[8:]),
		Size:         binary.LittleEndian.Uint32(rec[16:]),
		Op:           Op(rec[20]),
		ServiceStart: int64(binary.LittleEndian.Uint64(rec[21:])),
		Finish:       int64(binary.LittleEndian.Uint64(rec[29:])),
	}
}

// CompressedDecoder reads the delta+varint "BIOZ" format as a Stream.
type CompressedDecoder struct {
	src   io.Reader
	br    *bufio.Reader
	name  string
	count uint64 // StreamingCount means read to EOF
	i     uint64
	err   error

	dataOff int64 // file offset of the first record, for Reset
	// Delta-decoding state, rewound by Reset.
	prevArrival int64
	prevEnd     uint64
}

// NewCompressedDecoder reads the compressed header from r and returns a
// decoder positioned at the first record. Reset works when r is an
// io.Seeker.
func NewCompressedDecoder(r io.Reader) (*CompressedDecoder, error) {
	d := &CompressedDecoder{src: r, br: bufio.NewReader(r)}
	var off int64
	var magic [4]byte
	if _, err := io.ReadFull(d.br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != compressedMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	off += int64(len(magic))
	nameLen, err := d.br.ReadByte()
	if err != nil {
		return nil, err
	}
	off++
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(d.br, name); err != nil {
		return nil, err
	}
	off += int64(nameLen)
	// Track the varint's width by counting bytes as they are consumed
	// (varints have no fixed width, and Reset needs the exact data offset).
	before := countBytes{br: d.br}
	count, err := binary.ReadUvarint(&before)
	if err != nil {
		return nil, err
	}
	off += before.n
	if count != StreamingCount && count > maxReasonableRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	d.name = string(name)
	d.count = count
	d.dataOff = off
	return d, nil
}

// countBytes wraps a ByteReader, counting bytes consumed.
type countBytes struct {
	br *bufio.Reader
	n  int64
}

func (c *countBytes) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

// Name returns the trace name from the header.
func (d *CompressedDecoder) Name() string { return d.name }

// Next decodes one delta-encoded record.
func (d *CompressedDecoder) Next() (Request, bool, error) {
	if d.err != nil {
		return Request{}, false, d.err
	}
	if d.count != StreamingCount && d.i >= d.count {
		return Request{}, false, nil
	}
	fail := func(err error) (Request, bool, error) {
		d.err = fmt.Errorf("trace: record %d: %w", d.i, err)
		return Request{}, false, d.err
	}
	arrivalDelta, err := binary.ReadUvarint(d.br)
	if err != nil {
		if d.count == StreamingCount && err == io.EOF {
			return Request{}, false, nil // clean end at a record boundary
		}
		return fail(err)
	}
	lbaDelta, err := binary.ReadVarint(d.br)
	if err != nil {
		return fail(err)
	}
	pages, err := binary.ReadUvarint(d.br)
	if err != nil {
		return fail(err)
	}
	if pages == 0 || pages > (1<<24) {
		return fail(fmt.Errorf("bad page count %d", pages))
	}
	opByte, err := d.br.ReadByte()
	if err != nil {
		return fail(err)
	}
	if Op(opByte) != Read && Op(opByte) != Write {
		return fail(fmt.Errorf("bad op %d", opByte))
	}
	wait, err := binary.ReadUvarint(d.br)
	if err != nil {
		return fail(err)
	}
	service, err := binary.ReadUvarint(d.br)
	if err != nil {
		return fail(err)
	}
	lba := int64(d.prevEnd) + lbaDelta
	if lba < 0 {
		return fail(fmt.Errorf("negative address"))
	}
	req := Request{
		Arrival: d.prevArrival + int64(arrivalDelta),
		LBA:     uint64(lba),
		Size:    uint32(pages) * PageSize,
		Op:      Op(opByte),
	}
	if wait != 0 || service != 0 {
		req.ServiceStart = req.Arrival + int64(wait)
		req.Finish = req.ServiceStart + int64(service)
	}
	d.prevArrival = req.Arrival
	d.prevEnd = req.EndLBA()
	d.i++
	return req, true, nil
}

// Reset rewinds to the first record; the reader must seek.
func (d *CompressedDecoder) Reset() error {
	s, ok := d.src.(io.Seeker)
	if !ok {
		return fmt.Errorf("%w: compressed decoder over a non-seeking reader", ErrNoReset)
	}
	if _, err := s.Seek(d.dataOff, io.SeekStart); err != nil {
		return err
	}
	d.br.Reset(d.src)
	d.i = 0
	d.err = nil
	d.prevArrival, d.prevEnd = 0, 0
	return nil
}

// NewDecoder sniffs the format (binary magic, compressed magic, else text)
// and returns the matching decoder. The reader must seek: sniffing rewinds,
// and all decoders over seekable readers support Reset.
func NewDecoder(r io.ReadSeeker) (Stream, error) {
	var magic [4]byte
	n, err := io.ReadFull(r, magic[:])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, err
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if n == len(magic) {
		switch magic {
		case binMagic:
			return NewBinaryDecoder(r)
		case compressedMagic:
			return NewCompressedDecoder(r)
		}
	}
	return NewTextDecoder(r), nil
}

// TextEncoder writes the text format request-at-a-time. Its output is
// byte-identical to WriteText over the same requests.
type TextEncoder struct {
	bw *bufio.Writer
}

// NewTextEncoder writes the header and returns an encoder.
func NewTextEncoder(w io.Writer, name string) (*TextEncoder, error) {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name: %s\n", name); err != nil {
		return nil, err
	}
	return &TextEncoder{bw: bw}, nil
}

// Write appends one record.
func (e *TextEncoder) Write(r Request) error {
	_, err := fmt.Fprintf(e.bw, "%d %d %d %s %d %d\n",
		r.Arrival, r.LBA, r.Size, r.Op, r.ServiceStart, r.Finish)
	return err
}

// Close flushes buffered records. The encoder must not be used afterwards.
func (e *TextEncoder) Close() error { return e.bw.Flush() }

// BinaryEncoder writes the binary format request-at-a-time. When the
// destination can seek, Close patches the real record count into the header
// and the file is byte-identical to WriteBinary; otherwise the header
// carries StreamingCount and readers run to EOF.
type BinaryEncoder struct {
	w        io.Writer
	bw       *bufio.Writer
	countOff int64
	seekable bool
	n        uint64
}

// NewBinaryEncoder writes the header and returns an encoder.
func NewBinaryEncoder(w io.Writer, name string) (*BinaryEncoder, error) {
	e := &BinaryEncoder{w: w, bw: bufio.NewWriter(w)}
	_, e.seekable = w.(io.WriteSeeker)
	if _, err := e.bw.Write(binMagic[:]); err != nil {
		return nil, err
	}
	nb := []byte(name)
	if len(nb) > 255 {
		nb = nb[:255]
	}
	if err := e.bw.WriteByte(byte(len(nb))); err != nil {
		return nil, err
	}
	if _, err := e.bw.Write(nb); err != nil {
		return nil, err
	}
	e.countOff = int64(len(binMagic) + 1 + len(nb))
	var count [8]byte
	placeholder := StreamingCount
	if e.seekable {
		placeholder = 0 // patched by Close
	}
	binary.LittleEndian.PutUint64(count[:], placeholder)
	if _, err := e.bw.Write(count[:]); err != nil {
		return nil, err
	}
	return e, nil
}

// Write appends one record.
func (e *BinaryEncoder) Write(r Request) error {
	var rec [recordSize]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(r.Arrival))
	binary.LittleEndian.PutUint64(rec[8:], r.LBA)
	binary.LittleEndian.PutUint32(rec[16:], r.Size)
	rec[20] = byte(r.Op)
	binary.LittleEndian.PutUint64(rec[21:], uint64(r.ServiceStart))
	binary.LittleEndian.PutUint64(rec[29:], uint64(r.Finish))
	if _, err := e.bw.Write(rec[:]); err != nil {
		return err
	}
	e.n++
	return nil
}

// Close flushes and, when the destination seeks, patches the record count.
func (e *BinaryEncoder) Close() error {
	if err := e.bw.Flush(); err != nil {
		return err
	}
	if !e.seekable {
		return nil
	}
	ws := e.w.(io.WriteSeeker)
	if _, err := ws.Seek(e.countOff, io.SeekStart); err != nil {
		return err
	}
	var count [8]byte
	binary.LittleEndian.PutUint64(count[:], e.n)
	if _, err := ws.Write(count[:]); err != nil {
		return err
	}
	_, err := ws.Seek(0, io.SeekEnd)
	return err
}

// WriteTextStream drains a stream into the text format.
func WriteTextStream(w io.Writer, s Stream) error {
	enc, err := NewTextEncoder(w, s.Name())
	if err != nil {
		return err
	}
	for {
		r, ok, err := s.Next()
		if err != nil {
			return err
		}
		if !ok {
			return enc.Close()
		}
		if err := enc.Write(r); err != nil {
			return err
		}
	}
}

// WriteBinaryStream drains a stream into the binary format.
func WriteBinaryStream(w io.Writer, s Stream) error {
	enc, err := NewBinaryEncoder(w, s.Name())
	if err != nil {
		return err
	}
	for {
		r, ok, err := s.Next()
		if err != nil {
			return err
		}
		if !ok {
			return enc.Close()
		}
		if err := enc.Write(r); err != nil {
			return err
		}
	}
}
