package telemetry

import "testing"

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	// le semantics: a value equal to a bound lands in that bound's bucket.
	for _, v := range []int64{0, 5, 10} {
		h.Observe(v)
	}
	for _, v := range []int64{11, 100} {
		h.Observe(v)
	}
	h.Observe(500)
	h.Observe(1001) // overflow
	counts := h.BucketCounts()
	want := []int64{3, 2, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, counts[i], want[i], counts)
		}
	}
	if h.Count() != 7 || h.Max() != 1001 || h.Min() != 0 {
		t.Fatalf("count=%d max=%d min=%d", h.Count(), h.Max(), h.Min())
	}
	if h.Sum() != 0+5+10+11+100+500+1001 {
		t.Fatalf("sum=%d", h.Sum())
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]int64{100, 200, 300, 400})
	// 100 observations spread uniformly: 25 per bucket over [0,400].
	for b := 0; b < 4; b++ {
		for i := 0; i < 25; i++ {
			h.Observe(int64(b*100 + 50))
		}
	}
	// Rank of p50 is 50 = exactly the end of bucket 2 (le=200), so linear
	// interpolation lands on the bucket's upper edge.
	if got := h.Quantile(0.50); got != 200 {
		t.Fatalf("p50 = %d, want 200", got)
	}
	// p95 rank 95 sits 20/25 of the way through the last bucket (300, 400],
	// but the bucket's upper edge clamps to the observed max (350).
	if got := h.Quantile(0.95); got < 300 || got > 350 {
		t.Fatalf("p95 = %d, want within (300, 350]", got)
	}
	if got := h.Quantile(1); got != 350 {
		t.Fatalf("p100 = %d, want max 350", got)
	}
	if got := h.Quantile(0); got != 50 {
		t.Fatalf("p0 = %d, want min 50", got)
	}
}

func TestHistogramQuantileMidBucket(t *testing.T) {
	h := NewHistogram([]int64{100})
	// 4 values in [0,100]: ranks interpolate linearly inside the bucket,
	// clamped to the observed [min, max] = [60, 90].
	for _, v := range []int64{60, 70, 80, 90} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 60 {
		// rank 2 of 4 -> 50% across [0,100] = 50, clamped up to min 60.
		t.Fatalf("p50 = %d, want clamp to 60", got)
	}
	if got := h.Quantile(0.99); got < 85 || got > 90 {
		t.Fatalf("p99 = %d, want near max 90", got)
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	h := NewHistogram([]int64{10})
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	var nilH *Histogram
	nilH.Observe(5) // must not panic
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 || nilH.Bounds() != nil {
		t.Fatal("nil histogram should be a no-op")
	}
}

func TestDefaultLatencyBucketsCoverFlashOps(t *testing.T) {
	b := DefaultLatencyBuckets()
	if b[0] != 1_000 {
		t.Fatalf("first bound %d, want 1µs", b[0])
	}
	last := b[len(b)-1]
	if last < 4_000_000_000 {
		t.Fatalf("last bound %d too small to cover GC stalls", last)
	}
	for i := 1; i < len(b); i++ {
		if b[i] != 2*b[i-1] {
			t.Fatalf("bounds not doubling at %d", i)
		}
	}
}
