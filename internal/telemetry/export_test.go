package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update ./internal/telemetry` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func exportFixture() (*Registry, *Tracer) {
	r := NewRegistry()
	r.Counter("emmc_requests_total", L("op", "read")).Add(3)
	r.Counter("emmc_requests_total", L("op", "write")).Add(5)
	r.Counter("ftl_erases_total").Add(2)
	r.Gauge("sim_queue_depth").Set(4)
	h := r.Histogram("core_service_ns", []int64{1000, 2000, 4000}, L("op", "read"))
	for _, v := range []int64{500, 1500, 1500, 3000, 9000} {
		h.Observe(v)
	}
	tr := NewTracer(16)
	tr.Span("core", "requests/read", "request", 1_000, 161_000, L("lba", "8"), L("bytes", "4096"))
	tr.Span("emmc", "channel/0", "xfer", 1_500, 50_000)
	tr.Instant("ftl", "gc", "erase", 80_000, L("moves", "3"))
	return r, tr
}

func TestGoldenPrometheus(t *testing.T) {
	r, _ := exportFixture()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Structural spot-checks independent of the golden bytes.
	for _, want := range []string{
		"# TYPE emmc_requests_total counter",
		`emmc_requests_total{op="read"} 3`,
		"# TYPE core_service_ns histogram",
		`core_service_ns_bucket{op="read",le="1000"} 1`,
		`core_service_ns_bucket{op="read",le="2000"} 3`,
		`core_service_ns_bucket{op="read",le="+Inf"} 5`,
		`core_service_ns_sum{op="read"} 15500`,
		`core_service_ns_count{op="read"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	goldenCompare(t, "metrics.golden.prom", buf.Bytes())
}

func TestGoldenChromeTrace(t *testing.T) {
	_, tr := exportFixture()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// The document must be valid JSON with the trace_event envelope.
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 1 process_name + 3 thread_name metadata + 3 events.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("got %d trace events, want 7:\n%s", len(doc.TraceEvents), buf.String())
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	if phases["M"] != 4 || phases["X"] != 2 || phases["i"] != 1 {
		t.Fatalf("phase mix %v", phases)
	}
	goldenCompare(t, "trace.golden.json", buf.Bytes())
}

func TestChromeTraceNilTracer(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer export not JSON: %v", err)
	}
}
