package telemetry

import (
	"sync"
	"testing"
)

func TestRegistryHandleIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", L("op", "read"))
	b := r.Counter("reqs_total", L("op", "read"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := r.Counter("reqs_total", L("op", "write"))
	if a == c {
		t.Fatal("different labels must return distinct counters")
	}
	// Label order must not matter.
	h1 := r.Histogram("lat_ns", []int64{10}, L("op", "read"), L("size", "4K"))
	h2 := r.Histogram("lat_ns", nil, L("size", "4K"), L("op", "read"))
	if h1 != h2 {
		t.Fatal("label order must not create a second histogram")
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(5)
	r.Histogram("z", nil).Observe(7)
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatal(err)
	}
	r.EachCounter(func(string, int64) { t.Fatal("nil registry visited a counter") })
	r.EachGauge(func(string, int64) { t.Fatal("nil registry visited a gauge") })
	r.EachHistogram(func(string, *Histogram) { t.Fatal("nil registry visited a histogram") })
}

// TestConcurrentIncrements exercises handle lookup, counter increments,
// gauge updates, and histogram observation from many goroutines; run under
// `go test -race` this is the package's data-race proof.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(128)
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("shared_total")
			g := r.Gauge("depth")
			h := r.Histogram("lat_ns", []int64{10, 100, 1000})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(int64(i % 1500))
				if i%100 == 0 {
					tr.Span("test", "w", "op", int64(i), int64(i+1))
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat_ns", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("depth").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if tr.Len()+int(tr.Dropped()) != workers*perWorker/100 {
		t.Fatalf("tracer recorded %d+%d events", tr.Len(), tr.Dropped())
	}
}
