package telemetry

// Scoped registries attribute metrics to the workload that produced them,
// the way the paper attributes device-level I/O back to individual
// applications. A job observes into its own child registry — same handle
// types, same lock-free hot path, zero extra cost per increment — and when
// it completes the child is merged into the parent, so a server-wide
// registry still reports fleet totals while each job's registry remains
// queryable as that job's own record.
//
// Merge semantics, chosen so that "parent totals equal the merge of every
// child snapshot" holds exactly:
//
//   - counters add;
//   - histograms add bucket-by-bucket (sum, count, max, and min fold in);
//   - gauges add — a child's final gauge value is treated as its
//     contribution to the parent (a completed job's queue depths and
//     virtual-time gauges are deltas from zero, so addition is the only
//     associative choice).
//
// Snapshot produces an immutable deep copy: taking one never touches the
// source's hot-path atomics beyond loads, so live jobs keep observing
// lock-free while a snapshot is cut.

// Child returns a fresh registry scoped under r. The child is an ordinary
// registry — handles resolved from it are plain counters/gauges/histograms
// with no extra indirection — plus a parent link that MergeIntoParent
// folds it through. A nil registry returns a nil child, preserving the
// "telemetry off" fast path end to end.
func (r *Registry) Child() *Registry {
	if r == nil {
		return nil
	}
	c := NewRegistry()
	c.parent = r
	return c
}

// Parent returns the registry this one was scoped under (nil at the root).
func (r *Registry) Parent() *Registry {
	if r == nil {
		return nil
	}
	return r.parent
}

// MergeIntoParent folds the registry's current state into its parent, as a
// completed job publishes its metrics to the server-wide registry. It is a
// no-op on a nil or root registry. Calling it twice double-counts; the
// owner of the job lifecycle calls it exactly once, at completion.
func (r *Registry) MergeIntoParent() {
	if r == nil || r.parent == nil {
		return
	}
	r.parent.Merge(r)
}

// Snapshot returns an immutable deep copy of the registry: fresh handles
// holding the source's current values. The copy has no parent. Snapshots
// are what the result store keeps for finished jobs — the source registry
// can keep moving (or be dropped) without disturbing the record.
func (r *Registry) Snapshot() *Registry {
	if r == nil {
		return nil
	}
	snap := NewRegistry()
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, c := range r.counters {
		nc := &Counter{}
		nc.v.Store(c.Value())
		snap.counters[k] = nc
	}
	for k, g := range r.gauges {
		ng := &Gauge{}
		ng.v.Store(g.Value())
		snap.gauges[k] = ng
	}
	for k, h := range r.hists {
		nh := NewHistogram(h.bounds)
		nh.merge(h)
		snap.hists[k] = nh
	}
	return snap
}

// Merge folds src's current state into r: counters and histograms add,
// gauges add (see the package comment on scoped registries for why).
// Metrics missing from r are created with src's shape. Merging a registry
// into itself is a bug (it would double every series) and is ignored.
// Both registries remain usable afterwards; src is not reset.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil || r == src {
		return
	}
	// Snapshot src's maps under its lock, then fold into r under r's lock.
	// Taking both locks at once would invite lock-order inversion if two
	// registries ever merged into each other from different goroutines.
	src.mu.Lock()
	counters := make(map[metricKey]int64, len(src.counters))
	for k, c := range src.counters {
		counters[k] = c.Value()
	}
	gauges := make(map[metricKey]int64, len(src.gauges))
	for k, g := range src.gauges {
		gauges[k] = g.Value()
	}
	hists := make(map[metricKey]*Histogram, len(src.hists))
	for k, h := range src.hists {
		frozen := NewHistogram(h.bounds)
		frozen.merge(h)
		hists[k] = frozen
	}
	src.mu.Unlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range counters {
		c, ok := r.counters[k]
		if !ok {
			c = &Counter{}
			r.counters[k] = c
		}
		c.Add(v)
	}
	for k, v := range gauges {
		g, ok := r.gauges[k]
		if !ok {
			g = &Gauge{}
			r.gauges[k] = g
		}
		g.Add(v)
	}
	for k, sh := range hists {
		h, ok := r.hists[k]
		if !ok {
			h = NewHistogram(sh.bounds)
			r.hists[k] = h
		}
		h.merge(sh)
	}
}
