// Package telemetry is the reproduction's observability subsystem: a
// zero-dependency metrics registry (counters, gauges, fixed-bucket latency
// histograms) and a span tracer, both keyed to **simulation time** —
// int64 nanoseconds since simulation start, the same clock internal/sim
// advances — never wall-clock.
//
// The design follows the paper's own measurement discipline. BIOtracer
// (§II) records three timestamps per request into a bounded 32 KB in-RAM
// log so the instrument's overhead stays small and measurable; Tracer
// mirrors that with a bounded ring buffer of spans that drops the oldest
// records first. All handles are nil-safe: a nil *Registry hands out nil
// *Counter/*Gauge/*Histogram values whose methods are no-ops, so
// instrumented hot paths pay only a branch-predictable nil check when
// telemetry is off (the paper's ~2% tracing-overhead budget is the bar).
//
// Snapshots export as Prometheus text (WritePrometheus) and as Chrome
// trace-event JSON (WriteChromeTrace) loadable in chrome://tracing or
// Perfetto.
package telemetry

import "sync/atomic"

// Label is one metric or span annotation, rendered as `key="value"` in the
// Prometheus exposition and as an args entry in Chrome traces.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil Counter is a no-op, so callers can hold handles from a nil
// Registry without guarding every increment.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value (queue depth, buffer occupancy, virtual
// time). A nil Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
