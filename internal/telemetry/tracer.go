package telemetry

import "sync"

// EventKind distinguishes span records from instantaneous markers.
type EventKind uint8

const (
	// SpanEvent covers a [Begin, End] interval of simulation time.
	SpanEvent EventKind = iota
	// InstantEvent marks a single point in time (Begin == End).
	InstantEvent
)

// Event is one trace record. Layer attributes the event to a subsystem
// (core, emmc, ftl, sim); Track is the timeline it renders on in Perfetto
// (one "thread" per track, e.g. "requests/read" or "channel/0").
type Event struct {
	Kind   EventKind
	Layer  string
	Track  string
	Name   string
	Begin  int64 // simulation ns
	End    int64 // simulation ns (== Begin for instants)
	Labels []Label
}

// DefaultTracerCapacity bounds the ring buffer at 4096 events — the same
// order of memory as BIOtracer's 32 KB in-RAM record log (§II), and for the
// same reason: the instrument must not grow without bound under load.
const DefaultTracerCapacity = 4096

// Tracer records spans and instant events into a bounded ring buffer.
// When full, the oldest events are overwritten first, exactly like
// BIOtracer's circular log. A nil Tracer is a no-op.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest event
	n       int // live events
	dropped int64
}

// NewTracer builds a tracer holding up to capacity events
// (DefaultTracerCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCapacity
	}
	return &Tracer{buf: make([]Event, capacity)}
}

func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < len(t.buf) {
		t.buf[(t.start+t.n)%len(t.buf)] = ev
		t.n++
		return
	}
	// Full: overwrite the oldest slot.
	t.buf[t.start] = ev
	t.start = (t.start + 1) % len(t.buf)
	t.dropped++
}

// Span records a [begin, end] interval on the given layer/track.
func (t *Tracer) Span(layer, track, name string, begin, end int64, labels ...Label) {
	if t == nil {
		return
	}
	if end < begin {
		end = begin
	}
	t.record(Event{Kind: SpanEvent, Layer: layer, Track: track, Name: name,
		Begin: begin, End: end, Labels: labels})
}

// Instant records a point event.
func (t *Tracer) Instant(layer, track, name string, at int64, labels ...Label) {
	if t == nil {
		return
	}
	t.record(Event{Kind: InstantEvent, Layer: layer, Track: track, Name: name,
		Begin: at, End: at, Labels: labels})
}

// Events returns the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Dropped returns how many events were overwritten because the ring was
// full — nonzero means the buffer (-trace-buffer) was too small for the
// run and the exported trace is a suffix of the replay.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// CountSpans returns how many buffered events match the layer and name
// (either may be empty to match everything).
func (t *Tracer) CountSpans(layer, name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for i := 0; i < t.n; i++ {
		ev := &t.buf[(t.start+i)%len(t.buf)]
		if ev.Kind != SpanEvent {
			continue
		}
		if (layer == "" || ev.Layer == layer) && (name == "" || ev.Name == name) {
			n++
		}
	}
	return n
}
