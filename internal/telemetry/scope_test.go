package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestChildMergeIntoParent(t *testing.T) {
	parent := NewRegistry()
	parent.Counter("reqs", L("op", "read")).Add(10)

	child := parent.Child()
	if child.Parent() != parent {
		t.Fatal("child does not point at its parent")
	}
	child.Counter("reqs", L("op", "read")).Add(3)
	child.Counter("reqs", L("op", "write")).Add(7)
	child.Gauge("depth").Set(4)
	child.Histogram("lat", []int64{10, 100}).Observe(5)
	child.Histogram("lat", []int64{10, 100}).Observe(50)

	// The parent is untouched until the merge: observations into a child
	// must never leak upward mid-job.
	if got := parent.Counter("reqs", L("op", "read")).Value(); got != 10 {
		t.Fatalf("parent saw child increments before merge: %d", got)
	}

	child.MergeIntoParent()
	if got := parent.Counter("reqs", L("op", "read")).Value(); got != 13 {
		t.Errorf("merged read counter = %d, want 13", got)
	}
	if got := parent.Counter("reqs", L("op", "write")).Value(); got != 7 {
		t.Errorf("merged write counter (created by merge) = %d, want 7", got)
	}
	if got := parent.Gauge("depth").Value(); got != 4 {
		t.Errorf("merged gauge = %d, want 4", got)
	}
	h := parent.Histogram("lat", []int64{10, 100})
	if h.Count() != 2 || h.Sum() != 55 {
		t.Errorf("merged histogram count=%d sum=%d, want 2/55", h.Count(), h.Sum())
	}

	// The child remains readable after the merge — it is the job's record.
	if got := child.Counter("reqs", L("op", "write")).Value(); got != 7 {
		t.Errorf("child mutated by merge: %d", got)
	}
}

func TestNilChildStaysNil(t *testing.T) {
	var r *Registry
	c := r.Child()
	if c != nil {
		t.Fatal("nil registry produced a non-nil child")
	}
	// The whole job lifecycle must be inert on nil.
	c.Counter("x").Inc()
	c.MergeIntoParent()
	if s := c.Snapshot(); s != nil {
		t.Fatal("nil snapshot is not nil")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	r := NewRegistry().Child() // snapshot of a child must drop the parent link
	r.Counter("c").Add(2)
	r.Gauge("g").Set(9)
	r.Histogram("h", []int64{10}).Observe(3)

	snap := r.Snapshot()
	if snap.Parent() != nil {
		t.Error("snapshot kept a parent link; MergeIntoParent on it would double-count")
	}

	r.Counter("c").Add(100)
	r.Gauge("g").Set(-1)
	r.Histogram("h", []int64{10}).Observe(99)

	if got := snap.Counter("c").Value(); got != 2 {
		t.Errorf("snapshot counter moved with source: %d", got)
	}
	if got := snap.Gauge("g").Value(); got != 9 {
		t.Errorf("snapshot gauge moved with source: %d", got)
	}
	h := snap.Histogram("h", []int64{10})
	if h.Count() != 1 || h.Sum() != 3 || h.Max() != 3 || h.Min() != 3 {
		t.Errorf("snapshot histogram moved with source: count=%d sum=%d max=%d min=%d",
			h.Count(), h.Sum(), h.Max(), h.Min())
	}
}

func TestMergeRebucketsDifferingBounds(t *testing.T) {
	src := NewRegistry()
	sh := src.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{5, 50, 500, 5000} {
		sh.Observe(v)
	}

	dst := NewRegistry()
	dst.Histogram("lat", []int64{100}) // coarser shape already present
	dst.Merge(src)

	h := dst.Histogram("lat", []int64{100})
	if h.Count() != 4 || h.Sum() != 5555 {
		t.Fatalf("rebucketed count=%d sum=%d, want 4/5555", h.Count(), h.Sum())
	}
	counts := h.BucketCounts()
	// Source buckets ≤100 land in the ≤100 bucket (at their upper bound);
	// the 1000 bucket and the overflow (re-attributed at src max) land in
	// dst's overflow.
	if counts[0] != 2 || counts[1] != 2 {
		t.Errorf("rebucketed counts = %v, want [2 2]", counts)
	}
	if h.Max() != 5000 || h.Min() != 5 {
		t.Errorf("extrema not folded: max=%d min=%d", h.Max(), h.Min())
	}
}

func TestMergeSelfAndNilIgnored(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Merge(r)
	r.Merge(nil)
	(*Registry)(nil).Merge(r)
	if got := r.Counter("c").Value(); got != 3 {
		t.Fatalf("self/nil merge mutated the registry: %d", got)
	}
}

// TestParentTotalsEqualMergedSnapshots is the acceptance property: a parent
// that only ever receives child merges reports exactly what merging every
// child's snapshot into a fresh registry reports.
func TestParentTotalsEqualMergedSnapshots(t *testing.T) {
	parent := NewRegistry()
	var snaps []*Registry
	for i := 0; i < 3; i++ {
		c := parent.Child()
		c.Counter("reqs", L("job", "any")).Add(int64(10 * (i + 1)))
		c.Histogram("lat", []int64{10, 100}).Observe(int64(7 * (i + 1)))
		c.Gauge("vtime").Set(int64(i + 1))
		snaps = append(snaps, c.Snapshot())
		c.MergeIntoParent()
	}

	recon := NewRegistry()
	for _, s := range snaps {
		recon.Merge(s)
	}

	var a, b bytes.Buffer
	if err := parent.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := recon.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("parent exposition differs from merged snapshots:\n--- parent ---\n%s--- merged ---\n%s",
			a.String(), b.String())
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", L("path", `C:\tmp`), L("q", `say "hi"`), L("nl", "a\nb")).Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`path="C:\\tmp"`,
		`q="say \"hi\""`,
		`nl="a\nb"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing escaped label %q:\n%s", want, out)
		}
	}
	// No raw newline may survive inside a sample line.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.Count(line, `"`)%2 != 0 {
			t.Errorf("unbalanced quotes (broken line split): %q", line)
		}
	}
}

// TestPrometheusHistogramContract parses real exposition output and checks
// the properties scrapers rely on: cumulative buckets never decrease, the
// +Inf bucket exists, and it equals the _count series.
func TestPrometheusHistogramContract(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", []int64{10, 100, 1000}, L("op", "read"))
	for _, v := range []int64{1, 5, 50, 500, 5000, 50000} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	var buckets []int64
	infSeen := false
	var infVal, count int64
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "lat_ns_bucket{"):
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			buckets = append(buckets, v)
			if strings.Contains(line, `le="+Inf"`) {
				infSeen, infVal = true, v
			}
		case strings.HasPrefix(line, "lat_ns_count{"):
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			count = v
		}
	}
	if len(buckets) != 4 {
		t.Fatalf("got %d bucket series, want 4 (3 bounds + +Inf)", len(buckets))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] < buckets[i-1] {
			t.Fatalf("cumulative buckets decreased: %v", buckets)
		}
	}
	if !infSeen {
		t.Fatal("no le=\"+Inf\" bucket emitted")
	}
	if infVal != count || count != 6 {
		t.Fatalf("+Inf bucket %d != _count %d (want 6)", infVal, count)
	}
}

// TestSnapshotMergeRace hammers Snapshot and Merge while writer goroutines
// keep incrementing live handles. Run under -race (make check does); the
// assertions here only pin the weaker liveness property — every snapshot is
// internally consistent and totals never run backwards.
func TestSnapshotMergeRace(t *testing.T) {
	parent := NewRegistry()
	child := parent.Child()
	const writers = 4
	const perWriter = 2000

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := child.Counter("ops", L("w", fmt.Sprint(w)))
			h := child.Histogram("lat", []int64{10, 100}, L("w", fmt.Sprint(w)))
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(int64(i % 200))
				child.Gauge("depth").Add(1)
			}
		}(w)
	}

	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		scratch := NewRegistry()
		var lastTotal int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := child.Snapshot()
			var total int64
			snap.EachCounter(func(_ string, v int64) { total += v })
			if total < lastTotal {
				t.Errorf("snapshot totals ran backwards: %d < %d", total, lastTotal)
				return
			}
			lastTotal = total
			scratch.Merge(snap)
			var buf bytes.Buffer
			if err := snap.WritePrometheus(&buf); err != nil {
				t.Errorf("exposition during hammer: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	snapWG.Wait()

	child.MergeIntoParent()
	var total int64
	parent.EachCounter(func(name string, v int64) {
		if strings.HasPrefix(name, "ops") {
			total += v
		}
	})
	if total != writers*perWriter {
		t.Fatalf("final merged total %d, want %d", total, writers*perWriter)
	}
}
