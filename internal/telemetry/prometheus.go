package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// WritePrometheus writes the registry's current state in the Prometheus
// text exposition format (version 0.0.4): one `# TYPE` header per metric
// family, histograms expanded into cumulative `_bucket{le=...}` series plus
// `_sum` and `_count`. Output order is deterministic (family, then label
// set), so the format is golden-file testable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	defer r.mu.Unlock()

	writeFamily := func(keys []metricKey, typ string, emit func(k metricKey) error) error {
		lastFamily := ""
		for _, k := range keys {
			if k.family != lastFamily {
				if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", k.family, typ); err != nil {
					return err
				}
				lastFamily = k.family
			}
			if err := emit(k); err != nil {
				return err
			}
		}
		return nil
	}

	if err := writeFamily(sortedKeys(r.counters), "counter", func(k metricKey) error {
		_, err := fmt.Fprintf(bw, "%s %d\n", k.String(), r.counters[k].Value())
		return err
	}); err != nil {
		return err
	}
	if err := writeFamily(sortedKeys(r.gauges), "gauge", func(k metricKey) error {
		_, err := fmt.Fprintf(bw, "%s %d\n", k.String(), r.gauges[k].Value())
		return err
	}); err != nil {
		return err
	}
	if err := writeFamily(sortedKeys(r.hists), "histogram", func(k metricKey) error {
		h := r.hists[k]
		counts := h.BucketCounts()
		var cum int64
		for i, bound := range h.Bounds() {
			cum += counts[i]
			if _, err := fmt.Fprintf(bw, "%s_bucket{%s} %d\n",
				k.family, spliceLE(k.labels, fmt.Sprintf("%d", bound)), cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(bw, "%s_bucket{%s} %d\n",
			k.family, spliceLE(k.labels, "+Inf"), cum); err != nil {
			return err
		}
		sumKey := metricKey{k.family + "_sum", k.labels}
		countKey := metricKey{k.family + "_count", k.labels}
		if _, err := fmt.Fprintf(bw, "%s %d\n", sumKey.String(), h.Sum()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(bw, "%s %d\n", countKey.String(), h.Count())
		return err
	}); err != nil {
		return err
	}
	return bw.Flush()
}

// spliceLE appends the `le` label to an already-rendered label set.
func spliceLE(labels, le string) string {
	if labels == "" {
		return `le="` + le + `"`
	}
	return labels + `,le="` + le + `"`
}
