package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// The Chrome trace-event exporter maps the tracer's model onto the
// trace_event JSON format (the `chrome://tracing` / Perfetto import
// format): every distinct (layer, track) pair becomes one "thread" under a
// single process, named by metadata events, so a replay opens as parallel
// timelines — request lifecycles, per-channel transfers, per-plane
// programs, GC markers — each attributed to its layer.

type chromeEvent struct {
	Name  string       `json:"name"`
	Cat   string       `json:"cat,omitempty"`
	Phase string       `json:"ph"`
	TS    jsonMicros   `json:"ts"`
	Dur   *jsonMicros  `json:"dur,omitempty"`
	PID   int          `json:"pid"`
	TID   int          `json:"tid"`
	Scope string       `json:"s,omitempty"`
	Args  *orderedArgs `json:"args,omitempty"`
}

// jsonMicros renders simulation nanoseconds as fractional microseconds,
// the unit the trace_event format expects.
type jsonMicros int64

func (m jsonMicros) MarshalJSON() ([]byte, error) {
	return []byte(strconv.FormatFloat(float64(m)/1e3, 'f', -1, 64)), nil
}

// orderedArgs marshals labels preserving their order, keeping the exported
// JSON byte-stable for golden tests (map-backed args would not be).
type orderedArgs []Label

func (a orderedArgs) MarshalJSON() ([]byte, error) {
	buf := []byte{'{'}
	for i, l := range a {
		if i > 0 {
			buf = append(buf, ',')
		}
		k, err := json.Marshal(l.Key)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(l.Value)
		if err != nil {
			return nil, err
		}
		buf = append(buf, k...)
		buf = append(buf, ':')
		buf = append(buf, v...)
	}
	return append(buf, '}'), nil
}

const chromePID = 1

// WriteChromeTrace exports the buffered events as a trace_event JSON
// document. Tracks are assigned thread IDs in order of first appearance,
// and each gets a thread_name metadata record, so the file is deterministic
// for a deterministic replay.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events() // nil-safe; empty for a nil tracer
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	enc := func(ev chromeEvent, last bool) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if !last {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		return nil
	}

	type trackKey struct{ layer, track string }
	tids := map[trackKey]int{}
	var meta []chromeEvent
	nextTID := 1
	meta = append(meta, chromeEvent{
		Name: "process_name", Phase: "M", PID: chromePID, TID: 0,
		Args: &orderedArgs{L("name", "emmcio replay")},
	})
	body := make([]chromeEvent, 0, len(events))
	for _, ev := range events {
		k := trackKey{ev.Layer, ev.Track}
		tid, ok := tids[k]
		if !ok {
			tid = nextTID
			nextTID++
			tids[k] = tid
			name := ev.Track
			if ev.Layer != "" {
				name = ev.Layer + "/" + ev.Track
			}
			meta = append(meta, chromeEvent{
				Name: "thread_name", Phase: "M", PID: chromePID, TID: tid,
				Args: &orderedArgs{L("name", name)},
			})
		}
		ce := chromeEvent{
			Name: ev.Name, Cat: ev.Layer, PID: chromePID, TID: tid,
			TS: jsonMicros(ev.Begin),
		}
		if ev.Kind == InstantEvent {
			ce.Phase = "i"
			ce.Scope = "t" // thread-scoped instant marker
		} else {
			ce.Phase = "X"
			dur := jsonMicros(ev.End - ev.Begin)
			ce.Dur = &dur
		}
		if len(ev.Labels) > 0 {
			args := orderedArgs(ev.Labels)
			ce.Args = &args
		}
		body = append(body, ce)
	}
	for i, ev := range meta {
		if err := enc(ev, len(body) == 0 && i == len(meta)-1); err != nil {
			return err
		}
	}
	for i, ev := range body {
		if err := enc(ev, i == len(body)-1); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
