package telemetry

import (
	"fmt"
	"io"
)

// WriteSummary prints a human-readable digest of a run's telemetry: every
// histogram with count and p50/p95/p99/max (in milliseconds, since all
// built-in histograms record nanoseconds), every counter and gauge, and the
// tracer's occupancy. Both arguments may be nil.
func WriteSummary(w io.Writer, reg *Registry, tc *Tracer) error {
	if reg == nil && tc == nil {
		return nil
	}
	if _, err := fmt.Fprintln(w, "-- telemetry summary --"); err != nil {
		return err
	}
	var err error
	if reg != nil {
		wrote := false
		reg.EachHistogram(func(name string, h *Histogram) {
			if err != nil {
				return
			}
			if !wrote {
				_, err = fmt.Fprintln(w, "latency histograms (ms):")
				wrote = true
				if err != nil {
					return
				}
			}
			_, err = fmt.Fprintf(w, "  %-46s count=%-8d p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
				name, h.Count(),
				float64(h.Quantile(0.50))/1e6, float64(h.Quantile(0.95))/1e6,
				float64(h.Quantile(0.99))/1e6, float64(h.Max())/1e6)
		})
		if err != nil {
			return err
		}
		wrote = false
		reg.EachCounter(func(name string, value int64) {
			if err != nil {
				return
			}
			if !wrote {
				_, err = fmt.Fprintln(w, "counters:")
				wrote = true
				if err != nil {
					return
				}
			}
			_, err = fmt.Fprintf(w, "  %-46s %d\n", name, value)
		})
		if err != nil {
			return err
		}
		wrote = false
		reg.EachGauge(func(name string, value int64) {
			if err != nil {
				return
			}
			if !wrote {
				_, err = fmt.Fprintln(w, "gauges:")
				wrote = true
				if err != nil {
					return
				}
			}
			_, err = fmt.Fprintf(w, "  %-46s %d\n", name, value)
		})
		if err != nil {
			return err
		}
	}
	if tc != nil {
		_, err = fmt.Fprintf(w, "tracer: %d events buffered (cap %d, %d dropped)\n",
			tc.Len(), tc.Cap(), tc.Dropped())
	}
	return err
}
