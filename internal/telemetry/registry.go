package telemetry

import (
	"sort"
	"strings"
	"sync"
)

// metricKey identifies one metric instance: a family name plus its rendered
// label set (`op="read"`, possibly empty). Keeping the two separate lets the
// Prometheus exporter splice the histogram `le` label in cleanly.
type metricKey struct {
	family string
	labels string
}

func (k metricKey) String() string {
	if k.labels == "" {
		return k.family
	}
	return k.family + "{" + k.labels + "}"
}

// renderLabels joins labels in key-sorted order so the same set always maps
// to the same metric regardless of call-site ordering.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Registry hands out named metric handles and snapshots them for export.
// It is safe for concurrent use; handle lookups take a mutex, so hot paths
// should resolve their handles once up front and increment lock-free.
// A nil *Registry returns nil handles everywhere, which are themselves
// no-ops — instrumentation is off by default and needs no guards.
type Registry struct {
	mu       sync.Mutex
	counters map[metricKey]*Counter
	gauges   map[metricKey]*Gauge
	hists    map[metricKey]*Histogram
	// parent, when non-nil, is the registry this one was scoped under via
	// Child; MergeIntoParent folds through it. See scope.go.
	parent *Registry
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[metricKey]*Counter{},
		gauges:   map[metricKey]*Gauge{},
		hists:    map[metricKey]*Histogram{},
	}
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	k := metricKey{name, renderLabels(labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	k := metricKey{name, renderLabels(labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the histogram for name+labels, creating it with the
// given bucket bounds on first use (later calls reuse the existing buckets;
// nil bounds select DefaultLatencyBuckets).
func (r *Registry) Histogram(name string, bounds []int64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	k := metricKey{name, renderLabels(labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		if bounds == nil {
			bounds = DefaultLatencyBuckets()
		}
		h = NewHistogram(bounds)
		r.hists[k] = h
	}
	return h
}

func sortedKeys[M ~map[metricKey]V, V any](m M) []metricKey {
	keys := make([]metricKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].family != keys[j].family {
			return keys[i].family < keys[j].family
		}
		return keys[i].labels < keys[j].labels
	})
	return keys
}

// EachCounter visits every counter in deterministic (name, labels) order.
// The name includes the rendered label set.
func (r *Registry) EachCounter(fn func(name string, value int64)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range sortedKeys(r.counters) {
		fn(k.String(), r.counters[k].Value())
	}
}

// EachGauge visits every gauge in deterministic order.
func (r *Registry) EachGauge(fn func(name string, value int64)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range sortedKeys(r.gauges) {
		fn(k.String(), r.gauges[k].Value())
	}
}

// EachHistogram visits every histogram in deterministic order.
func (r *Registry) EachHistogram(fn func(name string, h *Histogram)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range sortedKeys(r.hists) {
		fn(k.String(), r.hists[k])
	}
}
