package telemetry

import (
	"fmt"
	"testing"
)

func TestTracerRecordsInOrder(t *testing.T) {
	tr := NewTracer(8)
	tr.Span("core", "requests/read", "request", 100, 200, L("lba", "8"))
	tr.Instant("ftl", "gc", "erase", 150)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Kind != SpanEvent || evs[0].Begin != 100 || evs[0].End != 200 {
		t.Fatalf("span event %+v", evs[0])
	}
	if evs[1].Kind != InstantEvent || evs[1].Begin != 150 || evs[1].End != 150 {
		t.Fatalf("instant event %+v", evs[1])
	}
	if tr.Dropped() != 0 || tr.Len() != 2 || tr.Cap() != 8 {
		t.Fatalf("dropped=%d len=%d cap=%d", tr.Dropped(), tr.Len(), tr.Cap())
	}
}

func TestTracerWraparoundDropsOldestFirst(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Span("core", "t", fmt.Sprintf("ev%d", i), int64(i), int64(i+1))
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want capacity 4", len(evs))
	}
	// The four newest survive, oldest first.
	for i, ev := range evs {
		want := fmt.Sprintf("ev%d", 6+i)
		if ev.Name != want {
			t.Fatalf("event %d is %q, want %q", i, ev.Name, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestTracerCountSpans(t *testing.T) {
	tr := NewTracer(16)
	tr.Span("core", "requests/read", "request", 0, 1)
	tr.Span("core", "requests/write", "request", 1, 2)
	tr.Span("emmc", "channel/0", "xfer", 0, 1)
	tr.Instant("core", "requests/read", "request", 5) // instants do not count
	if n := tr.CountSpans("core", "request"); n != 2 {
		t.Fatalf("CountSpans(core, request) = %d", n)
	}
	if n := tr.CountSpans("", ""); n != 3 {
		t.Fatalf("CountSpans(all) = %d", n)
	}
}

func TestTracerNilAndBackwardSpan(t *testing.T) {
	var tr *Tracer
	tr.Span("a", "b", "c", 0, 1) // no panic
	tr.Instant("a", "b", "c", 0)
	if tr.Events() != nil || tr.Len() != 0 || tr.Dropped() != 0 || tr.Cap() != 0 {
		t.Fatal("nil tracer should be inert")
	}
	real := NewTracer(2)
	real.Span("a", "b", "c", 10, 5) // end before begin clamps
	if ev := real.Events()[0]; ev.End != 10 {
		t.Fatalf("backward span end = %d, want clamp to 10", ev.End)
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	if NewTracer(0).Cap() != DefaultTracerCapacity {
		t.Fatal("default capacity not applied")
	}
}
