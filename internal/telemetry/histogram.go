package telemetry

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket latency histogram with lock-free observation.
// Bucket i counts observations v <= bounds[i] (Prometheus `le` semantics);
// one extra overflow bucket counts everything above the last bound. The
// exact maximum is tracked separately so tail percentiles interpolate
// against the real extreme rather than +Inf.
//
// A nil Histogram is a no-op, matching the rest of the package.
type Histogram struct {
	bounds []int64 // strictly increasing upper bounds, in the observed unit (ns)
	counts []atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
	max    atomic.Int64
	min    atomic.Int64 // stored negated so the zero value means "unset"
}

// DefaultLatencyBuckets returns exponential nanosecond bounds from 1 µs to
// ~4.3 s (doubling), a range that covers both single flash-page operations
// (Table V: 160 µs reads) and multi-second GC-stalled requests.
func DefaultLatencyBuckets() []int64 {
	bounds := make([]int64, 0, 23)
	for b := int64(1_000); b <= 4_294_967_296; b *= 2 {
		bounds = append(bounds, b)
	}
	return bounds
}

// NewHistogram builds a histogram over the given strictly increasing upper
// bounds. It panics on unordered bounds — a configuration bug, not a
// runtime condition.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	h := &Histogram{bounds: append([]int64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// bucketOf returns the index of the first bound >= v (binary search), or
// len(bounds) for the overflow bucket.
func (h *Histogram) bucketOf(v int64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[h.bucketOf(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if cur != 0 && -v <= cur || h.min.CompareAndSwap(cur, -v-1) {
			break
		}
	}
}

// merge folds src's current state into h: bucket counts, sum, and count
// add; max and min fold. Identical bucket grids (the only case the
// registry produces, since families share bounds) merge bucket-for-bucket;
// a differing grid re-buckets each src bucket at its upper bound and the
// overflow at src's observed maximum, which keeps cumulative counts
// monotone at the cost of intra-bucket precision.
func (h *Histogram) merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	sameBounds := len(h.bounds) == len(src.bounds)
	if sameBounds {
		for i := range h.bounds {
			if h.bounds[i] != src.bounds[i] {
				sameBounds = false
				break
			}
		}
	}
	for i := range src.counts {
		c := src.counts[i].Load()
		if c == 0 {
			continue
		}
		switch {
		case sameBounds:
			h.counts[i].Add(c)
		case i < len(src.bounds):
			h.counts[h.bucketOf(src.bounds[i])].Add(c)
		default:
			h.counts[h.bucketOf(src.max.Load())].Add(c)
		}
	}
	h.sum.Add(src.sum.Load())
	h.count.Add(src.count.Load())
	for {
		cur, v := h.max.Load(), src.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	if neg := src.min.Load(); neg != 0 {
		v := -neg - 1
		for {
			cur := h.min.Load()
			if cur != 0 && -v <= cur || h.min.CompareAndSwap(cur, -v-1) {
				break
			}
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed value.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Max returns the largest observed value.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Min returns the smallest observed value (0 before any observation).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	neg := h.min.Load()
	if neg == 0 {
		return 0
	}
	return -neg - 1
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear interpolation
// inside the covering bucket: the bucket's lower edge plus the rank's
// fractional position scaled across the bucket width. The overflow bucket
// interpolates between the last bound and the observed maximum, and every
// estimate is clamped to [Min, Max] so a coarse grid cannot report a value
// outside what was actually observed.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		var lo int64
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.Max()
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - float64(cum)) / float64(c)
		v := int64(math.Round(float64(lo) + frac*float64(hi-lo)))
		if min := h.Min(); v < min {
			v = min
		}
		if max := h.Max(); v > max {
			v = max
		}
		return v
	}
	return h.Max()
}

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []int64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns a snapshot of the per-bucket counts; the final entry
// is the overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}
