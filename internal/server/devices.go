package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"emmcio/internal/cliutil"
	"emmcio/internal/core"
	"emmcio/internal/devstore"
	"emmcio/internal/ftl"
	"emmcio/internal/storage"
	"emmcio/internal/telemetry"
)

// The /v1/devices surface: a content-addressed archive of pre-aged device
// snapshots. A device is aged once — an "age" job replays a prep workload
// onto fresh flash and seals the result into the store — and every replay
// or sweep that wants a worn device forks the archived snapshot via
// from_device instead of re-aging (restore is a gob decode; re-aging is a
// full replay).
//
//	POST   /v1/devices               age (JSON AgeSpec) or import (octet-stream)
//	GET    /v1/devices               list archived snapshots, most recent first
//	GET    /v1/devices/{id}          one snapshot's metadata
//	GET    /v1/devices/{id}/snapshot the sealed bytes (for emmcc pre-push)
//	GET    /v1/devices/{id}/forks    jobs that forked this device
//	DELETE /v1/devices/{id}          evict a snapshot
//
// The surface is optional: without Config.DeviceStore every endpoint (and
// from_device on replay/sweep specs) answers 503 unavailable.

// maxImportBytes bounds an uploaded snapshot. Sealed device snapshots are
// megabytes; a gigabyte is far beyond any real device state.
const maxImportBytes = 1 << 30

// AgeSpec asks the server to age a device: replay the embedded spec's
// workload on a fresh device and archive the sealed result. It is a
// ReplaySpec restricted to one concrete scheme (the snapshot records which)
// plus an optional store label.
type AgeSpec struct {
	cliutil.ReplaySpec
	// Label optionally names the archived snapshot ("aged-twitter-8x").
	// Labels are unique per store.
	Label string `json:"label,omitempty"`
}

// DeviceStatus is the wire form of an archived snapshot, served by the
// /v1/devices endpoints and returned as an age job's result.
type DeviceStatus struct {
	ID      string `json:"id"`
	Label   string `json:"label,omitempty"`
	Backend string `json:"backend"`
	// Scheme is the partition scheme the device was aged under ("" for raw
	// imports) — the one a from_device job must ask for.
	Scheme    string `json:"scheme,omitempty"`
	Digest    string `json:"digest"`
	SizeBytes int64  `json:"size_bytes"`
	Created   string `json:"created"`
	Origin    string `json:"origin"`
	// FaultDraws is the archived fault injector position; a fork resumes
	// from exactly this draw.
	FaultDraws int64 `json:"fault_draws"`
	// Wear summarizes each flash pool's erase distribution at seal time.
	Wear []ftl.WearSummary `json:"wear,omitempty"`
	// resourceLinks carries the snapshot/forks URLs (flattened).
	resourceLinks
}

// deviceStatus renders a store record for the wire.
func deviceStatus(m devstore.Meta) DeviceStatus {
	return DeviceStatus{
		ID:            m.ID,
		Label:         m.Label,
		Backend:       string(m.Backend),
		Scheme:        m.Scheme,
		Digest:        m.Digest,
		SizeBytes:     m.SizeBytes,
		Created:       time.Unix(m.CreatedUnix, 0).UTC().Format(time.RFC3339),
		Origin:        m.Origin,
		FaultDraws:    m.FaultDraws,
		Wear:          m.Wear,
		resourceLinks: deviceLinks(m.ID),
	}
}

// deviceWear collects every pool's wear summary from a live device.
func deviceWear(dev storage.Device) []ftl.WearSummary {
	pools := dev.Pools()
	out := make([]ftl.WearSummary, len(pools))
	for i := range pools {
		out[i] = dev.Wear(i)
	}
	return out
}

// deviceStore returns the configured snapshot store, answering 503 when the
// surface is disabled.
func (s *Server) deviceStore(w http.ResponseWriter) (*devstore.Store, bool) {
	if s.cfg.DeviceStore == nil {
		writeError(w, http.StatusServiceUnavailable, ErrKindUnavailable,
			errors.New("no device store configured (start emmcd with -device-store)"))
		return nil, false
	}
	return s.cfg.DeviceStore, true
}

// resolveFromDevice checks a spec's from_device reference at admission, so
// a job forking an unknown snapshot is a synchronous 404 instead of a
// queued job that fails minutes later. On failure the error response has
// already been written.
func (s *Server) resolveFromDevice(w http.ResponseWriter, id string) (devstore.Meta, bool) {
	store, ok := s.deviceStore(w)
	if !ok {
		return devstore.Meta{}, false
	}
	meta, err := store.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, ErrKindNotFound, err)
		return devstore.Meta{}, false
	}
	return meta, true
}

// handleDeviceCreate admits new snapshots in two modes, switched on the
// request content type: application/json is an asynchronous age job
// (replay the AgeSpec's prep workload, seal, archive), and
// application/octet-stream is a synchronous import of already-sealed bytes
// (what emmcc pushes before submitting from_device shards).
func (s *Server) handleDeviceCreate(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.deviceStore(w); !ok {
		return
	}
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/octet-stream") {
		s.importDevice(w, r)
		return
	}
	s.ageDevice(w, r)
}

// importDevice archives uploaded sealed bytes. The upload is restored once
// to harvest the wear and injector metadata the listing shows; a snapshot
// that cannot restore is rejected before it is named.
func (s *Server) importDevice(w http.ResponseWriter, r *http.Request) {
	sealed, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxImportBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrKindValidation,
			fmt.Errorf("reading snapshot upload: %w", err))
		return
	}
	label := r.URL.Query().Get("label")
	dev, _, err := core.RestoreSealed("import", bytes.NewReader(sealed))
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrKindValidation, err)
		return
	}
	meta, err := s.cfg.DeviceStore.Put(sealed, devstore.Meta{
		Label:      label,
		Origin:     "imported",
		FaultDraws: dev.FaultDraws(),
		Wear:       deviceWear(dev),
	})
	if err != nil {
		if errors.Is(err, devstore.ErrLabelConflict) {
			writeError(w, http.StatusConflict, ErrKindConflict, err)
			return
		}
		writeError(w, http.StatusInternalServerError, ErrKindInternal, err)
		return
	}
	s.log.Info("device imported", "device", meta.ID, "label", meta.Label,
		"backend", meta.Backend, "bytes", meta.SizeBytes, "req", requestID(r.Context()))
	writeJSON(w, http.StatusCreated, deviceStatus(meta))
}

// ageDevice admits an asynchronous age job. Label conflicts are not checked
// here: aging the same prep again produces the same content hash, and the
// store's idempotent Put resolves that case without a rejection.
func (s *Server) ageDevice(w http.ResponseWriter, r *http.Request) {
	var spec AgeSpec
	if err := decodeStrict(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, ErrKindValidation, err)
		return
	}
	if err := spec.Validate(s.cfg.Registry); err != nil {
		writeError(w, http.StatusBadRequest, ErrKindValidation, err)
		return
	}
	if spec.FromDevice != "" {
		writeError(w, http.StatusBadRequest, ErrKindValidation,
			errors.New("an age job builds a fresh device; from_device is not allowed here"))
		return
	}
	schemes, err := spec.Schemes()
	if err == nil && len(schemes) != 1 {
		err = fmt.Errorf("aging requires one concrete scheme (the snapshot records it), got %q", spec.Scheme)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrKindValidation, err)
		return
	}
	backend, err := spec.Backend()
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrKindValidation, err)
		return
	}
	j, err := s.enqueue(r.Context(), "age", string(backend), "", s.ageJob(spec, schemes[0]))
	if err != nil {
		s.submitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitted{ID: j.id, State: JobQueued, URL: "/v1/jobs/" + j.id})
}

// ageJob is the work function behind an age submission: fresh device, full
// prep replay, seal, archive. Its result is the archived DeviceStatus, so
// polling the job yields the device id to fork.
func (s *Server) ageJob(spec AgeSpec, scheme core.Scheme) jobFunc {
	return func(ctx context.Context, reg *telemetry.Registry, tc *telemetry.Tracer) (any, error) {
		p, err := spec.Profile(s.cfg.Registry)
		if err != nil {
			return nil, err
		}
		opt, err := spec.DeviceOptions()
		if err != nil {
			return nil, err
		}
		dev, err := core.NewDevice(scheme, opt)
		if err != nil {
			return nil, err
		}
		st := spec.PrepareStream(p.Stream(spec.Seed))
		if _, err := core.ReplayStreamSinkContext(ctx, dev, scheme, st, reg, tc, nil); err != nil {
			return nil, fmt.Errorf("aging %s: %w", spec.App, err)
		}
		sealed, _, err := storage.Seal(dev)
		if err != nil {
			return nil, err
		}
		meta, err := s.cfg.DeviceStore.Put(sealed, devstore.Meta{
			Label:      spec.Label,
			Scheme:     scheme.String(),
			Origin:     "aged",
			FaultDraws: dev.FaultDraws(),
			Wear:       deviceWear(dev),
		})
		if err != nil {
			return nil, err
		}
		s.log.Info("device aged", "device", meta.ID, "label", meta.Label,
			"app", spec.App, "sessions", spec.Sessions, "bytes", meta.SizeBytes)
		return deviceStatus(meta), nil
	}
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	store, ok := s.deviceStore(w)
	if !ok {
		return
	}
	metas := store.List()
	list := make([]DeviceStatus, 0, len(metas))
	for _, m := range metas {
		list = append(list, deviceStatus(m))
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleDevice(w http.ResponseWriter, r *http.Request) {
	store, ok := s.deviceStore(w)
	if !ok {
		return
	}
	meta, err := store.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, ErrKindNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, deviceStatus(meta))
}

// handleDeviceSnapshot streams the sealed snapshot bytes — the transport
// half of emmcc's pre-push: a coordinator downloads from one worker (or its
// local store) and re-imports into workers that lack the device.
func (s *Server) handleDeviceSnapshot(w http.ResponseWriter, r *http.Request) {
	store, ok := s.deviceStore(w)
	if !ok {
		return
	}
	id := r.PathValue("id")
	sealed, err := store.OpenDevice(id)
	if err != nil {
		writeError(w, http.StatusNotFound, ErrKindNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(sealed)))
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.emseal", id))
	w.Write(sealed) //nolint:errcheck // streaming body
}

// handleDeviceForks lists the jobs that forked this device, oldest first —
// the "what ran on this worn state" audit view.
func (s *Server) handleDeviceForks(w http.ResponseWriter, r *http.Request) {
	store, ok := s.deviceStore(w)
	if !ok {
		return
	}
	id := r.PathValue("id")
	if _, err := store.Get(id); err != nil {
		writeError(w, http.StatusNotFound, ErrKindNotFound, err)
		return
	}
	s.mu.Lock()
	snap := make([]*job, 0)
	for _, j := range s.jobs {
		if j.fromDevice == id {
			snap = append(snap, j)
		}
	}
	s.mu.Unlock()
	sort.Slice(snap, func(i, k int) bool { return snap[i].seq < snap[k].seq })
	list := make([]JobStatus, 0, len(snap))
	for _, j := range snap {
		list = append(list, j.status())
	}
	writeJSON(w, http.StatusOK, list)
}

// handleDeviceDelete evicts a snapshot. Jobs already forked from it keep
// running (they hold their own restored copies); only future from_device
// references fail.
func (s *Server) handleDeviceDelete(w http.ResponseWriter, r *http.Request) {
	store, ok := s.deviceStore(w)
	if !ok {
		return
	}
	id := r.PathValue("id")
	meta, err := store.Get(id)
	if err == nil {
		err = store.Delete(id)
	}
	if err != nil {
		if errors.Is(err, devstore.ErrNotFound) {
			writeError(w, http.StatusNotFound, ErrKindNotFound, err)
		} else {
			writeError(w, http.StatusInternalServerError, ErrKindInternal, err)
		}
		return
	}
	s.log.Info("device deleted", "device", id, "label", meta.Label,
		"req", requestID(r.Context()))
	writeJSON(w, http.StatusOK, deviceStatus(meta))
}
