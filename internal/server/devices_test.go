package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"emmcio/internal/cliutil"
	"emmcio/internal/core"
	"emmcio/internal/devstore"
	"emmcio/internal/faults"
	"emmcio/internal/paper"
	"emmcio/internal/storage"
	"emmcio/internal/trace"
)

// storeServer builds a test server with a device store rooted in a temp dir.
func storeServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	store, err := devstore.Open(t.TempDir(), devstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return newTestServer(t, Config{DeviceStore: store})
}

// sealedBytes ages a tiny device in-process and seals it, for exercising
// the import path without an age job.
func sealedBytes(t *testing.T, writes int) []byte {
	t.Helper()
	opt := core.CaseStudyOptions()
	opt.Faults = &faults.Config{Seed: 11, Rate: 1}
	dev, err := core.NewDevice(core.Scheme4PS, opt)
	if err != nil {
		t.Fatal(err)
	}
	var arrival int64
	for i := 0; i < writes; i++ {
		res, err := dev.Submit(trace.Request{Arrival: arrival, LBA: uint64(i * 64), Size: 16 << 10, Op: trace.Write})
		if err != nil {
			t.Fatal(err)
		}
		arrival = res.Finish
	}
	sealed, _, err := storage.Seal(dev)
	if err != nil {
		t.Fatal(err)
	}
	return sealed
}

// postOctet uploads sealed snapshot bytes to /v1/devices.
func postOctet(t *testing.T, ts *httptest.Server, path string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp.StatusCode, buf.Bytes()
}

// errKindOf decodes the uniform error envelope.
func errKindOf(t *testing.T, body []byte) string {
	t.Helper()
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("response %q is not the error envelope: %v", body, err)
	}
	if eb.Error == "" {
		t.Errorf("error envelope %q missing the human string", body)
	}
	return eb.ErrorKind
}

// TestAgeForkLifecycle walks the tentpole end to end over HTTP: an age job
// archives a worn device, the listing and detail views describe it, a
// replay forks it via from_device, and the forks view attributes that job
// back to the snapshot.
func TestAgeForkLifecycle(t *testing.T) {
	_, ts := storeServer(t)

	age := fmt.Sprintf(`{"app":%q,"scheme":"4PS","sessions":2,"faults":1,"fault_seed":3,"label":"aged-callin"}`, paper.CallIn)
	code, b := postJSON(t, ts, "/v1/devices", age)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/devices = %d, want 202; body %s", code, b)
	}
	var sub submitted
	if err := json.Unmarshal(b, &sub); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, ts, sub.ID, JobDone, 60*time.Second)

	var dev DeviceStatus
	if err := json.Unmarshal(st.Result, &dev); err != nil {
		t.Fatalf("age result %s: %v", st.Result, err)
	}
	if dev.ID == "" || dev.Origin != "aged" || dev.Backend != "emmc" || dev.Scheme != "4PS" {
		t.Errorf("age result %+v lacks identity fields", dev)
	}
	if dev.FaultDraws == 0 {
		t.Error("aged device records no fault draws; injector position not archived")
	}
	if dev.SnapshotURL == "" || dev.ForksURL == "" {
		t.Errorf("device %+v missing links", dev)
	}

	var list []DeviceStatus
	if code := getJSON(t, ts, "/v1/devices", &list); code != http.StatusOK {
		t.Fatalf("GET /v1/devices = %d", code)
	}
	if len(list) != 1 || list[0].ID != dev.ID || list[0].Label != "aged-callin" {
		t.Errorf("listing = %+v, want the one aged device", list)
	}
	var got DeviceStatus
	if code := getJSON(t, ts, "/v1/devices/"+dev.ID, &got); code != http.StatusOK || got.Digest != dev.Digest {
		t.Errorf("GET device = %d %+v, want 200 with digest %s", code, got, dev.Digest)
	}

	fork := fmt.Sprintf(`{"app":%q,"scheme":"4PS","from_device":%q}`, paper.CallIn, dev.ID)
	forkID := submitReplay(t, ts, fork)
	fst := waitState(t, ts, forkID, JobDone, 60*time.Second)
	if fst.FromDevice != dev.ID {
		t.Errorf("fork job from_device = %q, want %q", fst.FromDevice, dev.ID)
	}
	if fst.Device != "emmc" {
		t.Errorf("fork job device = %q, want backend resolved from snapshot", fst.Device)
	}
	var results []cliutil.SchemeResult
	if err := json.Unmarshal(fst.Result, &results); err != nil || len(results) != 1 {
		t.Fatalf("fork result %s: %v", fst.Result, err)
	}
	if results[0].Metrics.Served == 0 {
		t.Error("forked replay served nothing")
	}

	var forks []JobStatus
	if code := getJSON(t, ts, "/v1/devices/"+dev.ID+"/forks", &forks); code != http.StatusOK {
		t.Fatalf("GET forks = %d", code)
	}
	if len(forks) != 1 || forks[0].ID != forkID {
		t.Errorf("forks = %+v, want exactly job %s", forks, forkID)
	}
}

// TestDeviceImportSnapshotDelete covers the synchronous half of the
// surface: import, idempotent re-import, label conflict as a 409 envelope,
// byte-exact snapshot download, and deletion semantics.
func TestDeviceImportSnapshotDelete(t *testing.T) {
	_, ts := storeServer(t)
	sealed := sealedBytes(t, 32)

	code, b := postOctet(t, ts, "/v1/devices?label=seed", sealed)
	if code != http.StatusCreated {
		t.Fatalf("import = %d, want 201; body %s", code, b)
	}
	var dev DeviceStatus
	if err := json.Unmarshal(b, &dev); err != nil {
		t.Fatal(err)
	}
	if dev.Origin != "imported" || dev.Label != "seed" || dev.FaultDraws == 0 {
		t.Errorf("imported device %+v", dev)
	}

	// Same bytes again: content addressing makes this a no-op naming the
	// same device, even under a different label.
	code, b = postOctet(t, ts, "/v1/devices?label=other", sealed)
	var again DeviceStatus
	if err := json.Unmarshal(b, &again); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusCreated || again.ID != dev.ID || again.Label != "seed" {
		t.Errorf("re-import = %d %+v, want existing device %s with its original label", code, again, dev.ID)
	}

	// Different bytes under the taken label: 409 with the conflict kind.
	code, b = postOctet(t, ts, "/v1/devices?label=seed", sealedBytes(t, 48))
	if code != http.StatusConflict || errKindOf(t, b) != ErrKindConflict {
		t.Errorf("label conflict = %d kind %q, want 409 %q", code, errKindOf(t, b), ErrKindConflict)
	}

	// Corrupt upload: rejected before it is named.
	bad := append([]byte{}, sealed...)
	bad[len(bad)-1] ^= 0xFF
	code, b = postOctet(t, ts, "/v1/devices", bad)
	if code != http.StatusBadRequest || errKindOf(t, b) != ErrKindValidation {
		t.Errorf("corrupt import = %d kind %q, want 400 validation", code, errKindOf(t, b))
	}

	resp, err := http.Get(ts.URL + dev.SnapshotURL)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(buf.Bytes(), sealed) {
		t.Errorf("snapshot download = %d, %d bytes; want the exact %d sealed bytes",
			resp.StatusCode, buf.Len(), len(sealed))
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/devices/"+dev.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d, want 200", resp.StatusCode)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	buf.ReadFrom(resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || errKindOf(t, buf.Bytes()) != ErrKindNotFound {
		t.Errorf("second DELETE = %d kind %q, want 404 not_found", resp.StatusCode, errKindOf(t, buf.Bytes()))
	}
}

// TestDeviceErrorSurface pins the failure envelopes: 503 unavailable when
// no store is configured, 404 not_found for unknown ids, and 400
// validation for contradictory from_device specs.
func TestDeviceErrorSurface(t *testing.T) {
	t.Run("no_store", func(t *testing.T) {
		_, ts := newTestServer(t, Config{})
		resp, err := http.Get(ts.URL + "/v1/devices")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || errKindOf(t, buf.Bytes()) != ErrKindUnavailable {
			t.Errorf("GET /v1/devices = %d %s, want 503 unavailable", resp.StatusCode, buf.Bytes())
		}
		spec := fmt.Sprintf(`{"app":%q,"scheme":"4PS","from_device":"d000000000000"}`, paper.CallIn)
		code, b := postJSON(t, ts, "/v1/replays", spec)
		if code != http.StatusServiceUnavailable || errKindOf(t, b) != ErrKindUnavailable {
			t.Errorf("from_device without store = %d %s, want 503 unavailable", code, b)
		}
	})

	t.Run("unknown_device", func(t *testing.T) {
		_, ts := storeServer(t)
		spec := fmt.Sprintf(`{"app":%q,"scheme":"4PS","from_device":"d000000000000"}`, paper.CallIn)
		code, b := postJSON(t, ts, "/v1/replays", spec)
		if code != http.StatusNotFound || errKindOf(t, b) != ErrKindNotFound {
			t.Errorf("unknown from_device = %d %s, want 404 not_found", code, b)
		}
		code, b = postJSON(t, ts, "/v1/sweeps", `{"sweeps":["tables"],"from_device":"d000000000000"}`)
		if code != http.StatusNotFound || errKindOf(t, b) != ErrKindNotFound {
			t.Errorf("unknown sweep from_device = %d %s, want 404 not_found", code, b)
		}
	})

	t.Run("validation", func(t *testing.T) {
		_, ts := storeServer(t)
		spec := fmt.Sprintf(`{"app":%q,"scheme":"all","from_device":"d000000000000"}`, paper.CallIn)
		code, b := postJSON(t, ts, "/v1/replays", spec)
		if code != http.StatusBadRequest || errKindOf(t, b) != ErrKindValidation {
			t.Errorf("from_device with scheme=all = %d %s, want 400 validation", code, b)
		}
		age := fmt.Sprintf(`{"app":%q,"scheme":"all"}`, paper.CallIn)
		code, b = postJSON(t, ts, "/v1/devices", age)
		if code != http.StatusBadRequest || errKindOf(t, b) != ErrKindValidation {
			t.Errorf("age with scheme=all = %d %s, want 400 validation", code, b)
		}
		age = fmt.Sprintf(`{"app":%q,"scheme":"4PS","from_device":"dabc"}`, paper.CallIn)
		code, b = postJSON(t, ts, "/v1/devices", age)
		if code != http.StatusBadRequest || errKindOf(t, b) != ErrKindValidation {
			t.Errorf("age with from_device = %d %s, want 400 validation", code, b)
		}
	})
}
