// Package server implements emmcd: a long-running HTTP/JSON service that
// exposes the repository's replay and experiment machinery as asynchronous
// jobs. Clients POST a cliutil.ReplaySpec or cliutil.SweepSpec — the same
// structs the CLIs bind their flags to — and poll a job resource for the
// result, which is bit-identical to what the equivalent CLI invocation
// prints (same seed, same stream, same replay loop).
//
// Capacity model: submissions land on a bounded queue and a fixed worker
// pool executes them; a full queue is an immediate 429, never unbounded
// buffering. Every job runs under a cancelable per-job context with a
// deadline, so DELETE aborts a running replay between events in bounded
// time, and Shutdown drains in-flight jobs while canceling queued ones.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"emmcio/internal/cliutil"
	"emmcio/internal/devstore"
	"emmcio/internal/telemetry"
	"emmcio/internal/trace"
	"emmcio/internal/workload"
)

// Config sizes the server's capacity model. The zero value gets sensible
// defaults from New.
type Config struct {
	// QueueDepth bounds the pending-job queue; a submission past it is
	// rejected with 429 (default 64).
	QueueDepth int
	// Workers is how many jobs execute concurrently (default 2). Each job
	// additionally fans its schemes/sweep cells out on its own pool.
	Workers int
	// JobWorkers is the per-job sweep pool width (0 = GOMAXPROCS).
	JobWorkers int
	// ResultCap bounds how many terminal jobs stay queryable; the oldest-
	// finished job is evicted past it (default 64).
	ResultCap int
	// JobTimeout is the per-job deadline (default 10m; negative = none).
	JobTimeout time.Duration
	// Registry resolves workload names (default: the 25 built-in profiles).
	Registry *workload.Registry
	// Telemetry is the server-wide metrics registry re-exported at
	// /metrics (default: a fresh registry). Jobs observe into their own
	// child registries, which merge into this one on completion, so the
	// fleet totals here always equal the merge of the per-job snapshots.
	Telemetry *telemetry.Registry
	// JobTraceCap bounds each job's span-tracer ring buffer in events
	// (0 = telemetry.DefaultTracerCapacity; negative disables per-job
	// tracing entirely).
	JobTraceCap int
	// Logger receives structured request and job-lifecycle logs (default:
	// discard; cmd/emmcd wires stderr).
	Logger *slog.Logger
	// DeviceStore backs the /v1/devices surface: age jobs archive sealed
	// snapshots into it and from_device jobs fork them. Nil disables the
	// surface (those endpoints answer 503 unavailable).
	DeviceStore *devstore.Store
}

// Server is the emmcd job service. Create with New, serve via Handler,
// stop with Shutdown.
type Server struct {
	cfg Config
	tel *telemetry.Registry
	log *slog.Logger
	mux *http.ServeMux

	queue    chan *job
	shutdown chan struct{}
	stopOnce sync.Once
	draining atomic.Bool
	wg       sync.WaitGroup
	nextID   atomic.Int64
	reqSeq   atomic.Int64
	started  time.Time
	// admitMu makes enqueue's draining check and queue send atomic with
	// respect to Shutdown's drain loop, so a job can never land on the
	// queue after the drain has emptied it (it would sit "queued" forever
	// with every worker gone).
	admitMu sync.Mutex

	mu        sync.Mutex
	jobs      map[string]*job
	doneOrder []string // terminal job ids, oldest finished first

	submitted  *telemetry.Counter
	rejected   *telemetry.Counter
	completed  *telemetry.Counter
	failed     *telemetry.Counter
	canceledC  *telemetry.Counter
	queueDepth *telemetry.Gauge
	running    *telemetry.Gauge

	// beforeRun, when non-nil, runs on the worker goroutine just before a
	// job's work function. Tests use it to hold workers at a gate so the
	// queue fills deterministically.
	beforeRun func(*job)
}

// New builds the server and starts its worker pool. The pool is
// independent of any HTTP listener, so httptest servers exercise the real
// execution path.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.ResultCap <= 0 {
		cfg.ResultCap = 64
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = 10 * time.Minute
	}
	if cfg.Registry == nil {
		cfg.Registry = workload.DefaultRegistry()
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	s := &Server{
		cfg:      cfg,
		tel:      cfg.Telemetry,
		log:      cfg.logger(),
		queue:    make(chan *job, cfg.QueueDepth),
		shutdown: make(chan struct{}),
		jobs:     map[string]*job{},
		started:  time.Now(),
	}
	version, goVersion := cliutil.BuildVersion()
	s.tel.Gauge("emmcd_build_info",
		telemetry.L("version", version), telemetry.L("go_version", goVersion)).Set(1)
	s.submitted = s.tel.Counter("emmcd_jobs_submitted_total")
	s.rejected = s.tel.Counter("emmcd_jobs_rejected_total")
	s.completed = s.tel.Counter("emmcd_jobs_completed_total")
	s.failed = s.tel.Counter("emmcd_jobs_failed_total")
	s.canceledC = s.tel.Counter("emmcd_jobs_canceled_total")
	s.queueDepth = s.tel.Gauge("emmcd_queue_depth")
	s.running = s.tel.Gauge("emmcd_jobs_running")

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/replays", s.handleReplay)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	s.mux.HandleFunc("POST /v1/traces", s.handleTrace)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.handleJobMetrics)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/devices", s.handleDeviceCreate)
	s.mux.HandleFunc("GET /v1/devices", s.handleDevices)
	s.mux.HandleFunc("GET /v1/devices/{id}", s.handleDevice)
	s.mux.HandleFunc("GET /v1/devices/{id}/snapshot", s.handleDeviceSnapshot)
	s.mux.HandleFunc("GET /v1/devices/{id}/forks", s.handleDeviceForks)
	s.mux.HandleFunc("DELETE /v1/devices/{id}", s.handleDeviceDelete)

	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Handler returns the HTTP API, wrapped in the request-id and logging
// middleware.
func (s *Server) Handler() http.Handler { return s.withObservedRequests(s.mux) }

// errQueueFull and errDraining map to 429 and 503 respectively.
var (
	errQueueFull = errors.New("job queue full; retry later")
	errDraining  = errors.New("server is draining; not accepting work")
)

// enqueue registers a job and places it on the bounded queue. The queue
// send is non-blocking: admission control is an immediate 429, never a
// stalled client holding a connection while memory grows.
//
// Every job gets its own child telemetry registry and span tracer here;
// run observes into those, never into the server-wide registry directly,
// so concurrent jobs cannot contaminate each other's series and
// /v1/jobs/{id}/metrics answers for exactly one job.
func (s *Server) enqueue(ctx context.Context, kind, device, fromDevice string, run jobFunc) (*job, error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	seq := s.nextID.Add(1)
	j := &job{
		id:         fmt.Sprintf("j%d", seq),
		seq:        seq,
		kind:       kind,
		device:     device,
		fromDevice: fromDevice,
		reqID:      requestID(ctx),
		run:        run,
		tel:        s.tel.Child(),
		done:       make(chan struct{}),
		state:      JobQueued,
		created:    time.Now(),
	}
	if s.cfg.JobTraceCap >= 0 {
		j.tracer = telemetry.NewTracer(s.cfg.JobTraceCap)
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
	s.admitMu.Lock()
	if s.draining.Load() {
		// Shutdown won the race between the check above and the send: its
		// drain loop may already have emptied the queue, so sending now
		// would strand the job. Reject instead.
		s.admitMu.Unlock()
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		return nil, errDraining
	}
	select {
	case s.queue <- j:
		s.admitMu.Unlock()
		s.submitted.Inc()
		s.queueDepth.Set(int64(len(s.queue)))
		s.log.Info("job admitted", "job", j.id, "kind", kind, "device", j.device,
			"req", j.reqID, "queued", len(s.queue))
		return j, nil
	default:
		s.admitMu.Unlock()
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		s.rejected.Inc()
		return nil, errQueueFull
	}
}

// worker pulls and executes jobs until shutdown. The leading non-blocking
// shutdown check keeps a worker from grabbing yet another queued job when
// both channels are ready during a drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.shutdown:
			return
		default:
		}
		select {
		case <-s.shutdown:
			return
		case j := <-s.queue:
			s.queueDepth.Set(int64(len(s.queue)))
			s.execute(j)
		}
	}
}

// execute runs one job under its cancelable, deadlined context.
func (s *Server) execute(j *job) {
	j.mu.Lock()
	if j.canceled {
		// DELETE beat the worker to it; the handler already finalized.
		j.mu.Unlock()
		return
	}
	ctx := context.Background()
	var cancel context.CancelFunc
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j.cancel = cancel
	j.state = JobRunning
	j.started = time.Now()
	queueWait := j.started.Sub(j.created)
	j.mu.Unlock()

	s.log.Info("job started", "job", j.id, "kind", j.kind, "device", j.device, "req", j.reqID,
		"queue_wait", queueWait)
	s.running.Add(1)
	if s.beforeRun != nil {
		s.beforeRun(j)
	}
	res, err := runSafe(ctx, j)
	cancel()
	s.running.Add(-1)

	// Publish whatever the job observed — also for failed and canceled
	// jobs, whose partial I/O did happen — so the server-wide /metrics
	// totals stay the exact merge of every job's registry.
	j.tel.MergeIntoParent()

	var payload json.RawMessage
	if err == nil {
		payload, err = json.Marshal(res)
	}
	j.mu.Lock()
	j.cancel = nil
	j.finished = time.Now()
	runDur := j.finished.Sub(j.started)
	switch {
	case err == nil:
		j.state = JobDone
		j.result = payload
		s.completed.Inc()
	case j.canceled:
		j.state = JobCanceled
		j.err = err.Error()
		j.errKind = ErrKindCanceled
		s.canceledC.Inc()
	case errors.Is(err, context.DeadlineExceeded):
		// The per-job deadline expired (the replay loops return a wrapped
		// context error); distinguish it from the job's own failures so
		// clients know a retry on idler capacity could succeed.
		j.state = JobFailed
		j.err = err.Error()
		j.errKind = ErrKindDeadline
		s.failed.Inc()
	default:
		j.state = JobFailed
		j.err = err.Error()
		j.errKind = ErrKindRuntime
		s.failed.Inc()
	}
	state, errMsg := j.state, j.err
	j.mu.Unlock()
	close(j.done)
	s.retire(j)
	if errMsg == "" {
		s.log.Info("job finished", "job", j.id, "kind", j.kind, "req", j.reqID,
			"state", state, "queue_wait", queueWait, "run", runDur)
	} else {
		s.log.Warn("job finished", "job", j.id, "kind", j.kind, "req", j.reqID,
			"state", state, "queue_wait", queueWait, "run", runDur, "error", errMsg)
	}
}

// runSafe converts a panicking job into a failed one; a bad spec must
// never take the service down.
func runSafe(ctx context.Context, j *job) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return j.run(ctx, j.tel, j.tracer)
}

// retire records a terminal job and evicts the oldest-finished ones past
// the result-store bound, so a long-lived daemon's memory stays flat no
// matter how many jobs it has served.
func (s *Server) retire(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.cfg.ResultCap {
		oldest := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		delete(s.jobs, oldest)
	}
}

// Shutdown stops admissions, cancels queued jobs, and waits for running
// jobs to drain. If ctx expires first, running jobs are hard-canceled (the
// replay loops abort between events) and their exit is awaited before
// returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.stopOnce.Do(func() { close(s.shutdown) })
	s.log.Info("draining", "queued", len(s.queue), "running", s.running.Value())

	// Queued jobs that no worker will pick up become canceled now. Under
	// the admit lock, an in-flight enqueue has either already sent (this
	// loop picks the job up) or will observe draining and reject; nothing
	// lands on the queue after the loop empties it.
	s.admitMu.Lock()
	for {
		select {
		case j := <-s.queue:
			j.mu.Lock()
			if j.canceled {
				// DELETE already finalized this queued job and left it on
				// the queue for a worker to discard; closing j.done again
				// would panic.
				j.mu.Unlock()
				continue
			}
			j.canceled = true
			j.state = JobCanceled
			j.errKind = ErrKindCanceled
			j.finished = time.Now()
			j.mu.Unlock()
			close(j.done)
			s.canceledC.Inc()
			s.retire(j)
			s.log.Info("job canceled", "job", j.id, "kind", j.kind, "req", j.reqID,
				"reason", "drain")
		default:
			s.queueDepth.Set(0)
			s.admitMu.Unlock()
			goto wait
		}
	}
wait:
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelRunning()
		<-done
		return ctx.Err()
	}
}

// cancelRunning aborts every running job's context.
func (s *Server) cancelRunning() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == JobRunning {
			j.canceled = true
			if j.cancel != nil {
				j.cancel()
			}
		}
		j.mu.Unlock()
	}
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are out; nothing left to report
}

// ErrorBody is the uniform non-2xx envelope: every error response carries
// the human string plus a machine-readable kind from the ErrKind
// vocabulary, so clients (the coordinator above all) classify failures by
// field instead of status-code heuristics or string matching.
type ErrorBody struct {
	Error     string `json:"error"`
	ErrorKind string `json:"error_kind"`
}

func writeError(w http.ResponseWriter, code int, kind string, err error) {
	writeJSON(w, code, ErrorBody{Error: err.Error(), ErrorKind: kind})
}

// QueueFullError is the 429 response body: the uniform error envelope plus
// the queue's depth and capacity at rejection time, so a client's backoff
// can be informed rather than blind (the coordinator reads these to size
// its retry delay and to prefer less-loaded workers).
type QueueFullError struct {
	Error         string `json:"error"`
	ErrorKind     string `json:"error_kind"`
	Queued        int    `json:"queued"`
	QueueCapacity int    `json:"queue_capacity"`
}

// retryAfterSeconds is the Retry-After hint on 429 admission responses.
// The queue is bounded and jobs run for seconds to minutes, so "ask again
// in a second" is an honest floor without tracking per-job ETAs; clients
// layer their own exponential backoff on top.
const retryAfterSeconds = 1

// submitError maps admission failures to their status codes.
func (s *Server) submitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeJSON(w, http.StatusTooManyRequests, QueueFullError{
			Error:         err.Error(),
			ErrorKind:     ErrKindSaturated,
			Queued:        len(s.queue),
			QueueCapacity: s.cfg.QueueDepth,
		})
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, ErrKindUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, ErrKindInternal, err)
	}
}

// decodeStrict rejects unknown fields, so a typo'd option is a 400 instead
// of a silently defaulted replay.
func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// submitted is the 202 response body for accepted jobs.
type submitted struct {
	ID    string `json:"id"`
	State string `json:"state"`
	URL   string `json:"url"`
}

func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	var spec cliutil.ReplaySpec
	if err := decodeStrict(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, ErrKindValidation, err)
		return
	}
	if err := spec.Validate(s.cfg.Registry); err != nil {
		writeError(w, http.StatusBadRequest, ErrKindValidation, err)
		return
	}
	backend, err := spec.Backend()
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrKindValidation, err)
		return
	}
	device := string(backend)
	if spec.FromDevice != "" {
		meta, ok := s.resolveFromDevice(w, spec.FromDevice)
		if !ok {
			return
		}
		spec.SetDeviceSource(s.cfg.DeviceStore)
		device = string(meta.Backend)
	}
	j, err := s.enqueue(r.Context(), "replay", device, spec.FromDevice, func(ctx context.Context, reg *telemetry.Registry, tc *telemetry.Tracer) (any, error) {
		return spec.Run(ctx, s.cfg.JobWorkers, reg, tc)
	})
	if err != nil {
		s.submitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitted{ID: j.id, State: JobQueued, URL: "/v1/jobs/" + j.id})
}

// SweepOutput is one named sweep's rendered tables inside a sweep job's
// result. It is the coordinator-shared cliutil.SweepResult under the
// server's historical name; the wire form is unchanged.
type SweepOutput = cliutil.SweepResult

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var spec cliutil.SweepSpec
	if err := decodeStrict(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, ErrKindValidation, err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, ErrKindValidation, err)
		return
	}
	backend, err := spec.Backend()
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrKindValidation, err)
		return
	}
	device := string(backend)
	if spec.FromDevice != "" {
		meta, ok := s.resolveFromDevice(w, spec.FromDevice)
		if !ok {
			return
		}
		spec.SetDeviceSource(s.cfg.DeviceStore)
		device = string(meta.Backend)
	}
	// The job body is the same SweepSpec.Run the coordinator's local
	// fallback calls, so a shard's result is identical either way.
	j, err := s.enqueue(r.Context(), "sweep", device, spec.FromDevice, func(ctx context.Context, reg *telemetry.Registry, tc *telemetry.Tracer) (any, error) {
		return spec.Run(ctx, s.cfg.JobWorkers, reg, tc)
	})
	if err != nil {
		s.submitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitted{ID: j.id, State: JobQueued, URL: "/v1/jobs/" + j.id})
}

// TraceRequest asks for one generated trace, streamed back in the chosen
// codec. Generation is synchronous: the trace streams out as it is
// encoded, so the response holds no materialized copy (except bioz, whose
// header needs the record count up front).
type TraceRequest struct {
	App    string `json:"app"`
	Seed   uint64 `json:"seed,omitempty"`
	Format string `json:"format,omitempty"` // text, bio1 (default), or bioz
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrKindUnavailable, errDraining)
		return
	}
	var req TraceRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, ErrKindValidation, err)
		return
	}
	if req.App == "" {
		writeError(w, http.StatusBadRequest, ErrKindValidation, errors.New("no application named; set app"))
		return
	}
	p := s.cfg.Registry.Lookup(req.App)
	if p == nil {
		writeError(w, http.StatusBadRequest, ErrKindValidation, fmt.Errorf("unknown application %q", req.App))
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = workload.DefaultSeed
	}
	// The request's context cancels generation between records when the
	// client goes away mid-download.
	st := trace.WithContext(r.Context(), p.Stream(seed))
	switch req.Format {
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		trace.WriteTextStream(w, st) //nolint:errcheck // body is streaming; too late for a status
	case "", "bio1":
		w.Header().Set("Content-Type", "application/octet-stream")
		trace.WriteBinaryStream(w, st) //nolint:errcheck
	case "bioz":
		w.Header().Set("Content-Type", "application/octet-stream")
		trace.WriteCompressed(w, p.Generate(seed)) //nolint:errcheck
	default:
		writeError(w, http.StatusBadRequest, ErrKindValidation, fmt.Errorf("unknown format %q (text, bio1, bioz)", req.Format))
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	snap := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		snap = append(snap, j)
	}
	s.mu.Unlock()
	// Submission order, not lexical: "j10" must follow "j9", not "j1".
	sort.Slice(snap, func(i, k int) bool { return snap[i].seq < snap[k].seq })
	list := make([]JobStatus, 0, len(snap))
	for _, j := range snap {
		list = append(list, j.status())
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) lookup(r *http.Request) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[r.PathValue("id")]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r)
	if j == nil {
		writeError(w, http.StatusNotFound, ErrKindNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleDelete cancels a job. Queued jobs terminate immediately; running
// jobs get their context canceled and abort between replay events, so the
// transition is prompt even mid-sweep. Terminal jobs are left untouched
// (the DELETE is idempotent).
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r)
	if j == nil {
		writeError(w, http.StatusNotFound, ErrKindNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	switch j.state {
	case JobQueued:
		j.canceled = true
		j.state = JobCanceled
		j.errKind = ErrKindCanceled
		j.finished = time.Now()
		j.mu.Unlock()
		close(j.done)
		s.canceledC.Inc()
		s.retire(j)
		s.log.Info("job canceled", "job", j.id, "kind", j.kind, "req", j.reqID,
			"reason", "delete")
	case JobRunning:
		j.canceled = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	default:
		j.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, j.status())
}

// Health is the /healthz body: liveness plus the queue/worker state a
// load balancer or operator needs at a glance.
type Health struct {
	Status string `json:"status"` // ok or draining
	// Queued/QueueCapacity describe the bounded admission queue; Workers
	// is the fixed executor pool size; Running is jobs executing now.
	Queued        int   `json:"queued"`
	QueueCapacity int   `json:"queue_capacity"`
	Workers       int   `json:"workers"`
	Running       int64 `json:"running"`
	// Jobs counts every job the result store still knows, States breaks
	// them down by lifecycle state.
	Jobs   int            `json:"jobs"`
	States map[string]int `json:"states"`
	// UptimeSec is seconds since the worker pool started.
	UptimeSec float64 `json:"uptime_sec"`
}

// handleHealth distinguishes liveness from readiness: a live but draining
// server answers 503 with {"status":"draining"}, so load balancers stop
// routing new work to it while clients polling existing jobs still get
// JSON (the process stays up until the drain completes).
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	states := map[string]int{}
	s.mu.Lock()
	known := len(s.jobs)
	for _, j := range s.jobs {
		j.mu.Lock()
		states[j.state]++
		j.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, code, Health{
		Status:        status,
		Queued:        len(s.queue),
		QueueCapacity: s.cfg.QueueDepth,
		Workers:       s.cfg.Workers,
		Running:       s.running.Value(),
		Jobs:          known,
		States:        states,
		UptimeSec:     time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.tel.WritePrometheus(w) //nolint:errcheck // streaming body
}
