package server

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"emmcio/internal/cliutil"
	"emmcio/internal/paper"
	"emmcio/internal/telemetry"
)

func getBody(t *testing.T, ts *httptest.Server, path string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading GET %s: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), b
}

// referenceReplay runs spec in-process with a fresh registry and tracer the
// same way the server runs a job, returning the expositions a perfectly
// isolated job must reproduce.
func referenceReplay(t *testing.T, spec cliutil.ReplaySpec) (metrics, chromeTrace []byte) {
	t.Helper()
	reg := telemetry.NewRegistry()
	tc := telemetry.NewTracer(0)
	if _, err := spec.Run(context.Background(), 0, reg, tc); err != nil {
		t.Fatalf("reference replay: %v", err)
	}
	var m, c bytes.Buffer
	if err := reg.WritePrometheus(&m); err != nil {
		t.Fatal(err)
	}
	if err := tc.WriteChromeTrace(&c); err != nil {
		t.Fatal(err)
	}
	return m.Bytes(), c.Bytes()
}

// stripWallClock drops the runner_job_wall_ns family — the one series
// measured in wall time rather than simulated time, hence the one series
// that cannot be byte-compared across runs.
func stripWallClock(exposition []byte) string {
	var b strings.Builder
	sc := bufio.NewScanner(bytes.NewReader(exposition))
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, "runner_job_wall_ns") {
			continue
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// parseSamples reads every plain sample line (no # comments) into a
// series -> value map, skipping the wall-clock family.
func parseSamples(t *testing.T, exposition []byte) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	sc := bufio.NewScanner(bytes.NewReader(exposition))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "runner_job_wall_ns") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseInt(line[i+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestJobObservabilityIsolation is the acceptance test for job-scoped
// observability: two jobs with disjoint workloads run concurrently, and
// each job's /metrics and /trace must be byte-identical (modulo wall clock)
// to a solo in-process replay of the same spec — any cross-job leak would
// shift the counts. The server-wide /metrics must then equal the merge of
// the two per-job snapshots.
func TestJobObservabilityIsolation(t *testing.T) {
	specA := cliutil.ReplaySpec{App: paper.CallIn, Scheme: "4PS"}
	specB := cliutil.ReplaySpec{App: paper.Twitter, Scheme: "HPS"}
	wantMetricsA, wantTraceA := referenceReplay(t, specA)
	wantMetricsB, wantTraceB := referenceReplay(t, specB)

	// Hold both jobs at the start barrier until both workers have one, so
	// the two replays genuinely interleave.
	s := New(Config{Workers: 2})
	var barrier sync.WaitGroup
	barrier.Add(2)
	s.beforeRun = func(*job) { barrier.Done(); barrier.Wait() }
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()

	idA := submitReplay(t, ts, fmt.Sprintf(`{"app":%q,"scheme":"4PS"}`, paper.CallIn))
	idB := submitReplay(t, ts, fmt.Sprintf(`{"app":%q,"scheme":"HPS"}`, paper.Twitter))
	stA := waitState(t, ts, idA, JobDone, 60*time.Second)
	waitState(t, ts, idB, JobDone, 60*time.Second)

	if stA.MetricsURL != "/v1/jobs/"+idA+"/metrics" || stA.TraceURL != "/v1/jobs/"+idA+"/trace" {
		t.Errorf("job status lacks observability URLs: %+v", stA)
	}

	for _, tc := range []struct {
		id          string
		wantMetrics []byte
		wantTrace   []byte
	}{
		{idA, wantMetricsA, wantTraceA},
		{idB, wantMetricsB, wantTraceB},
	} {
		code, ctype, gotMetrics := getBody(t, ts, "/v1/jobs/"+tc.id+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("GET job %s metrics = %d", tc.id, code)
		}
		if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
			t.Errorf("job metrics content type %q, want prometheus text 0.0.4", ctype)
		}
		if got, want := stripWallClock(gotMetrics), stripWallClock(tc.wantMetrics); got != want {
			t.Errorf("job %s metrics differ from a solo replay (cross-job contamination?)\n--- got ---\n%s--- want ---\n%s",
				tc.id, got, want)
		}
		code, ctype, gotTrace := getBody(t, ts, "/v1/jobs/"+tc.id+"/trace")
		if code != http.StatusOK {
			t.Fatalf("GET job %s trace = %d", tc.id, code)
		}
		if !strings.HasPrefix(ctype, "application/json") {
			t.Errorf("job trace content type %q, want application/json", ctype)
		}
		if !bytes.Equal(gotTrace, tc.wantTrace) {
			t.Errorf("job %s trace differs from a solo replay (%d vs %d bytes)",
				tc.id, len(gotTrace), len(tc.wantTrace))
		}
	}

	// Disjoint workloads must disagree somewhere obvious.
	if bytes.Equal(wantMetricsA, wantMetricsB) {
		t.Fatal("test premise broken: the two workloads produced identical metrics")
	}

	// Server-wide /metrics equals the merge of the per-job snapshots: every
	// simulation series is the sum of the two jobs' values.
	code, _, serverMetrics := getBody(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	got := parseSamples(t, serverMetrics)
	sum := parseSamples(t, wantMetricsA)
	for k, v := range parseSamples(t, wantMetricsB) {
		sum[k] += v
	}
	for series, want := range sum {
		if got[series] != want {
			t.Errorf("server series %s = %d, want %d (merge of both jobs)", series, got[series], want)
		}
	}
}

func TestJobMetricsAndTraceNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _, _ := getBody(t, ts, "/v1/jobs/j999/metrics"); code != http.StatusNotFound {
		t.Errorf("metrics for unknown job = %d, want 404", code)
	}
	if code, _, _ := getBody(t, ts, "/v1/jobs/j999/trace"); code != http.StatusNotFound {
		t.Errorf("trace for unknown job = %d, want 404", code)
	}
}

// TestJobTraceDisabled pins the negative JobTraceCap contract: no tracer is
// attached, the status omits the trace URL, and the endpoint 404s — but the
// job's metrics remain available.
func TestJobTraceDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{JobTraceCap: -1})
	id := submitReplay(t, ts, fmt.Sprintf(`{"app":%q,"scheme":"4PS"}`, paper.CallIn))
	st := waitState(t, ts, id, JobDone, 30*time.Second)
	if st.TraceURL != "" {
		t.Errorf("trace disabled but status advertises %q", st.TraceURL)
	}
	if code, _, _ := getBody(t, ts, "/v1/jobs/"+id+"/trace"); code != http.StatusNotFound {
		t.Errorf("trace endpoint with tracing disabled = %d, want 404", code)
	}
	if code, _, b := getBody(t, ts, "/v1/jobs/"+id+"/metrics"); code != http.StatusOK ||
		!strings.Contains(string(b), "core_requests_total") {
		t.Errorf("job metrics with tracing disabled = %d", code)
	}
}

func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id1 := resp.Header.Get("X-Request-ID")
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id2 := resp.Header.Get("X-Request-ID")
	if id1 == "" || id2 == "" || id1 == id2 {
		t.Errorf("request IDs not unique per request: %q, %q", id1, id2)
	}
}

// TestHealthzReportsQueueAndWorkerState pins the extended health payload on
// a healthy server with one gated running job and one queued job.
func TestHealthzReportsQueueAndWorkerState(t *testing.T) {
	callIn := fmt.Sprintf(`{"app":%q,"scheme":"4PS"}`, paper.CallIn)
	s, ts, gate := gateServer(t, Config{QueueDepth: 4})

	running := submitReplay(t, ts, callIn)
	waitRunning(t, s, 1)
	queued := submitReplay(t, ts, callIn)

	var h Health
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}
	if h.Status != "ok" || h.Workers != 1 || h.Running != 1 || h.Queued != 1 ||
		h.QueueCapacity != 4 || h.Jobs != 2 {
		t.Errorf("health = %+v, want ok/1 worker/1 running/1 queued/cap 4/2 jobs", h)
	}
	if h.States[JobRunning] != 1 || h.States[JobQueued] != 1 {
		t.Errorf("health states = %v, want 1 running + 1 queued", h.States)
	}

	gate <- struct{}{}
	gate <- struct{}{}
	waitState(t, ts, running, JobDone, 30*time.Second)
	waitState(t, ts, queued, JobDone, 30*time.Second)
}

// TestHealthzDrainingReturns503 is the load-balancer contract: the moment a
// drain begins, /healthz flips to 503 {"status":"draining"} so traffic stops
// being routed here while in-flight jobs finish.
func TestHealthzDrainingReturns503(t *testing.T) {
	callIn := fmt.Sprintf(`{"app":%q,"scheme":"4PS"}`, paper.CallIn)
	s, ts, gate := gateServer(t, Config{QueueDepth: 4})

	id := submitReplay(t, ts, callIn)
	waitRunning(t, s, 1)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		var h Health
		code := getJSON(t, ts, "/healthz", &h)
		if code == http.StatusServiceUnavailable {
			if h.Status != "draining" {
				t.Fatalf("healthz 503 status = %q, want draining", h.Status)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never flipped to 503 during drain (last code %d)", code)
		}
		time.Sleep(time.Millisecond)
	}

	gate <- struct{}{}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	waitState(t, ts, id, JobDone, time.Second)
}

// TestBuildInfoGauge checks /metrics carries the build-info series with
// non-empty version labels.
func TestBuildInfoGauge(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _, b := getBody(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	out := string(b)
	if !strings.Contains(out, "emmcd_build_info{") {
		t.Fatalf("/metrics missing emmcd_build_info:\n%.500s", out)
	}
	line := out[strings.Index(out, "emmcd_build_info{"):]
	line = line[:strings.IndexByte(line, '\n')]
	if !strings.Contains(line, `go_version="go`) || strings.Contains(line, `version=""`) {
		t.Errorf("build info labels incomplete: %s", line)
	}
	if !strings.HasSuffix(line, " 1") {
		t.Errorf("build info gauge value not 1: %s", line)
	}
}
