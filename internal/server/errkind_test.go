package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"emmcio/internal/paper"
	"emmcio/internal/telemetry"
)

// TestQueueFull429CarriesRetryAfter: a saturated queue's 429 must carry
// the machine-readable backpressure contract the coordinator keys on — a
// Retry-After header plus queue depth and capacity in the JSON body — not
// just a bare status code.
func TestQueueFull429CarriesRetryAfter(t *testing.T) {
	callIn := fmt.Sprintf(`{"app":%q,"scheme":"4PS"}`, paper.CallIn)
	s, ts, gate := gateServer(t, Config{QueueDepth: 1})

	running := submitReplay(t, ts, callIn)
	waitRunning(t, s, 1)
	queued := submitReplay(t, ts, callIn)

	resp, err := http.Post(ts.URL+"/v1/replays", "application/json", strings.NewReader(callIn))
	if err != nil {
		t.Fatalf("overflow POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow POST = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want %q", got, "1")
	}
	var qf QueueFullError
	if err := json.NewDecoder(resp.Body).Decode(&qf); err != nil {
		t.Fatalf("decoding 429 body: %v", err)
	}
	if qf.Error == "" {
		t.Error("429 body missing the human error string")
	}
	if qf.Queued != 1 || qf.QueueCapacity != 1 {
		t.Errorf("429 body queue state = %d/%d, want 1/1", qf.Queued, qf.QueueCapacity)
	}

	gate <- struct{}{}
	gate <- struct{}{}
	waitState(t, ts, running, JobDone, 30*time.Second)
	waitState(t, ts, queued, JobDone, 30*time.Second)
}

// enqueueFunc admits a synthetic job running fn, for exercising terminal
// classification without a real replay.
func enqueueFunc(t *testing.T, s *Server, fn func(ctx context.Context) error) *job {
	t.Helper()
	j, err := s.enqueue(context.Background(), "test", "", "", func(ctx context.Context, _ *telemetry.Registry, _ *telemetry.Tracer) (any, error) {
		return nil, fn(ctx)
	})
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	return j
}

// TestErrorKindClassification pins the error_kind wire contract: runtime
// failures, deadline expiries, and cancellations each carry their own
// stable machine-readable kind while the human error string stays free-form.
func TestErrorKindClassification(t *testing.T) {
	t.Run("runtime", func(t *testing.T) {
		s, ts := newTestServer(t, Config{})
		j := enqueueFunc(t, s, func(context.Context) error { return errors.New("boom") })
		st := waitState(t, ts, j.id, JobFailed, 5*time.Second)
		if st.ErrorKind != ErrKindRuntime {
			t.Errorf("error_kind = %q, want %q", st.ErrorKind, ErrKindRuntime)
		}
		if st.Error != "boom" {
			t.Errorf("human error = %q, want %q (unchanged by classification)", st.Error, "boom")
		}
	})

	t.Run("deadline", func(t *testing.T) {
		s, ts := newTestServer(t, Config{JobTimeout: 20 * time.Millisecond})
		j := enqueueFunc(t, s, func(ctx context.Context) error {
			<-ctx.Done()
			return ctx.Err()
		})
		st := waitState(t, ts, j.id, JobFailed, 5*time.Second)
		if st.ErrorKind != ErrKindDeadline {
			t.Errorf("error_kind = %q, want %q", st.ErrorKind, ErrKindDeadline)
		}
	})

	t.Run("canceled", func(t *testing.T) {
		s, ts := newTestServer(t, Config{})
		started := make(chan struct{})
		j := enqueueFunc(t, s, func(ctx context.Context) error {
			close(started)
			<-ctx.Done()
			return ctx.Err()
		})
		<-started
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("DELETE: %v", err)
		}
		resp.Body.Close()
		st := waitState(t, ts, j.id, JobCanceled, 5*time.Second)
		if st.ErrorKind != ErrKindCanceled {
			t.Errorf("error_kind = %q, want %q", st.ErrorKind, ErrKindCanceled)
		}
	})

	t.Run("done_has_no_kind", func(t *testing.T) {
		s, ts := newTestServer(t, Config{})
		j := enqueueFunc(t, s, func(context.Context) error { return nil })
		st := waitState(t, ts, j.id, JobDone, 5*time.Second)
		if st.ErrorKind != "" {
			t.Errorf("done job error_kind = %q, want empty", st.ErrorKind)
		}
	})
}
