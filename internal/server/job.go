package server

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"emmcio/internal/telemetry"
)

// Job states. A job moves queued → running → one of the terminal states;
// DELETE can short-circuit queued straight to canceled.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// Error kinds classify a job's terminal error machine-readably, so a
// client (the sweep coordinator) can tell retryable failures from fatal
// ones without parsing the human error string:
//
//   - canceled: DELETE or a server drain stopped the job — the work itself
//     is fine and can run elsewhere;
//   - deadline: the per-job deadline expired — a capacity symptom, worth
//     retrying on a less loaded worker;
//   - runtime: the job's own execution failed — deterministic, so a retry
//     anywhere reproduces it.
//
// The same vocabulary classifies synchronous HTTP errors: every non-2xx
// response carries {"error", "error_kind"} (see writeError), so clients
// branch on the kind instead of status-code heuristics:
//
//   - validation: the request itself is malformed or names unknown things —
//     retrying it anywhere reproduces the rejection;
//   - not_found: the referenced resource does not exist here (it may exist
//     on another worker, or may have been evicted);
//   - conflict: the request contradicts existing state (a device label
//     already naming a different snapshot);
//   - saturated: the admission queue is full — retry after backoff;
//   - unavailable: the server cannot take this work right now (draining, or
//     a surface is not configured) — retry elsewhere;
//   - internal: an unexpected server-side failure.
const (
	ErrKindCanceled    = "canceled"
	ErrKindDeadline    = "deadline"
	ErrKindRuntime     = "runtime"
	ErrKindValidation  = "validation"
	ErrKindNotFound    = "not_found"
	ErrKindConflict    = "conflict"
	ErrKindSaturated   = "saturated"
	ErrKindUnavailable = "unavailable"
	ErrKindInternal    = "internal"
)

// jobFunc is a job's work function. It observes into the job's own child
// registry and tracer — never the server-wide registry — so every metric
// and span it emits is attributable to exactly this job.
type jobFunc func(ctx context.Context, reg *telemetry.Registry, tc *telemetry.Tracer) (any, error)

// job is one asynchronous unit of work: a replay or a sweep submitted over
// HTTP, executed on the server's worker pool under a cancelable context.
type job struct {
	id string
	// seq is the numeric part of id; listings sort on it so "j10" follows
	// "j9" instead of "j1".
	seq  int64
	kind string
	// device is the storage backend the job replays against ("emmc", "sd",
	// or "ufs"), resolved from the spec at admission so listings and logs
	// carry it even while the job is still queued.
	device string
	// reqID is the HTTP request id that admitted the job, joining the
	// job's lifecycle log lines back to the submission.
	reqID string
	// fromDevice is the archived snapshot id the job forks ("" for jobs on
	// fresh devices); GET /v1/devices/{id}/forks filters on it.
	fromDevice string
	run        jobFunc

	// tel is the job's child telemetry registry (scoped under the server
	// registry; merged into it at completion) and tracer its span ring.
	// Both stay attached for as long as the result store retains the job,
	// serving /v1/jobs/{id}/metrics and /trace.
	tel    *telemetry.Registry
	tracer *telemetry.Tracer

	// done closes when the job reaches a terminal state; DELETE handlers
	// and tests wait on it.
	done chan struct{}

	mu    sync.Mutex
	state string
	err   string
	// errKind is the machine-readable abnormal-termination classification
	// (one of the ErrKind constants; empty for queued/running/done jobs).
	errKind  string
	result   json.RawMessage
	created  time.Time
	started  time.Time
	finished time.Time
	// cancel aborts the running job's context (nil unless running).
	cancel context.CancelFunc
	// canceled records that DELETE arrived, so a context error is reported
	// as a cancellation rather than a failure.
	canceled bool
}

// JobStatus is the wire form of a job, served by GET /v1/jobs/{id}.
type JobStatus struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Device is the storage backend the job runs against (emmc, sd, ufs).
	Device string `json:"device,omitempty"`
	State  string `json:"state"`
	// Created/Started/Finished are RFC 3339 timestamps; Started and
	// Finished are empty until the job reaches those states.
	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	// Error is set for failed (and context-expired canceled) jobs.
	Error string `json:"error,omitempty"`
	// ErrorKind classifies Error machine-readably: canceled, deadline, or
	// runtime (see the ErrKind constants). The human Error string is
	// unchanged; clients branch on this field instead of parsing it.
	ErrorKind string `json:"error_kind,omitempty"`
	// FromDevice is the archived snapshot the job forked, when it ran
	// restore-then-run instead of building a fresh device.
	FromDevice string `json:"from_device,omitempty"`
	// resourceLinks carries the job's metrics/trace URLs (flattened).
	resourceLinks
	// Result is the job's JSON payload, present once state is done:
	// []cliutil.SchemeResult for replays, []SweepOutput for sweeps.
	Result json.RawMessage `json:"result,omitempty"`
}

// status snapshots the job under its lock.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:            j.id,
		Kind:          j.kind,
		Device:        j.device,
		State:         j.state,
		Created:       j.created.UTC().Format(time.RFC3339Nano),
		Error:         j.err,
		ErrorKind:     j.errKind,
		FromDevice:    j.fromDevice,
		resourceLinks: jobLinks(j.id, j.tracer != nil),
		Result:        j.result,
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return st
}
