package server

// Job-scoped observability: every replay/sweep job observes into its own
// child telemetry registry and span tracer, which stay attached to the job
// record for as long as the result store retains it. GET
// /v1/jobs/{id}/metrics and /trace answer "what did *this* job's device
// do" — the question the paper's per-application attribution asks — while
// the server-wide /metrics keeps fleet totals because each job's registry
// merges into it on completion.
//
// The HTTP surface is wrapped in a request-logging middleware that assigns
// every request an id (echoed as X-Request-ID and threaded through the
// context), so a job's lifecycle log lines can be joined back to the
// submission that admitted it.

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"time"
)

// ctxKey keys context values owned by this package.
type ctxKey int

const reqIDKey ctxKey = iota

// requestID returns the middleware-assigned request id ("" outside a
// request).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey).(string)
	return id
}

// statusRecorder captures the response code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// withObservedRequests assigns request ids and logs one line per request
// at debug level (status polls are frequent; job lifecycle events carry
// the info-level narrative).
func (s *Server) withObservedRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("r%d", s.reqSeq.Add(1))
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r.WithContext(context.WithValue(r.Context(), reqIDKey, id)))
		s.log.Debug("http request",
			"req", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.code,
			"duration", time.Since(start))
	})
}

// handleJobMetrics serves one job's own metrics in the Prometheus text
// format: the child registry the job observed into, untouched by any other
// job. Available while the job runs (a live view) and for as long as the
// result store retains the terminal job.
func (s *Server) handleJobMetrics(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r)
	if j == nil {
		writeError(w, http.StatusNotFound, ErrKindNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	j.tel.WritePrometheus(w) //nolint:errcheck // streaming body
}

// handleJobTrace serves one job's span tracer as Chrome trace_event JSON,
// loadable in chrome://tracing or ui.perfetto.dev.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r)
	if j == nil {
		writeError(w, http.StatusNotFound, ErrKindNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if j.tracer == nil {
		writeError(w, http.StatusNotFound, ErrKindNotFound, fmt.Errorf("job %q has no trace (per-job tracing disabled)", j.id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	j.tracer.WriteChromeTrace(w) //nolint:errcheck // streaming body
}

// logger returns cfg.Logger or a drop-everything default, so the library
// is silent unless the embedder opts in (cmd/emmcd wires stderr).
func (cfg Config) logger() *slog.Logger {
	if cfg.Logger != nil {
		return cfg.Logger
	}
	return slog.New(discardHandler{})
}

// discardHandler drops every record without formatting it.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
