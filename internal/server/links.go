package server

// resourceLinks is the one place API resources get their companion URLs.
// Jobs and devices both embed it (fields flatten into their JSON), so a
// new surface — the device store's snapshot and fork listings — picks up
// link rendering for free instead of hand-rolling paths in each status
// snapshot, and a path change happens here once.
type resourceLinks struct {
	// MetricsURL and TraceURL point at a job's own observability surfaces:
	// Prometheus text and Chrome-trace JSON scoped to that job.
	MetricsURL string `json:"metrics_url,omitempty"`
	TraceURL   string `json:"trace_url,omitempty"`
	// SnapshotURL serves a device's sealed snapshot bytes; ForksURL lists
	// the jobs forked from it.
	SnapshotURL string `json:"snapshot_url,omitempty"`
	ForksURL    string `json:"forks_url,omitempty"`
}

// jobLinks builds the link set for a job resource. traced reports whether
// the job has a span tracer (the trace link is omitted otherwise).
func jobLinks(id string, traced bool) resourceLinks {
	l := resourceLinks{MetricsURL: "/v1/jobs/" + id + "/metrics"}
	if traced {
		l.TraceURL = "/v1/jobs/" + id + "/trace"
	}
	return l
}

// deviceLinks builds the link set for a device resource.
func deviceLinks(id string) resourceLinks {
	return resourceLinks{
		SnapshotURL: "/v1/devices/" + id + "/snapshot",
		ForksURL:    "/v1/devices/" + id + "/forks",
	}
}
