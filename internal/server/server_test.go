package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"emmcio/internal/cliutil"
	"emmcio/internal/paper"
	"emmcio/internal/trace"
	"emmcio/internal/workload"
)

// newTestServer starts the job service behind an httptest listener. The
// returned gate, when used via Config-sized tests, is wired separately.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck // best-effort teardown
	})
	return s, ts
}

func postJSON(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading POST %s response: %v", path, err)
	}
	return resp.StatusCode, b
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading GET %s: %v", path, err)
	}
	if v != nil {
		if err := json.Unmarshal(b, v); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", path, b, err)
		}
	}
	return resp.StatusCode
}

// submitReplay POSTs a replay spec and returns the accepted job id.
func submitReplay(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	code, b := postJSON(t, ts, "/v1/replays", body)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/replays = %d, want 202; body %s", code, b)
	}
	var sub submitted
	if err := json.Unmarshal(b, &sub); err != nil {
		t.Fatalf("bad 202 body %q: %v", b, err)
	}
	return sub.ID
}

// waitState polls a job until it reaches want (or any terminal state) and
// returns the final status.
func waitState(t *testing.T, ts *httptest.Server, id, want string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st JobStatus
		if code := getJSON(t, ts, "/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET job %s = %d", id, code)
		}
		if st.State == want {
			return st
		}
		terminal := st.State == JobDone || st.State == JobFailed || st.State == JobCanceled
		if terminal || time.Now().After(deadline) {
			t.Fatalf("job %s state = %q (err %q), want %q", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestReplayJobHappyPath(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := submitReplay(t, ts, fmt.Sprintf(`{"app":%q,"scheme":"4PS"}`, paper.CallIn))
	st := waitState(t, ts, id, JobDone, 30*time.Second)
	if st.Started == "" || st.Finished == "" {
		t.Errorf("done job missing timestamps: %+v", st)
	}
	var results []cliutil.SchemeResult
	if err := json.Unmarshal(st.Result, &results); err != nil {
		t.Fatalf("bad result payload %s: %v", st.Result, err)
	}
	if len(results) != 1 || results[0].Scheme != "4PS" {
		t.Fatalf("results = %+v, want one 4PS entry", results)
	}
	if results[0].Metrics.Served == 0 || results[0].Metrics.MeanResponseNs <= 0 {
		t.Errorf("suspicious metrics: %+v", results[0].Metrics)
	}

	var list []JobStatus
	if code := getJSON(t, ts, "/v1/jobs", &list); code != http.StatusOK || len(list) != 1 {
		t.Errorf("job list = %d entries (code %d), want 1", len(list), code)
	}
	var h Health
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Errorf("healthz = %+v (code %d)", h, code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "emmcd_jobs_completed_total 1") {
		t.Errorf("/metrics missing completed counter:\n%s", body)
	}
	if s.completed.Value() != 1 {
		t.Errorf("completed counter = %d, want 1", s.completed.Value())
	}
}

func TestBadRequestsGet400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
	}{
		{"malformed json", "/v1/replays", `{"app":`},
		{"unknown field", "/v1/replays", `{"app":"Twitter","bogus":1}`},
		{"unknown app", "/v1/replays", `{"app":"NoSuchApp"}`},
		{"missing app", "/v1/replays", `{}`},
		{"unknown scheme", "/v1/replays", `{"app":"Twitter","scheme":"16PS"}`},
		{"unknown gc", "/v1/replays", `{"app":"Twitter","gc":"eager"}`},
		{"unknown wear", "/v1/replays", `{"app":"Twitter","wear":"perfect"}`},
		{"fault seed without faults", "/v1/replays", `{"app":"Twitter","fault_seed":7}`},
		{"negative scale", "/v1/replays", `{"app":"Twitter","scale":-1}`},
		{"unknown device", "/v1/replays", `{"app":"Twitter","device":"floppy"}`},
		{"no sweeps", "/v1/sweeps", `{}`},
		{"sweep unknown device", "/v1/sweeps", `{"sweeps":["casestudy"],"device":"floppy"}`},
		{"unknown sweep", "/v1/sweeps", `{"sweeps":["fig99"]}`},
		{"unknown sweep trace", "/v1/sweeps", `{"sweeps":["casestudy"],"traces":["NoSuchApp"]}`},
		{"trace unknown app", "/v1/traces", `{"app":"NoSuchApp"}`},
		{"trace missing app", "/v1/traces", `{}`},
		{"trace unknown format", "/v1/traces", `{"app":"Twitter","format":"pcap"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postJSON(t, ts, tc.path, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("POST %s %s = %d, want 400; body %s", tc.path, tc.body, code, body)
			}
			var e map[string]string
			if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
				t.Fatalf("400 body %q lacks an error message", body)
			}
		})
	}
	if code := getJSON(t, ts, "/v1/jobs/j999", nil); code != http.StatusNotFound {
		t.Errorf("GET unknown job = %d, want 404", code)
	}
}

// gateServer builds a 1-worker server whose worker blocks at a gate before
// running each job, so tests can fill the queue deterministically.
func gateServer(t *testing.T, cfg Config) (*Server, *httptest.Server, chan struct{}) {
	t.Helper()
	cfg.Workers = 1
	gate := make(chan struct{})
	s := New(cfg)
	s.beforeRun = func(*job) { <-gate }
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		close(gate)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	})
	return s, ts, gate
}

// waitRunning waits until the server reports n running jobs.
func waitRunning(t *testing.T, s *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.running.Value() != n {
		if time.Now().After(deadline) {
			t.Fatalf("running = %d, want %d", s.running.Value(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	callIn := fmt.Sprintf(`{"app":%q,"scheme":"4PS"}`, paper.CallIn)
	s, ts, gate := gateServer(t, Config{QueueDepth: 1})

	running := submitReplay(t, ts, callIn)
	waitRunning(t, s, 1) // worker holds it at the gate
	queued := submitReplay(t, ts, callIn)

	code, body := postJSON(t, ts, "/v1/replays", callIn)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow POST = %d, want 429; body %s", code, body)
	}
	if s.rejected.Value() != 1 {
		t.Errorf("rejected counter = %d, want 1", s.rejected.Value())
	}

	gate <- struct{}{} // release the running job
	gate <- struct{}{} // and the queued one
	waitState(t, ts, running, JobDone, 30*time.Second)
	waitState(t, ts, queued, JobDone, 30*time.Second)
}

func TestDeleteCancelsQueuedJob(t *testing.T) {
	callIn := fmt.Sprintf(`{"app":%q,"scheme":"4PS"}`, paper.CallIn)
	s, ts, gate := gateServer(t, Config{QueueDepth: 4})

	running := submitReplay(t, ts, callIn)
	waitRunning(t, s, 1)
	queued := submitReplay(t, ts, callIn)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	st := waitState(t, ts, queued, JobCanceled, time.Second)
	if st.Started != "" {
		t.Errorf("canceled queued job claims it started: %+v", st)
	}

	gate <- struct{}{}
	waitState(t, ts, running, JobDone, 30*time.Second)
	// The worker must skip the canceled job without blocking on the gate a
	// second time; nothing should be running afterwards.
	waitRunning(t, s, 0)
}

// TestShutdownAfterDeleteOfQueuedJob covers the double-close hazard: DELETE
// finalizes a queued job but leaves it on the queue channel, and Shutdown's
// drain loop must skip it rather than close j.done (and bump the canceled
// counter) a second time.
func TestShutdownAfterDeleteOfQueuedJob(t *testing.T) {
	callIn := fmt.Sprintf(`{"app":%q,"scheme":"4PS"}`, paper.CallIn)
	s, ts, gate := gateServer(t, Config{QueueDepth: 4})

	running := submitReplay(t, ts, callIn)
	waitRunning(t, s, 1)
	queued := submitReplay(t, ts, callIn)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	waitState(t, ts, queued, JobCanceled, time.Second)

	// Shutdown drains the queue — including the already-canceled job still
	// sitting on it — while the running job is released to finish.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	gate <- struct{}{}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	waitState(t, ts, running, JobDone, time.Second)
	if got := s.canceledC.Value(); got != 1 {
		t.Errorf("canceled counter = %d, want 1 (no double count from the drain loop)", got)
	}
}

func TestDeleteCancelsRunningReplayWithinASecond(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// A deliberately long job: Twitter repeated 1000 sessions (~14M
	// events) takes far longer than the test; cancellation must not wait
	// for it.
	id := submitReplay(t, ts, fmt.Sprintf(`{"app":%q,"scheme":"4PS","sessions":1000}`, paper.Twitter))
	waitState(t, ts, id, JobRunning, 10*time.Second)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	st := waitState(t, ts, id, JobCanceled, time.Second)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancellation took %v, want < 1s", elapsed)
	}
	if !strings.Contains(st.Error, "canceled") {
		t.Errorf("canceled job error = %q, want a cancellation diagnosis", st.Error)
	}
}

func TestShutdownDrainsRunningSweepAndCancelsQueued(t *testing.T) {
	s, ts, gate := gateServer(t, Config{QueueDepth: 4})

	// A real sweep job (restricted to one small trace) held at the gate.
	code, b := postJSON(t, ts, "/v1/sweeps",
		fmt.Sprintf(`{"sweeps":["casestudy"],"traces":[%q]}`, paper.CallIn))
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d; body %s", code, b)
	}
	var sub submitted
	if err := json.Unmarshal(b, &sub); err != nil {
		t.Fatal(err)
	}
	sweepID := sub.ID
	waitRunning(t, s, 1)
	queued := submitReplay(t, ts, fmt.Sprintf(`{"app":%q}`, paper.CallIn))

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()

	// Admissions must close immediately...
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ = postJSON(t, ts, "/v1/replays", fmt.Sprintf(`{"app":%q}`, paper.CallIn))
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("POST during drain = %d, want 503", code)
		}
		time.Sleep(time.Millisecond)
	}
	// ...the queued job is canceled without ever running...
	waitState(t, ts, queued, JobCanceled, 5*time.Second)

	// ...and the in-flight sweep drains to completion once released.
	gate <- struct{}{}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	st := waitState(t, ts, sweepID, JobDone, time.Second)
	var out []SweepOutput
	if err := json.Unmarshal(st.Result, &out); err != nil {
		t.Fatalf("bad sweep result %s: %v", st.Result, err)
	}
	if len(out) != 1 || out[0].Name != "casestudy" || len(out[0].Tables) != 2 {
		t.Fatalf("sweep output = %+v, want casestudy with 2 tables", out)
	}
}

func TestTraceEndpointStreamsAllCodecs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	want := workload.DefaultRegistry().Lookup(paper.CallIn).Generate(workload.DefaultSeed)

	for _, format := range []string{"text", "bio1", "bioz"} {
		t.Run(format, func(t *testing.T) {
			code, body := postJSON(t, ts, "/v1/traces",
				fmt.Sprintf(`{"app":%q,"format":%q}`, paper.CallIn, format))
			if code != http.StatusOK {
				t.Fatalf("POST /v1/traces = %d; body %.200s", code, body)
			}
			var st trace.Stream
			var err error
			switch format {
			case "text":
				st = trace.NewTextDecoder(bytes.NewReader(body))
			case "bio1":
				st, err = trace.NewBinaryDecoder(bytes.NewReader(body))
			case "bioz":
				tr, cerr := trace.ReadCompressed(bytes.NewReader(body))
				if cerr != nil {
					t.Fatalf("decoding bioz: %v", cerr)
				}
				st = trace.FromSlice(tr)
			}
			if err != nil {
				t.Fatalf("decoding %s: %v", format, err)
			}
			n := 0
			for {
				req, ok, err := st.Next()
				if err != nil {
					t.Fatalf("request %d: %v", n, err)
				}
				if !ok {
					break
				}
				w := want.Reqs[n]
				if req.LBA != w.LBA || req.Size != w.Size || req.Op != w.Op || req.Arrival != w.Arrival {
					t.Fatalf("request %d = %+v, want %+v", n, req, w)
				}
				n++
			}
			if n != len(want.Reqs) {
				t.Fatalf("decoded %d requests, want %d", n, len(want.Reqs))
			}
		})
	}
}

// TestConcurrentLoad is the in-tree load test: 64 concurrent submissions
// against a queue capped at 16. Accepted jobs must all produce results
// identical to an in-process replay of the same spec; the overflow must be
// clean 429s, not queue growth.
func TestConcurrentLoad(t *testing.T) {
	spec := cliutil.ReplaySpec{App: paper.CallIn, Scheme: "4PS"}
	ref, err := spec.Run(context.Background(), 0, nil, nil)
	if err != nil {
		t.Fatalf("reference replay: %v", err)
	}
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}

	s, ts, gate := gateServer(t, Config{QueueDepth: 16, ResultCap: 128})
	body := fmt.Sprintf(`{"app":%q,"scheme":"4PS"}`, paper.CallIn)

	const submissions = 64
	var mu sync.Mutex
	var accepted []string
	rejected := 0
	var wg sync.WaitGroup
	for i := 0; i < submissions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/replays", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("POST: %v", err)
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusAccepted:
				var sub submitted
				if err := json.Unmarshal(b, &sub); err != nil {
					t.Errorf("bad 202 body %q: %v", b, err)
					return
				}
				accepted = append(accepted, sub.ID)
			case http.StatusTooManyRequests:
				rejected++
			default:
				t.Errorf("unexpected status %d: %s", resp.StatusCode, b)
			}
		}()
	}
	wg.Wait()

	// With the single worker gated, at most queue(16) + 1 in-flight job can
	// be admitted; everything else must have bounced.
	if len(accepted)+rejected != submissions {
		t.Fatalf("accepted %d + rejected %d != %d", len(accepted), rejected, submissions)
	}
	if len(accepted) > 17 {
		t.Errorf("accepted %d jobs with queue depth 16, want <= 17", len(accepted))
	}
	if rejected < submissions-17 {
		t.Errorf("rejected %d, want >= %d", rejected, submissions-17)
	}
	if got := s.rejected.Value(); got != int64(rejected) {
		t.Errorf("rejected counter = %d, want %d", got, rejected)
	}

	// Release the worker and let every accepted job run to completion.
	go func() {
		for range accepted {
			gate <- struct{}{}
		}
	}()
	for _, id := range accepted {
		st := waitState(t, ts, id, JobDone, 60*time.Second)
		var got any
		if err := json.Unmarshal(st.Result, &got); err != nil {
			t.Fatalf("job %s result: %v", id, err)
		}
		norm, _ := json.Marshal(got)
		var refAny any
		json.Unmarshal(refJSON, &refAny) //nolint:errcheck
		refNorm, _ := json.Marshal(refAny)
		if !bytes.Equal(norm, refNorm) {
			t.Fatalf("job %s result differs from the in-process replay:\n%s\nvs\n%s", id, norm, refNorm)
		}
	}
}

// TestResultStoreEvictsOldest pins the LRU bound: with ResultCap 2, the
// first of three completed jobs must become unknown.
func TestResultStoreEvictsOldest(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, ResultCap: 2})
	callIn := fmt.Sprintf(`{"app":%q,"scheme":"4PS"}`, paper.CallIn)
	var ids []string
	for i := 0; i < 3; i++ {
		id := submitReplay(t, ts, callIn)
		waitState(t, ts, id, JobDone, 30*time.Second)
		ids = append(ids, id)
	}
	if code := getJSON(t, ts, "/v1/jobs/"+ids[0], nil); code != http.StatusNotFound {
		t.Errorf("evicted job GET = %d, want 404", code)
	}
	for _, id := range ids[1:] {
		if code := getJSON(t, ts, "/v1/jobs/"+id, nil); code != http.StatusOK {
			t.Errorf("retained job %s GET = %d, want 200", id, code)
		}
	}
}
