// Package sim provides a minimal discrete-event simulation kernel:
// a virtual clock, a time-ordered event queue, and busy-until resource
// bookkeeping. The eMMC device model in internal/emmc is built on top of it.
//
// All times are expressed as int64 nanoseconds since simulation start.
// Nanosecond resolution comfortably covers both the microsecond-scale flash
// operations (Table V of the paper) and the hour-scale trace durations
// (Table IV).
package sim

import (
	"container/heap"
	"fmt"

	"emmcio/internal/telemetry"
)

// Time is a simulation timestamp in nanoseconds since simulation start.
type Time = int64

// Common durations, in nanoseconds.
const (
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Event is a scheduled callback.
type Event struct {
	At Time
	// Fn runs when the clock reaches At. It may schedule further events.
	Fn func(now Time)

	seq   uint64 // tie-breaker: FIFO among equal timestamps
	index int    // heap index
}

// eventHeap implements heap.Interface ordered by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// engineTel holds the engine's metric handles, resolved once so the event
// loop pays a single nil check when telemetry is off.
type engineTel struct {
	dispatched *telemetry.Counter
	depth      *telemetry.Gauge
	vtime      *telemetry.Gauge
}

// Engine is a discrete-event simulation loop.
// The zero value is ready to use.
type Engine struct {
	now    Time
	queue  eventHeap
	nextSq uint64
	tel    *engineTel
}

// SetTelemetry attaches (or, with a nil registry, detaches) observability:
// sim_events_dispatched_total counts executed events, sim_queue_depth
// tracks the pending-event count, and sim_virtual_time_ns follows the
// virtual clock.
func (e *Engine) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		e.tel = nil
		return
	}
	e.tel = &engineTel{
		dispatched: reg.Counter("sim_events_dispatched_total"),
		depth:      reg.Gauge("sim_queue_depth"),
		vtime:      reg.Gauge("sim_virtual_time_ns"),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule enqueues fn to run at time at. Scheduling in the past is a
// programming error and panics, because it would silently reorder causality.
func (e *Engine) Schedule(at Time, fn func(now Time)) *Event {
	if at < e.now {
		head := "queue empty"
		if len(e.queue) > 0 {
			head = fmt.Sprintf("queue head at %d", e.queue[0].At)
		}
		panic(fmt.Sprintf("sim: scheduling event in the past: at=%d now=%d (%s, %d events pending)",
			at, e.now, head, len(e.queue)))
	}
	ev := &Event{At: at, Fn: fn, seq: e.nextSq}
	e.nextSq++
	heap.Push(&e.queue, ev)
	if e.tel != nil {
		e.tel.depth.Set(int64(len(e.queue)))
	}
	return ev
}

// ScheduleAfter enqueues fn to run delay nanoseconds from now.
func (e *Engine) ScheduleAfter(delay Time, fn func(now Time)) *Event {
	return e.Schedule(e.now+delay, fn)
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Step executes the earliest event, advancing the clock to its timestamp.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.At
	if e.tel != nil {
		e.tel.dispatched.Inc()
		e.tel.depth.Set(int64(len(e.queue)))
		e.tel.vtime.Set(e.now)
	}
	ev.Fn(e.now)
	return true
}

// Run drains the event queue to completion and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil processes events with timestamps <= deadline, then advances the
// clock to deadline if it has not already passed it.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].At <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Resource models a serially reusable unit (a flash channel, a plane, the
// whole device) by tracking the earliest time it becomes free.
type Resource struct {
	freeAt Time
	busy   Time // cumulative busy time, for utilization accounting
}

// FreeAt returns the earliest time the resource is available.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Reserve occupies the resource for dur starting no earlier than from,
// and returns the (start, end) of the granted interval.
func (r *Resource) Reserve(from Time, dur Time) (start, end Time) {
	start = from
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + dur
	r.freeAt = end
	r.busy += dur
	return start, end
}

// ReserveWindow occupies exactly [from, from+dur). The caller must have
// established from >= FreeAt(); violating that would overlap reservations,
// so it panics.
func (r *Resource) ReserveWindow(from, dur Time) {
	if from < r.freeAt {
		panic("sim: ReserveWindow overlaps an existing reservation")
	}
	r.freeAt = from + dur
	r.busy += dur
}

// BusyTime returns the cumulative reserved time.
func (r *Resource) BusyTime() Time { return r.busy }

// Reset clears the resource to idle at time zero.
func (r *Resource) Reset() { r.freeAt = 0; r.busy = 0 }

// State exports the resource's bookkeeping for snapshots.
func (r *Resource) State() (freeAt, busy Time) { return r.freeAt, r.busy }

// SetState restores bookkeeping captured by State.
func (r *Resource) SetState(freeAt, busy Time) { r.freeAt = freeAt; r.busy = busy }
