// Package sim provides a minimal discrete-event simulation kernel:
// a virtual clock, a time-ordered event queue, and busy-until resource
// bookkeeping. The eMMC device model in internal/emmc is built on top of it.
//
// All times are expressed as int64 nanoseconds since simulation start.
// Nanosecond resolution comfortably covers both the microsecond-scale flash
// operations (Table V of the paper) and the hour-scale trace durations
// (Table IV).
//
// The event queue is allocation-free in steady state: events live in a
// reusable slot arena ordered by an index-based binary heap (no heap of
// pointers, no container/heap boxing), and dispatched slots return to a
// free list. Callbacks are delivered through the Handler interface with an
// int64 argument, so schedulers carry state in long-lived handler objects
// instead of a heap-allocated closure per event. ScheduleFunc remains for
// tests and cold paths that prefer a closure.
package sim

import (
	"fmt"

	"emmcio/internal/telemetry"
)

// Time is a simulation timestamp in nanoseconds since simulation start.
type Time = int64

// Common durations, in nanoseconds.
const (
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Handler consumes dispatched events. Implementations are long-lived (a
// replay loop, a device plane); the per-event state travels in the int64
// argument passed to Schedule, so scheduling an event allocates nothing.
type Handler interface {
	// OnEvent runs when the clock reaches the event's timestamp. It may
	// schedule further events.
	OnEvent(now Time, arg int64)
}

// event is one slot of the engine's arena. A slot is owned by the queue
// from Schedule until dispatch; its index field tracks the heap position
// and is reset to -1 the moment the slot leaves the heap (stale-index
// hygiene — a recycled slot can never alias a live heap entry).
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among equal timestamps
	h   Handler
	arg int64
	fn  func(now Time) // ScheduleFunc path; nil for Handler events
	// index is the slot's position in the heap order, or -1 when the slot
	// is not queued (dispatched or on the free list).
	index int32
}

// engineTel holds the engine's metric handles, resolved once so the event
// loop pays a single nil check when telemetry is off.
type engineTel struct {
	dispatched *telemetry.Counter
	depth      *telemetry.Gauge
	vtime      *telemetry.Gauge
}

// Engine is a discrete-event simulation loop.
// The zero value is ready to use.
type Engine struct {
	now Time
	// events is the slot arena; order is the binary heap of slot ids
	// sorted by (at, seq); free recycles dispatched slot ids.
	events []event
	order  []int32
	free   []int32
	nextSq uint64
	tel    *engineTel
}

// SetTelemetry attaches (or, with a nil registry, detaches) observability:
// sim_events_dispatched_total counts executed events, sim_queue_depth
// tracks the pending-event count, and sim_virtual_time_ns follows the
// virtual clock.
func (e *Engine) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		e.tel = nil
		return
	}
	e.tel = &engineTel{
		dispatched: reg.Counter("sim_events_dispatched_total"),
		depth:      reg.Gauge("sim_queue_depth"),
		vtime:      reg.Gauge("sim_virtual_time_ns"),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// less orders slot ids by (at, seq).
func (e *Engine) less(a, b int32) bool {
	ea, eb := &e.events[a], &e.events[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// siftUp restores the heap invariant after appending at position i.
func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(e.order[i], e.order[parent]) {
			break
		}
		e.order[i], e.order[parent] = e.order[parent], e.order[i]
		e.events[e.order[i]].index = int32(i)
		e.events[e.order[parent]].index = int32(parent)
		i = parent
	}
}

// siftDown restores the heap invariant after replacing the root.
func (e *Engine) siftDown(i int) {
	n := len(e.order)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && e.less(e.order[right], e.order[left]) {
			least = right
		}
		if !e.less(e.order[least], e.order[i]) {
			break
		}
		e.order[i], e.order[least] = e.order[least], e.order[i]
		e.events[e.order[i]].index = int32(i)
		e.events[e.order[least]].index = int32(least)
		i = least
	}
}

// alloc claims a slot id: recycled from the free list when possible, grown
// otherwise. Growth is amortized — a replay's steady state reuses the same
// handful of slots for millions of events.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		id := e.free[n-1]
		e.free = e.free[:n-1]
		return id
	}
	e.events = append(e.events, event{})
	return int32(len(e.events) - 1)
}

// push enqueues a filled slot into the heap order.
func (e *Engine) push(id int32) {
	e.events[id].index = int32(len(e.order))
	e.order = append(e.order, id)
	e.siftUp(len(e.order) - 1)
	if e.tel != nil {
		e.tel.depth.Set(int64(len(e.order)))
	}
}

// checkNotPast panics on scheduling in the past, which would silently
// reorder causality.
func (e *Engine) checkNotPast(at Time) {
	if at < e.now {
		head := "queue empty"
		if len(e.order) > 0 {
			head = fmt.Sprintf("queue head at %d", e.events[e.order[0]].at)
		}
		panic(fmt.Sprintf("sim: scheduling event in the past: at=%d now=%d (%s, %d events pending)",
			at, e.now, head, len(e.order)))
	}
}

// Schedule enqueues h.OnEvent(now, arg) to run at time at. The call
// allocates nothing in steady state: the event occupies a recycled arena
// slot and carries only the handler reference and argument.
func (e *Engine) Schedule(at Time, h Handler, arg int64) {
	e.checkNotPast(at)
	id := e.alloc()
	ev := &e.events[id]
	ev.at, ev.seq, ev.h, ev.arg, ev.fn = at, e.nextSq, h, arg, nil
	e.nextSq++
	e.push(id)
}

// ScheduleAfter enqueues h.OnEvent to run delay nanoseconds from now.
func (e *Engine) ScheduleAfter(delay Time, h Handler, arg int64) {
	e.Schedule(e.now+delay, h, arg)
}

// ScheduleFunc enqueues fn to run at time at. The closure itself may
// allocate at the call site — hot loops should implement Handler and use
// Schedule instead.
func (e *Engine) ScheduleFunc(at Time, fn func(now Time)) {
	e.checkNotPast(at)
	id := e.alloc()
	ev := &e.events[id]
	ev.at, ev.seq, ev.h, ev.arg, ev.fn = at, e.nextSq, nil, 0, fn
	e.nextSq++
	e.push(id)
}

// ScheduleFuncAfter enqueues fn to run delay nanoseconds from now.
func (e *Engine) ScheduleFuncAfter(delay Time, fn func(now Time)) {
	e.ScheduleFunc(e.now+delay, fn)
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.order) }

// Step executes the earliest event, advancing the clock to its timestamp.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	if len(e.order) == 0 {
		return false
	}
	id := e.order[0]
	last := len(e.order) - 1
	e.order[0] = e.order[last]
	e.events[e.order[0]].index = 0
	e.order = e.order[:last]
	if last > 0 {
		e.siftDown(0)
	}
	ev := &e.events[id]
	// The slot leaves the heap: reset its index before dispatch so a
	// handler observing (or reusing) the slot never sees a stale position.
	ev.index = -1
	at, h, arg, fn := ev.at, ev.h, ev.arg, ev.fn
	// Clear references and recycle before dispatch — the handler may
	// schedule new events, which can then reuse this very slot.
	ev.h, ev.fn = nil, nil
	e.free = append(e.free, id)
	e.now = at
	if e.tel != nil {
		e.tel.dispatched.Inc()
		e.tel.depth.Set(int64(len(e.order)))
		e.tel.vtime.Set(e.now)
	}
	if fn != nil {
		fn(e.now)
	} else {
		h.OnEvent(e.now, arg)
	}
	return true
}

// Run drains the event queue to completion and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil processes events with timestamps <= deadline, then advances the
// clock to deadline if it has not already passed it.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.order) > 0 && e.events[e.order[0]].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Resource models a serially reusable unit (a flash channel, a plane, the
// whole device) by tracking the earliest time it becomes free.
type Resource struct {
	freeAt Time
	busy   Time // cumulative busy time, for utilization accounting
}

// FreeAt returns the earliest time the resource is available.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Reserve occupies the resource for dur starting no earlier than from,
// and returns the (start, end) of the granted interval.
func (r *Resource) Reserve(from Time, dur Time) (start, end Time) {
	start = from
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + dur
	r.freeAt = end
	r.busy += dur
	return start, end
}

// ReserveWindow occupies exactly [from, from+dur). The caller must have
// established from >= FreeAt(); violating that would overlap reservations,
// so it panics.
func (r *Resource) ReserveWindow(from, dur Time) {
	if from < r.freeAt {
		panic("sim: ReserveWindow overlaps an existing reservation")
	}
	r.freeAt = from + dur
	r.busy += dur
}

// BusyTime returns the cumulative reserved time.
func (r *Resource) BusyTime() Time { return r.busy }

// Reset clears the resource to idle at time zero.
func (r *Resource) Reset() { r.freeAt = 0; r.busy = 0 }

// State exports the resource's bookkeeping for snapshots.
func (r *Resource) State() (freeAt, busy Time) { return r.freeAt, r.busy }

// SetState restores bookkeeping captured by State.
func (r *Resource) SetState(freeAt, busy Time) { r.freeAt = freeAt; r.busy = busy }
