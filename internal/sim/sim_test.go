package sim

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"emmcio/internal/telemetry"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var e Engine
	var got []Time
	times := []Time{500, 100, 300, 200, 400}
	for _, at := range times {
		at := at
		e.ScheduleFunc(at, func(now Time) { got = append(got, now) })
	}
	e.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Fatalf("ran %d events, want %d", len(got), len(times))
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.ScheduleFunc(42, func(Time) { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events reordered: %v", got)
		}
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	var e Engine
	var fired []Time
	e.ScheduleFunc(10, func(now Time) {
		e.ScheduleFuncAfter(5, func(now2 Time) { fired = append(fired, now2) })
	})
	end := e.Run()
	if len(fired) != 1 || fired[0] != 15 {
		t.Fatalf("nested event fired at %v, want [15]", fired)
	}
	if end != 15 {
		t.Fatalf("final time %d, want 15", end)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.ScheduleFunc(10, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.ScheduleFunc(5, func(Time) {})
}

func TestSchedulePastPanicDiagnostics(t *testing.T) {
	var e Engine
	e.ScheduleFunc(10, func(Time) {})
	e.Run()
	// Leave two pending events so the message can report queue state.
	e.ScheduleFunc(40, func(Time) {})
	e.ScheduleFunc(20, func(Time) {})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("scheduling in the past did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		for _, want := range []string{"at=5", "now=10", "queue head at 20", "2 events pending"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("panic message missing %q: %s", want, msg)
			}
		}
	}()
	e.ScheduleFunc(5, func(Time) {})
}

func TestEngineTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	var e Engine
	e.SetTelemetry(reg)
	for i := 1; i <= 3; i++ {
		e.ScheduleFunc(Time(i*10), func(Time) {})
	}
	if got := reg.Gauge("sim_queue_depth").Value(); got != 3 {
		t.Fatalf("queue depth %d, want 3", got)
	}
	e.Run()
	if got := reg.Counter("sim_events_dispatched_total").Value(); got != 3 {
		t.Fatalf("dispatched %d, want 3", got)
	}
	if got := reg.Gauge("sim_virtual_time_ns").Value(); got != 30 {
		t.Fatalf("virtual time %d, want 30", got)
	}
	if got := reg.Gauge("sim_queue_depth").Value(); got != 0 {
		t.Fatalf("final queue depth %d, want 0", got)
	}
	// Detach: further events must not move the counters.
	e.SetTelemetry(nil)
	e.ScheduleFunc(40, func(Time) {})
	e.Run()
	if got := reg.Counter("sim_events_dispatched_total").Value(); got != 3 {
		t.Fatalf("detached engine still counted: %d", got)
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	ran := 0
	e.ScheduleFunc(10, func(Time) { ran++ })
	e.ScheduleFunc(20, func(Time) { ran++ })
	e.ScheduleFunc(30, func(Time) { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("RunUntil(20) ran %d events, want 2", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("clock at %d, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want 1", e.Pending())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	var e Engine
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("clock %d, want 1000", e.Now())
	}
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	s1, e1 := r.Reserve(0, 100)
	if s1 != 0 || e1 != 100 {
		t.Fatalf("first reservation (%d,%d), want (0,100)", s1, e1)
	}
	s2, e2 := r.Reserve(50, 100)
	if s2 != 100 || e2 != 200 {
		t.Fatalf("overlapping reservation (%d,%d), want (100,200)", s2, e2)
	}
	s3, e3 := r.Reserve(500, 100)
	if s3 != 500 || e3 != 600 {
		t.Fatalf("idle-gap reservation (%d,%d), want (500,600)", s3, e3)
	}
	if r.BusyTime() != 300 {
		t.Fatalf("busy time %d, want 300", r.BusyTime())
	}
}

func TestResourceReservationsNeverOverlap(t *testing.T) {
	f := func(seed int64) bool {
		var r Resource
		from := Time(0)
		prevEnd := Time(0)
		x := uint64(seed)
		for i := 0; i < 100; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			from += Time(x % 1000)
			dur := Time(x%97 + 1)
			start, end := r.Reserve(from, dur)
			if start < prevEnd || end != start+dur || start < from {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeapStressOrdering(t *testing.T) {
	var e Engine
	x := uint64(12345)
	var prev Time = -1
	ok := true
	for i := 0; i < 5000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		at := Time(x % 1000000)
		e.ScheduleFunc(at, func(now Time) {
			if now < prev {
				ok = false
			}
			prev = now
		})
	}
	e.Run()
	if !ok {
		t.Fatal("events delivered out of order under stress")
	}
}
