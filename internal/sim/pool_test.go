package sim

import (
	"testing"
)

// countingHandler records dispatches; the arg carries the per-event state.
type countingHandler struct {
	nows []Time
	args []int64
}

func (h *countingHandler) OnEvent(now Time, arg int64) {
	h.nows = append(h.nows, now)
	h.args = append(h.args, arg)
}

func TestHandlerEventsCarryArgs(t *testing.T) {
	var e Engine
	h := &countingHandler{}
	for i := int64(0); i < 5; i++ {
		e.Schedule(Time(i*10), h, i*7)
	}
	e.Run()
	if len(h.args) != 5 {
		t.Fatalf("dispatched %d events, want 5", len(h.args))
	}
	for i, a := range h.args {
		if a != int64(i)*7 {
			t.Fatalf("arg[%d] = %d, want %d", i, a, int64(i)*7)
		}
		if h.nows[i] != Time(i*10) {
			t.Fatalf("now[%d] = %d, want %d", i, h.nows[i], i*10)
		}
	}
}

func TestHandlerAndFuncEventsInterleaveFIFO(t *testing.T) {
	var e Engine
	var got []int64
	h := &countingHandler{}
	e.Schedule(42, h, 1)
	e.ScheduleFunc(42, func(Time) { got = append(got, -1) })
	e.Schedule(42, h, 2)
	e.Run()
	if len(h.args) != 2 || h.args[0] != 1 || h.args[1] != 2 {
		t.Fatalf("handler args %v, want [1 2]", h.args)
	}
	if len(got) != 1 {
		t.Fatalf("func event ran %d times, want 1", len(got))
	}
}

// TestEventSlotsAreRecycled is the pooling guarantee: a long run of
// schedule-one-dispatch-one cycles must not grow the arena beyond the peak
// concurrent event count, and dispatched slots must be marked unqueued
// (index -1) before their handler runs.
func TestEventSlotsAreRecycled(t *testing.T) {
	var e Engine
	h := &countingHandler{}
	// Self-perpetuating chain: each dispatch schedules the next event, so
	// the queue depth never exceeds 2 while 10k events flow through.
	var chain func(now Time)
	n := 0
	chain = func(now Time) {
		n++
		if n < 10_000 {
			e.ScheduleFunc(now+1, chain)
		}
	}
	e.ScheduleFunc(0, chain)
	e.Schedule(5_000, h, 0) // one concurrent handler event mid-run
	e.Run()
	if n != 10_000 {
		t.Fatalf("chain ran %d times, want 10000", n)
	}
	if got := len(e.events); got > 4 {
		t.Fatalf("arena grew to %d slots for a depth-2 workload — slots are not recycled", got)
	}
	for i := range e.events {
		if e.events[i].index != -1 {
			t.Fatalf("drained engine slot %d still has heap index %d, want -1", i, e.events[i].index)
		}
	}
}

// TestPoppedEventIndexReset pins the stale-index hygiene contract directly:
// the moment an event is popped for dispatch its slot index reads -1, even
// while its callback is running.
func TestPoppedEventIndexReset(t *testing.T) {
	var e Engine
	checked := false
	e.ScheduleFunc(10, func(Time) {
		for i := range e.events {
			if e.events[i].index != -1 {
				t.Errorf("slot %d index %d during dispatch of the only event, want -1", i, e.events[i].index)
			}
		}
		checked = true
	})
	e.Run()
	if !checked {
		t.Fatal("event did not run")
	}
}

// TestScheduleZeroAlloc proves the steady-state contract: scheduling and
// dispatching handler events allocates nothing once the arena is warm.
func TestScheduleZeroAlloc(t *testing.T) {
	var e Engine
	h := &countingHandler{args: make([]int64, 0, 1<<16), nows: make([]Time, 0, 1<<16)}
	// Warm the arena and the handler's buffers.
	for i := 0; i < 64; i++ {
		e.Schedule(e.Now()+1, h, 0)
		e.Run()
	}
	h.args = h.args[:0]
	h.nows = h.nows[:0]
	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(e.Now()+1, h, 42)
		e.Step()
	})
	if allocs > 0 {
		t.Fatalf("schedule+dispatch allocated %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkSimEngine measures bare schedule/dispatch throughput of the
// event queue — the kernel-level number device models build on. Each
// iteration schedules and dispatches one handler event through a warm
// arena, the steady-state shape of an event-driven replay.
func BenchmarkSimEngine(b *testing.B) {
	var e Engine
	h := &nopHandler{}
	// Keep a realistic standing queue depth (in-flight completions).
	for i := 0; i < 16; i++ {
		e.Schedule(Time(1+i), h, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+16, h, int64(i))
		e.Step()
	}
}

type nopHandler struct{ n int64 }

func (h *nopHandler) OnEvent(now Time, arg int64) { h.n++ }
