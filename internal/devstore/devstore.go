// Package devstore is the content-addressed device snapshot store behind
// emmcd's /v1/devices surface and emmcc's pre-push path. A device is aged
// once — a prep workload replayed onto fresh flash — and the sealed
// snapshot (internal/storage's self-describing envelope) is archived under
// its content hash. Every job that wants a worn device then *forks* the
// archived snapshot instead of re-aging: restore is a gob decode, re-aging
// is a full replay, and the paper's aging studies (§V) need many worn
// devices that differ only in what happens after the wear.
//
// Layout on disk:
//
//	dir/objects/<id>   sealed snapshot bytes (storage.Seal envelope)
//	dir/meta/<id>.json metadata sidecar (Meta)
//
// where <id> is "d" + the first 12 hex digits of the payload's SHA-256.
// Content addressing makes Put idempotent — aging the same prep twice
// yields the same id — and relies on snapshots being byte-deterministic
// (see the canonical gob encodings in internal/flash and internal/ftl).
//
// The store is size- and count-capped with LRU eviction: access order is
// seeded from object file mtimes at Open and refreshed with os.Chtimes on
// every read, so recency survives restarts without a journal.
package devstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"emmcio/internal/ftl"
	"emmcio/internal/storage"
)

// ErrNotFound reports an id with no archived snapshot. Callers map it to
// their own not-found surface (the server's 404, the CLI's exit message).
var ErrNotFound = errors.New("devstore: unknown device")

// ErrLabelConflict reports an import whose label already names a different
// snapshot (the server's 409).
var ErrLabelConflict = errors.New("devstore: label conflict")

// IDPrefixLen is how many digest hex digits make up a device id (after the
// leading "d"). 48 bits of content hash: collisions would need billions of
// distinct snapshots, and Put still verifies the full digest.
const IDPrefixLen = 12

// IDFromDigest derives the device id from a full hex content digest.
func IDFromDigest(digest string) string {
	if len(digest) < IDPrefixLen {
		return "d" + digest
	}
	return "d" + digest[:IDPrefixLen]
}

// Meta is the sidecar record for one archived snapshot — everything a
// caller can learn about a device without restoring it.
type Meta struct {
	// ID is the content-derived identifier ("d" + digest prefix).
	ID string `json:"id"`
	// Label is an optional human name ("aged-movie-1x"). Labels are unique
	// per store; importing a different snapshot under a taken label is a
	// conflict.
	Label string `json:"label,omitempty"`
	// Backend names the device implementation sealed inside.
	Backend storage.Backend `json:"backend"`
	// Scheme records the partition scheme the device was aged under, when
	// known ("" for raw imports).
	Scheme string `json:"scheme,omitempty"`
	// Digest is the full hex SHA-256 of the snapshot payload.
	Digest string `json:"digest"`
	// SizeBytes is the sealed envelope's on-disk size.
	SizeBytes int64 `json:"size_bytes"`
	// CreatedUnix is when the snapshot entered the store.
	CreatedUnix int64 `json:"created_unix"`
	// FaultDraws is the archived fault injector stream position — the
	// fork-determinism witness (a fork resumes from exactly this draw).
	FaultDraws int64 `json:"fault_draws"`
	// Origin is "aged" (produced by an age job) or "imported" (uploaded).
	Origin string `json:"origin"`
	// Wear summarizes each flash pool's erase distribution at seal time.
	Wear []ftl.WearSummary `json:"wear,omitempty"`
}

// Options bound the store. Zero values mean unlimited.
type Options struct {
	// MaxBytes caps the sum of sealed object sizes; LRU entries are evicted
	// to make room for a Put.
	MaxBytes int64
	// MaxEntries caps the number of archived snapshots.
	MaxEntries int
}

// Store is a content-addressed, LRU-evicting snapshot archive rooted at a
// directory. All methods are safe for concurrent use.
type Store struct {
	dir string
	opt Options

	mu    sync.Mutex
	metas map[string]Meta
	// access orders ids least- to most-recently used.
	access []string
	bytes  int64
}

// Open loads (or initializes) a store rooted at dir. Existing objects are
// indexed and their LRU order recovered from file modification times.
func Open(dir string, opt Options) (*Store, error) {
	for _, sub := range []string{"objects", "meta"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("devstore: creating %s: %w", sub, err)
		}
	}
	s := &Store{dir: dir, opt: opt, metas: map[string]Meta{}}
	entries, err := os.ReadDir(filepath.Join(dir, "objects"))
	if err != nil {
		return nil, fmt.Errorf("devstore: scanning objects: %w", err)
	}
	type seen struct {
		id    string
		mtime time.Time
	}
	var order []seen
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		id := e.Name()
		raw, err := os.ReadFile(s.metaPath(id))
		if err != nil {
			// Object without a sidecar: a crashed writer's leftover. Drop it.
			os.Remove(s.objectPath(id))
			continue
		}
		var m Meta
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("devstore: corrupt sidecar for %s: %w", id, err)
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("devstore: stat %s: %w", id, err)
		}
		m.SizeBytes = info.Size()
		s.metas[id] = m
		s.bytes += info.Size()
		order = append(order, seen{id: id, mtime: info.ModTime()})
	}
	sort.Slice(order, func(i, j int) bool {
		if !order[i].mtime.Equal(order[j].mtime) {
			return order[i].mtime.Before(order[j].mtime)
		}
		return order[i].id < order[j].id
	})
	for _, o := range order {
		s.access = append(s.access, o.id)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) objectPath(id string) string { return filepath.Join(s.dir, "objects", id) }
func (s *Store) metaPath(id string) string   { return filepath.Join(s.dir, "meta", id+".json") }

// Put archives a sealed snapshot. The id is derived from the envelope's
// content digest, which Put re-verifies by reading the seal, so a corrupt
// upload is rejected before it is named. Put is idempotent: archiving bytes
// already present refreshes their recency and returns the existing Meta
// (the stored label wins). The caller's meta supplies Label, Scheme and
// Origin; identity fields (ID, Backend, Digest, SizeBytes) are computed.
func (s *Store) Put(sealed []byte, meta Meta) (Meta, error) {
	info, _, err := storage.ReadSeal(bytes.NewReader(sealed), meta.Label)
	if err != nil {
		return Meta{}, err
	}
	id := IDFromDigest(info.Digest)
	meta.ID = id
	meta.Backend = info.Backend
	meta.Digest = info.Digest
	meta.SizeBytes = int64(len(sealed))
	if meta.CreatedUnix == 0 {
		meta.CreatedUnix = time.Now().Unix()
	}
	if meta.Origin == "" {
		meta.Origin = "imported"
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.metas[id]; ok {
		s.touchLocked(id)
		return existing, nil
	}
	if other, ok := s.findLabelLocked(meta.Label); ok && meta.Label != "" {
		return Meta{}, fmt.Errorf("%w: %q already names device %s (digest %.12s…)",
			ErrLabelConflict, meta.Label, other.ID, other.Digest)
	}
	if err := s.evictForLocked(int64(len(sealed)), id); err != nil {
		return Meta{}, err
	}
	if err := writeAtomic(s.objectPath(id), sealed, 0o644); err != nil {
		return Meta{}, fmt.Errorf("devstore: writing object %s: %w", id, err)
	}
	raw, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return Meta{}, err
	}
	if err := writeAtomic(s.metaPath(id), raw, 0o644); err != nil {
		os.Remove(s.objectPath(id))
		return Meta{}, fmt.Errorf("devstore: writing sidecar %s: %w", id, err)
	}
	s.metas[id] = meta
	s.access = append(s.access, id)
	s.bytes += meta.SizeBytes
	return meta, nil
}

// Get returns the metadata for id without touching the object.
func (s *Store) Get(id string) (Meta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.metas[id]
	if !ok {
		return Meta{}, fmt.Errorf("%w %q", ErrNotFound, id)
	}
	return m, nil
}

// OpenDevice returns the sealed snapshot bytes for id and marks it
// recently used. It satisfies cliutil.DeviceSource, so a Store can back a
// replay or sweep spec's from_device directly.
func (s *Store) OpenDevice(id string) ([]byte, error) {
	s.mu.Lock()
	if _, ok := s.metas[id]; !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w %q", ErrNotFound, id)
	}
	s.touchLocked(id)
	path := s.objectPath(id)
	s.mu.Unlock()

	sealed, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("devstore: reading %s: %w", id, err)
	}
	now := time.Now()
	os.Chtimes(path, now, now)
	return sealed, nil
}

// List returns all archived snapshots, most recently used first.
func (s *Store) List() []Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Meta, 0, len(s.metas))
	for i := len(s.access) - 1; i >= 0; i-- {
		out = append(out, s.metas[s.access[i]])
	}
	return out
}

// FindLabel resolves a label to its snapshot, if any.
func (s *Store) FindLabel(label string) (Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.findLabelLocked(label)
}

// Delete removes a snapshot. Deleting an unknown id is ErrNotFound.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.metas[id]; !ok {
		return fmt.Errorf("%w %q", ErrNotFound, id)
	}
	return s.removeLocked(id)
}

// Stats reports the store's current footprint.
func (s *Store) Stats() (entries int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.metas), s.bytes
}

func (s *Store) findLabelLocked(label string) (Meta, bool) {
	if label == "" {
		return Meta{}, false
	}
	for _, m := range s.metas {
		if m.Label == label {
			return m, true
		}
	}
	return Meta{}, false
}

func (s *Store) touchLocked(id string) {
	for i, v := range s.access {
		if v == id {
			s.access = append(s.access[:i], s.access[i+1:]...)
			break
		}
	}
	s.access = append(s.access, id)
}

// evictForLocked frees room for incoming bytes, never touching keep.
func (s *Store) evictForLocked(incoming int64, keep string) error {
	overBytes := func() bool {
		return s.opt.MaxBytes > 0 && s.bytes+incoming > s.opt.MaxBytes
	}
	overCount := func() bool {
		return s.opt.MaxEntries > 0 && len(s.metas)+1 > s.opt.MaxEntries
	}
	for overBytes() || overCount() {
		victim := ""
		for _, id := range s.access {
			if id != keep {
				victim = id
				break
			}
		}
		if victim == "" {
			return fmt.Errorf("devstore: snapshot of %d bytes exceeds store capacity (%d bytes / %d entries)",
				incoming, s.opt.MaxBytes, s.opt.MaxEntries)
		}
		if err := s.removeLocked(victim); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) removeLocked(id string) error {
	if err := os.Remove(s.objectPath(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("devstore: removing %s: %w", id, err)
	}
	os.Remove(s.metaPath(id))
	s.bytes -= s.metas[id].SizeBytes
	delete(s.metas, id)
	for i, v := range s.access {
		if v == id {
			s.access = append(s.access[:i], s.access[i+1:]...)
			break
		}
	}
	return nil
}

// writeAtomic writes data via a temp file + rename so readers never see a
// half-written object and a crash leaves no partial entry under the final
// name.
func writeAtomic(path string, data []byte, mode os.FileMode) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
