package devstore_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"emmcio/internal/core"
	"emmcio/internal/devstore"
	"emmcio/internal/faults"
	"emmcio/internal/storage"
	"emmcio/internal/trace"
)

// sealedDevice ages a small device (writes writes of 16 KB each, faults on)
// and returns its sealed snapshot plus the device for reference checks.
func sealedDevice(t *testing.T, writes int) ([]byte, storage.Device) {
	t.Helper()
	opt := core.CaseStudyOptions()
	opt.Faults = &faults.Config{Seed: 11, Rate: 1}
	dev, err := core.NewDevice(core.Scheme4PS, opt)
	if err != nil {
		t.Fatal(err)
	}
	var arrival int64
	for i := 0; i < writes; i++ {
		req := trace.Request{Arrival: arrival, LBA: uint64(i * 64), Size: 16 << 10, Op: trace.Write}
		res, err := dev.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		arrival = res.Finish
	}
	sealed, _, err := storage.Seal(dev)
	if err != nil {
		t.Fatal(err)
	}
	return sealed, dev
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := devstore.Open(t.TempDir(), devstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sealed, dev := sealedDevice(t, 32)

	m, err := s.Put(sealed, devstore.Meta{Label: "aged-a", Scheme: "4ps", Origin: "aged"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(m.ID, "d") || len(m.ID) != 1+devstore.IDPrefixLen {
		t.Errorf("id %q is not a content-derived name", m.ID)
	}
	if m.Backend != storage.BackendEMMC {
		t.Errorf("backend %q, want emmc", m.Backend)
	}
	if m.SizeBytes != int64(len(sealed)) {
		t.Errorf("size %d, want %d", m.SizeBytes, len(sealed))
	}

	got, err := s.Get(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "aged-a" || got.Scheme != "4ps" || got.Origin != "aged" {
		t.Errorf("meta round trip lost fields: %+v", got)
	}

	// A fork restores to the original state.
	raw, err := s.OpenDevice(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	fork, _, err := core.RestoreSealed(m.ID, strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if fork.Metrics() != dev.Metrics() {
		t.Error("forked device metrics diverge from the aged original")
	}
	if fork.FaultDraws() != dev.FaultDraws() {
		t.Errorf("forked injector at draw %d, want %d", fork.FaultDraws(), dev.FaultDraws())
	}
}

func TestPutIdempotent(t *testing.T) {
	s, err := devstore.Open(t.TempDir(), devstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sealed, _ := sealedDevice(t, 32)
	a, err := s.Put(sealed, devstore.Meta{Label: "first"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Put(sealed, devstore.Meta{Label: "second"})
	if err != nil {
		t.Fatalf("re-putting identical bytes: %v", err)
	}
	if a.ID != b.ID {
		t.Errorf("same bytes named twice: %s vs %s", a.ID, b.ID)
	}
	if b.Label != "first" {
		t.Errorf("idempotent put returned label %q, want the stored %q", b.Label, "first")
	}
	if n, _ := s.Stats(); n != 1 {
		t.Errorf("store holds %d entries after duplicate put, want 1", n)
	}
}

func TestLabelConflict(t *testing.T) {
	s, err := devstore.Open(t.TempDir(), devstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sealedDevice(t, 16)
	b, _ := sealedDevice(t, 48)
	if _, err := s.Put(a, devstore.Meta{Label: "gold"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(b, devstore.Meta{Label: "gold"}); err == nil {
		t.Fatal("two different snapshots accepted under one label")
	} else if !strings.Contains(err.Error(), "gold") {
		t.Errorf("conflict error %q does not name the label", err)
	}
	if m, ok := s.FindLabel("gold"); !ok || m.Digest == "" {
		t.Errorf("FindLabel(gold) = %+v, %v", m, ok)
	}
}

func TestRejectsCorruptUpload(t *testing.T) {
	s, err := devstore.Open(t.TempDir(), devstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sealed, _ := sealedDevice(t, 16)
	bad := append([]byte(nil), sealed...)
	bad[len(bad)/2] ^= 0xff
	if _, err := s.Put(bad, devstore.Meta{}); err == nil {
		t.Fatal("corrupt snapshot accepted into the store")
	}
	if n, _ := s.Stats(); n != 0 {
		t.Errorf("store holds %d entries after rejected put", n)
	}
}

func TestDeleteAndNotFound(t *testing.T) {
	s, err := devstore.Open(t.TempDir(), devstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sealed, _ := sealedDevice(t, 16)
	m, err := s.Put(sealed, devstore.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(m.ID); err != nil {
		t.Fatal(err)
	}
	for _, err := range []error{
		func() error { _, e := s.Get(m.ID); return e }(),
		func() error { _, e := s.OpenDevice(m.ID); return e }(),
		s.Delete(m.ID),
	} {
		if !errors.Is(err, devstore.ErrNotFound) {
			t.Errorf("after delete, error = %v, want ErrNotFound", err)
		}
	}
}

func TestLRUEvictionByCount(t *testing.T) {
	dir := t.TempDir()
	s, err := devstore.Open(dir, devstore.Options{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sealedDevice(t, 8)
	b, _ := sealedDevice(t, 16)
	c, _ := sealedDevice(t, 24)
	ma, _ := s.Put(a, devstore.Meta{Label: "a"})
	mb, _ := s.Put(b, devstore.Meta{Label: "b"})
	// Touch a so b becomes the LRU victim.
	if _, err := s.OpenDevice(ma.ID); err != nil {
		t.Fatal(err)
	}
	mc, err := s.Put(c, devstore.Meta{Label: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(mb.ID); !errors.Is(err, devstore.ErrNotFound) {
		t.Errorf("LRU entry survived eviction: %v", err)
	}
	for _, id := range []string{ma.ID, mc.ID} {
		if _, err := s.Get(id); err != nil {
			t.Errorf("recently used %s evicted: %v", id, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "objects", mb.ID)); !os.IsNotExist(err) {
		t.Error("evicted object still on disk")
	}
}

func TestEvictionBySize(t *testing.T) {
	sealed, _ := sealedDevice(t, 8)
	other, _ := sealedDevice(t, 40)
	cap := int64(len(sealed))
	if int64(len(other)) > cap {
		cap = int64(len(other))
	}
	s, err := devstore.Open(t.TempDir(), devstore.Options{MaxBytes: cap + 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(sealed, devstore.Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(other, devstore.Meta{}); err != nil {
		t.Fatalf("size-capped put should evict, got %v", err)
	}
	if n, _ := s.Stats(); n != 1 {
		t.Errorf("store holds %d entries, want 1 after size eviction", n)
	}

	// A snapshot bigger than the whole store is refused outright.
	tiny, err := devstore.Open(t.TempDir(), devstore.Options{MaxBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tiny.Put(sealed, devstore.Meta{}); err == nil {
		t.Error("snapshot larger than the store accepted")
	}
}

func TestReopenRecoversIndexAndRecency(t *testing.T) {
	dir := t.TempDir()
	s, err := devstore.Open(dir, devstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sealedDevice(t, 8)
	b, _ := sealedDevice(t, 16)
	ma, _ := s.Put(a, devstore.Meta{Label: "a"})
	mb, _ := s.Put(b, devstore.Meta{Label: "b"})

	// Make a distinctly older than b on disk, then reopen capped at one
	// entry: the next put must evict a, proving recency was rebuilt from
	// mtimes rather than reset.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, "objects", ma.ID), old, old); err != nil {
		t.Fatal(err)
	}
	s2, err := devstore.Open(dir, devstore.Options{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(ma.ID)
	if err != nil || got.Label != "a" {
		t.Fatalf("reopened store lost %s: %+v, %v", ma.ID, got, err)
	}
	c, _ := sealedDevice(t, 24)
	if _, err := s2.Put(c, devstore.Meta{Label: "c"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get(ma.ID); !errors.Is(err, devstore.ErrNotFound) {
		t.Error("oldest entry survived post-reopen eviction; mtime recency was lost")
	}
	if _, err := s2.Get(mb.ID); err != nil {
		t.Errorf("newer entry evicted instead: %v", err)
	}
}
