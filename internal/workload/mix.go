// Package workload synthesizes block-level I/O traces that match the
// published per-application statistics of the paper (Tables III/IV, Figs. 4
// and 6). We do not have the authors' Nexus 5 traces, so each of the 18
// applications and 7 combos is modeled as a Profile whose generator is
// calibrated to the published marginals: request count, read/write mix,
// per-op mean sizes, maximum request size, single-page (4 KB) request
// fraction, inter-arrival mixture, and spatial/temporal locality targets.
//
// Generators are deterministic: the same seed always yields the same trace.
package workload

import (
	"emmcio/internal/rng"
	"emmcio/internal/trace"
)

// SizePoint is one outcome of an explicit request-size mixture.
type SizePoint struct {
	KB     int
	Weight float64
}

// maxReadKB is the largest read request observed in any trace (§III-A:
// "the largest size of a read request is 256 KB").
const maxReadKB = 256

// sizeLadder returns the discrete size support used by the automatic
// mixture builder: 8 KB upward by ×1.5 steps rounded up to 4 KB multiples,
// capped at maxKB (inclusive as the final rung when it fits the progression).
func sizeLadder(maxKB int) []int64 {
	var out []int64
	v := 8
	for v <= maxKB {
		out = append(out, int64(v))
		next := v + v/2
		next = (next + 3) / 4 * 4
		if next == v {
			next = v + 4
		}
		v = next
	}
	if len(out) == 0 {
		out = append(out, int64(maxKB))
	}
	return out
}

// buildMix constructs a request-size sampler with
//   - exactly p4 probability mass on 4 KB (single-page) requests, and
//   - the remaining mass spread over sizeLadder(maxKB) with geometric
//     weights r^i, where r is solved by bisection so the overall mean matches
//     meanKB as closely as the support allows.
//
// Sizes are returned in bytes.
func buildMix(p4, meanKB float64, maxKB int) *rng.Weighted {
	ladder := sizeLadder(maxKB)
	// Mean the tail must contribute.
	tailTarget := (meanKB - 4*p4) / (1 - p4)
	tailMean := func(r float64) float64 {
		var wsum, msum, w float64
		w = 1
		for _, s := range ladder {
			wsum += w
			msum += float64(s) * w
			w *= r
		}
		return msum / wsum
	}
	lo, hi := 0.01, 16.0
	// tailMean is increasing in r; clamp outside the achievable range.
	switch {
	case tailTarget <= tailMean(lo):
		hi = lo
	case tailTarget >= tailMean(hi):
		lo = hi
	default:
		for i := 0; i < 80; i++ {
			mid := (lo + hi) / 2
			if tailMean(mid) < tailTarget {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	r := (lo + hi) / 2
	values := make([]int64, 0, len(ladder)+1)
	weights := make([]float64, 0, len(ladder)+1)
	values = append(values, 4*1024)
	weights = append(weights, p4)
	w := 1.0
	var wsum float64
	for range ladder {
		wsum += w
		w *= r
	}
	w = 1.0
	for _, s := range ladder {
		values = append(values, s*1024)
		weights = append(weights, (1-p4)*w/wsum)
		w *= r
	}
	return rng.NewWeighted(values, weights)
}

// explicitMix constructs a sampler from hand-written size points (used for
// applications with distinctive Fig. 4 shapes, e.g. Movie's 16–64 KB hump).
func explicitMix(points []SizePoint) *rng.Weighted {
	values := make([]int64, len(points))
	weights := make([]float64, len(points))
	for i, p := range points {
		values[i] = int64(p.KB) * 1024
		weights[i] = p.Weight
	}
	return rng.NewWeighted(values, weights)
}

// addrGen produces request start addresses with tunable spatial (sequential
// successor) and temporal (address re-hit) locality, over a 32 GB device
// address space. Addresses are 512-byte sector LBAs aligned to 4 KB pages.
type addrGen struct {
	r       *rng.Rand
	seq     float64
	temp    float64
	prevEnd uint64
	hist    []uint64
	histCap int
	pages   uint64 // device size in 4 KB pages
}

// deviceBytes is the modeled logical capacity (the Nexus 5 eMMC is 32 GB).
const deviceBytes = 32 << 30

func newAddrGen(r *rng.Rand, seq, temp float64) *addrGen {
	return &addrGen{
		r:       r,
		seq:     seq,
		temp:    temp,
		histCap: 4096,
		pages:   deviceBytes / trace.PageSize,
	}
}

// next returns the start LBA for a request spanning the given page count.
func (g *addrGen) next(reqPages int) uint64 {
	var lba uint64
	u := g.r.Float64()
	switch {
	case u < g.seq && g.prevEnd != 0:
		lba = g.prevEnd
	case u < g.seq+g.temp && len(g.hist) > 0:
		lba = g.hist[g.r.IntN(len(g.hist))]
	default:
		maxStart := g.pages - uint64(reqPages)
		lba = uint64(g.r.Int63N(int64(maxStart))) * trace.SectorsPerPage
	}
	// Keep the request inside the device.
	if lba+uint64(reqPages)*trace.SectorsPerPage > g.pages*trace.SectorsPerPage {
		lba = (g.pages - uint64(reqPages)) * trace.SectorsPerPage
	}
	g.prevEnd = lba + uint64(reqPages)*trace.SectorsPerPage
	if len(g.hist) < g.histCap {
		g.hist = append(g.hist, lba)
	} else {
		g.hist[g.r.IntN(g.histCap)] = lba
	}
	return lba
}
