package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON profile files let users define workloads without writing Go: the
// same calibration knobs as the built-in profiles, loadable by the
// command-line tools (emmcsim -profile app.json).
//
// Example:
//
//	{
//	  "name": "Podcast",
//	  "durationSec": 2400,
//	  "requests": 4200,
//	  "writeFrac": 0.72,
//	  "meanReadKB": 48,
//	  "meanWriteKB": 18,
//	  "maxKB": 2048,
//	  "spatial": 0.24,
//	  "temporal": 0.35,
//	  "p4": 0.53,
//	  "burstFrac": 0.75,
//	  "burstMeanMs": 6
//	}

// profileJSON mirrors Profile with JSON tags (the explicit size-mixture
// overrides are supported as optional arrays of {kb, weight}).
type profileJSON struct {
	Name        string      `json:"name"`
	DurationSec float64     `json:"durationSec"`
	Requests    int         `json:"requests"`
	WriteFrac   float64     `json:"writeFrac"`
	MeanReadKB  float64     `json:"meanReadKB"`
	MeanWriteKB float64     `json:"meanWriteKB"`
	MaxKB       int         `json:"maxKB"`
	Spatial     float64     `json:"spatial"`
	Temporal    float64     `json:"temporal"`
	P4          float64     `json:"p4"`
	BurstFrac   float64     `json:"burstFrac"`
	BurstMeanMs float64     `json:"burstMeanMs"`
	ReadMix     []sizePoint `json:"readMix,omitempty"`
	WriteMix    []sizePoint `json:"writeMix,omitempty"`
}

type sizePoint struct {
	KB     int     `json:"kb"`
	Weight float64 `json:"weight"`
}

// WriteProfileJSON serializes a profile.
func WriteProfileJSON(w io.Writer, p *Profile) error {
	pj := profileJSON{
		Name:        p.Name,
		DurationSec: p.DurationSec,
		Requests:    p.Requests,
		WriteFrac:   p.WriteFrac,
		MeanReadKB:  p.MeanReadKB,
		MeanWriteKB: p.MeanWriteKB,
		MaxKB:       p.MaxKB,
		Spatial:     p.Spatial,
		Temporal:    p.Temporal,
		P4:          p.P4,
		BurstFrac:   p.BurstFrac,
		BurstMeanMs: p.BurstMeanMs,
	}
	for _, sp := range p.ReadMix {
		pj.ReadMix = append(pj.ReadMix, sizePoint{KB: sp.KB, Weight: sp.Weight})
	}
	for _, sp := range p.WriteMix {
		pj.WriteMix = append(pj.WriteMix, sizePoint{KB: sp.KB, Weight: sp.Weight})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&pj)
}

// ReadProfileJSON parses and validates a profile.
func ReadProfileJSON(r io.Reader) (*Profile, error) {
	var pj profileJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pj); err != nil {
		return nil, fmt.Errorf("workload: parsing profile JSON: %w", err)
	}
	p := &Profile{
		Name:        pj.Name,
		DurationSec: pj.DurationSec,
		Requests:    pj.Requests,
		WriteFrac:   pj.WriteFrac,
		MeanReadKB:  pj.MeanReadKB,
		MeanWriteKB: pj.MeanWriteKB,
		MaxKB:       pj.MaxKB,
		Spatial:     pj.Spatial,
		Temporal:    pj.Temporal,
		P4:          pj.P4,
		BurstFrac:   pj.BurstFrac,
		BurstMeanMs: pj.BurstMeanMs,
	}
	for _, sp := range pj.ReadMix {
		p.ReadMix = append(p.ReadMix, SizePoint{KB: sp.KB, Weight: sp.Weight})
	}
	for _, sp := range pj.WriteMix {
		p.WriteMix = append(p.WriteMix, SizePoint{KB: sp.KB, Weight: sp.Weight})
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
