package workload

import "emmcio/internal/paper"

// fromPaper builds a profile whose Table III/IV columns come straight from
// the published data; p4 (Fig. 4), burst fraction and burst mean (Fig. 6
// shape) are the only free parameters, chosen per application as documented
// on each profile below.
func fromPaper(name string, p4, burstFrac, burstMeanMs float64) *Profile {
	size := paper.TableIII[name]
	timing := paper.TableIV[name]
	return &Profile{
		Name:        name,
		DurationSec: timing.DurationSec,
		Requests:    paper.EffectiveRequests(name),
		WriteFrac:   size.WriteReqPct / 100,
		MeanReadKB:  size.AveReadKB,
		MeanWriteKB: size.AveWriteKB,
		MaxKB:       size.MaxKB,
		Spatial:     timing.SpatialPct / 100,
		Temporal:    timing.TemporalPct / 100,
		P4:          p4,
		BurstFrac:   burstFrac,
		BurstMeanMs: burstMeanMs,
	}
}

// movieProfile gets hand-written size mixtures: Fig. 4 shows Movie is the
// outlier with >65% of requests between 16 KB and 64 KB (media streaming
// read-ahead), and Fig. 6 shows most of its gaps below 1 ms.
func movieProfile() *Profile {
	p := fromPaper(paper.Movie, 0.12, 0.90, 0.5)
	p.ReadMix = []SizePoint{
		{4, 0.120}, {8, 0.060}, {12, 0.020},
		{16, 0.285}, {24, 0.200}, {32, 0.140}, {48, 0.080}, {64, 0.060},
		{96, 0.030}, {128, 0.015}, {192, 0.004}, {256, 0.001},
	}
	p.WriteMix = []SizePoint{
		{4, 0.120}, {8, 0.150}, {12, 0.130},
		{16, 0.300}, {24, 0.170}, {32, 0.080}, {48, 0.030}, {64, 0.015},
		{128, 0.005},
	}
	return p
}

// Apps returns the 18 individual-application profiles in paper order.
//
// Parameter choices (p4, burstFrac, burstMean):
//   - p4 sits in Characteristic 2's 44.9%–57.4% band for the fifteen
//     4 KB-majority traces, and below it for Movie (0.12), Booting (0.28)
//     and CameraVideo (0.40), the three data-heavy outliers of Fig. 4.
//   - burstFrac controls the >16 ms inter-arrival mass of Fig. 6: exactly
//     the ten traces the paper calls out keep more than 20% of their gaps
//     above 16 ms (burstFrac <= 0.78); the eight high-arrival-rate traces
//     (Booting, Installing, Twitter, Messaging, GoogleMaps, Movie,
//     CameraVideo, Amazon) are burstier.
func Apps() []*Profile {
	return []*Profile{
		fromPaper(paper.Idle, 0.52, 0.70, 10),
		fromPaper(paper.CallIn, 0.50, 0.60, 10),
		fromPaper(paper.CallOut, 0.51, 0.60, 10),
		fromPaper(paper.Booting, 0.28, 0.80, 1.2),
		movieProfile(),
		fromPaper(paper.Music, 0.46, 0.75, 8),
		fromPaper(paper.AngryBirds, 0.48, 0.75, 8),
		fromPaper(paper.CameraVideo, 0.40, 0.85, 3),
		fromPaper(paper.GoogleMaps, 0.55, 0.88, 6),
		fromPaper(paper.Messaging, 0.56, 0.88, 6),
		fromPaper(paper.Twitter, 0.574, 0.88, 6),
		fromPaper(paper.Email, 0.47, 0.75, 8),
		fromPaper(paper.Facebook, 0.50, 0.75, 8),
		fromPaper(paper.Amazon, 0.449, 0.88, 6),
		fromPaper(paper.YouTube, 0.54, 0.65, 10),
		fromPaper(paper.Radio, 0.49, 0.70, 8),
		fromPaper(paper.Installing, 0.46, 0.88, 4),
		fromPaper(paper.WebBrowsing, 0.53, 0.70, 8),
	}
}

// Combos returns the 7 combo-trace profiles (§III-D). Their Table III/IV
// columns are published directly, so they are calibrated as first-class
// profiles rather than by merging two independently generated traces
// (the shared-resource inflation the paper observes — a combo's access rate
// exceeding the sum of its parts — is already baked into the published
// numbers). Music-included combos carry a higher 4 KB fraction than
// Radio-included ones (Fig. 7a), and only Music/FB keeps less than 20% of
// its gaps above 4 ms (Fig. 7c).
func Combos() []*Profile {
	return []*Profile{
		fromPaper(paper.MusicWB, 0.55, 0.78, 6),
		fromPaper(paper.RadioWB, 0.48, 0.78, 6),
		fromPaper(paper.MusicFB, 0.56, 0.90, 2),
		fromPaper(paper.RadioFB, 0.49, 0.78, 6),
		fromPaper(paper.MusicMsg, 0.57, 0.78, 6),
		fromPaper(paper.RadioMsg, 0.50, 0.78, 6),
		fromPaper(paper.FBMsg, 0.55, 0.80, 6),
	}
}

// All returns all 25 profiles in paper order.
func All() []*Profile {
	return append(Apps(), Combos()...)
}

// DefaultRegistry returns a registry holding all 25 profiles.
func DefaultRegistry() *Registry {
	return NewRegistry(All()...)
}

// DefaultSeed is the seed used by the command-line tools and benchmarks so
// every run of the reproduction works from the same 25 traces.
const DefaultSeed = 20151004 // IISWC 2015 was held October 4-6, 2015
