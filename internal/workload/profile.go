package workload

import (
	"fmt"
	"sort"

	"emmcio/internal/rng"
	"emmcio/internal/trace"
)

// Profile describes one application's I/O behaviour with the calibration
// targets taken from the paper's Tables III/IV and Figs. 4/6.
type Profile struct {
	Name string

	// Targets from Table III / Table IV.
	DurationSec float64 // recording duration
	Requests    int     // number of requests to generate
	WriteFrac   float64 // fraction of write requests
	MeanReadKB  float64 // mean read request size
	MeanWriteKB float64 // mean write request size
	MaxKB       int     // largest request in the trace
	Spatial     float64 // sequential-successor fraction target
	Temporal    float64 // address re-hit fraction target

	// P4 is the single-page (4 KB) request fraction (Fig. 4).
	P4 float64

	// Inter-arrival mixture (Fig. 6): with probability BurstFrac a gap is
	// exponential with mean BurstMeanMs; otherwise it comes from the idle
	// component whose mean is solved so the trace spans DurationSec.
	BurstFrac   float64
	BurstMeanMs float64

	// Optional explicit size mixtures overriding the automatic builder
	// (used for apps with distinctive Fig. 4 shapes such as Movie).
	ReadMix  []SizePoint
	WriteMix []SizePoint
}

// Validate reports structurally impossible profiles.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile without name")
	case p.Requests <= 0:
		return fmt.Errorf("workload: %s: non-positive request count", p.Name)
	case p.DurationSec <= 0:
		return fmt.Errorf("workload: %s: non-positive duration", p.Name)
	case p.WriteFrac < 0 || p.WriteFrac > 1:
		return fmt.Errorf("workload: %s: write fraction %v outside [0,1]", p.Name, p.WriteFrac)
	case p.P4 < 0 || p.P4 >= 1:
		return fmt.Errorf("workload: %s: p4 %v outside [0,1)", p.Name, p.P4)
	case p.MaxKB < 4:
		return fmt.Errorf("workload: %s: max size below one page", p.Name)
	case p.BurstFrac < 0 || p.BurstFrac >= 1:
		return fmt.Errorf("workload: %s: burst fraction %v outside [0,1)", p.Name, p.BurstFrac)
	}
	return nil
}

const nsPerSec = int64(1_000_000_000)
const nsPerMs = int64(1_000_000)

// Generate synthesizes the trace for this profile. The same (profile, seed)
// pair always produces the identical trace.
//
// Temporal locality needs a closed-loop step: a re-hit (temporal pick) that
// lands inside an earlier sequential run makes the following sequential
// continuations re-hit too, inflating the measured value above the dial.
// Generate therefore runs one calibration pass, measures the overshoot, and
// regenerates with a corrected dial — still fully deterministic.
func (p *Profile) Generate(seed uint64) *trace.Trace {
	t := p.generateOnce(seed, p.Temporal)
	measured := measureTemporal(t)
	adj := p.Temporal - (measured - p.Temporal)
	if adj < 0 {
		adj = 0
	}
	return p.generateOnce(seed, adj)
}

// Stream returns the profile's generated trace as a lazily materialized
// trace.Stream: nothing is generated until the first pull, each call owns a
// private copy (no shared cache entry to clone), and the memory is
// reclaimed when the caller drops the stream. Generation itself is
// inherently whole-trace — the temporal-locality calibration is a two-pass
// fit over the finished request sequence — so streaming generation means
// deferring and privatizing that allocation, not avoiding it.
func (p *Profile) Stream(seed uint64) trace.Stream {
	return trace.Generated(p.Name, func() *trace.Trace { return p.Generate(seed) })
}

// measureTemporal applies the paper's temporal-locality definition
// (duplicated from internal/stats to avoid an import cycle).
func measureTemporal(t *trace.Trace) float64 {
	if len(t.Reqs) == 0 {
		return 0
	}
	seen := make(map[uint64]struct{}, len(t.Reqs))
	hits := 0
	for i := range t.Reqs {
		page := t.Reqs[i].LBA / trace.SectorsPerPage
		if _, ok := seen[page]; ok {
			hits++
		} else {
			seen[page] = struct{}{}
		}
	}
	return float64(hits) / float64(len(t.Reqs))
}

func (p *Profile) generateOnce(seed uint64, temporalDial float64) *trace.Trace {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	// Derive a per-profile stream so different apps with the same seed are
	// independent, but a given app is stable across the roster.
	h := seed
	for _, c := range []byte(p.Name) {
		h = h*1099511628211 + uint64(c)
	}
	r := rng.New(h)

	readMix := p.readSampler()
	writeMix := p.writeSampler()

	n := p.Requests
	t := &trace.Trace{Name: p.Name, Reqs: make([]trace.Request, 0, n)}

	// Inter-arrival gaps: burst + idle mixture, then the idle component is
	// rescaled so the trace spans exactly DurationSec. Rescaling only the
	// long gaps preserves the sub-16 ms bucket shape of Fig. 6.
	gaps, isIdle := p.gaps(r, n)

	addr := newAddrGen(r.Fork(), p.Spatial, temporalDial)

	var at int64
	for i := 0; i < n; i++ {
		at += gaps[i]
		var req trace.Request
		req.Arrival = at
		if r.Bool(p.WriteFrac) {
			req.Op = trace.Write
			req.Size = uint32(writeMix.Sample(r))
		} else {
			req.Op = trace.Read
			req.Size = uint32(readMix.Sample(r))
		}
		req.LBA = addr.next(req.Pages())
		t.Reqs = append(t.Reqs, req)
	}
	_ = isIdle

	// Inject the trace's maximum-size request at a deterministic position so
	// Table III's Max Size column is reproduced. Reads never exceed 256 KB in
	// the collected traces, so an over-256 KB maximum must be a write
	// (it is the driver-level packing command that produces these giants).
	// Round the published maximum up to a whole number of pages: Table III
	// lists one value (GoogleMaps' 8,174 KB) that is not 4 KB-aligned,
	// presumably truncated in typesetting.
	maxIdx := n / 2
	mreq := &t.Reqs[maxIdx]
	mreq.Size = uint32((p.MaxKB+3)/4*4) * 1024
	if p.MaxKB > maxReadKB || p.WriteFrac >= 0.5 {
		mreq.Op = trace.Write
	} else {
		mreq.Op = trace.Read
	}
	mreq.LBA = addr.next(mreq.Pages())

	return t
}

func (p *Profile) readSampler() *rng.Weighted {
	if p.ReadMix != nil {
		return explicitMix(p.ReadMix)
	}
	maxKB := p.MaxKB
	if maxKB > maxReadKB {
		maxKB = maxReadKB
	}
	return buildMix(p.P4, p.MeanReadKB, maxKB)
}

func (p *Profile) writeSampler() *rng.Weighted {
	if p.WriteMix != nil {
		return explicitMix(p.WriteMix)
	}
	return buildMix(p.P4, p.MeanWriteKB, p.MaxKB)
}

// gaps draws n inter-arrival gaps (the first is the offset of the first
// request) and rescales the idle component so the sum is exactly
// DurationSec. Returns the gaps and a parallel idle-component mask.
func (p *Profile) gaps(r *rng.Rand, n int) ([]int64, []bool) {
	total := int64(p.DurationSec * float64(nsPerSec))
	meanGap := float64(total) / float64(n)
	burstMean := p.BurstMeanMs * float64(nsPerMs)

	bf := p.BurstFrac
	idleMean := (meanGap - bf*burstMean) / (1 - bf)
	degenerate := idleMean <= burstMean
	if degenerate {
		// The requested burst component already exceeds the trace's mean
		// gap; fall back to a single exponential component.
		bf = 0
		idleMean = meanGap
	}

	gaps := make([]int64, n)
	isIdle := make([]bool, n)
	var burstSum, idleSum int64
	for i := 0; i < n; i++ {
		if r.Bool(bf) {
			g := int64(r.Exp(burstMean))
			if g < 1 {
				g = 1
			}
			gaps[i] = g
			burstSum += g
		} else {
			g := int64(r.Exp(idleMean))
			if g < 1 {
				g = 1
			}
			gaps[i] = g
			isIdle[i] = true
			idleSum += g
		}
	}
	// Rescale idle gaps so the total equals the target duration.
	if idleSum > 0 && total > burstSum {
		scale := float64(total-burstSum) / float64(idleSum)
		for i := range gaps {
			if isIdle[i] {
				gaps[i] = int64(float64(gaps[i]) * scale)
				if gaps[i] < 1 {
					gaps[i] = 1
				}
			}
		}
	}
	return gaps, isIdle
}

// Registry is an ordered collection of profiles.
type Registry struct {
	byName map[string]*Profile
	order  []string
}

// NewRegistry builds a registry from the given profiles, preserving order.
func NewRegistry(profiles ...*Profile) *Registry {
	reg := &Registry{byName: make(map[string]*Profile, len(profiles))}
	for _, p := range profiles {
		if _, dup := reg.byName[p.Name]; dup {
			panic("workload: duplicate profile " + p.Name)
		}
		reg.byName[p.Name] = p
		reg.order = append(reg.order, p.Name)
	}
	return reg
}

// Lookup returns the named profile, or nil.
func (reg *Registry) Lookup(name string) *Profile { return reg.byName[name] }

// Names returns profile names in registration order.
func (reg *Registry) Names() []string {
	out := make([]string, len(reg.order))
	copy(out, reg.order)
	return out
}

// SortedNames returns profile names alphabetically (for stable iteration in
// tools that do not care about paper order).
func (reg *Registry) SortedNames() []string {
	out := reg.Names()
	sort.Strings(out)
	return out
}
