package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"emmcio/internal/paper"
	"emmcio/internal/stats"
	"emmcio/internal/trace"
)

const testSeed = DefaultSeed

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestRosterShape(t *testing.T) {
	if len(Apps()) != 18 {
		t.Fatalf("%d app profiles, want 18", len(Apps()))
	}
	if len(Combos()) != 7 {
		t.Fatalf("%d combo profiles, want 7", len(Combos()))
	}
	for i, p := range All() {
		if p.Name != paper.AllTraces[i] {
			t.Fatalf("profile %d is %q, want %q (paper order)", i, p.Name, paper.AllTraces[i])
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultRegistry().Lookup(paper.Twitter)
	a := p.Generate(testSeed)
	b := p.Generate(testSeed)
	if len(a.Reqs) != len(b.Reqs) {
		t.Fatal("same seed produced different request counts")
	}
	for i := range a.Reqs {
		if a.Reqs[i] != b.Reqs[i] {
			t.Fatalf("request %d differs between identical-seed runs", i)
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	p := DefaultRegistry().Lookup(paper.Twitter)
	a := p.Generate(1)
	b := p.Generate(2)
	same := 0
	for i := range a.Reqs {
		if a.Reqs[i].LBA == b.Reqs[i].LBA {
			same++
		}
	}
	if same > len(a.Reqs)/10 {
		t.Fatalf("different seeds produced %d/%d identical addresses", same, len(a.Reqs))
	}
}

func TestGeneratedTracesValidate(t *testing.T) {
	for _, p := range All() {
		tr := p.Generate(testSeed)
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// Table III calibration: request count exact; write-request percentage,
// mean read/write sizes, total data volume within tolerance; max size exact.
func TestTableIIICalibration(t *testing.T) {
	for _, p := range All() {
		tr := p.Generate(testSeed)
		row := paper.TableIII[p.Name]

		if got, want := len(tr.Reqs), paper.EffectiveRequests(p.Name); got != want {
			t.Errorf("%s: %d requests, want %d", p.Name, got, want)
		}

		wfrac := float64(tr.WriteCount()) / float64(len(tr.Reqs))
		if math.Abs(wfrac-row.WriteReqPct/100) > 0.03 {
			t.Errorf("%s: write fraction %.3f, paper %.3f", p.Name, wfrac, row.WriteReqPct/100)
		}

		var maxSize uint32
		var readBytes, writeBytes, readN, writeN float64
		for _, r := range tr.Reqs {
			if r.Size > maxSize {
				maxSize = r.Size
			}
			if r.Op == trace.Write {
				writeBytes += float64(r.Size)
				writeN++
			} else {
				readBytes += float64(r.Size)
				readN++
			}
		}
		// The injected maximum is rounded up to a whole page (Table III's
		// GoogleMaps row is not 4 KB-aligned).
		if d := int(maxSize/1024) - row.MaxKB; d < 0 || d > 3 {
			t.Errorf("%s: max size %d KB, paper %d KB", p.Name, maxSize/1024, row.MaxKB)
		}
		// Small per-op populations carry sampling noise; widen the band.
		tol := func(n float64) float64 {
			if n > 1000 {
				return 0.20
			}
			return 0.35
		}
		if readN > 50 { // tiny read populations are too noisy to compare
			meanR := readBytes / readN / 1024
			if relDiff(meanR, row.AveReadKB) > tol(readN) {
				t.Errorf("%s: mean read %.1f KB, paper %.1f KB", p.Name, meanR, row.AveReadKB)
			}
		}
		if writeN > 50 {
			meanW := writeBytes / writeN / 1024
			if relDiff(meanW, row.AveWriteKB) > tol(writeN) {
				t.Errorf("%s: mean write %.1f KB, paper %.1f KB", p.Name, meanW, row.AveWriteKB)
			}
		}
		dataKB := float64(tr.TotalBytes()) / 1024
		if relDiff(dataKB, float64(row.DataKB)) > 0.25 {
			t.Errorf("%s: data volume %.0f KB, paper %d KB", p.Name, dataKB, row.DataKB)
		}
	}
}

// Characteristic 2: in the fifteen 4 KB-majority individual traces the
// single-page fraction lands in (or very near) the published 44.9%–57.4%
// band; Movie, Booting and CameraVideo stay below it.
func TestCharacteristic2P4Band(t *testing.T) {
	for _, p := range Apps() {
		tr := p.Generate(testSeed)
		h := stats.NewHistogram(stats.SizeBounds())
		for _, r := range tr.Reqs {
			h.Add(int64(r.Size))
		}
		p4 := h.Fractions()[0]
		if paper.NotP4Majority[p.Name] {
			if p4 >= paper.Char2MinP4 {
				t.Errorf("%s: p4 %.3f should be below the Characteristic-2 band", p.Name, p4)
			}
			continue
		}
		if p4 < paper.Char2MinP4-0.03 || p4 > paper.Char2MaxP4+0.03 {
			t.Errorf("%s: p4 %.3f outside band [%.3f, %.3f]",
				p.Name, p4, paper.Char2MinP4, paper.Char2MaxP4)
		}
	}
}

// Table IV duration calibration: generated traces span the published
// recording duration, hence reproduce arrival and access rates.
func TestTableIVDurationAndRates(t *testing.T) {
	for _, p := range All() {
		tr := p.Generate(testSeed)
		row := paper.TableIV[p.Name]
		durSec := float64(tr.Duration()) / 1e9
		if relDiff(durSec, row.DurationSec) > 0.05 {
			t.Errorf("%s: duration %.0f s, paper %.0f s", p.Name, durSec, row.DurationSec)
		}
		rate := float64(len(tr.Reqs)) / durSec
		if relDiff(rate, row.ArrivalRate) > 0.15 {
			t.Errorf("%s: arrival rate %.2f/s, paper %.2f/s", p.Name, rate, row.ArrivalRate)
		}
	}
}

// Locality calibration: spatial and temporal locality land within a few
// points of Table IV.
func TestLocalityCalibration(t *testing.T) {
	for _, p := range All() {
		tr := p.Generate(testSeed)
		row := paper.TableIV[p.Name]
		sp := stats.SpatialLocality(tr) * 100
		tp := stats.TemporalLocality(tr) * 100
		if math.Abs(sp-row.SpatialPct) > 5 {
			t.Errorf("%s: spatial locality %.1f%%, paper %.1f%%", p.Name, sp, row.SpatialPct)
		}
		if math.Abs(tp-row.TemporalPct) > 6 {
			t.Errorf("%s: temporal locality %.1f%%, paper %.1f%%", p.Name, tp, row.TemporalPct)
		}
	}
}

// Characteristic 6 / Fig. 6: exactly the ten designated individual traces
// keep more than 20% of their inter-arrival gaps above 16 ms.
func TestCharacteristic6InterarrivalTail(t *testing.T) {
	over := map[string]bool{}
	for _, p := range Apps() {
		tr := p.Generate(testSeed)
		h := stats.NewHistogram(stats.InterarrivalBounds())
		for _, g := range stats.Interarrivals(tr) {
			h.Add(g)
		}
		fr := h.Fractions()
		over[p.Name] = fr[len(fr)-1] > 0.20
	}
	n := 0
	for _, v := range over {
		if v {
			n++
		}
	}
	if n < 9 || n > 11 {
		t.Errorf("%d traces with >20%% gaps above 16ms, paper says 10 (map: %v)", n, over)
	}
	for _, name := range []string{paper.Booting, paper.Movie, paper.Installing} {
		if over[name] {
			t.Errorf("%s should be burst-dominated (<=20%% gaps above 16 ms)", name)
		}
	}
}

// Fig. 6 detail: most Movie gaps are below 1 ms.
func TestMovieGapsMostlySubMillisecond(t *testing.T) {
	tr := DefaultRegistry().Lookup(paper.Movie).Generate(testSeed)
	h := stats.NewHistogram(stats.InterarrivalBounds())
	for _, g := range stats.Interarrivals(tr) {
		h.Add(g)
	}
	if f := h.Fractions()[0]; f < 0.5 {
		t.Errorf("Movie sub-1ms gap fraction %.2f, want most (Fig. 6)", f)
	}
}

// Fig. 4 detail: Movie has a 16–64 KB hump (>65% of requests).
func TestMovieSizeHump(t *testing.T) {
	tr := DefaultRegistry().Lookup(paper.Movie).Generate(testSeed)
	h := stats.NewHistogram(stats.SizeBounds())
	for _, r := range tr.Reqs {
		h.Add(int64(r.Size))
	}
	fr := h.Fractions()
	// Bucket 2 is (16 KB, 64 KB]; Fig. 4's 16–64 KB band also includes 16 KB
	// itself, which our bucket 1 (4,16] partially holds, so test the union.
	if fr[1]+fr[2] < 0.65 {
		t.Errorf("Movie 4–64 KB mass %.2f, want > 0.65 (Fig. 4 hump)", fr[1]+fr[2])
	}
}

// Fig. 7a: Music-included combos have a higher 4 KB fraction than
// Radio-included combos.
func TestFig7aMusicVsRadioCombos(t *testing.T) {
	reg := DefaultRegistry()
	p4 := func(name string) float64 {
		tr := reg.Lookup(name).Generate(testSeed)
		h := stats.NewHistogram(stats.SizeBounds())
		for _, r := range tr.Reqs {
			h.Add(int64(r.Size))
		}
		return h.Fractions()[0]
	}
	pairs := [][2]string{
		{paper.MusicWB, paper.RadioWB},
		{paper.MusicFB, paper.RadioFB},
		{paper.MusicMsg, paper.RadioMsg},
	}
	for _, pr := range pairs {
		if p4(pr[0]) <= p4(pr[1]) {
			t.Errorf("%s p4 %.3f not above %s p4 %.3f (Fig. 7a)",
				pr[0], p4(pr[0]), pr[1], p4(pr[1]))
		}
	}
}

// Largest read request across all traces is 256 KB (§III-A).
func TestLargestReadIs256KB(t *testing.T) {
	var maxRead uint32
	for _, p := range All() {
		tr := p.Generate(testSeed)
		for _, r := range tr.Reqs {
			if r.Op == trace.Read && r.Size > maxRead {
				maxRead = r.Size
			}
		}
	}
	if maxRead > 256*1024 {
		t.Fatalf("largest generated read is %d KB, paper caps reads at 256 KB", maxRead/1024)
	}
}

func TestRegistryLookup(t *testing.T) {
	reg := DefaultRegistry()
	if reg.Lookup(paper.Email) == nil {
		t.Fatal("Email profile missing")
	}
	if reg.Lookup("NoSuchApp") != nil {
		t.Fatal("Lookup invented a profile")
	}
	if len(reg.Names()) != 25 || len(reg.SortedNames()) != 25 {
		t.Fatal("registry should hold 25 profiles")
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	p := fromPaper(paper.Email, 0.5, 0.7, 4)
	NewRegistry(p, p)
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := fromPaper(paper.Email, 0.5, 0.7, 4)
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.Requests = 0 },
		func(p *Profile) { p.DurationSec = -1 },
		func(p *Profile) { p.WriteFrac = 1.5 },
		func(p *Profile) { p.P4 = 1.0 },
		func(p *Profile) { p.MaxKB = 0 },
		func(p *Profile) { p.BurstFrac = 1.0 },
	}
	for i, mutate := range cases {
		p := *good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad profile accepted", i)
		}
	}
}

func TestSizeLadder(t *testing.T) {
	l := sizeLadder(128)
	if l[0] != 8 {
		t.Fatalf("ladder starts at %d, want 8", l[0])
	}
	for i := 1; i < len(l); i++ {
		if l[i] <= l[i-1] {
			t.Fatalf("ladder not increasing: %v", l)
		}
		if l[i]%4 != 0 {
			t.Fatalf("ladder rung %d not a 4 KB multiple", l[i])
		}
	}
	if l[len(l)-1] > 128 {
		t.Fatalf("ladder exceeds cap: %v", l)
	}
}

func TestBuildMixMatchesTargets(t *testing.T) {
	cases := []struct {
		p4, mean float64
		max      int
	}{
		{0.5, 17.5, 1536},
		{0.574, 13.5, 2216},
		{0.28, 53.0, 20816},
		{0.4, 736.5, 10104},
		{0.46, 9.5, 940},
	}
	for _, c := range cases {
		m := buildMix(c.p4, c.mean, c.max)
		meanKB := m.Mean() / 1024
		if relDiff(meanKB, c.mean) > 0.10 {
			t.Errorf("buildMix(%v,%v,%v): mean %.1f KB", c.p4, c.mean, c.max, meanKB)
		}
	}
}

// Generator stability: the calibrated statistics are properties of the
// profile, not artifacts of one seed. Five different seeds must land the
// headline metrics in tight bands.
func TestSeedStability(t *testing.T) {
	prof := DefaultRegistry().Lookup(paper.Twitter)
	row := paper.TableIII[paper.Twitter]
	for seed := uint64(100); seed < 105; seed++ {
		tr := prof.Generate(seed)
		wfrac := float64(tr.WriteCount()) / float64(len(tr.Reqs)) * 100
		if math.Abs(wfrac-row.WriteReqPct) > 2.5 {
			t.Errorf("seed %d: write%% %.1f vs %.1f", seed, wfrac, row.WriteReqPct)
		}
		h := stats.NewHistogram(stats.SizeBounds())
		for _, r := range tr.Reqs {
			h.Add(int64(r.Size))
		}
		if p4 := h.Fractions()[0]; math.Abs(p4-0.574) > 0.03 {
			t.Errorf("seed %d: p4 %.3f drifted", seed, p4)
		}
		sp := stats.SpatialLocality(tr) * 100
		if math.Abs(sp-paper.TableIV[paper.Twitter].SpatialPct) > 5 {
			t.Errorf("seed %d: spatial %.1f drifted", seed, sp)
		}
	}
}

// The generated inter-arrival processes are over-dispersed (burst/idle
// mixtures), matching Fig. 6's shape rather than a Poisson process.
func TestInterarrivalsOverdispersed(t *testing.T) {
	for _, name := range []string{paper.Twitter, paper.Idle, paper.Facebook} {
		tr := DefaultRegistry().Lookup(name).Generate(testSeed)
		gaps := stats.Interarrivals(tr)
		if d := stats.IndexOfDispersion(gaps); d < float64(stats.Mean(gaps)) {
			// Dispersion index for an exponential process equals its mean
			// (in the same units); a mixture exceeds it.
			t.Errorf("%s: dispersion %.0f not above exponential level %.0f", name, d, stats.Mean(gaps))
		}
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	orig := DefaultRegistry().Lookup(paper.Movie) // has explicit mixes
	var buf bytes.Buffer
	if err := WriteProfileJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProfileJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same profile → identical traces.
	a := orig.Generate(99)
	b := back.Generate(99)
	if len(a.Reqs) != len(b.Reqs) {
		t.Fatal("round-trip changed request count")
	}
	for i := range a.Reqs {
		if a.Reqs[i] != b.Reqs[i] {
			t.Fatalf("request %d differs after JSON round trip", i)
		}
	}
}

func TestReadProfileJSONRejects(t *testing.T) {
	if _, err := ReadProfileJSON(strings.NewReader("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := ReadProfileJSON(strings.NewReader(`{"name":""}`)); err == nil {
		t.Fatal("invalid profile accepted")
	}
	if _, err := ReadProfileJSON(strings.NewReader(`{"name":"x","bogusField":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}
