package workload

import (
	"emmcio/internal/rng"
	"emmcio/internal/trace"
)

// The paper gathers combo traces two ways (§III-D): concurrent execution
// (Music or Radio playing behind another app) and task switching (FB/Msg:
// "using Facebook, switching to read a message whenever a new message
// comes, continuing to use Facebook after replying"). The 7 published
// combos are calibrated directly as profiles in profiles.go; the composers
// here let users build *new* combos from any two profiles.

// Concurrent interleaves independently generated traces of both profiles,
// as two applications running simultaneously. The result's duration is the
// shorter profile's duration (the paper runs both for the session length).
func Concurrent(name string, a, b *Profile, seed uint64) *trace.Trace {
	ta := a.Generate(seed)
	tb := b.Generate(seed + 1)
	// Trim to the common duration so neither app runs alone at the tail.
	da, db := ta.Duration(), tb.Duration()
	d := da
	if db < d {
		d = db
	}
	out := trace.Merge(name, ta.Window(0, d+1), tb.Window(0, d+1))
	return out
}

// Switching alternates between two profiles' request streams with the
// given mean dwell time: only the active application issues I/O, plus a
// small background trickle from the inactive one (its sync services stay
// up, as the paper's collection protocol keeps background services on).
func Switching(name string, a, b *Profile, dwellMeanNs int64, backgroundFrac float64, seed uint64) *trace.Trace {
	ta := a.Generate(seed)
	tb := b.Generate(seed + 1)
	r := rng.New(seed ^ 0x5157c43a9b3f21e7)

	out := &trace.Trace{Name: name}
	d := ta.Duration()
	if db := tb.Duration(); db < d {
		d = db
	}

	// Build the dwell schedule: alternating [start, end) windows.
	type window struct {
		start, end int64
		active     *trace.Trace
		inactive   *trace.Trace
	}
	var windows []window
	at := int64(0)
	turnA := true
	for at < d {
		dwell := int64(r.Exp(float64(dwellMeanNs)))
		if dwell < dwellMeanNs/8 {
			dwell = dwellMeanNs / 8
		}
		w := window{start: at, end: at + dwell}
		if turnA {
			w.active, w.inactive = ta, tb
		} else {
			w.active, w.inactive = tb, ta
		}
		windows = append(windows, w)
		at += dwell
		turnA = !turnA
	}

	for _, w := range windows {
		for i := range w.active.Reqs {
			req := w.active.Reqs[i]
			if req.Arrival >= w.start && req.Arrival < w.end {
				out.Reqs = append(out.Reqs, req)
			}
		}
		for i := range w.inactive.Reqs {
			req := w.inactive.Reqs[i]
			if req.Arrival >= w.start && req.Arrival < w.end && r.Bool(backgroundFrac) {
				out.Reqs = append(out.Reqs, req)
			}
		}
	}
	out.SortByArrival()
	return out
}
