package workload

import (
	"testing"

	"emmcio/internal/paper"
)

func TestConcurrentComposer(t *testing.T) {
	reg := DefaultRegistry()
	tr := Concurrent("Music+WB", reg.Lookup(paper.Music), reg.Lookup(paper.WebBrowsing), testSeed)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Name != "Music+WB" {
		t.Fatalf("name %q", tr.Name)
	}
	// The combined request rate exceeds either component's.
	dur := float64(tr.Duration()) / 1e9
	rate := float64(len(tr.Reqs)) / dur
	musicRate := paper.TableIV[paper.Music].ArrivalRate
	wbRate := paper.TableIV[paper.WebBrowsing].ArrivalRate
	if rate < musicRate || rate < wbRate {
		t.Fatalf("combined rate %.2f below a component's", rate)
	}
	if rate < (musicRate+wbRate)*0.7 {
		t.Fatalf("combined rate %.2f too low vs %.2f + %.2f", rate, musicRate, wbRate)
	}
}

func TestConcurrentTrimsToCommonDuration(t *testing.T) {
	reg := DefaultRegistry()
	// Booting lasts 40 s, Music 3801 s: the combo must not outlive Booting.
	tr := Concurrent("x", reg.Lookup(paper.Booting), reg.Lookup(paper.Music), testSeed)
	if got := float64(tr.Duration()) / 1e9; got > 41 {
		t.Fatalf("combo lasts %.0f s, want <= ~40 s", got)
	}
}

func TestSwitchingComposer(t *testing.T) {
	reg := DefaultRegistry()
	fb, msg := reg.Lookup(paper.Facebook), reg.Lookup(paper.Messaging)
	tr := Switching("FB<->Msg", fb, msg, 30_000_000_000, 0.1, testSeed)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Reqs) == 0 {
		t.Fatal("empty switching combo")
	}
	// Foreground-only composition: the rate sits near the dwell-weighted
	// average of the components, well below their sum.
	dur := float64(tr.Duration()) / 1e9
	rate := float64(len(tr.Reqs)) / dur
	sum := paper.TableIV[paper.Facebook].ArrivalRate + paper.TableIV[paper.Messaging].ArrivalRate
	if rate >= sum {
		t.Fatalf("switching rate %.2f not below concurrent sum %.2f", rate, sum)
	}
}

func TestSwitchingDeterministic(t *testing.T) {
	reg := DefaultRegistry()
	a := Switching("x", reg.Lookup(paper.Facebook), reg.Lookup(paper.Messaging), 10_000_000_000, 0.1, 7)
	b := Switching("x", reg.Lookup(paper.Facebook), reg.Lookup(paper.Messaging), 10_000_000_000, 0.1, 7)
	if len(a.Reqs) != len(b.Reqs) {
		t.Fatal("switching not deterministic")
	}
	for i := range a.Reqs {
		if a.Reqs[i] != b.Reqs[i] {
			t.Fatal("switching not deterministic")
		}
	}
}
