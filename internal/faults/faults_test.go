package faults

import (
	"math"
	"testing"

	"emmcio/internal/reliability"
	"emmcio/internal/telemetry"
)

func TestNilInjectorIsSafe(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
	if in.ProgramFails(100) || in.EraseFails(100) || in.ReadUncorrectable(100) {
		t.Fatal("nil injector injected a fault")
	}
	if in.Draws() != 0 || in.Counts() != (Counts{}) || in.RecoveryReads() != 0 {
		t.Fatal("nil injector reports non-zero state")
	}
	in.Skip(10)
	in.SetTelemetry(telemetry.NewRegistry())
}

func TestNilConfigBuildsNilInjector(t *testing.T) {
	in, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	if in != nil {
		t.Fatal("nil config built a non-nil injector")
	}
}

func TestRateZeroNeverDraws(t *testing.T) {
	in, err := New(&Config{Seed: 1, Rate: 0})
	if err != nil {
		t.Fatal(err)
	}
	for pe := 0.0; pe <= 6000; pe += 500 {
		if in.ProgramFails(pe) || in.EraseFails(pe) || in.ReadUncorrectable(pe) {
			t.Fatalf("rate-0 injector fired at pe=%v", pe)
		}
	}
	if in.Draws() != 0 {
		t.Fatalf("rate-0 injector drew %d times", in.Draws())
	}
}

func TestValidateRejectsBadRates(t *testing.T) {
	for _, rate := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := New(&Config{Rate: rate}); err == nil {
			t.Errorf("rate %v accepted", rate)
		}
	}
	if _, err := New(&Config{Rate: 1, ProgramFailBase: -1}); err == nil {
		t.Error("negative program-fail base accepted")
	}
	if _, err := New(&Config{Rate: 1, Model: &reliability.Model{}}); err == nil {
		t.Error("invalid reliability model accepted")
	}
}

func TestProbabilitiesGrowWithWear(t *testing.T) {
	in, err := New(&Config{Seed: 1, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	model := reliability.Default()
	for _, p := range []struct {
		name string
		f    func(float64) float64
	}{
		{"program", in.ProgramProbability},
		{"erase", in.EraseProbability},
		{"read", in.ReadProbability},
	} {
		prev := -1.0
		// Stop at the RBER cap (RBER clamps to 0.5 around 3.35x life under
		// the default model), beyond which the curves legitimately flatten.
		for pe := 0.0; pe <= 2.0*model.Endurance; pe += 250 {
			v := p.f(pe)
			// The Poisson-tail sum cancels to ~0 at low wear; ignore
			// sub-epsilon jitter there.
			if v < prev && prev > 1e-12 {
				t.Fatalf("%s probability shrank: p(%v)=%v < %v", p.name, pe, v, prev)
			}
			if v < 0 || v > 1 {
				t.Fatalf("%s probability %v outside [0,1]", p.name, v)
			}
			prev = v
		}
		if fresh := p.f(0); fresh >= p.f(1.5*model.Endurance) {
			t.Fatalf("%s probability did not grow over life: fresh=%v", p.name, fresh)
		}
	}
}

func TestRateScalesProbability(t *testing.T) {
	one, _ := New(&Config{Seed: 1, Rate: 1})
	four, _ := New(&Config{Seed: 1, Rate: 4})
	pe := 1500.0
	if got, want := four.ProgramProbability(pe), 4*one.ProgramProbability(pe); math.Abs(got-want) > 1e-15 {
		t.Fatalf("rate-4 program probability %v, want %v", got, want)
	}
}

func TestDeterministicSequences(t *testing.T) {
	run := func() ([]bool, int64, Counts) {
		in, err := New(&Config{Seed: 42, Rate: 3})
		if err != nil {
			t.Fatal(err)
		}
		var seq []bool
		for i := 0; i < 2000; i++ {
			pe := float64(i) * 2 // ramp wear so all three curves move
			seq = append(seq, in.ProgramFails(pe), in.EraseFails(pe), in.ReadUncorrectable(pe))
		}
		return seq, in.Draws(), in.Counts()
	}
	s1, d1, c1 := run()
	s2, d2, c2 := run()
	if d1 != d2 || c1 != c2 {
		t.Fatalf("state diverged: draws %d vs %d, counts %+v vs %+v", d1, d2, c1, c2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("decision %d diverged", i)
		}
	}
	if c1.Total() == 0 {
		t.Fatal("no faults fired over a full wear ramp at rate 3")
	}
}

func TestSkipResumesStream(t *testing.T) {
	full, _ := New(&Config{Seed: 7, Rate: 2})
	pe := 4000.0
	var want []bool
	for i := 0; i < 500; i++ {
		want = append(want, full.ProgramFails(pe))
	}
	cut := int64(0)
	// Replay the first half on a fresh injector, snapshot its draw count,
	// and resume a third injector from that point via Skip.
	half, _ := New(&Config{Seed: 7, Rate: 2})
	for i := 0; i < 250; i++ {
		half.ProgramFails(pe)
	}
	cut = half.Draws()

	resumed, _ := New(&Config{Seed: 7, Rate: 2})
	resumed.Skip(cut)
	for i := 250; i < 500; i++ {
		if got := resumed.ProgramFails(pe); got != want[i] {
			t.Fatalf("decision %d after Skip(%d) diverged", i, cut)
		}
	}
}

func TestTelemetryCountsFaults(t *testing.T) {
	reg := telemetry.NewRegistry()
	in, _ := New(&Config{Seed: 9, Rate: 1})
	in.SetTelemetry(reg)
	for i := 0; i < 5000; i++ {
		in.ProgramFails(5000)
		in.ReadUncorrectable(5000)
	}
	c := in.Counts()
	if c.Program == 0 || c.Read == 0 {
		t.Fatalf("expected faults at deep wear, got %+v", c)
	}
	got := map[string]int64{}
	reg.EachCounter(func(name string, v int64) { got[name] = v })
	if got[`faults_injected_total{kind="program"}`] != c.Program {
		t.Fatalf("program counter %v, want %d (all: %v)", got, c.Program, got)
	}
	if got[`faults_injected_total{kind="read"}`] != c.Read {
		t.Fatalf("read counter mismatch: %v", got)
	}
}

func TestExtremeProbabilitiesSkipRNG(t *testing.T) {
	// Force p >= 1 via a huge rate: the decision must be deterministic-true
	// and must not consume a draw.
	in, _ := New(&Config{Seed: 1, Rate: 1e12})
	if !in.ProgramFails(6000) {
		t.Fatal("p>=1 did not fail")
	}
	if in.Draws() != 0 {
		t.Fatalf("p>=1 consumed %d draws", in.Draws())
	}
}
