// Package faults is the deterministic fault-injection plane of the modeled
// eMMC stack: program failures, erase failures, and uncorrectable read
// errors, injected with wear-dependent probabilities derived from the
// reliability model (internal/reliability) and drawn from a seeded
// internal/rng stream so replays stay bit-reproducible.
//
// The paper's endurance story (Fig. 9, and its reference [14] on wear vs.
// MLC reliability) argues that a scheme that erases more ages faster;
// internal/reliability turns wear into *expected* read-retry latency, and
// this package turns the same wear curve into *actual* failures the FTL and
// device must survive: bad-block retirement, re-programming of failed
// pages, and read-recovery relocation. Real eMMC controllers are defined by
// this machinery — factory bad blocks, grown bad blocks, read scrubbing.
//
// Determinism contract: an Injector is owned by exactly one device and its
// decisions are a pure function of (Config, sequence of queries). Replays
// are single-threaded per device and sweep jobs each build their own
// device, so identical seeds give identical fault sequences at any sweep
// parallelism. With Rate == 0 no random draw is ever made, so a rate-zero
// injector is behaviorally identical to no injector at all.
package faults

import (
	"fmt"
	"math"

	"emmcio/internal/reliability"
	"emmcio/internal/rng"
	"emmcio/internal/telemetry"
)

// Config parameterizes an Injector. It is pure data (gob-friendly), so it
// can ride inside device configurations and snapshots; the Injector itself
// is reconstructed from it.
type Config struct {
	// Seed seeds the decision stream. Identical seeds reproduce identical
	// fault sequences for identical operation sequences.
	Seed uint64
	// Rate is the global probability multiplier. 0 disables injection
	// entirely (no draws, zero overhead beyond one nil/zero check).
	Rate float64
	// ProgramFailBase is the per-program failure probability of a fresh
	// (zero-wear) block; it grows with wear along the reliability model's
	// RBER curve. Zero selects the default 2e-5.
	ProgramFailBase float64
	// EraseFailBase is the per-erase failure probability of a fresh block,
	// growing like ProgramFailBase. Zero selects the default 1e-4.
	EraseFailBase float64
	// ReadFailScale scales the fraction of ECC-overflow reads whose retry
	// ladder also fails (the model's FailureProbability marks the overflow;
	// UncorrectableProbability adds the reads no retry can save). Zero
	// selects the default 0.02.
	ReadFailScale float64
	// Model supplies the wear curves. Nil selects reliability.Default().
	Model *reliability.Model
}

// Defaults for the zero-valued knobs.
const (
	DefaultProgramFailBase = 2e-5
	DefaultEraseFailBase   = 1e-4
	DefaultReadFailScale   = 0.02
)

// Validate reports unusable configurations.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0) || c.Rate < 0 {
		return fmt.Errorf("faults: rate %v outside [0, +inf)", c.Rate)
	}
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"program-fail base", c.ProgramFailBase},
		{"erase-fail base", c.EraseFailBase},
		{"read-fail scale", c.ReadFailScale},
	} {
		if math.IsNaN(v.val) || v.val < 0 {
			return fmt.Errorf("faults: negative or NaN %s %v", v.name, v.val)
		}
	}
	if c.Model != nil {
		if err := c.Model.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Counts reports how many faults of each kind an injector has fired.
type Counts struct {
	Program int64
	Erase   int64
	Read    int64
}

// Total sums all kinds.
func (c Counts) Total() int64 { return c.Program + c.Erase + c.Read }

// memo caches one wear level's probability; wear changes far less often
// than operations happen (only erases move it), so the exp/Poisson math is
// paid per wear step, not per operation.
type memo struct {
	pe, p float64
	valid bool
}

func (m *memo) get(pe float64, f func(float64) float64) float64 {
	if !m.valid || m.pe != pe {
		m.pe, m.p, m.valid = pe, f(pe), true
	}
	return m.p
}

// Injector makes the fault decisions for one device. A nil *Injector is
// valid and never injects, so the stack pays one nil check when fault
// injection is off.
type Injector struct {
	cfg    Config
	model  *reliability.Model
	r      *rng.Rand
	draws  int64
	counts Counts

	progMemo, eraseMemo, readMemo memo

	tel *injTel
}

type injTel struct {
	program, erase, read *telemetry.Counter
}

// New builds an injector from the config. A nil config returns a nil
// injector (injection off).
func New(cfg *Config) (*Injector, error) {
	if cfg == nil {
		return nil, nil
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{cfg: *cfg, model: cfg.Model}
	if in.model == nil {
		in.model = reliability.Default()
	}
	if in.cfg.ProgramFailBase == 0 {
		in.cfg.ProgramFailBase = DefaultProgramFailBase
	}
	if in.cfg.EraseFailBase == 0 {
		in.cfg.EraseFailBase = DefaultEraseFailBase
	}
	if in.cfg.ReadFailScale == 0 {
		in.cfg.ReadFailScale = DefaultReadFailScale
	}
	in.r = rng.New(cfg.Seed)
	return in, nil
}

// SetTelemetry attaches (or, with nil, detaches) the
// faults_injected_total{kind} counters.
func (in *Injector) SetTelemetry(reg *telemetry.Registry) {
	if in == nil {
		return
	}
	if reg == nil {
		in.tel = nil
		return
	}
	in.tel = &injTel{
		program: reg.Counter("faults_injected_total", telemetry.L("kind", "program")),
		erase:   reg.Counter("faults_injected_total", telemetry.L("kind", "erase")),
		read:    reg.Counter("faults_injected_total", telemetry.L("kind", "read")),
	}
}

// Enabled reports whether the injector can ever fire.
func (in *Injector) Enabled() bool { return in != nil && in.cfg.Rate > 0 }

// hit draws one decision with probability p. Probabilities outside (0, 1)
// never touch the RNG, keeping the draw count (and thus Skip-based snapshot
// resume) a pure function of the decided operations.
func (in *Injector) hit(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	in.draws++
	return in.r.Bool(p)
}

// wearGrowth is the reliability model's RBER growth ratio at the given
// wear: 1.0 fresh, ~200x at rated endurance under the default model. It is
// the shared wear curve for program and erase failures.
func (in *Injector) wearGrowth(pe float64) float64 {
	return in.model.RBER(pe) / in.model.RBER(0)
}

// ProgramProbability returns the per-program failure probability at the
// given pool wear (average P/E cycles).
func (in *Injector) ProgramProbability(pe float64) float64 {
	return clamp01(in.cfg.Rate * in.cfg.ProgramFailBase * in.wearGrowth(pe))
}

// EraseProbability returns the per-erase failure probability at the given
// pool wear.
func (in *Injector) EraseProbability(pe float64) float64 {
	return clamp01(in.cfg.Rate * in.cfg.EraseFailBase * in.wearGrowth(pe))
}

// ReadProbability returns the per-page-read uncorrectable probability at
// the given pool wear: the reads nothing recovers
// (Model.UncorrectableProbability) plus the configured fraction of
// first-attempt ECC overflows (Model.FailureProbability) whose retry
// ladder fails in the field.
func (in *Injector) ReadProbability(pe float64) float64 {
	p := in.model.UncorrectableProbability(pe) +
		in.cfg.ReadFailScale*in.model.FailureProbability(pe)
	return clamp01(in.cfg.Rate * p)
}

func clamp01(p float64) float64 {
	if p > 1 {
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}

// ProgramFails decides whether the next program operation at the given
// pool wear fails. Nil or rate-zero injectors never fail and never draw.
func (in *Injector) ProgramFails(pe float64) bool {
	if !in.Enabled() {
		return false
	}
	if !in.hit(in.progMemo.get(pe, in.ProgramProbability)) {
		return false
	}
	in.counts.Program++
	if in.tel != nil {
		in.tel.program.Inc()
	}
	return true
}

// EraseFails decides whether the next erase operation fails.
func (in *Injector) EraseFails(pe float64) bool {
	if !in.Enabled() {
		return false
	}
	if !in.hit(in.eraseMemo.get(pe, in.EraseProbability)) {
		return false
	}
	in.counts.Erase++
	if in.tel != nil {
		in.tel.erase.Inc()
	}
	return true
}

// ReadUncorrectable decides whether the next page read is uncorrectable
// after the full retry ladder.
func (in *Injector) ReadUncorrectable(pe float64) bool {
	if !in.Enabled() {
		return false
	}
	if !in.hit(in.readMemo.get(pe, in.ReadProbability)) {
		return false
	}
	in.counts.Read++
	if in.tel != nil {
		in.tel.read.Inc()
	}
	return true
}

// RecoveryReads returns how many extra read attempts an uncorrectable read
// burned before the controller gave up and went to recovery — the model's
// full retry ladder.
func (in *Injector) RecoveryReads() int {
	if in == nil {
		return 0
	}
	return in.model.MaxRetries
}

// Counts returns the per-kind fault totals (zero for a nil injector).
func (in *Injector) Counts() Counts {
	if in == nil {
		return Counts{}
	}
	return in.counts
}

// Draws returns how many random decisions have been drawn. Device
// snapshots archive it so a restored injector resumes the exact stream
// position (see Skip).
func (in *Injector) Draws() int64 {
	if in == nil {
		return 0
	}
	return in.draws
}

// Skip fast-forwards the decision stream by n draws, restoring the stream
// position recorded by Draws at snapshot time.
func (in *Injector) Skip(n int64) {
	if in == nil {
		return
	}
	for i := int64(0); i < n; i++ {
		in.r.Float64()
	}
	in.draws += n
}
