// Package storage defines the backend-neutral device seam between the
// kernel-side layers (blockdev, core's replay loops, the experiment sweeps,
// the CLIs and the emmcd server) and a concrete storage model. Everything
// above this interface speaks sim-time requests and Results; everything
// below it owns flash scheduling, FTL policy, and power/fault behaviour.
//
// Three backends implement Device today: the eMMC model of internal/emmc
// (the paper's device, packed commands and all), its mmc/sdcard flavour
// (same mechanics, 3x slower, no packed-command support), and the
// UFS/NVMe-flavoured command-queued model of internal/ufs. The paper's
// implications chapter asks what smartphone I/O patterns mean for *future*
// storage interfaces; this seam is what lets one reconstructed workload
// replay across device generations instead of being hard-wired to eMMC.
package storage

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"emmcio/internal/faults"
	"emmcio/internal/flash"
	"emmcio/internal/ftl"
	"emmcio/internal/telemetry"
	"emmcio/internal/trace"
)

// Backend names a device implementation selectable via -device or the
// "device" JSON field.
type Backend string

// The built-in backends.
const (
	// BackendEMMC is the paper's eMMC 4.51-class device (internal/emmc).
	BackendEMMC Backend = "emmc"
	// BackendSD is the mmc/sdcard flavour of the eMMC model: identical
	// mechanics, the paper's "roughly triple" latency penalty, and no
	// packed-command support (Implication 1's external-card comparison).
	BackendSD Backend = "sd"
	// BackendUFS is the UFS/NVMe-flavoured command-queued model
	// (internal/ufs): multi-queue submission, out-of-order completion,
	// higher channel parallelism, and an SLC write-booster fast path.
	BackendUFS Backend = "ufs"
)

// Backends lists the valid backend names, sorted, for diagnostics.
func Backends() []string {
	out := []string{string(BackendEMMC), string(BackendSD), string(BackendUFS)}
	sort.Strings(out)
	return out
}

// ParseBackend resolves a user-supplied device name. The empty string is
// the eMMC default, so zero-valued specs keep their pre-backend behaviour.
// The error is a single line listing the valid names — both the CLI flag
// path and the server's JSON path surface it verbatim.
func ParseBackend(s string) (Backend, error) {
	switch Backend(strings.ToLower(s)) {
	case "", BackendEMMC:
		return BackendEMMC, nil
	case BackendSD:
		return BackendSD, nil
	case BackendUFS:
		return BackendUFS, nil
	}
	return "", fmt.Errorf("unknown device %q (valid: %s)", s, strings.Join(Backends(), ", "))
}

// Caps describes what a device can do, so upper layers query capabilities
// instead of assuming eMMC. The blockdev driver packs requests only for
// devices that advertise PackedCommands and accounts mmc bus exchanges only
// for them; everything else gets one command per request.
type Caps struct {
	// Backend identifies the implementation.
	Backend Backend
	// PackedCommands reports eMMC packed-command support (Fig. 2's packing
	// function). False for sdcard and UFS.
	PackedCommands bool
	// QueueDepth is how many commands the device accepts concurrently:
	// 1 for a strictly serial FIFO device, >1 for command-queued ones.
	QueueDepth int
}

// Result reports the replayed timing of one request.
type Result struct {
	ServiceStart int64
	Finish       int64
	Waited       bool
}

// Metrics aggregates a device's activity over a replay. The field set is
// the union of what the backends account; a backend leaves counters it
// does not model at zero (e.g. wake accounting on a device without the
// power model, queue-full waits on a FIFO device).
type Metrics struct {
	Served        int64
	NoWait        int64
	SumServiceNs  int64
	SumResponseNs int64
	SumWaitNs     int64

	// GC accounting.
	ForegroundGC ftl.GCWork
	IdleGC       ftl.GCWork
	GCStallNs    int64 // foreground/overflow GC time charged to requests
	IdleGCNs     int64 // GC time absorbed by inter-arrival gaps

	// Wake-up accounting (Characteristic 4).
	LightWakes int64
	DeepWakes  int64
	WakeNs     int64

	// Mapping-table cache accounting (DFTL-style map paging).
	MapReads  int64 // translation-page fetches on cache misses
	MapWrites int64 // dirty translation-page write-backs
	MapNs     int64 // controller time spent on translation I/O

	// Flush barriers served (fsync-driven cache flushes).
	Flushes int64
	FlushNs int64

	// Fault recovery accounting. ReadFaults counts uncorrectable reads; each
	// one pays the retry ladder plus a read-scrub block retirement, totalled
	// in RecoveryNs. Program/erase fault totals live in the FTL stats.
	ReadFaults int64
	RecoveryNs int64

	// Write-buffer accounting (SSDsim's RAM buffer layer on eMMC; the SLC
	// write booster on UFS).
	BufferedWrites int64 // writes acknowledged from RAM / absorbed by the booster
	DestageIdleNs  int64 // destage time hidden in idle gaps
	DestageStallNs int64 // destage time charged to waiting requests
}

// NoWaitRatio returns the fraction of requests served immediately.
func (m Metrics) NoWaitRatio() float64 {
	if m.Served == 0 {
		return 0
	}
	return float64(m.NoWait) / float64(m.Served)
}

// MeanServiceNs returns the mean service time.
func (m Metrics) MeanServiceNs() float64 {
	if m.Served == 0 {
		return 0
	}
	return float64(m.SumServiceNs) / float64(m.Served)
}

// MeanResponseNs returns the mean response time (the paper's MRT).
func (m Metrics) MeanResponseNs() float64 {
	if m.Served == 0 {
		return 0
	}
	return float64(m.SumResponseNs) / float64(m.Served)
}

// Device is one simulated storage device. All times are simulated
// nanoseconds; nothing here blocks on wall-clock time. Implementations are
// single-goroutine, like the replay loops that drive them.
type Device interface {
	// Submit services one request and returns its timing. Requests must
	// arrive in nondecreasing arrival order.
	Submit(req trace.Request) (Result, error)
	// SubmitAt services one request dispatched at dispatchAt (at least its
	// arrival): Submit with an explicit dispatch time. It is the
	// single-request fast path the replay loops use — semantically identical
	// to SubmitPacked(dispatchAt, one-element batch), without forcing either
	// side to allocate the batch or the result slice.
	SubmitAt(dispatchAt int64, req trace.Request) (Result, error)
	// SubmitPacked services several requests dispatched together at
	// dispatchAt (at least the latest member arrival). Devices without
	// packed-command support still accept multi-request batches — they
	// issue the members back to back as independent commands — so the
	// blockdev dispatch path is backend-neutral.
	SubmitPacked(dispatchAt int64, reqs []trace.Request) ([]Result, error)
	// Flush services a cache-flush barrier (what fsync turns into below
	// the file system): it drains in-flight work and pays the flush cost.
	Flush(dispatchAt int64) (Result, error)

	// Caps reports the device's capabilities for the driver layer.
	Caps() Caps
	// Geometry returns the flash array's shape.
	Geometry() flash.Geometry
	// CapacityBytes returns the device's physical flash capacity.
	CapacityBytes() int64

	// Metrics returns a copy of the accumulated replay metrics.
	Metrics() Metrics
	// FTLStats exposes the translation layer's accounting.
	FTLStats() ftl.Stats
	// Wear exposes the erase distribution of pool index pool.
	Wear(pool int) ftl.WearSummary
	// MapCacheStats exposes the mapping-cache counters (zero when the
	// backend has no bounded mapping cache).
	MapCacheStats() ftl.MapCacheStats
	// BufferHitRate returns the device read-cache hit rate (0 when none).
	BufferHitRate() float64
	// PrefetchStats reports read-ahead activity (zeros when unsupported).
	PrefetchStats() (prefetched, hits int64)
	// FaultCounts exposes the fault injector's per-kind totals (all zero
	// when injection is off).
	FaultCounts() faults.Counts
	// FaultDraws reports the fault injector's decision-stream position —
	// how many random draws it has consumed (0 with injection off). Device
	// snapshots archive it, and a restored device resumes from it, so the
	// draw count is the fork-determinism witness callers assert on.
	FaultDraws() int64
	// SetFaultConfig replaces the device's fault injector with a fresh one
	// built from fc (nil turns injection off). The new injector starts at
	// draw 0, exactly as if fc had been part of the construction config —
	// which is what lets one aged snapshot fork into many fault regimes.
	SetFaultConfig(fc *faults.Config) error
	// AddArtificialWear pre-ages a pool (aging studies).
	AddArtificialWear(pool int, erases int64)
	// Pools describes the device's flash pools (page size, block and page
	// counts); Wear takes an index into this slice.
	Pools() []flash.PoolSpec
	// LastActivity returns the completion time of the most recent request.
	LastActivity() int64

	// SetTelemetry attaches metrics and span tracing (nil values detach).
	SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer)

	// Snapshot archives the device's full dynamic state as gob, so an aged
	// device can be resumed later without replaying its history. Restore
	// is backend-specific (emmc.RestoreSnapshot, ufs.RestoreSnapshot);
	// core.RestoreDevice dispatches on a Backend.
	Snapshot(w io.Writer) error
}
