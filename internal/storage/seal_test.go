package storage_test

import (
	"bytes"
	"strings"
	"testing"

	"emmcio/internal/core"
	"emmcio/internal/faults"
	"emmcio/internal/storage"
	"emmcio/internal/trace"
)

// sealTestDevice builds a device with a little state on the given backend
// (faults on, so the draw-position survives the round trip too).
func sealTestDevice(t *testing.T, backend storage.Backend) storage.Device {
	t.Helper()
	opt := core.CaseStudyOptions()
	opt.Backend = backend
	opt.Faults = &faults.Config{Seed: 7, Rate: 1}
	dev, err := core.NewDevice(core.Scheme4PS, opt)
	if err != nil {
		t.Fatalf("NewDevice(%s): %v", backend, err)
	}
	var arrival int64
	for i := 0; i < 64; i++ {
		req := trace.Request{Arrival: arrival, LBA: uint64(i * 64), Size: 16 << 10, Op: trace.Write}
		res, err := dev.Submit(req)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		arrival = res.Finish
	}
	return dev
}

// TestSealRoundTrip: a sealed snapshot restores to a device whose state —
// metrics, wear, injector position — matches the original, on both gob
// layouts (eMMC and UFS), and the envelope self-describes the backend.
func TestSealRoundTrip(t *testing.T) {
	for _, backend := range []storage.Backend{storage.BackendEMMC, storage.BackendUFS} {
		t.Run(string(backend), func(t *testing.T) {
			dev := sealTestDevice(t, backend)
			sealed, info, err := storage.Seal(dev)
			if err != nil {
				t.Fatalf("Seal: %v", err)
			}
			if info.Backend != backend {
				t.Errorf("sealed backend = %q, want %q", info.Backend, backend)
			}
			if len(info.Digest) != 64 {
				t.Errorf("digest %q is not hex sha256", info.Digest)
			}
			if info.PayloadBytes <= 0 || int(info.PayloadBytes) >= len(sealed) {
				t.Errorf("payload bytes %d out of range for %d sealed bytes", info.PayloadBytes, len(sealed))
			}

			got, gotInfo, err := core.RestoreSealed("test-device", bytes.NewReader(sealed))
			if err != nil {
				t.Fatalf("RestoreSealed: %v", err)
			}
			if gotInfo.Digest != info.Digest {
				t.Errorf("restored digest %q != sealed %q", gotInfo.Digest, info.Digest)
			}
			if got.Caps().Backend != backend {
				t.Errorf("restored Caps().Backend = %q, want %q", got.Caps().Backend, backend)
			}
			if got.Metrics() != dev.Metrics() {
				t.Errorf("restored metrics diverge:\n got %+v\nwant %+v", got.Metrics(), dev.Metrics())
			}
			if got.Wear(0) != dev.Wear(0) {
				t.Errorf("restored wear diverges: got %+v want %+v", got.Wear(0), dev.Wear(0))
			}
			if got.FaultDraws() != dev.FaultDraws() {
				t.Errorf("restored injector position = %d draws, want %d", got.FaultDraws(), dev.FaultDraws())
			}
			if got.LastActivity() != dev.LastActivity() {
				t.Errorf("restored LastActivity = %d, want %d", got.LastActivity(), dev.LastActivity())
			}
		})
	}
}

// TestSealDeterministic: sealing the same device state twice yields the
// same bytes and digest — the property content addressing stands on.
func TestSealDeterministic(t *testing.T) {
	dev := sealTestDevice(t, storage.BackendEMMC)
	a, ai, err := storage.Seal(dev)
	if err != nil {
		t.Fatal(err)
	}
	b, bi, err := storage.Seal(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("sealing the same state twice produced different bytes")
	}
	if ai.Digest != bi.Digest {
		t.Errorf("digests diverge: %q vs %q", ai.Digest, bi.Digest)
	}
}

// TestSealDiagnostics pins the one-line failure contract: truncation names
// the device id and the byte offset, corruption names the payload range and
// both digests, and a bad backend name lists the valid ones — all before
// any gob decoding.
func TestSealDiagnostics(t *testing.T) {
	dev := sealTestDevice(t, storage.BackendEMMC)
	sealed, _, err := storage.Seal(dev)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		_, _, err := storage.ReadSeal(bytes.NewReader(sealed[:len(sealed)/2]), "d12345")
		if err == nil {
			t.Fatal("half a snapshot restored without error")
		}
		for _, want := range []string{"d12345", "truncated at byte"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("truncation error %q does not mention %q", err, want)
			}
		}
	})

	t.Run("corrupt-payload", func(t *testing.T) {
		bad := append([]byte(nil), sealed...)
		bad[len(bad)/2] ^= 0xff // flip a payload bit
		_, _, err := storage.ReadSeal(bytes.NewReader(bad), "d12345")
		if err == nil {
			t.Fatal("corrupt snapshot restored without error")
		}
		for _, want := range []string{"d12345", "digest mismatch", "bytes"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("corruption error %q does not mention %q", err, want)
			}
		}
	})

	t.Run("not-sealed", func(t *testing.T) {
		_, _, err := storage.ReadSeal(strings.NewReader("this is not a snapshot at all"), "")
		if err == nil || !strings.Contains(err.Error(), "bad magic") {
			t.Errorf("garbage stream error = %v, want a bad-magic diagnostic", err)
		}
	})

	t.Run("unknown-backend", func(t *testing.T) {
		sealedBad, _, err := storage.SealPayload("emmc", []byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		// Rewrite the backend name in place ("emmc" -> "xmmc").
		sealedBad[10] = 'x'
		_, _, err = storage.ReadSeal(bytes.NewReader(sealedBad), "")
		if err == nil || !strings.Contains(err.Error(), "unknown device") {
			t.Errorf("unknown-backend error = %v, want the ParseBackend diagnostic", err)
		}
	})
}
