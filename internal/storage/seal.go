package storage

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
)

// A sealed snapshot wraps a Device.Snapshot gob payload in a self-describing
// envelope, so a restore can dispatch on the backend that wrote it and
// verify the bytes before gob ever sees them. Bare gob streams fail deep
// inside decode with errors that name neither the device nor the damage;
// the seal turns corruption and truncation into one-line diagnostics naming
// the device id and the byte offset.
//
// Layout (all integers big-endian):
//
//	offset 0   8 bytes  magic "EMSEAL1\n"
//	offset 8   1 byte   envelope version (1)
//	offset 9   1 byte   backend name length n
//	offset 10  n bytes  backend name ("emmc", "sd", "ufs")
//	10+n       8 bytes  payload length
//	18+n       payload  the backend's Snapshot gob
//	18+n+len   32 bytes SHA-256 of the payload
//
// The payload digest is also the snapshot's content address: identical
// device state seals to identical bytes, so a content-addressed store
// dedups forks of the same aged device for free.

// sealMagic opens every sealed snapshot; sealVersion is the envelope
// layout revision.
var sealMagic = [8]byte{'E', 'M', 'S', 'E', 'A', 'L', '1', '\n'}

const sealVersion = 1

// sealDigestLen is the trailing SHA-256 length.
const sealDigestLen = sha256.Size

// SealInfo describes a sealed snapshot without decoding its payload.
type SealInfo struct {
	// Backend names the device implementation that wrote the payload; a
	// restore dispatches on it instead of trusting the caller.
	Backend Backend
	// Digest is the hex SHA-256 of the payload — the snapshot's content
	// address.
	Digest string
	// PayloadBytes is the gob payload length.
	PayloadBytes int64
}

// Seal archives dev's snapshot inside the sealed envelope and returns the
// sealed bytes plus their description. The payload is buffered to compute
// the digest; device snapshots are megabytes, not gigabytes, so the copy is
// cheap next to the replay that produced the state.
func Seal(dev Device) ([]byte, SealInfo, error) {
	var payload bytes.Buffer
	if err := dev.Snapshot(&payload); err != nil {
		return nil, SealInfo{}, err
	}
	backend := dev.Caps().Backend
	return SealPayload(backend, payload.Bytes())
}

// SealPayload wraps an already-encoded snapshot payload for backend in the
// sealed envelope.
func SealPayload(backend Backend, payload []byte) ([]byte, SealInfo, error) {
	name := string(backend)
	if name == "" {
		name = string(BackendEMMC)
	}
	if len(name) > 255 {
		return nil, SealInfo{}, fmt.Errorf("storage: backend name %q too long to seal", name)
	}
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, len(sealMagic)+2+len(name)+8+len(payload)+sealDigestLen)
	out = append(out, sealMagic[:]...)
	out = append(out, sealVersion, byte(len(name)))
	out = append(out, name...)
	out = binary.BigEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	out = append(out, sum[:]...)
	return out, SealInfo{
		Backend:      Backend(name),
		Digest:       hex.EncodeToString(sum[:]),
		PayloadBytes: int64(len(payload)),
	}, nil
}

// ReadSeal parses and verifies a sealed snapshot stream, returning its
// description and the verified payload. id names the device in
// diagnostics ("" reads as "snapshot"): truncation reports the byte offset
// where the stream ended, a digest mismatch reports the payload byte range
// and both digests — one line each, before any gob decoding runs.
func ReadSeal(r io.Reader, id string) (SealInfo, []byte, error) {
	if id == "" {
		id = "snapshot"
	}
	var off int64
	need := func(buf []byte, what string) error {
		n, err := io.ReadFull(r, buf)
		off += int64(n)
		if err != nil {
			return fmt.Errorf("storage: %s: sealed snapshot truncated at byte %d reading %s: %w", id, off, what, err)
		}
		return nil
	}

	var head [10]byte // magic + version + backend length
	if err := need(head[:], "header"); err != nil {
		return SealInfo{}, nil, err
	}
	if !bytes.Equal(head[:8], sealMagic[:]) {
		return SealInfo{}, nil, fmt.Errorf("storage: %s: not a sealed snapshot (bad magic at byte 0)", id)
	}
	if head[8] != sealVersion {
		return SealInfo{}, nil, fmt.Errorf("storage: %s: sealed snapshot version %d (want %d)", id, head[8], sealVersion)
	}
	name := make([]byte, int(head[9]))
	if err := need(name, "backend name"); err != nil {
		return SealInfo{}, nil, err
	}
	backend, err := ParseBackend(string(name))
	if err != nil {
		return SealInfo{}, nil, fmt.Errorf("storage: %s: sealed snapshot names %w", id, err)
	}

	var lenBuf [8]byte
	if err := need(lenBuf[:], "payload length"); err != nil {
		return SealInfo{}, nil, err
	}
	payloadLen := binary.BigEndian.Uint64(lenBuf[:])
	const maxPayload = 1 << 32 // 4 GiB: far above any real snapshot, below a corrupt length
	if payloadLen > maxPayload {
		return SealInfo{}, nil, fmt.Errorf("storage: %s: sealed snapshot claims %d payload bytes (corrupt length at byte %d)", id, payloadLen, off-8)
	}

	payloadStart := off
	payload := make([]byte, payloadLen)
	if err := need(payload, "payload"); err != nil {
		return SealInfo{}, nil, err
	}
	var stored [sealDigestLen]byte
	if err := need(stored[:], "digest"); err != nil {
		return SealInfo{}, nil, err
	}
	sum := sha256.Sum256(payload)
	if sum != stored {
		// Full digests, not prefixes: a flip near the end of the trailer
		// would make truncated digests print identically.
		return SealInfo{}, nil, fmt.Errorf("storage: %s: snapshot payload digest mismatch over bytes %d..%d (stored %x, computed %x)",
			id, payloadStart, payloadStart+int64(payloadLen), stored[:], sum[:])
	}
	return SealInfo{
		Backend:      backend,
		Digest:       hex.EncodeToString(sum[:]),
		PayloadBytes: int64(payloadLen),
	}, payload, nil
}
