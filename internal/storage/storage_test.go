package storage

import (
	"sort"
	"strings"
	"testing"
)

func TestParseBackend(t *testing.T) {
	cases := []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"", BackendEMMC, true}, // empty = the pre-backend default
		{"emmc", BackendEMMC, true},
		{"EMMC", BackendEMMC, true}, // case-insensitive
		{"sd", BackendSD, true},
		{"ufs", BackendUFS, true},
		{"UFS", BackendUFS, true},
		{"floppy", "", false},
		{"emmc ", "", false}, // no trimming: reject sloppy input loudly
	}
	for _, c := range cases {
		got, err := ParseBackend(c.in)
		if c.ok {
			if err != nil || got != c.want {
				t.Errorf("ParseBackend(%q) = %q, %v; want %q", c.in, got, err, c.want)
			}
			continue
		}
		if err == nil {
			t.Errorf("ParseBackend(%q) accepted, want error", c.in)
			continue
		}
		msg := err.Error()
		if strings.Contains(msg, "\n") {
			t.Errorf("ParseBackend(%q) error is not one line: %q", c.in, msg)
		}
		for _, b := range Backends() {
			if !strings.Contains(msg, b) {
				t.Errorf("ParseBackend(%q) error %q does not list %q", c.in, msg, b)
			}
		}
	}
}

func TestBackendsSorted(t *testing.T) {
	b := Backends()
	if !sort.StringsAreSorted(b) {
		t.Errorf("Backends() = %v, want sorted", b)
	}
	if len(b) != 3 {
		t.Errorf("Backends() = %v, want the three built-ins", b)
	}
}

func TestMetricsRatios(t *testing.T) {
	var zero Metrics
	if zero.NoWaitRatio() != 0 || zero.MeanServiceNs() != 0 || zero.MeanResponseNs() != 0 {
		t.Error("zero-served metrics must report zero ratios, not NaN")
	}
	m := Metrics{Served: 4, NoWait: 3, SumServiceNs: 400, SumResponseNs: 800}
	if got := m.NoWaitRatio(); got != 0.75 {
		t.Errorf("NoWaitRatio = %v, want 0.75", got)
	}
	if got := m.MeanServiceNs(); got != 100 {
		t.Errorf("MeanServiceNs = %v, want 100", got)
	}
	if got := m.MeanResponseNs(); got != 200 {
		t.Errorf("MeanResponseNs = %v, want 200", got)
	}
}
