// Package cliutil holds the option structs, flag bindings, and error
// helpers shared by the CLIs (emmcsim, experiments) and the emmcd server's
// JSON spec decoder. A flag and its JSON field are two views of the same
// struct field here, so they cannot drift.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"emmcio/internal/faults"
	"emmcio/internal/telemetry"
)

// FoldError renders err as a single line. Replay errors can be multi-line
// aggregates (errors.Join across sweep jobs); the first line names the
// failure and the rest is noise at the CLI, so it is folded into a count.
func FoldError(err error) string {
	msg := err.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = fmt.Sprintf("%s (+%d more lines)", msg[:i], strings.Count(msg[i:], "\n"))
	}
	return msg
}

// Fatal prints a one-line "tool: diagnosis" to stderr and exits 1.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, FoldError(err))
	os.Exit(1)
}

// Observability is the shared telemetry-export flag set: -metrics, -trace,
// -trace-buffer, and the -j worker width every sweep-running command takes.
type Observability struct {
	MetricsPath string
	TracePath   string
	TraceBuffer int
	Workers     int

	reg    *telemetry.Registry
	tracer *telemetry.Tracer
}

// Bind registers the shared flags on fs.
func (o *Observability) Bind(fs *flag.FlagSet) {
	fs.StringVar(&o.MetricsPath, "metrics", "", "write Prometheus text-format metrics here")
	fs.StringVar(&o.TracePath, "trace", "", "write a Chrome trace_event JSON (Perfetto-loadable) here")
	fs.IntVar(&o.TraceBuffer, "trace-buffer", telemetry.DefaultTracerCapacity, "tracer ring-buffer capacity in events")
	fs.IntVar(&o.Workers, "j", 0, "worker pool width (0 = GOMAXPROCS); results are identical at any width")
}

// Registry returns the metrics registry, created on first call when
// -metrics was passed; nil otherwise (observability off unless exported).
func (o *Observability) Registry() *telemetry.Registry {
	if o.MetricsPath != "" && o.reg == nil {
		o.reg = telemetry.NewRegistry()
	}
	return o.reg
}

// Tracer returns the span tracer, created on first call when -trace was
// passed; nil otherwise.
func (o *Observability) Tracer() *telemetry.Tracer {
	if o.TracePath != "" && o.tracer == nil {
		cap := o.TraceBuffer
		if cap <= 0 {
			cap = telemetry.DefaultTracerCapacity
		}
		o.tracer = telemetry.NewTracer(cap)
	}
	return o.tracer
}

// Flush writes the requested export files (noting each on stderr) and the
// human-readable telemetry summary to out. It is a no-op when neither
// export flag was passed.
func (o *Observability) Flush(out io.Writer) error {
	if o.MetricsPath != "" {
		if err := writeFile(o.MetricsPath, o.Registry().WritePrometheus); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", o.MetricsPath)
	}
	if o.TracePath != "" {
		if err := writeFile(o.TracePath, o.Tracer().WriteChromeTrace); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "chrome trace written to %s (open in ui.perfetto.dev)\n", o.TracePath)
	}
	if o.reg != nil || o.tracer != nil {
		return telemetry.WriteSummary(out, o.reg, o.tracer)
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FaultFlags is the shared fault-injection flag pair (-faults,
// -fault-seed).
type FaultFlags struct {
	Rate float64
	Seed uint64

	fs *flag.FlagSet
}

// Bind registers the fault flags on fs.
func (f *FaultFlags) Bind(fs *flag.FlagSet) {
	f.fs = fs
	fs.Float64Var(&f.Rate, "faults", 0, "fault-injection rate multiplier (0 = perfect hardware)")
	fs.Uint64Var(&f.Seed, "fault-seed", 1, "fault-injection decision seed (requires -faults > 0)")
}

// Config validates the fault flags up front, before any trace is loaded or
// device built, so a bad value is a one-line usage error instead of a
// mid-replay failure. A -fault-seed without fault injection enabled is
// almost certainly a typo'd invocation, so it is rejected too.
func (f *FaultFlags) Config() (*faults.Config, error) {
	seedSet := false
	if f.fs != nil {
		f.fs.Visit(func(fl *flag.Flag) {
			if fl.Name == "fault-seed" {
				seedSet = true
			}
		})
	}
	return FaultConfig(f.Rate, f.Seed, seedSet)
}

// FaultConfig builds and validates a fault-injection config from a rate,
// a seed, and whether the seed was set explicitly. It is the one
// validation path behind both the CLI flags and the server's JSON specs.
func FaultConfig(rate float64, seed uint64, seedSet bool) (*faults.Config, error) {
	if rate == 0 {
		if seedSet {
			return nil, fmt.Errorf("fault seed set but fault injection is off; pass a fault rate > 0")
		}
		return nil, nil
	}
	if seed == 0 {
		seed = 1
	}
	cfg := &faults.Config{Seed: seed, Rate: rate}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}
