package cliutil

import (
	"fmt"

	"emmcio/internal/experiments"
)

// SweepShard is one serializable unit of a sharded sweep: the parent
// SweepSpec narrowed to a single named sweep and, for sweeps with a
// per-trace axis, a contiguous roster subset. A shard's Spec is an
// ordinary SweepSpec — POSTable to any emmcd worker's /v1/sweeps or
// runnable in process through SweepSpec.Run — so the distributed fabric
// needs no second wire format.
type SweepShard struct {
	// ID is the shard's plan-order index across the whole sharded sweep;
	// results merge back in ID order regardless of completion order.
	ID int `json:"id"`
	// Entry is the index into the parent spec's Sweeps list this shard
	// belongs to; consecutive shards sharing an Entry merge row-wise.
	Entry int `json:"entry"`
	// Sweep is the one named sweep this shard runs.
	Sweep string `json:"sweep"`
	// Spec is the self-contained narrowed spec.
	Spec SweepSpec `json:"spec"`
}

// ShardSweep splits spec into plan-order shards. Sweeps with a per-trace
// axis (experiments.SweepTraceAxis) split into roster chunks of at most
// tracesPerShard traces each (<= 0 means 1, the finest grain); sweeps
// without one become a single atomic shard.
//
// Determinism: a trace-axis shard's replays depend only on (trace,
// scheme, options, seed) — never on plan position — so the row-wise merge
// of shard results in ID order is bit-identical to the unsharded sweep.
// Sweeps whose cells do depend on plan position (faultsweep mixes the
// plan index into per-cell fault seeds) report no axis and stay atomic.
func ShardSweep(spec SweepSpec, tracesPerShard int) ([]SweepShard, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if tracesPerShard <= 0 {
		tracesPerShard = 1
	}
	var shards []SweepShard
	for entry, name := range spec.Sweeps {
		axis := experiments.SweepTraceAxis(name)
		if len(axis) == 0 {
			shards = append(shards, newShard(spec, len(shards), entry, name, spec.Traces))
			continue
		}
		roster := spec.Traces
		if len(roster) == 0 {
			// The unsharded sweep would fan over the full default axis;
			// the chunks must cover exactly that, in the same order.
			roster = axis
		}
		for lo := 0; lo < len(roster); lo += tracesPerShard {
			hi := min(lo+tracesPerShard, len(roster))
			shards = append(shards, newShard(spec, len(shards), entry, name, roster[lo:hi]))
		}
	}
	return shards, nil
}

// newShard narrows parent to one sweep and roster subset. The spec is
// copied so shards never alias the parent's (or each other's) slices.
func newShard(parent SweepSpec, id, entry int, name string, traces []string) SweepShard {
	spec := parent
	spec.Sweeps = []string{name}
	spec.Traces = append([]string(nil), traces...)
	return SweepShard{ID: id, Entry: entry, Sweep: name, Spec: spec}
}

// MergeShardResults folds per-shard results back into the unsharded
// sweep's []SweepResult. results must be indexed like shards, which must
// be in ID order (as ShardSweep returns them); each shard contributes
// exactly one SweepResult. Shards sharing an Entry — the chunks of one
// per-trace sweep — merge by appending table rows in plan order, which
// reproduces the unsharded render byte-for-byte because each chunk's rows
// are exactly the full sweep's rows for its roster slice.
func MergeShardResults(shards []SweepShard, results [][]SweepResult) ([]SweepResult, error) {
	if len(results) != len(shards) {
		return nil, fmt.Errorf("cliutil: %d shard results for %d shards", len(results), len(shards))
	}
	var out []SweepResult
	lastEntry := -1
	for i, sh := range shards {
		res := results[i]
		if len(res) != 1 {
			return nil, fmt.Errorf("cliutil: shard %d (%s) returned %d sweep results, want 1", sh.ID, sh.Sweep, len(res))
		}
		cur := res[0]
		if cur.Name != sh.Sweep {
			return nil, fmt.Errorf("cliutil: shard %d returned sweep %q, want %q", sh.ID, cur.Name, sh.Sweep)
		}
		if sh.Entry != lastEntry {
			out = append(out, cur)
			lastEntry = sh.Entry
			continue
		}
		prev := &out[len(out)-1]
		if len(cur.Tables) != len(prev.Tables) {
			return nil, fmt.Errorf("cliutil: shard %d (%s) rendered %d tables, earlier chunks rendered %d",
				sh.ID, sh.Sweep, len(cur.Tables), len(prev.Tables))
		}
		for ti, tbl := range cur.Tables {
			if err := prev.Tables[ti].AppendRows(tbl); err != nil {
				return nil, fmt.Errorf("cliutil: merging shard %d (%s): %w", sh.ID, sh.Sweep, err)
			}
		}
	}
	return out, nil
}
