package cliutil

import (
	"flag"
	"fmt"
	"runtime/debug"
)

// Build identification, shared by every CLI's -version flag and the emmcd
// server's emmcd_build_info gauge, so a metrics scrape or a recorded
// BENCH_*.json trajectory point can always be tied back to the build that
// produced it.

// BuildVersion reports the module version and Go toolchain version baked
// into the running binary by runtime/debug.ReadBuildInfo. Binaries built
// from a source checkout report "devel" plus the VCS revision when the
// build recorded one; go-run and test binaries report "devel".
func BuildVersion() (version, goVersion string) {
	version, goVersion = "devel", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, goVersion
	}
	goVersion = bi.GoVersion
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		version = v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if version == "devel" && rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		version = "devel+" + rev
		if dirty {
			version += "-dirty"
		}
	}
	return version, goVersion
}

// VersionLine renders the one-line -version output: tool, module version,
// and toolchain.
func VersionLine(tool string) string {
	v, gv := BuildVersion()
	return fmt.Sprintf("%s %s (%s)", tool, v, gv)
}

// VersionFlag registers the standard -version flag on fs and returns its
// value pointer; mains check it right after flag.Parse.
func VersionFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print build version and exit")
}
