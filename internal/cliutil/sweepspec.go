package cliutil

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"strings"

	"emmcio/internal/core"
	"emmcio/internal/experiments"
	"emmcio/internal/report"
	"emmcio/internal/storage"
	"emmcio/internal/telemetry"
	"emmcio/internal/workload"
)

// SweepSpec describes a named-experiment job for the emmcd server: which
// sweeps to run, on what seed and worker width, under what fault regime,
// optionally narrowed to a trace roster. It shares the fault validation
// path with the CLIs' -faults/-fault-seed flags.
type SweepSpec struct {
	// Sweeps names the experiment sweeps to run, in order
	// (experiments.SweepNames lists the choices).
	Sweeps []string `json:"sweeps"`
	// Seed drives trace generation (0 = the repository's canonical seed).
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds the sweep worker pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Faults is the fault-injection rate applied to every replay
	// (0 = perfect hardware).
	Faults float64 `json:"faults,omitempty"`
	// FaultSeed is the injection decision seed (requires Faults > 0).
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// Traces, when non-empty, narrows per-trace sweeps to this roster
	// (see experiments.RunSweepOn).
	Traces []string `json:"traces,omitempty"`
	// FromDevice runs the sweep's replays on forks of the archived device
	// snapshot with this id instead of fresh devices — the aged-device fast
	// path. Requires a device source (SetDeviceSource) in the process that
	// runs the sweep; the coordinator pre-pushes the snapshot to workers.
	FromDevice string `json:"from_device,omitempty"`
	// DeviceSpec selects the storage backend every replay in the sweep runs
	// against (-device / "device"); unknown names 400 before queueing.
	DeviceSpec

	source DeviceSource
}

// SetDeviceSource attaches the snapshot source FromDevice resolves
// against. It does not travel with the spec's JSON form; struct copies
// (the coordinator's shard fan-out) preserve it.
func (s *SweepSpec) SetDeviceSource(src DeviceSource) { s.source = src }

// DeviceSnapshot fetches the sealed snapshot bytes FromDevice names — what
// the coordinator pre-pushes to its workers before submitting shards. It
// fails fast when no source is configured or the id is unknown.
func (s *SweepSpec) DeviceSnapshot() ([]byte, error) {
	if s.source == nil {
		return nil, fmt.Errorf("sweep from device %q: no device store configured", s.FromDevice)
	}
	return s.source.OpenDevice(s.FromDevice)
}

// BindFlags registers the spec's fields as CLI flags on fs — the
// coordinator CLI's interface; the JSON tags above remain emmcd's. The
// fault-seed default of 0 means "unset", matching the JSON semantics
// (FaultConfig treats a zero seed with a non-zero rate as seed 1).
func (s *SweepSpec) BindFlags(fs *flag.FlagSet) {
	fs.Var(csvValue{&s.Sweeps}, "sweeps",
		"comma-separated sweeps to run ("+strings.Join(experiments.SweepNames(), ", ")+")")
	fs.Var(csvValue{&s.Traces}, "traces",
		"comma-separated trace roster narrowing per-trace sweeps (empty = every trace)")
	fs.Uint64Var(&s.Seed, "seed", workload.DefaultSeed, "workload generation seed")
	fs.IntVar(&s.Workers, "j", 0, "per-sweep worker pool width (0 = GOMAXPROCS)")
	fs.Float64Var(&s.Faults, "faults", 0, "fault-injection rate multiplier (0 = perfect hardware)")
	fs.Uint64Var(&s.FaultSeed, "fault-seed", 0, "fault-injection decision seed (requires -faults > 0; 0 = unset)")
	fs.StringVar(&s.FromDevice, "from-device", "", "run sweep replays on forks of this archived device snapshot")
	s.DeviceSpec.BindFlags(fs)
}

// csvValue adapts a []string field to flag.Value as a comma-separated
// list; an empty argument clears the list.
type csvValue struct{ dst *[]string }

func (v csvValue) String() string {
	if v.dst == nil {
		return ""
	}
	return strings.Join(*v.dst, ",")
}

func (v csvValue) Set(s string) error {
	if s == "" {
		*v.dst = nil
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	*v.dst = out
	return nil
}

// Normalize fills defaulted fields in place.
func (s *SweepSpec) Normalize() {
	if s.Seed == 0 {
		s.Seed = workload.DefaultSeed
	}
}

// Validate normalizes the spec and rejects unknown sweep names, unknown
// traces, and bad fault values, so the server can 400 before queueing.
func (s *SweepSpec) Validate() error {
	s.Normalize()
	if len(s.Sweeps) == 0 {
		return fmt.Errorf("no sweeps named; known sweeps: %s", strings.Join(experiments.SweepNames(), ", "))
	}
	for _, name := range s.Sweeps {
		if !experiments.KnownSweep(name) {
			return fmt.Errorf("unknown sweep %q; known sweeps: %s", name, strings.Join(experiments.SweepNames(), ", "))
		}
	}
	reg := workload.DefaultRegistry()
	for _, tr := range s.Traces {
		if reg.Lookup(tr) == nil {
			return fmt.Errorf("unknown trace %q", tr)
		}
	}
	if _, err := FaultConfig(s.Faults, s.FaultSeed, s.FaultSeed != 0); err != nil {
		return err
	}
	if _, err := s.Backend(); err != nil {
		return err
	}
	if s.FromDevice != "" && s.Device != "" {
		return fmt.Errorf("from_device and device are mutually exclusive: the backend is sealed inside snapshot %q",
			s.FromDevice)
	}
	return nil
}

// Env builds the experiment environment the spec describes, bounded by
// ctx: seed, worker width, fault regime. Every sweep launched through the
// returned env aborts when ctx does.
func (s *SweepSpec) Env(ctx context.Context) (*experiments.Env, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	fc, err := FaultConfig(s.Faults, s.FaultSeed, s.FaultSeed != 0)
	if err != nil {
		return nil, err
	}
	env := experiments.NewEnv(s.Seed)
	env.Workers = s.Workers
	env.Faults = fc
	if err := s.DeviceSpec.ApplyEnv(env); err != nil {
		return nil, err
	}
	if s.FromDevice != "" {
		// Fetch the sealed bytes once; every fork decodes its own copy, so
		// concurrent sweep replays share nothing.
		sealed, err := s.DeviceSnapshot()
		if err != nil {
			return nil, err
		}
		id := s.FromDevice
		env.Fork = func() (storage.Device, error) {
			dev, _, err := core.RestoreSealed(id, bytes.NewReader(sealed))
			return dev, err
		}
	}
	env.Ctx = ctx
	return env, nil
}

// SweepResult is one named sweep's rendered tables — the unit of a sweep
// job's result. The emmcd server marshals a []SweepResult as the job
// payload and the coordinator decodes, merges, and re-marshals the same
// type, which makes "sharded equals single-process" a byte comparison.
type SweepResult struct {
	Name   string          `json:"name"`
	Tables []*report.Table `json:"tables"`
}

// Run executes every named sweep in order on an env bounded by ctx.
// defaultWorkers applies when the spec does not set its own worker width
// (the server passes its per-job pool width here). This is the one sweep
// execution path shared by the emmcd server's sweep jobs and the
// coordinator's degrade-to-local fallback, so a shard produces the same
// bytes whether it ran on a remote worker or in process.
func (s *SweepSpec) Run(ctx context.Context, defaultWorkers int, reg *telemetry.Registry, tracer *telemetry.Tracer) ([]SweepResult, error) {
	env, err := s.Env(ctx)
	if err != nil {
		return nil, err
	}
	if s.Workers == 0 {
		env.Workers = defaultWorkers
	}
	env.Telemetry = reg
	env.Tracer = tracer
	out := make([]SweepResult, 0, len(s.Sweeps))
	for _, name := range s.Sweeps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tables, err := experiments.RunSweepOn(env, name, s.Traces)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepResult{Name: name, Tables: tables})
	}
	return out, nil
}
