package cliutil

import (
	"context"
	"fmt"
	"strings"

	"emmcio/internal/experiments"
	"emmcio/internal/workload"
)

// SweepSpec describes a named-experiment job for the emmcd server: which
// sweeps to run, on what seed and worker width, under what fault regime,
// optionally narrowed to a trace roster. It shares the fault validation
// path with the CLIs' -faults/-fault-seed flags.
type SweepSpec struct {
	// Sweeps names the experiment sweeps to run, in order
	// (experiments.SweepNames lists the choices).
	Sweeps []string `json:"sweeps"`
	// Seed drives trace generation (0 = the repository's canonical seed).
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds the sweep worker pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Faults is the fault-injection rate applied to every replay
	// (0 = perfect hardware).
	Faults float64 `json:"faults,omitempty"`
	// FaultSeed is the injection decision seed (requires Faults > 0).
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// Traces, when non-empty, narrows per-trace sweeps to this roster
	// (see experiments.RunSweepOn).
	Traces []string `json:"traces,omitempty"`
	// DeviceSpec selects the storage backend every replay in the sweep runs
	// against (-device / "device"); unknown names 400 before queueing.
	DeviceSpec
}

// Normalize fills defaulted fields in place.
func (s *SweepSpec) Normalize() {
	if s.Seed == 0 {
		s.Seed = workload.DefaultSeed
	}
}

// Validate normalizes the spec and rejects unknown sweep names, unknown
// traces, and bad fault values, so the server can 400 before queueing.
func (s *SweepSpec) Validate() error {
	s.Normalize()
	if len(s.Sweeps) == 0 {
		return fmt.Errorf("no sweeps named; known sweeps: %s", strings.Join(experiments.SweepNames(), ", "))
	}
	for _, name := range s.Sweeps {
		if !experiments.KnownSweep(name) {
			return fmt.Errorf("unknown sweep %q; known sweeps: %s", name, strings.Join(experiments.SweepNames(), ", "))
		}
	}
	reg := workload.DefaultRegistry()
	for _, tr := range s.Traces {
		if reg.Lookup(tr) == nil {
			return fmt.Errorf("unknown trace %q", tr)
		}
	}
	if _, err := FaultConfig(s.Faults, s.FaultSeed, s.FaultSeed != 0); err != nil {
		return err
	}
	if _, err := s.Backend(); err != nil {
		return err
	}
	return nil
}

// Env builds the experiment environment the spec describes, bounded by
// ctx: seed, worker width, fault regime. Every sweep launched through the
// returned env aborts when ctx does.
func (s *SweepSpec) Env(ctx context.Context) (*experiments.Env, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	fc, err := FaultConfig(s.Faults, s.FaultSeed, s.FaultSeed != 0)
	if err != nil {
		return nil, err
	}
	env := experiments.NewEnv(s.Seed)
	env.Workers = s.Workers
	env.Faults = fc
	if err := s.DeviceSpec.ApplyEnv(env); err != nil {
		return nil, err
	}
	env.Ctx = ctx
	return env, nil
}
