package cliutil

import (
	"flag"

	"emmcio/internal/core"
	"emmcio/internal/experiments"
	"emmcio/internal/storage"
)

// DeviceSpec selects the storage backend a replay or sweep runs against,
// plus the UFS-only sizing knobs. It is embedded in ReplaySpec and
// SweepSpec so the -device flag and the "device" JSON field are one field
// with one validation path: storage.ParseBackend, whose one-line error
// (unknown name plus the valid list) both the CLI and the server surface
// verbatim before any job runs.
type DeviceSpec struct {
	// Device names the backend: "emmc" (default), "sd", or "ufs".
	Device string `json:"device,omitempty"`
	// UFSQueues is the UFS submission queue count (0 = backend default).
	UFSQueues int `json:"ufs_queues,omitempty"`
	// UFSQueueDepth is the per-queue command slot count (0 = backend
	// default of 32).
	UFSQueueDepth int `json:"ufs_queue_depth,omitempty"`
	// UFSBoosterMB sizes the SLC write booster in MB (0 = backend default
	// of 64 MB, negative = booster disabled).
	UFSBoosterMB int `json:"ufs_booster_mb,omitempty"`
}

// BindFlags registers the device-selection flags on fs.
func (d *DeviceSpec) BindFlags(fs *flag.FlagSet) {
	fs.StringVar(&d.Device, "device", "", "storage backend: emmc (default), sd, or ufs")
	fs.IntVar(&d.UFSQueues, "ufs-queues", 0, "UFS submission queue count (0 = default 1)")
	fs.IntVar(&d.UFSQueueDepth, "ufs-queue-depth", 0, "UFS command slots per queue (0 = default 32)")
	fs.IntVar(&d.UFSBoosterMB, "ufs-booster", 0, "UFS SLC write-booster size in MB (0 = default 64, negative = disabled)")
}

// Backend resolves the device name. The error is a single line listing
// the valid backends; callers print it verbatim.
func (d *DeviceSpec) Backend() (storage.Backend, error) {
	return storage.ParseBackend(d.Device)
}

// Apply writes the spec's backend selection into opt, rejecting unknown
// device names.
func (d *DeviceSpec) Apply(opt *core.Options) error {
	b, err := d.Backend()
	if err != nil {
		return err
	}
	opt.Backend = b
	opt.UFSQueues = d.UFSQueues
	opt.UFSQueueDepth = d.UFSQueueDepth
	opt.UFSBoosterBytes = d.boosterBytes()
	return nil
}

// ApplyEnv writes the spec's backend selection into an experiment env, so
// every replay job the env launches runs on the chosen device. A spec with
// no device named leaves the env untouched (zero-value env = eMMC).
func (d *DeviceSpec) ApplyEnv(env *experiments.Env) error {
	if d.Device == "" {
		return nil
	}
	b, err := d.Backend()
	if err != nil {
		return err
	}
	env.Backend = b
	env.UFSQueues = d.UFSQueues
	env.UFSQueueDepth = d.UFSQueueDepth
	env.UFSBoosterBytes = d.boosterBytes()
	return nil
}

// boosterBytes maps the MB-denominated knob to core.Options' byte field:
// 0 keeps the backend default, negative disables the booster.
func (d *DeviceSpec) boosterBytes() int64 {
	switch {
	case d.UFSBoosterMB < 0:
		return -1
	case d.UFSBoosterMB > 0:
		return int64(d.UFSBoosterMB) << 20
	}
	return 0
}
