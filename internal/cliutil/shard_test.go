package cliutil

import (
	"context"
	"encoding/json"
	"testing"

	"emmcio/internal/paper"
)

func TestShardSweepPerTraceAxis(t *testing.T) {
	spec := SweepSpec{Sweeps: []string{"casestudy"}, Traces: []string{paper.Idle, paper.CallIn, paper.CallOut}}

	shards, err := ShardSweep(spec, 1)
	if err != nil {
		t.Fatalf("ShardSweep: %v", err)
	}
	if len(shards) != 3 {
		t.Fatalf("got %d shards, want 3 (one per trace)", len(shards))
	}
	for i, sh := range shards {
		if sh.ID != i || sh.Entry != 0 || sh.Sweep != "casestudy" {
			t.Errorf("shard %d = {ID:%d Entry:%d Sweep:%q}, want plan-order casestudy shard", i, sh.ID, sh.Entry, sh.Sweep)
		}
		if len(sh.Spec.Sweeps) != 1 || len(sh.Spec.Traces) != 1 || sh.Spec.Traces[0] != spec.Traces[i] {
			t.Errorf("shard %d spec = %+v, want single sweep over trace %q", i, sh.Spec, spec.Traces[i])
		}
	}

	// Coarser grain: ceil(3/2) chunks, preserving roster order.
	shards, err = ShardSweep(spec, 2)
	if err != nil {
		t.Fatalf("ShardSweep: %v", err)
	}
	if len(shards) != 2 || len(shards[0].Spec.Traces) != 2 || len(shards[1].Spec.Traces) != 1 {
		t.Fatalf("tracesPerShard=2 over 3 traces: got %d shards, want 2+1 chunking", len(shards))
	}

	// An empty roster fans over the sweep's full default axis.
	full, err := ShardSweep(SweepSpec{Sweeps: []string{"casestudy"}}, 1)
	if err != nil {
		t.Fatalf("ShardSweep: %v", err)
	}
	if len(full) != len(paper.IndividualApps) {
		t.Errorf("full-roster casestudy: %d shards, want %d (one per app)", len(full), len(paper.IndividualApps))
	}
}

func TestShardSweepAtomicSweepStaysWhole(t *testing.T) {
	// faultsweep mixes the plan index into per-cell seeds, so splitting it
	// would change results; it must come back as exactly one shard.
	spec := SweepSpec{Sweeps: []string{"faultsweep"}}
	shards, err := ShardSweep(spec, 1)
	if err != nil {
		t.Fatalf("ShardSweep: %v", err)
	}
	if len(shards) != 1 {
		t.Fatalf("faultsweep sharded into %d pieces, must stay atomic", len(shards))
	}
}

func TestShardSweepRejectsBadSpec(t *testing.T) {
	if _, err := ShardSweep(SweepSpec{Sweeps: []string{"nope"}}, 1); err == nil {
		t.Error("unknown sweep name accepted")
	}
	if _, err := ShardSweep(SweepSpec{}, 1); err == nil {
		t.Error("empty spec accepted")
	}
}

// TestMergeShardResultsMatchesUnsharded is the determinism contract at the
// unit level: run a sweep whole, then shard it, run every shard through
// the same SweepSpec.Run path a worker job uses — round-tripping each
// result through JSON like the wire would — and the plan-order merge must
// marshal to the unsharded run's exact bytes.
func TestMergeShardResultsMatchesUnsharded(t *testing.T) {
	spec := SweepSpec{
		Sweeps: []string{"casestudy"},
		Traces: []string{paper.Idle, paper.CallIn, paper.CallOut},
	}
	ctx := context.Background()

	whole := spec
	want, err := whole.Run(ctx, 0, nil, nil)
	if err != nil {
		t.Fatalf("unsharded run: %v", err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("marshal unsharded: %v", err)
	}

	shards, err := ShardSweep(spec, 1)
	if err != nil {
		t.Fatalf("ShardSweep: %v", err)
	}
	results := make([][]SweepResult, len(shards))
	for i, sh := range shards {
		res, err := sh.Spec.Run(ctx, 0, nil, nil)
		if err != nil {
			t.Fatalf("shard %d run: %v", i, err)
		}
		// Simulate the worker hop: marshal, then decode as the coordinator
		// would. Byte identity must survive the round trip.
		wire, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("shard %d marshal: %v", i, err)
		}
		var decoded []SweepResult
		if err := json.Unmarshal(wire, &decoded); err != nil {
			t.Fatalf("shard %d unmarshal: %v", i, err)
		}
		results[i] = decoded
	}

	merged, err := MergeShardResults(shards, results)
	if err != nil {
		t.Fatalf("MergeShardResults: %v", err)
	}
	gotJSON, err := json.Marshal(merged)
	if err != nil {
		t.Fatalf("marshal merged: %v", err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("sharded merge diverged from unsharded run:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

func TestMergeShardResultsRejectsMismatch(t *testing.T) {
	spec := SweepSpec{Sweeps: []string{"casestudy"}, Traces: []string{paper.Idle, paper.CallIn}}
	shards, err := ShardSweep(spec, 1)
	if err != nil {
		t.Fatalf("ShardSweep: %v", err)
	}
	if _, err := MergeShardResults(shards, make([][]SweepResult, 1)); err == nil {
		t.Error("result/shard count mismatch accepted")
	}
	bad := [][]SweepResult{
		{{Name: "casestudy"}},
		{{Name: "wrong"}},
	}
	if _, err := MergeShardResults(shards, bad); err == nil {
		t.Error("sweep-name mismatch accepted")
	}
}
