package cliutil

import (
	"context"
	"flag"
	"fmt"
	"strings"

	"emmcio/internal/core"
	"emmcio/internal/emmc"
	"emmcio/internal/faults"
	"emmcio/internal/ftl"
	"emmcio/internal/runner"
	"emmcio/internal/storage"
	"emmcio/internal/telemetry"
	"emmcio/internal/trace"
	"emmcio/internal/workload"
)

// ReplaySpec is the one description of "replay this workload on these
// devices" shared by the emmcsim flags and the emmcd server's POST bodies.
// The zero value means "all schemes, §V case-study device, default seed";
// Normalize fills those defaults in explicitly.
type ReplaySpec struct {
	// App names a built-in application workload (Tables I/II).
	App string `json:"app"`
	// Seed drives trace generation (0 = the repository's canonical seed).
	Seed uint64 `json:"seed,omitempty"`
	// Scheme is 4PS, 8PS, HPS, or all.
	Scheme string `json:"scheme,omitempty"`
	// GC is the collection policy: foreground or idle.
	GC string `json:"gc,omitempty"`
	// Wear is the leveling policy: round-robin, none, or static.
	Wear string `json:"wear,omitempty"`
	// BufferMB sizes the device RAM buffer (0 = disabled, as in the paper).
	BufferMB int `json:"buffer_mb,omitempty"`
	// Power enables the low-power mode model.
	Power bool `json:"power,omitempty"`
	// Sessions replays the trace N times back to back (device ages).
	Sessions int `json:"sessions,omitempty"`
	// Scale compresses arrival times by this factor (<1 raises the rate).
	Scale float64 `json:"scale,omitempty"`
	// Shrink divides per-plane block count (GC-pressure studies).
	Shrink int `json:"shrink,omitempty"`
	// Faults is the fault-injection rate multiplier (0 = perfect hardware).
	Faults float64 `json:"faults,omitempty"`
	// FaultSeed is the fault-injection decision seed (requires Faults > 0;
	// 0 in JSON means unset).
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// FromDevice forks the archived device snapshot with this id instead of
	// building a fresh device: the replay restores the aged state (backend,
	// wear, injector position) and resumes on top of it. Requires a single
	// concrete scheme — the one the device was aged under — and a device
	// source (SetDeviceSource). Faults > 0 replaces the archived fault
	// regime with a fresh injector; 0 keeps the archived one.
	FromDevice string `json:"from_device,omitempty"`

	// DeviceSpec selects the storage backend (-device / "device") and its
	// UFS-only sizing knobs; its fields promote into the JSON body.
	DeviceSpec

	fs     *flag.FlagSet
	source DeviceSource
}

// SetDeviceSource attaches the snapshot source FromDevice ids resolve
// against. The source does not travel with the spec's JSON form — each
// process that runs from_device jobs attaches its own store.
func (s *ReplaySpec) SetDeviceSource(src DeviceSource) { s.source = src }

// BindFlags registers every spec field as its CLI flag on fs. The flag
// names and defaults are the public interface of cmd/emmcsim; the JSON
// tags above are the public interface of emmcd — both read and write the
// same fields.
func (s *ReplaySpec) BindFlags(fs *flag.FlagSet) {
	s.fs = fs
	fs.StringVar(&s.App, "app", "", "built-in application workload to replay")
	fs.Uint64Var(&s.Seed, "seed", workload.DefaultSeed, "workload generation seed")
	fs.StringVar(&s.Scheme, "scheme", "all", "4PS, 8PS, HPS, or all")
	fs.StringVar(&s.GC, "gc", "foreground", "GC policy: foreground or idle")
	fs.StringVar(&s.Wear, "wear", "round-robin", "wear leveling: round-robin, none, or static")
	fs.IntVar(&s.BufferMB, "buffer", 0, "device RAM buffer size in MB (0 = disabled, as in the paper)")
	fs.BoolVar(&s.Power, "power", false, "enable the low-power mode model")
	fs.IntVar(&s.Sessions, "sessions", 1, "replay the trace N times back to back (device ages)")
	fs.Float64Var(&s.Scale, "scale", 1.0, "compress arrival times by this factor (<1 raises the rate)")
	fs.IntVar(&s.Shrink, "shrink", 0, "divide per-plane block count (GC-pressure studies)")
	fs.Float64Var(&s.Faults, "faults", 0, "fault-injection rate multiplier (0 = perfect hardware)")
	fs.Uint64Var(&s.FaultSeed, "fault-seed", 1, "fault-injection decision seed (requires -faults > 0)")
	fs.StringVar(&s.FromDevice, "from-device", "", "fork this archived device snapshot instead of building a fresh device")
	s.DeviceSpec.BindFlags(fs)
}

// Normalize fills defaulted fields in place, so a JSON body that omits
// them behaves exactly like a CLI invocation that leaves the flags at
// their defaults. It is idempotent; call it once before fanning a spec
// out to concurrent replay jobs.
func (s *ReplaySpec) Normalize() {
	if s.Seed == 0 {
		s.Seed = workload.DefaultSeed
	}
	if s.Scheme == "" {
		s.Scheme = "all"
	}
	if s.GC == "" {
		s.GC = "foreground"
	}
	if s.Wear == "" {
		s.Wear = "round-robin"
	}
	if s.Sessions <= 0 {
		s.Sessions = 1
	}
	if s.Scale == 0 {
		s.Scale = 1.0
	}
}

// Schemes resolves the scheme selector into the Table V scheme list.
func (s *ReplaySpec) Schemes() ([]core.Scheme, error) {
	switch strings.ToUpper(s.Scheme) {
	case "", "ALL":
		return core.Schemes, nil
	case "4PS":
		return []core.Scheme{core.Scheme4PS}, nil
	case "8PS":
		return []core.Scheme{core.Scheme8PS}, nil
	case "HPS":
		return []core.Scheme{core.SchemeHPS}, nil
	default:
		return nil, fmt.Errorf("unknown scheme %q", s.Scheme)
	}
}

// FaultConfig validates the spec's fault fields. Bound to flags, "seed
// set" means the -fault-seed flag was passed; decoded from JSON it means
// the field was non-zero.
func (s *ReplaySpec) FaultConfig() (*faults.Config, error) {
	seedSet := s.FaultSeed != 0
	if s.fs != nil {
		seedSet = false
		s.fs.Visit(func(fl *flag.Flag) {
			if fl.Name == "fault-seed" {
				seedSet = true
			}
		})
	}
	return FaultConfig(s.Faults, s.FaultSeed, seedSet)
}

// DeviceOptions builds the device configuration: the §V case-study
// defaults with the spec's overrides applied.
func (s *ReplaySpec) DeviceOptions() (core.Options, error) {
	opt := core.CaseStudyOptions()
	opt.PowerSaving = s.Power
	opt.RAMBufferBytes = int64(s.BufferMB) << 20
	opt.ScaleBlocks = s.Shrink
	fc, err := s.FaultConfig()
	if err != nil {
		return core.Options{}, err
	}
	opt.Faults = fc
	switch s.GC {
	case "", "foreground":
		opt.GCPolicy = emmc.GCForeground
	case "idle":
		opt.GCPolicy = emmc.GCIdle
	default:
		return core.Options{}, fmt.Errorf("unknown GC policy %q", s.GC)
	}
	switch s.Wear {
	case "", "round-robin":
		opt.Wear = ftl.WearRoundRobin
	case "none":
		opt.Wear = ftl.WearNone
	case "static":
		opt.Wear = ftl.WearStatic
	default:
		return core.Options{}, fmt.Errorf("unknown wear policy %q", s.Wear)
	}
	if err := s.DeviceSpec.Apply(&opt); err != nil {
		return core.Options{}, err
	}
	return opt, nil
}

// Profile resolves the spec's application against reg (nil = the default
// registry).
func (s *ReplaySpec) Profile(reg *workload.Registry) (*workload.Profile, error) {
	if s.App == "" {
		return nil, fmt.Errorf("no application named; set app")
	}
	if reg == nil {
		reg = workload.DefaultRegistry()
	}
	p := reg.Lookup(s.App)
	if p == nil {
		return nil, fmt.Errorf("unknown application %q", s.App)
	}
	return p, nil
}

// Validate normalizes the spec and rejects anything a replay would choke
// on — unknown application, scheme, GC or wear policy, bad fault or scale
// values — so the server can 400 before a job is ever queued.
func (s *ReplaySpec) Validate(reg *workload.Registry) error {
	s.Normalize()
	if _, err := s.Profile(reg); err != nil {
		return err
	}
	if _, err := s.Schemes(); err != nil {
		return err
	}
	if _, err := s.DeviceOptions(); err != nil {
		return err
	}
	if s.Scale <= 0 {
		return fmt.Errorf("scale must be > 0, got %v", s.Scale)
	}
	if s.Shrink < 0 {
		return fmt.Errorf("shrink must be >= 0, got %d", s.Shrink)
	}
	if s.FromDevice != "" {
		if schemes, _ := s.Schemes(); len(schemes) != 1 {
			return fmt.Errorf("from_device %q requires one concrete scheme (the one the device was aged under), got %q",
				s.FromDevice, s.Scheme)
		}
		if s.Device != "" {
			return fmt.Errorf("from_device and device are mutually exclusive: the backend is sealed inside snapshot %q",
				s.FromDevice)
		}
	}
	return nil
}

// PrepareStream applies the spec's stream transforms — arrival scaling,
// session repetition, timestamp clearing — in the same order the CLI
// always has, so CLI and server replays see identical request streams.
func (s *ReplaySpec) PrepareStream(st trace.Stream) trace.Stream {
	if s.Scale != 0 && s.Scale != 1.0 {
		st = trace.ScaleStream(st, s.Scale)
	}
	if s.Sessions > 1 {
		st = trace.Repeat(st, s.Sessions, 1_000_000_000)
	}
	return trace.ClearStream(st)
}

// Replay runs the spec's workload on one scheme: fresh stream, fresh (or
// forked, with FromDevice) device, streaming replay bounded by ctx. The
// spec must be normalized. sink, when non-nil, observes every completed
// request.
func (s *ReplaySpec) Replay(ctx context.Context, scheme core.Scheme, reg *telemetry.Registry, tracer *telemetry.Tracer, sink func(trace.Request) error) (core.Metrics, error) {
	p, err := s.Profile(nil)
	if err != nil {
		return core.Metrics{}, err
	}
	var dev storage.Device
	if s.FromDevice != "" {
		dev, _, err = ForkDevice(s.source, s.FromDevice)
		if err != nil {
			return core.Metrics{}, err
		}
		fc, err := s.FaultConfig()
		if err != nil {
			return core.Metrics{}, err
		}
		if fc != nil {
			if err := dev.SetFaultConfig(fc); err != nil {
				return core.Metrics{}, err
			}
		}
	} else {
		opt, err := s.DeviceOptions()
		if err != nil {
			return core.Metrics{}, err
		}
		dev, err = core.NewDevice(scheme, opt)
		if err != nil {
			return core.Metrics{}, err
		}
	}
	st := s.PrepareStream(p.Stream(s.Seed))
	if s.FromDevice != "" {
		// Resume after the archived history: the fork's clock is already at
		// its last activity, so the new session starts an idle gap later —
		// the same shift emmcsim's -load path applies.
		st = trace.ShiftStream(st, dev.LastActivity()+1_000_000_000)
	}
	return core.ReplayStreamSinkContext(ctx, dev, scheme, st, reg, tracer, sink)
}

// SchemeResult pairs one scheme with its replay metrics; it is the unit of
// both emmcsim's -json output and the server's replay-job results, which
// makes "server equals CLI" a byte comparison.
type SchemeResult struct {
	Scheme  string       `json:"scheme"`
	Metrics core.Metrics `json:"metrics"`
}

// Run replays the spec on every selected scheme on a worker pool of the
// given width and returns results in scheme order — bit-identical at any
// width, and bit-identical between the CLI and the server, since both end
// at the same stream, options, and replay loop.
func (s *ReplaySpec) Run(ctx context.Context, workers int, reg *telemetry.Registry, tracer *telemetry.Tracer) ([]SchemeResult, error) {
	s.Normalize()
	if err := s.Validate(nil); err != nil {
		return nil, err
	}
	schemes, err := s.Schemes()
	if err != nil {
		return nil, err
	}
	metrics, err := runner.MapContext(ctx, runner.New(workers).Observe(reg), "replay", schemes,
		func(ctx context.Context, _ int, sc core.Scheme) (core.Metrics, error) {
			return s.Replay(ctx, sc, reg, tracer, nil)
		})
	if err != nil {
		return nil, err
	}
	out := make([]SchemeResult, len(schemes))
	for i, sc := range schemes {
		out[i] = SchemeResult{Scheme: sc.String(), Metrics: metrics[i]}
	}
	return out, nil
}
