package cliutil

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"strings"
	"testing"

	"emmcio/internal/paper"
	"emmcio/internal/workload"
)

func TestFoldError(t *testing.T) {
	if got := FoldError(errors.New("just one line")); got != "just one line" {
		t.Errorf("FoldError = %q", got)
	}
	got := FoldError(errors.New("first line\nsecond\nthird"))
	if !strings.HasPrefix(got, "first line") || !strings.Contains(got, "2 more line") {
		t.Errorf("FoldError on multi-line = %q, want first line plus a fold note", got)
	}
	if strings.Contains(got, "\n") {
		t.Errorf("FoldError left a newline in %q", got)
	}
}

func TestFaultConfig(t *testing.T) {
	if _, err := FaultConfig(0, 7, true); err == nil {
		t.Error("seed without -faults rate should be rejected")
	}
	cfg, err := FaultConfig(0, 0, false)
	if err != nil || cfg != nil {
		t.Errorf("rate 0 = (%v, %v), want nil config", cfg, err)
	}
	cfg, err = FaultConfig(1e-6, 0, false)
	if err != nil {
		t.Fatalf("valid rate: %v", err)
	}
	if cfg.Seed == 0 {
		t.Error("unset fault seed should default to a non-zero seed")
	}
}

// TestFlagAndJSONViewsAgree pins the spec's core guarantee: a spec decoded
// from JSON with omitted fields normalizes to the same configuration as one
// parsed from an empty flag command line.
func TestFlagAndJSONViewsAgree(t *testing.T) {
	fromFlags := &ReplaySpec{}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fromFlags.BindFlags(fs)
	if err := fs.Parse([]string{"-app", paper.Twitter}); err != nil {
		t.Fatal(err)
	}

	fromJSON := &ReplaySpec{App: paper.Twitter}
	fromJSON.Normalize()

	if fromFlags.Seed != fromJSON.Seed ||
		fromFlags.Scheme != fromJSON.Scheme ||
		fromFlags.GC != fromJSON.GC ||
		fromFlags.Wear != fromJSON.Wear ||
		fromFlags.Sessions != fromJSON.Sessions ||
		fromFlags.Scale != fromJSON.Scale {
		t.Errorf("flag defaults %+v and normalized JSON %+v disagree", fromFlags, fromJSON)
	}
	optsA, errA := fromFlags.DeviceOptions()
	optsB, errB := fromJSON.DeviceOptions()
	if errA != nil || errB != nil {
		t.Fatalf("DeviceOptions: %v / %v", errA, errB)
	}
	if optsA != optsB {
		t.Errorf("device options disagree:\nflags %+v\njson  %+v", optsA, optsB)
	}
}

func TestSchemes(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"all", 3, true},
		{"ALL", 3, true},
		{"4ps", 1, true},
		{"8PS", 1, true},
		{"hps", 1, true},
		{"16PS", 0, false},
	}
	for _, tc := range cases {
		s := &ReplaySpec{Scheme: tc.in}
		got, err := s.Schemes()
		if tc.ok != (err == nil) || len(got) != tc.want {
			t.Errorf("Schemes(%q) = %v, %v; want %d schemes, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec ReplaySpec
	}{
		{"missing app", ReplaySpec{}},
		{"unknown app", ReplaySpec{App: "NoSuchApp"}},
		{"unknown scheme", ReplaySpec{App: paper.Twitter, Scheme: "16PS"}},
		{"unknown gc", ReplaySpec{App: paper.Twitter, GC: "eager"}},
		{"unknown wear", ReplaySpec{App: paper.Twitter, Wear: "perfect"}},
		{"negative scale", ReplaySpec{App: paper.Twitter, Scale: -2}},
		{"negative shrink", ReplaySpec{App: paper.Twitter, Shrink: -1}},
		{"fault seed only", ReplaySpec{App: paper.Twitter, FaultSeed: 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.spec.Validate(nil); err == nil {
				t.Errorf("Validate(%+v) accepted a bad spec", tc.spec)
			}
		})
	}
	good := ReplaySpec{App: paper.Twitter}
	if err := good.Validate(nil); err != nil {
		t.Errorf("Validate minimal spec: %v", err)
	}
}

func TestPrepareStreamSessionsAndScale(t *testing.T) {
	// stats drains a prepared stream and reports request count plus the
	// last arrival timestamp.
	stats := func(s *ReplaySpec) (int, int64) {
		p := workload.DefaultRegistry().Lookup(paper.CallIn)
		st := s.PrepareStream(p.Stream(workload.DefaultSeed))
		n, last := 0, int64(0)
		for {
			req, ok, err := st.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return n, last
			}
			last = req.Arrival
			n++
		}
	}
	base, baseLast := stats(&ReplaySpec{})
	if base == 0 || baseLast == 0 {
		t.Fatalf("empty spec produced %d requests ending at %d", base, baseLast)
	}
	if got, _ := stats(&ReplaySpec{Sessions: 3}); got != 3*base {
		t.Errorf("3 sessions = %d requests, want %d", got, 3*base)
	}
	// Scale compresses inter-arrival times, not the request count.
	gotN, gotLast := stats(&ReplaySpec{Scale: 0.5})
	if gotN != base || gotLast >= baseLast {
		t.Errorf("scale 0.5 = %d requests ending at %d, want %d requests ending before %d",
			gotN, gotLast, base, baseLast)
	}
}

// TestRunIsDeterministic replays the same spec twice and expects identical
// metrics — the property the server leans on for CLI-parity.
func TestRunIsDeterministic(t *testing.T) {
	spec := ReplaySpec{App: paper.CallIn, Scheme: "all"}
	a, err := spec.Run(context.Background(), 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Run(context.Background(), 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("scheme counts = %d, %d; want 3", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("scheme %s differs between runs:\n%+v\n%+v", a[i].Scheme, a[i].Metrics, b[i].Metrics)
		}
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := ReplaySpec{App: paper.CallIn}
	if _, err := spec.Run(ctx, 0, nil, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("Run on canceled context = %v, want context.Canceled", err)
	}
}

func TestSweepSpecValidate(t *testing.T) {
	bad := []SweepSpec{
		{},
		{Sweeps: []string{"fig99"}},
		{Sweeps: []string{"tables"}, Traces: []string{"NoSuchApp"}},
		{Sweeps: []string{"tables"}, FaultSeed: 3},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted a bad sweep spec", s)
		}
	}
	good := SweepSpec{Sweeps: []string{"Tables", "faultsweep"}, Traces: []string{paper.Movie}}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate good sweep spec: %v", err)
	}
}

func TestSweepSpecEnv(t *testing.T) {
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "v")
	s := SweepSpec{Sweeps: []string{"tables"}, Workers: 2, Faults: 1e-7}
	env, err := s.Env(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if env.Ctx != ctx {
		t.Error("Env did not attach the caller context")
	}
	if env.Seed != workload.DefaultSeed {
		t.Errorf("Seed = %d, want default %d", env.Seed, workload.DefaultSeed)
	}
	if env.Faults == nil {
		t.Error("fault config not attached")
	}
	if _, err := (&SweepSpec{Sweeps: []string{"nope"}}).Env(ctx); err == nil {
		t.Error("Env accepted an invalid spec")
	}
}

// TestUnknownDeviceDiagnostic: an unknown -device must fail before any
// replay starts, with a single-line message that names the bad value and
// lists the valid backends — identically on the flag path (cmd/emmcsim)
// and the JSON path (the emmcd server's 400 body).
func TestUnknownDeviceDiagnostic(t *testing.T) {
	check := func(t *testing.T, err error) {
		t.Helper()
		if err == nil {
			t.Fatal("unknown device accepted")
		}
		msg := err.Error()
		if strings.Contains(msg, "\n") {
			t.Errorf("diagnostic is not one line: %q", msg)
		}
		if !strings.Contains(msg, `"floppy"`) {
			t.Errorf("diagnostic %q does not name the bad device", msg)
		}
		for _, want := range []string{"emmc", "sd", "ufs"} {
			if !strings.Contains(msg, want) {
				t.Errorf("diagnostic %q does not list valid backend %q", msg, want)
			}
		}
	}

	t.Run("replay flag path", func(t *testing.T) {
		var spec ReplaySpec
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		spec.BindFlags(fs)
		if err := fs.Parse([]string{"-app", paper.Twitter, "-device", "floppy"}); err != nil {
			t.Fatal(err)
		}
		check(t, spec.Validate(nil))
	})
	t.Run("replay json path", func(t *testing.T) {
		var spec ReplaySpec
		if err := json.Unmarshal([]byte(`{"app":"Twitter","device":"floppy"}`), &spec); err != nil {
			t.Fatal(err)
		}
		check(t, spec.Validate(nil))
	})
	t.Run("sweep json path", func(t *testing.T) {
		var spec SweepSpec
		if err := json.Unmarshal([]byte(`{"sweeps":["casestudy"],"device":"floppy"}`), &spec); err != nil {
			t.Fatal(err)
		}
		check(t, spec.Validate())
	})

	// The valid names all parse, and the device field round-trips JSON.
	var spec ReplaySpec
	if err := json.Unmarshal([]byte(`{"app":"Twitter","device":"ufs","ufs_queue_depth":16}`), &spec); err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(nil); err != nil {
		t.Fatalf("valid device rejected: %v", err)
	}
	opt, err := spec.DeviceOptions()
	if err != nil {
		t.Fatal(err)
	}
	if string(opt.Backend) != "ufs" || opt.UFSQueueDepth != 16 {
		t.Errorf("device fields did not reach core.Options: %+v", opt)
	}
}
