package cliutil

import (
	"bytes"
	"fmt"

	"emmcio/internal/core"
	"emmcio/internal/storage"
)

// DeviceSource resolves a device id to its sealed snapshot bytes. The
// devstore.Store satisfies it directly; the emmcd server and the emmcc
// coordinator hand their stores to specs via SetDeviceSource, so a
// from_device job restores an archived aged device instead of building a
// fresh one. The id is whatever the source names devices by — for the
// snapshot store, the content-derived "d"+digest-prefix form.
type DeviceSource interface {
	OpenDevice(id string) ([]byte, error)
}

// ForkDevice restores a fresh device instance from src's archived snapshot.
// Every call returns an independent fork: the archived bytes are decoded
// anew, so concurrent forks share nothing. A nil source is the "this
// process has no device store" error, reported at run time rather than
// validation time because specs travel (CLI → server → coordinator) and
// only the process that finally runs the job knows its store.
func ForkDevice(src DeviceSource, id string) (storage.Device, storage.SealInfo, error) {
	if src == nil {
		return nil, storage.SealInfo{}, fmt.Errorf("forking device %q: no device store configured", id)
	}
	sealed, err := src.OpenDevice(id)
	if err != nil {
		return nil, storage.SealInfo{}, err
	}
	return core.RestoreSealed(id, bytes.NewReader(sealed))
}
