package androidstack

import "fmt"

// JournalMode selects SQLite's durability mechanism.
type JournalMode int

const (
	// Rollback is the classic rollback-journal (DELETE) mode — Android's
	// default at the paper's time, and the source of Lee & Won's
	// "journaling of journal" amplification.
	Rollback JournalMode = iota
	// WAL is write-ahead-logging mode, the optimization that work proposes.
	WAL
)

// String names the mode.
func (m JournalMode) String() string {
	if m == WAL {
		return "wal"
	}
	return "rollback"
}

// DB models one SQLite database file on the FS.
type DB struct {
	fs   *FS
	name string
	mode JournalMode

	// WAL state.
	walFrames    int
	checkpointAt int // frames triggering a checkpoint
	walBytes     int64

	// Stats.
	transactions int
	checkpoints  int
	logicalBytes int64 // database pages the application logically changed
}

// PageBytes is SQLite's page size, matching the 4 KB file-system block —
// the configuration Android uses.
const PageBytes = blockBytes

// OpenDB creates (if needed) and opens a database.
func OpenDB(fs *FS, name string, mode JournalMode) (*DB, error) {
	if !fs.Exists(name) {
		if err := fs.Create(name); err != nil {
			return nil, err
		}
		// Database header page.
		if err := fs.Write(name, 0, PageBytes); err != nil {
			return nil, err
		}
		if err := fs.Fsync(name); err != nil {
			return nil, err
		}
	}
	db := &DB{fs: fs, name: name, mode: mode, checkpointAt: 256}
	if mode == WAL {
		if err := db.ensureWAL(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func (db *DB) walName() string { return db.name + "-wal" }

func (db *DB) journalName() string { return db.name + "-journal" }

func (db *DB) ensureWAL() error {
	if db.fs.Exists(db.walName()) {
		return nil
	}
	return db.fs.Create(db.walName())
}

// Stats summarizes database activity.
type DBStats struct {
	Transactions int
	Checkpoints  int
}

// Stats returns accumulated statistics.
func (db *DB) Stats() DBStats { return DBStats{db.transactions, db.checkpoints} }

// LogicalBytes returns the database-page payload the application changed —
// the denominator of stack-level write amplification.
func (db *DB) LogicalBytes() int64 { return db.logicalBytes }

// Exec runs one write transaction touching the given database pages.
// The page numbers select where in the database file the writes land
// (re-touching the same pages models a hot table).
func (db *DB) Exec(pages []int64) error {
	if len(pages) == 0 {
		return fmt.Errorf("androidstack: empty transaction")
	}
	db.transactions++
	db.logicalBytes += int64(len(pages)) * PageBytes
	switch db.mode {
	case Rollback:
		return db.execRollback(pages)
	case WAL:
		return db.execWAL(pages)
	}
	return fmt.Errorf("androidstack: unknown journal mode")
}

// Query runs one read-only transaction touching the given database pages.
// Reads go through the OS page cache, so only cold pages reach the block
// layer — the mechanism that keeps block-level smartphone traces
// write-dominant (Characteristic 1).
func (db *DB) Query(pages []int64) error {
	if len(pages) == 0 {
		return fmt.Errorf("androidstack: empty query")
	}
	for _, p := range pages {
		if err := db.fs.CachedRead(db.name, p*PageBytes, PageBytes); err != nil {
			return err
		}
	}
	return nil
}

// execRollback is the DELETE-journal protocol:
//  1. create the rollback journal, write its header and the old content of
//     every page to be modified, fsync it (journal data + Ext4 metadata
//     commit);
//  2. write the new page content into the database file, fsync it;
//  3. delete the journal (another Ext4 metadata commit).
//
// One small transaction thus costs two fsyncs and a metadata-only commit —
// the multiplication Lee & Won measured.
func (db *DB) execRollback(pages []int64) error {
	j := db.journalName()
	if err := db.fs.Create(j); err != nil {
		return err
	}
	// Header + one old-page copy per modified page.
	if err := db.fs.Write(j, 0, PageBytes); err != nil {
		return err
	}
	for i := range pages {
		if err := db.fs.Write(j, int64(i+1)*PageBytes, PageBytes); err != nil {
			return err
		}
	}
	if err := db.fs.Fsync(j); err != nil {
		return err
	}
	// New content into the database file.
	for _, p := range pages {
		if err := db.fs.Write(db.name, p*PageBytes, PageBytes); err != nil {
			return err
		}
	}
	if err := db.fs.Fsync(db.name); err != nil {
		return err
	}
	// Drop the journal: directory metadata commit.
	return db.fs.Delete(j)
}

// execWAL appends one frame per page plus a commit frame to the WAL and
// fsyncs it once; when the WAL grows past the checkpoint threshold the
// frames are copied back into the database file.
func (db *DB) execWAL(pages []int64) error {
	w := db.walName()
	for range pages {
		// Frame = 24-byte header + page; modeled as one block.
		if err := db.fs.Write(w, db.walBytes, PageBytes); err != nil {
			return err
		}
		db.walBytes += PageBytes
		db.walFrames++
	}
	if err := db.fs.Fsync(w); err != nil {
		return err
	}
	if db.walFrames >= db.checkpointAt {
		return db.checkpoint(pages)
	}
	return nil
}

// checkpoint copies WAL frames into the database and resets the log.
func (db *DB) checkpoint(lastPages []int64) error {
	db.checkpoints++
	// Read the WAL back and write the pages into the database file. The
	// page set is approximated by the recent working set.
	if err := db.fs.Read(db.walName(), 0, db.walBytes); err != nil {
		return err
	}
	for _, p := range lastPages {
		if err := db.fs.Write(db.name, p*PageBytes, PageBytes); err != nil {
			return err
		}
	}
	if err := db.fs.Fsync(db.name); err != nil {
		return err
	}
	db.walFrames = 0
	db.walBytes = 0
	return nil
}
