package androidstack

import (
	"testing"

	"emmcio/internal/stats"
	"emmcio/internal/trace"
)

func newStack(t *testing.T) (*FS, *TraceSink) {
	t.Helper()
	sink := &TraceSink{}
	return NewFS(sink), sink
}

func TestCreateWriteFsync(t *testing.T) {
	fs, sink := newStack(t)
	if err := fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("f", 0, 100); err != nil {
		t.Fatal(err)
	}
	if len(sink.Trace.Reqs) != 0 {
		t.Fatal("write emitted blocks before fsync (page cache bypassed)")
	}
	if err := fs.Fsync("f"); err != nil {
		t.Fatal(err)
	}
	// 1 data block + descriptor + >=1 metadata + commit.
	if got := len(sink.Trace.Reqs); got < 4 {
		t.Fatalf("fsync emitted %d requests, want >= 4 (data + journal txn)", got)
	}
	if err := sink.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTinyWriteAmplification(t *testing.T) {
	fs, _ := newStack(t)
	fs.Create("f")
	fs.Write("f", 0, 100) // a 100-byte append
	fs.Fsync("f")
	s := fs.Stats()
	// 100 app bytes → >= 16 KB of block writes (data + journal).
	if s.WriteAmplification() < 100 {
		t.Fatalf("write amplification %.0fx for a 100-byte durable write; Lee&Won-style blowup expected", s.WriteAmplification())
	}
}

func TestOrderedModeDataBeforeJournal(t *testing.T) {
	fs, sink := newStack(t)
	fs.Create("f")
	fs.Write("f", 0, 4096)
	fs.Fsync("f")
	reqs := sink.Trace.Reqs
	// First request is the data block (in place), the rest the journal.
	journalStart := uint64(1) << 30 / trace.SectorSize
	if reqs[0].LBA >= journalStart && reqs[0].LBA < journalStart+(128<<20)/trace.SectorSize {
		t.Fatal("journal written before data (ordered mode violated)")
	}
	for _, r := range reqs[1:] {
		if r.LBA < journalStart {
			t.Fatal("data block inside the journal transaction")
		}
	}
}

func TestJournalIsSequential(t *testing.T) {
	fs, sink := newStack(t)
	fs.Create("f")
	for i := 0; i < 50; i++ {
		fs.Write("f", int64(i)*4096, 4096)
		fs.Fsync("f")
	}
	var journal trace.Trace
	journalStart := uint64(1) << 30 / trace.SectorSize
	journalEnd := journalStart + uint64(128)<<20/trace.SectorSize
	for _, r := range sink.Trace.Reqs {
		if r.LBA >= journalStart && r.LBA < journalEnd {
			journal.Reqs = append(journal.Reqs, r)
		}
	}
	if sp := stats.SpatialLocality(&journal); sp < 0.9 {
		t.Fatalf("journal spatial locality %.2f, want ~1 (sequential journal)", sp)
	}
}

func TestJournalWraps(t *testing.T) {
	fs, _ := newStack(t)
	fs.Create("f")
	// Push far more journal blocks than the 128 MB region holds.
	fs.journalPtr = fs.journalLen - trace.SectorsPerPage
	if err := fs.commitJournal(3); err != nil {
		t.Fatal(err)
	}
	if fs.journalPtr > fs.journalLen {
		t.Fatal("journal pointer escaped the journal region")
	}
}

func TestFSErrors(t *testing.T) {
	fs, _ := newStack(t)
	if err := fs.Write("nope", 0, 10); err == nil {
		t.Fatal("write to missing file accepted")
	}
	if err := fs.Fsync("nope"); err == nil {
		t.Fatal("fsync of missing file accepted")
	}
	if err := fs.Read("nope", 0, 10); err == nil {
		t.Fatal("read of missing file accepted")
	}
	fs.Create("f")
	if err := fs.Create("f"); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if err := fs.Write("f", 0, 0); err == nil {
		t.Fatal("zero-byte write accepted")
	}
	if err := fs.Write("f", 17<<20, 4096); err == nil {
		t.Fatal("extent overflow accepted")
	}
}

func TestDeleteEmitsMetadataCommit(t *testing.T) {
	fs, sink := newStack(t)
	fs.Create("f")
	before := len(sink.Trace.Reqs)
	if err := fs.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if len(sink.Trace.Reqs) <= before {
		t.Fatal("delete emitted no journal commit")
	}
	if fs.Exists("f") {
		t.Fatal("file still exists")
	}
}

func TestRollbackTransactionShape(t *testing.T) {
	fs, sink := newStack(t)
	db, err := OpenDB(fs, "app.db", Rollback)
	if err != nil {
		t.Fatal(err)
	}
	before := len(sink.Trace.Reqs)
	if err := db.Exec([]int64{3}); err != nil {
		t.Fatal(err)
	}
	emitted := sink.Trace.Reqs[before:]
	// One single-page transaction in rollback mode costs:
	// journal data (header+old page) + journal-file journal txn +
	// db page + db journal txn + journal-delete txn  => >= 10 block writes.
	if len(emitted) < 10 {
		t.Fatalf("rollback transaction emitted %d requests, want >= 10", len(emitted))
	}
	for _, r := range emitted {
		if r.Op != trace.Write {
			t.Fatal("rollback transaction should be all writes")
		}
	}
}

func TestWALCheaperThanRollback(t *testing.T) {
	// Stack-level write amplification: block bytes written per logical
	// database byte changed.
	waf := func(mode JournalMode) float64 {
		fs, _ := newStack(t)
		db, err := OpenDB(fs, "app.db", mode)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if err := db.Exec([]int64{int64(i % 10)}); err != nil {
				t.Fatal(err)
			}
		}
		return float64(fs.Stats().BlockBytes) / float64(db.LogicalBytes())
	}
	r := waf(Rollback)
	w := waf(WAL)
	if w >= r {
		t.Fatalf("WAL amplification %.1fx not below rollback %.1fx", w, r)
	}
	if r < 8 {
		t.Fatalf("rollback amplification %.1fx too low for the journaling-of-journal effect", r)
	}
}

func TestWALCheckpoints(t *testing.T) {
	fs, _ := newStack(t)
	db, err := OpenDB(fs, "app.db", WAL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := db.Exec([]int64{int64(i % 5)}); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats().Checkpoints == 0 {
		t.Fatal("WAL never checkpointed after 300 transactions")
	}
}

func TestStackClockMonotonic(t *testing.T) {
	fs, sink := newStack(t)
	db, _ := OpenDB(fs, "app.db", Rollback)
	fs.SetTime(1_000_000_000)
	db.Exec([]int64{1, 2})
	fs.SetTime(5_000_000_000)
	db.Exec([]int64{1})
	if err := sink.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	// SetTime backwards must not rewind.
	fs.SetTime(1)
	if fs.Now() < 5_000_000_000 {
		t.Fatal("clock went backwards")
	}
}

// The stack's emitted traffic shares the paper's block-level signature:
// write-dominant with a large single-page share (Characteristics 1 and 2).
func TestStackTrafficMatchesPaperSignature(t *testing.T) {
	fs, sink := newStack(t)
	db, _ := OpenDB(fs, "app.db", Rollback)
	for i := 0; i < 100; i++ {
		fs.SetTime(int64(i) * 50_000_000)
		db.Exec([]int64{int64(i % 20)})
	}
	tr := &sink.Trace
	writeFrac := float64(tr.WriteCount()) / float64(len(tr.Reqs))
	if writeFrac < 0.9 {
		t.Fatalf("write fraction %.2f, want write-dominant", writeFrac)
	}
	h := stats.NewHistogram(stats.SizeBounds())
	for _, r := range tr.Reqs {
		h.Add(int64(r.Size))
	}
	if p4 := h.Fractions()[0]; p4 < 0.5 {
		t.Fatalf("single-page fraction %.2f, want the Characteristic-2 shape", p4)
	}
}

func TestPageCacheServesHotReads(t *testing.T) {
	fs, sink := newStack(t)
	db, _ := OpenDB(fs, "app.db", Rollback)
	db.Exec([]int64{5})
	before := len(sink.Trace.Reqs)
	// The page just written is in the cache: querying it emits nothing.
	if err := db.Query([]int64{5}); err != nil {
		t.Fatal(err)
	}
	if len(sink.Trace.Reqs) != before {
		t.Fatal("hot query reached the block layer")
	}
	// A cold page misses and produces one read.
	if err := db.Query([]int64{999}); err != nil {
		t.Fatal(err)
	}
	if len(sink.Trace.Reqs) != before+1 {
		t.Fatalf("cold query emitted %d requests", len(sink.Trace.Reqs)-before)
	}
	// Re-querying it now hits.
	if err := db.Query([]int64{999}); err != nil {
		t.Fatal(err)
	}
	if len(sink.Trace.Reqs) != before+1 {
		t.Fatal("second cold query missed the cache")
	}
	if fs.CacheHitRate() <= 0 {
		t.Fatal("no cache hits recorded")
	}
}

func TestCachedReadCoalescesMissRuns(t *testing.T) {
	fs, sink := newStack(t)
	fs.Create("f")
	before := len(sink.Trace.Reqs)
	// 8 cold blocks: one coalesced 32 KB read, not 8 singles.
	if err := fs.CachedRead("f", 0, 8*4096); err != nil {
		t.Fatal(err)
	}
	emitted := sink.Trace.Reqs[before:]
	if len(emitted) != 1 || emitted[0].Size != 8*4096 {
		t.Fatalf("cold run emitted %+v", emitted)
	}
}

func TestDeleteInvalidatesCache(t *testing.T) {
	fs, sink := newStack(t)
	fs.Create("f")
	fs.Write("f", 0, 4096)
	fs.Fsync("f")
	fs.Delete("f")
	fs.Create("f")
	before := len(sink.Trace.Reqs)
	if err := fs.CachedRead("f", 0, 4096); err != nil {
		t.Fatal(err)
	}
	if len(sink.Trace.Reqs) == before {
		t.Fatal("read of a recreated file served from the dead file's cache")
	}
}

func TestQueryErrors(t *testing.T) {
	fs, _ := newStack(t)
	db, _ := OpenDB(fs, "app.db", WAL)
	if err := db.Query(nil); err == nil {
		t.Fatal("empty query accepted")
	}
}
