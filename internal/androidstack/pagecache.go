package androidstack

import "emmcio/internal/trace"

// pageCache is the OS page cache standing between reads and the block
// layer: Android applications re-read hot database pages from RAM, which is
// one reason the paper's block-level traces are write-dominant
// (Characteristic 1) — most reads never reach the eMMC.
type pageCache struct {
	capacity int
	table    map[cacheKey]*cacheNode
	head     *cacheNode
	tail     *cacheNode

	hits   int64
	misses int64
}

type cacheKey struct {
	file  string
	block int64
}

type cacheNode struct {
	key        cacheKey
	prev, next *cacheNode
}

func newPageCache(capBytes int64) *pageCache {
	blocks := int(capBytes / blockBytes)
	if blocks < 1 {
		return nil
	}
	return &pageCache{capacity: blocks, table: make(map[cacheKey]*cacheNode, blocks)}
}

func (c *pageCache) detach(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *pageCache) pushFront(n *cacheNode) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// probe returns whether the block is cached, allocating on miss.
func (c *pageCache) probe(file string, block int64) bool {
	k := cacheKey{file, block}
	if n, ok := c.table[k]; ok {
		c.hits++
		c.detach(n)
		c.pushFront(n)
		return true
	}
	c.misses++
	c.insert(k)
	return false
}

// fill caches a block without counting a lookup (write path population).
func (c *pageCache) fill(file string, block int64) {
	k := cacheKey{file, block}
	if n, ok := c.table[k]; ok {
		c.detach(n)
		c.pushFront(n)
		return
	}
	c.insert(k)
}

func (c *pageCache) insert(k cacheKey) {
	if len(c.table) >= c.capacity {
		evict := c.tail
		c.detach(evict)
		delete(c.table, evict.key)
	}
	n := &cacheNode{key: k}
	c.table[k] = n
	c.pushFront(n)
}

// invalidateFile drops a deleted file's blocks lazily: entries keyed by the
// old name are unreachable once the file is recreated, so eviction handles
// them; an explicit sweep keeps the accounting tight for tests.
func (c *pageCache) invalidateFile(file string) {
	for k, n := range c.table {
		if k.file == file {
			c.detach(n)
			delete(c.table, k)
		}
	}
}

// CachedRead reads [off, off+n) through the page cache: only missing
// blocks reach the block layer, and runs of consecutive misses coalesce
// into single requests.
func (f *FS) CachedRead(name string, off, n int64) error {
	fl, ok := f.files[name]
	if !ok {
		return errMissing(name)
	}
	if n <= 0 {
		return errBadLen()
	}
	if f.cache == nil {
		return f.Read(name, off, n)
	}
	first := off / blockBytes
	last := (off + n - 1) / blockBytes
	runStart := int64(-1)
	flush := func(end int64) error {
		if runStart < 0 {
			return nil
		}
		err := f.emit(trace.Request{
			LBA:  fl.base + uint64(runStart)*trace.SectorsPerPage,
			Size: uint32((end - runStart) * blockBytes),
			Op:   trace.Read,
		})
		runStart = -1
		return err
	}
	for b := first; b <= last; b++ {
		if f.cache.probe(name, b) {
			if err := flush(b); err != nil {
				return err
			}
			continue
		}
		if runStart < 0 {
			runStart = b
		}
	}
	return flush(last + 1)
}

// CacheHitRate returns the page-cache read hit fraction.
func (f *FS) CacheHitRate() float64 {
	if f.cache == nil || f.cache.hits+f.cache.misses == 0 {
		return 0
	}
	return float64(f.cache.hits) / float64(f.cache.hits+f.cache.misses)
}
