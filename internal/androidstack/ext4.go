// Package androidstack models the upper half of the paper's Fig. 1 I/O
// stack: applications talking to SQLite, SQLite talking to an Ext4-like
// journaling file system, and the file system emitting block-layer
// requests.
//
// The paper's motivation leans on Lee & Won's finding (§VI) that "the
// combined operations of SQLite and Ext4 generate unnecessarily excessive
// write operations": a tiny database insert becomes many 4 KB block writes
// through rollback journaling and file-system metadata journaling. This
// package reproduces that amplification pipeline so it can be measured
// against the block-level characteristics of §III.
package androidstack

import (
	"fmt"

	"emmcio/internal/trace"
)

// Sink receives the block-level requests the stack emits. A *trace.Trace
// collector, the blockdev stack, or a device can all stand behind it.
type Sink interface {
	Submit(req trace.Request) error
}

// TraceSink collects requests into a trace.
type TraceSink struct {
	Trace trace.Trace
}

// Submit appends the request.
func (s *TraceSink) Submit(req trace.Request) error {
	s.Trace.Reqs = append(s.Trace.Reqs, req)
	return nil
}

// Ext4-like layout constants.
const (
	blockBytes = trace.PageSize
	// syscallNs advances the clock per emitted block request, a stand-in
	// for the CPU path between requests.
	syscallNs = 50_000
)

// FS is a minimal Ext4-in-ordered-mode model: file data is written in
// place, metadata changes are journaled (descriptor + metadata blocks +
// commit, all sequential in a dedicated journal region), and fsync forces
// data first, then a journal commit — the ordered-mode rule.
type FS struct {
	sink Sink
	now  int64

	journalStart uint64 // sectors
	journalLen   uint64 // sectors
	journalPtr   uint64 // rotating allocation pointer inside the journal

	nextAlloc uint64 // sectors; simple bump allocator for file extents
	files     map[string]*file
	cache     *pageCache // OS page cache for reads (nil = uncached)

	// Stats.
	dataWrites     int
	journalWrites  int
	metadataBlocks int
	appBytes       int64 // bytes the application asked to persist
	blockBytes     int64 // bytes actually sent to the block layer
}

type file struct {
	base    uint64 // sectors
	sectors uint64 // capacity in sectors (extent)
	size    int64  // logical size in bytes
	// dirty data blocks awaiting fsync (ordered mode flushes them first).
	dirtyData []trace.Request
	// dirtyMeta counts metadata blocks (inode/bitmap) to journal on fsync.
	dirtyMeta int
}

// NewFS builds a file system over the sink. The journal occupies a 128 MB
// region, as Ext4's default journal does on a 32 GB partition.
func NewFS(sink Sink) *FS {
	return &FS{
		sink:         sink,
		journalStart: uint64(1) << 30 / trace.SectorSize,
		journalLen:   uint64(128) << 20 / trace.SectorSize,
		nextAlloc:    uint64(2) << 30 / trace.SectorSize,
		files:        make(map[string]*file),
		cache:        newPageCache(64 << 20), // a 64 MB page cache
	}
}

// errMissing and errBadLen keep the cached-read path's errors consistent
// with the rest of the file-system API.
func errMissing(name string) error { return fmt.Errorf("androidstack: %s missing", name) }
func errBadLen() error             { return fmt.Errorf("androidstack: non-positive read") }

// SetTime advances the stack clock (application think time).
func (f *FS) SetTime(now int64) {
	if now > f.now {
		f.now = now
	}
}

// Now returns the current stack clock.
func (f *FS) Now() int64 { return f.now }

// Stats summarizes file-system activity.
type FSStats struct {
	DataWrites     int
	JournalWrites  int
	MetadataBlocks int
	AppBytes       int64
	BlockBytes     int64
}

// WriteAmplification returns block bytes over application bytes.
func (s FSStats) WriteAmplification() float64 {
	if s.AppBytes == 0 {
		return 0
	}
	return float64(s.BlockBytes) / float64(s.AppBytes)
}

// Stats returns accumulated statistics.
func (f *FS) Stats() FSStats {
	return FSStats{f.dataWrites, f.journalWrites, f.metadataBlocks, f.appBytes, f.blockBytes}
}

// Create makes an empty file with a 16 MB extent.
func (f *FS) Create(name string) error {
	if _, ok := f.files[name]; ok {
		return fmt.Errorf("androidstack: %s exists", name)
	}
	ext := uint64(16) << 20 / trace.SectorSize
	f.files[name] = &file{base: f.nextAlloc, sectors: ext, dirtyMeta: 1}
	f.nextAlloc += ext
	return nil
}

// Exists reports whether the file exists.
func (f *FS) Exists(name string) bool {
	_, ok := f.files[name]
	return ok
}

// Delete removes a file; the directory/inode update is journaled metadata.
func (f *FS) Delete(name string) error {
	fl, ok := f.files[name]
	if !ok {
		return fmt.Errorf("androidstack: %s missing", name)
	}
	// Dirty metadata from the doomed file still needs a journal commit;
	// fold it into an immediate metadata-only commit.
	delete(f.files, name)
	_ = fl
	if f.cache != nil {
		f.cache.invalidateFile(name)
	}
	return f.commitJournal(1)
}

// Size returns the file's logical size.
func (f *FS) Size(name string) int64 {
	if fl, ok := f.files[name]; ok {
		return fl.size
	}
	return 0
}

// Write buffers a write of n bytes at off. Data lands in the page cache;
// block requests are emitted at fsync (ordered mode) — matching how SQLite
// drives durability.
func (f *FS) Write(name string, off, n int64) error {
	fl, ok := f.files[name]
	if !ok {
		return fmt.Errorf("androidstack: %s missing", name)
	}
	if n <= 0 {
		return fmt.Errorf("androidstack: non-positive write")
	}
	f.appBytes += n
	// Cover [off, off+n) with whole blocks.
	first := off / blockBytes
	last := (off + n - 1) / blockBytes
	blocks := last - first + 1
	need := uint64(off+n+blockBytes-1) / blockBytes * trace.SectorsPerPage
	if need > fl.sectors {
		return fmt.Errorf("androidstack: %s extent overflow", name)
	}
	req := trace.Request{
		LBA:  fl.base + uint64(first)*trace.SectorsPerPage,
		Size: uint32(blocks * blockBytes),
		Op:   trace.Write,
	}
	fl.dirtyData = append(fl.dirtyData, req)
	if f.cache != nil {
		for b := first; b <= last; b++ {
			f.cache.fill(name, b)
		}
	}
	if off+n > fl.size {
		fl.size = off + n
		fl.dirtyMeta = 1 // size change dirties the inode
	}
	return nil
}

// Read emits a read covering [off, off+n).
func (f *FS) Read(name string, off, n int64) error {
	fl, ok := f.files[name]
	if !ok {
		return fmt.Errorf("androidstack: %s missing", name)
	}
	if n <= 0 {
		return fmt.Errorf("androidstack: non-positive read")
	}
	first := off / blockBytes
	last := (off + n - 1) / blockBytes
	blocks := last - first + 1
	return f.emit(trace.Request{
		LBA:  fl.base + uint64(first)*trace.SectorsPerPage,
		Size: uint32(blocks * blockBytes),
		Op:   trace.Read,
	})
}

// Fsync forces the file durable: ordered mode writes the dirty data blocks
// first, then a journal transaction (descriptor + metadata + commit).
func (f *FS) Fsync(name string) error {
	fl, ok := f.files[name]
	if !ok {
		return fmt.Errorf("androidstack: %s missing", name)
	}
	for _, req := range fl.dirtyData {
		if err := f.emit(req); err != nil {
			return err
		}
		f.dataWrites++
	}
	fl.dirtyData = fl.dirtyData[:0]
	meta := fl.dirtyMeta
	fl.dirtyMeta = 0
	return f.commitJournal(meta)
}

// commitJournal emits one journal transaction: a descriptor block, the
// journaled metadata blocks, and a commit block — all sequential inside the
// journal region (this sequential journal traffic is a visible source of
// the traces' spatial locality).
func (f *FS) commitJournal(metaBlocks int) error {
	if metaBlocks < 1 {
		metaBlocks = 1
	}
	blocks := 1 + metaBlocks + 1
	for i := 0; i < blocks; i++ {
		if f.journalPtr+trace.SectorsPerPage > f.journalLen {
			f.journalPtr = 0
		}
		req := trace.Request{
			LBA:  f.journalStart + f.journalPtr,
			Size: blockBytes,
			Op:   trace.Write,
		}
		f.journalPtr += trace.SectorsPerPage
		if err := f.emit(req); err != nil {
			return err
		}
		f.journalWrites++
	}
	f.metadataBlocks += metaBlocks
	return nil
}

func (f *FS) emit(req trace.Request) error {
	f.now += syscallNs
	req.Arrival = f.now
	f.blockBytes += int64(req.Size)
	return f.sink.Submit(req)
}
