package mmc

import (
	"testing"
	"testing/quick"

	"emmcio/internal/trace"
)

func TestEncodeSingleRead(t *testing.T) {
	seq, err := Encode([]trace.Request{{LBA: 1000, Size: 8192, Op: trace.Read}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Commands) != 2 {
		t.Fatalf("%d commands", len(seq.Commands))
	}
	if seq.Commands[0].Opcode != CmdSetBlockCount || seq.Commands[0].Arg != 16 {
		t.Fatalf("CMD23 %+v, want count 16 blocks", seq.Commands[0])
	}
	if seq.Commands[1].Opcode != CmdReadMultiple || seq.Commands[1].Arg != 1000 {
		t.Fatalf("transfer %+v", seq.Commands[1])
	}
	if seq.Header != nil {
		t.Fatal("single read must not carry a packed header")
	}
	if seq.DataBlocks != 16 {
		t.Fatalf("data blocks %d", seq.DataBlocks)
	}
}

func TestEncodeSingleWrite(t *testing.T) {
	seq, err := Encode([]trace.Request{{LBA: 8, Size: 4096, Op: trace.Write}})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Commands[1].Opcode != CmdWriteMultiple {
		t.Fatal("write must use CMD25")
	}
}

func TestEncodePackedWrite(t *testing.T) {
	reqs := []trace.Request{
		{LBA: 0, Size: 4096, Op: trace.Write},
		{LBA: 4096, Size: 8192, Op: trace.Write},
		{LBA: 90000, Size: 4096, Op: trace.Write},
	}
	seq, err := Encode(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Header == nil || seq.Header.RW != PackedTypeWrite {
		t.Fatal("packed write needs a write header")
	}
	if len(seq.Header.Entries) != 3 {
		t.Fatalf("%d entries", len(seq.Header.Entries))
	}
	if seq.Commands[0].Arg&Cmd23Packed == 0 {
		t.Fatal("CMD23 missing PACKED flag")
	}
	// 1 header block + 8 + 16 + 8 payload blocks.
	if want := uint32(1 + 8 + 16 + 8); seq.DataBlocks != want {
		t.Fatalf("data blocks %d, want %d", seq.DataBlocks, want)
	}
}

func TestEncodeRejects(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := Encode([]trace.Request{{LBA: 0, Size: 100, Op: trace.Write}}); err == nil {
		t.Fatal("unaligned size accepted")
	}
	mixed := []trace.Request{
		{LBA: 0, Size: 4096, Op: trace.Write},
		{LBA: 100, Size: 4096, Op: trace.Read},
	}
	if _, err := Encode(mixed); err == nil {
		t.Fatal("mixed packed group accepted")
	}
	if _, err := Encode([]trace.Request{{LBA: 1 << 33, Size: 4096, Op: trace.Write}}); err == nil {
		t.Fatal("address beyond 32-bit accepted")
	}
}

func TestHeaderMarshalLayout(t *testing.T) {
	h := &PackedHeader{RW: PackedTypeWrite, Entries: []PackedEntry{
		{Blocks: 8, Addr: 0x1234},
		{Blocks: 16, Addr: 0xABCD},
	}}
	b, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0x01 || b[1] != PackedTypeWrite || b[2] != 2 {
		t.Fatalf("header prefix % x", b[:3])
	}
	if b[8] != 8 || b[12] != 0x34 || b[13] != 0x12 {
		t.Fatalf("first entry bytes % x", b[8:16])
	}
	back, err := UnmarshalPackedHeader(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if back.RW != h.RW || len(back.Entries) != 2 || back.Entries[1] != h.Entries[1] {
		t.Fatalf("round trip %+v", back)
	}
}

func TestHeaderUnmarshalRejects(t *testing.T) {
	var b [BlockSize]byte
	if _, err := UnmarshalPackedHeader(b[:10]); err == nil {
		t.Fatal("short block accepted")
	}
	if _, err := UnmarshalPackedHeader(b[:]); err == nil {
		t.Fatal("zero version accepted")
	}
	b[0] = 0x01
	b[1] = 0x07
	if _, err := UnmarshalPackedHeader(b[:]); err == nil {
		t.Fatal("bad type accepted")
	}
	b[1] = PackedTypeWrite
	b[2] = 0
	if _, err := UnmarshalPackedHeader(b[:]); err == nil {
		t.Fatal("zero entries accepted")
	}
}

func TestMarshalRejects(t *testing.T) {
	h := &PackedHeader{RW: PackedTypeWrite}
	if _, err := h.Marshal(); err == nil {
		t.Fatal("empty header accepted")
	}
	h.Entries = make([]PackedEntry, maxPackedEntries+1)
	for i := range h.Entries {
		h.Entries[i].Blocks = 1
	}
	if _, err := h.Marshal(); err == nil {
		t.Fatal("oversized header accepted")
	}
}

// Property: Encode → Decode reproduces addresses, sizes and ops for both
// single transfers and packed write groups.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		x := uint64(seed)
		count := int(n)%8 + 1
		reqs := make([]trace.Request, 0, count)
		for i := 0; i < count; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			reqs = append(reqs, trace.Request{
				LBA:  (x >> 16) & 0xffffff,
				Size: uint32((x%16 + 1)) * 4096,
				Op:   trace.Write,
			})
		}
		if count == 1 && seed%2 == 0 {
			reqs[0].Op = trace.Read
		}
		seq, err := Encode(reqs)
		if err != nil {
			return false
		}
		// A packed header must survive its own wire form.
		if seq.Header != nil {
			raw, err := seq.Header.Marshal()
			if err != nil {
				return false
			}
			back, err := UnmarshalPackedHeader(raw[:])
			if err != nil || len(back.Entries) != len(seq.Header.Entries) {
				return false
			}
			seq.Header = back
		}
		got, err := Decode(seq)
		if err != nil || len(got) != len(reqs) {
			return false
		}
		for i := range reqs {
			if got[i].LBA != reqs[i].LBA || got[i].Size != reqs[i].Size || got[i].Op != reqs[i].Op {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejects(t *testing.T) {
	if _, err := Decode(Sequence{}); err == nil {
		t.Fatal("empty sequence accepted")
	}
	// Packed flag without header.
	seq := Sequence{Commands: []Command{
		{Opcode: CmdSetBlockCount, Arg: Cmd23Packed | 9},
		{Opcode: CmdWriteMultiple, Arg: 0},
	}}
	if _, err := Decode(seq); err == nil {
		t.Fatal("packed sequence without header accepted")
	}
	// Count mismatch.
	seq.Header = &PackedHeader{RW: PackedTypeWrite, Entries: []PackedEntry{{Blocks: 4, Addr: 0}}}
	if _, err := Decode(seq); err == nil {
		t.Fatal("count mismatch accepted")
	}
}

func TestCommandString(t *testing.T) {
	c := Command{Opcode: 25, Arg: 0x10}
	if c.String() != "CMD25(arg=0x00000010)" {
		t.Fatalf("String() = %q", c.String())
	}
}
