// Package mmc encodes the eMMC 4.5 wire protocol the paper's Fig. 1 driver
// speaks: the CMD23/CMD18/CMD25 sequences of ordinary transfers and the
// packed-command header block (JEDEC JESD84-B45 §6.6.29) that carries
// multiple write requests in one data transfer — the packing the paper's
// §II-B workflow and §III-A throughput analysis attribute large requests to.
//
// The encoder turns block requests into command sequences; the decoder
// reverses them, and round-trip equality is property-tested. The package is
// self-contained so both the driver model (internal/blockdev) and tooling
// can use it without cycles.
package mmc

import (
	"encoding/binary"
	"fmt"

	"emmcio/internal/trace"
)

// MMC block size: the protocol addresses 512-byte blocks.
const BlockSize = 512

// Command opcodes (JEDEC JESD84-B45 subset).
const (
	CmdSetBlockCount = 23 // CMD23 SET_BLOCK_COUNT
	CmdReadMultiple  = 18 // CMD18 READ_MULTIPLE_BLOCK
	CmdWriteMultiple = 25 // CMD25 WRITE_MULTIPLE_BLOCK
)

// CMD23 argument flags.
const (
	// Cmd23Packed marks the transfer as a packed command (bit 30).
	Cmd23Packed = 1 << 30
)

// Command is one command/argument pair on the bus.
type Command struct {
	Opcode uint8
	Arg    uint32
}

// String renders "CMD25(arg=0x...)".
func (c Command) String() string {
	return fmt.Sprintf("CMD%d(arg=0x%08x)", c.Opcode, c.Arg)
}

// Packed header constants (version 1).
const (
	packedVersion    = 0x01
	PackedTypeRead   = 0x01
	PackedTypeWrite  = 0x02
	maxPackedEntries = 63 // fits the 512-byte header: 8 + 63*8 = 512
)

// PackedEntry describes one request inside a packed command.
type PackedEntry struct {
	// Blocks is the transfer length in 512-byte blocks.
	Blocks uint32
	// Addr is the start address in 512-byte blocks.
	Addr uint32
}

// PackedHeader is the 512-byte header block leading a packed transfer.
type PackedHeader struct {
	RW      uint8 // PackedTypeRead or PackedTypeWrite
	Entries []PackedEntry
}

// Marshal lays the header out as its on-wire 512-byte block:
// byte 0 version, byte 1 r/w type, byte 2 entry count, then one 8-byte
// (CMD23 arg, CMD25/18 arg) pair per entry starting at byte 8.
func (h *PackedHeader) Marshal() ([BlockSize]byte, error) {
	var out [BlockSize]byte
	if h.RW != PackedTypeRead && h.RW != PackedTypeWrite {
		return out, fmt.Errorf("mmc: bad packed type %d", h.RW)
	}
	if len(h.Entries) == 0 || len(h.Entries) > maxPackedEntries {
		return out, fmt.Errorf("mmc: %d packed entries (1..%d allowed)", len(h.Entries), maxPackedEntries)
	}
	out[0] = packedVersion
	out[1] = h.RW
	out[2] = byte(len(h.Entries))
	for i, e := range h.Entries {
		if e.Blocks == 0 {
			return out, fmt.Errorf("mmc: packed entry %d has zero length", i)
		}
		off := 8 + i*8
		binary.LittleEndian.PutUint32(out[off:], e.Blocks)
		binary.LittleEndian.PutUint32(out[off+4:], e.Addr)
	}
	return out, nil
}

// UnmarshalPackedHeader parses a header block.
func UnmarshalPackedHeader(b []byte) (*PackedHeader, error) {
	if len(b) < BlockSize {
		return nil, fmt.Errorf("mmc: header block too short (%d bytes)", len(b))
	}
	if b[0] != packedVersion {
		return nil, fmt.Errorf("mmc: unsupported packed version %d", b[0])
	}
	h := &PackedHeader{RW: b[1]}
	if h.RW != PackedTypeRead && h.RW != PackedTypeWrite {
		return nil, fmt.Errorf("mmc: bad packed type %d", h.RW)
	}
	n := int(b[2])
	if n == 0 || n > maxPackedEntries {
		return nil, fmt.Errorf("mmc: bad entry count %d", n)
	}
	for i := 0; i < n; i++ {
		off := 8 + i*8
		e := PackedEntry{
			Blocks: binary.LittleEndian.Uint32(b[off:]),
			Addr:   binary.LittleEndian.Uint32(b[off+4:]),
		}
		if e.Blocks == 0 {
			return nil, fmt.Errorf("mmc: entry %d has zero length", i)
		}
		h.Entries = append(h.Entries, e)
	}
	return h, nil
}

// Sequence is the full wire exchange for one host transfer: the command
// pairs plus, for packed transfers, the header block that precedes the data.
type Sequence struct {
	Commands []Command
	Header   *PackedHeader // nil for ordinary transfers
	// DataBlocks is the payload length in 512-byte blocks (header included
	// for packed transfers).
	DataBlocks uint32
}

// Encode builds the wire sequence for a group of requests:
//
//   - one read, or one write           → CMD23(count) + CMD18/CMD25(addr)
//   - several writes (packed command)  → CMD23(PACKED|total) + CMD25(addr of
//     header) with the header block followed by all payloads
//
// Mixed read/write groups and multi-read groups are rejected: eMMC 4.5
// packs only homogeneous write groups through this path (packed reads use a
// separate two-phase exchange we do not model).
func Encode(reqs []trace.Request) (Sequence, error) {
	if len(reqs) == 0 {
		return Sequence{}, fmt.Errorf("mmc: empty request group")
	}
	for _, r := range reqs {
		if r.Size == 0 || r.Size%BlockSize != 0 {
			return Sequence{}, fmt.Errorf("mmc: size %d not block aligned", r.Size)
		}
		if r.LBA > 0xffffffff {
			return Sequence{}, fmt.Errorf("mmc: address %d beyond 32-bit block addressing", r.LBA)
		}
	}
	if len(reqs) == 1 {
		r := reqs[0]
		blocks := r.Size / BlockSize
		op := uint8(CmdWriteMultiple)
		if r.Op == trace.Read {
			op = CmdReadMultiple
		}
		return Sequence{
			Commands: []Command{
				{Opcode: CmdSetBlockCount, Arg: blocks},
				{Opcode: op, Arg: uint32(r.LBA)},
			},
			DataBlocks: blocks,
		}, nil
	}
	// Packed write.
	h := &PackedHeader{RW: PackedTypeWrite}
	total := uint32(1) // header block
	for i, r := range reqs {
		if r.Op != trace.Write {
			return Sequence{}, fmt.Errorf("mmc: request %d in a packed group is not a write", i)
		}
		blocks := r.Size / BlockSize
		h.Entries = append(h.Entries, PackedEntry{Blocks: blocks, Addr: uint32(r.LBA)})
		total += blocks
	}
	if len(h.Entries) > maxPackedEntries {
		return Sequence{}, fmt.Errorf("mmc: %d entries exceed the packed limit %d", len(h.Entries), maxPackedEntries)
	}
	return Sequence{
		Commands: []Command{
			{Opcode: CmdSetBlockCount, Arg: Cmd23Packed | total},
			{Opcode: CmdWriteMultiple, Arg: h.Entries[0].Addr},
		},
		Header:     h,
		DataBlocks: total,
	}, nil
}

// WireCost is Encode's accounting twin: it returns the command count and
// payload block count of the wire sequence Encode would build, applying the
// same validation, without materializing the Sequence. Dispatch loops that
// only tally bus traffic use it to stay allocation-free.
func WireCost(reqs []trace.Request) (commands int, dataBlocks uint32, err error) {
	if len(reqs) == 0 {
		return 0, 0, fmt.Errorf("mmc: empty request group")
	}
	for _, r := range reqs {
		if r.Size == 0 || r.Size%BlockSize != 0 {
			return 0, 0, fmt.Errorf("mmc: size %d not block aligned", r.Size)
		}
		if r.LBA > 0xffffffff {
			return 0, 0, fmt.Errorf("mmc: address %d beyond 32-bit block addressing", r.LBA)
		}
	}
	if len(reqs) == 1 {
		return 2, reqs[0].Size / BlockSize, nil
	}
	if len(reqs) > maxPackedEntries {
		return 0, 0, fmt.Errorf("mmc: %d entries exceed the packed limit %d", len(reqs), maxPackedEntries)
	}
	total := uint32(1) // header block
	for i, r := range reqs {
		if r.Op != trace.Write {
			return 0, 0, fmt.Errorf("mmc: request %d in a packed group is not a write", i)
		}
		total += r.Size / BlockSize
	}
	return 2, total, nil
}

// Decode reverses Encode, reconstructing the request group (sizes,
// addresses, operations; timestamps are not on the wire).
func Decode(seq Sequence) ([]trace.Request, error) {
	if len(seq.Commands) != 2 || seq.Commands[0].Opcode != CmdSetBlockCount {
		return nil, fmt.Errorf("mmc: malformed sequence")
	}
	cmd23 := seq.Commands[0].Arg
	xfer := seq.Commands[1]
	if cmd23&Cmd23Packed != 0 {
		if seq.Header == nil {
			return nil, fmt.Errorf("mmc: packed sequence without header")
		}
		if xfer.Opcode != CmdWriteMultiple {
			return nil, fmt.Errorf("mmc: packed transfer must use CMD25")
		}
		total := uint32(1)
		var out []trace.Request
		for _, e := range seq.Header.Entries {
			out = append(out, trace.Request{
				LBA:  uint64(e.Addr),
				Size: e.Blocks * BlockSize,
				Op:   trace.Write,
			})
			total += e.Blocks
		}
		if cmd23&^uint32(Cmd23Packed) != total {
			return nil, fmt.Errorf("mmc: CMD23 count %d does not match header total %d",
				cmd23&^uint32(Cmd23Packed), total)
		}
		return out, nil
	}
	var op trace.Op
	switch xfer.Opcode {
	case CmdReadMultiple:
		op = trace.Read
	case CmdWriteMultiple:
		op = trace.Write
	default:
		return nil, fmt.Errorf("mmc: unexpected transfer CMD%d", xfer.Opcode)
	}
	return []trace.Request{{
		LBA:  uint64(xfer.Arg),
		Size: cmd23 * BlockSize,
		Op:   op,
	}}, nil
}
