// Package experiments regenerates every table and figure of the paper's
// evaluation: Tables I–V, Figs. 3–9, the §II-C tracer-overhead analysis,
// the six Characteristics, and ablation studies for the five Implications.
// Each experiment returns structured results plus a rendered report.Table,
// so the same code backs the cmd/experiments binary, the integration tests,
// and the benchmark harness.
package experiments

import (
	"context"
	"sync"
	"sync/atomic"

	"emmcio/internal/core"
	"emmcio/internal/emmc"
	"emmcio/internal/faults"
	"emmcio/internal/flash"
	"emmcio/internal/storage"
	"emmcio/internal/telemetry"
	"emmcio/internal/trace"
	"emmcio/internal/workload"
)

// Env carries the shared inputs of all experiments. It is safe for
// concurrent use: the sweep runner's workers call Trace from many
// goroutines.
type Env struct {
	// Seed drives trace generation; DefaultSeed reproduces the repository's
	// published numbers exactly.
	Seed uint64
	// Registry holds the 25 application profiles.
	Registry *workload.Registry
	// Workers bounds the sweep runner's worker pool (the CLIs' -j flag).
	// Zero means GOMAXPROCS. Results are identical at any width.
	Workers int

	// Telemetry and Tracer, when non-nil, are attached to every replay the
	// sweep runner executes (metrics registry and span ring buffer). Both
	// default to nil: experiments run unobserved.
	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer

	// Faults, when non-nil, is applied to every replay job that does not set
	// its own fault config (the CLIs' -faults/-fault-seed flags). Jobs with a
	// custom Device builder construct their own config and are not touched.
	Faults *faults.Config

	// Backend, when non-empty, selects the storage backend for every replay
	// job that does not pick its own (the CLIs' -device flag). Jobs with a
	// custom Device builder are not touched. The UFS* fields carry the UFS
	// sizing knobs along with it (zero = backend defaults).
	Backend         storage.Backend
	UFSQueues       int
	UFSQueueDepth   int
	UFSBoosterBytes int64

	// Fork, when non-nil, builds each replay job's device by forking an
	// archived aged snapshot instead of constructing fresh flash — the
	// /v1/devices fast path. It must return an independent device on every
	// call. It applies to plain FIFO replays without a custom Device
	// builder; scheduled and collection jobs keep fresh devices. The job's
	// request stream is shifted past the fork's archived history, exactly
	// like emmcsim's -load resume, and a fault config (job's or env's) is
	// re-armed on the fork via SetFaultConfig.
	Fork func() (storage.Device, error)

	// Ctx, when non-nil, bounds every sweep launched through this env:
	// replay loops check it between events and the runner checks it between
	// jobs, so cancellation and deadlines propagate into experiments whose
	// signatures predate contexts (the emmcd server attaches its per-job
	// context here). Nil means context.Background(). An explicit
	// ReplaysContext call overrides it.
	Ctx context.Context

	// TraceCacheSize bounds the generated-trace cache (default
	// DefaultTraceCacheSize). The cache used to retain every generated
	// trace for the life of the process; now the least-recently-used name
	// is evicted and regenerated on demand if asked for again — memory
	// stays bounded at sweeps of any width.
	TraceCacheSize int

	mu        sync.Mutex
	cache     map[string]*traceEntry
	lruNames  []string     // cache keys, least recently used first
	generated atomic.Int64 // traces actually generated (tests assert dedup)
}

// DefaultTraceCacheSize is the generated-trace cache bound when
// TraceCacheSize is zero: enough that a sweep's worker pool keeps its
// in-flight names resident, small enough that a 25-application run does not
// pin 25 traces.
const DefaultTraceCacheSize = 8

// traceEntry dedups generation per name: the mutex only guards the map, so
// two workers asking for different traces generate concurrently, while two
// asking for the same one block on its Once and generate it exactly once.
// The generated trace is immutable: Trace clones it, Stream reads it in
// place, and eviction just drops the map reference (in-flight holders keep
// theirs alive).
type traceEntry struct {
	once sync.Once
	tr   *trace.Trace
}

// NewEnv builds an environment with the default profile registry.
func NewEnv(seed uint64) *Env {
	return &Env{Seed: seed, Registry: workload.DefaultRegistry(), cache: map[string]*traceEntry{}}
}

// DefaultEnv uses the repository's canonical seed.
func DefaultEnv() *Env { return NewEnv(workload.DefaultSeed) }

// context resolves the env's sweep context (Ctx, or Background).
func (e *Env) context() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

// entry returns the cache slot for name, creating it (and evicting the
// least recently used slot past the bound) as needed.
func (e *Env) entry(name string) *traceEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ent, ok := e.cache[name]; ok {
		for i, n := range e.lruNames {
			if n == name {
				e.lruNames = append(append(e.lruNames[:i:i], e.lruNames[i+1:]...), name)
				break
			}
		}
		return ent
	}
	ent := &traceEntry{}
	e.cache[name] = ent
	e.lruNames = append(e.lruNames, name)
	bound := e.TraceCacheSize
	if bound <= 0 {
		bound = DefaultTraceCacheSize
	}
	for len(e.cache) > bound {
		oldest := e.lruNames[0]
		e.lruNames = e.lruNames[1:]
		delete(e.cache, oldest)
	}
	return ent
}

// shared returns the immutable cached generated trace for name,
// generating it if needed. Callers must not mutate the result.
func (e *Env) shared(name string) *trace.Trace {
	ent := e.entry(name)
	ent.once.Do(func() {
		prof := e.Registry.Lookup(name)
		if prof == nil {
			panic("experiments: unknown trace " + name)
		}
		ent.tr = prof.Generate(e.Seed)
		e.generated.Add(1)
	})
	return ent.tr
}

// Trace returns the named generated trace with clean (unreplayed)
// timestamps. Generation results are cached; callers get a fresh private
// copy they may mutate. Safe for concurrent use. Replay paths no longer
// go through here — they pull from Stream, which does not clone.
func (e *Env) Trace(name string) *trace.Trace {
	// The cached trace is immutable after generation; Clone only reads it.
	out := e.shared(name).Clone()
	out.ClearTimestamps()
	return out
}

// Stream returns the named generated trace as a trace.Stream without
// cloning: the stream reads the shared immutable cache entry in place
// (resolved lazily, on the first pull), so a sweep job's replay memory is
// the stream plus the device — never a private trace copy. Safe for
// concurrent use; each call returns an independent stream.
func (e *Env) Stream(name string) trace.Stream {
	return trace.Generated(name, func() *trace.Trace { return e.shared(name) })
}

// MeasuredDeviceTiming approximates the real Nexus 5 eMMC that §II–§III
// measured (as opposed to the Table V simulation timing of
// core.DefaultTiming): an interleaving controller with a 100 MB/s channel,
// cache-mode pipelining, and Table V flash latencies. Fig. 3 and the
// Table IV replays use this profile.
func MeasuredDeviceTiming() flash.Timing {
	return flash.Timing{
		PerPage: map[int]flash.OpTiming{
			4096: {ReadNs: 160_000, ProgramNs: 1_385_000},
			8192: {ReadNs: 244_000, ProgramNs: 1_491_000},
		},
		EraseNs:           3_800_000,
		TransferNsPerByte: 10,
		CmdOverheadNs:     25_000,
		RequestOverheadNs: 150_000,
		PipelineFactor:    0.65,
		ChannelInterleave: true,
	}
}

// MeasuredDeviceOptions configures the trace-collection device: the
// measured timing profile with the power-saving model enabled
// (Characteristic 4 is about the real device's sleep states).
func MeasuredDeviceOptions() core.Options {
	t := MeasuredDeviceTiming()
	return core.Options{PowerSaving: true, GCPolicy: emmc.GCForeground, Timing: &t}
}

// NewMeasuredDevice builds the 4 KB-page device standing in for the
// SanDisk iNAND the paper traced.
func NewMeasuredDevice() (storage.Device, error) {
	return core.NewDevice(core.Scheme4PS, MeasuredDeviceOptions())
}
