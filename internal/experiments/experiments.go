// Package experiments regenerates every table and figure of the paper's
// evaluation: Tables I–V, Figs. 3–9, the §II-C tracer-overhead analysis,
// the six Characteristics, and ablation studies for the five Implications.
// Each experiment returns structured results plus a rendered report.Table,
// so the same code backs the cmd/experiments binary, the integration tests,
// and the benchmark harness.
package experiments

import (
	"sync"
	"sync/atomic"

	"emmcio/internal/core"
	"emmcio/internal/emmc"
	"emmcio/internal/faults"
	"emmcio/internal/flash"
	"emmcio/internal/telemetry"
	"emmcio/internal/trace"
	"emmcio/internal/workload"
)

// Env carries the shared inputs of all experiments. It is safe for
// concurrent use: the sweep runner's workers call Trace from many
// goroutines.
type Env struct {
	// Seed drives trace generation; DefaultSeed reproduces the repository's
	// published numbers exactly.
	Seed uint64
	// Registry holds the 25 application profiles.
	Registry *workload.Registry
	// Workers bounds the sweep runner's worker pool (the CLIs' -j flag).
	// Zero means GOMAXPROCS. Results are identical at any width.
	Workers int

	// Telemetry and Tracer, when non-nil, are attached to every replay the
	// sweep runner executes (metrics registry and span ring buffer). Both
	// default to nil: experiments run unobserved.
	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer

	// Faults, when non-nil, is applied to every replay job that does not set
	// its own fault config (the CLIs' -faults/-fault-seed flags). Jobs with a
	// custom Device builder construct their own config and are not touched.
	Faults *faults.Config

	mu        sync.Mutex
	cache     map[string]*traceEntry
	generated atomic.Int64 // traces actually generated (tests assert dedup)
}

// traceEntry dedups generation per name: the mutex only guards the map, so
// two workers asking for different traces generate concurrently, while two
// asking for the same one block on its Once and generate it exactly once.
type traceEntry struct {
	once sync.Once
	tr   *trace.Trace
}

// NewEnv builds an environment with the default profile registry.
func NewEnv(seed uint64) *Env {
	return &Env{Seed: seed, Registry: workload.DefaultRegistry(), cache: map[string]*traceEntry{}}
}

// DefaultEnv uses the repository's canonical seed.
func DefaultEnv() *Env { return NewEnv(workload.DefaultSeed) }

// Trace returns the named generated trace with clean (unreplayed)
// timestamps. Generation results are cached; callers get a fresh copy.
// Safe for concurrent use.
func (e *Env) Trace(name string) *trace.Trace {
	e.mu.Lock()
	ent, ok := e.cache[name]
	if !ok {
		ent = &traceEntry{}
		e.cache[name] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		prof := e.Registry.Lookup(name)
		if prof == nil {
			panic("experiments: unknown trace " + name)
		}
		ent.tr = prof.Generate(e.Seed)
		e.generated.Add(1)
	})
	// The cached trace is immutable after generation; Clone only reads it.
	out := ent.tr.Clone()
	out.ClearTimestamps()
	return out
}

// MeasuredDeviceTiming approximates the real Nexus 5 eMMC that §II–§III
// measured (as opposed to the Table V simulation timing of
// core.DefaultTiming): an interleaving controller with a 100 MB/s channel,
// cache-mode pipelining, and Table V flash latencies. Fig. 3 and the
// Table IV replays use this profile.
func MeasuredDeviceTiming() flash.Timing {
	return flash.Timing{
		PerPage: map[int]flash.OpTiming{
			4096: {ReadNs: 160_000, ProgramNs: 1_385_000},
			8192: {ReadNs: 244_000, ProgramNs: 1_491_000},
		},
		EraseNs:           3_800_000,
		TransferNsPerByte: 10,
		CmdOverheadNs:     25_000,
		RequestOverheadNs: 150_000,
		PipelineFactor:    0.65,
		ChannelInterleave: true,
	}
}

// MeasuredDeviceOptions configures the trace-collection device: the
// measured timing profile with the power-saving model enabled
// (Characteristic 4 is about the real device's sleep states).
func MeasuredDeviceOptions() core.Options {
	t := MeasuredDeviceTiming()
	return core.Options{PowerSaving: true, GCPolicy: emmc.GCForeground, Timing: &t}
}

// NewMeasuredDevice builds the 4 KB-page device standing in for the
// SanDisk iNAND the paper traced.
func NewMeasuredDevice() (*emmc.Device, error) {
	return core.NewDevice(core.Scheme4PS, MeasuredDeviceOptions())
}
