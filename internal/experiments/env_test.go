package experiments

import (
	"sync"
	"testing"

	"emmcio/internal/paper"
	"emmcio/internal/telemetry"
)

// Env.Trace is hammered from many goroutines (the worker pool does exactly
// this): each name must be generated once, and every caller must get a
// private copy. Run under -race (make check does).
func TestEnvTraceConcurrent(t *testing.T) {
	env := DefaultEnv()
	names := []string{paper.Idle, paper.CallIn, paper.Music, paper.Twitter}
	const callers = 8

	var wg sync.WaitGroup
	traces := make([][]interface{}, len(names))
	for ni := range names {
		traces[ni] = make([]interface{}, callers)
	}
	for ni, name := range names {
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(ni, c int, name string) {
				defer wg.Done()
				tr := env.Trace(name)
				// Touch the requests so -race sees any shared backing array.
				for i := range tr.Reqs {
					tr.Reqs[i].ServiceStart = int64(c)
				}
				traces[ni][c] = tr
			}(ni, c, name)
		}
	}
	wg.Wait()

	if got := env.generated.Load(); got != int64(len(names)) {
		t.Fatalf("generated %d traces for %d names; cache dedup broken", got, len(names))
	}
	for ni := range names {
		for c := 1; c < callers; c++ {
			if traces[ni][c] == traces[ni][0] {
				t.Fatalf("%s: callers share a trace pointer", names[ni])
			}
		}
	}
}

// A second Trace call must not regenerate: the cache hands out clones.
func TestEnvTraceCached(t *testing.T) {
	env := DefaultEnv()
	a := env.Trace(paper.Idle)
	b := env.Trace(paper.Idle)
	if env.generated.Load() != 1 {
		t.Fatalf("generated %d, want 1", env.generated.Load())
	}
	if a == b {
		t.Fatal("Trace returned the same pointer twice")
	}
	if len(a.Reqs) != len(b.Reqs) {
		t.Fatal("clone lengths differ")
	}
}

// The runner attaches telemetry uniformly: a case study on an observed Env
// records both the sweep counters and the replay metrics (the old parallel
// path silently dropped them).
func TestSweepTelemetryUniform(t *testing.T) {
	env := DefaultEnv()
	env.Telemetry = telemetry.NewRegistry()
	if _, err := Implication2IdleGC(env, paper.Twitter); err != nil {
		t.Fatal(err)
	}
	started := env.Telemetry.Counter("runner_jobs_started_total", telemetry.L("sweep", "implication2-idlegc"))
	finished := env.Telemetry.Counter("runner_jobs_finished_total", telemetry.L("sweep", "implication2-idlegc"))
	if started.Value() != 2 || finished.Value() != 2 {
		t.Fatalf("sweep counters started=%d finished=%d, want 2/2", started.Value(), finished.Value())
	}
	hist := env.Telemetry.Histogram("runner_job_wall_ns", nil, telemetry.L("sweep", "implication2-idlegc"))
	if hist.Count() != 2 {
		t.Fatalf("job latency histogram has %d samples, want 2", hist.Count())
	}
}
