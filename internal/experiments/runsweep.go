package experiments

import (
	"fmt"
	"strings"

	"emmcio/internal/paper"
	"emmcio/internal/report"
)

// SweepNames lists the named experiment sweeps RunSweep understands. These
// are the coarse-grained units the emmcd server schedules as jobs; the
// cmd/experiments binary keeps its finer-grained -exp selectors.
func SweepNames() []string {
	return []string{"tables", "figures", "casestudy", "faultsweep"}
}

// SweepTraceAxis returns the trace roster a sweep fans over when no
// restriction is given — the axis a distributed coordinator may shard on —
// or nil for sweeps with no shardable per-trace axis. This is the shard
// execution seam's contract: for any roster subset S, RunSweepOn(env,
// name, S) must produce exactly the rows the full-roster sweep produces
// for those traces, in roster order, so a plan-order row-wise merge of
// shard results is bit-identical to the unsharded sweep. casestudy
// satisfies it because every replay's result depends only on its own
// (trace, scheme, options, seed). tables and figures iterate fixed app
// sets inside one plan, and faultsweep's per-cell fault seeds mix the plan
// index — splitting any of them would change results, so they stay atomic.
func SweepTraceAxis(name string) []string {
	switch strings.ToLower(name) {
	case "casestudy":
		return append([]string(nil), paper.IndividualApps...)
	}
	return nil
}

// KnownSweep reports whether name is one of SweepNames (case-insensitive).
func KnownSweep(name string) bool {
	name = strings.ToLower(name)
	for _, n := range SweepNames() {
		if n == name {
			return true
		}
	}
	return false
}

// CaseStudyOn is CaseStudy restricted to the named traces — the same §V
// replay matrix over a caller-chosen roster, for sweeps that cannot afford
// all 18 applications (server smoke jobs, tests).
func CaseStudyOn(env *Env, names []string) (CaseStudyResult, error) {
	return caseStudyOn(env, names)
}

// RunSweep runs one named sweep on env and returns its rendered tables.
// The env's context is checked between components, so a canceled job stops
// at the next boundary instead of finishing a multi-table sweep.
func RunSweep(env *Env, name string) ([]*report.Table, error) {
	return RunSweepOn(env, name, nil)
}

// RunSweepOn is RunSweep with an optional trace restriction: a non-empty
// traces list narrows casestudy to that roster and makes faultsweep ramp
// traces[0] instead of the default write-heavy workload. Sweeps that have
// no per-trace axis (tables, figures) ignore it.
func RunSweepOn(env *Env, name string, traces []string) ([]*report.Table, error) {
	ctx := env.context()
	var out []*report.Table
	// emit gates each component on the context so cancellation takes effect
	// at table granularity even in sweeps whose inner loops are short.
	emit := func(build func() (*report.Table, error)) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("experiments: sweep %s canceled: %w", name, err)
		}
		t, err := build()
		if err != nil {
			return err
		}
		out = append(out, t)
		return nil
	}
	ok := func(t *report.Table) func() (*report.Table, error) {
		return func() (*report.Table, error) { return t, nil }
	}

	switch strings.ToLower(name) {
	case "tables":
		for _, build := range []func() (*report.Table, error){
			ok(TableI()),
			ok(TableII()),
			func() (*report.Table, error) { return TableIII(env).Render(), nil },
			func() (*report.Table, error) {
				res, err := TableIV(env)
				if err != nil {
					return nil, err
				}
				return res.Render(), nil
			},
			ok(TableV()),
		} {
			if err := emit(build); err != nil {
				return nil, err
			}
		}
		return out, nil

	case "figures":
		if err := emit(func() (*report.Table, error) {
			res, err := Fig3(env, 8)
			if err != nil {
				return nil, err
			}
			return res.Render(), nil
		}); err != nil {
			return nil, err
		}
		if err := emit(func() (*report.Table, error) { return Fig4(env).RenderSizes(), nil }); err != nil {
			return nil, err
		}
		if err := emit(func() (*report.Table, error) {
			res, err := Fig5(env)
			if err != nil {
				return nil, err
			}
			return res.RenderResponses(), nil
		}); err != nil {
			return nil, err
		}
		if err := emit(func() (*report.Table, error) { return Fig6(env).RenderInterarrivals(), nil }); err != nil {
			return nil, err
		}
		res7, err := Fig7(env)
		if err != nil {
			return nil, err
		}
		for _, t := range []*report.Table{res7.RenderSizes(), res7.RenderResponses(), res7.RenderInterarrivals()} {
			if err := emit(ok(t)); err != nil {
				return nil, err
			}
		}
		return out, nil

	case "casestudy":
		roster := traces
		if len(roster) == 0 {
			roster = paper.IndividualApps
		}
		res, err := CaseStudyOn(env, roster)
		if err != nil {
			return nil, err
		}
		return []*report.Table{res.RenderFig8(), res.RenderFig9()}, nil

	case "faultsweep":
		workload := ""
		if len(traces) > 0 {
			workload = traces[0]
		}
		pts, err := FaultSweep(env, workload, env.Seed, nil)
		if err != nil {
			return nil, err
		}
		if workload == "" {
			workload = paper.Twitter
		}
		return []*report.Table{RenderFaultSweep(workload, pts)}, nil

	default:
		return nil, fmt.Errorf("unknown sweep %q; known sweeps: %s", name, strings.Join(SweepNames(), ", "))
	}
}
