package experiments

import (
	"bytes"
	"testing"

	"emmcio/internal/core"
	"emmcio/internal/faults"
	"emmcio/internal/paper"
	"emmcio/internal/storage"
	"emmcio/internal/trace"
)

// testAgePrep keeps the aging replays test-sized: one session of a small
// trace on a shrunken device, faults on so the injector position is part of
// the archived state under test.
func testAgePrep(backend storage.Backend) AgePrep {
	opt := core.CaseStudyOptions()
	opt.Backend = backend
	opt.ScaleBlocks = 8
	opt.ScalePages = 8
	opt.Faults = &faults.Config{Seed: 21, Rate: 1}
	p := AgePrep{Trace: paper.Email, Sessions: 1, Scheme: core.Scheme4PS}
	p.SetOptions(opt)
	return p
}

// forkFromSealed builds an Env.Fork closure the way the sweep spec does:
// age once, seal, and decode a private fork per call.
func forkFromSealed(t *testing.T, env *Env, p AgePrep) (func() (storage.Device, error), []byte) {
	t.Helper()
	aged, err := AgeDevice(env, p)
	if err != nil {
		t.Fatalf("AgeDevice: %v", err)
	}
	sealed, _, err := storage.Seal(aged)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	return func() (storage.Device, error) {
		dev, _, err := core.RestoreSealed("aged-test", bytes.NewReader(sealed))
		return dev, err
	}, sealed
}

// TestForkDeterminism is the store's central claim: age once, fork twice,
// and re-age from scratch — all three devices replay the same trace to
// byte-identical metrics, on both gob layouts (eMMC and UFS), with the
// fault injector resuming from the archived draw position.
func TestForkDeterminism(t *testing.T) {
	for _, backend := range []storage.Backend{storage.BackendEMMC, storage.BackendUFS} {
		t.Run(string(backend), func(t *testing.T) {
			env := DefaultEnv()
			p := testAgePrep(backend)
			fork, _ := forkFromSealed(t, env, p)

			replay := func(dev storage.Device) (core.Metrics, int64) {
				st := trace.ShiftStream(env.Stream(paper.Movie), dev.LastActivity()+1_000_000_000)
				m, err := core.ReplayStreamObservedContext(env.context(), dev, p.Scheme, st, nil, nil)
				if err != nil {
					t.Fatalf("replay: %v", err)
				}
				return m, dev.FaultDraws()
			}

			forkA, err := fork()
			if err != nil {
				t.Fatal(err)
			}
			forkB, err := fork()
			if err != nil {
				t.Fatal(err)
			}
			if forkA.FaultDraws() == 0 {
				t.Fatal("prep drew no fault decisions; the test is not exercising injector resume")
			}
			if forkA.FaultDraws() != forkB.FaultDraws() {
				t.Fatalf("two forks restored to different draw positions: %d vs %d",
					forkA.FaultDraws(), forkB.FaultDraws())
			}
			reaged, err := AgeDevice(env, p)
			if err != nil {
				t.Fatal(err)
			}
			if reaged.FaultDraws() != forkA.FaultDraws() {
				t.Fatalf("re-aged injector at draw %d, forks at %d", reaged.FaultDraws(), forkA.FaultDraws())
			}

			mA, drawsA := replay(forkA)
			mB, drawsB := replay(forkB)
			mR, drawsR := replay(reaged)
			if mA != mB {
				t.Errorf("two forks diverge:\n fork A %+v\n fork B %+v", mA, mB)
			}
			if mA != mR {
				t.Errorf("fork diverges from re-aged device:\n fork    %+v\n re-aged %+v", mA, mR)
			}
			if drawsA != drawsB || drawsA != drawsR {
				t.Errorf("post-replay draw positions diverge: forks %d/%d, re-aged %d",
					drawsA, drawsB, drawsR)
			}
		})
	}
}

// TestAgedStudyFastPathBitIdentical: the aged study renders the same bytes
// whether every point re-ages its own device (slow path) or forks the one
// archived snapshot (fast path) — the acceptance contract of the store.
func TestAgedStudyFastPathBitIdentical(t *testing.T) {
	p := testAgePrep(storage.BackendEMMC)
	traces := []string{paper.Movie, paper.Email}

	slow := DefaultEnv()
	slowPts, err := AgedStudy(slow, p, traces)
	if err != nil {
		t.Fatalf("slow path: %v", err)
	}

	fast := DefaultEnv()
	fork, _ := forkFromSealed(t, fast, p)
	fast.Fork = fork
	fastPts, err := AgedStudy(fast, p, traces)
	if err != nil {
		t.Fatalf("fast path: %v", err)
	}

	var slowBuf, fastBuf bytes.Buffer
	if err := RenderAgedStudy(p, slowPts).WriteText(&slowBuf); err != nil {
		t.Fatal(err)
	}
	if err := RenderAgedStudy(p, fastPts).WriteText(&fastBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(slowBuf.Bytes(), fastBuf.Bytes()) {
		t.Errorf("fast path diverges from re-aging:\n--- re-aged ---\n%s--- forked ---\n%s",
			slowBuf.String(), fastBuf.String())
	}
	for i := range slowPts {
		if slowPts[i] != fastPts[i] {
			t.Errorf("point %d diverges:\n slow %+v\n fast %+v", i, slowPts[i], fastPts[i])
		}
	}
}

// BenchmarkSnapshotFork compares producing a worn device by forking the
// archived snapshot against re-aging fresh flash — the economics that
// justify the store (restore must be several times cheaper than re-aging).
// The prep is a realistic aging run — several sessions of the write-heavy
// Twitter trace — not the test-sized one: the store exists for preps whose
// replay dwarfs a snapshot decode, and the benchmark measures that regime.
func BenchmarkSnapshotFork(b *testing.B) {
	env := DefaultEnv()
	p := testAgePrep(storage.BackendEMMC)
	p.Trace = paper.Twitter
	p.Sessions = 8
	aged, err := AgeDevice(env, p)
	if err != nil {
		b.Fatal(err)
	}
	sealed, _, err := storage.Seal(aged)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("reage", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := AgeDevice(env, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fork", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.RestoreSealed("bench", bytes.NewReader(sealed)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
