package experiments

import (
	"testing"

	"emmcio/internal/core"
	"emmcio/internal/faults"
	"emmcio/internal/paper"
	"emmcio/internal/reliability"
	"emmcio/internal/telemetry"
)

// A rate-zero fault config must be bit-identical to no fault config at all:
// the injector never draws, so every metric of a replay matches the
// fault-free build exactly. This pins the zero-overhead off switch — with
// -faults 0 the simulator reproduces pre-fault-plane outputs.
func TestFaultRateZeroBitIdenticalToNoFaults(t *testing.T) {
	env := DefaultEnv()
	replay := func(cfg *faults.Config) (core.Metrics, interface{}) {
		opt := core.CaseStudyOptions()
		opt.Faults = cfg
		dev, err := core.NewDevice(core.Scheme4PS, opt)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.ReplayObserved(dev, core.Scheme4PS, env.Trace(paper.Twitter), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m, dev.FTLStats()
	}
	mOff, sOff := replay(nil)
	mZero, sZero := replay(&faults.Config{Seed: 99, Rate: 0})
	if mOff != mZero {
		t.Fatalf("metrics differ with a rate-0 injector:\n  nil:    %+v\n  rate-0: %+v", mOff, mZero)
	}
	if sOff != sZero {
		t.Fatalf("FTL stats differ with a rate-0 injector:\n  nil:    %+v\n  rate-0: %+v", sOff, sZero)
	}
}

// The fault ramp is bit-identical at any worker-pool width: each cell owns
// a private injector seeded from (seed, cell index), so fault sequences
// cannot depend on scheduling.
func TestFaultSweepDeterminism(t *testing.T) {
	rates := []float64{0, 0.2, 1}
	run := func(workers int) []FaultPoint {
		env := DefaultEnv()
		env.Workers = workers
		pts, err := FaultSweep(env, "", 42, rates)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	serial := run(1)
	wide := run(8)
	if len(serial) != len(wide) {
		t.Fatal("point count mismatch")
	}
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("point %d differs:\n-j 1 %+v\n-j 8 %+v", i, serial[i], wide[i])
		}
	}
}

// The ramp's healthy rows must show the fault plane working: more faults
// and more retired blocks at a higher rate, and a higher MRT than the
// fault-free row for the same scheme.
func TestFaultSweepRampShape(t *testing.T) {
	pts, err := FaultSweep(DefaultEnv(), "", 7, []float64{0, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*len(core.Schemes) {
		t.Fatalf("want %d points, got %d", 2*len(core.Schemes), len(pts))
	}
	for i, s := range core.Schemes {
		base, faulty := pts[i], pts[i+len(core.Schemes)]
		if base.Err != "" || faulty.Err != "" {
			t.Fatalf("%s: low-rate rows should survive: %q / %q", s, base.Err, faulty.Err)
		}
		if base.ProgramFaults != 0 || base.RetiredBlocks != 0 {
			t.Fatalf("%s: faults at rate 0: %+v", s, base)
		}
		if faulty.ProgramFaults == 0 || faulty.RetiredBlocks == 0 {
			t.Fatalf("%s: no faults at rate 0.1: %+v", s, faulty)
		}
		if faulty.MRTMs <= base.MRTMs {
			t.Errorf("%s: MRT did not rise under faults: %.3f -> %.3f", s, base.MRTMs, faulty.MRTMs)
		}
	}
}

// A deeply-aged device (1.5x rated endurance, where the reliability model's
// read-failure curve saturates) replays to completion while reporting
// uncorrectable reads, read-scrub retirements, and recovery latency —
// through metrics and telemetry counters alike. Program/erase bases are
// dialed down so wear that extreme doesn't just eat the whole pool.
func TestDeepAgedReplayRecoversReads(t *testing.T) {
	model := reliability.Default()
	opt := core.CaseStudyOptions()
	opt.Reliability = model
	opt.Faults = &faults.Config{
		Seed:            5,
		Rate:            1,
		ProgramFailBase: 1e-7,
		EraseFailBase:   1e-7,
		Model:           model,
	}
	dev, err := core.NewDevice(core.Scheme4PS, opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DeviceConfig(core.Scheme4PS, opt)
	for pool, spec := range cfg.Pools {
		blocks := int64(spec.BlocksPerPlane * cfg.Geometry.Planes())
		dev.AddArtificialWear(pool, int64(1.5*model.Endurance*float64(blocks)))
	}
	reg := telemetry.NewRegistry()
	env := DefaultEnv()
	m, err := core.ReplayObserved(dev, core.Scheme4PS, env.Trace(paper.Twitter), reg, nil)
	if err != nil {
		t.Fatalf("deep-aged replay died: %v", err)
	}
	if m.ReadFaults == 0 || m.RecoveryNs == 0 {
		t.Fatalf("no read recovery at 1.5x endurance: %+v", m)
	}
	if m.RetiredBlocks == 0 {
		t.Fatalf("read scrubbing retired nothing: %+v", m)
	}
	if got := dev.FaultCounts().Read; got != m.ReadFaults {
		t.Fatalf("injector read count %d != metrics %d", got, m.ReadFaults)
	}
	for _, c := range []struct {
		name string
		val  int64
	}{
		{"emmc_read_faults_total", reg.Counter("emmc_read_faults_total").Value()},
		{"emmc_fault_recovery_ns_total", reg.Counter("emmc_fault_recovery_ns_total").Value()},
		{"ftl_blocks_retired_total", reg.Counter("ftl_blocks_retired_total").Value()},
		{"faults_injected_total{read}", reg.Counter("faults_injected_total", telemetry.L("kind", "read")).Value()},
		{"emmc_fault_recovery_ns histogram", reg.Histogram("emmc_fault_recovery_ns", nil).Count()},
	} {
		if c.val == 0 {
			t.Errorf("telemetry counter %s stayed zero", c.name)
		}
	}
}
